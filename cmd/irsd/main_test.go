package main

import (
	"testing"
	"time"
)

// TestValidateFlags pins the flag-combination validation: durability knobs
// without -data-dir, -fsync-interval under a non-interval policy,
// non-positive HTTP timeouts (a zero http.Server timeout means "no
// limit"), and -config given alongside the flags it replaces used to be
// silently ignored — they must now fail fast at boot.
func TestValidateFlags(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := make(map[string]bool, len(names))
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	const okTimeout = 5 * time.Second
	cases := []struct {
		name        string
		explicit    map[string]bool
		dataDir     string
		fsync       string
		readHdrTO   time.Duration
		idleTO      time.Duration
		recoverConc int
		tcpAddr     string
		tcpReadBuf  int
		logFormat   string
		config      string
		configPoll  time.Duration
		wantErr     bool
	}{
		{"defaults, memory-only", set(), "", "always", okTimeout, okTimeout, 0, "", 0, "text", "", 0, false},
		{"defaults, durable", set("data-dir"), "/tmp/x", "always", okTimeout, okTimeout, 0, "", 0, "text", "", 0, false},
		{"fsync without data-dir", set("fsync"), "", "none", okTimeout, okTimeout, 0, "", 0, "text", "", 0, true},
		{"fsync-interval without data-dir", set("fsync-interval"), "", "always", okTimeout, okTimeout, 0, "", 0, "text", "", 0, true},
		{"snapshot-every without data-dir", set("snapshot-every"), "", "always", okTimeout, okTimeout, 0, "", 0, "text", "", 0, true},
		{"recover-concurrency without data-dir", set("recover-concurrency"), "", "always", okTimeout, okTimeout, 4, "", 0, "text", "", 0, true},
		{"recover-concurrency with data-dir", set("data-dir", "recover-concurrency"), "/tmp/x", "always", okTimeout, okTimeout, 4, "", 0, "text", "", 0, false},
		{"negative recover-concurrency", set("data-dir", "recover-concurrency"), "/tmp/x", "always", okTimeout, okTimeout, -1, "", 0, "text", "", 0, true},
		{"fsync-interval under -fsync always", set("data-dir", "fsync-interval"), "/tmp/x", "always", okTimeout, okTimeout, 0, "", 0, "text", "", 0, true},
		{"fsync-interval under -fsync none", set("data-dir", "fsync", "fsync-interval"), "/tmp/x", "none", okTimeout, okTimeout, 0, "", 0, "text", "", 0, true},
		{"fsync-interval under -fsync interval", set("data-dir", "fsync", "fsync-interval"), "/tmp/x", "interval", okTimeout, okTimeout, 0, "", 0, "text", "", 0, false},
		{"fsync interval without explicit interval flag", set("data-dir", "fsync"), "/tmp/x", "interval", okTimeout, okTimeout, 0, "", 0, "text", "", 0, false},
		{"snapshot-every with data-dir", set("data-dir", "snapshot-every"), "/tmp/x", "always", okTimeout, okTimeout, 0, "", 0, "text", "", 0, false},
		{"zero read-header-timeout", set(), "", "always", 0, okTimeout, 0, "", 0, "text", "", 0, true},
		{"negative read-header-timeout", set(), "", "always", -time.Second, okTimeout, 0, "", 0, "text", "", 0, true},
		{"zero idle-timeout", set(), "", "always", okTimeout, 0, 0, "", 0, "text", "", 0, true},
		{"negative idle-timeout", set(), "", "always", okTimeout, -time.Minute, 0, "", 0, "text", "", 0, true},
		{"tcp-read-buf without tcp-addr", set("tcp-read-buf"), "", "always", okTimeout, okTimeout, 0, "", 64 << 10, "text", "", 0, true},
		{"tcp-read-buf with tcp-addr", set("tcp-addr", "tcp-read-buf"), "", "always", okTimeout, okTimeout, 0, "127.0.0.1:0", 64 << 10, "text", "", 0, false},
		{"negative tcp-read-buf", set("tcp-addr", "tcp-read-buf"), "", "always", okTimeout, okTimeout, 0, "127.0.0.1:0", -1, "text", "", 0, true},
		{"log-format json", set("log-format"), "", "always", okTimeout, okTimeout, 0, "", 0, "json", "", 0, false},
		{"log-format unknown", set("log-format"), "", "always", okTimeout, okTimeout, 0, "", 0, "logfmt", "", 0, true},
		{"config alone", set("config"), "", "always", okTimeout, okTimeout, 0, "", 0, "text", "/tmp/irs.conf", 0, false},
		{"config with datasets", set("config", "datasets"), "", "always", okTimeout, okTimeout, 0, "", 0, "text", "/tmp/irs.conf", 0, true},
		{"config with poll", set("config", "config-poll"), "", "always", okTimeout, okTimeout, 0, "", 0, "text", "/tmp/irs.conf", time.Second, false},
		{"config-poll without config", set("config-poll"), "", "always", okTimeout, okTimeout, 0, "", 0, "text", "", time.Second, true},
		{"negative config-poll", set("config", "config-poll"), "", "always", okTimeout, okTimeout, 0, "", 0, "text", "/tmp/irs.conf", -time.Second, true},
	}
	for _, tc := range cases {
		err := validateFlags(tc.explicit, tc.dataDir, tc.fsync, tc.readHdrTO, tc.idleTO, tc.recoverConc, tc.tcpAddr, tc.tcpReadBuf, tc.logFormat, tc.config, tc.configPoll)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}
}
