package main

import (
	"testing"
	"time"
)

// TestValidateFlags pins the flag-combination validation: durability knobs
// without -data-dir, -fsync-interval under a non-interval policy, and
// non-positive HTTP timeouts (a zero http.Server timeout means "no limit")
// used to be silently ignored — they must now fail fast at boot.
func TestValidateFlags(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := make(map[string]bool, len(names))
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	const okTimeout = 5 * time.Second
	cases := []struct {
		name      string
		explicit  map[string]bool
		dataDir   string
		fsync     string
		readHdrTO time.Duration
		idleTO    time.Duration
		wantErr   bool
	}{
		{"defaults, memory-only", set(), "", "always", okTimeout, okTimeout, false},
		{"defaults, durable", set("data-dir"), "/tmp/x", "always", okTimeout, okTimeout, false},
		{"fsync without data-dir", set("fsync"), "", "none", okTimeout, okTimeout, true},
		{"fsync-interval without data-dir", set("fsync-interval"), "", "always", okTimeout, okTimeout, true},
		{"snapshot-every without data-dir", set("snapshot-every"), "", "always", okTimeout, okTimeout, true},
		{"fsync-interval under -fsync always", set("data-dir", "fsync-interval"), "/tmp/x", "always", okTimeout, okTimeout, true},
		{"fsync-interval under -fsync none", set("data-dir", "fsync", "fsync-interval"), "/tmp/x", "none", okTimeout, okTimeout, true},
		{"fsync-interval under -fsync interval", set("data-dir", "fsync", "fsync-interval"), "/tmp/x", "interval", okTimeout, okTimeout, false},
		{"fsync interval without explicit interval flag", set("data-dir", "fsync"), "/tmp/x", "interval", okTimeout, okTimeout, false},
		{"snapshot-every with data-dir", set("data-dir", "snapshot-every"), "/tmp/x", "always", okTimeout, okTimeout, false},
		{"zero read-header-timeout", set(), "", "always", 0, okTimeout, true},
		{"negative read-header-timeout", set(), "", "always", -time.Second, okTimeout, true},
		{"zero idle-timeout", set(), "", "always", okTimeout, 0, true},
		{"negative idle-timeout", set(), "", "always", okTimeout, -time.Minute, true},
	}
	for _, tc := range cases {
		err := validateFlags(tc.explicit, tc.dataDir, tc.fsync, tc.readHdrTO, tc.idleTO)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}
}
