package main

import "testing"

// TestValidateFlags pins the flag-combination validation: durability knobs
// without -data-dir, and -fsync-interval under a non-interval policy, used
// to be silently ignored — they must now fail fast at boot.
func TestValidateFlags(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := make(map[string]bool, len(names))
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name     string
		explicit map[string]bool
		dataDir  string
		fsync    string
		wantErr  bool
	}{
		{"defaults, memory-only", set(), "", "always", false},
		{"defaults, durable", set("data-dir"), "/tmp/x", "always", false},
		{"fsync without data-dir", set("fsync"), "", "none", true},
		{"fsync-interval without data-dir", set("fsync-interval"), "", "always", true},
		{"snapshot-every without data-dir", set("snapshot-every"), "", "always", true},
		{"fsync-interval under -fsync always", set("data-dir", "fsync-interval"), "/tmp/x", "always", true},
		{"fsync-interval under -fsync none", set("data-dir", "fsync", "fsync-interval"), "/tmp/x", "none", true},
		{"fsync-interval under -fsync interval", set("data-dir", "fsync", "fsync-interval"), "/tmp/x", "interval", false},
		{"fsync interval without explicit interval flag", set("data-dir", "fsync"), "/tmp/x", "interval", false},
		{"snapshot-every with data-dir", set("data-dir", "snapshot-every"), "/tmp/x", "always", false},
	}
	for _, tc := range cases {
		err := validateFlags(tc.explicit, tc.dataDir, tc.fsync)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}
}
