package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/irsgo/irs/internal/spec"
	"github.com/irsgo/irs/server"
)

// discardLogger silences boot logging in tests.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// addDurableSpecs registers the spec'd datasets durably under dir — the
// test-side shorthand for the boot path.
func addDurableSpecs(t *testing.T, s *server.Server, specs, dir string, recoverConc int) error {
	t.Helper()
	list, err := spec.ParseDatasets(specs)
	if err != nil {
		t.Fatalf("parse specs: %v", err)
	}
	policy, err := server.ParseSyncPolicy("always")
	if err != nil {
		t.Fatalf("parse policy: %v", err)
	}
	return addDatasetList(s, discardLogger(), list, 2, 7, 0, dir, policy, 100*time.Millisecond, recoverConc)
}

// postJSON drives one mutation through the daemon's HTTP surface.
func postJSON(t *testing.T, s *server.Server, path string, body any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("POST %s: %d: %s", path, rec.Code, rec.Body.String())
	}
}

// dsFingerprint is the per-dataset state a recovery must reproduce
// exactly regardless of boot concurrency: identity, size, and what the
// recovery itself read (snapshot seq/entries, records replayed).
type dsFingerprint struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Len     int    `json:"len"`
	Persist *struct {
		Recovery map[string]any `json:"recovery"`
	} `json:"persist"`
}

// bootFingerprints boots a server from dir at the given recovery
// concurrency, reads /stats, closes the server, and returns the dataset
// fingerprints sorted by name.
func bootFingerprints(t *testing.T, dir, specs string, recoverConc int) []dsFingerprint {
	t.Helper()
	s := server.New(server.Config{})
	if err := addDurableSpecs(t, s, specs, dir, recoverConc); err != nil {
		t.Fatalf("boot (concurrency %d): %v", recoverConc, err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}()
	req := httptest.NewRequest("GET", "/stats", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /stats: %d: %s", rec.Code, rec.Body.String())
	}
	var doc struct {
		Datasets []dsFingerprint `json:"datasets"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	sort.Slice(doc.Datasets, func(i, j int) bool { return doc.Datasets[i].Name < doc.Datasets[j].Name })
	return doc.Datasets
}

// TestParallelRecoveryMatchesSerial pins the parallel-boot equivalence:
// recovering a multi-dataset data directory with -recover-concurrency 8
// must reconstruct exactly what a serial (concurrency 1) boot does —
// same datasets, same sizes, same recovery footprint — with every
// dataset a different size and one mid-history snapshot, so a swapped or
// partially-applied recovery cannot cancel out.
func TestParallelRecoveryMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	const specs = "a,b:weighted,c,d:weighted,e"
	names := []string{"a", "b", "c", "d", "e"}

	seed := server.New(server.Config{})
	if err := addDurableSpecs(t, seed, specs, dir, 2); err != nil {
		t.Fatalf("seeding boot: %v", err)
	}
	for i, name := range names {
		n := (i + 1) * 300 // pairwise-distinct sizes
		keys := make([]float64, n)
		for j := range keys {
			keys[j] = float64(i*1_000_000 + j)
		}
		postJSON(t, seed, "/insert", map[string]any{"dataset": name, "keys": keys})
		postJSON(t, seed, "/delete", map[string]any{"dataset": name, "keys": keys[:50]})
	}
	// One dataset recovers snapshot+tail, the others WAL-only, so the two
	// boots must agree on heterogeneous recovery paths too.
	postJSON(t, seed, "/snapshot", map[string]any{"dataset": "b"})
	postJSON(t, seed, "/insert", map[string]any{"dataset": "b", "keys": []float64{1e9, 2e9}})
	if err := seed.Close(); err != nil {
		t.Fatalf("seeding close: %v", err)
	}

	serial := bootFingerprints(t, dir, specs, 1)
	parallel := bootFingerprints(t, dir, specs, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel recovery diverges from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if len(serial) != len(names) {
		t.Fatalf("recovered %d datasets, want %d", len(serial), len(names))
	}
	for i, fp := range serial {
		wantLen := (i+1)*300 - 50
		if fp.Name == "b" {
			wantLen += 2
		}
		if fp.Len != wantLen {
			t.Fatalf("dataset %q recovered %d items, want %d", fp.Name, fp.Len, wantLen)
		}
		if fp.Persist == nil || fp.Persist.Recovery == nil {
			t.Fatalf("dataset %q missing recovery stats: %+v", fp.Name, fp)
		}
	}
}
