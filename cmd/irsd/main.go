// Command irsd is the IRS sampling daemon: it serves named unweighted or
// weighted datasets over HTTP/JSON, coalescing concurrently-arriving
// sample requests into single SampleMany batches (and insert requests into
// single InsertBatch calls) against the concurrent sharded structures.
//
// Usage:
//
//	irsd -addr 127.0.0.1:8080 -datasets events,logs:weighted
//	irsd -addr 127.0.0.1:0 -datasets demo -preload 100000
//
// Endpoints (see package github.com/irsgo/irs/server for the protocol and
// a typed client):
//
//	POST /sample  {"dataset":"events","lo":0,"hi":9,"t":3}
//	POST /insert  {"dataset":"events","keys":[1,2,3]}
//	POST /delete  {"dataset":"events","keys":[1]}
//	GET  /stats
//
// With -addr ending in :0 the kernel picks a free port; the chosen address
// is printed as "irsd: serving on http://..." so wrappers can scrape it.
// SIGINT/SIGTERM trigger a graceful stop: the listener closes, in-flight
// and queued requests are answered, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	irs "github.com/irsgo/irs"
	"github.com/irsgo/irs/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		datasets = flag.String("datasets", "demo", "comma-separated name[:weighted|:unweighted] specs")
		shards   = flag.Int("shards", runtime.GOMAXPROCS(0), "target shard count per dataset")
		seed     = flag.Uint64("seed", 1, "seed anchoring each dataset's sampling streams")
		preload  = flag.Int("preload", 0, "keys preloaded per dataset, uniform in [0, 1e6)")
		queue    = flag.Int("queue", 0, "pending-request bound per dataset and path (0 = default)")
		maxBatch = flag.Int("max-batch", 0, "max coalesced requests per backend call (0 = default)")
		window   = flag.Duration("coalesce-window", 100*time.Microsecond, "linger time for batch-mates (0 = opportunistic only)")
		flushers = flag.Int("flushers", 0, "parallel backend calls per dataset and path (0 = GOMAXPROCS)")
	)
	flag.Parse()

	s := server.New(server.Config{
		QueueDepth:     *queue,
		MaxBatch:       *maxBatch,
		CoalesceWindow: *window,
		Flushers:       *flushers,
	})
	if err := addDatasets(s, *datasets, *shards, *seed, *preload); err != nil {
		log.Fatalf("irsd: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("irsd: %v", err)
	}
	// Printed (not just logged) so scripts can scrape the resolved address
	// when -addr asked for a kernel-assigned port.
	fmt.Printf("irsd: serving on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: s}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("irsd: signal received, draining")
	case err := <-done:
		log.Fatalf("irsd: serve: %v", err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("irsd: http shutdown: %v", err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("irsd: serve: %v", err)
	}
	s.Close() // drain the coalescers: every accepted request is answered
	fmt.Println("irsd: drained, bye")
}

// addDatasets parses "name[:kind]" specs and registers each dataset,
// optionally preloaded with uniform keys.
func addDatasets(s *server.Server, specs string, shards int, seed uint64, preload int) error {
	added := 0
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, kind, _ := strings.Cut(spec, ":")
		rng := irs.NewRNG(seed)
		switch kind {
		case "", "unweighted":
			c := irs.NewConcurrentSeeded[float64](shards, seed)
			if preload > 0 {
				keys := make([]float64, preload)
				for i := range keys {
					keys[i] = rng.Float64Range(0, 1e6)
				}
				c.InsertBatch(keys)
			}
			if err := s.AddUnweighted(name, c); err != nil {
				return err
			}
		case "weighted":
			w := irs.NewWeightedConcurrent[float64](shards, seed)
			if preload > 0 {
				items := make([]irs.WeightedItem[float64], preload)
				for i := range items {
					items[i] = irs.WeightedItem[float64]{Key: rng.Float64Range(0, 1e6), Weight: 1 + rng.Float64()}
				}
				if err := w.InsertBatch(items); err != nil {
					return err
				}
			}
			if err := s.AddWeighted(name, w); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dataset %q: unknown kind %q (want weighted or unweighted)", name, kind)
		}
		added++
		log.Printf("irsd: dataset %q (%s), %d shard target, preload %d", name, orUnweighted(kind), shards, preload)
	}
	if added == 0 {
		return errors.New("no datasets configured")
	}
	return nil
}

func orUnweighted(kind string) string {
	if kind == "" {
		return "unweighted"
	}
	return kind
}
