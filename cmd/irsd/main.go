// Command irsd is the IRS sampling daemon: it serves named unweighted or
// weighted datasets over HTTP/JSON, coalescing concurrently-arriving
// sample requests into single SampleMany batches (and insert requests into
// single InsertBatch calls) against the concurrent sharded structures.
//
// Usage:
//
//	irsd -addr 127.0.0.1:8080 -datasets events,logs:weighted
//	irsd -addr 127.0.0.1:0 -datasets demo -preload 100000
//	irsd -addr 127.0.0.1:8080 -datasets events -data-dir /var/lib/irsd
//
// Endpoints (see package github.com/irsgo/irs/server for the protocol and
// a typed client):
//
//	POST /sample    {"dataset":"events","lo":0,"hi":9,"t":3}
//	POST /insert    {"dataset":"events","keys":[1,2,3]}
//	POST /delete    {"dataset":"events","keys":[1]}
//	POST /update    {"dataset":"prio","items":[{"key":1,"weight":9}]}
//	POST /snapshot  {"dataset":"events"}
//	GET  /stats
//	GET  /datasets            list datasets with lifecycle state
//	POST /datasets            {"dataset":"new","weighted":true}
//	DELETE /datasets/{name}   drop a dataset (?snapshot=true for a final snapshot)
//
// With -config the dataset list comes from a config file instead of
// -datasets (same element grammar, one per line or comma, # comments;
// partition lines are ignored so one file can drive irsd and irsrouter).
// SIGHUP — or a changed mtime when -config-poll is set — re-reads the
// file and applies the diff atomically: validation failures keep the
// running config, new datasets are added, removed ones are drained and
// dropped (durable state gets a final snapshot). The config file is
// authoritative: datasets added over POST /datasets but absent from the
// file are dropped on the next reload.
//
// With -data-dir set, every dataset is durable: mutations are written
// ahead to a per-dataset WAL under <data-dir>/<name> (fsync policy from
// -fsync), snapshots compact the log (on demand via /snapshot and
// periodically via -snapshot-every), and a restart on the same directory
// recovers the exact dataset state — newest snapshot plus WAL tail, with
// a torn final record truncated. Exactly one irsd may own a data
// directory at a time.
//
// With -tcp-addr set, the daemon additionally serves the persistent
// multiplexed binary transport (package server/irsnet) on that address:
// long-lived TCP connections carrying the binary sample/insert frames
// with pipelined request IDs — the kernel-close transport for hot-path
// clients. The chosen address is printed as "irsd: tcp on ...".
//
// With -addr ending in :0 the kernel picks a free port; the chosen address
// is printed as "irsd: serving on http://..." so wrappers can scrape it.
// SIGINT/SIGTERM trigger a graceful stop: both listeners close, in-flight
// and queued requests are answered, WALs are synced, then the process
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"
	"time"

	irs "github.com/irsgo/irs"
	"github.com/irsgo/irs/internal/spec"
	"github.com/irsgo/irs/server"
	"github.com/irsgo/irs/server/irsnet"
)

// version is the build identity reported by /stats, /metrics, and the
// boot log; release builds stamp it with
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/irsd
var version = "dev"

func main() { os.Exit(run()) }

// newLogger builds the daemon's structured logger: slog text for humans
// and grep, JSON for log pipelines. Operational logging goes through
// this; the two machine-scraped stdout lines ("irsd: tcp on ...",
// "irsd: serving on http://...", "irsd: drained, bye") stay plain
// prints — wrappers parse them.
func newLogger(format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		tcpAddr    = flag.String("tcp-addr", "", "persistent binary TCP listen address (empty disables; port 0 picks a free port)")
		tcpReadBuf = flag.Int("tcp-read-buf", 0, "per-connection read buffer for the binary TCP transport, bytes (0 = default 32 KiB)")
		datasets   = flag.String("datasets", "demo", "comma-separated name[:weighted|:unweighted] specs")
		shards     = flag.Int("shards", runtime.GOMAXPROCS(0), "target shard count per dataset")
		seed       = flag.Uint64("seed", 1, "seed anchoring each dataset's sampling streams")
		preload    = flag.Int("preload", 0, "keys preloaded per dataset, uniform in [0, 1e6)")
		queue      = flag.Int("queue", 0, "pending-request bound per dataset and path (0 = default)")
		maxBatch   = flag.Int("max-batch", 0, "max coalesced requests per backend call (0 = default)")
		window     = flag.Duration("coalesce-window", 100*time.Microsecond, "linger time for batch-mates (0 = opportunistic only)")
		flushers   = flag.Int("flushers", 0, "parallel backend calls per dataset and path (0 = GOMAXPROCS)")

		readHdrTimeout = flag.Duration("read-header-timeout", 5*time.Second, "HTTP header read deadline per request (guards against slowloris connections)")
		idleTimeout    = flag.Duration("idle-timeout", 2*time.Minute, "HTTP keep-alive idle connection deadline")

		dataDir     = flag.String("data-dir", "", "durability root: one WAL+snapshot directory per dataset (empty = memory-only)")
		fsync       = flag.String("fsync", "always", "WAL fsync policy: always, interval, or none")
		fsyncIvl    = flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period under -fsync interval")
		snapEvery   = flag.Duration("snapshot-every", 15*time.Minute, "background snapshot/compaction period for durable datasets (0 disables)")
		recoverConc = flag.Int("recover-concurrency", 0, "durable datasets recovered in parallel at boot (0 = GOMAXPROCS)")

		config     = flag.String("config", "", "config file in the -datasets spec grammar (one spec per line, '#' comments); mutually exclusive with -datasets, reloaded on SIGHUP")
		configPoll = flag.Duration("config-poll", 0, "poll the -config file's mtime this often and reload on change (0 disables; SIGHUP always works)")

		logFormat   = flag.String("log-format", "text", "structured log encoding: text or json")
		enablePprof = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the HTTP address")
	)
	flag.Parse()

	// Reject contradictory flag combinations before any state is touched:
	// a durability knob that silently does nothing is worse than an error.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := validateFlags(explicit, *dataDir, *fsync, *readHdrTimeout, *idleTimeout, *recoverConc, *tcpAddr, *tcpReadBuf, *logFormat, *config, *configPoll); err != nil {
		// The logger's format flag may itself be the invalid one; text is
		// always a safe spelling for the complaint.
		newLogger("text").Error("invalid flags", "err", err)
		return 2
	}
	logger := newLogger(*logFormat)
	logger.Info("irsd starting", "version", version, "go", runtime.Version(), "pid", os.Getpid())

	s := server.New(server.Config{
		QueueDepth:     *queue,
		MaxBatch:       *maxBatch,
		CoalesceWindow: *window,
		Flushers:       *flushers,
	})
	s.SetVersion(version)
	if *enablePprof {
		s.EnablePprof()
	}
	var policy server.SyncPolicy
	if *dataDir != "" {
		var perr error
		if policy, perr = server.ParseSyncPolicy(*fsync); perr != nil {
			logger.Error("boot failed", "err", perr)
			return 1
		}
	}

	// The boot dataset list comes from -config when given, -datasets
	// otherwise — same grammar either way. Partitions in the file belong to
	// irsrouter and are ignored here, so one file can describe a whole
	// deployment.
	list, err := bootDatasets(*config, *datasets)
	if err != nil {
		logger.Error("boot failed", "err", err)
		return 1
	}
	if err := addDatasetList(s, logger, list, *shards, *seed, *preload, *dataDir, policy, *fsyncIvl, *recoverConc); err != nil {
		logger.Error("boot failed", "err", err)
		// Datasets registered before the failing one may already hold open
		// WALs (and a durable preload may have appended records): sync and
		// close them instead of dropping the tail on the floor.
		if cerr := s.Close(); cerr != nil {
			logger.Error("close failed", "err", cerr)
		}
		return 1
	}
	// Runtime-created datasets (POST /datasets, config reload) get the
	// exact shape a boot-time one would: same shards, seed, and durability
	// knobs, minus the preload (a boot convenience, not a lifecycle one).
	s.SetProvisioner(func(name string, weighted bool) error {
		sp := spec.Dataset{Name: name, Weighted: weighted}
		if *dataDir == "" {
			return addMemoryDataset(s, sp, *shards, *seed, 0)
		}
		return addDurableDataset(s, logger, sp, *shards, *seed, 0, *dataDir, policy, *fsyncIvl)
	})
	// The boot configuration is epoch 1; each successful reload advances it.
	s.NoteReload(true)
	// Boot recovery (and any preload) is complete: the daemon is ready the
	// moment the listeners open. /readyz gates on exactly this.
	s.SetReady()

	// Background snapshots bound WAL replay time after a crash; each run
	// compacts the segments it covers.
	snapStop := make(chan struct{})
	snapDone := make(chan struct{})
	if *dataDir != "" && *snapEvery > 0 {
		go func() {
			defer close(snapDone)
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					// The registry is live — runtime adds and drops change the
					// list — so every tick snapshots whatever is registered now.
					// A dataset dropped between listing and snapshotting answers
					// unknown_dataset; skip it, the drop already took its final
					// snapshot.
					for _, name := range s.Datasets() {
						info, err := s.Snapshot(name)
						switch {
						case err == nil:
							logger.Info("snapshot committed", "dataset", name, "items", info.Items, "wal_seq", info.Seq)
						case errors.Is(err, server.ErrNotDurable), errors.Is(err, server.ErrUnknownDataset):
						default:
							logger.Error("background snapshot failed", "dataset", name, "err", err)
						}
					}
				case <-snapStop:
					return
				}
			}
		}()
	} else {
		close(snapDone)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		close(snapStop)
		<-snapDone
		// Durable datasets already recovered (and possibly preloaded):
		// sync and close their WALs even though serving never started.
		if cerr := s.Close(); cerr != nil {
			logger.Error("close failed", "err", cerr)
		}
		return 1
	}
	// The TCP listener binds before serving starts on either transport, so
	// a bad -tcp-addr fails boot instead of surfacing mid-flight.
	var tln net.Listener
	if *tcpAddr != "" {
		tln, err = net.Listen("tcp", *tcpAddr)
		if err != nil {
			logger.Error("tcp listen failed", "addr", *tcpAddr, "err", err)
			_ = ln.Close()
			close(snapStop)
			<-snapDone
			if cerr := s.Close(); cerr != nil {
				logger.Error("close failed", "err", cerr)
			}
			return 1
		}
		// The tcp line prints before the serving line so scripts waiting
		// for "serving on" can scrape both addresses in one pass.
		fmt.Printf("irsd: tcp on %s\n", tln.Addr())
	}
	// Printed (not just logged) so scripts can scrape the resolved address
	// when -addr asked for a kernel-assigned port.
	fmt.Printf("irsd: serving on http://%s\n", ln.Addr())

	// The zero-valued http.Server has no deadlines at all: one client
	// trickling header bytes holds a connection (and its goroutine) forever.
	httpSrv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: *readHdrTimeout,
		IdleTimeout:       *idleTimeout,
	}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	var tcpSrv *irsnet.Server
	var tcpDone chan error // nil (never selected) when -tcp-addr is unset
	if tln != nil {
		tcpSrv = irsnet.NewServerOpts(s, irsnet.ServerOptions{ReadBufferSize: *tcpReadBuf})
		// The TCP transport's connection and latency series join /metrics.
		s.RegisterMetrics(tcpSrv)
		tcpDone = make(chan error, 1)
		go func() { tcpDone <- tcpSrv.Serve(tln) }()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	exit := 0
	var serveErr, tcpErr error
	// shutdownBoth drains both transports: listeners close, requests
	// already read are answered and written, then the connections close.
	// Safe to call after either Serve has already returned.
	shutdownBoth := func() {
		// Readiness drops the moment drain begins — before the listeners
		// close — so orchestrators stop routing while in-flight requests
		// still complete.
		s.SetDraining()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Error("http shutdown failed", "err", err)
		}
		if tcpSrv != nil {
			if err := tcpSrv.Shutdown(shutCtx); err != nil {
				logger.Error("tcp shutdown failed", "err", err)
			}
		}
	}
	// Config hot-reload triggers: SIGHUP always (when -config is set), plus
	// an optional mtime poll. Both funnel into applying the file's dataset
	// list against the live registry; a bad file is rejected whole and the
	// running configuration stays in force.
	hup := make(chan os.Signal, 1)
	var pollC <-chan time.Time
	var lastMod time.Time
	if *config != "" {
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		if st, err := os.Stat(*config); err == nil {
			lastMod = st.ModTime()
		}
		if *configPoll > 0 {
			pt := time.NewTicker(*configPoll)
			defer pt.Stop()
			pollC = pt.C
		}
	}
serve:
	for {
		select {
		case <-ctx.Done():
			logger.Info("signal received, draining")
			shutdownBoth()
			serveErr = <-done
			if tcpDone != nil {
				tcpErr = <-tcpDone
			}
			break serve
		case serveErr = <-done:
			// HTTP serve failed on its own (listener torn down, accept error):
			// exactly the case that used to log.Fatalf past the drain below and
			// lose the last fsync interval's WAL records. Drain the other
			// transport and fall through to the same close sequence.
			shutdownBoth()
			if tcpDone != nil {
				tcpErr = <-tcpDone
			}
			break serve
		case tcpErr = <-tcpDone:
			// TCP accept failed; mirror the HTTP failure path.
			shutdownBoth()
			serveErr = <-done
			break serve
		case <-hup:
			logger.Info("SIGHUP received, reloading config", "config", *config)
			reloadConfig(s, logger, *config)
		case <-pollC:
			st, err := os.Stat(*config)
			if err != nil || st.ModTime().Equal(lastMod) {
				continue
			}
			lastMod = st.ModTime()
			logger.Info("config file changed, reloading", "config", *config)
			reloadConfig(s, logger, *config)
		}
	}
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		logger.Error("http serve failed", "err", serveErr)
		exit = 1
	}
	if tcpErr != nil {
		logger.Error("tcp serve failed", "err", tcpErr)
		exit = 1
	}
	close(snapStop)
	<-snapDone
	// Drain the coalescers (every accepted request is answered), then sync
	// and close the WALs.
	if err := s.Close(); err != nil {
		logger.Error("close failed", "err", err)
		if exit == 0 {
			exit = 1
		}
	}
	fmt.Println("irsd: drained, bye")
	return exit
}

// validateFlags rejects flag combinations irsd used to ignore silently:
// durability knobs given without -data-dir, a background fsync period
// given under a policy that never uses it, and HTTP timeouts that would
// re-open the unbounded-connection hole the defaults exist to close.
// explicit holds the flag names the user actually set on the command line
// (flag.Visit), so defaults never trip the validation.
func validateFlags(explicit map[string]bool, dataDir, fsyncPolicy string, readHeaderTimeout, idleTimeout time.Duration, recoverConc int, tcpAddr string, tcpReadBuf int, logFormat, config string, configPoll time.Duration) error {
	if logFormat != "text" && logFormat != "json" {
		return fmt.Errorf("-log-format %q: want text or json", logFormat)
	}
	if explicit["config"] && explicit["datasets"] {
		return errors.New("-config and -datasets are mutually exclusive (the config file is the dataset list)")
	}
	if configPoll < 0 {
		return errors.New("-config-poll must be >= 0 (0 disables polling)")
	}
	if explicit["config-poll"] && config == "" {
		return errors.New("-config-poll has no effect without -config (there is no file to watch)")
	}
	if readHeaderTimeout <= 0 {
		return errors.New("-read-header-timeout must be positive (a zero http.Server timeout means no limit: any client trickling header bytes pins a connection forever)")
	}
	if idleTimeout <= 0 {
		return errors.New("-idle-timeout must be positive (a zero http.Server timeout means no limit: idle keep-alive connections accumulate forever)")
	}
	if recoverConc < 0 {
		return errors.New("-recover-concurrency must be >= 0 (0 means GOMAXPROCS)")
	}
	if tcpReadBuf < 0 {
		return errors.New("-tcp-read-buf must be >= 0 (0 means the default size)")
	}
	if explicit["tcp-read-buf"] && tcpAddr == "" {
		return errors.New("-tcp-read-buf has no effect without -tcp-addr (the binary TCP transport is disabled)")
	}
	if dataDir == "" {
		for _, name := range []string{"fsync", "fsync-interval", "snapshot-every", "recover-concurrency"} {
			if explicit[name] {
				return fmt.Errorf("-%s has no effect without -data-dir (datasets are memory-only)", name)
			}
		}
		return nil
	}
	if explicit["fsync-interval"] && fsyncPolicy != "interval" {
		return fmt.Errorf("-fsync-interval has no effect with -fsync %s (use -fsync interval)", fsyncPolicy)
	}
	return nil
}

// kindOf renders a dataset spec's kind for log lines.
func kindOf(sp spec.Dataset) string {
	if sp.Weighted {
		return "weighted"
	}
	return "unweighted"
}

// bootDatasets resolves the boot dataset list: the -config file when
// given (its partitions, if any, belong to irsrouter and are skipped),
// the -datasets specs otherwise. A config with no datasets is a boot
// error — an irsd serving nothing is a misconfiguration, not a choice.
func bootDatasets(config, datasets string) ([]spec.Dataset, error) {
	if config == "" {
		return spec.ParseDatasets(datasets)
	}
	f, err := spec.Load(config)
	if err != nil {
		return nil, err
	}
	if len(f.Datasets) == 0 {
		return nil, fmt.Errorf("config %s: no datasets", config)
	}
	return f.Datasets, nil
}

// addDatasetList registers each dataset — durable when dataDir is set,
// memory-only otherwise — optionally preloaded with uniform keys. Durable
// datasets recover concurrently (bounded by recoverConc; 0 means
// GOMAXPROCS), so a daemon serving many datasets boots in the time of its
// largest, not their sum.
func addDatasetList(s *server.Server, logger *slog.Logger, list []spec.Dataset, shards int, seed uint64, preload int, dataDir string, policy server.SyncPolicy, fsyncIvl time.Duration, recoverConc int) error {
	if dataDir == "" {
		for _, sp := range list {
			if err := addMemoryDataset(s, sp, shards, seed, preload); err != nil {
				return err
			}
			logger.Info("dataset registered", "dataset", sp.Name, "kind", kindOf(sp), "shards", shards, "preload", preload)
		}
		return nil
	}
	// Recover durable datasets in parallel: each owns its directory, and
	// dataset registration (core.add) is mutex-protected, so the only
	// coordination needed is the concurrency bound.
	if recoverConc <= 0 {
		recoverConc = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, recoverConc)
	errs := make([]error, len(list))
	var wg sync.WaitGroup
	for i, sp := range list {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = addDurableDataset(s, logger, sp, shards, seed, preload, dataDir, policy, fsyncIvl)
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// reloadConfig applies the config file against the live registry: datasets
// named by the file but not registered are created (through the same
// provisioner the admin endpoint uses), registered datasets the file no
// longer names are drained and dropped (durable ones with a final
// compacting snapshot). The reload is atomic with respect to validation —
// an unreadable or malformed file, an empty dataset list, or a kind
// change on a live dataset rejects the whole file and the running
// configuration stays exactly as it was, counted as
// irsd_config_reloads_total{status="error"}.
//
// The file is authoritative: a dataset added at runtime via POST /datasets
// but absent from the file is dropped by the next reload. Keep the file
// and the admin surface in agreement, or use only one of them.
func reloadConfig(s *server.Server, logger *slog.Logger, path string) {
	fail := func(err error) {
		s.NoteReload(false)
		logger.Error("config reload rejected, keeping current config", "config", path, "err", err)
	}
	f, err := spec.Load(path)
	if err != nil {
		fail(err)
		return
	}
	if len(f.Datasets) == 0 {
		fail(fmt.Errorf("config %s: no datasets", path))
		return
	}
	cur := make(map[string]string) // live name -> kind
	for _, ds := range s.Stats().Datasets {
		cur[ds.Name] = ds.Kind
	}
	for _, d := range f.Datasets {
		if kind, live := cur[d.Name]; live && (kind == "weighted") != d.Weighted {
			fail(fmt.Errorf("dataset %q: cannot change kind %s -> %s across a reload (drop it first)", d.Name, kind, kindOf(d)))
			return
		}
	}
	// Adds go first so a failing add can roll back to the pre-reload
	// registry before anything was dropped.
	var added []string
	for _, d := range f.Datasets {
		if _, live := cur[d.Name]; live {
			continue
		}
		if err := s.AddDataset(d.Name, d.Weighted); err != nil {
			for _, name := range added {
				if rerr := s.RemoveDataset(name, false); rerr != nil {
					logger.Error("rollback drop failed", "dataset", name, "err", rerr)
				}
			}
			fail(fmt.Errorf("dataset %q: %w", d.Name, err))
			return
		}
		added = append(added, d.Name)
	}
	want := make(map[string]bool, len(f.Datasets))
	for _, d := range f.Datasets {
		want[d.Name] = true
	}
	var dropped []string
	ok := true
	for name := range cur {
		if want[name] {
			continue
		}
		// The final snapshot both compacts the WAL and makes the drop's
		// drain durable in one segment-bounded unit.
		if err := s.RemoveDataset(name, true); err != nil {
			logger.Error("config reload: drop failed", "dataset", name, "err", err)
			ok = false
			continue
		}
		dropped = append(dropped, name)
	}
	s.NoteReload(ok)
	logger.Info("config reloaded", "config", path, "added", added, "dropped", dropped,
		"datasets", len(f.Datasets), "epoch", s.ConfigEpoch(), "ok", ok)
}

// addMemoryDataset registers one memory-only dataset (the pre-durability
// irsd behavior). Both kinds surface preload and registration failures
// with the dataset name attached: the weighted batch insert can reject
// invalid weights, the unweighted one cannot fail by construction, and
// any error either path produces reaches the boot log the same way.
func addMemoryDataset(s *server.Server, sp spec.Dataset, shards int, seed uint64, preload int) error {
	name := sp.Name
	rng := irs.NewRNG(seed)
	if sp.Weighted {
		w := irs.NewWeightedConcurrent[float64](shards, seed)
		if preload > 0 {
			if err := w.InsertBatch(preloadItems(rng, preload)); err != nil {
				return fmt.Errorf("dataset %q: preload: %w", name, err)
			}
		}
		if err := s.AddWeighted(name, w); err != nil {
			return fmt.Errorf("dataset %q: %w", name, err)
		}
		return nil
	}
	c := irs.NewConcurrentSeeded[float64](shards, seed)
	if preload > 0 {
		c.InsertBatch(preloadKeys(rng, preload))
	}
	if err := s.AddUnweighted(name, c); err != nil {
		return fmt.Errorf("dataset %q: %w", name, err)
	}
	return nil
}

// addDurableDataset recovers one dataset from <dataDir>/<name> and
// registers it durable. Preloading only applies when the directory held
// nothing (a restart must not re-preload on top of recovered data); the
// preload bypasses the WAL, so it is made durable by an immediate
// snapshot — all before the listener starts.
func addDurableDataset(s *server.Server, logger *slog.Logger, sp spec.Dataset, shards int, seed uint64, preload int, dataDir string, policy server.SyncPolicy, fsyncIvl time.Duration) error {
	name := sp.Name
	opts := server.DurableOptions{
		Dir:          filepath.Join(dataDir, name),
		Sync:         policy,
		SyncInterval: fsyncIvl,
		Shards:       shards,
		Seed:         seed,
	}
	rng := irs.NewRNG(seed)
	var recovered server.Recovery
	var length int
	// Preload only a directory with no history at all: a recovered dataset
	// that happens to be empty (everything deliberately deleted) must stay
	// empty across restarts.
	fresh := func(rec server.Recovery) bool {
		return rec.SnapshotSeq == 0 && rec.RecordsReplayed == 0
	}
	if sp.Weighted {
		w, rec, err := s.AddDurableWeighted(name, opts)
		if err != nil {
			return fmt.Errorf("dataset %q: %w", name, err)
		}
		recovered = rec
		if fresh(rec) && preload > 0 {
			if err := w.InsertBatch(preloadItems(rng, preload)); err != nil {
				return fmt.Errorf("dataset %q: preload: %w", name, err)
			}
			if _, err := s.Snapshot(name); err != nil {
				return fmt.Errorf("dataset %q: preload snapshot: %w", name, err)
			}
		}
		length = w.Len()
	} else {
		c, rec, err := s.AddDurableUnweighted(name, opts)
		if err != nil {
			return fmt.Errorf("dataset %q: %w", name, err)
		}
		recovered = rec
		if fresh(rec) && preload > 0 {
			c.InsertBatch(preloadKeys(rng, preload))
			if _, err := s.Snapshot(name); err != nil {
				return fmt.Errorf("dataset %q: preload snapshot: %w", name, err)
			}
		}
		length = c.Len()
	}
	logger.Info("dataset recovered", "dataset", name, "kind", kindOf(sp), "items", length,
		"snapshot_seq", recovered.SnapshotSeq, "snapshot_entries", recovered.SnapshotEntries,
		"wal_records", recovered.RecordsReplayed, "torn_tail", recovered.TornTail)
	return nil
}

func preloadKeys(rng *irs.RNG, n int) []float64 {
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.Float64Range(0, 1e6)
	}
	return keys
}

func preloadItems(rng *irs.RNG, n int) []irs.WeightedItem[float64] {
	items := make([]irs.WeightedItem[float64], n)
	for i := range items {
		items[i] = irs.WeightedItem[float64]{Key: rng.Float64Range(0, 1e6), Weight: 1 + rng.Float64()}
	}
	return items
}
