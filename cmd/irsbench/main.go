// Command irsbench regenerates the experiment tables recorded in
// EXPERIMENTS.md. Each experiment validates one complexity or correctness
// claim of the reproduced paper (or a labelled extension).
//
// Usage:
//
//	irsbench -list
//	irsbench -experiment E6
//	irsbench -experiment E1,E4,E10 -quick
//	irsbench -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/irsgo/irs/internal/bench"
)

func main() {
	var (
		expFlag = flag.String("experiment", "", "comma-separated experiment ids (e.g. E1,E6)")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "smaller datasets and measurement windows")
		seed    = flag.Uint64("seed", 1, "RNG seed; equal seeds give equal workloads")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []bench.Experiment
	switch {
	case *all:
		todo = bench.All()
	case *expFlag != "":
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "irsbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Printf("irsbench: %d experiment(s), %s mode, seed %d\n\n", len(todo), mode, *seed)
	for _, e := range todo {
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irsbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, tab := range tables {
			tab.Fprint(os.Stdout)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
