// Command irsbench regenerates the experiment tables recorded in
// EXPERIMENTS.md. Each experiment validates one complexity or correctness
// claim of the reproduced paper (or a labelled extension).
//
// Usage:
//
//	irsbench -list
//	irsbench -experiment E6
//	irsbench -experiment E1,E4,E10 -quick
//	irsbench -all
//	irsbench -experiment E1 -quick -json BENCH_ci.json
//
// With -json the structured results (every table cell, plus run metadata)
// are additionally written to the given file, one JSON document per run —
// the machine-readable form CI archives per commit to track the perf
// trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/irsgo/irs/internal/bench"
)

// jsonResult is the -json document: run metadata plus every experiment's
// tables verbatim.
type jsonResult struct {
	Mode        string           `json:"mode"` // "quick" or "full"
	Seed        uint64           `json:"seed"`
	GeneratedAt time.Time        `json:"generated_at"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID      string         `json:"id"`
	Title   string         `json:"title"`
	Seconds float64        `json:"seconds"`
	Tables  []*bench.Table `json:"tables"`
}

func main() {
	var (
		expFlag  = flag.String("experiment", "", "comma-separated experiment ids (e.g. E1,E6)")
		all      = flag.Bool("all", false, "run every experiment")
		quick    = flag.Bool("quick", false, "smaller datasets and measurement windows")
		seed     = flag.Uint64("seed", 1, "RNG seed; equal seeds give equal workloads")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonPath = flag.String("json", "", "also write structured results to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []bench.Experiment
	switch {
	case *all:
		todo = bench.All()
	case *expFlag != "":
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "irsbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Printf("irsbench: %d experiment(s), %s mode, seed %d\n\n", len(todo), mode, *seed)
	out := jsonResult{Mode: mode, Seed: *seed, GeneratedAt: time.Now().UTC()}
	for _, e := range todo {
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irsbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, tab := range tables {
			tab.Fprint(os.Stdout)
		}
		elapsed := time.Since(start)
		fmt.Printf("(%s completed in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		out.Experiments = append(out.Experiments, jsonExperiment{
			ID: e.ID, Title: e.Title, Seconds: elapsed.Seconds(), Tables: tables,
		})
	}
	if *jsonPath != "" {
		raw, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "irsbench: encoding -json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "irsbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("irsbench: structured results written to %s\n", *jsonPath)
	}
}
