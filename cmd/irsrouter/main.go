// Command irsrouter is the IRS cluster router: it fronts a set of irsd
// nodes, each owning one contiguous key range, and serves the exact same
// protocols a single node speaks — HTTP/JSON, HTTP binary frames, and
// (with -tcp-addr) the persistent multiplexed binary TCP transport — so
// clients talk to a cluster exactly as they talk to one daemon.
//
// Usage:
//
//	irsrouter -addr 127.0.0.1:9090 \
//	  -partitions '127.0.0.1:8081@0:1e6,127.0.0.1:8082@1e6:2e6,127.0.0.1:8083@2e6:+inf' \
//	  -datasets events
//
// Partitions are "addr@lo:hi" specs (internal/spec grammar): contiguous
// ascending key ranges, '@' separating the node address from the range
// because addresses contain ':'. Bounds accept -inf/+inf. Each node must
// serve the configured datasets over -node-encoding (json, binary, or
// tcp).
//
// Cross-partition sample requests are split exactly: per-partition
// in-range (count, mass) probes, a multinomial draw over partition
// masses, per-partition sub-samples, and a scatter back into draw order —
// the same construction the in-process sharded sampler uses, one level
// up, so samples through the router are distributed identically to a
// single node holding the union. Mutations route by key range. A request
// touching an unreachable node answers the typed "unavailable" error
// while other partitions keep serving.
//
// /stats aggregates the nodes' views; /metrics adds per-partition request
// and failure counters plus refreshed per-partition key/mass gauges
// (-refresh sets the cadence); /healthz and /readyz behave as on irsd,
// with readiness dropping the moment a drain begins. The chosen addresses
// print as "irsrouter: serving on http://..." and "irsrouter: tcp on ..."
// for wrappers to scrape, and SIGINT/SIGTERM drain gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/irsgo/irs/client"
	"github.com/irsgo/irs/internal/cluster"
	"github.com/irsgo/irs/internal/spec"
	"github.com/irsgo/irs/server"
	"github.com/irsgo/irs/server/irsnet"
)

// version is the build identity reported by /stats, /metrics, and the
// boot log; release builds stamp it with
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/irsrouter
var version = "dev"

func main() { os.Exit(run()) }

// newLogger mirrors irsd: slog text or JSON on stderr; the machine-scraped
// stdout lines stay plain prints.
func newLogger(format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:9090", "listen address (port 0 picks a free port)")
		tcpAddr    = flag.String("tcp-addr", "", "persistent binary TCP listen address (empty disables; port 0 picks a free port)")
		tcpReadBuf = flag.Int("tcp-read-buf", 0, "per-connection read buffer for the binary TCP transport, bytes (0 = default)")
		partitions = flag.String("partitions", "", "comma-separated addr@lo:hi partition specs, contiguous and ascending (required)")
		datasets   = flag.String("datasets", "demo", "comma-separated name[:weighted|:unweighted] specs the cluster serves")
		encoding   = flag.String("node-encoding", "binary", "wire encoding toward the nodes: json, binary, or tcp")
		seed       = flag.Uint64("seed", 1, "seed for the cross-partition multinomial split")
		timeout    = flag.Duration("node-timeout", 10*time.Second, "per-node request deadline (0 = none)")
		refresh    = flag.Duration("refresh", 15*time.Second, "partition stats refresh period for /metrics gauges (0 disables)")

		readHdrTimeout = flag.Duration("read-header-timeout", 5*time.Second, "HTTP header read deadline per request")
		idleTimeout    = flag.Duration("idle-timeout", 2*time.Minute, "HTTP keep-alive idle connection deadline")

		logFormat   = flag.String("log-format", "text", "structured log encoding: text or json")
		enablePprof = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the HTTP address")
	)
	flag.Parse()

	if err := validateFlags(*partitions, *logFormat, *readHdrTimeout, *idleTimeout, *tcpAddr, *tcpReadBuf); err != nil {
		newLogger("text").Error("invalid flags", "err", err)
		return 2
	}
	logger := newLogger(*logFormat)
	logger.Info("irsrouter starting", "version", version, "go", runtime.Version(), "pid", os.Getpid())

	router, err := buildRouter(*partitions, *datasets, *encoding, *seed, *timeout)
	if err != nil {
		logger.Error("boot failed", "err", err)
		return 1
	}
	for i := 0; i < router.Map().Len(); i++ {
		p := router.Map().At(i)
		logger.Info("partition", "index", i, "addr", p.Addr, "lo", p.Lo, "hi", p.Hi)
	}

	s := server.NewProxy(router)
	s.SetVersion(version)
	if *enablePprof {
		s.EnablePprof()
	}
	// Prime the partition gauges once, best-effort: a node still booting
	// must not fail the router's boot — requests to it answer
	// "unavailable" until it appears.
	_ = router.Stats()
	s.SetReady()

	refreshStop := make(chan struct{})
	refreshDone := make(chan struct{})
	if *refresh > 0 {
		go func() {
			defer close(refreshDone)
			t := time.NewTicker(*refresh)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					_ = router.Stats() // refreshes the map's cached (count, mass)
				case <-refreshStop:
					return
				}
			}
		}()
	} else {
		close(refreshDone)
	}
	stopRefresh := func() {
		close(refreshStop)
		<-refreshDone
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		stopRefresh()
		_ = s.Close()
		return 1
	}
	var tln net.Listener
	if *tcpAddr != "" {
		tln, err = net.Listen("tcp", *tcpAddr)
		if err != nil {
			logger.Error("tcp listen failed", "addr", *tcpAddr, "err", err)
			_ = ln.Close()
			stopRefresh()
			_ = s.Close()
			return 1
		}
		fmt.Printf("irsrouter: tcp on %s\n", tln.Addr())
	}
	fmt.Printf("irsrouter: serving on http://%s\n", ln.Addr())

	httpSrv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: *readHdrTimeout,
		IdleTimeout:       *idleTimeout,
	}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	var tcpSrv *irsnet.Server
	var tcpDone chan error
	if tln != nil {
		tcpSrv = irsnet.NewServerOpts(s, irsnet.ServerOptions{ReadBufferSize: *tcpReadBuf})
		s.RegisterMetrics(tcpSrv)
		tcpDone = make(chan error, 1)
		go func() { tcpDone <- tcpSrv.Serve(tln) }()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	exit := 0
	var serveErr, tcpErr error
	shutdownBoth := func() {
		s.SetDraining()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Error("http shutdown failed", "err", err)
		}
		if tcpSrv != nil {
			if err := tcpSrv.Shutdown(shutCtx); err != nil {
				logger.Error("tcp shutdown failed", "err", err)
			}
		}
	}
	select {
	case <-ctx.Done():
		logger.Info("signal received, draining")
		shutdownBoth()
		serveErr = <-done
		if tcpDone != nil {
			tcpErr = <-tcpDone
		}
	case serveErr = <-done:
		shutdownBoth()
		if tcpDone != nil {
			tcpErr = <-tcpDone
		}
	case tcpErr = <-tcpDone:
		shutdownBoth()
		serveErr = <-done
	}
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		logger.Error("http serve failed", "err", serveErr)
		exit = 1
	}
	if tcpErr != nil {
		logger.Error("tcp serve failed", "err", tcpErr)
		exit = 1
	}
	stopRefresh()
	// Close the proxy: the backend Close releases the node connections.
	if err := s.Close(); err != nil {
		logger.Error("close failed", "err", err)
		if exit == 0 {
			exit = 1
		}
	}
	fmt.Println("irsrouter: drained, bye")
	return exit
}

// buildRouter parses the partition and dataset specs, dials one
// connection per node, and assembles the cluster router. Dialing is lazy
// on every encoding, so a node that is still booting does not fail the
// router's boot.
func buildRouter(partitionSpecs, datasetSpecs, encoding string, seed uint64, timeout time.Duration) (*cluster.Router, error) {
	pspecs, err := spec.ParsePartitions(partitionSpecs)
	if err != nil {
		return nil, err
	}
	parts := make([]cluster.Partition, len(pspecs))
	conns := make([]client.Conn, len(pspecs))
	for i, ps := range pspecs {
		parts[i] = cluster.Partition{Addr: ps.Addr, Lo: ps.Lo, Hi: ps.Hi}
		if conns[i], err = client.Dial(ps.Addr, encoding); err != nil {
			return nil, fmt.Errorf("partition %d (%s): %w", i, ps.Addr, err)
		}
	}
	m, err := cluster.New(parts)
	if err != nil {
		return nil, err
	}
	dspecs, err := spec.ParseDatasets(datasetSpecs)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(dspecs))
	for i, d := range dspecs {
		names[i] = d.Name
	}
	return cluster.NewRouter(m, conns, cluster.Options{
		Datasets: names,
		Seed:     seed,
		Timeout:  timeout,
	})
}

// validateFlags rejects contradictions before any connection is dialed.
func validateFlags(partitions, logFormat string, readHeaderTimeout, idleTimeout time.Duration, tcpAddr string, tcpReadBuf int) error {
	if partitions == "" {
		return errors.New("-partitions is required (comma-separated addr@lo:hi specs)")
	}
	if logFormat != "text" && logFormat != "json" {
		return fmt.Errorf("-log-format %q: want text or json", logFormat)
	}
	if readHeaderTimeout <= 0 {
		return errors.New("-read-header-timeout must be positive")
	}
	if idleTimeout <= 0 {
		return errors.New("-idle-timeout must be positive")
	}
	if tcpReadBuf < 0 {
		return errors.New("-tcp-read-buf must be >= 0 (0 means the default size)")
	}
	if tcpReadBuf > 0 && tcpAddr == "" {
		return errors.New("-tcp-read-buf has no effect without -tcp-addr")
	}
	return nil
}
