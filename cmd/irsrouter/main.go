// Command irsrouter is the IRS cluster router: it fronts a set of irsd
// nodes, each owning one contiguous key range, and serves the exact same
// protocols a single node speaks — HTTP/JSON, HTTP binary frames, and
// (with -tcp-addr) the persistent multiplexed binary TCP transport — so
// clients talk to a cluster exactly as they talk to one daemon.
//
// Usage:
//
//	irsrouter -addr 127.0.0.1:9090 \
//	  -partitions '127.0.0.1:8081@0:1e6,127.0.0.1:8082@1e6:2e6,127.0.0.1:8083@2e6:+inf' \
//	  -datasets events
//
// Partitions are "addr@lo:hi" specs (internal/spec grammar): contiguous
// ascending key ranges, '@' separating the node address from the range
// because addresses contain ':'. Bounds accept -inf/+inf. Each node must
// serve the configured datasets over -node-encoding (json, binary, or
// tcp).
//
// With -config the topology (partition lines and dataset lines, same
// grammar, one element per line or comma, # comments) comes from a config
// file instead of -partitions/-datasets, and SIGHUP re-reads it and swaps
// the partition map atomically: the new map is fully validated and its
// node connections dialed before the swap, a failed reload keeps the
// current topology, requests in flight finish on the map they started on,
// and new requests route by the new map — zero requests dropped across a
// repartition.
//
// Cross-partition sample requests are split exactly: per-partition
// in-range (count, mass) probes, a multinomial draw over partition
// masses, per-partition sub-samples, and a scatter back into draw order —
// the same construction the in-process sharded sampler uses, one level
// up, so samples through the router are distributed identically to a
// single node holding the union. Mutations route by key range. A request
// touching an unreachable node answers the typed "unavailable" error
// while other partitions keep serving.
//
// /stats aggregates the nodes' views; /metrics adds per-partition request
// and failure counters plus refreshed per-partition key/mass gauges
// (-refresh sets the cadence); /healthz and /readyz behave as on irsd,
// with readiness dropping the moment a drain begins. The chosen addresses
// print as "irsrouter: serving on http://..." and "irsrouter: tcp on ..."
// for wrappers to scrape, and SIGINT/SIGTERM drain gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/irsgo/irs/client"
	"github.com/irsgo/irs/internal/cluster"
	"github.com/irsgo/irs/internal/spec"
	"github.com/irsgo/irs/server"
	"github.com/irsgo/irs/server/irsnet"
)

// version is the build identity reported by /stats, /metrics, and the
// boot log; release builds stamp it with
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/irsrouter
var version = "dev"

func main() { os.Exit(run()) }

// newLogger mirrors irsd: slog text or JSON on stderr; the machine-scraped
// stdout lines stay plain prints.
func newLogger(format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:9090", "listen address (port 0 picks a free port)")
		tcpAddr    = flag.String("tcp-addr", "", "persistent binary TCP listen address (empty disables; port 0 picks a free port)")
		tcpReadBuf = flag.Int("tcp-read-buf", 0, "per-connection read buffer for the binary TCP transport, bytes (0 = default)")
		partitions = flag.String("partitions", "", "comma-separated addr@lo:hi partition specs, contiguous and ascending (required unless -config)")
		datasets   = flag.String("datasets", "demo", "comma-separated name[:weighted|:unweighted] specs the cluster serves")
		config     = flag.String("config", "", "config file naming the partitions and datasets (spec grammar, one per line, '#' comments); mutually exclusive with -partitions/-datasets, reloaded on SIGHUP")
		encoding   = flag.String("node-encoding", "binary", "wire encoding toward the nodes: json, binary, or tcp")
		seed       = flag.Uint64("seed", 1, "seed for the cross-partition multinomial split")
		timeout    = flag.Duration("node-timeout", 10*time.Second, "per-node request deadline (0 = none)")
		refresh    = flag.Duration("refresh", 15*time.Second, "partition stats refresh period for /metrics gauges (0 disables)")

		readHdrTimeout = flag.Duration("read-header-timeout", 5*time.Second, "HTTP header read deadline per request")
		idleTimeout    = flag.Duration("idle-timeout", 2*time.Minute, "HTTP keep-alive idle connection deadline")

		logFormat   = flag.String("log-format", "text", "structured log encoding: text or json")
		enablePprof = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the HTTP address")
	)
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := validateFlags(explicit, *partitions, *logFormat, *readHdrTimeout, *idleTimeout, *tcpAddr, *tcpReadBuf, *config); err != nil {
		newLogger("text").Error("invalid flags", "err", err)
		return 2
	}
	logger := newLogger(*logFormat)
	logger.Info("irsrouter starting", "version", version, "go", runtime.Version(), "pid", os.Getpid())

	topo, err := bootTopology(*config, *partitions, *datasets)
	if err != nil {
		logger.Error("boot failed", "err", err)
		return 1
	}
	m, conns, names, err := buildTopology(topo, *encoding)
	if err != nil {
		logger.Error("boot failed", "err", err)
		return 1
	}
	router, err := cluster.NewRouter(m, conns, cluster.Options{
		Datasets: names,
		Seed:     *seed,
		Timeout:  *timeout,
	})
	if err != nil {
		logger.Error("boot failed", "err", err)
		return 1
	}
	for i := 0; i < router.Map().Len(); i++ {
		p := router.Map().At(i)
		logger.Info("partition", "index", i, "addr", p.Addr, "lo", p.Lo, "hi", p.Hi)
	}

	s := server.NewProxy(router)
	s.SetVersion(version)
	if *enablePprof {
		s.EnablePprof()
	}
	// Prime the partition gauges once, best-effort: a node still booting
	// must not fail the router's boot — requests to it answer
	// "unavailable" until it appears.
	_ = router.Stats()
	// The boot topology is config epoch 1; each applied reload advances it.
	s.NoteReload(true)
	s.SetReady()

	refreshStop := make(chan struct{})
	refreshDone := make(chan struct{})
	if *refresh > 0 {
		go func() {
			defer close(refreshDone)
			t := time.NewTicker(*refresh)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					_ = router.Stats() // refreshes the map's cached (count, mass)
				case <-refreshStop:
					return
				}
			}
		}()
	} else {
		close(refreshDone)
	}
	stopRefresh := func() {
		close(refreshStop)
		<-refreshDone
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		stopRefresh()
		_ = s.Close()
		return 1
	}
	var tln net.Listener
	if *tcpAddr != "" {
		tln, err = net.Listen("tcp", *tcpAddr)
		if err != nil {
			logger.Error("tcp listen failed", "addr", *tcpAddr, "err", err)
			_ = ln.Close()
			stopRefresh()
			_ = s.Close()
			return 1
		}
		fmt.Printf("irsrouter: tcp on %s\n", tln.Addr())
	}
	fmt.Printf("irsrouter: serving on http://%s\n", ln.Addr())

	httpSrv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: *readHdrTimeout,
		IdleTimeout:       *idleTimeout,
	}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	var tcpSrv *irsnet.Server
	var tcpDone chan error
	if tln != nil {
		tcpSrv = irsnet.NewServerOpts(s, irsnet.ServerOptions{ReadBufferSize: *tcpReadBuf})
		s.RegisterMetrics(tcpSrv)
		tcpDone = make(chan error, 1)
		go func() { tcpDone <- tcpSrv.Serve(tln) }()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	exit := 0
	var serveErr, tcpErr error
	shutdownBoth := func() {
		s.SetDraining()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Error("http shutdown failed", "err", err)
		}
		if tcpSrv != nil {
			if err := tcpSrv.Shutdown(shutCtx); err != nil {
				logger.Error("tcp shutdown failed", "err", err)
			}
		}
	}
	// SIGHUP reloads the config file: the new partition map and fresh node
	// connections are built and validated first, then swapped in atomically
	// — requests in flight finish on the map they were routed with, and the
	// old generation's connections close when its last request completes.
	// Zero requests are dropped by a swap.
	hup := make(chan os.Signal, 1)
	if *config != "" {
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
	}
serve:
	for {
		select {
		case <-ctx.Done():
			logger.Info("signal received, draining")
			shutdownBoth()
			serveErr = <-done
			if tcpDone != nil {
				tcpErr = <-tcpDone
			}
			break serve
		case serveErr = <-done:
			shutdownBoth()
			if tcpDone != nil {
				tcpErr = <-tcpDone
			}
			break serve
		case tcpErr = <-tcpDone:
			shutdownBoth()
			serveErr = <-done
			break serve
		case <-hup:
			logger.Info("SIGHUP received, reloading config", "config", *config)
			reloadConfig(s, router, logger, *config, *encoding)
		}
	}
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		logger.Error("http serve failed", "err", serveErr)
		exit = 1
	}
	if tcpErr != nil {
		logger.Error("tcp serve failed", "err", tcpErr)
		exit = 1
	}
	stopRefresh()
	// Close the proxy: the backend Close releases the node connections.
	if err := s.Close(); err != nil {
		logger.Error("close failed", "err", err)
		if exit == 0 {
			exit = 1
		}
	}
	fmt.Println("irsrouter: drained, bye")
	return exit
}

// bootTopology resolves the boot topology: the -config file when given,
// the -partitions/-datasets flags otherwise — same grammar either way.
func bootTopology(config, partitionSpecs, datasetSpecs string) (spec.File, error) {
	if config == "" {
		pspecs, err := spec.ParsePartitions(partitionSpecs)
		if err != nil {
			return spec.File{}, err
		}
		dspecs, err := spec.ParseDatasets(datasetSpecs)
		if err != nil {
			return spec.File{}, err
		}
		return spec.File{Datasets: dspecs, Partitions: pspecs}, nil
	}
	f, err := spec.Load(config)
	if err != nil {
		return spec.File{}, err
	}
	if len(f.Partitions) == 0 {
		return spec.File{}, fmt.Errorf("config %s: no partitions", config)
	}
	if len(f.Datasets) == 0 {
		return spec.File{}, fmt.Errorf("config %s: no datasets", config)
	}
	return f, nil
}

// buildTopology dials one connection per partition and validates the map.
// Dialing is lazy on every encoding, so a node that is still booting does
// not fail the build; map validation (contiguous ascending ranges) is not
// lazy — a malformed topology never gets installed. On error, any
// connections already dialed are closed.
func buildTopology(f spec.File, encoding string) (*cluster.Map, []client.Conn, []string, error) {
	parts := make([]cluster.Partition, len(f.Partitions))
	conns := make([]client.Conn, 0, len(f.Partitions))
	closeAll := func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}
	for i, ps := range f.Partitions {
		parts[i] = cluster.Partition{Addr: ps.Addr, Lo: ps.Lo, Hi: ps.Hi}
		c, err := client.Dial(ps.Addr, encoding)
		if err != nil {
			closeAll()
			return nil, nil, nil, fmt.Errorf("partition %d (%s): %w", i, ps.Addr, err)
		}
		conns = append(conns, c)
	}
	m, err := cluster.New(parts)
	if err != nil {
		closeAll()
		return nil, nil, nil, err
	}
	return m, conns, f.DatasetNames(), nil
}

// reloadConfig rebuilds the topology from the config file and swaps it
// into the router. Everything validates before the swap — an unreadable
// file, a malformed map, or a failed dial rejects the reload whole and
// the router keeps serving the old topology, counted as
// irsd_config_reloads_total{status="error"}.
func reloadConfig(s *server.Server, router *cluster.Router, logger *slog.Logger, path, encoding string) {
	fail := func(err error) {
		s.NoteReload(false)
		logger.Error("config reload rejected, keeping current topology", "config", path, "err", err)
	}
	f, err := bootTopology(path, "", "")
	if err != nil {
		fail(err)
		return
	}
	m, conns, names, err := buildTopology(f, encoding)
	if err != nil {
		fail(err)
		return
	}
	if err := router.SetMap(m, conns, names); err != nil {
		for _, c := range conns {
			_ = c.Close()
		}
		fail(err)
		return
	}
	s.NoteReload(true)
	// Prime the new map's partition gauges, best-effort.
	_ = router.Stats()
	logger.Info("config reloaded", "config", path, "partitions", m.Len(),
		"datasets", names, "map_epoch", router.Epoch(), "config_epoch", s.ConfigEpoch())
}

// validateFlags rejects contradictions before any connection is dialed.
func validateFlags(explicit map[string]bool, partitions, logFormat string, readHeaderTimeout, idleTimeout time.Duration, tcpAddr string, tcpReadBuf int, config string) error {
	if explicit["config"] && (explicit["partitions"] || explicit["datasets"]) {
		return errors.New("-config and -partitions/-datasets are mutually exclusive (the config file is the topology)")
	}
	if config == "" && partitions == "" {
		return errors.New("-partitions is required (comma-separated addr@lo:hi specs), or give -config")
	}
	if logFormat != "text" && logFormat != "json" {
		return fmt.Errorf("-log-format %q: want text or json", logFormat)
	}
	if readHeaderTimeout <= 0 {
		return errors.New("-read-header-timeout must be positive")
	}
	if idleTimeout <= 0 {
		return errors.New("-idle-timeout must be positive")
	}
	if tcpReadBuf < 0 {
		return errors.New("-tcp-read-buf must be >= 0 (0 means the default size)")
	}
	if tcpReadBuf > 0 && tcpAddr == "" {
		return errors.New("-tcp-read-buf has no effect without -tcp-addr")
	}
	return nil
}
