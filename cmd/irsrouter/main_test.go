package main

import (
	"testing"
	"time"
)

// TestValidateFlags pins the router's flag-combination validation,
// including the -config / -partitions / -datasets mutual exclusion: the
// config file is the topology, so giving both would leave two sources of
// truth disagreeing after the first reload.
func TestValidateFlags(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := make(map[string]bool, len(names))
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	const okTimeout = 5 * time.Second
	const parts = "127.0.0.1:8081@0:10"
	cases := []struct {
		name       string
		explicit   map[string]bool
		partitions string
		logFormat  string
		readHdrTO  time.Duration
		idleTO     time.Duration
		tcpAddr    string
		tcpReadBuf int
		config     string
		wantErr    bool
	}{
		{"partitions given", set("partitions"), parts, "text", okTimeout, okTimeout, "", 0, "", false},
		{"nothing given", set(), "", "text", okTimeout, okTimeout, "", 0, "", true},
		{"config instead of partitions", set("config"), "", "text", okTimeout, okTimeout, "", 0, "/tmp/irs.conf", false},
		{"config with partitions", set("config", "partitions"), parts, "text", okTimeout, okTimeout, "", 0, "/tmp/irs.conf", true},
		{"config with datasets", set("config", "datasets"), "", "text", okTimeout, okTimeout, "", 0, "/tmp/irs.conf", true},
		{"log-format json", set("partitions", "log-format"), parts, "json", okTimeout, okTimeout, "", 0, "", false},
		{"log-format unknown", set("partitions", "log-format"), parts, "logfmt", okTimeout, okTimeout, "", 0, "", true},
		{"zero read-header-timeout", set("partitions"), parts, "text", 0, okTimeout, "", 0, "", true},
		{"zero idle-timeout", set("partitions"), parts, "text", okTimeout, 0, "", 0, "", true},
		{"tcp-read-buf without tcp-addr", set("partitions", "tcp-read-buf"), parts, "text", okTimeout, okTimeout, "", 64 << 10, "", true},
		{"tcp-read-buf with tcp-addr", set("partitions", "tcp-addr", "tcp-read-buf"), parts, "text", okTimeout, okTimeout, "127.0.0.1:0", 64 << 10, "", false},
		{"negative tcp-read-buf", set("partitions", "tcp-addr", "tcp-read-buf"), parts, "text", okTimeout, okTimeout, "127.0.0.1:0", -1, "", true},
	}
	for _, tc := range cases {
		err := validateFlags(tc.explicit, tc.partitions, tc.logFormat, tc.readHdrTO, tc.idleTO, tc.tcpAddr, tc.tcpReadBuf, tc.config)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}
}
