// Command irsload is the irsd load harness: it drives a live daemon over
// the JSON, binary-HTTP, and persistent-TCP (irsnet) encodings and
// reports end-to-end throughput, latency percentiles, and client-side
// allocation rates — the serving-layer perf trajectory
// BENCH_serving.json archives per commit, and the ingest trajectory
// BENCH_ingest.json archives for the durable write path.
//
// Usage:
//
//	irsd -addr 127.0.0.1:0 -tcp-addr 127.0.0.1:0 -datasets demo -preload 100000 &
//	irsload -addr http://127.0.0.1:<port> -concurrency 64 -t 256 -duration 3s
//	irsload -addr ... -encoding binary -mode open -rate 20000
//	irsload -addr ... -encoding tcp -tcp-addr 127.0.0.1:<tcp-port>
//	irsload -addr ... -tcp-addr ... -encoding all -json BENCH_serving.json
//	irsload -addr ... -workload insert -acked-file /tmp/acked
//
// Three workloads:
//
//   - sample (default): every request samples t keys from [lo, hi].
//   - insert: every request inserts t brand-new keys. Each worker owns a
//     disjoint key range (worker w's keys live at (w+1)*1e12 + seq), so
//     every inserted key is unique across workers, encodings, and the
//     warm-up — which makes "keys recovered >= keys acknowledged" a valid
//     crash-recovery check. -ensure preloading is skipped.
//   - mixed: every 4th request per worker is an insert, the rest sample.
//
// With -acked-file the harness continuously publishes the cumulative
// count of acknowledged inserted keys to that file (atomic
// write-to-temp-then-rename, ~15x per second). Killing the daemon with
// SIGKILL and comparing its recovered key count against the file is the
// crash-durability smoke test CI runs: under -fsync always every
// acknowledged key must survive.
//
// Insert and mixed workloads are closed-loop only.
//
// Two load models:
//
//   - closed (default): -concurrency workers each issue requests
//     back-to-back, so offered load adapts to service rate — the model for
//     measuring peak sustainable throughput.
//   - open: arrivals are dispatched at a fixed -rate regardless of
//     completions (each request on its own goroutine), so latency includes
//     queueing under an offered load the server does not control — the
//     model for measuring behavior at a target traffic level.
//
// With -encoding both (json + binary) or all (json + binary + tcp) the
// same phase runs once per encoding and the JSON document carries
// cross-encoding throughput ratios, the headlines each wire format exists
// for. Overloaded (503) responses count as rejected, not errors:
// backpressure is a correct answer under load.
//
// -addr (and, for tcp, -tcp-addr) accept comma-separated lists: the whole
// measurement matrix runs once per target and each JSON row carries a
// "target" field, so one invocation can compare a set of irsd nodes, or a
// node against the irsrouter fronting it. Cross-encoding speedup ratios
// are only computed for a single target.
//
// With -curve "1000,2000,5000,..." the harness instead sweeps the open
// load model across the given offered rates (sample workload only) and
// emits one row per (encoding, rate): delivered throughput and
// p50/p90/p99 latency — the latency-under-load curve BENCH_latency.json
// archives per commit. Each step gets its own warm-up, and latency at a
// step includes queueing, which is the point: the curve shows where the
// knee is.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/irsgo/irs/server"
	"github.com/irsgo/irs/server/irsnet"
)

// sampleClient is the request surface a load phase drives. *server.Client
// (json and binary over HTTP) and *irsnet.Client (persistent TCP)
// implement it identically, so every encoding runs the same loops.
type sampleClient interface {
	Sample(ctx context.Context, dataset string, lo, hi float64, t int) ([]float64, error)
	SampleAppend(ctx context.Context, dataset string, dst []float64, lo, hi float64, t int) ([]float64, error)
	InsertKeys(ctx context.Context, dataset string, keys []float64) (int, error)
}

type latencySummary struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// encodingResult is one measured phase (one target, one encoding, one
// load model).
type encodingResult struct {
	// Target is the daemon this phase drove — one row per target when
	// -addr lists several (e.g. every node of a cluster, or nodes plus
	// the router fronting them).
	Target   string `json:"target,omitempty"`
	Encoding string `json:"encoding"` // "json", "binary", or "tcp"
	Mode     string `json:"mode"`     // "closed" or "open"
	Requests int    `json:"requests"`
	Rejected int    `json:"rejected"` // 503 overloaded (backpressure)
	Errors   int    `json:"errors"`   // everything else
	// Dropped counts open-loop arrivals the generator itself discarded
	// because all in-flight slots were busy — generator saturation, not
	// server backpressure.
	Dropped     int     `json:"dropped_by_generator,omitempty"`
	DurationSec float64 `json:"duration_s"`
	// Inserts counts the successful insert requests within Requests (0
	// for the sample workload, all of them for insert).
	Inserts       int     `json:"insert_requests,omitempty"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// SamplesPerSec is delivered samples/s for sample requests plus
	// acknowledged keys/s for insert requests — the per-item throughput
	// either way.
	SamplesPerSec float64        `json:"samples_per_s"`
	LatencyUS     latencySummary `json:"latency_us"`
	MallocsPerOp  float64        `json:"client_mallocs_per_op"`
}

// curvePoint is one step of the -curve sweep: an offered open-loop load
// and what the daemon delivered at it.
type curvePoint struct {
	OfferedRPS float64 `json:"offered_rps"`
	encodingResult
}

// benchDoc is the BENCH_serving.json document.
type benchDoc struct {
	GeneratedAt time.Time        `json:"generated_at"`
	Note        string           `json:"note,omitempty"`
	Addr        string           `json:"addr"`
	TCPAddr     string           `json:"tcp_addr,omitempty"`
	Dataset     string           `json:"dataset,omitempty"`
	Workload    string           `json:"workload"`
	Mode        string           `json:"mode"`
	Concurrency int              `json:"concurrency"`
	RatePerSec  float64          `json:"rate_per_s,omitempty"` // open mode only
	T           int              `json:"t"`
	Lo          float64          `json:"lo"`
	Hi          float64          `json:"hi"`
	Results     []encodingResult `json:"results,omitempty"`
	// Curve holds the -curve sweep rows, ordered by encoding then offered
	// rate; Results stays empty for a sweep run.
	Curve []curvePoint `json:"curve,omitempty"`
	// SpeedupBinaryOverJSON is binary-HTTP throughput / JSON throughput
	// when both encodings ran; SpeedupTCPOverBinary is persistent-TCP
	// throughput / binary-HTTP throughput likewise.
	SpeedupBinaryOverJSON float64 `json:"speedup_binary_over_json,omitempty"`
	SpeedupTCPOverBinary  float64 `json:"speedup_tcp_over_binary,omitempty"`
}

func main() {
	var (
		addr      = flag.String("addr", "", "comma-separated base URLs of running daemons (required), e.g. http://127.0.0.1:8080; several targets run the full phase matrix per target")
		tcpAddr   = flag.String("tcp-addr", "", "comma-separated host:port of each daemon's -tcp-addr listener, aligned with -addr (required for -encoding tcp or all)")
		dataset   = flag.String("dataset", "", "dataset name (empty = the daemon's sole dataset)")
		encoding  = flag.String("encoding", "both", "wire encoding to drive: json, binary, tcp, both (json+binary), or all")
		workload  = flag.String("workload", "sample", "request mix: sample, insert (t new keys per request), or mixed (every 4th request inserts)")
		mode      = flag.String("mode", "closed", "load model: closed (fixed concurrency) or open (fixed arrival rate)")
		conc      = flag.Int("concurrency", 64, "closed-loop worker count (also bounds open-loop in-flight requests)")
		rate      = flag.Float64("rate", 10_000, "open-loop arrival rate, requests/s")
		tPer      = flag.Int("t", 256, "samples per request")
		lo        = flag.Float64("lo", 0, "range lower bound")
		hi        = flag.Float64("hi", 1e6, "range upper bound")
		duration  = flag.Duration("duration", 3*time.Second, "measured window per encoding")
		warmup    = flag.Duration("warmup", 500*time.Millisecond, "unmeasured warm-up per encoding")
		ensure    = flag.Int("ensure", 100_000, "insert this many uniform keys first if the dataset is empty (0 skips; always skipped for -workload insert)")
		curve     = flag.String("curve", "", "comma-separated offered loads (req/s) to sweep open-loop, e.g. 1000,5000,20000; emits throughput vs p50/p90/p99 per step")
		jsonPath  = flag.String("json", "", "also write the structured results to this file")
		ackedFile = flag.String("acked-file", "", "continuously publish the acknowledged-insert key count to this file (atomic rename)")
		note      = flag.String("note", "", "free-form annotation copied into the -json document")
	)
	flag.Parse()
	log.SetFlags(0)
	targets := splitList(*addr)
	if len(targets) == 0 {
		log.Fatal("irsload: -addr is required (point it at one or more running daemons)")
	}
	tcpTargets := splitList(*tcpAddr)
	if *mode != "closed" && *mode != "open" {
		log.Fatalf("irsload: unknown -mode %q (want closed or open)", *mode)
	}
	switch *workload {
	case "sample", "insert", "mixed":
	default:
		log.Fatalf("irsload: unknown -workload %q (want sample, insert, or mixed)", *workload)
	}
	if *workload != "sample" && *mode != "closed" {
		log.Fatalf("irsload: -workload %s needs -mode closed (insert keys are per-worker sequences)", *workload)
	}
	var curveRates []float64
	if *curve != "" {
		if *workload != "sample" {
			log.Fatalf("irsload: -curve needs -workload sample (the sweep is open-loop)")
		}
		for _, field := range strings.Split(*curve, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			r, err := strconv.ParseFloat(field, 64)
			if err != nil || r <= 0 {
				log.Fatalf("irsload: -curve step %q: want a positive offered rate in req/s", field)
			}
			curveRates = append(curveRates, r)
		}
		if len(curveRates) == 0 {
			log.Fatal("irsload: -curve given but no rates parsed")
		}
	}
	var encodings []string
	switch *encoding {
	case "json":
		encodings = []string{"json"}
	case "binary":
		encodings = []string{"binary"}
	case "tcp":
		encodings = []string{"tcp"}
	case "both":
		encodings = []string{"json", "binary"}
	case "all":
		encodings = []string{"json", "binary", "tcp"}
	default:
		log.Fatalf("irsload: unknown -encoding %q (want json, binary, tcp, both, or all)", *encoding)
	}
	for _, enc := range encodings {
		if enc == "tcp" && len(tcpTargets) != len(targets) {
			log.Fatalf("irsload: -encoding %s needs one -tcp-addr per -addr target (%d targets, %d tcp addresses)",
				*encoding, len(targets), len(tcpTargets))
		}
	}

	ctx := context.Background()
	if *workload != "insert" {
		// A pure-insert run makes its own data; preloading would only
		// dilute the recovered-vs-acked crash check.
		for _, target := range targets {
			if err := ensurePopulated(ctx, server.NewClient(target), *dataset, *ensure, *lo, *hi); err != nil {
				log.Fatalf("irsload: %s: %v", target, err)
			}
		}
	}

	var acked atomic.Int64 // acknowledged inserted keys, cumulative
	if *ackedFile != "" {
		stop := publishAcked(*ackedFile, &acked)
		defer stop()
	}

	doc := benchDoc{
		GeneratedAt: time.Now().UTC(),
		Note:        *note,
		Addr:        *addr,
		TCPAddr:     *tcpAddr,
		Dataset:     *dataset,
		Workload:    *workload,
		Mode:        *mode,
		Concurrency: *conc,
		T:           *tPer,
		Lo:          *lo,
		Hi:          *hi,
	}
	if *mode == "open" {
		doc.RatePerSec = *rate
	}
	if len(curveRates) > 0 {
		doc.Mode = "curve"
		doc.RatePerSec = 0
	}
	for ti, target := range targets {
		for _, enc := range encodings {
			label := enc
			if len(targets) > 1 {
				label = target + " " + enc
			}
			var pcl sampleClient
			switch enc {
			case "tcp":
				tcl := irsnet.NewClient(tcpTargets[ti], irsnet.Options{})
				defer tcl.Close()
				pcl = tcl
			default:
				hcl := server.NewClient(target)
				hcl.Binary = enc == "binary"
				pcl = hcl
			}
			cfg := phase{dataset: *dataset, workload: *workload, lo: *lo, hi: *hi, t: *tPer, acked: &acked}
			if len(curveRates) > 0 {
				// The sweep climbs the offered-load ladder with a fresh warm-up
				// per step, so each row's latency reflects steady state at that
				// rate, queueing included.
				for _, r := range curveRates {
					fmt.Printf("irsload: curve %s @ %.0f req/s offered, %s warm-up + %s measured...\n", label, r, *warmup, *duration)
					openLoop(ctx, pcl, cfg, *conc, r, *warmup)
					res := openLoop(ctx, pcl, cfg, *conc, r, *duration)
					res.Target, res.Encoding, res.Mode = target, enc, "open"
					doc.Curve = append(doc.Curve, curvePoint{OfferedRPS: r, encodingResult: res})
					fmt.Printf("  delivered %.0f req/s (%d rejected, %d errors, %d dropped): p50=%.0fus p90=%.0fus p99=%.0fus\n",
						res.ThroughputRPS, res.Rejected, res.Errors, res.Dropped,
						res.LatencyUS.P50, res.LatencyUS.P90, res.LatencyUS.P99)
				}
				continue
			}
			fmt.Printf("irsload: %s %s over %s, %s warm-up + %s measured...\n", *mode, *workload, label, *warmup, *duration)
			var res encodingResult
			if *mode == "closed" {
				closedLoop(ctx, pcl, cfg, *conc, *warmup) // warm-up, discarded
				res = closedLoop(ctx, pcl, cfg, *conc, *duration)
			} else {
				openLoop(ctx, pcl, cfg, *conc, *rate, *warmup)
				res = openLoop(ctx, pcl, cfg, *conc, *rate, *duration)
			}
			res.Target, res.Encoding, res.Mode = target, enc, *mode
			doc.Results = append(doc.Results, res)
			fmt.Printf("  %d requests (%d rejected, %d errors) in %.2fs: %.0f req/s, %.2fM samples/s\n",
				res.Requests, res.Rejected, res.Errors, res.DurationSec, res.ThroughputRPS, res.SamplesPerSec/1e6)
			fmt.Printf("  latency p50=%.0fus p90=%.0fus p99=%.0fus max=%.0fus, %.1f client mallocs/op\n",
				res.LatencyUS.P50, res.LatencyUS.P90, res.LatencyUS.P99, res.LatencyUS.Max, res.MallocsPerOp)
		}
	}
	// Cross-encoding speedups only make sense within one target; with
	// several, the per-target rows carry the comparison.
	if len(targets) == 1 {
		rps := make(map[string]float64, len(doc.Results))
		for _, r := range doc.Results {
			rps[r.Encoding] = r.ThroughputRPS
		}
		if rps["json"] > 0 && rps["binary"] > 0 {
			doc.SpeedupBinaryOverJSON = rps["binary"] / rps["json"]
			fmt.Printf("irsload: binary / JSON throughput = %.2fx\n", doc.SpeedupBinaryOverJSON)
		}
		if rps["binary"] > 0 && rps["tcp"] > 0 {
			doc.SpeedupTCPOverBinary = rps["tcp"] / rps["binary"]
			fmt.Printf("irsload: tcp / binary throughput = %.2fx\n", doc.SpeedupTCPOverBinary)
		}
	}
	if *jsonPath != "" {
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatalf("irsload: encoding -json: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(raw, '\n'), 0o644); err != nil {
			log.Fatalf("irsload: writing %s: %v", *jsonPath, err)
		}
		fmt.Printf("irsload: structured results written to %s\n", *jsonPath)
	}
	for _, r := range doc.Results {
		if r.Errors > 0 {
			os.Exit(1) // a red harness run must fail CI
		}
	}
	for _, p := range doc.Curve {
		if p.Errors > 0 {
			os.Exit(1)
		}
	}
}

// splitList parses a comma-separated flag value into its non-empty,
// space-trimmed elements; "a, b," yields ["a" "b"].
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ensurePopulated inserts n uniform keys in [lo, hi] when the target
// dataset is empty, so a freshly started daemon can be driven without a
// separate seeding step. An already-populated dataset is left untouched.
func ensurePopulated(ctx context.Context, cl *server.Client, dataset string, n int, lo, hi float64) error {
	if n <= 0 {
		return nil
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if dataset == "" && len(st.Datasets) != 1 {
		// Empty only ever means "the sole dataset". Against a multi-dataset
		// daemon the old guard silently never matched, so every run
		// re-preloaded an already-populated dataset.
		return fmt.Errorf("-dataset is ambiguous: daemon serves %d datasets, name one", len(st.Datasets))
	}
	for _, d := range st.Datasets {
		matches := dataset == "" || d.Name == dataset
		if matches && d.Len > 0 {
			return nil
		}
	}
	keys := make([]float64, 0, 10_000)
	span := hi - lo
	for i := 0; i < n; i += len(keys) {
		keys = keys[:0]
		for j := i; j < n && len(keys) < cap(keys); j++ {
			keys = append(keys, lo+span*float64(j)/float64(n))
		}
		if _, err := cl.InsertKeys(ctx, dataset, keys); err != nil {
			return fmt.Errorf("preload insert: %w", err)
		}
	}
	fmt.Printf("irsload: preloaded %d keys into %q\n", n, dataset)
	return nil
}

// phase is one load phase's request shape, shared by both loops.
type phase struct {
	dataset  string
	workload string // "sample", "insert", or "mixed"
	lo, hi   float64
	t        int           // samples per request / keys per insert
	acked    *atomic.Int64 // cumulative acknowledged inserted keys
}

// nextWorkerID hands every spawned worker a process-unique ID, so insert
// workers own disjoint key ranges across phases, encodings, and the
// warm-up as well as within one loop.
var nextWorkerID atomic.Int64

// insertWorker generates one worker's endless unique-key insert batches:
// worker w's n-th batch is the t keys (w+1)*1e12 + n*t .. +t-1. The +1
// keeps worker keys clear of the [lo, hi) sampling range, and 1e12-sized
// lanes stay exactly representable in float64 far past any run length.
type insertWorker struct {
	base float64
	seq  int
	keys []float64
}

func newInsertWorker(t int) *insertWorker {
	return &insertWorker{base: float64(nextWorkerID.Add(1)) * 1e12, keys: make([]float64, 0, t)}
}

// next returns the worker's next batch of unique keys; the returned slice
// is reused across calls.
func (w *insertWorker) next(t int) []float64 {
	w.keys = w.keys[:0]
	start := w.seq * t
	for j := 0; j < t; j++ {
		w.keys = append(w.keys, w.base+float64(start+j))
	}
	w.seq++
	return w.keys
}

// publishAcked keeps path updated with acked's current value via atomic
// write-to-temp-then-rename, so a reader (the crash-recovery smoke test)
// always sees a complete count that was acknowledged before it was
// written. The returned stop func writes one final value.
func publishAcked(path string, acked *atomic.Int64) (stop func()) {
	write := func() {
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, []byte(strconv.FormatInt(acked.Load(), 10)+"\n"), 0o644); err != nil {
			return
		}
		_ = os.Rename(tmp, path)
	}
	write() // the file exists as soon as the flag is honored
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(75 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				write()
			case <-done:
				write()
				return
			}
		}
	}()
	return func() { close(done); <-finished }
}

// measure aggregates one phase's per-request observations.
type measure struct {
	mu       sync.Mutex
	lats     []time.Duration
	rejected int
	errors   int
	dropped  int
	samples  int
	inserts  int
}

func (m *measure) drop() {
	m.mu.Lock()
	m.dropped++
	m.mu.Unlock()
}

func (m *measure) note(lat time.Duration, got int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case errors.Is(err, server.ErrOverloaded):
		m.rejected++
	case err != nil:
		m.errors++
	default:
		m.lats = append(m.lats, lat)
		m.samples += got
	}
}

// noteInsert is note for a successful-or-not insert request.
func (m *measure) noteInsert(lat time.Duration, got int, err error) {
	m.note(lat, got, err)
	if err == nil {
		m.mu.Lock()
		m.inserts++
		m.mu.Unlock()
	}
}

func (m *measure) result(elapsed time.Duration, mallocs uint64) encodingResult {
	sort.Slice(m.lats, func(i, j int) bool { return m.lats[i] < m.lats[j] })
	// Nearest-rank percentile: the smallest observation with at least p of
	// the sample at or below it. The old int(p*(n-1)) truncated the rank
	// downward, so p99 over 100 observations read the 98th-smallest.
	pct := func(p float64) float64 {
		n := len(m.lats)
		if n == 0 {
			return 0
		}
		i := int(math.Ceil(p*float64(n))) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return float64(m.lats[i]) / float64(time.Microsecond)
	}
	res := encodingResult{
		Requests:    len(m.lats),
		Rejected:    m.rejected,
		Errors:      m.errors,
		Dropped:     m.dropped,
		Inserts:     m.inserts,
		DurationSec: elapsed.Seconds(),
		LatencyUS:   latencySummary{P50: pct(0.50), P90: pct(0.90), P99: pct(0.99), Max: pct(1)},
	}
	if elapsed > 0 {
		res.ThroughputRPS = float64(len(m.lats)) / elapsed.Seconds()
		res.SamplesPerSec = float64(m.samples) / elapsed.Seconds()
	}
	total := len(m.lats) + m.rejected + m.errors
	if total > 0 {
		res.MallocsPerOp = float64(mallocs) / float64(total)
	}
	return res
}

// closedLoop runs workers requesters back-to-back for dur and aggregates.
func closedLoop(ctx context.Context, cl sampleClient, cfg phase, workers int, dur time.Duration) encodingResult {
	// Pre-sized before the MemStats snapshot so m.lats growth (harness
	// bookkeeping, not client work) stays out of MallocsPerOp.
	m := measure{lats: make([]time.Duration, 0, 1<<20)}
	deadline := time.Now().Add(dur)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ins *insertWorker
			if cfg.workload != "sample" {
				ins = newInsertWorker(cfg.t)
			}
			var buf []float64
			var err error
			for req := 0; time.Now().Before(deadline); req++ {
				if cfg.workload == "insert" || (cfg.workload == "mixed" && req%4 == 3) {
					keys := ins.next(cfg.t)
					s := time.Now()
					_, err = cl.InsertKeys(ctx, cfg.dataset, keys)
					m.noteInsert(time.Since(s), len(keys), err)
					if err == nil {
						cfg.acked.Add(int64(len(keys)))
					}
					continue
				}
				s := time.Now()
				buf, err = cl.SampleAppend(ctx, cfg.dataset, buf[:0], cfg.lo, cfg.hi, cfg.t)
				m.note(time.Since(s), len(buf), err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return m.result(elapsed, ms1.Mallocs-ms0.Mallocs)
}

// openLoop dispatches arrivals at rate req/s for dur, each on its own
// goroutine, with at most maxInflight outstanding (arrivals past that
// bound are counted as dropped_by_generator — the load generator itself
// saturated, which is not server backpressure). Open mode is
// sample-only: insert workers carry per-worker key sequences, which a
// goroutine-per-arrival model has no home for.
func openLoop(ctx context.Context, cl sampleClient, cfg phase, maxInflight int, rate float64, dur time.Duration) encodingResult {
	if rate <= 0 {
		rate = 1
	}
	// Pre-sized to the offered load before the MemStats snapshot, keeping
	// harness bookkeeping out of MallocsPerOp.
	m := measure{lats: make([]time.Duration, 0, int(rate*dur.Seconds())+1024)}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	sem := make(chan struct{}, maxInflight)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(dur)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var wg sync.WaitGroup
	for time.Now().Before(deadline) {
		<-ticker.C
		select {
		case sem <- struct{}{}:
		default:
			m.drop() // generator saturated, not server backpressure
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			s := time.Now()
			out, err := cl.Sample(ctx, cfg.dataset, cfg.lo, cfg.hi, cfg.t)
			m.note(time.Since(s), len(out), err)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return m.result(elapsed, ms1.Mallocs-ms0.Mallocs)
}
