package irs_test

import (
	"math"
	"sync"
	"testing"

	irs "github.com/irsgo/irs"
)

// TestWeightedConcurrentPublicAPI exercises the weighted concurrent
// sampler through the public package, as a downstream user would:
// constructors, the WeightedSampler interface, weight updates, batch entry
// points, and the concurrency contract.
func TestWeightedConcurrentPublicAPI(t *testing.T) {
	rng := irs.NewRNG(6)

	items := make([]irs.WeightedItem[float64], 10_000)
	wantW := 0.0
	for i := range items {
		items[i] = irs.WeightedItem[float64]{
			Key:    rng.Float64() * 1000,
			Weight: 1 + rng.Float64()*9,
		}
		wantW += items[i].Weight
	}
	w, err := irs.NewWeightedConcurrentFromItems(items, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := irs.NewWeightedConcurrentFromItems([]irs.WeightedItem[int]{{Key: 1, Weight: -1}}, 2, 8); err != irs.ErrInvalidWeight {
		t.Fatalf("bad weight: err = %v", err)
	}
	if _, err := irs.NewWeightedConcurrentFromSplits([]int{3, 1}, 9); err != irs.ErrUnsortedWeightedItems {
		t.Fatalf("unsorted splits: err = %v", err)
	}

	// The concurrent structure satisfies the same WeightedSampler interface
	// as the single-threaded weighted samplers.
	var s irs.WeightedSampler[float64] = w
	if s.Len() != len(items) {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.TotalWeight(0, 1000); math.Abs(got-wantW) > 1e-6*wantW {
		t.Fatalf("TotalWeight = %v, want %v", got, wantW)
	}
	out, err := s.SampleAppend(nil, 100, 900, 50, rng)
	if err != nil || len(out) != 50 {
		t.Fatalf("SampleAppend: %d, %v", len(out), err)
	}
	for _, k := range out {
		if k < 100 || k > 900 {
			t.Fatalf("sample %g out of range", k)
		}
	}
	if _, err := s.SampleAppend(nil, 2000, 3000, 1, rng); err != irs.ErrEmptyRange {
		t.Fatalf("empty range: err = %v", err)
	}

	// Zero-weight ranges have their own error.
	if err := w.InsertBatch([]irs.WeightedItem[float64]{{Key: 5000, Weight: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sample(4500, 5500, 1, rng); err != irs.ErrZeroWeightRange {
		t.Fatalf("zero-weight range: err = %v", err)
	}

	// Live weight updates through the public API.
	if err := w.Insert(2000, 1); err != nil {
		t.Fatal(err)
	}
	ok, err := w.UpdateWeight(2000, 123)
	if err != nil || !ok {
		t.Fatalf("UpdateWeight: %v %v", ok, err)
	}
	if got := w.TotalWeight(2000, 2000); got != 123 {
		t.Fatalf("updated weight = %v", got)
	}
	if _, err := w.UpdateWeight(2000, math.Inf(1)); err != irs.ErrInvalidWeight {
		t.Fatalf("bad update: err = %v", err)
	}

	// Batch sampling with mixed shapes, including degenerate queries.
	results, err := w.SampleMany([]irs.ConcurrentQuery[float64]{
		{Lo: 0, Hi: 1000, T: 64},
		{Lo: 4500, Hi: 5500, T: 4}, // zero-weight range -> nil, not an error
		{Lo: 10, Hi: 0, T: 4},      // inverted -> nil
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0]) != 64 || results[1] != nil || results[2] != nil {
		t.Fatalf("SampleMany shapes: %d %v %v", len(results[0]), results[1], results[2])
	}

	// The concurrency contract: writers, updaters, and readers at once.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(grng *irs.RNG, g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch g % 3 {
				case 0:
					if err := w.Insert(1e6+float64(g*1000+i), 1); err != nil {
						t.Errorf("Insert: %v", err)
						return
					}
				case 1:
					if _, err := w.UpdateWeight(2000, float64(1+i%9)); err != nil {
						t.Errorf("UpdateWeight: %v", err)
						return
					}
				default:
					if out, err := w.Sample(0, 1000, 8, grng); err == nil {
						for _, k := range out {
							if k < 0 || k > 1000 {
								t.Errorf("sample %g out of range", k)
								return
							}
						}
					}
				}
			}
		}(rng.Split(), g)
	}
	wg.Wait()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}
