package server

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"github.com/irsgo/irs/internal/persist"
	"github.com/irsgo/irs/internal/shard"
	"github.com/irsgo/irs/internal/stats"
	"github.com/irsgo/irs/internal/weighted"
	"github.com/irsgo/irs/internal/xrand"
)

const persistAlpha = 1e-4

// openDurableWeighted recovers dir into a fresh weighted dataset served by
// a durable Core: the exact boot path of irsd -data-dir.
func openDurableWeighted(t *testing.T, dir string, cfg Config) (*Core[float64], Dataset[float64], persist.RecoveryStats) {
	t.Helper()
	store, rec, err := persist.Open(dir, persist.Float64Keys(), persist.Options{Kind: persist.KindWeighted, Sync: persist.SyncAlways})
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	items := make([]weighted.Item[float64], len(rec.Entries))
	for i, e := range rec.Entries {
		items[i] = weighted.Item[float64]{Key: e.Key, Weight: e.Weight}
	}
	w, err := shard.NewWeightedFromItems(items, 4, 7)
	if err != nil {
		t.Fatalf("bulk load: %v", err)
	}
	ds := NewWeightedDataset(w)
	if err := Replay(ds, rec.Records); err != nil {
		t.Fatalf("replay: %v", err)
	}
	core := NewCore[float64](cfg)
	if err := core.AddDurable("d", ds, store, rec.Stats); err != nil {
		t.Fatal(err)
	}
	return core, ds, rec.Stats
}

func openDurableUnweighted(t *testing.T, dir string, cfg Config) (*Core[float64], Dataset[float64]) {
	t.Helper()
	store, rec, err := persist.Open(dir, persist.Float64Keys(), persist.Options{Kind: persist.KindUnweighted, Sync: persist.SyncAlways})
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	keys := make([]float64, len(rec.Entries))
	for i, e := range rec.Entries {
		keys[i] = e.Key
	}
	c, err := shard.NewFromSortedSeeded(keys, 4, 7)
	if err != nil {
		t.Fatalf("bulk load: %v", err)
	}
	ds := NewUnweightedDataset(c)
	if err := Replay(ds, rec.Records); err != nil {
		t.Fatalf("replay: %v", err)
	}
	core := NewCore[float64](cfg)
	if err := core.AddDurable("d", ds, store, rec.Stats); err != nil {
		t.Fatal(err)
	}
	return core, ds
}

// exportMultiset renders a dataset's exact logical state as sorted
// "key/weight" strings, the comparison form of the recovery tests.
func exportMultiset(ds Dataset[float64]) []string {
	items := ds.ExportItems(nil)
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = fmt.Sprintf("%x/%x", math.Float64bits(it.Key), math.Float64bits(it.Weight))
	}
	sort.Strings(out)
	return out
}

func sameMultiset(t *testing.T, got, want []string, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: multiset diverges at item %d: %s != %s", label, i, got[i], want[i])
		}
	}
}

// TestDurableUnweightedExactRecovery: inserts (with duplicate keys) and
// deletes through the durable core, crash (the core is abandoned without
// drain or close — SyncAlways means every acknowledged op is already on
// disk), recover, and demand the exact key multiset.
func TestDurableUnweightedExactRecovery(t *testing.T) {
	dir := t.TempDir()
	core, ds := openDurableUnweighted(t, dir, Config{})
	for round := 0; round < 20; round++ {
		items := make([]Item[float64], 0, 64)
		for i := 0; i < 64; i++ {
			items = append(items, Item[float64]{Key: float64((round*31 + i) % 97)}) // duplicates across rounds
		}
		if _, err := core.Insert("d", items); err != nil {
			t.Fatal(err)
		}
		if round%3 == 0 {
			if _, err := core.Delete("d", []float64{float64(round), float64(round + 1), 9999}); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := exportMultiset(ds)
	wantLen := ds.Len()
	// Crash: no drain, no close, no final sync.
	core2, ds2 := openDurableUnweighted(t, dir, Config{})
	defer core2.Close()
	sameMultiset(t, exportMultiset(ds2), want, "recovered unweighted")
	if ds2.Len() != wantLen {
		t.Fatalf("recovered Len %d, want %d", ds2.Len(), wantLen)
	}
}

// TestDurableWeightedSnapshotTailRecovery drives inserts, deletes, and
// weight updates around a mid-stream snapshot: recovery must compose the
// snapshot with the WAL tail into the exact (key, weight) multiset.
func TestDurableWeightedSnapshotTailRecovery(t *testing.T) {
	dir := t.TempDir()
	core, ds, _ := openDurableWeighted(t, dir, Config{})
	insert := func(lo, n int) {
		t.Helper()
		items := make([]Item[float64], n)
		for i := range items {
			items[i] = Item[float64]{Key: float64(lo + i), Weight: 1 + float64(i%7)}
		}
		if _, err := core.Insert("d", items); err != nil {
			t.Fatal(err)
		}
	}
	insert(0, 500)
	if _, err := core.Update("d", []Item[float64]{{Key: 10, Weight: 40}, {Key: 11, Weight: 0}}); err != nil {
		t.Fatal(err)
	}
	info, err := core.Snapshot("d")
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if info.Items != 500 {
		t.Fatalf("snapshot captured %d items, want 500", info.Items)
	}
	// Tail after the snapshot.
	insert(500, 250)
	if _, err := core.Delete("d", []float64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if n, err := core.Update("d", []Item[float64]{{Key: 600, Weight: 123}}); err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	want := exportMultiset(ds)

	core2, ds2, recStats := openDurableWeighted(t, dir, Config{})
	defer core2.Close()
	if recStats.SnapshotSeq == 0 || recStats.SnapshotEntries != 500 {
		t.Fatalf("recovery did not use the snapshot: %+v", recStats)
	}
	if recStats.RecordsReplayed == 0 {
		t.Fatalf("recovery replayed no WAL tail: %+v", recStats)
	}
	sameMultiset(t, exportMultiset(ds2), want, "snapshot+tail")
}

// TestDurableReplayDeterminism recovers one directory twice; the two
// reconstructions must agree exactly.
func TestDurableReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	core, _, _ := openDurableWeighted(t, dir, Config{})
	rng := xrand.New(3)
	for round := 0; round < 30; round++ {
		items := make([]Item[float64], 40)
		for i := range items {
			items[i] = Item[float64]{Key: rng.Float64Range(0, 1000), Weight: 1 + rng.Float64()}
		}
		if _, err := core.Insert("d", items); err != nil {
			t.Fatal(err)
		}
		if _, err := core.Delete("d", []float64{items[0].Key}); err != nil {
			t.Fatal(err)
		}
	}
	_, dsA, _ := openDurableWeighted(t, dir, Config{})
	_, dsB, _ := openDurableWeighted(t, dir, Config{})
	sameMultiset(t, exportMultiset(dsB), exportMultiset(dsA), "second recovery")
}

// TestDurableChurnCrashRecoveryAcceptance is the acceptance criterion
// end-to-end: >= 10k inserts plus deletes plus weight updates driven
// concurrently through the durable serving core, a crash with no drain
// (every acknowledged op is on disk under SyncAlways — the in-process
// equivalent of SIGKILL, whose process-level form runs in the CI smoke),
// then recovery must (a) reproduce the exact key/weight multiset of the
// live dataset and (b) pass the chi-square suite against a never-crashed
// twin built by replaying the same operation stream.
func TestDurableChurnCrashRecoveryAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite skipped with -short")
	}
	dir := t.TempDir()
	core, ds, _ := openDurableWeighted(t, dir, Config{})

	// Churn: 8 writers, each inserting unique keys (updates target unique
	// keys so "update one occurrence" is unambiguous), deleting a slice of
	// its own keys, and re-weighting another slice.
	const writers, perWriter = 8, 1500 // 12k inserts + 8*150 deletes + 8*150 updates
	var wg sync.WaitGroup
	for wID := 0; wID < writers; wID++ {
		wg.Add(1)
		go func(wID int) {
			defer wg.Done()
			base := float64(wID * perWriter)
			for chunk := 0; chunk < perWriter; chunk += 100 {
				items := make([]Item[float64], 100)
				for i := range items {
					items[i] = Item[float64]{Key: base + float64(chunk+i), Weight: 1 + float64((chunk+i)%5)}
				}
				if _, err := core.Insert("d", items); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
			del := make([]float64, 0, perWriter/10)
			upd := make([]Item[float64], 0, perWriter/10)
			for i := 0; i < perWriter; i += 10 {
				del = append(del, base+float64(i))
				upd = append(upd, Item[float64]{Key: base + float64(i+1), Weight: 50})
			}
			if n, err := core.Delete("d", del); err != nil || n != len(del) {
				t.Errorf("delete: n=%d err=%v", n, err)
			}
			if n, err := core.Update("d", upd); err != nil || n != len(upd) {
				t.Errorf("update: n=%d err=%v", n, err)
			}
		}(wID)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	wantMultiset := exportMultiset(ds)
	wantLen := ds.Len()
	if wantLen < 10000 {
		t.Fatalf("churn left %d items, want >= 10000", wantLen)
	}

	// Crash + recover.
	core2, ds2, _ := openDurableWeighted(t, dir, Config{})
	defer core2.Close()
	sameMultiset(t, exportMultiset(ds2), wantMultiset, "post-crash recovery")

	// Never-crashed twin: the same logical state, built directly.
	items := ds.ExportItems(nil)
	twinItems := make([]weighted.Item[float64], len(items))
	for i, it := range items {
		twinItems[i] = weighted.Item[float64]{Key: it.Key, Weight: it.Weight}
	}
	twin, err := shard.NewWeightedFromItems(twinItems, 4, 99)
	if err != nil {
		t.Fatal(err)
	}

	// Chi-square agreement: bucket samples over key ranges; both the
	// recovered dataset and the twin must match the exact weight-
	// proportional bucket distribution.
	const buckets = 50
	span := float64(writers*perWriter) / buckets
	probs := make([]float64, buckets)
	total := 0.0
	for _, it := range twinItems {
		b := int(it.Key / span)
		if b >= buckets {
			b = buckets - 1
		}
		probs[b] += it.Weight
		total += it.Weight
	}
	for i := range probs {
		probs[i] /= total
	}
	sampleCounts := func(ds Dataset[float64], seed uint64) []int {
		rng := xrand.New(seed)
		counts := make([]int, buckets)
		queries := []shard.Query[float64]{{Lo: 0, Hi: float64(writers * perWriter), T: 60000}}
		res, err := ds.SampleMany(queries, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range res[0] {
			b := int(k / span)
			if b >= buckets {
				b = buckets - 1
			}
			counts[b]++
		}
		return counts
	}
	for name, d := range map[string]Dataset[float64]{
		"recovered": ds2,
		"twin":      NewWeightedDataset(twin),
	} {
		gof, err := stats.ChiSquareTest(sampleCounts(d, 1234), probs, persistAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if gof.Reject {
			t.Fatalf("chi-square rejects weight-proportionality on %s: stat=%.2f df=%d critical=%.2f",
				name, gof.Stat, gof.DF, gof.Critical)
		}
	}
}

// TestDurableSnapshotDuringChurn races snapshots against live inserts,
// deletes, updates, and samples (run under -race in CI), then verifies
// the final recovery is exact.
func TestDurableSnapshotDuringChurn(t *testing.T) {
	dir := t.TempDir()
	core, ds, _ := openDurableWeighted(t, dir, Config{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wID := 0; wID < 4; wID++ {
		wg.Add(1)
		go func(wID int) {
			defer wg.Done()
			base := float64(wID * 100000)
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				items := []Item[float64]{
					{Key: base + float64(i), Weight: 1},
					{Key: base + float64(i) + 0.5, Weight: 2},
				}
				if _, err := core.Insert("d", items); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if i%5 == 0 {
					if _, err := core.Delete("d", []float64{base + float64(i-3)}); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
					if _, err := core.Update("d", []Item[float64]{{Key: base + float64(i) + 0.5, Weight: 9}}); err != nil {
						t.Errorf("update: %v", err)
						return
					}
				}
				if _, err := core.Sample("d", base, base+float64(i)+1, 4); err != nil {
					t.Errorf("sample: %v", err)
					return
				}
				i++
			}
		}(wID)
	}
	for s := 0; s < 8; s++ {
		if _, err := core.Snapshot("d"); err != nil {
			t.Fatalf("snapshot %d: %v", s, err)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	want := exportMultiset(ds)

	core2, ds2, recStats := openDurableWeighted(t, dir, Config{})
	defer core2.Close()
	if recStats.SnapshotSeq == 0 {
		t.Fatalf("no snapshot used in recovery: %+v", recStats)
	}
	sameMultiset(t, exportMultiset(ds2), want, "snapshot-during-churn recovery")
}

// TestUpdateOnUnweightedRejected gates the update path.
func TestUpdateOnUnweightedRejected(t *testing.T) {
	dir := t.TempDir()
	core, _ := openDurableUnweighted(t, dir, Config{})
	defer core.Close()
	if _, err := core.Update("d", []Item[float64]{{Key: 1, Weight: 2}}); err != ErrNotWeighted {
		t.Fatalf("update on unweighted: %v", err)
	}
}

// TestSnapshotOnMemoryOnlyRejected gates the snapshot path.
func TestSnapshotOnMemoryOnlyRejected(t *testing.T) {
	core := NewCore[float64](Config{})
	if err := core.Add("m", NewUnweightedDataset(shard.NewSeeded[float64](2, 1))); err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	if _, err := core.Snapshot("m"); err != ErrNotDurable {
		t.Fatalf("snapshot on memory-only: %v", err)
	}
	if _, err := core.Snapshot("nope"); err != ErrUnknownDataset {
		t.Fatalf("snapshot on unknown: %v", err)
	}
}

// TestDurableStatsSurface: /stats carries the durability counters.
func TestDurableStatsSurface(t *testing.T) {
	dir := t.TempDir()
	core, _, _ := openDurableWeighted(t, dir, Config{})
	if _, err := core.Insert("d", []Item[float64]{{Key: 1, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Snapshot("d"); err != nil {
		t.Fatal(err)
	}
	st := core.Stats()
	if len(st.Datasets) != 1 {
		t.Fatalf("stats: %+v", st)
	}
	d := st.Datasets[0]
	if !d.Durable || d.Persist == nil {
		t.Fatalf("durability not surfaced: %+v", d)
	}
	if d.Persist.Records == 0 || d.Persist.Snapshots != 1 || d.Persist.LastSnapshotSeq == 0 {
		t.Fatalf("persist counters: %+v", d.Persist)
	}
	core.Close()
	// A second boot surfaces recovery stats.
	core2, _, recStats := openDurableWeighted(t, dir, Config{})
	defer core2.Close()
	if recStats.SnapshotEntries != 1 {
		t.Fatalf("recovery stats: %+v", recStats)
	}
	d2 := core2.Stats().Datasets[0]
	if d2.Persist.Recovery.SnapshotEntries != 1 {
		t.Fatalf("recovery stats not surfaced: %+v", d2.Persist)
	}
}
