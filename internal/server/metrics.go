package server

import (
	"sort"

	"github.com/irsgo/irs/internal/metrics"
)

// AppendMetrics renders the core's full Prometheus exposition into dst
// and returns it: per-dataset serving counters, coalescer queue state
// and flush-size histograms, and — for durable datasets — WAL, fsync,
// snapshot, and recovery series. It runs entirely on the scraper's
// goroutine with atomic loads; hot paths never block on a scrape.
//
// All samples of one family render contiguously (the exposition format
// requires it), so each family loops the sorted dataset list.
func (c *Core[K]) AppendMetrics(dst []byte) []byte {
	c.mu.RLock()
	states := make([]*dsState[K], 0, len(c.byName))
	for _, st := range c.byName {
		states = append(states, st)
	}
	c.mu.RUnlock()
	sort.Slice(states, func(i, j int) bool { return states[i].name < states[j].name })

	b := metrics.NewBuilder(dst)

	// Registry: how many datasets are open (registered and serving or
	// draining), and each one's lifecycle state as a labelled 1-valued
	// series — the operator-visible trace of a runtime add or drop.
	b.Family("irsd_datasets_open", "Datasets currently registered.", "gauge")
	b.Val("irsd_datasets_open", float64(len(states)))
	b.Family("irsd_dataset_state", "Dataset lifecycle state (starting, serving, draining, closed); value is always 1.", "gauge")
	for _, st := range states {
		b.Val("irsd_dataset_state", 1, "dataset", st.name, "state", LifecycleName(st.state.Load()))
	}

	// Dataset topology.
	b.Family("irsd_dataset_items", "Items currently stored in the dataset.", "gauge")
	for _, st := range states {
		b.Val("irsd_dataset_items", float64(st.ds.Stats().Len), "dataset", st.name)
	}
	b.Family("irsd_dataset_shards", "Shards backing the dataset.", "gauge")
	for _, st := range states {
		b.Val("irsd_dataset_shards", float64(st.ds.Stats().Shards), "dataset", st.name)
	}

	// Request counters, one family per series name.
	counterFamilies := []struct {
		name string
		help string
		load func(*counters) uint64
	}{
		{"irsd_dataset_sample_requests_total", "Sample requests admitted.", func(c *counters) uint64 { return c.sampleRequests.Load() }},
		{"irsd_dataset_sample_rejected_total", "Sample requests rejected by backpressure.", func(c *counters) uint64 { return c.sampleRejected.Load() }},
		{"irsd_dataset_sample_batches_total", "Backend SampleMany calls (coalesced flushes).", func(c *counters) uint64 { return c.sampleBatches.Load() }},
		{"irsd_dataset_samples_returned_total", "Individual samples returned.", func(c *counters) uint64 { return c.samplesReturned.Load() }},
		{"irsd_dataset_insert_requests_total", "Insert requests admitted.", func(c *counters) uint64 { return c.insertRequests.Load() }},
		{"irsd_dataset_insert_rejected_total", "Insert requests rejected by backpressure.", func(c *counters) uint64 { return c.insertRejected.Load() }},
		{"irsd_dataset_insert_batches_total", "Backend InsertBatch calls (coalesced flushes).", func(c *counters) uint64 { return c.insertBatches.Load() }},
		{"irsd_dataset_items_inserted_total", "Items inserted.", func(c *counters) uint64 { return c.itemsInserted.Load() }},
		{"irsd_dataset_delete_requests_total", "Delete requests.", func(c *counters) uint64 { return c.deleteRequests.Load() }},
		{"irsd_dataset_keys_deleted_total", "Keys deleted.", func(c *counters) uint64 { return c.keysDeleted.Load() }},
		{"irsd_dataset_update_requests_total", "Weight-update requests.", func(c *counters) uint64 { return c.updateRequests.Load() }},
		{"irsd_dataset_keys_updated_total", "Keys whose weight was updated.", func(c *counters) uint64 { return c.keysUpdated.Load() }},
	}
	for _, fam := range counterFamilies {
		b.Family(fam.name, fam.help, "counter")
		for _, st := range states {
			b.Val(fam.name, float64(fam.load(&st.counters)), "dataset", st.name)
		}
	}

	// Coalescer state, labelled by path.
	b.Family("irsd_coalescer_queue_depth", "Requests waiting in the coalescer queue.", "gauge")
	for _, st := range states {
		b.Val("irsd_coalescer_queue_depth", float64(st.samples.depth()), "dataset", st.name, "path", "sample")
		b.Val("irsd_coalescer_queue_depth", float64(st.inserts.depth()), "dataset", st.name, "path", "insert")
	}
	b.Family("irsd_coalescer_queue_capacity", "Bound of the coalescer queue (Config.QueueDepth).", "gauge")
	for _, st := range states {
		b.Val("irsd_coalescer_queue_capacity", float64(st.samples.capacity()), "dataset", st.name, "path", "sample")
		b.Val("irsd_coalescer_queue_capacity", float64(st.inserts.capacity()), "dataset", st.name, "path", "insert")
	}
	b.Family("irsd_coalescer_max_coalesced", "Largest flush batch observed.", "gauge")
	for _, st := range states {
		b.Val("irsd_coalescer_max_coalesced", float64(st.counters.maxCoalesced.Load()), "dataset", st.name, "path", "sample")
		b.Val("irsd_coalescer_max_coalesced", float64(st.counters.insertMaxCoalesced.Load()), "dataset", st.name, "path", "insert")
	}
	b.Family("irsd_coalescer_ratio", "Requests served per backend call (requests/batches) over the process lifetime.", "gauge")
	for _, st := range states {
		b.Val("irsd_coalescer_ratio", ratio(st.counters.sampleRequests.Load(), st.counters.sampleBatches.Load()), "dataset", st.name, "path", "sample")
		b.Val("irsd_coalescer_ratio", ratio(st.counters.insertRequests.Load(), st.counters.insertBatches.Load()), "dataset", st.name, "path", "insert")
	}
	b.Family("irsd_coalescer_flush_batch_size", "Coalesced requests per backend flush.", "histogram")
	for _, st := range states {
		b.Histogram("irsd_coalescer_flush_batch_size", st.counters.sampleBatchSizes.Snapshot(), "dataset", st.name, "path", "sample")
		b.Histogram("irsd_coalescer_flush_batch_size", st.counters.insertBatchSizes.Snapshot(), "dataset", st.name, "path", "insert")
	}

	// Durability. Families render samples only for durable datasets; a
	// memory-only deployment gets the headers and no series.
	durable := states[:0:0]
	for _, st := range states {
		if st.store != nil {
			durable = append(durable, st)
		}
	}
	walFamilies := []struct {
		name string
		help string
		typ  string
		load func(s *dsState[K]) float64
	}{
		{"irsd_wal_records_total", "WAL records appended.", "counter", func(s *dsState[K]) float64 { return float64(s.store.Stats().Records) }},
		{"irsd_wal_entries_total", "Entries across appended WAL records.", "counter", func(s *dsState[K]) float64 { return float64(s.store.Stats().Entries) }},
		{"irsd_wal_bytes_total", "Bytes appended to the WAL.", "counter", func(s *dsState[K]) float64 { return float64(s.store.Stats().Bytes) }},
		{"irsd_wal_syncs_total", "WAL fsync calls.", "counter", func(s *dsState[K]) float64 { return float64(s.store.Stats().Syncs) }},
		{"irsd_wal_size_bytes", "Bytes in the active WAL segment.", "gauge", func(s *dsState[K]) float64 { return float64(s.store.Stats().WALSize) }},
		{"irsd_wal_active_segment", "Sequence number of the segment being appended.", "gauge", func(s *dsState[K]) float64 { return float64(s.store.Stats().ActiveSegment) }},
		{"irsd_wal_sync_error", "1 when the store has a sticky durability failure.", "gauge", func(s *dsState[K]) float64 {
			if s.store.Err() != nil {
				return 1
			}
			return 0
		}},
		{"irsd_snapshots_total", "Snapshots committed.", "counter", func(s *dsState[K]) float64 { return float64(s.store.Stats().Snapshots) }},
		{"irsd_snapshot_last_seq", "WAL sequence covered by the newest snapshot.", "gauge", func(s *dsState[K]) float64 { return float64(s.store.Stats().LastSnapshotSeq) }},
		{"irsd_recovery_records_replayed", "WAL records replayed at boot.", "gauge", func(s *dsState[K]) float64 { return float64(s.recovery.RecordsReplayed) }},
		{"irsd_recovery_snapshot_entries", "Entries loaded from the boot snapshot.", "gauge", func(s *dsState[K]) float64 { return float64(s.recovery.SnapshotEntries) }},
		{"irsd_recovery_torn_tail", "1 when boot recovery truncated a torn WAL tail.", "gauge", func(s *dsState[K]) float64 {
			if s.recovery.TornTail {
				return 1
			}
			return 0
		}},
	}
	for _, fam := range walFamilies {
		b.Family(fam.name, fam.help, fam.typ)
		for _, st := range durable {
			b.Val(fam.name, fam.load(st), "dataset", st.name)
		}
	}
	b.Family("irsd_wal_fsync_duration_seconds", "WAL fsync latency.", "histogram")
	for _, st := range durable {
		b.Histogram("irsd_wal_fsync_duration_seconds", st.store.Metrics().FsyncSeconds.Snapshot(), "dataset", st.name)
	}
	b.Family("irsd_wal_commit_batch_records", "Staged records covered per group commit.", "histogram")
	for _, st := range durable {
		b.Histogram("irsd_wal_commit_batch_records", st.store.Metrics().CommitRecords.Snapshot(), "dataset", st.name)
	}
	b.Family("irsd_snapshot_duration_seconds", "Full snapshot protocol duration (rotate, export, serialize, compact).", "histogram")
	for _, st := range durable {
		b.Histogram("irsd_snapshot_duration_seconds", st.counters.snapshotSeconds.Snapshot(), "dataset", st.name)
	}

	return b.Bytes()
}

// ratio returns requests/batches, or 0 before the first batch.
func ratio(requests, batches uint64) float64 {
	if batches == 0 {
		return 0
	}
	return float64(requests) / float64(batches)
}
