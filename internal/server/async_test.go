package server

import (
	"errors"
	"sync"
	"testing"
)

// chanReply adapts a channel to Reply for tests.
type chanReply[R any] struct {
	ch chan result[R]
}

func (r *chanReply[R]) Deliver(v R, err error) { r.ch <- result[R]{v: v, err: err} }

// TestAsyncSubmission covers the async contract end to end: accepted
// requests deliver exactly once through Reply, synchronous failures
// (validation, routing, admission) never touch the Reply, and close still
// drains accepted async requests.
func TestAsyncSubmission(t *testing.T) {
	ds := &stubDataset{}
	core := NewCore[int](Config{QueueDepth: 64, MaxBatch: 64, Flushers: 1})
	if err := core.Add("d", ds); err != nil {
		t.Fatal(err)
	}
	defer core.Close()

	sr := &chanReply[[]int]{ch: make(chan result[[]int], 1)}
	if err := core.SampleAppendAsync("d", nil, 5, 10, 3, sr); err != nil {
		t.Fatal(err)
	}
	res := <-sr.ch
	if res.err != nil || len(res.v) != 3 || res.v[0] != 5 {
		t.Fatalf("async sample: %v, %v", res.v, res.err)
	}

	// dst must be appended to, not replaced.
	dst := []int{-1}
	if err := core.SampleAppendAsync("d", dst, 7, 9, 2, sr); err != nil {
		t.Fatal(err)
	}
	res = <-sr.ch
	if res.err != nil || len(res.v) != 3 || res.v[0] != -1 || res.v[1] != 7 {
		t.Fatalf("async sample append: %v, %v", res.v, res.err)
	}

	ir := &chanReply[int]{ch: make(chan result[int], 1)}
	if err := core.InsertAsync("d", []Item[int]{{Key: 1, Weight: 1}, {Key: 2, Weight: 1}}, ir); err != nil {
		t.Fatal(err)
	}
	ires := <-ir.ch
	if ires.err != nil || ires.v != 2 {
		t.Fatalf("async insert: %v, %v", ires.v, ires.err)
	}

	// Empty inserts answer inline, before InsertAsync returns.
	if err := core.InsertAsync("d", nil, ir); err != nil {
		t.Fatal(err)
	}
	select {
	case ires = <-ir.ch:
	default:
		t.Fatal("empty insert not answered inline")
	}
	if ires.err != nil || ires.v != 0 {
		t.Fatalf("empty async insert: %v, %v", ires.v, ires.err)
	}

	// Synchronous failures return the error and never invoke the Reply.
	for _, tc := range []struct {
		name string
		err  error
		call func() error
	}{
		{"invalid count", ErrInvalidCount, func() error { return core.SampleAppendAsync("d", nil, 0, 1, 0, sr) }},
		{"inverted range", ErrInvalidRange, func() error { return core.SampleAppendAsync("d", nil, 2, 1, 1, sr) }},
		{"unknown dataset", ErrUnknownDataset, func() error { return core.SampleAppendAsync("x", nil, 0, 1, 1, sr) }},
		{"unknown insert", ErrUnknownDataset, func() error { return core.InsertAsync("x", []Item[int]{{Key: 1}}, ir) }},
	} {
		if err := tc.call(); !errors.Is(err, tc.err) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.err)
		}
	}
	select {
	case res := <-sr.ch:
		t.Fatalf("sample reply invoked on synchronous failure: %+v", res)
	case ires := <-ir.ch:
		t.Fatalf("insert reply invoked on synchronous failure: %+v", ires)
	default:
	}
}

// TestAsyncDrainOnClose: async requests accepted before Close are
// delivered (the coalescer drains), and submissions after Close fail
// synchronously with ErrShuttingDown.
func TestAsyncDrainOnClose(t *testing.T) {
	const n = 16
	ds := &stubDataset{sampleGate: make(chan struct{})}
	core := NewCore[int](Config{QueueDepth: 64, MaxBatch: 4, Flushers: 1})
	if err := core.Add("d", ds); err != nil {
		t.Fatal(err)
	}

	sr := &chanReply[[]int]{ch: make(chan result[[]int], n)}
	accepted := 0
	for i := 0; i < n; i++ {
		if err := core.SampleAppendAsync("d", nil, i, i+10, 2, sr); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		accepted++
	}
	waitFor(t, "a blocked flush", func() bool { s, _ := ds.calls(); return len(s) >= 1 })

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); core.Close() }()
	waitFor(t, "shutdown flag", func() bool {
		core.mu.RLock()
		defer core.mu.RUnlock()
		return core.closed
	})
	if err := core.SampleAppendAsync("d", nil, 0, 1, 1, sr); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-close submit err = %v, want ErrShuttingDown", err)
	}

	close(ds.sampleGate)
	wg.Wait()
	for i := 0; i < accepted; i++ {
		res := <-sr.ch
		if res.err != nil || len(res.v) != 2 {
			t.Fatalf("drained async request %d: %v, %v", i, res.v, res.err)
		}
	}
}

// TestAsyncOverload: a wedged pipeline rejects async submissions
// synchronously with ErrOverloaded, without consuming the Reply.
func TestAsyncOverload(t *testing.T) {
	ds := &stubDataset{sampleGate: make(chan struct{})}
	core := NewCore[int](Config{QueueDepth: 2, MaxBatch: 1, Flushers: 1})
	if err := core.Add("d", ds); err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	st := core.byName["d"]

	sr := &chanReply[[]int]{ch: make(chan result[[]int], 8)}
	submitted := 0
	// Fill flusher + batch buffer + gatherer hand + queue (see
	// TestQueueFullBackpressure for the deterministic staging).
	for i := 0; i < 5; i++ {
		if err := core.SampleAppendAsync("d", nil, 0, 10, 1, sr); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		submitted++
		switch i {
		case 0:
			waitFor(t, "first backend call", func() bool { s, _ := ds.calls(); return len(s) == 1 })
		case 1:
			waitFor(t, "batch buffered", func() bool { return len(st.samples.batches) == 1 })
		case 2:
			waitFor(t, "gatherer hand", func() bool { return len(st.samples.reqs) == 0 })
		}
	}
	waitFor(t, "queue full", func() bool { return len(st.samples.reqs) == 2 })
	if err := core.SampleAppendAsync("d", nil, 0, 10, 1, sr); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}

	close(ds.sampleGate)
	for i := 0; i < submitted; i++ {
		if res := <-sr.ch; res.err != nil {
			t.Fatalf("accepted async request failed: %v", res.err)
		}
	}
	s := core.Stats().Datasets[0]
	if s.SampleRequests != uint64(submitted)+1 || s.SampleRejected != 1 {
		t.Fatalf("stats: %+v", s)
	}
}
