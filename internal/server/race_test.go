package server

import (
	"errors"
	"sync"
	"testing"
)

// TestRaceCoalescedReadersAgainstWriters hammers one core from every
// direction at once — coalesced samplers, coalesced inserters, direct
// deleters, stats readers — on both dataset kinds, then shuts down while
// traffic is still arriving. Run under -race (CI does), this is the data-
// race proof for the serving layer; every error that escapes must be a
// typed admission error.
func TestRaceCoalescedReadersAgainstWriters(t *testing.T) {
	core := newTestCore(t, Config{QueueDepth: 256, MaxBatch: 16, Flushers: 2})

	const iters = 150
	var wg sync.WaitGroup
	ok := func(err error) bool {
		return err == nil || errors.Is(err, ErrOverloaded) ||
			errors.Is(err, ErrShuttingDown) || errors.Is(err, ErrEmptyRange)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := "u"
			if g%2 == 1 {
				name = "w"
			}
			for i := 0; i < iters; i++ {
				if _, err := core.Sample(name, 0, 999, 8); !ok(err) {
					t.Errorf("sample: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := "u"
			if g == 1 {
				name = "w"
			}
			for i := 0; i < iters; i++ {
				items := []Item[float64]{
					{Key: float64(2000 + i), Weight: 1},
					{Key: float64(3000 + i), Weight: 2},
				}
				if _, err := core.Insert(name, items); !ok(err) {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := core.Delete("u", []float64{float64(2000 + i)}); !ok(err) {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			core.Stats()
		}
	}()

	wg.Wait()
	// Shut down with one last wave racing the drain.
	var closing sync.WaitGroup
	for g := 0; g < 4; g++ {
		closing.Add(1)
		go func() {
			defer closing.Done()
			for i := 0; i < 50; i++ {
				if _, err := core.Sample("u", 0, 999, 4); !ok(err) {
					t.Errorf("sample during close: %v", err)
					return
				}
			}
		}()
	}
	core.Close()
	closing.Wait()
	core.Close() // idempotent
}
