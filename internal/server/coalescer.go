package server

import (
	"sync"
	"time"
)

// request is one caller waiting inside a coalescer: a payload plus a
// 1-buffered reply channel its flush writes exactly one result into.
type request[Q, R any] struct {
	q   Q
	out chan result[R]
}

type result[R any] struct {
	v   R
	err error
}

// coalescer merges concurrently-arriving requests into batches:
//
//   - Admission is a bounded queue. submit fails fast with ErrOverloaded
//     when the queue is full and ErrShuttingDown after close — the
//     backpressure contract a transport maps to 503s — and otherwise blocks
//     until its batch has been flushed.
//   - One gatherer goroutine forms batches: it takes a queued request,
//     drains everything else already waiting, lingers up to window for more
//     when configured, and stops a batch at maxBatch requests.
//   - A pool of flusher workers executes batches, so coalescing never
//     serializes independent backend calls behind one core: under light
//     load batches are small and flush in parallel; under heavy load the
//     workers saturate, the queue backs up, and batches grow toward
//     maxBatch — coalescing intensifies exactly when amortization pays.
//
// Each flusher owns private state (in particular its sampling RNG) through
// the newFlush factory, so flushes need no locking of their own.
type coalescer[Q, R any] struct {
	reqs     chan request[Q, R]
	batches  chan []request[Q, R]
	window   time.Duration
	maxBatch int

	mu       sync.RWMutex // guards closed; held shared around every send
	closed   bool
	loopDone chan struct{}
	flushers sync.WaitGroup
}

// newCoalescer starts the gatherer and workers flusher goroutines, each
// flushing batches through its own closure from newFlush.
func newCoalescer[Q, R any](queueDepth, maxBatch, workers int, window time.Duration, newFlush func() func([]request[Q, R])) *coalescer[Q, R] {
	c := &coalescer[Q, R]{
		reqs:     make(chan request[Q, R], queueDepth),
		batches:  make(chan []request[Q, R], workers),
		window:   window,
		maxBatch: maxBatch,
		loopDone: make(chan struct{}),
	}
	c.flushers.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer c.flushers.Done()
			flush := newFlush()
			for batch := range c.batches {
				flush(batch)
			}
		}()
	}
	go c.loop()
	return c
}

// submit enqueues q and blocks until its batch is flushed. Every accepted
// request is answered exactly once, including requests still queued when
// close begins (close drains before returning).
func (c *coalescer[Q, R]) submit(q Q) (R, error) {
	r := request[Q, R]{q: q, out: make(chan result[R], 1)}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		var zero R
		return zero, ErrShuttingDown
	}
	select {
	case c.reqs <- r:
		c.mu.RUnlock()
	default:
		c.mu.RUnlock()
		var zero R
		return zero, ErrOverloaded
	}
	res := <-r.out
	return res.v, res.err
}

// close stops admission, waits until every accepted request has been
// flushed, and stops the goroutines. Safe to call more than once.
func (c *coalescer[Q, R]) close() {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if !already {
		// No submit can be mid-send: sends happen under the read lock, and
		// every new submit now observes closed first.
		close(c.reqs)
	}
	<-c.loopDone
	c.flushers.Wait()
}

// loop is the gatherer: batch formation only, never backend work.
func (c *coalescer[Q, R]) loop() {
	defer close(c.loopDone)
	defer close(c.batches)
	for {
		r, ok := <-c.reqs
		if !ok {
			return
		}
		batch := append(make([]request[Q, R], 0, 8), r)
		alive := c.gather(&batch)
		c.batches <- batch
		if !alive {
			return
		}
	}
}

// gather fills batch with whatever else is queued: everything immediately
// available, then — when a linger window is configured — whatever arrives
// before the window closes, stopping early at maxBatch requests. It reports
// false once the queue has been closed and drained.
func (c *coalescer[Q, R]) gather(batch *[]request[Q, R]) bool {
	for len(*batch) < c.maxBatch {
		select {
		case r, ok := <-c.reqs:
			if !ok {
				return false
			}
			*batch = append(*batch, r)
			continue
		default:
		}
		break
	}
	if c.window <= 0 || len(*batch) >= c.maxBatch {
		return true
	}
	timer := time.NewTimer(c.window)
	defer timer.Stop()
	for len(*batch) < c.maxBatch {
		select {
		case r, ok := <-c.reqs:
			if !ok {
				return false
			}
			*batch = append(*batch, r)
		case <-timer.C:
			return true
		}
	}
	return true
}
