package server

import (
	"sync"
	"time"
)

// Reply receives one asynchronous answer from a coalescer. Implementations
// are typically pooled pointer-structs (a pointer already on the heap boxes
// into the interface without allocating), which is what keeps the async
// path — used by the persistent TCP transport, whose reader goroutine must
// not block on a flush — as allocation-free as the blocking one.
type Reply[R any] interface {
	// Deliver is called exactly once per accepted request, from a flusher
	// goroutine. It must not block for long: it runs inside the flush loop
	// that answers every other request in the batch.
	Deliver(v R, err error)
}

// request is one caller waiting inside a coalescer: a payload plus exactly
// one answer path — a 1-buffered reply channel its flush writes one result
// into (blocking submit), or a Reply callback (submitAsync). The reply
// channel is pooled: every accepted request is answered exactly once, so
// after the submitter has received, the channel is empty and safe to hand
// to the next submitter.
type request[Q, R any] struct {
	q    Q
	out  chan result[R] // blocking submitters
	done Reply[R]       // async submitters; nil when out is set
}

// reply answers the request on whichever path it carries.
func (r *request[Q, R]) reply(res result[R]) {
	if r.done != nil {
		r.done.Deliver(res.v, res.err)
		return
	}
	r.out <- res
}

type result[R any] struct {
	v   R
	err error
}

// batch is one gatherer-formed batch travelling to a flusher. It is a
// pointer-carried struct (not a bare slice) so the flusher can return the
// backing array to the pool after flushing — the slice may have grown in
// the gatherer's hands, and a pooled pointer round-trips that growth
// without an allocation per Put.
type batch[Q, R any] struct {
	reqs []request[Q, R]
}

// coalescer merges concurrently-arriving requests into batches:
//
//   - Admission is a bounded queue. submit fails fast with ErrOverloaded
//     when the queue is full and ErrShuttingDown after close — the
//     backpressure contract a transport maps to 503s — and otherwise blocks
//     until its batch has been flushed.
//   - One gatherer goroutine forms batches: it takes a queued request,
//     drains everything else already waiting, lingers up to window for more
//     when configured, and stops a batch at maxBatch requests.
//   - A pool of flusher workers executes batches, so coalescing never
//     serializes independent backend calls behind one core: under light
//     load batches are small and flush in parallel; under heavy load the
//     workers saturate, the queue backs up, and batches grow toward
//     maxBatch — coalescing intensifies exactly when amortization pays.
//
// Each flusher owns private state (in particular its sampling RNG and
// result scratch) through the newFlush factory, so flushes need no locking
// of their own. Everything per-request on the steady-state path — the reply
// channel, the batch slice, the gatherer's linger timer — is pooled or
// reused, so a coalesced round trip performs no heap allocation of its own.
type coalescer[Q, R any] struct {
	reqs     chan request[Q, R]
	batches  chan *batch[Q, R]
	window   time.Duration
	maxBatch int

	outPool   sync.Pool // chan result[R], recycled across submits
	batchPool sync.Pool // *batch[Q, R], recycled across flushes

	mu       sync.RWMutex // guards closed; held shared around every send
	closed   bool
	loopDone chan struct{}
	flushers sync.WaitGroup
}

// newCoalescer starts the gatherer and workers flusher goroutines, each
// flushing batches through its own closure from newFlush.
func newCoalescer[Q, R any](queueDepth, maxBatch, workers int, window time.Duration, newFlush func() func([]request[Q, R])) *coalescer[Q, R] {
	c := &coalescer[Q, R]{
		reqs:     make(chan request[Q, R], queueDepth),
		batches:  make(chan *batch[Q, R], workers),
		window:   window,
		maxBatch: maxBatch,
		loopDone: make(chan struct{}),
	}
	c.flushers.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer c.flushers.Done()
			flush := newFlush()
			for b := range c.batches {
				flush(b.reqs)
				c.putBatch(b)
			}
		}()
	}
	go c.loop()
	return c
}

func (c *coalescer[Q, R]) getOut() chan result[R] {
	if out, ok := c.outPool.Get().(chan result[R]); ok {
		return out
	}
	return make(chan result[R], 1)
}

func (c *coalescer[Q, R]) getBatch() *batch[Q, R] {
	if b, ok := c.batchPool.Get().(*batch[Q, R]); ok {
		return b
	}
	return &batch[Q, R]{reqs: make([]request[Q, R], 0, 8)}
}

// putBatch clears the flushed batch — dropping its references to reply
// channels and payloads so the pool retains only the backing array — and
// recycles it.
func (c *coalescer[Q, R]) putBatch(b *batch[Q, R]) {
	clear(b.reqs)
	b.reqs = b.reqs[:0]
	c.batchPool.Put(b)
}

// depth reports how many accepted requests are waiting in the queue
// right now — a channel length read, safe from any goroutine, which is
// what /metrics scrapes as the live queue depth.
func (c *coalescer[Q, R]) depth() int { return len(c.reqs) }

// capacity reports the queue bound (Config.QueueDepth).
func (c *coalescer[Q, R]) capacity() int { return cap(c.reqs) }

// submit enqueues q and blocks until its batch is flushed. Every accepted
// request is answered exactly once, including requests still queued when
// close begins (close drains before returning).
func (c *coalescer[Q, R]) submit(q Q) (R, error) {
	out := c.getOut()
	r := request[Q, R]{q: q, out: out}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		c.outPool.Put(out)
		var zero R
		return zero, ErrShuttingDown
	}
	select {
	case c.reqs <- r:
		c.mu.RUnlock()
	default:
		c.mu.RUnlock()
		c.outPool.Put(out)
		var zero R
		return zero, ErrOverloaded
	}
	res := <-out
	c.outPool.Put(out)
	return res.v, res.err
}

// submitAsync enqueues q without blocking for the flush. Admission follows
// the same contract as submit — a full queue answers ErrOverloaded, a
// closed coalescer ErrShuttingDown, both returned synchronously — and on a
// nil return, done.Deliver is invoked exactly once from a flusher
// goroutine (close still drains, so acceptance guarantees an answer).
func (c *coalescer[Q, R]) submitAsync(q Q, done Reply[R]) error {
	r := request[Q, R]{q: q, done: done}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return ErrShuttingDown
	}
	select {
	case c.reqs <- r:
		c.mu.RUnlock()
		return nil
	default:
		c.mu.RUnlock()
		return ErrOverloaded
	}
}

// close stops admission, waits until every accepted request has been
// flushed, and stops the goroutines. Safe to call more than once.
func (c *coalescer[Q, R]) close() {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if !already {
		// No submit can be mid-send: sends happen under the read lock, and
		// every new submit now observes closed first.
		close(c.reqs)
	}
	<-c.loopDone
	c.flushers.Wait()
}

// loop is the gatherer: batch formation only, never backend work. Its
// linger timer is created once and Reset per batch (Go 1.23+ timer
// semantics make Reset safe without draining), so a configured window does
// not cost a timer allocation per batch.
func (c *coalescer[Q, R]) loop() {
	defer close(c.loopDone)
	defer close(c.batches)
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		r, ok := <-c.reqs
		if !ok {
			return
		}
		b := c.getBatch()
		b.reqs = append(b.reqs, r)
		alive := c.gather(&b.reqs, &timer)
		c.batches <- b
		if !alive {
			return
		}
	}
}

// gather fills batch with whatever else is queued: everything immediately
// available, then — when a linger window is configured — whatever arrives
// before the window closes, stopping early at maxBatch requests. It reports
// false once the queue has been closed and drained.
func (c *coalescer[Q, R]) gather(batch *[]request[Q, R], timer **time.Timer) bool {
	for len(*batch) < c.maxBatch {
		select {
		case r, ok := <-c.reqs:
			if !ok {
				return false
			}
			*batch = append(*batch, r)
			continue
		default:
		}
		break
	}
	if c.window <= 0 || len(*batch) >= c.maxBatch {
		return true
	}
	t := *timer
	if t == nil {
		t = time.NewTimer(c.window)
		*timer = t
	} else {
		t.Reset(c.window)
	}
	for len(*batch) < c.maxBatch {
		select {
		case r, ok := <-c.reqs:
			if !ok {
				t.Stop()
				return false
			}
			*batch = append(*batch, r)
		case <-t.C:
			return true
		}
	}
	t.Stop()
	return true
}
