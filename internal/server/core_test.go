package server

import (
	"errors"
	"sync"
	"testing"

	"github.com/irsgo/irs/internal/shard"
)

// newTestCore builds a core over real structures: an unweighted dataset
// "u" holding keys 0..999 and a weighted dataset "w" holding keys 0..99
// with weight k+1, plus keys 5000..5009 with weight 0 (a zero-mass range).
func newTestCore(t *testing.T, cfg Config) *Core[float64] {
	t.Helper()
	core := NewCore[float64](cfg)

	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i)
	}
	u, err := shard.NewFromSortedSeeded(keys, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Add("u", NewUnweightedDataset(u)); err != nil {
		t.Fatal(err)
	}

	w := shard.NewWeighted[float64](4, 7)
	for i := 0; i < 100; i++ {
		if err := w.Insert(float64(i), float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := w.Insert(5000+float64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := core.Add("w", NewWeightedDataset(w)); err != nil {
		t.Fatal(err)
	}
	return core
}

// TestCoreValidationAndErrorPaths covers every typed error the serving
// core can produce, before and after admission.
func TestCoreValidationAndErrorPaths(t *testing.T) {
	core := newTestCore(t, Config{})
	defer core.Close()

	cases := []struct {
		name string
		got  func() error
		want error
	}{
		{"t=0", func() error { _, err := core.Sample("u", 0, 10, 0); return err }, ErrInvalidCount},
		{"t<0", func() error { _, err := core.Sample("u", 0, 10, -3); return err }, ErrInvalidCount},
		{"inverted range", func() error { _, err := core.Sample("u", 10, 0, 1); return err }, ErrInvalidRange},
		{"unknown dataset", func() error { _, err := core.Sample("nope", 0, 10, 1); return err }, ErrUnknownDataset},
		{"ambiguous dataset", func() error { _, err := core.Sample("", 0, 10, 1); return err }, ErrAmbiguousDataset},
		{"empty range", func() error { _, err := core.Sample("u", 2000, 3000, 1); return err }, ErrEmptyRange},
		{"zero-mass range", func() error { _, err := core.Sample("w", 5000, 5009, 1); return err }, ErrEmptyRange},
		{"invalid weight", func() error {
			_, err := core.Insert("w", []Item[float64]{{Key: 1, Weight: -2}})
			return err
		}, ErrInvalidWeight},
		{"duplicate dataset", func() error { return core.Add("u", nil) }, ErrDuplicateDataset},
		{"empty dataset name", func() error { return core.Add("", nil) }, ErrUnknownDataset},
	}
	for _, tc := range cases {
		if err := tc.got(); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Resolve: explicit names pass through, the empty name is ambiguous
	// here (two datasets).
	if name, err := core.Resolve("w"); err != nil || name != "w" {
		t.Fatalf("Resolve(w) = %q, %v", name, err)
	}
	if _, err := core.Resolve(""); !errors.Is(err, ErrAmbiguousDataset) {
		t.Fatalf("Resolve(\"\") err = %v", err)
	}
	if got := core.Datasets(); len(got) != 2 || got[0] != "u" || got[1] != "w" {
		t.Fatalf("Datasets() = %v", got)
	}

	// Happy paths against the real structures.
	out, err := core.Sample("u", 100, 200, 25)
	if err != nil || len(out) != 25 {
		t.Fatalf("sample: %d, %v", len(out), err)
	}
	for _, k := range out {
		if k < 100 || k > 200 {
			t.Fatalf("sample %g out of range", k)
		}
	}
	if n, err := core.Insert("u", []Item[float64]{{Key: 1e6}, {Key: 1e6 + 1}}); err != nil || n != 2 {
		t.Fatalf("insert: %d, %v", n, err)
	}
	if n, err := core.Delete("u", []float64{1e6, 1e6 + 1, 1e6 + 2}); err != nil || n != 2 {
		t.Fatalf("delete: %d, %v", n, err)
	}
	if n, err := core.Insert("u", nil); err != nil || n != 0 {
		t.Fatalf("empty insert: %d, %v", n, err)
	}
	// Weighted sampling over the zero-weight keys plus real mass must
	// never return a zero-weight key.
	for i := 0; i < 50; i++ {
		out, err := core.Sample("w", 0, 6000, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range out {
			if k >= 5000 {
				t.Fatalf("sampled zero-weight key %g", k)
			}
		}
	}
}

// TestCoreResolveSingleDataset: the empty name routes to the sole dataset.
func TestCoreResolveSingleDataset(t *testing.T) {
	core := NewCore[float64](Config{})
	defer core.Close()
	u := shard.NewSeeded[float64](2, 3)
	u.InsertBatch([]float64{1, 2, 3})
	if err := core.Add("only", NewUnweightedDataset(u)); err != nil {
		t.Fatal(err)
	}
	if name, err := core.Resolve(""); err != nil || name != "only" {
		t.Fatalf("Resolve = %q, %v", name, err)
	}
	if out, err := core.Sample("", 0, 10, 2); err != nil || len(out) != 2 {
		t.Fatalf("sample via default name: %v, %v", out, err)
	}
	// But a core with no datasets at all reports unknown.
	empty := NewCore[float64](Config{})
	defer empty.Close()
	if _, err := empty.Resolve(""); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("err = %v", err)
	}
}

// TestCoreStatsConsistency: counters reconcile exactly with the requests a
// deterministic client issued.
func TestCoreStatsConsistency(t *testing.T) {
	core := newTestCore(t, Config{})
	defer core.Close()
	const reqs, tPer = 40, 5
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reqs/4; i++ {
				if _, err := core.Sample("u", 0, 999, tPer); err != nil {
					t.Errorf("sample: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var u DatasetStats
	for _, d := range core.Stats().Datasets {
		if d.Name == "u" {
			u = d
		}
	}
	if u.Kind != "unweighted" || u.Len != 1000 {
		t.Fatalf("stats: %+v", u)
	}
	if u.SampleRequests != reqs || u.SamplesReturned != reqs*tPer {
		t.Fatalf("request accounting: %+v", u)
	}
	if u.SampleBatches == 0 || u.SampleBatches > u.SampleRequests {
		t.Fatalf("batch accounting: %+v", u)
	}
	if u.MaxCoalesced < 1 {
		t.Fatalf("max coalesced: %+v", u)
	}
}
