package server

import (
	"cmp"
	"errors"
	"time"

	"github.com/irsgo/irs/internal/persist"
	"github.com/irsgo/irs/internal/weighted"
)

// Durability: a dataset registered with AddDurable carries a
// persist.Store. Every mutating path stages a WAL record inside the same
// coalesced flush that applies the mutation, holding the dataset's log
// mutex across (stage, apply) so the WAL's record order equals the
// in-memory apply order — the property that makes replay reconstruct the
// exact key/weight multiset. The fsync wait (store.WaitDurable) runs
// after the log mutex is released: under SyncAlways the store's committer
// amortizes one fsync across every batch staged since the previous flush
// — across concurrent flushers — and each request is acknowledged only
// once its covering fsync lands, so acknowledged-means-durable holds
// while throughput scales with offered load instead of fsync latency.
//
// Snapshots (Core.Snapshot) rotate the WAL and export the dataset under
// the same log mutex — a brief write pause, sampling unaffected — then
// serialize and compact outside the lock. Recovery (persist.Open + Replay)
// loads the newest snapshot and replays the WAL tail in order.

// Typed errors of the durability paths.
var (
	// ErrNotWeighted: a weight-update was addressed to an unweighted
	// dataset.
	ErrNotWeighted = errors.New("server: dataset is not weighted")
	// ErrNotDurable: a snapshot was requested for a dataset that has no
	// persistence attached.
	ErrNotDurable = errors.New("server: dataset has no persistence attached")
)

// AddDurable registers ds like Add and attaches its persistence store:
// subsequent inserts, deletes, and weight updates are written ahead to the
// store's WAL, and Snapshot(name) becomes available. recovered is the
// recovery outcome Open reported for the store's directory (zero if the
// caller built the dataset fresh); it is surfaced verbatim in Stats.
func (c *Core[K]) AddDurable(name string, ds Dataset[K], store *persist.Store[K], recovered persist.RecoveryStats) error {
	if store == nil {
		return ErrNotDurable
	}
	return c.add(name, ds, store, recovered)
}

// Update sets the weight of one occurrence of each item's key on a
// weighted dataset, returning how many keys were present. Weights are
// validated before admission; unweighted datasets reject with
// ErrNotWeighted. Like deletes, updates go straight to the backend (the
// request body is already a batch) under the dataset's durability order.
func (c *Core[K]) Update(name string, items []Item[K]) (int, error) {
	st, err := c.lookup(name)
	if err != nil {
		return 0, err
	}
	if !st.ds.Weighted() {
		return 0, ErrNotWeighted
	}
	for _, it := range items {
		if !weighted.ValidWeight(it.Weight) {
			return 0, ErrInvalidWeight
		}
	}
	st.counters.updateRequests.Add(1)
	if len(items) == 0 {
		return 0, nil
	}
	n, err := st.applyUpdate(items)
	if err != nil {
		return 0, st.dropErr(err)
	}
	st.counters.keysUpdated.Add(uint64(n))
	return n, nil
}

// applyUpdate stages and applies one weight-update batch under the same
// stage → apply → wait discipline as applyInsert.
func (st *dsState[K]) applyUpdate(items []Item[K]) (int, error) {
	if st.store == nil {
		return st.ds.UpdateWeights(items), nil
	}
	sp := st.getEntries()
	entries := appendEntries((*sp)[:0], items)
	*sp = entries
	st.logMu.Lock()
	t, err := st.store.StageUpdate(entries)
	if err != nil {
		st.logMu.Unlock()
		st.putEntries(sp)
		return 0, logErr(err)
	}
	n := st.ds.UpdateWeights(items)
	st.logMu.Unlock()
	st.putEntries(sp)
	if err := st.store.WaitDurable(t); err != nil {
		return 0, logErr(err)
	}
	return n, nil
}

// SnapshotInfo reports one committed snapshot.
type SnapshotInfo struct {
	Seq   uint64 `json:"seq"`   // WAL sequence the snapshot covers
	Items int    `json:"items"` // items serialized
}

// Snapshot takes a point-in-time snapshot of the named durable dataset
// and compacts the WAL segments it covers. The WAL rotation and the state
// export happen under the dataset's log mutex — a brief write pause during
// the O(n) export; sampling proceeds throughout — while serialization and
// compaction run outside it. Concurrent Snapshot calls for one dataset
// serialize.
func (c *Core[K]) Snapshot(name string) (SnapshotInfo, error) {
	st, err := c.lookup(name)
	if err != nil {
		return SnapshotInfo{}, err
	}
	if st.store == nil {
		return SnapshotInfo{}, ErrNotDurable
	}
	info, err := st.snapshotNow()
	return info, st.dropErr(err)
}

// snapshotNow runs the full snapshot protocol on one durable dataset's
// state. It is the shared body of Core.Snapshot and Remove's final
// snapshot — the latter runs on an already-unpublished dataset, which is
// exactly why the protocol lives on dsState rather than the registry.
func (st *dsState[K]) snapshotNow() (SnapshotInfo, error) {
	st.snapMu.Lock()
	defer st.snapMu.Unlock()
	start := time.Now()

	st.logMu.Lock()
	seq, commit, err := st.store.BeginSnapshot()
	if err != nil {
		st.logMu.Unlock()
		return SnapshotInfo{}, logErr(err)
	}
	items := st.ds.ExportItems(nil)
	st.logMu.Unlock()

	if err := commit(appendEntries(nil, items)); err != nil {
		return SnapshotInfo{}, err
	}
	st.counters.snapshotSeconds.Observe(time.Since(start))
	return SnapshotInfo{Seq: seq, Items: len(items)}, nil
}

// ReplayApplier applies recovered WAL records to a Dataset one at a time,
// reusing its conversion buffers across records — the streaming spelling
// of Replay, fed directly from persist.OpenStream's record callback so a
// long WAL tail replays without per-record allocation. The zero value is
// ready to use; an applier serves one recovery at a time.
type ReplayApplier[K cmp.Ordered] struct {
	items []Item[K]
	keys  []K
}

// Apply applies one recovered record. Weight updates are skipped on
// unweighted datasets (they cannot be logged there either). rec.Entries is
// only read during the call, so persist's reused decode buffers are safe
// to pass through.
func (ra *ReplayApplier[K]) Apply(ds Dataset[K], rec persist.Record[K]) error {
	switch rec.Op {
	case persist.OpInsert:
		ra.items = ra.items[:0]
		for _, e := range rec.Entries {
			ra.items = append(ra.items, Item[K]{Key: e.Key, Weight: e.Weight})
		}
		return ds.InsertItems(ra.items)
	case persist.OpDelete:
		ra.keys = ra.keys[:0]
		for _, e := range rec.Entries {
			ra.keys = append(ra.keys, e.Key)
		}
		ds.DeleteKeys(ra.keys)
	case persist.OpUpdate:
		if !ds.Weighted() {
			return nil
		}
		ra.items = ra.items[:0]
		for _, e := range rec.Entries {
			ra.items = append(ra.items, Item[K]{Key: e.Key, Weight: e.Weight})
		}
		ds.UpdateWeights(ra.items)
	}
	return nil
}

// Replay applies recovered WAL records to ds in append order. The caller
// has already loaded the snapshot entries (typically through a bulk-load
// constructor); Replay finishes the reconstruction.
func Replay[K cmp.Ordered](ds Dataset[K], records []persist.Record[K]) error {
	var ra ReplayApplier[K]
	for _, rec := range records {
		if err := ra.Apply(ds, rec); err != nil {
			return err
		}
	}
	return nil
}

// appendEntries converts serving items to persistence entries, appending
// to dst — the allocation-free spelling every durable path encodes
// through.
func appendEntries[K cmp.Ordered](dst []persist.Entry[K], items []Item[K]) []persist.Entry[K] {
	for _, it := range items {
		dst = append(dst, persist.Entry[K]{Key: it.Key, Weight: it.Weight})
	}
	return dst
}
