package server

import (
	"cmp"
	"errors"

	"github.com/irsgo/irs/internal/persist"
	"github.com/irsgo/irs/internal/weighted"
)

// Durability: a dataset registered with AddDurable carries a
// persist.Store. Every mutating path then appends a WAL record inside the
// same coalesced flush that applies the mutation, holding the dataset's
// log mutex across (append, apply) so the WAL's record order equals the
// in-memory apply order — the property that makes replay reconstruct the
// exact key/weight multiset. Because the WAL append rides the coalesced
// InsertBatch flush, durability amortizes across concurrent clients
// exactly like sampling does: one fsync covers a whole merged batch.
//
// Snapshots (Core.Snapshot) rotate the WAL and export the dataset under
// the same log mutex — a brief write pause, sampling unaffected — then
// serialize and compact outside the lock. Recovery (persist.Open + Replay)
// loads the newest snapshot and replays the WAL tail in order.

// Typed errors of the durability paths.
var (
	// ErrNotWeighted: a weight-update was addressed to an unweighted
	// dataset.
	ErrNotWeighted = errors.New("server: dataset is not weighted")
	// ErrNotDurable: a snapshot was requested for a dataset that has no
	// persistence attached.
	ErrNotDurable = errors.New("server: dataset has no persistence attached")
)

// AddDurable registers ds like Add and attaches its persistence store:
// subsequent inserts, deletes, and weight updates are written ahead to the
// store's WAL, and Snapshot(name) becomes available. recovered is the
// recovery outcome Open reported for the store's directory (zero if the
// caller built the dataset fresh); it is surfaced verbatim in Stats.
func (c *Core[K]) AddDurable(name string, ds Dataset[K], store *persist.Store[K], recovered persist.RecoveryStats) error {
	if store == nil {
		return ErrNotDurable
	}
	return c.add(name, ds, store, recovered)
}

// Update sets the weight of one occurrence of each item's key on a
// weighted dataset, returning how many keys were present. Weights are
// validated before admission; unweighted datasets reject with
// ErrNotWeighted. Like deletes, updates go straight to the backend (the
// request body is already a batch) under the dataset's durability order.
func (c *Core[K]) Update(name string, items []Item[K]) (int, error) {
	st, err := c.lookup(name)
	if err != nil {
		return 0, err
	}
	if !st.ds.Weighted() {
		return 0, ErrNotWeighted
	}
	for _, it := range items {
		if !weighted.ValidWeight(it.Weight) {
			return 0, ErrInvalidWeight
		}
	}
	st.counters.updateRequests.Add(1)
	if len(items) == 0 {
		return 0, nil
	}
	n, err := st.applyUpdate(items)
	if err != nil {
		return 0, err
	}
	st.counters.keysUpdated.Add(uint64(n))
	return n, nil
}

// applyUpdate logs and applies one weight-update batch.
func (st *dsState[K]) applyUpdate(items []Item[K]) (int, error) {
	if st.store == nil {
		return st.ds.UpdateWeights(items), nil
	}
	st.logMu.Lock()
	defer st.logMu.Unlock()
	if err := st.store.LogUpdate(toEntries(items)); err != nil {
		return 0, logErr(err)
	}
	return st.ds.UpdateWeights(items), nil
}

// SnapshotInfo reports one committed snapshot.
type SnapshotInfo struct {
	Seq   uint64 `json:"seq"`   // WAL sequence the snapshot covers
	Items int    `json:"items"` // items serialized
}

// Snapshot takes a point-in-time snapshot of the named durable dataset
// and compacts the WAL segments it covers. The WAL rotation and the state
// export happen under the dataset's log mutex — a brief write pause during
// the O(n) export; sampling proceeds throughout — while serialization and
// compaction run outside it. Concurrent Snapshot calls for one dataset
// serialize.
func (c *Core[K]) Snapshot(name string) (SnapshotInfo, error) {
	st, err := c.lookup(name)
	if err != nil {
		return SnapshotInfo{}, err
	}
	if st.store == nil {
		return SnapshotInfo{}, ErrNotDurable
	}
	st.snapMu.Lock()
	defer st.snapMu.Unlock()

	st.logMu.Lock()
	seq, commit, err := st.store.BeginSnapshot()
	if err != nil {
		st.logMu.Unlock()
		return SnapshotInfo{}, logErr(err)
	}
	items := st.ds.ExportItems(nil)
	st.logMu.Unlock()

	if err := commit(toEntries(items)); err != nil {
		return SnapshotInfo{}, err
	}
	return SnapshotInfo{Seq: seq, Items: len(items)}, nil
}

// Replay applies recovered WAL records to ds in append order. The caller
// has already loaded the snapshot entries (typically through a bulk-load
// constructor); Replay finishes the reconstruction. Weight updates are
// skipped on unweighted datasets (they cannot be logged there either).
func Replay[K cmp.Ordered](ds Dataset[K], records []persist.Record[K]) error {
	for _, rec := range records {
		switch rec.Op {
		case persist.OpInsert:
			items := make([]Item[K], len(rec.Entries))
			for i, e := range rec.Entries {
				items[i] = Item[K]{Key: e.Key, Weight: e.Weight}
			}
			if err := ds.InsertItems(items); err != nil {
				return err
			}
		case persist.OpDelete:
			keys := make([]K, len(rec.Entries))
			for i, e := range rec.Entries {
				keys[i] = e.Key
			}
			ds.DeleteKeys(keys)
		case persist.OpUpdate:
			if !ds.Weighted() {
				continue
			}
			items := make([]Item[K], len(rec.Entries))
			for i, e := range rec.Entries {
				items[i] = Item[K]{Key: e.Key, Weight: e.Weight}
			}
			ds.UpdateWeights(items)
		}
	}
	return nil
}

// toEntries converts serving items to persistence entries.
func toEntries[K cmp.Ordered](items []Item[K]) []persist.Entry[K] {
	entries := make([]persist.Entry[K], len(items))
	for i, it := range items {
		entries[i] = persist.Entry[K]{Key: it.Key, Weight: it.Weight}
	}
	return entries
}
