package server

import (
	"testing"

	"github.com/irsgo/irs/internal/persist"
	"github.com/irsgo/irs/internal/shard"
)

// newAllocCore builds a single-dataset core shaped like a steady-state
// deployment: preloaded keys across several shards, one flusher (so the
// measurement isn't racing a second worker's warm-up), and no linger
// window (the linger timer itself is reuse-tested separately — a window
// would add wall-clock, not allocations).
func newAllocCore(t testing.TB, cfg Config) *Core[float64] {
	t.Helper()
	keys := make([]float64, 10_000)
	for i := range keys {
		keys[i] = float64(i)
	}
	u, err := shard.NewFromSortedSeeded(keys, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore[float64](cfg)
	if err := core.Add("u", NewUnweightedDataset(u)); err != nil {
		t.Fatal(err)
	}
	return core
}

// TestSampleAppendZeroAllocs pins the tentpole claim: a steady-state
// SampleAppend round trip through the core — admission, coalescing, the
// backend SampleManyAppend, scatter, reply — performs zero heap
// allocations per request. AllocsPerRun counts mallocs process-wide, so
// the gatherer and flusher goroutines are covered, not just the caller.
func TestSampleAppendZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates and drops pool Puts")
	}
	core := newAllocCore(t, Config{Flushers: 1})
	defer core.Close()

	var dst []float64
	var err error
	// Warm up every pooled/reusable buffer: reply channel, batch slice,
	// flusher scratch, backend query scratch, and dst itself.
	for i := 0; i < 64; i++ {
		dst, err = core.SampleAppend("u", dst[:0], 0, 9_999, 16)
		if err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		dst, err = core.SampleAppend("u", dst[:0], 0, 9_999, 16)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dst) != 16 {
		t.Fatalf("got %d samples", len(dst))
	}
	if allocs != 0 {
		t.Fatalf("steady-state SampleAppend allocates %.1f times per request, want 0", allocs)
	}
}

// TestSampleAppendZeroAllocsWithWindow repeats the regression with a
// configured linger window: the gatherer's timer must be Reset, not
// re-allocated, per batch. The window is a single nanosecond so the test
// pays (almost) no wall-clock for it.
func TestSampleAppendZeroAllocsWithWindow(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates and drops pool Puts")
	}
	core := newAllocCore(t, Config{Flushers: 1, CoalesceWindow: 1})
	defer core.Close()

	var dst []float64
	var err error
	for i := 0; i < 64; i++ {
		dst, err = core.SampleAppend("u", dst[:0], 0, 9_999, 8)
		if err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst, err = core.SampleAppend("u", dst[:0], 0, 9_999, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("steady-state SampleAppend with linger window allocates %.1f times per request, want 0", allocs)
	}
}

// newDurableAllocCore is newAllocCore with SyncAlways persistence
// attached: the full group-commit write path — encode, stage, apply,
// committer fsync, ACK — under the dataset the alloc regressions drive.
func newDurableAllocCore(t testing.TB) *Core[float64] {
	t.Helper()
	store, rec, err := persist.Open(t.TempDir(), persist.Float64Keys(),
		persist.Options{Kind: persist.KindUnweighted, Sync: persist.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]float64, 10_000)
	for i := range keys {
		keys[i] = float64(i)
	}
	u, err := shard.NewFromSortedSeeded(keys, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore[float64](Config{Flushers: 1})
	if err := core.AddDurable("u", NewUnweightedDataset(u), store, rec.Stats); err != nil {
		t.Fatal(err)
	}
	return core
}

// TestDurableInsertDeleteZeroAllocs pins this PR's tentpole claim: a
// steady-state durable mutation round trip — coalesce, encode into the
// store's pooled buffer, stage under the log mutex, apply, group-commit
// fsync, ACK — performs zero heap allocations per request. Inserts are
// balanced by deletes of the same keys so the backend never grows (growth
// is the one legitimate allocation in the pipeline, and it is not a
// per-request cost).
func TestDurableInsertDeleteZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates and drops pool Puts")
	}
	core := newDurableAllocCore(t)
	defer core.Close()

	const n = 8
	items := make([]Item[float64], n)
	keys := make([]float64, n)
	for i := range items {
		k := float64(i)*1000 + 0.5 // absent from the preload, spread across chunks
		items[i] = Item[float64]{Key: k}
		keys[i] = k
	}
	var err error
	op := func() {
		if _, err = core.Insert("u", items); err != nil {
			return
		}
		_, err = core.Delete("u", keys)
	}
	for i := 0; i < 64; i++ {
		op()
		if err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, op)
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("steady-state durable insert+delete allocates %.1f times per round, want 0", allocs)
	}
}

// BenchmarkCoreDurableInsert is the ingest counterpart of the sampling
// benchmark: one durable insert round trip per iteration under
// SyncAlways, group commit amortizing the fsyncs.
func BenchmarkCoreDurableInsert(b *testing.B) {
	core := newDurableAllocCore(b)
	defer core.Close()
	items := make([]Item[float64], 8)
	keys := make([]float64, 8)
	for i := range items {
		k := float64(i)*1000 + 0.5
		items[i] = Item[float64]{Key: k}
		keys[i] = k
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Insert("u", items); err != nil {
			b.Fatal(err)
		}
		if _, err := core.Delete("u", keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreSampleAppend is the core-level serving benchmark the alloc
// regression is derived from; -benchmem reports the same 0 allocs/op.
func BenchmarkCoreSampleAppend(b *testing.B) {
	core := newAllocCore(b, Config{Flushers: 1})
	defer core.Close()
	var dst []float64
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = core.SampleAppend("u", dst[:0], 0, 9_999, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
}
