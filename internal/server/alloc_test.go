package server

import (
	"testing"

	"github.com/irsgo/irs/internal/shard"
)

// newAllocCore builds a single-dataset core shaped like a steady-state
// deployment: preloaded keys across several shards, one flusher (so the
// measurement isn't racing a second worker's warm-up), and no linger
// window (the linger timer itself is reuse-tested separately — a window
// would add wall-clock, not allocations).
func newAllocCore(t testing.TB, cfg Config) *Core[float64] {
	t.Helper()
	keys := make([]float64, 10_000)
	for i := range keys {
		keys[i] = float64(i)
	}
	u, err := shard.NewFromSortedSeeded(keys, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore[float64](cfg)
	if err := core.Add("u", NewUnweightedDataset(u)); err != nil {
		t.Fatal(err)
	}
	return core
}

// TestSampleAppendZeroAllocs pins the tentpole claim: a steady-state
// SampleAppend round trip through the core — admission, coalescing, the
// backend SampleManyAppend, scatter, reply — performs zero heap
// allocations per request. AllocsPerRun counts mallocs process-wide, so
// the gatherer and flusher goroutines are covered, not just the caller.
func TestSampleAppendZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates and drops pool Puts")
	}
	core := newAllocCore(t, Config{Flushers: 1})
	defer core.Close()

	var dst []float64
	var err error
	// Warm up every pooled/reusable buffer: reply channel, batch slice,
	// flusher scratch, backend query scratch, and dst itself.
	for i := 0; i < 64; i++ {
		dst, err = core.SampleAppend("u", dst[:0], 0, 9_999, 16)
		if err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		dst, err = core.SampleAppend("u", dst[:0], 0, 9_999, 16)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dst) != 16 {
		t.Fatalf("got %d samples", len(dst))
	}
	if allocs != 0 {
		t.Fatalf("steady-state SampleAppend allocates %.1f times per request, want 0", allocs)
	}
}

// TestSampleAppendZeroAllocsWithWindow repeats the regression with a
// configured linger window: the gatherer's timer must be Reset, not
// re-allocated, per batch. The window is a single nanosecond so the test
// pays (almost) no wall-clock for it.
func TestSampleAppendZeroAllocsWithWindow(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates and drops pool Puts")
	}
	core := newAllocCore(t, Config{Flushers: 1, CoalesceWindow: 1})
	defer core.Close()

	var dst []float64
	var err error
	for i := 0; i < 64; i++ {
		dst, err = core.SampleAppend("u", dst[:0], 0, 9_999, 8)
		if err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst, err = core.SampleAppend("u", dst[:0], 0, 9_999, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("steady-state SampleAppend with linger window allocates %.1f times per request, want 0", allocs)
	}
}

// BenchmarkCoreSampleAppend is the core-level serving benchmark the alloc
// regression is derived from; -benchmem reports the same 0 allocs/op.
func BenchmarkCoreSampleAppend(b *testing.B) {
	core := newAllocCore(b, Config{Flushers: 1})
	defer core.Close()
	var dst []float64
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = core.SampleAppend("u", dst[:0], 0, 9_999, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
}
