//go:build race

package server

// raceEnabled reports that this test binary runs under the race detector,
// whose instrumentation (and deliberate sync.Pool Put-dropping) makes
// allocation counts meaningless.
const raceEnabled = true
