package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/irsgo/irs/internal/shard"
	"github.com/irsgo/irs/internal/xrand"
)

// stubDataset is an instrumented Dataset[int] for deterministic coalescer
// tests: it records the size of every backend call, optionally blocks
// backend calls on a gate, and answers query (lo, hi, t) with lo repeated
// t times so scatter bugs are visible per request.
type stubDataset struct {
	mu          sync.Mutex
	sampleCalls []int // coalesced request count per SampleMany call
	insertCalls []int // item count per InsertItems call
	stored      int

	sampleGate chan struct{} // non-nil: SampleMany receives before answering
	insertGate chan struct{} // non-nil: InsertItems receives before answering
}

func (d *stubDataset) SampleMany(queries []shard.Query[int], rng *xrand.RNG) ([][]int, error) {
	d.mu.Lock()
	d.sampleCalls = append(d.sampleCalls, len(queries))
	gate := d.sampleGate
	d.mu.Unlock()
	if gate != nil {
		<-gate
	}
	out := make([][]int, len(queries))
	for i, q := range queries {
		res := make([]int, q.T)
		for j := range res {
			res[j] = q.Lo
		}
		out[i] = res
	}
	return out, nil
}

func (d *stubDataset) SampleManyAppend(dst []int, starts []int, queries []shard.Query[int], rng *xrand.RNG) ([]int, []int, error) {
	d.mu.Lock()
	d.sampleCalls = append(d.sampleCalls, len(queries))
	gate := d.sampleGate
	d.mu.Unlock()
	if gate != nil {
		<-gate
	}
	starts = append(starts, len(dst))
	for _, q := range queries {
		for j := 0; j < q.T; j++ {
			dst = append(dst, q.Lo)
		}
		starts = append(starts, len(dst))
	}
	return dst, starts, nil
}

func (d *stubDataset) InsertItems(items []Item[int]) error {
	d.mu.Lock()
	d.insertCalls = append(d.insertCalls, len(items))
	d.stored += len(items)
	gate := d.insertGate
	d.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return nil
}

func (d *stubDataset) DeleteKeys(keys []int) int { return len(keys) }

func (d *stubDataset) RangeStats(lo, hi int) (int, float64) {
	n := d.Len()
	return n, float64(n)
}

func (d *stubDataset) KeyBounds() (int, int, bool) { return 0, 0, false }

func (d *stubDataset) UpdateWeights(items []Item[int]) int { return len(items) }

func (d *stubDataset) ExportItems(dst []Item[int]) []Item[int] { return dst }
func (d *stubDataset) Len() int                                { d.mu.Lock(); defer d.mu.Unlock(); return d.stored }
func (d *stubDataset) Stats() shard.Stats                      { return shard.Stats{Len: d.Len(), Shards: 1} }
func (d *stubDataset) Weighted() bool                          { return false }
func (d *stubDataset) NewStream() *xrand.RNG                   { return xrand.New(1) }

func (d *stubDataset) calls() (samples, inserts []int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]int(nil), d.sampleCalls...), append([]int(nil), d.insertCalls...)
}

// waitFor polls cond for up to ~2s; the coalescer has no test clock, so
// deterministic tests block the backend on gates and poll queue state.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// settle waits until admitted reports every request has been counted and
// the queue length has been stable long enough that the gatherer must be
// parked (it never leaves requests queued while runnable: it drains the
// queue, then blocks). Returns the settled queue length.
func settle(t *testing.T, admitted func() bool, queueLen func() int) int {
	t.Helper()
	stable, last := 0, -1
	for i := 0; i < 4000; i++ {
		q := queueLen()
		if admitted() && q == last {
			if stable++; stable >= 100 {
				return q
			}
		} else {
			stable = 0
		}
		last = q
		time.Sleep(time.Millisecond)
	}
	t.Fatal("pipeline never settled")
	return 0
}

// TestCoalescingStrictlyFewerBackendCalls is the deterministic form of the
// tentpole claim: N concurrent sample requests must reach the backend in
// strictly fewer SampleMany calls than N. The pipeline is wedged — request
// A blocked inside the backend, B's batch parked in the batches buffer —
// so the remaining 14 requests can only end up split between the
// gatherer's held batch (k requests) and the queue (q = 14-k requests).
// Releasing the backend must then flush them in exactly one call each:
// 3 calls total when the gatherer absorbed everything, 4 otherwise —
// either way far fewer than 16, with sizes fully accounted for.
func TestCoalescingStrictlyFewerBackendCalls(t *testing.T) {
	const n = 16
	ds := &stubDataset{sampleGate: make(chan struct{})}
	core := NewCore[int](Config{QueueDepth: 64, MaxBatch: 64, Flushers: 1})
	if err := core.Add("d", ds); err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	st := core.byName["d"]

	type res struct {
		keys []int
		err  error
	}
	results := make(chan res, n)
	submit := func(lo int) {
		keys, err := core.Sample("d", lo, lo+10, 3)
		results <- res{keys, err}
	}

	go submit(0) // A: taken by the flusher, blocked on the gate
	waitFor(t, "first backend call", func() bool { s, _ := ds.calls(); return len(s) == 1 })
	go submit(1) // B: gathered alone, parked in the batches buffer
	waitFor(t, "batch buffered", func() bool { return len(st.samples.batches) == 1 })
	for i := 2; i < n; i++ {
		go submit(i) // split between the gatherer's hand and the queue
	}
	q := settle(t,
		func() bool { return st.counters.sampleRequests.Load() == n },
		func() int { return len(st.samples.reqs) })

	close(ds.sampleGate)
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("request failed: %v", r.err)
		}
		if len(r.keys) != 3 {
			t.Fatalf("got %d samples", len(r.keys))
		}
		// Scatter check: every sample of a request must come from its own
		// query (the stub answers lo repeated t times).
		for _, k := range r.keys[1:] {
			if k != r.keys[0] {
				t.Fatalf("mixed results across coalesced requests: %v", r.keys)
			}
		}
	}

	samples, _ := ds.calls()
	wantCalls := 3
	if q > 0 {
		wantCalls = 4
	}
	if len(samples) != wantCalls {
		t.Fatalf("backend calls = %d (%v), want %d for settled queue %d", len(samples), samples, wantCalls, q)
	}
	sum, maxBatch := 0, 0
	for _, b := range samples {
		sum += b
		maxBatch = max(maxBatch, b)
	}
	if sum != n {
		t.Fatalf("backend saw %d requests, want %d (%v)", sum, n, samples)
	}
	if samples[0] != 1 || samples[1] != 1 {
		t.Fatalf("wedged batches not singletons: %v", samples)
	}
	if q > 0 && samples[wantCalls-1] != q {
		t.Fatalf("final batch = %d, want the %d queued requests (%v)", samples[wantCalls-1], q, samples)
	}
	s := core.Stats().Datasets[0]
	if s.SampleRequests != n || s.SampleBatches != uint64(wantCalls) ||
		s.MaxCoalesced != uint64(maxBatch) || s.SamplesReturned != n*3 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestInsertCoalescing mirrors the sample test on the mutation path: N
// concurrent insert requests merge into one InsertItems call, and each
// request is acknowledged with its own item count.
func TestInsertCoalescing(t *testing.T) {
	const n = 10
	ds := &stubDataset{insertGate: make(chan struct{})}
	core := NewCore[int](Config{QueueDepth: 64, MaxBatch: 64, Flushers: 1})
	if err := core.Add("d", ds); err != nil {
		t.Fatal(err)
	}
	defer core.Close()

	results := make(chan int, n)
	errs := make(chan error, n)
	submit := func(size int) {
		items := make([]Item[int], size)
		got, err := core.Insert("d", items)
		results <- got
		errs <- err
	}

	st := core.byName["d"]
	go submit(1) // blocked in the backend
	waitFor(t, "first insert call", func() bool { _, ins := ds.calls(); return len(ins) == 1 })
	go submit(2) // parked in the batches buffer
	waitFor(t, "insert batch buffered", func() bool { return len(st.inserts.batches) == 1 })
	total := 1 + 2
	for i := 2; i < n; i++ {
		go submit(i + 1) // sizes 3..10, split between gatherer hand and queue
		total += i + 1
	}
	q := settle(t,
		func() bool { return st.counters.insertRequests.Load() == n },
		func() int { return len(st.inserts.reqs) })

	close(ds.insertGate)
	gotTotal := 0
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("insert failed: %v", err)
		}
		gotTotal += <-results
	}
	if gotTotal != total {
		t.Fatalf("acknowledged %d items, want %d", gotTotal, total)
	}
	_, inserts := ds.calls()
	wantCalls := 3
	if q > 0 {
		wantCalls = 4
	}
	if len(inserts) != wantCalls {
		t.Fatalf("backend insert calls = %d (%v), want %d for settled queue %d", len(inserts), inserts, wantCalls, q)
	}
	sum := 0
	for _, b := range inserts {
		sum += b
	}
	if sum != total || inserts[0] != 1 || inserts[1] != 2 {
		t.Fatalf("backend item batches = %v, want prefix [1 2] summing to %d", inserts, total)
	}
	s := core.Stats().Datasets[0]
	if s.InsertRequests != n || s.InsertBatches != uint64(wantCalls) || s.ItemsInserted != uint64(total) {
		t.Fatalf("stats: %+v", s)
	}
}

// TestQueueFullBackpressure fills the pipeline deterministically — one
// request blocked in the backend, one batch buffered, one in the
// gatherer's hand, QueueDepth queued — and checks that the next submission
// fails fast with ErrOverloaded while every accepted request is served.
func TestQueueFullBackpressure(t *testing.T) {
	ds := &stubDataset{sampleGate: make(chan struct{})}
	core := NewCore[int](Config{QueueDepth: 2, MaxBatch: 1, Flushers: 1})
	if err := core.Add("d", ds); err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	st := core.byName["d"]

	errs := make(chan error, 8)
	submit := func() { _, err := core.Sample("d", 0, 10, 1); errs <- err }

	go submit() // absorbed by the flusher (blocked on the gate)
	waitFor(t, "first backend call", func() bool { s, _ := ds.calls(); return len(s) == 1 })
	go submit() // sits in the batches buffer
	waitFor(t, "batch buffered", func() bool { return len(st.samples.batches) == 1 })
	go submit() // in the gatherer's hand, blocked on the batches channel
	waitFor(t, "gatherer to pick it up", func() bool { return len(st.samples.reqs) == 0 })
	go submit() // queued
	waitFor(t, "queue depth 1", func() bool { return len(st.samples.reqs) == 1 })
	go submit() // queued
	waitFor(t, "queue depth 2", func() bool { return len(st.samples.reqs) == 2 })

	// The pipeline is full: admission must reject synchronously.
	if _, err := core.Sample("d", 0, 10, 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}

	close(ds.sampleGate)
	for i := 0; i < 5; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("accepted request failed: %v", err)
		}
	}
	s := core.Stats().Datasets[0]
	if s.SampleRequests != 6 || s.SampleRejected != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestShutdownWhileInflight: requests accepted before Close are answered
// (drain), requests after Close fail with ErrShuttingDown, and nothing
// panics in any interleaving of close with blocked flushes.
func TestShutdownWhileInflight(t *testing.T) {
	// The pipeline absorbs at most MaxBatch*(flusher + buffer + gatherer
	// hand) = 12 requests, so 16 guarantees some are still queued when
	// Close begins — shutdown-while-inflight in every stage.
	const n = 16
	ds := &stubDataset{sampleGate: make(chan struct{})}
	core := NewCore[int](Config{QueueDepth: 64, MaxBatch: 4, Flushers: 1})
	if err := core.Add("d", ds); err != nil {
		t.Fatal(err)
	}
	st := core.byName["d"]

	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { _, err := core.Sample("d", 0, 10, 2); errs <- err }()
	}
	waitFor(t, "a blocked flush plus queued requests", func() bool {
		s, _ := ds.calls()
		return len(s) >= 1 && len(st.samples.reqs) >= 1
	})

	closed := make(chan struct{})
	go func() { core.Close(); close(closed) }()

	// Close must reject new work immediately, even while draining. Wait on
	// the flag itself (probing with Sample could race admission and park a
	// request we never release).
	waitFor(t, "shutdown flag", func() bool {
		core.mu.RLock()
		defer core.mu.RUnlock()
		return core.closed
	})
	if _, err := core.Sample("d", 0, 10, 1); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("sample err = %v, want ErrShuttingDown", err)
	}
	if _, err := core.Insert("d", []Item[int]{{Key: 1}}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("insert err = %v, want ErrShuttingDown", err)
	}
	if _, err := core.Delete("d", []int{1}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("delete err = %v, want ErrShuttingDown", err)
	}

	close(ds.sampleGate)
	<-closed
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("request accepted before Close failed: %v", err)
		}
	}
	core.Close() // idempotent
}
