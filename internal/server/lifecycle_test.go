package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/irsgo/irs/internal/shard"
)

// TestRemoveDataset pins the registry semantics of a runtime drop: the
// name unregisters, later requests answer the typed not-found error, the
// other datasets keep serving, and a second drop of the same name is
// not-found too.
func TestRemoveDataset(t *testing.T) {
	core := newTestCore(t, Config{})
	defer core.Close()

	if got := core.Datasets(); len(got) != 2 {
		t.Fatalf("Datasets() = %v, want 2 names", got)
	}
	if err := core.Remove("u", false); err != nil {
		t.Fatalf("Remove(u): %v", err)
	}
	if got := core.Datasets(); len(got) != 1 || got[0] != "w" {
		t.Fatalf("Datasets() after drop = %v, want [w]", got)
	}
	if _, err := core.Sample("u", 0, 10, 1); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("Sample(dropped): err = %v, want ErrUnknownDataset", err)
	}
	if _, err := core.Insert("u", []Item[float64]{{Key: 1, Weight: 1}}); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("Insert(dropped): err = %v, want ErrUnknownDataset", err)
	}
	if err := core.Remove("u", false); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("second Remove: err = %v, want ErrUnknownDataset", err)
	}
	if err := core.Remove("", false); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("Remove(\"\"): err = %v, want ErrUnknownDataset", err)
	}
	// The survivor keeps serving.
	if _, err := core.Sample("w", 0, 99, 5); err != nil {
		t.Errorf("Sample(survivor): %v", err)
	}
	// Its stats reflect the lifecycle.
	for _, ds := range core.Stats().Datasets {
		if ds.Name == "u" {
			t.Errorf("dropped dataset still in stats: %+v", ds)
		}
		if ds.Name == "w" && ds.State != "serving" {
			t.Errorf("survivor state = %q, want serving", ds.State)
		}
	}
}

// TestRemoveAfterClose: a closed core answers ErrShuttingDown, not a
// spurious not-found.
func TestRemoveAfterClose(t *testing.T) {
	core := newTestCore(t, Config{})
	if err := core.Close(); err != nil {
		t.Fatal(err)
	}
	if err := core.Remove("u", false); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Remove after Close: err = %v, want ErrShuttingDown", err)
	}
}

// TestAddAtRuntime pins that Add works after serving has started — the
// registry is live, not boot-only — and the new dataset serves
// immediately in the serving state.
func TestAddAtRuntime(t *testing.T) {
	core := newTestCore(t, Config{})
	defer core.Close()

	// Traffic is already flowing when the new dataset registers.
	if _, err := core.Sample("u", 0, 10, 1); err != nil {
		t.Fatal(err)
	}
	keys := []float64{1, 2, 3}
	d, err := shard.NewFromSortedSeeded(keys, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Add("late", NewUnweightedDataset(d)); err != nil {
		t.Fatalf("runtime Add: %v", err)
	}
	if _, err := core.Sample("late", 0, 10, 2); err != nil {
		t.Errorf("Sample(new dataset): %v", err)
	}
	for _, ds := range core.Stats().Datasets {
		if ds.Name == "late" && ds.State != "serving" {
			t.Errorf("new dataset state = %q, want serving", ds.State)
		}
	}
}

// TestRemoveUnderLoad hammers one dataset with concurrent samples and
// inserts while it is dropped. Every request must be answered — success,
// backpressure, or the typed not-found — and never with the shutdown
// error (the drop must remap the race to not-found: to a client, a
// dropped dataset and a never-registered one are the same thing).
func TestRemoveUnderLoad(t *testing.T) {
	core := newTestCore(t, Config{})
	defer core.Close()

	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var badErr atomic.Pointer[error]
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if w%2 == 0 {
					_, err = core.Sample("u", 0, 999, 4)
				} else {
					_, err = core.Insert("u", []Item[float64]{{Key: float64(i % 1000), Weight: 1}})
				}
				if err != nil && !errors.Is(err, ErrUnknownDataset) && !errors.Is(err, ErrOverloaded) {
					e := err
					badErr.Store(&e)
					return
				}
			}
		}(w)
	}
	if err := core.Remove("u", false); err != nil {
		t.Fatalf("Remove under load: %v", err)
	}
	// After the drop completes, the error is exactly not-found.
	if _, err := core.Sample("u", 0, 999, 1); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("post-drop Sample: err = %v, want ErrUnknownDataset", err)
	}
	close(stop)
	wg.Wait()
	if p := badErr.Load(); p != nil {
		t.Errorf("worker saw unexpected error during drop: %v", *p)
	}
}
