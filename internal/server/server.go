// Package server is the transport-agnostic serving core over the
// concurrent IRS structures: the piece that turns the batch APIs' lock
// amortization (InsertBatch, SampleMany) into system-level throughput for
// independent clients. The HTTP daemon (cmd/irsd) and its importable
// handler/client layer (package github.com/irsgo/irs/server) are thin
// adapters over this core.
//
// # Request coalescing
//
// The core's central mechanism is the coalescer (coalescer.go): sample
// requests that arrive concurrently for one dataset are merged into a
// single SampleMany call, and insert requests into a single InsertBatch
// call, with per-request scatter of the results. This is statistically
// free: SampleMany already guarantees that every query in a batch gets
// exactly uniform (or exactly weight-proportional), mutually independent
// samples against one consistent snapshot — which queries share a batch is
// invisible in the output distribution. So coalescing changes lock traffic
// and throughput, never the IRS contract; the end-to-end chi-square and
// independence suites in package server verify this through the full HTTP
// stack.
//
// # Admission control
//
// Each dataset has a bounded request queue per path (sample, insert). When
// a queue is full, submission fails fast with ErrOverloaded instead of
// growing an unbounded backlog; after Close begins, with ErrShuttingDown.
// Requests accepted before Close are always answered — shutdown drains.
// The knobs are Config.QueueDepth (backlog bound), Config.MaxBatch (how
// many requests one backend call may carry), Config.CoalesceWindow (how
// long to linger for batch-mates), and Config.Flushers (parallel backend
// calls in flight).
package server

import (
	"cmp"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/irsgo/irs/internal/persist"
	"github.com/irsgo/irs/internal/shard"
	"github.com/irsgo/irs/internal/weighted"
	"github.com/irsgo/irs/internal/xrand"
)

// Typed serving errors. The transport layer maps these to wire codes and
// HTTP statuses; the client maps the codes back.
var (
	// ErrUnknownDataset: the named dataset is not registered.
	ErrUnknownDataset = errors.New("server: unknown dataset")
	// ErrAmbiguousDataset: no dataset name was given and more than one is
	// registered, so there is no default to route to.
	ErrAmbiguousDataset = errors.New("server: dataset name required when several are registered")
	// ErrDuplicateDataset: Add was called with a name already in use.
	ErrDuplicateDataset = errors.New("server: dataset already registered")
	// ErrInvalidRange: a query with lo > hi.
	ErrInvalidRange = errors.New("server: inverted range (lo > hi)")
	// ErrInvalidCount: a sample request with t <= 0.
	ErrInvalidCount = errors.New("server: sample count must be positive")
	// ErrEmptyRange: the range holds no sampling mass (no keys, or only
	// zero-weight keys on a weighted dataset).
	ErrEmptyRange = errors.New("server: range holds no sampling mass")
	// ErrOverloaded: the dataset's request queue is full — backpressure.
	ErrOverloaded = errors.New("server: request queue full")
	// ErrShuttingDown: the core is draining; no new work is admitted.
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrUnavailable: an upstream node a cluster router needed could not be
	// reached. Single-node serving never produces it; the router wraps
	// transport failures in it so clients get one typed, transport-invariant
	// answer for "a partition is down".
	ErrUnavailable = errors.New("server: upstream node unavailable")
	// ErrInvalidWeight: an insert carried a negative, NaN, or infinite
	// weight for a weighted dataset.
	ErrInvalidWeight = weighted.ErrInvalidWeight
)

// Defaults for Config fields left at their zero value.
const (
	DefaultQueueDepth = 1024
	DefaultMaxBatch   = 64
)

// Config holds the admission-control and coalescing knobs, applied per
// dataset and per path (sample, insert).
type Config struct {
	// QueueDepth bounds the pending-request backlog; a full queue rejects
	// with ErrOverloaded. <= 0 means DefaultQueueDepth.
	QueueDepth int
	// MaxBatch caps how many coalesced requests one backend call carries.
	// <= 0 means DefaultMaxBatch.
	MaxBatch int
	// CoalesceWindow is how long the gatherer lingers for further requests
	// after taking the first of a batch: 0 coalesces opportunistically
	// (only what is already queued, adding no latency), a positive window
	// trades that much latency for larger batches.
	CoalesceWindow time.Duration
	// Flushers is the number of backend calls that may be in flight at
	// once per dataset and path. <= 0 means GOMAXPROCS.
	Flushers int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.Flushers <= 0 {
		c.Flushers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Core serves named datasets with request coalescing and admission
// control. All methods are safe for any number of concurrent goroutines.
type Core[K cmp.Ordered] struct {
	cfg Config

	mu     sync.RWMutex // guards byName and closed
	byName map[string]*dsState[K]
	closed bool
}

// Per-dataset lifecycle states, mirroring the process-level /readyz
// machine (starting → ready → draining) one level down: a dataset is
// starting while its state is being assembled, serving once published in
// the registry, draining while Remove (or Close) answers its accepted
// requests, and closed once its coalescers have stopped and its store —
// if any — has been synced and closed.
const (
	DatasetStarting int32 = iota
	DatasetServing
	DatasetDraining
	DatasetClosed
)

// LifecycleName renders a lifecycle state for /stats and /metrics.
func LifecycleName(s int32) string {
	switch s {
	case DatasetStarting:
		return "starting"
	case DatasetServing:
		return "serving"
	case DatasetDraining:
		return "draining"
	case DatasetClosed:
		return "closed"
	default:
		return "unknown"
	}
}

// sampleArg is one sample request travelling through the coalescer: the
// query plus the caller-provided buffer its samples are appended to (nil
// for plain Sample calls, a reused buffer for SampleAppend callers).
type sampleArg[K cmp.Ordered] struct {
	q   shard.Query[K]
	dst []K
}

// dsState is one registered dataset with its two coalescers and, when
// registered through AddDurable, its persistence store.
type dsState[K cmp.Ordered] struct {
	name     string
	ds       Dataset[K]
	samples  *coalescer[sampleArg[K], []K]
	inserts  *coalescer[[]Item[K], int]
	counters counters

	// state is the dataset's lifecycle state (Dataset* constants).
	// dropped is set by Remove before draining begins: once a dataset is
	// being dropped, requests that raced past lookup and lost — hitting a
	// closed coalescer or a closed store — are answered ErrUnknownDataset
	// instead of ErrShuttingDown, so after a drop the only typed answer
	// clients ever see for that name is not_found (the core itself is not
	// shutting down).
	state   atomic.Int32
	dropped atomic.Bool

	// store is nil for memory-only datasets. logMu orders WAL staging
	// with the in-memory applies they mirror (held across both), and the
	// snapshot protocol's rotate+export; snapMu serializes whole snapshot
	// protocols. The fsync wait happens outside logMu — the group-commit
	// restructure (see persist.go). entryPool recycles the Entry buffers
	// the non-coalesced durable paths (delete, update) encode through.
	store     *persist.Store[K]
	logMu     sync.Mutex
	snapMu    sync.Mutex
	recovery  persist.RecoveryStats
	entryPool sync.Pool // *[]persist.Entry[K]
}

// getEntries borrows a reusable entries buffer (length 0) from the pool.
func (st *dsState[K]) getEntries() *[]persist.Entry[K] {
	if p, ok := st.entryPool.Get().(*[]persist.Entry[K]); ok {
		return p
	}
	return new([]persist.Entry[K])
}

// putEntries returns a borrowed buffer, dropping ones an outsized batch
// grew past the scratch bound.
func (st *dsState[K]) putEntries(p *[]persist.Entry[K]) {
	if cap(*p) > maxRetainedScratch {
		return
	}
	*p = (*p)[:0]
	st.entryPool.Put(p)
}

// NewCore returns an empty Core with the given knobs.
func NewCore[K cmp.Ordered](cfg Config) *Core[K] {
	return &Core[K]{cfg: cfg.withDefaults(), byName: make(map[string]*dsState[K])}
}

// Add registers ds under name and starts its coalescers. Names must be
// non-empty and unique; registering on a closed core is rejected.
func (c *Core[K]) Add(name string, ds Dataset[K]) error {
	return c.add(name, ds, nil, persist.RecoveryStats{})
}

// add builds the dataset's state completely — including its persistence
// attachment — before publishing it in byName, so no request can ever
// observe a durable dataset without its store. Add is callable at any
// time, not just boot: the registry lock orders it against concurrent
// lookups, and the fully-built-before-published rule means a request can
// never observe a half-registered dataset.
func (c *Core[K]) add(name string, ds Dataset[K], store *persist.Store[K], recovered persist.RecoveryStats) error {
	if name == "" {
		return ErrUnknownDataset
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrShuttingDown
	}
	if _, dup := c.byName[name]; dup {
		return ErrDuplicateDataset
	}
	st := &dsState[K]{name: name, ds: ds, store: store, recovery: recovered}
	st.state.Store(DatasetStarting)
	cfg := c.cfg
	st.samples = newCoalescer[sampleArg[K], []K](cfg.QueueDepth, cfg.MaxBatch, cfg.Flushers, cfg.CoalesceWindow,
		func() func([]request[sampleArg[K], []K]) {
			// One private RNG stream and one private scratch set per flusher.
			f := &sampleFlusher[K]{st: st, rng: ds.NewStream()}
			return f.flush
		})
	st.inserts = newCoalescer[[]Item[K], int](cfg.QueueDepth, cfg.MaxBatch, cfg.Flushers, cfg.CoalesceWindow,
		func() func([]request[[]Item[K], int]) {
			f := &insertFlusher[K]{st: st}
			return f.flush
		})
	st.state.Store(DatasetServing)
	c.byName[name] = st
	return nil
}

// Remove unregisters the named dataset and tears it down while every
// other dataset keeps serving untouched: the name is unpublished first
// (new lookups answer ErrUnknownDataset immediately), then both
// coalescers drain — every request accepted before the drop began is
// answered, no ACK is lost — and finally, for durable datasets, the
// store is synced and closed (preceded by a final compacting snapshot
// when snapshot is true, so a later re-add recovers from a snapshot
// instead of a long WAL replay). The dataset's directory is left on
// disk; dropping unregisters, it does not destroy data.
//
// Requests that resolved the dataset just before the drop and lose the
// race are answered ErrUnknownDataset too (see dsState.dropped), so the
// typed error vocabulary for a dropped name is exactly not_found.
// The empty name is not a valid drop target — Remove takes the explicit
// name only, never the sole-dataset default.
func (c *Core[K]) Remove(name string, snapshot bool) error {
	if name == "" {
		return ErrUnknownDataset
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrShuttingDown
	}
	st, ok := c.byName[name]
	if !ok {
		c.mu.Unlock()
		return ErrUnknownDataset
	}
	delete(c.byName, name)
	c.mu.Unlock()

	st.dropped.Store(true)
	st.state.Store(DatasetDraining)
	st.samples.close()
	st.inserts.close()
	var errs []error
	if st.store != nil {
		if snapshot {
			if _, err := st.snapshotNow(); err != nil {
				errs = append(errs, err)
			}
		}
		if err := st.store.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	st.state.Store(DatasetClosed)
	return errors.Join(errs...)
}

// dropErr rewrites the shutdown-vocabulary errors a request racing a
// Remove can observe (closed coalescer, closed store) into the dropped
// dataset's typed answer. Errors on live datasets pass through.
func (st *dsState[K]) dropErr(err error) error {
	if err != nil && st.dropped.Load() && errors.Is(err, ErrShuttingDown) {
		return ErrUnknownDataset
	}
	return err
}

// lookup resolves a dataset name; the empty name resolves only when
// exactly one dataset is registered.
func (c *Core[K]) lookup(name string) (*dsState[K], error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, ErrShuttingDown
	}
	if name == "" {
		if len(c.byName) == 1 {
			for _, st := range c.byName {
				return st, nil
			}
		}
		if len(c.byName) > 1 {
			return nil, ErrAmbiguousDataset
		}
		return nil, ErrUnknownDataset
	}
	st, ok := c.byName[name]
	if !ok {
		return nil, ErrUnknownDataset
	}
	return st, nil
}

// Resolve returns the dataset name a request for name would be served by
// (resolving the empty name to the sole dataset), or the routing error.
func (c *Core[K]) Resolve(name string) (string, error) {
	st, err := c.lookup(name)
	if err != nil {
		return "", err
	}
	return st.name, nil
}

// Datasets returns the registered dataset names in sorted order.
func (c *Core[K]) Datasets() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.byName))
	for n := range c.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Sample draws t independent samples from [lo, hi] of the named dataset,
// coalescing with concurrently-arriving requests into one backend
// SampleMany call. Validation happens before admission, so malformed
// requests never consume queue capacity.
func (c *Core[K]) Sample(name string, lo, hi K, t int) ([]K, error) {
	return c.SampleAppend(name, nil, lo, hi, t)
}

// SampleAppend is Sample appending into dst — the allocation-free spelling
// for callers that reuse a buffer across requests (the HTTP handler's
// pooled response buffers do). A steady-state round trip through the core
// performs zero heap allocations per request: the reply channel, batch
// slice, flusher scratch, and backend query scratch are all pooled or
// flusher-owned, and the samples land directly in dst. On error dst is
// returned unchanged.
func (c *Core[K]) SampleAppend(name string, dst []K, lo, hi K, t int) ([]K, error) {
	if t <= 0 {
		return dst, ErrInvalidCount
	}
	if hi < lo {
		return dst, ErrInvalidRange
	}
	st, err := c.lookup(name)
	if err != nil {
		return dst, err
	}
	st.counters.sampleRequests.Add(1)
	out, err := st.samples.submit(sampleArg[K]{q: shard.Query[K]{Lo: lo, Hi: hi, T: t}, dst: dst})
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			st.counters.sampleRejected.Add(1)
		}
		return dst, st.dropErr(err)
	}
	return out, nil
}

// SampleAppendAsync is SampleAppend without the blocking wait: the request
// joins the same coalescer queue, and its samples (appended to dst) or its
// error arrive through done.Deliver from a flusher goroutine. Validation,
// routing, and admission errors are returned synchronously, in which case
// done is never invoked; on a nil return done.Deliver runs exactly once.
// This is the submission path for transports that multiplex many requests
// over one connection — the connection's reader goroutine must not park on
// a flush, or one slow batch would stall every pipelined request behind it.
func (c *Core[K]) SampleAppendAsync(name string, dst []K, lo, hi K, t int, done Reply[[]K]) error {
	if t <= 0 {
		return ErrInvalidCount
	}
	if hi < lo {
		return ErrInvalidRange
	}
	st, err := c.lookup(name)
	if err != nil {
		return err
	}
	st.counters.sampleRequests.Add(1)
	err = st.samples.submitAsync(sampleArg[K]{q: shard.Query[K]{Lo: lo, Hi: hi, T: t}, dst: dst}, done)
	if errors.Is(err, ErrOverloaded) {
		st.counters.sampleRejected.Add(1)
	}
	return st.dropErr(err)
}

// maxRetainedScratch bounds the element capacity a flusher keeps between
// flushes: scratch grown past it by one outsized batch is dropped after
// use rather than pinning high-water memory for the server's lifetime.
// Steady-state batches (MaxBatch requests of ordinary t) stay well under
// it, so the zero-alloc property is unaffected.
const maxRetainedScratch = 1 << 16

// sampleFlusher is one sample flush worker's private state: its RNG stream
// plus reusable scratch — the query slice, the flat result buffer every
// query's samples land in, and the per-query boundaries — so a steady-state
// flush performs no heap allocation of its own.
type sampleFlusher[K cmp.Ordered] struct {
	st      *dsState[K]
	rng     *xrand.RNG
	queries []shard.Query[K]
	flat    []K
	starts  []int
}

// flush answers one coalesced batch with a single SampleManyAppend call
// into the flusher's flat buffer and scatters each query's segment back to
// its requester, appending into the requester's own dst buffer.
func (f *sampleFlusher[K]) flush(batch []request[sampleArg[K], []K]) {
	st := f.st
	st.counters.noteSampleBatch(len(batch))
	f.queries = f.queries[:0]
	for _, r := range batch {
		f.queries = append(f.queries, r.q.q)
	}
	flat, starts, err := st.ds.SampleManyAppend(f.flat[:0], f.starts[:0], f.queries, f.rng)
	if cap(flat) <= maxRetainedScratch {
		f.flat = flat
	} else {
		f.flat = nil
	}
	f.starts = starts
	for i, r := range batch {
		switch {
		case err != nil:
			r.reply(result[[]K]{err: err})
		case starts[i+1] == starts[i]:
			// T was validated positive, so an empty segment means the range
			// had no sampling mass at flush time.
			r.reply(result[[]K]{err: ErrEmptyRange})
		default:
			seg := flat[starts[i]:starts[i+1]]
			st.counters.samplesReturned.Add(uint64(len(seg)))
			r.reply(result[[]K]{v: append(r.q.dst, seg...)})
		}
	}
}

// Insert stores items in the named dataset, coalescing with concurrently-
// arriving insert requests into one backend InsertBatch call. Weights are
// validated before admission on weighted datasets (unweighted datasets
// ignore them), so a merged batch cannot fail validation. It returns the
// number of items stored. The items slice must not be mutated until Insert
// returns.
func (c *Core[K]) Insert(name string, items []Item[K]) (int, error) {
	st, err := c.lookup(name)
	if err != nil {
		return 0, err
	}
	if len(items) == 0 {
		return 0, nil
	}
	if st.ds.Weighted() {
		for _, it := range items {
			if !weighted.ValidWeight(it.Weight) {
				return 0, ErrInvalidWeight
			}
		}
	}
	st.counters.insertRequests.Add(1)
	n, err := st.inserts.submit(items)
	if errors.Is(err, ErrOverloaded) {
		st.counters.insertRejected.Add(1)
	}
	return n, st.dropErr(err)
}

// InsertAsync is Insert without the blocking wait, under the same contract
// as SampleAppendAsync: validation, routing, and admission errors return
// synchronously (done never runs); on a nil return done.Deliver runs
// exactly once with the stored count. An empty items slice is answered
// inline — done.Deliver(0, nil) runs before InsertAsync returns. The items
// slice must stay unmutated until done is invoked.
func (c *Core[K]) InsertAsync(name string, items []Item[K], done Reply[int]) error {
	st, err := c.lookup(name)
	if err != nil {
		return err
	}
	if len(items) == 0 {
		done.Deliver(0, nil)
		return nil
	}
	if st.ds.Weighted() {
		for _, it := range items {
			if !weighted.ValidWeight(it.Weight) {
				return ErrInvalidWeight
			}
		}
	}
	st.counters.insertRequests.Add(1)
	err = st.inserts.submitAsync(items, done)
	if errors.Is(err, ErrOverloaded) {
		st.counters.insertRejected.Add(1)
	}
	return st.dropErr(err)
}

// insertFlusher is one insert flush worker's private state: the reusable
// concatenation buffer merged batches are assembled in plus the reusable
// WAL-entry buffer they are encoded through, so a steady-state durable
// flush performs no heap allocation of its own.
type insertFlusher[K cmp.Ordered] struct {
	st      *dsState[K]
	items   []Item[K]
	entries []persist.Entry[K]
}

// flush concatenates one coalesced batch of insert requests and stores it
// with a single InsertBatch call — preceded, on durable datasets, by a
// single WAL staging covering the whole merged batch, so the group-commit
// fsync cost amortizes across every coalesced request (and, through the
// committer, across concurrent flushers too). The backend does not retain
// the items slice, so the buffer is safe to reuse on the next flush.
func (f *insertFlusher[K]) flush(batch []request[[]Item[K], int]) {
	st := f.st
	st.counters.noteInsertBatch(len(batch))
	f.items = f.items[:0]
	for _, r := range batch {
		f.items = append(f.items, r.q...)
	}
	total := len(f.items)
	err := st.applyInsert(f.items, &f.entries)
	if cap(f.items) > maxRetainedScratch {
		f.items = nil
	}
	if err == nil {
		st.counters.itemsInserted.Add(uint64(total))
	}
	for _, r := range batch {
		if err != nil {
			r.reply(result[int]{err: err})
		} else {
			r.reply(result[int]{v: len(r.q)})
		}
	}
}

// Delete removes one occurrence of each key from the named dataset,
// returning how many were present and removed. Deletes go straight to
// DeleteBatch — the request body is already a batch — and remain subject
// to the shutdown gate.
func (c *Core[K]) Delete(name string, keys []K) (int, error) {
	st, err := c.lookup(name)
	if err != nil {
		return 0, err
	}
	st.counters.deleteRequests.Add(1)
	n, err := st.applyDelete(keys)
	if err != nil {
		return 0, st.dropErr(err)
	}
	st.counters.keysDeleted.Add(uint64(n))
	return n, nil
}

// applyInsert stages (durable datasets) and applies one merged insert
// batch under the durability order: logMu covers exactly (stage, apply) —
// assigning the batch its WAL position and mutating memory in the same
// order — while the fsync wait runs after logMu is released, so a slow
// disk flush never serializes other flushers behind this batch. The
// caller's scratch buffer carries the encoded entries and is trimmed back
// under the retention bound.
func (st *dsState[K]) applyInsert(items []Item[K], scratch *[]persist.Entry[K]) error {
	if st.store == nil {
		return st.ds.InsertItems(items)
	}
	entries := appendEntries((*scratch)[:0], items)
	if cap(entries) <= maxRetainedScratch {
		*scratch = entries[:0]
	} else {
		*scratch = nil
	}
	st.logMu.Lock()
	t, err := st.store.StageInsert(entries)
	if err != nil {
		st.logMu.Unlock()
		return logErr(err)
	}
	err = st.ds.InsertItems(items)
	st.logMu.Unlock()
	if err != nil {
		return err
	}
	return logErr(st.store.WaitDurable(t))
}

// applyDelete stages (durable datasets) and applies one delete batch under
// the same stage → apply → wait discipline as applyInsert.
func (st *dsState[K]) applyDelete(keys []K) (int, error) {
	if st.store == nil {
		return st.ds.DeleteKeys(keys), nil
	}
	sp := st.getEntries()
	entries := (*sp)[:0]
	for _, k := range keys {
		entries = append(entries, persist.Entry[K]{Key: k})
	}
	*sp = entries
	st.logMu.Lock()
	t, err := st.store.StageDelete(entries)
	if err != nil {
		st.logMu.Unlock()
		st.putEntries(sp)
		return 0, logErr(err)
	}
	n := st.ds.DeleteKeys(keys)
	st.logMu.Unlock()
	st.putEntries(sp)
	if err := st.store.WaitDurable(t); err != nil {
		return 0, logErr(err)
	}
	return n, nil
}

// logErr maps WAL append failures to the serving vocabulary: a store
// closed by Close means the core is draining (a Delete/Update can pass
// the lookup gate just before Close and reach a closed store), so the
// caller deserves the retryable shutting_down answer, not an internal
// error.
func logErr(err error) error {
	if errors.Is(err, persist.ErrClosed) {
		return ErrShuttingDown
	}
	return err
}

// RangeStats returns the number of keys and the total sampling mass in
// [lo, hi] of the named dataset — stage 1 of the exact cross-partition
// multinomial, exposed so a cluster router can split a query's samples
// across nodes in proportion to in-range mass. It bypasses the coalescer:
// the engines answer it in O(shards · log n) under read locks.
func (c *Core[K]) RangeStats(name string, lo, hi K) (int, float64, error) {
	if hi < lo {
		return 0, 0, ErrInvalidRange
	}
	st, err := c.lookup(name)
	if err != nil {
		return 0, 0, err
	}
	n, m := st.ds.RangeStats(lo, hi)
	return n, m, nil
}

// Stats returns a snapshot of every dataset's serving counters and
// topology, in name order.
func (c *Core[K]) Stats() Stats {
	c.mu.RLock()
	states := make([]*dsState[K], 0, len(c.byName))
	for _, st := range c.byName {
		states = append(states, st)
	}
	c.mu.RUnlock()
	sort.Slice(states, func(i, j int) bool { return states[i].name < states[j].name })
	out := Stats{Datasets: make([]DatasetStats, len(states))}
	for i, st := range states {
		out.Datasets[i] = st.snapshot()
	}
	return out
}

// Close stops admitting work and drains: every request accepted before
// Close is answered before Close returns, then each durable dataset's
// store is synced and closed. Later calls to Sample, Insert, Delete, or
// Update fail with ErrShuttingDown. Safe to call more than once; the
// returned error joins any store close failures.
func (c *Core[K]) Close() error {
	c.mu.Lock()
	c.closed = true
	states := make([]*dsState[K], 0, len(c.byName))
	for _, st := range c.byName {
		states = append(states, st)
	}
	c.mu.Unlock()
	var errs []error
	for _, st := range states {
		st.state.CompareAndSwap(DatasetServing, DatasetDraining)
		st.samples.close()
		st.inserts.close()
		if st.store != nil {
			if err := st.store.Close(); err != nil {
				errs = append(errs, err)
			}
		}
		st.state.Store(DatasetClosed)
	}
	return errors.Join(errs...)
}
