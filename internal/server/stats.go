package server

import (
	"sync/atomic"

	"github.com/irsgo/irs/internal/persist"
)

// counters is the live per-dataset instrumentation, updated atomically on
// every request path so /stats never takes a lock a hot path contends on.
type counters struct {
	sampleRequests  atomic.Uint64
	sampleRejected  atomic.Uint64
	sampleBatches   atomic.Uint64
	samplesReturned atomic.Uint64
	maxCoalesced    atomic.Uint64

	insertRequests atomic.Uint64
	insertRejected atomic.Uint64
	insertBatches  atomic.Uint64
	itemsInserted  atomic.Uint64

	deleteRequests atomic.Uint64
	keysDeleted    atomic.Uint64

	updateRequests atomic.Uint64
	keysUpdated    atomic.Uint64
}

// noteSampleBatch records one flushed sample batch of n coalesced requests.
func (c *counters) noteSampleBatch(n int) {
	c.sampleBatches.Add(1)
	for {
		cur := c.maxCoalesced.Load()
		if uint64(n) <= cur || c.maxCoalesced.CompareAndSwap(cur, uint64(n)) {
			return
		}
	}
}

// DatasetStats is a point-in-time snapshot of one dataset's serving
// counters. SampleBatches versus SampleRequests is the coalescing ratio:
// how many backend SampleMany calls served how many client requests.
type DatasetStats struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"` // "unweighted" or "weighted"
	Len    int    `json:"len"`
	Shards int    `json:"shards"`

	SampleRequests  uint64 `json:"sample_requests"`
	SampleRejected  uint64 `json:"sample_rejected"` // backpressure rejections
	SampleBatches   uint64 `json:"sample_batches"`  // backend SampleMany calls
	SamplesReturned uint64 `json:"samples_returned"`
	MaxCoalesced    uint64 `json:"max_coalesced"` // largest sample batch so far

	InsertRequests uint64 `json:"insert_requests"`
	InsertRejected uint64 `json:"insert_rejected"`
	InsertBatches  uint64 `json:"insert_batches"` // backend InsertBatch calls
	ItemsInserted  uint64 `json:"items_inserted"`

	DeleteRequests uint64 `json:"delete_requests"`
	KeysDeleted    uint64 `json:"keys_deleted"`

	UpdateRequests uint64 `json:"update_requests"`
	KeysUpdated    uint64 `json:"keys_updated"`

	// Durable reports whether a persistence store is attached; Persist is
	// nil for memory-only datasets.
	Durable bool          `json:"durable"`
	Persist *PersistStats `json:"persist,omitempty"`
}

// PersistStats is the durability slice of a dataset's stats: the store's
// live WAL/snapshot counters plus what recovery reconstructed at boot.
type PersistStats struct {
	persist.StoreStats
	Recovery persist.RecoveryStats `json:"recovery"`
}

// Stats is the full serving snapshot, one entry per dataset in name order.
type Stats struct {
	Datasets []DatasetStats `json:"datasets"`
}

// snapshot reads the counters plus the structure's topology.
func (st *dsState[K]) snapshot() DatasetStats {
	kind := "unweighted"
	if st.ds.Weighted() {
		kind = "weighted"
	}
	topo := st.ds.Stats()
	c := &st.counters
	out := DatasetStats{
		Name:   st.name,
		Kind:   kind,
		Len:    topo.Len,
		Shards: topo.Shards,

		SampleRequests:  c.sampleRequests.Load(),
		SampleRejected:  c.sampleRejected.Load(),
		SampleBatches:   c.sampleBatches.Load(),
		SamplesReturned: c.samplesReturned.Load(),
		MaxCoalesced:    c.maxCoalesced.Load(),

		InsertRequests: c.insertRequests.Load(),
		InsertRejected: c.insertRejected.Load(),
		InsertBatches:  c.insertBatches.Load(),
		ItemsInserted:  c.itemsInserted.Load(),

		DeleteRequests: c.deleteRequests.Load(),
		KeysDeleted:    c.keysDeleted.Load(),

		UpdateRequests: c.updateRequests.Load(),
		KeysUpdated:    c.keysUpdated.Load(),
	}
	if st.store != nil {
		out.Durable = true
		out.Persist = &PersistStats{StoreStats: st.store.Stats(), Recovery: st.recovery}
	}
	return out
}
