package server

import (
	"github.com/irsgo/irs/internal/metrics"
	"github.com/irsgo/irs/internal/persist"
)

// counters is the live per-dataset instrumentation, updated atomically on
// every request path so /stats and /metrics never take a lock a hot path
// contends on. Each instrument is cache-line padded (see internal/metrics)
// so the sample and insert paths don't false-share counters.
type counters struct {
	sampleRequests  metrics.Counter
	sampleRejected  metrics.Counter
	sampleBatches   metrics.Counter
	samplesReturned metrics.Counter
	maxCoalesced    metrics.Gauge

	insertRequests     metrics.Counter
	insertRejected     metrics.Counter
	insertBatches      metrics.Counter
	itemsInserted      metrics.Counter
	insertMaxCoalesced metrics.Gauge

	deleteRequests metrics.Counter
	keysDeleted    metrics.Counter

	updateRequests metrics.Counter
	keysUpdated    metrics.Counter

	// Flush-batch-size histograms: how many coalesced requests each
	// backend call carried, per path. Their means are the live
	// coalescing ratios.
	sampleBatchSizes metrics.SizeHistogram
	insertBatchSizes metrics.SizeHistogram

	// snapshotSeconds times each full snapshot protocol (rotate, export,
	// serialize, compact).
	snapshotSeconds metrics.DurationHistogram
}

// noteSampleBatch records one flushed sample batch of n coalesced requests.
func (c *counters) noteSampleBatch(n int) {
	c.sampleBatches.Inc()
	c.sampleBatchSizes.Observe(uint64(n))
	c.maxCoalesced.SetMax(int64(n))
}

// noteInsertBatch records one flushed insert batch of n coalesced requests.
func (c *counters) noteInsertBatch(n int) {
	c.insertBatches.Inc()
	c.insertBatchSizes.Observe(uint64(n))
	c.insertMaxCoalesced.SetMax(int64(n))
}

// DatasetStats is a point-in-time snapshot of one dataset's serving
// counters. SampleBatches versus SampleRequests is the coalescing ratio:
// how many backend SampleMany calls served how many client requests.
type DatasetStats struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`            // "unweighted" or "weighted"
	State  string `json:"state,omitempty"` // lifecycle: starting, serving, draining, closed
	Len    int    `json:"len"`
	Shards int    `json:"shards"`

	// Mass is the dataset's total sampling mass: Len for unweighted
	// datasets, the sum of weights for weighted ones. MinKey/MaxKey are the
	// stored key bounds, omitted while the dataset is empty; a cluster
	// router reads them to sanity-check its partition assignment. They are
	// typed any because the stats document is shared across key types; for
	// the float64 serving stack they carry float64s.
	Mass   float64 `json:"mass"`
	MinKey any     `json:"min_key,omitempty"`
	MaxKey any     `json:"max_key,omitempty"`

	SampleRequests  uint64 `json:"sample_requests"`
	SampleRejected  uint64 `json:"sample_rejected"` // backpressure rejections
	SampleBatches   uint64 `json:"sample_batches"`  // backend SampleMany calls
	SamplesReturned uint64 `json:"samples_returned"`
	MaxCoalesced    uint64 `json:"max_coalesced"` // largest sample batch so far

	InsertRequests uint64 `json:"insert_requests"`
	InsertRejected uint64 `json:"insert_rejected"`
	InsertBatches  uint64 `json:"insert_batches"` // backend InsertBatch calls
	ItemsInserted  uint64 `json:"items_inserted"`

	DeleteRequests uint64 `json:"delete_requests"`
	KeysDeleted    uint64 `json:"keys_deleted"`

	UpdateRequests uint64 `json:"update_requests"`
	KeysUpdated    uint64 `json:"keys_updated"`

	// Durable reports whether a persistence store is attached; Persist is
	// nil for memory-only datasets.
	Durable bool          `json:"durable"`
	Persist *PersistStats `json:"persist,omitempty"`
}

// PersistStats is the durability slice of a dataset's stats: the store's
// live WAL/snapshot counters plus what recovery reconstructed at boot.
type PersistStats struct {
	persist.StoreStats
	Recovery persist.RecoveryStats `json:"recovery"`
}

// ServerInfo is the process-identity slice of Stats: build version, Go
// toolchain, and uptime. The core leaves it zero; the transport layer
// that knows the process identity (package server) fills it in.
type ServerInfo struct {
	Version       string  `json:"version,omitempty"`
	GoVersion     string  `json:"go_version,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`

	// ConfigEpoch counts the configurations this process has applied: 1
	// after boot, +1 per successful reload. Zero means the transport layer
	// doesn't track config generations.
	ConfigEpoch uint64 `json:"config_epoch,omitempty"`
}

// Stats is the full serving snapshot, one entry per dataset in name order.
type Stats struct {
	Server   ServerInfo     `json:"server"`
	Datasets []DatasetStats `json:"datasets"`
}

// snapshot reads the counters plus the structure's topology.
func (st *dsState[K]) snapshot() DatasetStats {
	kind := "unweighted"
	if st.ds.Weighted() {
		kind = "weighted"
	}
	topo := st.ds.Stats()
	c := &st.counters
	out := DatasetStats{
		Name:   st.name,
		Kind:   kind,
		State:  LifecycleName(st.state.Load()),
		Len:    topo.Len,
		Shards: topo.Shards,

		SampleRequests:  c.sampleRequests.Load(),
		SampleRejected:  c.sampleRejected.Load(),
		SampleBatches:   c.sampleBatches.Load(),
		SamplesReturned: c.samplesReturned.Load(),
		MaxCoalesced:    uint64(c.maxCoalesced.Load()),

		InsertRequests: c.insertRequests.Load(),
		InsertRejected: c.insertRejected.Load(),
		InsertBatches:  c.insertBatches.Load(),
		ItemsInserted:  c.itemsInserted.Load(),

		DeleteRequests: c.deleteRequests.Load(),
		KeysDeleted:    c.keysDeleted.Load(),

		UpdateRequests: c.updateRequests.Load(),
		KeysUpdated:    c.keysUpdated.Load(),
	}
	if lo, hi, ok := st.ds.KeyBounds(); ok {
		out.MinKey, out.MaxKey = lo, hi
		_, out.Mass = st.ds.RangeStats(lo, hi)
	}
	if st.store != nil {
		out.Durable = true
		out.Persist = &PersistStats{StoreStats: st.store.Stats(), Recovery: st.recovery}
	}
	return out
}
