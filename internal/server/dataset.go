package server

import (
	"cmp"
	"sync"

	"github.com/irsgo/irs/internal/shard"
	"github.com/irsgo/irs/internal/weighted"
	"github.com/irsgo/irs/internal/xrand"
)

// Item is one element of an insert request: a key plus a sampling weight.
// Unweighted datasets route and store the key and ignore the weight (every
// key has unit mass); weighted datasets validate it with the usual rules
// (non-negative, finite).
type Item[K cmp.Ordered] struct {
	Key    K       `json:"key"`
	Weight float64 `json:"weight,omitempty"`
}

// Dataset is the backend surface a Core serves: exactly the slice of
// irs.Concurrent / irs.WeightedConcurrent the serving layer needs, so tests
// can substitute instrumented fakes. Implementations must be safe for any
// number of concurrent goroutines (the concurrent structures are), and
// SampleMany must answer every query in a batch against one consistent
// snapshot while preserving per-sample uniformity (or weight-
// proportionality) and independence — the property request coalescing
// inherits.
type Dataset[K cmp.Ordered] interface {
	// SampleMany answers a batch of range-sampling queries; results[i]
	// holds queries[i]'s samples, nil for a query over a range with no
	// sampling mass.
	SampleMany(queries []shard.Query[K], rng *xrand.RNG) ([][]K, error)
	// SampleManyAppend is SampleMany with caller-owned storage — the
	// serving hot path: samples append to dst, per-query boundaries append
	// to starts (len(queries)+1 of them), so queries[i]'s samples occupy
	// dst[starts[i]:starts[i+1]] and an empty segment marks a range with no
	// sampling mass. Steady-state calls must not allocate once the buffers
	// have warmed up.
	SampleManyAppend(dst []K, starts []int, queries []shard.Query[K], rng *xrand.RNG) ([]K, []int, error)
	// InsertItems stores every item. Weights were validated by the Core
	// before submission, so an error here fails the whole merged batch.
	InsertItems(items []Item[K]) error
	// DeleteKeys removes one occurrence of each key, returning how many
	// were present and removed.
	DeleteKeys(keys []K) int
	// UpdateWeights sets the weight of one occurrence of each item's key,
	// returning how many keys were present. The Core gates this path on
	// Weighted() and validates the weights first, so unweighted
	// implementations may simply return 0.
	UpdateWeights(items []Item[K]) int
	// ExportItems appends every stored item in key order — a consistent
	// point-in-time export (unweighted datasets report unit weights). This
	// is the state a snapshot serializes; it pauses writers briefly.
	ExportItems(dst []Item[K]) []Item[K]
	// RangeStats returns the number of keys and the total sampling mass in
	// [lo, hi] (the key count for unweighted datasets, the range's total
	// weight for weighted ones) against one consistent snapshot.
	RangeStats(lo, hi K) (count int, mass float64)
	// KeyBounds returns the smallest and largest stored keys; ok is false
	// when the dataset is empty.
	KeyBounds() (lo, hi K, ok bool)
	// Len returns the number of stored items.
	Len() int
	// Stats returns the structure's topology snapshot.
	Stats() shard.Stats
	// Weighted reports whether samples are weight-proportional.
	Weighted() bool
	// NewStream returns a fresh sampling RNG from the structure's
	// deterministic stream sequence; the serving layer draws the RNGs of
	// its flush workers from it.
	NewStream() *xrand.RNG
}

// unweightedDataset adapts *shard.Concurrent (= irs.Concurrent). keyPool
// recycles the key buffers InsertItems strips items into, so the durable
// insert flush stays allocation-free end to end (InsertBatch does not
// retain its argument).
type unweightedDataset[K cmp.Ordered] struct {
	c       *shard.Concurrent[K]
	keyPool sync.Pool // *[]K
}

// NewUnweightedDataset wraps a Concurrent as a servable Dataset. Insert
// weights are ignored: every key has unit sampling mass.
func NewUnweightedDataset[K cmp.Ordered](c *shard.Concurrent[K]) Dataset[K] {
	return &unweightedDataset[K]{c: c}
}

func (d *unweightedDataset[K]) SampleMany(queries []shard.Query[K], rng *xrand.RNG) ([][]K, error) {
	return d.c.SampleMany(queries, rng)
}

func (d *unweightedDataset[K]) SampleManyAppend(dst []K, starts []int, queries []shard.Query[K], rng *xrand.RNG) ([]K, []int, error) {
	return d.c.SampleManyAppend(dst, starts, queries, rng)
}

func (d *unweightedDataset[K]) InsertItems(items []Item[K]) error {
	kp, _ := d.keyPool.Get().(*[]K)
	if kp == nil {
		kp = new([]K)
	}
	keys := (*kp)[:0]
	for _, it := range items {
		keys = append(keys, it.Key)
	}
	d.c.InsertBatch(keys)
	if cap(keys) <= maxRetainedScratch {
		*kp = keys[:0]
		d.keyPool.Put(kp)
	}
	return nil
}

func (d *unweightedDataset[K]) UpdateWeights(items []Item[K]) int { return 0 }

func (d *unweightedDataset[K]) ExportItems(dst []Item[K]) []Item[K] {
	keys := d.c.AppendKeys(make([]K, 0, d.c.Len()))
	for _, k := range keys {
		dst = append(dst, Item[K]{Key: k, Weight: 1})
	}
	return dst
}

func (d *unweightedDataset[K]) RangeStats(lo, hi K) (int, float64) { return d.c.RangeStats(lo, hi) }
func (d *unweightedDataset[K]) KeyBounds() (K, K, bool)            { return d.c.KeyBounds() }

func (d *unweightedDataset[K]) DeleteKeys(keys []K) int { return d.c.DeleteBatch(keys) }
func (d *unweightedDataset[K]) Len() int                { return d.c.Len() }
func (d *unweightedDataset[K]) Stats() shard.Stats      { return d.c.Stats() }
func (d *unweightedDataset[K]) Weighted() bool          { return false }
func (d *unweightedDataset[K]) NewStream() *xrand.RNG   { return d.c.NewStream() }

// weightedDataset adapts *shard.WeightedConcurrent (= irs.WeightedConcurrent).
// itemPool recycles the weighted-item buffers InsertItems converts into,
// mirroring unweightedDataset's keyPool.
type weightedDataset[K cmp.Ordered] struct {
	w        *shard.WeightedConcurrent[K]
	itemPool sync.Pool // *[]weighted.Item[K]
}

// NewWeightedDataset wraps a WeightedConcurrent as a servable Dataset.
func NewWeightedDataset[K cmp.Ordered](w *shard.WeightedConcurrent[K]) Dataset[K] {
	return &weightedDataset[K]{w: w}
}

func (d *weightedDataset[K]) SampleMany(queries []shard.Query[K], rng *xrand.RNG) ([][]K, error) {
	return d.w.SampleMany(queries, rng)
}

func (d *weightedDataset[K]) SampleManyAppend(dst []K, starts []int, queries []shard.Query[K], rng *xrand.RNG) ([]K, []int, error) {
	return d.w.SampleManyAppend(dst, starts, queries, rng)
}

func (d *weightedDataset[K]) InsertItems(items []Item[K]) error {
	wp, _ := d.itemPool.Get().(*[]weighted.Item[K])
	if wp == nil {
		wp = new([]weighted.Item[K])
	}
	witems := (*wp)[:0]
	for _, it := range items {
		witems = append(witems, weighted.Item[K]{Key: it.Key, Weight: it.Weight})
	}
	err := d.w.InsertBatch(witems)
	if cap(witems) <= maxRetainedScratch {
		*wp = witems[:0]
		d.itemPool.Put(wp)
	}
	return err
}

func (d *weightedDataset[K]) UpdateWeights(items []Item[K]) int {
	n := 0
	for _, it := range items {
		// Weights were validated by the Core before submission.
		ok, err := d.w.UpdateWeight(it.Key, it.Weight)
		if err == nil && ok {
			n++
		}
	}
	return n
}

func (d *weightedDataset[K]) ExportItems(dst []Item[K]) []Item[K] {
	witems := d.w.AppendItems(make([]weighted.Item[K], 0, d.w.Len()))
	for _, it := range witems {
		dst = append(dst, Item[K]{Key: it.Key, Weight: it.Weight})
	}
	return dst
}

func (d *weightedDataset[K]) RangeStats(lo, hi K) (int, float64) { return d.w.RangeStats(lo, hi) }
func (d *weightedDataset[K]) KeyBounds() (K, K, bool)            { return d.w.KeyBounds() }

func (d *weightedDataset[K]) DeleteKeys(keys []K) int { return d.w.DeleteBatch(keys) }
func (d *weightedDataset[K]) Len() int                { return d.w.Len() }
func (d *weightedDataset[K]) Stats() shard.Stats      { return d.w.Stats() }
func (d *weightedDataset[K]) Weighted() bool          { return true }
func (d *weightedDataset[K]) NewStream() *xrand.RNG   { return d.w.NewStream() }
