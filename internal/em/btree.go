package em

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Tree is a disk-resident B+-tree over int64 keys (a multiset: duplicates
// allowed), accessed through a buffer pool so every page touch is charged
// to the I/O counters.
//
// Page layouts (little-endian):
//
//	leaf:     [0]=1  [2:4]=count  [4:8]=next leaf id   [8+8i : 8+8i+8]=key i
//	internal: [0]=2  [2:4]=count  [4:8]=child 0        entry i: key at 8+12i,
//	          child i+1 at 16+12i
//
// The tree also keeps an in-memory *leaf directory* — the ordered list of
// leaf page ids. This is O(n/B) words of metadata (it fits in memory by the
// standard I/O-model assumption M > n/B) and is what gives the IRS query
// O(1)-I/O access to a uniformly random leaf of the range. Directory
// maintenance happens on splits and is not charged I/O, exactly like the
// in-memory fanout directories of the literature.
//
// Deletion removes keys but never merges leaves (a documented
// simplification: queries remain exactly correct because sampling rejects
// empty slots; only the acceptance rate degrades with fill, which the tests
// exercise).
type Tree struct {
	pool    *Pool
	root    PageID
	height  int // 1 = root is a leaf
	leafCap int
	intCap  int
	leaves  []PageID
	leafPos map[PageID]int
	n       int

	scratchK []int64
	scratchC []PageID
}

const (
	pageLeaf     = 1
	pageInternal = 2
	leafHdr      = 8
	intHdr       = 8
)

// Errors specific to the tree.
var (
	ErrCorrupt = errors.New("em: corrupt page")
	ErrTooFew  = errors.New("em: page size too small for B+-tree nodes")
)

// New creates an empty tree backed by pool.
func New(pool *Pool) (*Tree, error) {
	t, err := newShell(pool)
	if err != nil {
		return nil, err
	}
	rootID, page, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	initLeaf(page)
	t.root = rootID
	t.height = 1
	t.leaves = []PageID{rootID}
	t.leafPos[rootID] = 0
	return t, nil
}

func newShell(pool *Pool) (*Tree, error) {
	ps := pool.Device().PageSize()
	t := &Tree{
		pool:    pool,
		leafCap: (ps - leafHdr) / 8,
		intCap:  (ps - intHdr) / 12,
		leafPos: map[PageID]int{},
	}
	if t.leafCap < 2 || t.intCap < 2 {
		return nil, ErrTooFew
	}
	return t, nil
}

// BulkLoad builds a tree from sorted keys with the given leaf fill fraction
// (clamped to [0.3, 1]). O(n/B) write I/Os.
func BulkLoad(pool *Pool, keys []int64, fill float64) (*Tree, error) {
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return nil, errors.New("em: bulk load keys not sorted")
		}
	}
	if len(keys) == 0 {
		return New(pool)
	}
	t, err := newShell(pool)
	if err != nil {
		return nil, err
	}
	if fill < 0.3 {
		fill = 0.3
	}
	if fill > 1 {
		fill = 1
	}
	t.n = len(keys)

	// Leaf level, evenly distributed around the target fill.
	perLeaf := max(1, int(float64(t.leafCap)*fill))
	numLeaves := (len(keys) + perLeaf - 1) / perLeaf
	base, extra := len(keys)/numLeaves, len(keys)%numLeaves
	firstKeys := make([]int64, 0, numLeaves)
	ids := make([]PageID, 0, numLeaves)
	idx := 0
	for i := 0; i < numLeaves; i++ {
		sz := base
		if i < extra {
			sz++
		}
		id, page, err := pool.NewPage()
		if err != nil {
			return nil, err
		}
		initLeaf(page)
		for j := 0; j < sz; j++ {
			setLeafKey(page, j, keys[idx+j])
		}
		setCount(page, sz)
		idx += sz
		firstKeys = append(firstKeys, keys[idx-sz])
		ids = append(ids, id)
	}
	// Chain the leaves.
	for i := 0; i < len(ids); i++ {
		page, err := pool.Get(ids[i])
		if err != nil {
			return nil, err
		}
		next := InvalidPage
		if i+1 < len(ids) {
			next = ids[i+1]
		}
		setLeafNext(page, next)
		pool.MarkDirty(ids[i])
	}
	t.leaves = append([]PageID(nil), ids...)
	for i, id := range ids {
		t.leafPos[id] = i
	}

	// Internal levels.
	t.height = 1
	childIDs := ids
	childFirst := firstKeys
	perNode := max(2, int(float64(t.intCap+1)*fill)) // children per node
	for len(childIDs) > 1 {
		t.height++
		numNodes := (len(childIDs) + perNode - 1) / perNode
		nb, ne := len(childIDs)/numNodes, len(childIDs)%numNodes
		var upIDs []PageID
		var upFirst []int64
		pos := 0
		for i := 0; i < numNodes; i++ {
			sz := nb
			if i < ne {
				sz++
			}
			id, page, err := pool.NewPage()
			if err != nil {
				return nil, err
			}
			initInternal(page)
			setIntChild(page, 0, childIDs[pos])
			for j := 1; j < sz; j++ {
				setIntKey(page, j-1, childFirst[pos+j])
				setIntChild(page, j, childIDs[pos+j])
			}
			setCount(page, sz-1)
			upIDs = append(upIDs, id)
			upFirst = append(upFirst, childFirst[pos])
			pos += sz
		}
		childIDs, childFirst = upIDs, upFirst
	}
	t.root = childIDs[0]
	return t, nil
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.n }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return len(t.leaves) }

// LeafCapacity returns the per-leaf key capacity (useful for sizing
// experiments).
func (t *Tree) LeafCapacity() int { return t.leafCap }

// --- page accessors ---

func initLeaf(p []byte) {
	p[0] = pageLeaf
	setCount(p, 0)
	setLeafNext(p, InvalidPage)
}

func initInternal(p []byte) {
	p[0] = pageInternal
	setCount(p, 0)
}

func pageKind(p []byte) byte { return p[0] }

func count(p []byte) int { return int(binary.LittleEndian.Uint16(p[2:4])) }

func setCount(p []byte, c int) { binary.LittleEndian.PutUint16(p[2:4], uint16(c)) }

func leafNext(p []byte) PageID { return PageID(binary.LittleEndian.Uint32(p[4:8])) }

func setLeafNext(p []byte, id PageID) { binary.LittleEndian.PutUint32(p[4:8], uint32(id)) }

func leafKey(p []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(p[leafHdr+8*i:]))
}

func setLeafKey(p []byte, i int, k int64) {
	binary.LittleEndian.PutUint64(p[leafHdr+8*i:], uint64(k))
}

func intKey(p []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(p[intHdr+12*i:]))
}

func setIntKey(p []byte, i int, k int64) {
	binary.LittleEndian.PutUint64(p[intHdr+12*i:], uint64(k))
}

func intChild(p []byte, i int) PageID {
	if i == 0 {
		return PageID(binary.LittleEndian.Uint32(p[4:8]))
	}
	return PageID(binary.LittleEndian.Uint32(p[intHdr+12*(i-1)+8:]))
}

func setIntChild(p []byte, i int, id PageID) {
	if i == 0 {
		binary.LittleEndian.PutUint32(p[4:8], uint32(id))
		return
	}
	binary.LittleEndian.PutUint32(p[intHdr+12*(i-1)+8:], uint32(id))
}

// --- descent ---

type pathEntry struct {
	id       PageID
	childIdx int
}

// descend walks from the root to a leaf. If seekLeft is true, equal
// separator keys route left (lower-bound seeks); otherwise right (inserts
// go after duplicates).
func (t *Tree) descend(key int64, seekLeft bool, path *[]pathEntry) (PageID, error) {
	id := t.root
	for level := t.height; level > 1; level-- {
		page, err := t.pool.Get(id)
		if err != nil {
			return InvalidPage, err
		}
		if pageKind(page) != pageInternal {
			return InvalidPage, fmt.Errorf("%w: expected internal page %d", ErrCorrupt, id)
		}
		c := count(page)
		lo, hi := 0, c
		for lo < hi {
			mid := (lo + hi) / 2
			k := intKey(page, mid)
			if key < k || (seekLeft && key == k) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if path != nil {
			*path = append(*path, pathEntry{id: id, childIdx: lo})
		}
		id = intChild(page, lo)
	}
	return id, nil
}

// --- insert ---

// Insert adds key to the tree. O(log_B n) I/Os amortized.
func (t *Tree) Insert(key int64) error {
	var path []pathEntry
	leafID, err := t.descend(key, false, &path)
	if err != nil {
		return err
	}
	page, err := t.pool.Get(leafID)
	if err != nil {
		return err
	}
	c := count(page)
	// Insert position: after duplicates.
	lo, hi := 0, c
	for lo < hi {
		mid := (lo + hi) / 2
		if key < leafKey(page, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if c < t.leafCap {
		copy(page[leafHdr+8*(lo+1):leafHdr+8*(c+1)], page[leafHdr+8*lo:leafHdr+8*c])
		setLeafKey(page, lo, key)
		setCount(page, c+1)
		t.pool.MarkDirty(leafID)
		t.n++
		return nil
	}
	// Split: materialize keys plus the new one, write back two halves.
	t.scratchK = t.scratchK[:0]
	for i := 0; i < c; i++ {
		t.scratchK = append(t.scratchK, leafKey(page, i))
	}
	t.scratchK = append(t.scratchK, 0)
	copy(t.scratchK[lo+1:], t.scratchK[lo:])
	t.scratchK[lo] = key

	mid := (c + 1) / 2
	rightID, rightPage, err := t.pool.NewPage()
	if err != nil {
		return err
	}
	// The pool may have evicted the left page while allocating; re-fetch.
	page, err = t.pool.Get(leafID)
	if err != nil {
		return err
	}
	initLeaf(rightPage)
	for i, k := range t.scratchK[mid:] {
		setLeafKey(rightPage, i, k)
	}
	setCount(rightPage, len(t.scratchK)-mid)
	setLeafNext(rightPage, leafNext(page))
	for i, k := range t.scratchK[:mid] {
		setLeafKey(page, i, k)
	}
	setCount(page, mid)
	setLeafNext(page, rightID)
	t.pool.MarkDirty(leafID)
	t.pool.MarkDirty(rightID)
	t.n++

	// Leaf directory maintenance (in-memory metadata).
	pos := t.leafPos[leafID]
	t.leaves = append(t.leaves, InvalidPage)
	copy(t.leaves[pos+2:], t.leaves[pos+1:])
	t.leaves[pos+1] = rightID
	for i := pos + 1; i < len(t.leaves); i++ {
		t.leafPos[t.leaves[i]] = i
	}

	sep := leafKey(rightPage, 0)
	return t.insertIntoParent(path, sep, rightID)
}

// insertIntoParent inserts (sep, rightID) into the deepest node of path,
// splitting upward as needed.
func (t *Tree) insertIntoParent(path []pathEntry, sep int64, rightID PageID) error {
	if len(path) == 0 {
		// New root.
		newRootID, page, err := t.pool.NewPage()
		if err != nil {
			return err
		}
		initInternal(page)
		setIntChild(page, 0, t.root)
		setIntKey(page, 0, sep)
		setIntChild(page, 1, rightID)
		setCount(page, 1)
		t.root = newRootID
		t.height++
		return nil
	}
	entry := path[len(path)-1]
	page, err := t.pool.Get(entry.id)
	if err != nil {
		return err
	}
	c := count(page)
	at := entry.childIdx
	if c < t.intCap {
		// Shift entries [at, c) one slot right.
		copy(page[intHdr+12*(at+1):intHdr+12*(c+1)], page[intHdr+12*at:intHdr+12*c])
		setIntKey(page, at, sep)
		setIntChild(page, at+1, rightID)
		setCount(page, c+1)
		t.pool.MarkDirty(entry.id)
		return nil
	}
	// Split the internal node: materialize keys and children.
	t.scratchK = t.scratchK[:0]
	t.scratchC = t.scratchC[:0]
	t.scratchC = append(t.scratchC, intChild(page, 0))
	for i := 0; i < c; i++ {
		t.scratchK = append(t.scratchK, intKey(page, i))
		t.scratchC = append(t.scratchC, intChild(page, i+1))
	}
	t.scratchK = append(t.scratchK, 0)
	copy(t.scratchK[at+1:], t.scratchK[at:])
	t.scratchK[at] = sep
	t.scratchC = append(t.scratchC, InvalidPage)
	copy(t.scratchC[at+2:], t.scratchC[at+1:])
	t.scratchC[at+1] = rightID

	total := len(t.scratchK) // c+1 keys, c+2 children
	mid := total / 2
	promoted := t.scratchK[mid]

	rightNodeID, rightPage, err := t.pool.NewPage()
	if err != nil {
		return err
	}
	page, err = t.pool.Get(entry.id)
	if err != nil {
		return err
	}
	initInternal(rightPage)
	setIntChild(rightPage, 0, t.scratchC[mid+1])
	for i := mid + 1; i < total; i++ {
		setIntKey(rightPage, i-mid-1, t.scratchK[i])
		setIntChild(rightPage, i-mid, t.scratchC[i+1])
	}
	setCount(rightPage, total-mid-1)

	setIntChild(page, 0, t.scratchC[0])
	for i := 0; i < mid; i++ {
		setIntKey(page, i, t.scratchK[i])
		setIntChild(page, i+1, t.scratchC[i+1])
	}
	setCount(page, mid)
	t.pool.MarkDirty(entry.id)
	t.pool.MarkDirty(rightNodeID)

	return t.insertIntoParent(path[:len(path)-1], promoted, rightNodeID)
}

// Delete removes one occurrence of key, reporting whether one existed.
// Leaves are never merged (see type docs). O(log_B n) I/Os.
func (t *Tree) Delete(key int64) (bool, error) {
	leafID, err := t.descend(key, true, nil)
	if err != nil {
		return false, err
	}
	// The occurrence may be in a later leaf if this one only has smaller
	// keys; walk the chain as long as keys <= key exist.
	for leafID != InvalidPage {
		page, err := t.pool.Get(leafID)
		if err != nil {
			return false, err
		}
		c := count(page)
		lo, hi := 0, c
		for lo < hi {
			mid := (lo + hi) / 2
			if leafKey(page, mid) >= key {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo < c {
			if leafKey(page, lo) != key {
				return false, nil
			}
			copy(page[leafHdr+8*lo:leafHdr+8*(c-1)], page[leafHdr+8*(lo+1):leafHdr+8*c])
			setCount(page, c-1)
			t.pool.MarkDirty(leafID)
			t.n--
			return true, nil
		}
		leafID = leafNext(page)
	}
	return false, nil
}
