package em

import (
	"errors"

	"github.com/irsgo/irs/internal/xrand"
)

// ErrEmptyRange is returned when a positive number of samples is requested
// from a range with no keys.
var ErrEmptyRange = errors.New("em: query range contains no keys")

// ErrInvalidCount is returned for negative sample counts.
var ErrInvalidCount = errors.New("em: negative sample count")

// Iterator walks keys in sorted order across the leaf chain.
type Iterator struct {
	t     *Tree
	leaf  PageID
	idx   int
	key   int64
	valid bool
	err   error
}

// Seek returns an iterator positioned at the first key >= lo.
// O(log_B n) I/Os plus chain hops over empty prefix leaves.
func (t *Tree) SeekGE(lo int64) *Iterator {
	it := &Iterator{t: t}
	leafID, err := t.descend(lo, true, nil)
	if err != nil {
		it.err = err
		return it
	}
	for leafID != InvalidPage {
		page, err := t.pool.Get(leafID)
		if err != nil {
			it.err = err
			return it
		}
		c := count(page)
		a, b := 0, c
		for a < b {
			mid := (a + b) / 2
			if leafKey(page, mid) >= lo {
				b = mid
			} else {
				a = mid + 1
			}
		}
		if a < c {
			it.leaf, it.idx, it.key, it.valid = leafID, a, leafKey(page, a), true
			return it
		}
		leafID = leafNext(page)
	}
	return it
}

// Valid reports whether the iterator points at a key.
func (it *Iterator) Valid() bool { return it.valid && it.err == nil }

// Err returns the first I/O error encountered.
func (it *Iterator) Err() error { return it.err }

// Key returns the current key; only meaningful when Valid.
func (it *Iterator) Key() int64 { return it.key }

// LeafID returns the current leaf page; only meaningful when Valid.
func (it *Iterator) LeafID() PageID { return it.leaf }

// Next advances to the next key in order.
func (it *Iterator) Next() {
	if !it.Valid() {
		return
	}
	leafID := it.leaf
	idx := it.idx + 1
	for leafID != InvalidPage {
		page, err := it.t.pool.Get(leafID)
		if err != nil {
			it.err = err
			return
		}
		if idx < count(page) {
			it.leaf, it.idx, it.key, it.valid = leafID, idx, leafKey(page, idx), true
			return
		}
		leafID = leafNext(page)
		idx = 0
	}
	it.valid = false
}

// Count returns the number of keys in [lo, hi] by scanning the leaf chain:
// O(log_B n + |range|/B) I/Os. (The scan cost is inherent to this tree; the
// in-memory structures answer counts in O(log n).)
func (t *Tree) Count(lo, hi int64) (int, error) {
	if hi < lo {
		return 0, nil
	}
	n := 0
	for it := t.SeekGE(lo); it.Valid() && it.Key() <= hi; it.Next() {
		n++
	}
	return n, nil
}

// lastLeafLE locates the directory index of the leaf holding the last key
// <= hi, walking backward through the directory past empty or too-large
// leaves. Returns ok=false if no key <= hi exists.
func (t *Tree) lastLeafLE(hi int64) (int, error) {
	leafID, err := t.descend(hi, false, nil)
	if err != nil {
		return 0, err
	}
	pos := t.leafPos[leafID]
	for pos >= 0 {
		page, err := t.pool.Get(t.leaves[pos])
		if err != nil {
			return 0, err
		}
		c := count(page)
		if c > 0 && leafKey(page, 0) <= hi {
			return pos, nil
		}
		pos--
	}
	return -1, nil
}

// SampleRange draws k independent uniform samples from the keys in
// [lo, hi]. Expected I/O cost: O(log_B n) to locate the leaf run plus O(1)
// page reads per sample (each probe reads one uniformly chosen leaf of the
// run; with the buffer pool warm, repeated probes hit cache and cost no
// device I/O — the experiments report both cold and warm numbers).
func (t *Tree) SampleRange(lo, hi int64, k int, rng *xrand.RNG) ([]int64, error) {
	if k < 0 {
		return nil, ErrInvalidCount
	}
	if k == 0 {
		return nil, nil
	}
	if hi < lo {
		return nil, ErrEmptyRange
	}
	it := t.SeekGE(lo)
	if it.Err() != nil {
		return nil, it.Err()
	}
	if !it.Valid() || it.Key() > hi {
		return nil, ErrEmptyRange
	}
	li := t.leafPos[it.LeafID()]
	lj, err := t.lastLeafLE(hi)
	if err != nil {
		return nil, err
	}
	if lj < li {
		return nil, ErrEmptyRange
	}
	out := make([]int64, 0, k)
	if lj-li+1 <= 2 {
		// The range spans at most two leaves: materialize and sample.
		var keys []int64
		for pos := li; pos <= lj; pos++ {
			page, err := t.pool.Get(t.leaves[pos])
			if err != nil {
				return nil, err
			}
			c := count(page)
			for i := 0; i < c; i++ {
				if key := leafKey(page, i); key >= lo && key <= hi {
					keys = append(keys, key)
				}
			}
		}
		if len(keys) == 0 {
			return nil, ErrEmptyRange
		}
		for i := 0; i < k; i++ {
			out = append(out, keys[rng.Uint64n(uint64(len(keys)))])
		}
		return out, nil
	}
	// Rejection probing over the leaf run. Middle leaves are entirely
	// inside the range, so with bulk-load fills the acceptance rate is
	// Ω(fill); the loop is expected O(1) probes per sample.
	span := uint64(lj - li + 1)
	capU := uint64(t.leafCap)
	for len(out) < k {
		pos := li + int(rng.Uint64n(span))
		page, err := t.pool.Get(t.leaves[pos])
		if err != nil {
			return nil, err
		}
		slot := int(rng.Uint64n(capU))
		if slot >= count(page) {
			continue
		}
		key := leafKey(page, slot)
		if key < lo || key > hi {
			continue
		}
		out = append(out, key)
	}
	return out, nil
}

// ScanSample is the baseline: reservoir-sample k keys from a full scan of
// the range. O(log_B n + |range|/B) I/Os regardless of k. The samples are
// uniform but, unlike SampleRange, a single scan's outputs are drawn
// without replacement by nature of reservoir sampling — the comparison in
// E12 therefore fixes k and compares I/O counts, which is the quantity the
// model cares about.
func (t *Tree) ScanSample(lo, hi int64, k int, rng *xrand.RNG) ([]int64, error) {
	if k < 0 {
		return nil, ErrInvalidCount
	}
	if k == 0 {
		return nil, nil
	}
	reservoir := make([]int64, 0, k)
	seen := 0
	for it := t.SeekGE(lo); it.Valid() && it.Key() <= hi; it.Next() {
		seen++
		if len(reservoir) < k {
			reservoir = append(reservoir, it.Key())
			continue
		}
		if j := int(rng.Uint64n(uint64(seen))); j < k {
			reservoir[j] = it.Key()
		}
	}
	if seen == 0 {
		return nil, ErrEmptyRange
	}
	return reservoir, nil
}

// Validate checks tree structure: leaf chain order, directory consistency,
// and key count. O(n) I/Os; for tests.
func (t *Tree) Validate() error {
	total := 0
	var prev int64
	havePrev := false
	for pos, id := range t.leaves {
		if t.leafPos[id] != pos {
			return errors.New("em: leaf directory position mismatch")
		}
		page, err := t.pool.Get(id)
		if err != nil {
			return err
		}
		if pageKind(page) != pageLeaf {
			return ErrCorrupt
		}
		c := count(page)
		for i := 0; i < c; i++ {
			k := leafKey(page, i)
			if havePrev && prev > k {
				return errors.New("em: leaf keys out of order")
			}
			prev, havePrev = k, true
		}
		total += c
		next := leafNext(page)
		if pos+1 < len(t.leaves) {
			if next != t.leaves[pos+1] {
				return errors.New("em: leaf chain does not match directory")
			}
		} else if next != InvalidPage {
			return errors.New("em: last leaf has a next pointer")
		}
	}
	if total != t.n {
		return errors.New("em: key count mismatch")
	}
	return nil
}
