package em

import (
	"sort"
	"testing"

	"github.com/irsgo/irs/internal/xrand"
)

func newPool(t testing.TB, pageSize, frames int) *Pool {
	t.Helper()
	dev, err := NewDevice(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(dev, frames)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestDeviceBasics(t *testing.T) {
	dev, err := NewDevice(128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDevice(16); err != ErrPageSize {
		t.Fatalf("err = %v", err)
	}
	id := dev.Alloc()
	buf := make([]byte, 128)
	buf[0] = 42
	if err := dev.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := dev.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatal("read back wrong data")
	}
	if err := dev.Read(99, got); err == nil {
		t.Fatal("no error for bad page")
	}
	if err := dev.Read(id, make([]byte, 64)); err != ErrBufLen {
		t.Fatalf("err = %v", err)
	}
	st := dev.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Pages != 1 {
		t.Fatalf("stats %+v", st)
	}
	dev.ResetStats()
	if st := dev.Stats(); st.Reads != 0 || st.Writes != 0 {
		t.Fatalf("stats after reset %+v", st)
	}
}

func TestPoolLRUAndWriteback(t *testing.T) {
	dev, _ := NewDevice(64)
	pool, err := NewPool(dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPool(dev, 2); err != ErrPoolTooTiny {
		t.Fatalf("err = %v", err)
	}
	ids := make([]PageID, 6)
	for i := range ids {
		id, page, err := pool.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		page[0] = byte(i + 1)
		ids[i] = id
	}
	// Pages 0 and 1 must have been evicted (written back, they were dirty).
	st := pool.Stats()
	if st.Evictions != 2 || st.Resident != 4 {
		t.Fatalf("stats %+v", st)
	}
	dev.ResetStats()
	page, err := pool.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if page[0] != 1 {
		t.Fatal("dirty eviction lost data")
	}
	if r := dev.Stats().Reads; r != 1 {
		t.Fatalf("device reads = %d, want 1 (miss)", r)
	}
	dev.ResetStats()
	if _, err := pool.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	if r := dev.Stats().Reads; r != 0 {
		t.Fatalf("device reads = %d, want 0 (hit)", r)
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Drop(); err != nil {
		t.Fatal(err)
	}
	if pool.Stats().Resident != 0 {
		t.Fatal("Drop left residents")
	}
}

func seqKeys(n int) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	return keys
}

func TestBulkLoadAndIterate(t *testing.T) {
	pool := newPool(t, 256, 64)
	tree, err := BulkLoad(pool, seqKeys(10000), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 10000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if tree.Height() < 2 {
		t.Fatalf("height = %d", tree.Height())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	i := int64(0)
	for it := tree.SeekGE(0); it.Valid(); it.Next() {
		if it.Key() != i {
			t.Fatalf("iteration key %d, want %d", it.Key(), i)
		}
		i++
	}
	if i != 10000 {
		t.Fatalf("iterated %d keys", i)
	}
	if _, err := BulkLoad(pool, []int64{3, 1}, 0.8); err == nil {
		t.Fatal("unsorted bulk load accepted")
	}
}

func TestEmptyTree(t *testing.T) {
	pool := newPool(t, 128, 8)
	tree, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 0 || tree.Height() != 1 {
		t.Fatalf("Len=%d Height=%d", tree.Len(), tree.Height())
	}
	it := tree.SeekGE(0)
	if it.Valid() {
		t.Fatal("iterator valid on empty tree")
	}
	if _, err := tree.SampleRange(0, 10, 1, xrand.New(1)); err != ErrEmptyRange {
		t.Fatalf("err = %v", err)
	}
	if _, err := tree.ScanSample(0, 10, 1, xrand.New(1)); err != ErrEmptyRange {
		t.Fatalf("err = %v", err)
	}
	c, err := tree.Count(0, 10)
	if err != nil || c != 0 {
		t.Fatalf("Count = %d, %v", c, err)
	}
}

func TestInsertAgainstModel(t *testing.T) {
	pool := newPool(t, 128, 64)
	tree, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(2)
	var model []int
	for i := 0; i < 5000; i++ {
		k := r.Intn(2000)
		if err := tree.Insert(int64(k)); err != nil {
			t.Fatal(err)
		}
		pos := sort.SearchInts(model, k)
		model = append(model, 0)
		copy(model[pos+1:], model[pos:])
		model[pos] = k
		if i%500 == 0 {
			if err := tree.Validate(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if tree.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(model))
	}
	i := 0
	for it := tree.SeekGE(-1); it.Valid(); it.Next() {
		if it.Key() != int64(model[i]) {
			t.Fatalf("key %d = %d, want %d", i, it.Key(), model[i])
		}
		i++
	}
	if i != len(model) {
		t.Fatalf("iterated %d of %d", i, len(model))
	}
}

func TestDeleteLogical(t *testing.T) {
	pool := newPool(t, 128, 64)
	tree, err := BulkLoad(pool, seqKeys(2000), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := tree.Delete(500)
	if err != nil || !ok {
		t.Fatalf("Delete(500) = %v, %v", ok, err)
	}
	ok, err = tree.Delete(500)
	if err != nil || ok {
		t.Fatalf("second Delete(500) = %v, %v", ok, err)
	}
	if tree.Len() != 1999 {
		t.Fatalf("Len = %d", tree.Len())
	}
	c, err := tree.Count(499, 501)
	if err != nil || c != 2 {
		t.Fatalf("Count = %d, %v", c, err)
	}
	// Delete a whole stretch, leaving sparse leaves; queries stay correct.
	for k := int64(1000); k < 1500; k++ {
		ok, err := tree.Delete(k)
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", k, ok, err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err = tree.Count(900, 1600)
	if err != nil || c != 201 { // 900..999 and 1500..1600
		t.Fatalf("Count = %d, %v", c, err)
	}
}

func TestCountRanges(t *testing.T) {
	pool := newPool(t, 256, 64)
	tree, err := BulkLoad(pool, []int64{10, 20, 20, 20, 30, 40, 50}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		lo, hi int64
		want   int
	}{
		{0, 5, 0}, {60, 99, 0}, {25, 28, 0}, {20, 20, 3}, {10, 50, 7},
		{15, 45, 5}, {50, 10, 0},
	}
	for _, tc := range cases {
		got, err := tree.Count(tc.lo, tc.hi)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("Count(%d,%d) = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestSampleRangeUniform(t *testing.T) {
	pool := newPool(t, 256, 256)
	n := 20000
	tree, err := BulkLoad(pool, seqKeys(n), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	lo, hi := int64(2000), int64(18000)
	out, err := tree.SampleRange(lo, hi, 64000, r)
	if err != nil {
		t.Fatal(err)
	}
	buckets := make([]int, 16)
	span := hi - lo + 1
	for _, k := range out {
		if k < lo || k > hi {
			t.Fatalf("sample %d out of range", k)
		}
		buckets[(k-lo)*16/span]++
	}
	// Exact expected count per bucket.
	valuesIn := make([]int64, 16)
	for v := int64(0); v < span; v++ {
		valuesIn[v*16/span]++
	}
	chi2 := 0.0
	for b, c := range buckets {
		exp := float64(len(out)) * float64(valuesIn[b]) / float64(span)
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	if chi2 > 39.25 { // 15 df at alpha=0.001
		t.Fatalf("chi-square = %.1f", chi2)
	}
}

func TestSampleRangeTinyAndEdge(t *testing.T) {
	pool := newPool(t, 128, 64)
	tree, err := BulkLoad(pool, seqKeys(1000), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(4)
	// Range inside a single leaf.
	out, err := tree.SampleRange(500, 503, 100, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range out {
		if k < 500 || k > 503 {
			t.Fatalf("sample %d", k)
		}
	}
	// Empty interior range.
	if _, err := tree.SampleRange(2000, 3000, 1, r); err != ErrEmptyRange {
		t.Fatalf("err = %v", err)
	}
	// Inverted.
	if _, err := tree.SampleRange(10, 5, 1, r); err != ErrEmptyRange {
		t.Fatalf("err = %v", err)
	}
	// Negative count.
	if _, err := tree.SampleRange(0, 10, -1, r); err != ErrInvalidCount {
		t.Fatalf("err = %v", err)
	}
	// Zero count.
	out, err = tree.SampleRange(0, 10, 0, r)
	if err != nil || out != nil {
		t.Fatalf("k=0: %v %v", out, err)
	}
}

func TestScanSampleMembership(t *testing.T) {
	pool := newPool(t, 256, 64)
	tree, err := BulkLoad(pool, seqKeys(5000), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(5)
	out, err := tree.ScanSample(1000, 4000, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("got %d", len(out))
	}
	for _, k := range out {
		if k < 1000 || k > 4000 {
			t.Fatalf("sample %d", k)
		}
	}
	// Range smaller than k returns everything seen.
	out, err = tree.ScanSample(10, 14, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("got %d, want 5", len(out))
	}
}

// TestIOComplexityShape is the heart of the EM story: sampling I/O is flat
// in the range size, scanning I/O is linear in it.
func TestIOComplexityShape(t *testing.T) {
	pool := newPool(t, 256, 8) // tiny pool: almost every probe is cold
	n := 100000
	tree, err := BulkLoad(pool, seqKeys(n), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	dev := pool.Device()
	r := xrand.New(6)
	const k = 16

	measure := func(f func() error) int64 {
		if err := pool.Drop(); err != nil {
			t.Fatal(err)
		}
		dev.ResetStats()
		if err := f(); err != nil {
			t.Fatal(err)
		}
		return dev.Stats().Reads
	}

	narrowSample := measure(func() error {
		_, err := tree.SampleRange(1000, 2000, k, r)
		return err
	})
	wideSample := measure(func() error {
		_, err := tree.SampleRange(1000, 91000, k, r)
		return err
	})
	narrowScan := measure(func() error {
		_, err := tree.ScanSample(1000, 2000, k, r)
		return err
	})
	wideScan := measure(func() error {
		_, err := tree.ScanSample(1000, 91000, k, r)
		return err
	})

	// Sampling: I/O roughly flat as the range grows 90x.
	if wideSample > 8*narrowSample {
		t.Fatalf("sample I/O grew with range: %d -> %d", narrowSample, wideSample)
	}
	// Scanning: I/O must grow dramatically (range grew 90x).
	if wideScan < 20*narrowScan {
		t.Fatalf("scan I/O did not scale with range: %d -> %d", narrowScan, wideScan)
	}
	// On wide ranges sampling must beat scanning by a wide margin.
	if wideSample*10 > wideScan {
		t.Fatalf("sampling (%d reads) not clearly cheaper than scanning (%d reads)", wideSample, wideScan)
	}
}

func TestInsertIntoBulkLoadedTree(t *testing.T) {
	pool := newPool(t, 128, 64)
	tree, err := BulkLoad(pool, seqKeys(3000), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Dense inserts into one region force cascading splits.
	for i := 0; i < 2000; i++ {
		if err := tree.Insert(1500); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := tree.Count(1500, 1500)
	if err != nil || c != 2001 {
		t.Fatalf("Count(1500,1500) = %d, %v", c, err)
	}
	// Sampling still works and respects weights-by-multiplicity.
	r := xrand.New(7)
	out, err := tree.SampleRange(1400, 1600, 30000, r)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, k := range out {
		if k == 1500 {
			hits++
		}
	}
	frac := float64(hits) / float64(len(out))
	want := 2001.0 / 2201.0
	if frac < want-0.03 || frac > want+0.03 {
		t.Fatalf("duplicate frequency %.3f, want ~%.3f", frac, want)
	}
}

func BenchmarkSampleRange(b *testing.B) {
	pool := newPool(b, 4096, 1024)
	tree, err := BulkLoad(pool, seqKeys(1<<20), 0.8)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.SampleRange(1000, 900000, 16, r); err != nil {
			b.Fatal(err)
		}
	}
}
