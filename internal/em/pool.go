package em

import "container/list"

// Pool is an LRU buffer pool over a Device. Get returns the in-pool frame
// for a page, reading it from the device on a miss and evicting the least
// recently used frame when full (writing it back if dirty).
//
// The returned frame data is valid until the page is evicted; callers that
// traverse structures should copy what they need before triggering further
// pool operations, or size the pool above their working set (the B+-tree
// requires capacity >= height + 2).
type Pool struct {
	dev      *Device
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // front = most recently used; values are *frame
	hits     int64
	misses   int64
	evicts   int64
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
	elem  *list.Element
}

// PoolStats reports buffer pool behaviour.
type PoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Resident  int
	Capacity  int
}

// NewPool creates a pool of the given frame capacity over dev.
func NewPool(dev *Device, capacity int) (*Pool, error) {
	if capacity < 4 {
		return nil, ErrPoolTooTiny
	}
	return &Pool{
		dev:      dev,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		lru:      list.New(),
	}, nil
}

// Device returns the underlying device.
func (p *Pool) Device() *Device { return p.dev }

// Get returns the page's frame data, faulting it in if necessary.
func (p *Pool) Get(id PageID) ([]byte, error) {
	if f, ok := p.frames[id]; ok {
		p.hits++
		p.lru.MoveToFront(f.elem)
		return f.data, nil
	}
	p.misses++
	if len(p.frames) >= p.capacity {
		if err := p.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &frame{id: id, data: make([]byte, p.dev.PageSize())}
	if err := p.dev.Read(id, f.data); err != nil {
		return nil, err
	}
	f.elem = p.lru.PushFront(f)
	p.frames[id] = f
	return f.data, nil
}

// NewPage allocates a fresh zeroed page on the device and returns it as a
// resident dirty frame, without charging a device read (the contents are
// known to be zero).
func (p *Pool) NewPage() (PageID, []byte, error) {
	if len(p.frames) >= p.capacity {
		if err := p.evictOne(); err != nil {
			return InvalidPage, nil, err
		}
	}
	id := p.dev.Alloc()
	f := &frame{id: id, data: make([]byte, p.dev.PageSize()), dirty: true}
	f.elem = p.lru.PushFront(f)
	p.frames[id] = f
	return id, f.data, nil
}

// MarkDirty flags a resident page as modified so eviction writes it back.
// Pages not resident are ignored (they can only be non-resident if already
// written back).
func (p *Pool) MarkDirty(id PageID) {
	if f, ok := p.frames[id]; ok {
		f.dirty = true
	}
}

// evictOne removes the least recently used frame, writing it back if dirty.
func (p *Pool) evictOne() error {
	back := p.lru.Back()
	if back == nil {
		return nil
	}
	f := back.Value.(*frame)
	if f.dirty {
		if err := p.dev.Write(f.id, f.data); err != nil {
			return err
		}
	}
	p.lru.Remove(back)
	delete(p.frames, f.id)
	p.evicts++
	return nil
}

// Flush writes every dirty resident page back to the device.
func (p *Pool) Flush() error {
	for _, f := range p.frames {
		if f.dirty {
			if err := p.dev.Write(f.id, f.data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Drop flushes dirty pages and then empties the pool, forcing subsequent
// accesses to fault in from the device (cold-cache measurements).
func (p *Pool) Drop() error {
	if err := p.Flush(); err != nil {
		return err
	}
	p.frames = make(map[PageID]*frame, p.capacity)
	p.lru.Init()
	return nil
}

// Stats returns hit/miss/eviction counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Hits: p.hits, Misses: p.misses, Evictions: p.evicts,
		Resident: len(p.frames), Capacity: p.capacity,
	}
}

// ResetStats zeroes the counters.
func (p *Pool) ResetStats() { p.hits, p.misses, p.evicts = 0, 0, 0 }
