// Package em simulates the external-memory (I/O) model that the database
// literature — including the venue the paper appeared at — analyzes index
// structures in: data lives on a block device, an algorithm is charged one
// unit per block transferred, and an in-memory buffer pool of M/B frames
// absorbs repeated accesses.
//
// The substitution relative to real hardware (documented in DESIGN.md): the
// "disk" is an in-memory array of pages with read/write counters. The I/O
// model's cost measure is the number of block transfers, not wall time, so
// counting transfers on a simulated device reproduces exactly the quantity
// the model predicts. Experiment E12 uses this package to compare the
// B+-tree IRS query (O(log_B n + t) expected I/Os) against the
// scan-and-reservoir baseline (O(|range|/B) I/Os).
package em

import (
	"errors"
	"fmt"
)

// PageID identifies a page on the device.
type PageID uint32

// InvalidPage is the nil page reference.
const InvalidPage PageID = ^PageID(0)

// Errors returned by the device and pool.
var (
	ErrBadPage     = errors.New("em: page id out of range")
	ErrPageSize    = errors.New("em: page size must be at least 64 bytes")
	ErrBufLen      = errors.New("em: buffer length does not match page size")
	ErrPoolTooTiny = errors.New("em: buffer pool needs at least 4 frames")
)

// Device is a simulated block device: an array of fixed-size pages with
// transfer counters. It is not safe for concurrent use.
type Device struct {
	pageSize int
	pages    [][]byte
	reads    int64
	writes   int64
}

// DeviceStats reports accumulated transfers.
type DeviceStats struct {
	Reads  int64
	Writes int64
	Pages  int
}

// NewDevice creates a device with the given page size in bytes.
func NewDevice(pageSize int) (*Device, error) {
	if pageSize < 64 {
		return nil, ErrPageSize
	}
	return &Device{pageSize: pageSize}, nil
}

// PageSize returns the page size in bytes.
func (d *Device) PageSize() int { return d.pageSize }

// Alloc appends a zeroed page and returns its id.
func (d *Device) Alloc() PageID {
	d.pages = append(d.pages, make([]byte, d.pageSize))
	return PageID(len(d.pages) - 1)
}

// Read copies page id into buf (which must be exactly one page long) and
// charges one read transfer.
func (d *Device) Read(id PageID, buf []byte) error {
	if int(id) >= len(d.pages) {
		return fmt.Errorf("%w: read %d of %d", ErrBadPage, id, len(d.pages))
	}
	if len(buf) != d.pageSize {
		return ErrBufLen
	}
	copy(buf, d.pages[id])
	d.reads++
	return nil
}

// Write copies buf over page id and charges one write transfer.
func (d *Device) Write(id PageID, buf []byte) error {
	if int(id) >= len(d.pages) {
		return fmt.Errorf("%w: write %d of %d", ErrBadPage, id, len(d.pages))
	}
	if len(buf) != d.pageSize {
		return ErrBufLen
	}
	copy(d.pages[id], buf)
	d.writes++
	return nil
}

// Stats returns the transfer counters.
func (d *Device) Stats() DeviceStats {
	return DeviceStats{Reads: d.reads, Writes: d.writes, Pages: len(d.pages)}
}

// ResetStats zeroes the transfer counters (page contents are untouched).
func (d *Device) ResetStats() { d.reads, d.writes = 0, 0 }
