// Package persist is the durability layer under irsd: a binary write-ahead
// log of dataset mutations plus point-in-time snapshots, managed per
// dataset by a Store. The serving core (internal/server) appends to the WAL
// inside the same coalesced flushes that mutate the in-memory structures,
// so durability amortizes across concurrent clients exactly like sampling
// does; recovery loads the newest snapshot and replays the WAL tail.
//
// # On-disk layout
//
// A Store owns one directory per dataset:
//
//	wal-<seq>.log    WAL segments, in ascending sequence order
//	snap-<seq>.snap  snapshots; snap-S covers every record in segments <= S
//	*.tmp            in-flight snapshot writes, discarded at open
//
// The recovery invariant: snapshot S holds the dataset state after every
// record in segments with sequence <= S and none from later segments, so
// recovery = load the newest readable snapshot, then replay segments > S in
// order. A snapshot commit purges the segments it covers (the compaction
// step), bounding log growth.
//
// # WAL record format
//
// Each record is one CRC-framed mutation batch:
//
//	u32  payload length (little-endian)
//	u32  CRC-32 (IEEE) of the payload
//	payload: u8 op | u32 count | count entries
//
// Insert and update entries are key bytes followed by a float64 weight;
// delete entries are key bytes only. Keys are encoded by the Store's
// KeyCodec (Float64Keys for the serving layer). A frame that fails the
// length, CRC, or payload checks marks the end of the readable prefix:
// replay of the final segment truncates there (a torn tail from a crash
// mid-append), while a bad frame in a non-final segment is corruption and
// fails recovery.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Op identifies one WAL record type.
type Op uint8

const (
	// OpInsert stores its entries (duplicate keys allowed).
	OpInsert Op = 1
	// OpDelete removes one occurrence of each entry's key (weights unused).
	OpDelete Op = 2
	// OpUpdate sets the weight of one occurrence of each entry's key.
	OpUpdate Op = 3
)

func (o Op) valid() bool { return o == OpInsert || o == OpDelete || o == OpUpdate }

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Entry is one key (with, for insert and update records, its weight).
type Entry[K any] struct {
	Key    K
	Weight float64
}

// Record is one decoded WAL record: a batch of entries under one op.
type Record[K any] struct {
	Op      Op
	Entries []Entry[K]
}

// KeyCodec serializes keys of one type. Append writes a key's encoding to
// dst; Read decodes one key from the front of b and returns the rest.
// Encodings must be self-delimiting (fixed width, or length-prefixed).
type KeyCodec[K any] struct {
	Append func(dst []byte, key K) []byte
	Read   func(b []byte) (key K, rest []byte, err error)
}

// Float64Keys encodes float64 keys as 8 little-endian IEEE-754 bytes — the
// codec of the float64-keyed serving layer.
func Float64Keys() KeyCodec[float64] {
	return KeyCodec[float64]{
		Append: func(dst []byte, key float64) []byte {
			return binary.LittleEndian.AppendUint64(dst, math.Float64bits(key))
		},
		Read: func(b []byte) (float64, []byte, error) {
			if len(b) < 8 {
				return 0, nil, errShortKey
			}
			return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
		},
	}
}

// maxFrame bounds a single record's payload; a length prefix beyond it is
// treated as corruption rather than an allocation request.
const maxFrame = 1 << 27 // 128 MiB

// frameHeader is the fixed frame prefix: payload length + payload CRC.
const frameHeader = 8

var (
	// ErrCorrupt reports a WAL frame or snapshot that fails its structural
	// checks (bad length, CRC mismatch, undecodable payload).
	ErrCorrupt  = errors.New("persist: corrupt data")
	errShortKey = fmt.Errorf("%w: truncated key", ErrCorrupt)
)

// appendRecord encodes rec as one CRC-framed record appended to dst.
func appendRecord[K any](dst []byte, codec KeyCodec[K], rec Record[K]) ([]byte, error) {
	if !rec.Op.valid() {
		return dst, fmt.Errorf("persist: cannot encode %v record", rec.Op)
	}
	// Reserve the header, build the payload in place, then patch the header.
	start := len(dst)
	dst = append(dst, make([]byte, frameHeader)...)
	dst = append(dst, byte(rec.Op))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec.Entries)))
	for _, e := range rec.Entries {
		dst = codec.Append(dst, e.Key)
		if rec.Op != OpDelete {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Weight))
		}
	}
	payload := dst[start+frameHeader:]
	if len(payload) > maxFrame {
		return dst[:start], fmt.Errorf("persist: record payload %d bytes exceeds frame limit", len(payload))
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst, nil
}

// decodeRecord decodes one frame payload (the bytes after the header).
// It never panics on malformed input; every structural violation returns
// an error wrapping ErrCorrupt (FuzzWALDecode enforces this).
func decodeRecord[K any](codec KeyCodec[K], payload []byte) (Record[K], error) {
	return decodeRecordInto(codec, payload, nil)
}

// decodeRecordInto is decodeRecord appending into entries — the recovery
// hot path's spelling, so replaying a long WAL tail reuses one entries
// backing across every record instead of allocating per record. The
// returned Record's Entries aliases (the possibly-grown) entries.
func decodeRecordInto[K any](codec KeyCodec[K], payload []byte, entries []Entry[K]) (Record[K], error) {
	var rec Record[K]
	if len(payload) < 5 {
		return rec, fmt.Errorf("%w: payload too short", ErrCorrupt)
	}
	rec.Op = Op(payload[0])
	if !rec.Op.valid() {
		return rec, fmt.Errorf("%w: unknown op %d", ErrCorrupt, payload[0])
	}
	count := binary.LittleEndian.Uint32(payload[1:5])
	rest := payload[5:]
	// Every entry consumes at least one byte, so a count beyond the
	// remaining bytes is structurally impossible — reject before allocating.
	if int64(count) > int64(len(rest)) {
		return rec, fmt.Errorf("%w: entry count %d exceeds payload", ErrCorrupt, count)
	}
	if cap(entries) < int(count) {
		entries = make([]Entry[K], 0, count)
	}
	rec.Entries = entries
	for i := uint32(0); i < count; i++ {
		var e Entry[K]
		var err error
		e.Key, rest, err = codec.Read(rest)
		if err != nil {
			return rec, fmt.Errorf("%w: entry %d: %v", ErrCorrupt, i, err)
		}
		if rec.Op != OpDelete {
			if len(rest) < 8 {
				return rec, fmt.Errorf("%w: entry %d: truncated weight", ErrCorrupt, i)
			}
			e.Weight = math.Float64frombits(binary.LittleEndian.Uint64(rest))
			rest = rest[8:]
		}
		rec.Entries = append(rec.Entries, e)
	}
	if len(rest) != 0 {
		return rec, fmt.Errorf("%w: %d trailing bytes after %d entries", ErrCorrupt, len(rest), count)
	}
	return rec, nil
}
