package persist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTestStore(t *testing.T, dir string, kind uint8) (*Store[float64], *Recovery[float64]) {
	t.Helper()
	st, rec, err := Open(dir, Float64Keys(), Options{Kind: kind, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return st, rec
}

// reopen simulates a crash: the old store is abandoned (never closed) and
// the directory recovered fresh.
func reopen(t *testing.T, dir string, kind uint8) (*Store[float64], *Recovery[float64]) {
	t.Helper()
	return openTestStore(t, dir, kind)
}

func TestStoreEmptyDirRecoversEmpty(t *testing.T) {
	st, rec := openTestStore(t, t.TempDir(), KindUnweighted)
	defer st.Close()
	if len(rec.Entries) != 0 || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	if rec.Stats.SnapshotSeq != 0 || rec.Stats.TornTail {
		t.Fatalf("fresh dir stats: %+v", rec.Stats)
	}
}

func TestStoreWALTailRecovery(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, KindWeighted)
	if err := st.LogInsert(mkEntries([]float64{1, 2, 3}, []float64{1, 1, 2})); err != nil {
		t.Fatal(err)
	}
	if err := st.LogDelete([]float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := st.LogUpdate(mkEntries([]float64{3}, []float64{9})); err != nil {
		t.Fatal(err)
	}
	// Crash: never closed.
	st2, rec := reopen(t, dir, KindWeighted)
	defer st2.Close()
	if len(rec.Entries) != 0 {
		t.Fatalf("no snapshot was taken, yet recovered %d snapshot entries", len(rec.Entries))
	}
	ops := make([]Op, 0, 3)
	for _, r := range rec.Records {
		ops = append(ops, r.Op)
	}
	want := []Op{OpInsert, OpDelete, OpUpdate}
	if len(ops) != len(want) {
		t.Fatalf("replayed ops %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("replayed ops %v, want %v", ops, want)
		}
	}
	if rec.Records[0].Entries[2].Weight != 2 || rec.Records[2].Entries[0].Weight != 9 {
		t.Fatalf("weights lost in replay: %+v", rec.Records)
	}
	if rec.Stats.TornTail {
		t.Fatal("clean log reported a torn tail")
	}
}

// TestStoreReplayDeterminism recovers the same directory twice and demands
// bit-identical record streams.
func TestStoreReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, KindUnweighted)
	for i := 0; i < 50; i++ {
		if err := st.LogInsert(mkEntries([]float64{float64(i), float64(i) / 3}, []float64{1, 1})); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := st.LogDelete([]float64{float64(i - 1)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	st2, rec1 := reopen(t, dir, KindUnweighted)
	st2.Close()
	st3, rec2 := reopen(t, dir, KindUnweighted)
	st3.Close()
	if len(rec1.Records) != len(rec2.Records) {
		t.Fatalf("replay lengths differ: %d vs %d", len(rec1.Records), len(rec2.Records))
	}
	for i := range rec1.Records {
		a, b := rec1.Records[i], rec2.Records[i]
		if a.Op != b.Op || len(a.Entries) != len(b.Entries) {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Entries {
			if a.Entries[j] != b.Entries[j] {
				t.Fatalf("record %d entry %d differs", i, j)
			}
		}
	}
}

func TestStoreSnapshotAndCompaction(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, KindUnweighted)
	if err := st.LogInsert(mkEntries([]float64{1, 2}, []float64{1, 1})); err != nil {
		t.Fatal(err)
	}
	seq, commit, err := st.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("first snapshot covers segment %d, want 1", seq)
	}
	// State as of the rotation: keys 1 and 2.
	if err := commit(mkEntries([]float64{1, 2}, []float64{1, 1})); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot tail.
	if err := st.LogInsert(mkEntries([]float64{3}, []float64{1})); err != nil {
		t.Fatal(err)
	}

	// The covered segment must be gone (compaction).
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); !os.IsNotExist(err) {
		t.Fatalf("segment 1 not purged after snapshot: %v", err)
	}
	stats := st.Stats()
	if stats.Snapshots != 1 || stats.LastSnapshotSeq != 1 || stats.ActiveSegment != 2 {
		t.Fatalf("stats after snapshot: %+v", stats)
	}

	st2, rec := reopen(t, dir, KindUnweighted)
	defer st2.Close()
	if got := keysOf(rec.Entries); !sameKeys(got, []float64{1, 2}) {
		t.Fatalf("snapshot entries %v, want [1 2]", got)
	}
	if len(rec.Records) != 1 || rec.Records[0].Op != OpInsert || rec.Records[0].Entries[0].Key != 3 {
		t.Fatalf("tail records %+v, want the single post-snapshot insert", rec.Records)
	}
	if rec.Stats.SnapshotSeq != 1 || rec.Stats.SnapshotEntries != 2 {
		t.Fatalf("recovery stats %+v", rec.Stats)
	}
	// Second snapshot replaces the first snapshot file.
	seq2, commit2, err := st2.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := commit2(mkEntries([]float64{1, 2, 3}, []float64{1, 1, 1})); err != nil {
		t.Fatal(err)
	}
	if seq2 != 2 {
		t.Fatalf("second snapshot covers %d, want 2", seq2)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName(1))); !os.IsNotExist(err) {
		t.Fatal("old snapshot not purged")
	}
}

// TestStoreTornTail truncates the final record at every byte boundary and
// demands: no panic, no error, exactly the untruncated prefix records, and
// TornTail reported whenever bytes were dropped mid-frame.
func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, KindUnweighted)
	for i := 0; i < 3; i++ {
		if err := st.LogInsert(mkEntries([]float64{float64(i)}, []float64{1})); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	seg := filepath.Join(dir, segmentName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(full) / 3
	if len(full)%3 != 0 {
		t.Fatalf("unexpected segment layout: %d bytes for 3 equal records", len(full))
	}

	for cut := len(full) - 1; cut > len(full)-frameLen; cut-- {
		scratch := t.TempDir()
		if err := os.WriteFile(filepath.Join(scratch, segmentName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st2, rec := openTestStore(t, scratch, KindUnweighted)
		if len(rec.Records) != 2 {
			t.Fatalf("cut=%d: recovered %d records, want 2", cut, len(rec.Records))
		}
		if !rec.Stats.TornTail {
			t.Fatalf("cut=%d: torn tail not reported", cut)
		}
		// The torn bytes must be truncated away: appending must produce a
		// log that replays cleanly.
		if err := st2.LogInsert(mkEntries([]float64{99}, []float64{1})); err != nil {
			t.Fatal(err)
		}
		st3, rec3 := reopen(t, scratch, KindUnweighted)
		st3.Close()
		if len(rec3.Records) != 3 || rec3.Stats.TornTail {
			t.Fatalf("cut=%d: after append-over-torn-tail recovered %d records (torn=%v), want 3 clean",
				cut, len(rec3.Records), rec3.Stats.TornTail)
		}
		if rec3.Records[2].Entries[0].Key != 99 {
			t.Fatalf("cut=%d: appended record lost", cut)
		}
	}
}

// TestStoreCorruptMiddleFrame flips a byte in the middle of a record that
// has successors: replay must stop there and report a torn tail (single
// segment), and recovery must never invent records past the corruption.
func TestStoreCorruptMiddleFrame(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, KindUnweighted)
	for i := 0; i < 4; i++ {
		if err := st.LogInsert(mkEntries([]float64{float64(i)}, []float64{1})); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	seg := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, rec := openTestStore(t, dir, KindUnweighted)
	defer st2.Close()
	if len(rec.Records) >= 4 {
		t.Fatalf("recovered %d records across a corrupt frame", len(rec.Records))
	}
	if !rec.Stats.TornTail {
		t.Fatal("corruption not reported")
	}
}

func TestStoreKindMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, KindWeighted)
	seq, commit, err := st.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	_ = seq
	if err := commit(mkEntries([]float64{1}, []float64{2})); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, _, err := Open(dir, Float64Keys(), Options{Kind: KindUnweighted}); err == nil ||
		!strings.Contains(err.Error(), "weighted") {
		t.Fatalf("kind mismatch not rejected: %v", err)
	}
}

// TestStoreKindMismatchRejectedWALOnly: the kind pin must hold even before
// any snapshot exists (the marker file, not the snapshot header, carries
// it for WAL-only directories).
func TestStoreKindMismatchRejectedWALOnly(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, KindUnweighted)
	if err := st.LogInsert(mkEntries([]float64{1}, []float64{1})); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, _, err := Open(dir, Float64Keys(), Options{Kind: KindWeighted}); err == nil ||
		!strings.Contains(err.Error(), "unweighted") {
		t.Fatalf("WAL-only kind mismatch not rejected: %v", err)
	}
	// Same kind still opens.
	st2, rec := openTestStore(t, dir, KindUnweighted)
	defer st2.Close()
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records, want 1", len(rec.Records))
	}
}

func TestStoreClosedErrors(t *testing.T) {
	st, _ := openTestStore(t, t.TempDir(), KindUnweighted)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := st.LogInsert(mkEntries([]float64{1}, []float64{1})); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed store: %v", err)
	}
	if _, _, err := st.BeginSnapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("snapshot on closed store: %v", err)
	}
	if err := st.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync on closed store: %v", err)
	}
}

// TestStoreInterruptedSnapshotTmpIgnored plants a stale .tmp file; Open
// must discard it and recover from the durable state.
func TestStoreInterruptedSnapshotTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, KindUnweighted)
	if err := st.LogInsert(mkEntries([]float64{5}, []float64{1})); err != nil {
		t.Fatal(err)
	}
	st.Close()
	tmp := filepath.Join(dir, snapshotName(9)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, rec := openTestStore(t, dir, KindUnweighted)
	defer st2.Close()
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records, want 1", len(rec.Records))
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale .tmp not removed")
	}
}

func keysOf(entries []Entry[float64]) []float64 {
	out := make([]float64, len(entries))
	for i, e := range entries {
		out[i] = e.Key
	}
	return out
}

func sameKeys(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
