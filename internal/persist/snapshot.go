package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"syscall"
)

// Dataset kinds recorded in snapshot headers, so a weighted dataset can
// never silently load an unweighted dataset's state (or vice versa).
const (
	KindUnweighted = uint8(1)
	KindWeighted   = uint8(2)
)

// snapshotMagic opens every snapshot file.
const snapshotMagic = "irssnap1"

// Snapshot file format (all integers little-endian):
//
//	8 bytes magic "irssnap1"
//	u8  kind (KindUnweighted or KindWeighted)
//	u64 covered WAL sequence (records in segments <= seq are included)
//	u64 entry count
//	entries: key bytes (KeyCodec) + f64 weight each, in key order
//	u32 CRC-32 (IEEE) of everything after the magic
//
// Snapshots are written to a *.tmp sibling, fsynced, then renamed into
// place, so a readable snapshot file is always complete; the trailing CRC
// guards against later bit rot.

// writeSnapshotFile writes entries atomically to path.
func writeSnapshotFile[K any](path string, codec KeyCodec[K], kind uint8, seq uint64, entries []Entry[K]) (err error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	sum := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(f, sum), 1<<16)
	// The magic stays outside the checksum so the CRC covers exactly the
	// variable content; corruption of the magic already fails the open.
	if _, err = f.WriteString(snapshotMagic); err != nil {
		return err
	}
	var head [17]byte
	head[0] = kind
	binary.LittleEndian.PutUint64(head[1:], seq)
	binary.LittleEndian.PutUint64(head[9:], uint64(len(entries)))
	if _, err = bw.Write(head[:]); err != nil {
		return err
	}
	scratch := make([]byte, 0, 64)
	for _, e := range entries {
		scratch = codec.Append(scratch[:0], e.Key)
		scratch = binary.LittleEndian.AppendUint64(scratch, math.Float64bits(e.Weight))
		if _, err = bw.Write(scratch); err != nil {
			return err
		}
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum.Sum32())
	if _, err = f.Write(tail[:]); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// readSnapshotFile loads and verifies a snapshot file, materializing its
// entries.
func readSnapshotFile[K any](path string, codec KeyCodec[K], wantKind uint8) (seq uint64, entries []Entry[K], err error) {
	seq, _, err = readSnapshotStream(path, codec, wantKind,
		func(count int) error {
			entries = make([]Entry[K], 0, count)
			return nil
		},
		func(e Entry[K]) error {
			entries = append(entries, e)
			return nil
		})
	if err != nil {
		return 0, nil, err
	}
	return seq, entries, nil
}

// readSnapshotStream verifies a snapshot file (structure and CRC, before
// anything reaches the callbacks) and streams its entries through entry in
// key order; start, if non-nil, first announces the entry count so the
// receiver can pre-size. Either callback may be nil. Callback errors abort
// the read unchanged.
func readSnapshotStream[K any](path string, codec KeyCodec[K], wantKind uint8, start func(count int) error, entry func(Entry[K]) error) (seq uint64, count int, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(raw) < len(snapshotMagic)+17+4 || string(raw[:len(snapshotMagic)]) != snapshotMagic {
		return 0, 0, fmt.Errorf("%w: %s: not a snapshot", ErrCorrupt, filepath.Base(path))
	}
	body, tail := raw[len(snapshotMagic):len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return 0, 0, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, filepath.Base(path))
	}
	kind := body[0]
	if kind != wantKind {
		return 0, 0, fmt.Errorf("persist: %s holds a %s dataset, store opened as %s",
			filepath.Base(path), kindName(kind), kindName(wantKind))
	}
	seq = binary.LittleEndian.Uint64(body[1:])
	n := binary.LittleEndian.Uint64(body[9:])
	rest := body[17:]
	if n > uint64(len(rest)) {
		return 0, 0, fmt.Errorf("%w: %s: entry count exceeds file", ErrCorrupt, filepath.Base(path))
	}
	if start != nil {
		if err := start(int(n)); err != nil {
			return 0, 0, err
		}
	}
	for i := uint64(0); i < n; i++ {
		var e Entry[K]
		e.Key, rest, err = codec.Read(rest)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: %s: entry %d: %v", ErrCorrupt, filepath.Base(path), i, err)
		}
		if len(rest) < 8 {
			return 0, 0, fmt.Errorf("%w: %s: entry %d: truncated weight", ErrCorrupt, filepath.Base(path), i)
		}
		e.Weight = math.Float64frombits(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
		if entry != nil {
			if err := entry(e); err != nil {
				return 0, 0, err
			}
		}
	}
	if len(rest) != 0 {
		return 0, 0, fmt.Errorf("%w: %s: trailing bytes", ErrCorrupt, filepath.Base(path))
	}
	return seq, int(n), nil
}

func kindName(kind uint8) string {
	switch kind {
	case KindUnweighted:
		return "unweighted"
	case KindWeighted:
		return "weighted"
	default:
		return fmt.Sprintf("kind(%d)", kind)
	}
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
// Platforms that cannot fsync a directory report EINVAL or ENOTSUP; those
// are tolerated. Any other failure is a real durability error and is
// returned.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
