package persist

import (
	"cmp"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed reports an operation on a closed Store.
var ErrClosed = errors.New("persist: store closed")

// Options configures a Store.
type Options struct {
	// Kind is the dataset kind recorded in snapshots (KindUnweighted or
	// KindWeighted); opening a directory whose snapshots hold the other
	// kind fails rather than mixing states.
	Kind uint8
	// Sync is the WAL fsync policy. Default (zero value): SyncAlways.
	Sync SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval;
	// <= 0 means 100ms.
	SyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.Kind == 0 {
		o.Kind = KindUnweighted
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	return o
}

// RecoveryStats describes what Open reconstructed, for logging and /stats.
type RecoveryStats struct {
	SnapshotSeq     uint64 `json:"snapshot_seq"`     // 0: no snapshot found
	SnapshotEntries int    `json:"snapshot_entries"` // entries loaded from it
	SegmentsScanned int    `json:"segments_scanned"` // WAL segments replayed
	RecordsReplayed int    `json:"records_replayed"` // records in the tail
	TornTail        bool   `json:"torn_tail"`        // truncated a partial final record
}

// Recovery is the reconstructed logical state of a dataset directory:
// the snapshot's entries (key-sorted, as exported) followed by the WAL
// tail records to replay on top, in append order.
type Recovery[K cmp.Ordered] struct {
	Entries []Entry[K]
	Records []Record[K]
	Stats   RecoveryStats
}

// StoreStats is a point-in-time snapshot of a Store's counters.
type StoreStats struct {
	Records         uint64 `json:"records"`           // WAL records appended
	Entries         uint64 `json:"entries"`           // entries across those records
	Bytes           uint64 `json:"bytes"`             // WAL bytes appended
	Syncs           uint64 `json:"syncs"`             // explicit fsync calls
	Snapshots       uint64 `json:"snapshots"`         // snapshots committed
	LastSnapshotSeq uint64 `json:"last_snapshot_seq"` // sequence of the newest
	ActiveSegment   uint64 `json:"active_segment"`    // sequence being appended
	WALSize         int64  `json:"wal_size"`          // bytes in the active segment
}

// Store manages one dataset's durability directory: it appends mutation
// records to the active WAL segment and rotates it under snapshots.
//
// Log appends, Sync, and the snapshot protocol are individually
// thread-safe, but exactness of recovery additionally requires that the
// caller orders WAL appends like the in-memory applies they mirror, and
// that no append runs between BeginSnapshot and the state export it
// covers; the serving layer holds its per-dataset log mutex across
// (append, apply) and across (BeginSnapshot, export) for exactly this.
type Store[K cmp.Ordered] struct {
	dir   string
	codec KeyCodec[K]
	opts  Options

	mu     sync.Mutex
	wal    *walWriter
	active uint64 // sequence of the open segment
	closed bool
	stopBg chan struct{}
	bgDone chan struct{}

	records   atomic.Uint64
	entries   atomic.Uint64
	bytes     atomic.Uint64
	syncs     atomic.Uint64
	snapshots atomic.Uint64
	lastSnap  atomic.Uint64
}

// Open recovers the dataset directory (creating it if absent) and returns
// the store with its active WAL segment open for appending, plus the
// recovered logical state. A torn final record — the footprint of a crash
// mid-append — is truncated and reported in Stats.TornTail; a bad frame
// anywhere else, or an unreadable newest snapshot, is corruption and fails
// Open.
func Open[K cmp.Ordered](dir string, codec KeyCodec[K], opts Options) (*Store[K], *Recovery[K], error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	// The kind marker pins the directory to one dataset kind from its very
	// first open, so a WAL-only directory (no snapshot yet — snapshots
	// carry their own kind byte) can never silently replay into a dataset
	// of the other kind.
	if err := checkKindMarker(dir, opts.Kind); err != nil {
		return nil, nil, err
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var segs, snaps []uint64
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// An interrupted snapshot write; never renamed, so never valid.
			_ = os.Remove(filepath.Join(dir, name))
		default:
			if seq, ok := parseSeq(name, "wal-", ".log"); ok {
				segs = append(segs, seq)
			} else if seq, ok := parseSeq(name, "snap-", ".snap"); ok {
				snaps = append(snaps, seq)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	rec := &Recovery[K]{}
	// Newest snapshot is the base state. Renames make snapshots all-or-
	// nothing, so an unreadable one means real corruption: fail loudly
	// rather than silently recovering an older state whose covering
	// segments were already compacted away.
	var covered uint64
	if len(snaps) > 0 {
		seq := snaps[len(snaps)-1]
		snapSeq, entries, err := readSnapshotFile(filepath.Join(dir, snapshotName(seq)), codec, opts.Kind)
		if err != nil {
			return nil, nil, err
		}
		if snapSeq != seq {
			return nil, nil, fmt.Errorf("%w: %s claims sequence %d", ErrCorrupt, snapshotName(seq), snapSeq)
		}
		covered = seq
		rec.Entries = entries
		rec.Stats.SnapshotSeq = seq
		rec.Stats.SnapshotEntries = len(entries)
	}

	// Replay segments newer than the snapshot, oldest first. Only the final
	// segment may have a torn tail (the crash point); badness in any other
	// segment would silently drop records that later segments build on.
	var tail []uint64
	for _, seq := range segs {
		if seq > covered {
			tail = append(tail, seq)
		}
	}
	active := covered + 1
	var activeValidLen int64
	for i, seq := range tail {
		validLen, n, torn, err := replaySegment(filepath.Join(dir, segmentName(seq)), codec, func(r Record[K]) error {
			rec.Records = append(rec.Records, r)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		if torn && i != len(tail)-1 {
			return nil, nil, fmt.Errorf("%w: %s: bad frame before the final segment", ErrCorrupt, segmentName(seq))
		}
		rec.Stats.SegmentsScanned++
		rec.Stats.RecordsReplayed += n
		rec.Stats.TornTail = rec.Stats.TornTail || torn
		active, activeValidLen = seq, validLen
	}

	st := &Store[K]{dir: dir, codec: codec, opts: opts, active: active}
	st.lastSnap.Store(covered)
	st.wal, err = openSegment(dir, active, activeValidLen)
	if err != nil {
		return nil, nil, err
	}
	// Compaction leftovers: segments and snapshots the newest snapshot
	// obsoletes (a crash between snapshot rename and purge leaves them).
	for _, seq := range segs {
		if seq <= covered && seq != active {
			_ = os.Remove(filepath.Join(dir, segmentName(seq)))
		}
	}
	for _, seq := range snaps[:max(len(snaps)-1, 0)] {
		_ = os.Remove(filepath.Join(dir, snapshotName(seq)))
	}
	if opts.Sync == SyncInterval {
		st.stopBg = make(chan struct{})
		st.bgDone = make(chan struct{})
		go st.syncLoop()
	}
	return st, rec, nil
}

// checkKindMarker verifies (writing it on first open) the directory's
// "kind" file against want.
func checkKindMarker(dir string, want uint8) error {
	path := filepath.Join(dir, "kind")
	raw, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		if err := os.WriteFile(path, []byte(kindName(want)+"\n"), 0o644); err != nil {
			return err
		}
		return syncDir(dir)
	case err != nil:
		return err
	}
	got := strings.TrimSpace(string(raw))
	if got != kindName(want) {
		return fmt.Errorf("persist: %s holds a %s dataset, store opened as %s", dir, got, kindName(want))
	}
	return nil
}

// syncLoop is the SyncInterval background fsync ticker.
func (s *Store[K]) syncLoop() {
	defer close(s.bgDone)
	t := time.NewTicker(s.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = s.Sync()
		case <-s.stopBg:
			return
		}
	}
}

// append encodes and writes one record under the store lock, syncing per
// policy. On any write error the record may be partially on disk — exactly
// the torn tail replay tolerates.
func (s *Store[K]) append(rec Record[K]) error {
	frame, err := appendRecord(nil, s.codec, rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.wal.append(frame); err != nil {
		return err
	}
	if s.opts.Sync == SyncAlways {
		if err := s.wal.sync(); err != nil {
			return err
		}
		s.syncs.Add(1)
	}
	s.records.Add(1)
	s.entries.Add(uint64(len(rec.Entries)))
	s.bytes.Add(uint64(len(frame)))
	return nil
}

// LogInsert appends one insert record covering entries.
func (s *Store[K]) LogInsert(entries []Entry[K]) error {
	return s.append(Record[K]{Op: OpInsert, Entries: entries})
}

// LogDelete appends one delete record covering keys.
func (s *Store[K]) LogDelete(keys []K) error {
	entries := make([]Entry[K], len(keys))
	for i, k := range keys {
		entries[i].Key = k
	}
	return s.append(Record[K]{Op: OpDelete, Entries: entries})
}

// LogUpdate appends one update-weight record covering entries.
func (s *Store[K]) LogUpdate(entries []Entry[K]) error {
	return s.append(Record[K]{Op: OpUpdate, Entries: entries})
}

// Sync flushes and fsyncs the active segment.
func (s *Store[K]) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.wal.dirty {
		return nil
	}
	if err := s.wal.sync(); err != nil {
		return err
	}
	s.syncs.Add(1)
	return nil
}

// BeginSnapshot starts the snapshot protocol: it syncs and closes the
// active segment (sequence S), opens segment S+1 for subsequent appends,
// and returns a commit function. The caller must export the dataset state
// before any further append (the serving layer does both under its log
// mutex) and then invoke commit with that export — commit writes snap-S
// atomically and purges the segments and snapshots it obsoletes. commit
// runs outside any lock; until it succeeds, recovery simply uses the
// previous snapshot plus the still-present segments. Snapshot protocols
// must not overlap: the caller serializes BeginSnapshot..commit pairs
// (the serving layer's per-dataset snapshot mutex).
func (s *Store[K]) BeginSnapshot() (seq uint64, commit func(entries []Entry[K]) error, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, nil, ErrClosed
	}
	covered := s.active
	if err := s.wal.close(); err != nil {
		return 0, nil, err
	}
	s.syncs.Add(1)
	next, err := openSegment(s.dir, covered+1, 0)
	if err != nil {
		// Reopen the old segment for appending; the store must stay usable.
		reopened, rerr := openSegment(s.dir, covered, s.wal.size)
		if rerr != nil {
			return 0, nil, errors.Join(err, rerr)
		}
		s.wal = reopened
		return 0, nil, err
	}
	s.wal = next
	s.active = covered + 1

	commit = func(entries []Entry[K]) error {
		path := filepath.Join(s.dir, snapshotName(covered))
		if err := writeSnapshotFile(path, s.codec, s.opts.Kind, covered, entries); err != nil {
			return err
		}
		prev := s.lastSnap.Swap(covered)
		s.snapshots.Add(1)
		for seq := prev; seq <= covered; seq++ {
			_ = os.Remove(filepath.Join(s.dir, segmentName(seq)))
		}
		if prev > 0 && prev != covered {
			_ = os.Remove(filepath.Join(s.dir, snapshotName(prev)))
		}
		return nil
	}
	return covered, commit, nil
}

// Stats returns the store's counters.
func (s *Store[K]) Stats() StoreStats {
	s.mu.Lock()
	var size int64
	var active uint64
	if !s.closed {
		size = s.wal.size
		active = s.active
	}
	s.mu.Unlock()
	return StoreStats{
		Records:         s.records.Load(),
		Entries:         s.entries.Load(),
		Bytes:           s.bytes.Load(),
		Syncs:           s.syncs.Load(),
		Snapshots:       s.snapshots.Load(),
		LastSnapshotSeq: s.lastSnap.Load(),
		ActiveSegment:   active,
		WALSize:         size,
	}
}

// Dir returns the store's directory.
func (s *Store[K]) Dir() string { return s.dir }

// Close syncs and closes the active segment. Further operations fail with
// ErrClosed. Safe to call more than once.
func (s *Store[K]) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.wal.close()
	s.mu.Unlock()
	if s.stopBg != nil {
		close(s.stopBg)
		<-s.bgDone
	}
	return err
}
