package persist

import (
	"cmp"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/irsgo/irs/internal/metrics"
)

// ErrClosed reports an operation on a closed Store.
var ErrClosed = errors.New("persist: store closed")

// Options configures a Store.
type Options struct {
	// Kind is the dataset kind recorded in snapshots (KindUnweighted or
	// KindWeighted); opening a directory whose snapshots hold the other
	// kind fails rather than mixing states.
	Kind uint8
	// Sync is the WAL fsync policy. Default (zero value): SyncAlways.
	Sync SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval;
	// <= 0 means 100ms.
	SyncInterval time.Duration
	// OpenFile opens (creating if needed) a WAL segment file for
	// read/write appending. Nil means os.OpenFile. Tests inject files
	// whose Sync blocks or fails to exercise the group-commit ACK
	// contract and the sticky-failure path.
	OpenFile func(path string) (File, error)
}

func (o Options) withDefaults() Options {
	if o.Kind == 0 {
		o.Kind = KindUnweighted
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.OpenFile == nil {
		o.OpenFile = defaultOpenFile
	}
	return o
}

// RecoveryStats describes what Open reconstructed, for logging and /stats.
type RecoveryStats struct {
	SnapshotSeq     uint64 `json:"snapshot_seq"`     // 0: no snapshot found
	SnapshotEntries int    `json:"snapshot_entries"` // entries loaded from it
	SegmentsScanned int    `json:"segments_scanned"` // WAL segments replayed
	RecordsReplayed int    `json:"records_replayed"` // records in the tail
	TornTail        bool   `json:"torn_tail"`        // truncated a partial final record
}

// Recovery is the reconstructed logical state of a dataset directory:
// the snapshot's entries (key-sorted, as exported) followed by the WAL
// tail records to replay on top, in append order.
type Recovery[K cmp.Ordered] struct {
	Entries []Entry[K]
	Records []Record[K]
	Stats   RecoveryStats
}

// RecoverySink receives the recovered state of a dataset directory as
// OpenStream reads it, without materializing it. Callbacks are optional
// (nil skips). SnapshotStart announces the entry count of the newest
// snapshot before the first SnapshotEntry; entries stream in key order.
// Record receives WAL tail records in append order; its Entries slice is
// reused between calls and must not be retained. Any callback error
// aborts the open.
type RecoverySink[K any] struct {
	SnapshotStart func(count int) error
	SnapshotEntry func(e Entry[K]) error
	Record        func(rec Record[K]) error
}

// StoreStats is a point-in-time snapshot of a Store's counters.
type StoreStats struct {
	Records         uint64 `json:"records"`              // WAL records appended
	Entries         uint64 `json:"entries"`              // entries across those records
	Bytes           uint64 `json:"bytes"`                // WAL bytes appended
	Syncs           uint64 `json:"syncs"`                // explicit fsync calls
	Snapshots       uint64 `json:"snapshots"`            // snapshots committed
	LastSnapshotSeq uint64 `json:"last_snapshot_seq"`    // sequence of the newest
	ActiveSegment   uint64 `json:"active_segment"`       // sequence being appended
	WALSize         int64  `json:"wal_size"`             // bytes in the active segment
	SyncError       string `json:"sync_error,omitempty"` // sticky durability failure, if any
}

// maxRetainedEncode bounds the record-encode buffer a Store keeps between
// appends; a pathological batch can grow it, but it shrinks back after.
const maxRetainedEncode = 1 << 20

// StoreMetrics holds a Store's histogram instruments: fsync latency and
// the number of records each group commit covered. Recording is atomic
// and allocation-free; the serving layer snapshots them on /metrics
// scrapes.
type StoreMetrics struct {
	// FsyncSeconds times every WAL fsync (group commits, interval
	// syncs, and explicit Syncs alike).
	FsyncSeconds metrics.DurationHistogram
	// CommitRecords counts how many staged records each completed
	// group commit covered — the amortization factor of the committer.
	CommitRecords metrics.SizeHistogram
}

// Ticket identifies one staged record in a Store's WAL order; pass it to
// WaitDurable to block until the record's covering fsync lands. The zero
// Ticket is always durable.
type Ticket struct {
	seq uint64
}

// Store manages one dataset's durability directory: it appends mutation
// records to the active WAL segment and rotates it under snapshots.
//
// # Group commit
//
// Under SyncAlways the write path is split in two: Stage* encodes and
// buffers the record under the store lock — assigning it a position in
// WAL order — and returns a Ticket; WaitDurable blocks until an fsync
// covering that position lands. A single committer goroutine amortizes
// one fsync across every record staged since the previous flush, so
// concurrent writers pay one disk flush between them instead of one
// each, while an acknowledged (WaitDurable-returned) record is always
// on stable storage. Under SyncInterval and SyncNone, WaitDurable
// returns immediately — those policies never promised durability on ACK.
//
// Any fsync or append failure is sticky: the store is considered failed,
// every subsequent Stage*/WaitDurable/Sync returns the original error,
// and Stats reports it — a dying disk surfaces instead of silently
// dropping durability.
//
// Stage*, Sync, and the snapshot protocol are individually thread-safe,
// but exactness of recovery additionally requires that the caller orders
// WAL appends like the in-memory applies they mirror, and that no append
// runs between BeginSnapshot and the state export it covers; the serving
// layer holds its per-dataset log mutex across (stage, apply) and across
// (BeginSnapshot, export) for exactly this. WaitDurable runs outside
// that mutex, which is the whole point: the fsync wait no longer
// serializes other writers.
type Store[K cmp.Ordered] struct {
	dir   string
	codec KeyCodec[K]
	opts  Options

	mu        sync.Mutex
	wal       *walWriter
	active    uint64 // sequence of the open segment
	stagedSeq uint64 // records staged (appended to the buffered writer) so far
	encBuf    []byte // reusable record-encode buffer
	closed    bool
	stopBg    chan struct{}
	bgDone    chan struct{}

	// Commit state: syncedSeq is the highest stagedSeq covered by a
	// completed fsync; failErr is the sticky durability failure. Waiters
	// sleep on commitCond until one of them moves. Lock order: mu may be
	// taken before commitMu (via publish/fail), never the reverse while
	// holding commitMu.
	commitMu   sync.Mutex
	commitCond *sync.Cond
	syncedSeq  uint64
	failErr    error
	failed     atomic.Bool // fast-path mirror of failErr != nil

	kick       chan struct{} // 1-buffered committer wakeup; sends coalesce
	commitStop chan struct{}
	commitDone chan struct{}

	records   atomic.Uint64
	entries   atomic.Uint64
	bytes     atomic.Uint64
	syncs     atomic.Uint64
	snapshots atomic.Uint64
	lastSnap  atomic.Uint64

	metrics StoreMetrics
}

// Metrics returns the store's histogram instruments for scraping.
func (s *Store[K]) Metrics() *StoreMetrics { return &s.metrics }

// Open recovers the dataset directory (creating it if absent) and returns
// the store with its active WAL segment open for appending, plus the
// recovered logical state, fully materialized. A torn final record — the
// footprint of a crash mid-append — is truncated and reported in
// Stats.TornTail; a bad frame anywhere else, or an unreadable newest
// snapshot, is corruption and fails Open. OpenStream is the allocation-
// conscious spelling for large datasets.
func Open[K cmp.Ordered](dir string, codec KeyCodec[K], opts Options) (*Store[K], *Recovery[K], error) {
	rec := &Recovery[K]{}
	st, stats, err := OpenStream(dir, codec, opts, RecoverySink[K]{
		SnapshotStart: func(count int) error {
			rec.Entries = make([]Entry[K], 0, count)
			return nil
		},
		SnapshotEntry: func(e Entry[K]) error {
			rec.Entries = append(rec.Entries, e)
			return nil
		},
		Record: func(r Record[K]) error {
			// The sink's Entries buffer is reused; materialize a copy.
			r.Entries = append([]Entry[K](nil), r.Entries...)
			rec.Records = append(rec.Records, r)
			return nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	rec.Stats = stats
	return st, rec, nil
}

// OpenStream recovers the dataset directory like Open but streams the
// recovered state through sink instead of materializing it, reusing one
// decode buffer across the whole WAL tail — the path irsd boots large
// durable datasets through.
func OpenStream[K cmp.Ordered](dir string, codec KeyCodec[K], opts Options, sink RecoverySink[K]) (*Store[K], RecoveryStats, error) {
	opts = opts.withDefaults()
	var stats RecoveryStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, err
	}
	// The kind marker pins the directory to one dataset kind from its very
	// first open, so a WAL-only directory (no snapshot yet — snapshots
	// carry their own kind byte) can never silently replay into a dataset
	// of the other kind.
	if err := checkKindMarker(dir, opts.Kind); err != nil {
		return nil, stats, err
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, stats, err
	}
	var segs, snaps []uint64
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// An interrupted snapshot write; never renamed, so never valid.
			_ = os.Remove(filepath.Join(dir, name))
		default:
			if seq, ok := parseSeq(name, "wal-", ".log"); ok {
				segs = append(segs, seq)
			} else if seq, ok := parseSeq(name, "snap-", ".snap"); ok {
				snaps = append(snaps, seq)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	// Newest snapshot is the base state. Renames make snapshots all-or-
	// nothing, so an unreadable one means real corruption: fail loudly
	// rather than silently recovering an older state whose covering
	// segments were already compacted away.
	var covered uint64
	if len(snaps) > 0 {
		seq := snaps[len(snaps)-1]
		snapSeq, n, err := readSnapshotStream(filepath.Join(dir, snapshotName(seq)), codec, opts.Kind,
			sink.SnapshotStart, sink.SnapshotEntry)
		if err != nil {
			return nil, stats, err
		}
		if snapSeq != seq {
			return nil, stats, fmt.Errorf("%w: %s claims sequence %d", ErrCorrupt, snapshotName(seq), snapSeq)
		}
		covered = seq
		stats.SnapshotSeq = seq
		stats.SnapshotEntries = n
	}

	// Replay segments newer than the snapshot, oldest first. Only the final
	// segment may have a torn tail (the crash point); badness in any other
	// segment would silently drop records that later segments build on.
	var tail []uint64
	for _, seq := range segs {
		if seq > covered {
			tail = append(tail, seq)
		}
	}
	onRecord := sink.Record
	if onRecord == nil {
		onRecord = func(Record[K]) error { return nil }
	}
	active := covered + 1
	var activeValidLen int64
	var scratch replayScratch[K]
	for i, seq := range tail {
		validLen, n, torn, err := replaySegment(filepath.Join(dir, segmentName(seq)), codec, &scratch, onRecord)
		if err != nil {
			return nil, stats, err
		}
		if torn && i != len(tail)-1 {
			return nil, stats, fmt.Errorf("%w: %s: bad frame before the final segment", ErrCorrupt, segmentName(seq))
		}
		stats.SegmentsScanned++
		stats.RecordsReplayed += n
		stats.TornTail = stats.TornTail || torn
		active, activeValidLen = seq, validLen
	}

	st := &Store[K]{dir: dir, codec: codec, opts: opts, active: active}
	st.commitCond = sync.NewCond(&st.commitMu)
	st.lastSnap.Store(covered)
	st.wal, err = openSegment(dir, active, activeValidLen, opts.OpenFile)
	if err != nil {
		return nil, stats, err
	}
	// Compaction leftovers: segments and snapshots the newest snapshot
	// obsoletes (a crash between snapshot rename and purge leaves them).
	for _, seq := range segs {
		if seq <= covered && seq != active {
			_ = os.Remove(filepath.Join(dir, segmentName(seq)))
		}
	}
	for _, seq := range snaps[:max(len(snaps)-1, 0)] {
		_ = os.Remove(filepath.Join(dir, snapshotName(seq)))
	}
	if opts.Sync == SyncInterval {
		st.stopBg = make(chan struct{})
		st.bgDone = make(chan struct{})
		go st.syncLoop()
	}
	if opts.Sync == SyncAlways {
		st.kick = make(chan struct{}, 1)
		st.commitStop = make(chan struct{})
		st.commitDone = make(chan struct{})
		go st.commitLoop()
	}
	return st, stats, nil
}

// checkKindMarker verifies (writing it on first open) the directory's
// "kind" file against want.
func checkKindMarker(dir string, want uint8) error {
	path := filepath.Join(dir, "kind")
	raw, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		if err := os.WriteFile(path, []byte(kindName(want)+"\n"), 0o644); err != nil {
			return err
		}
		return syncDir(dir)
	case err != nil:
		return err
	}
	got := strings.TrimSpace(string(raw))
	if got != kindName(want) {
		return fmt.Errorf("persist: %s holds a %s dataset, store opened as %s", dir, got, kindName(want))
	}
	return nil
}

// syncLoop is the SyncInterval background fsync ticker. Sync failures are
// sticky (Sync records them), so a dying disk fails the store instead of
// being silently retried forever.
func (s *Store[K]) syncLoop() {
	defer close(s.bgDone)
	t := time.NewTicker(s.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Sync(); err != nil && !errors.Is(err, ErrClosed) && s.failed.Load() {
				// The failure is recorded; nothing more to tick for.
				return
			}
		case <-s.stopBg:
			return
		}
	}
}

// fail records err as the store's sticky durability failure (first error
// wins) and wakes every WaitDurable waiter.
func (s *Store[K]) fail(err error) {
	s.commitMu.Lock()
	if s.failErr == nil {
		s.failErr = err
		s.failed.Store(true)
	}
	s.commitMu.Unlock()
	s.commitCond.Broadcast()
}

// publish marks every record staged at or before seq as durable and wakes
// waiters.
func (s *Store[K]) publish(seq uint64) {
	s.commitMu.Lock()
	if seq > s.syncedSeq {
		s.syncedSeq = seq
	}
	s.commitMu.Unlock()
	s.commitCond.Broadcast()
}

// Err returns the store's sticky durability failure, or nil.
func (s *Store[K]) Err() error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return s.failErr
}

// stage encodes rec, appends its frame to the active segment's buffer, and
// assigns it the next position in WAL order. The encode reuses a store-
// owned buffer, so steady-state staging allocates nothing.
func (s *Store[K]) stage(rec Record[K]) (Ticket, error) {
	if s.failed.Load() {
		return Ticket{}, s.Err()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Ticket{}, ErrClosed
	}
	frame, err := appendRecord(s.encBuf[:0], s.codec, rec)
	if err != nil {
		s.mu.Unlock()
		return Ticket{}, err
	}
	if cap(frame) <= maxRetainedEncode {
		s.encBuf = frame[:0]
	} else {
		s.encBuf = nil
	}
	if err := s.wal.append(frame); err != nil {
		s.mu.Unlock()
		s.fail(err)
		return Ticket{}, err
	}
	s.stagedSeq++
	t := Ticket{seq: s.stagedSeq}
	s.mu.Unlock()
	s.records.Add(1)
	s.entries.Add(uint64(len(rec.Entries)))
	s.bytes.Add(uint64(len(frame)))
	if s.opts.Sync == SyncAlways {
		select {
		case s.kick <- struct{}{}:
		default: // a wakeup is already pending; it will cover this record
		}
	}
	return t, nil
}

// StageInsert stages one insert record covering entries and returns its
// durability ticket.
func (s *Store[K]) StageInsert(entries []Entry[K]) (Ticket, error) {
	return s.stage(Record[K]{Op: OpInsert, Entries: entries})
}

// StageDelete stages one delete record covering entries' keys (weights
// ignored) and returns its durability ticket.
func (s *Store[K]) StageDelete(entries []Entry[K]) (Ticket, error) {
	return s.stage(Record[K]{Op: OpDelete, Entries: entries})
}

// StageUpdate stages one update-weight record covering entries and returns
// its durability ticket.
func (s *Store[K]) StageUpdate(entries []Entry[K]) (Ticket, error) {
	return s.stage(Record[K]{Op: OpUpdate, Entries: entries})
}

// WaitDurable blocks until the record t identifies is covered by a
// completed fsync, then returns nil — the group-commit ACK point. Under
// SyncInterval and SyncNone it returns immediately (those policies do not
// promise durability on acknowledge). If the store failed before t's
// covering fsync landed, it returns the sticky failure; a record whose
// fsync completed before the failure still acknowledges as durable.
func (s *Store[K]) WaitDurable(t Ticket) error {
	if s.opts.Sync != SyncAlways {
		if s.failed.Load() {
			return s.Err()
		}
		return nil
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	for s.syncedSeq < t.seq && s.failErr == nil {
		s.commitCond.Wait()
	}
	if s.syncedSeq >= t.seq {
		return nil
	}
	return s.failErr
}

// commitLoop is the group-commit committer: each wakeup flushes and fsyncs
// everything staged so far, covering every waiter in one disk flush.
func (s *Store[K]) commitLoop() {
	defer close(s.commitDone)
	for {
		select {
		case <-s.kick:
			s.commitOnce()
		case <-s.commitStop:
			return
		}
	}
}

// commitOnce performs one group commit: under the store lock it flushes
// the buffered writer (so the flush never interleaves with a concurrent
// append) and notes the covered sequence; the fsync itself runs outside
// the lock, so staging continues while the disk works.
func (s *Store[K]) commitOnce() {
	s.commitMu.Lock()
	already := s.syncedSeq
	failed := s.failErr != nil
	s.commitMu.Unlock()
	if failed {
		return
	}
	s.mu.Lock()
	if s.closed {
		// Close syncs and publishes; nothing left for the committer.
		s.mu.Unlock()
		return
	}
	seq := s.stagedSeq
	if seq <= already {
		s.mu.Unlock()
		return
	}
	epoch := s.active
	if err := s.wal.flush(); err != nil {
		s.mu.Unlock()
		s.fail(err)
		return
	}
	f := s.wal.f
	s.mu.Unlock()

	syncStart := time.Now()
	if err := f.Sync(); err != nil {
		// If the segment rotated or the store closed while we were
		// syncing, the rotation path already fsynced (and published) the
		// bytes we cover and the handle we hold may simply be closed —
		// that is staleness, not a durability failure.
		s.mu.Lock()
		stale := s.closed || s.active != epoch
		s.mu.Unlock()
		if !stale {
			s.fail(err)
		}
		return
	}
	s.metrics.FsyncSeconds.Observe(time.Since(syncStart))
	s.metrics.CommitRecords.Observe(seq - already)
	s.syncs.Add(1)
	s.publish(seq)
}

// append stages one record and waits for durability per policy — the
// non-group-commit convenience path.
func (s *Store[K]) append(rec Record[K]) error {
	t, err := s.stage(rec)
	if err != nil {
		return err
	}
	return s.WaitDurable(t)
}

// LogInsert appends one insert record covering entries, durable per policy
// on return.
func (s *Store[K]) LogInsert(entries []Entry[K]) error {
	return s.append(Record[K]{Op: OpInsert, Entries: entries})
}

// LogDelete appends one delete record covering keys, durable per policy on
// return.
func (s *Store[K]) LogDelete(keys []K) error {
	entries := make([]Entry[K], len(keys))
	for i, k := range keys {
		entries[i].Key = k
	}
	return s.append(Record[K]{Op: OpDelete, Entries: entries})
}

// LogUpdate appends one update-weight record covering entries, durable per
// policy on return.
func (s *Store[K]) LogUpdate(entries []Entry[K]) error {
	return s.append(Record[K]{Op: OpUpdate, Entries: entries})
}

// Sync flushes and fsyncs the active segment. A failure is sticky.
func (s *Store[K]) Sync() error {
	if s.failed.Load() {
		return s.Err()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	seq := s.stagedSeq
	if !s.wal.dirty {
		s.mu.Unlock()
		s.publish(seq)
		return nil
	}
	syncStart := time.Now()
	err := s.wal.sync()
	s.mu.Unlock()
	if err != nil {
		s.fail(err)
		return err
	}
	s.metrics.FsyncSeconds.Observe(time.Since(syncStart))
	s.syncs.Add(1)
	s.publish(seq)
	return nil
}

// BeginSnapshot starts the snapshot protocol: it syncs and closes the
// active segment (sequence S), opens segment S+1 for subsequent appends,
// and returns a commit function. The caller must export the dataset state
// before any further append (the serving layer does both under its log
// mutex) and then invoke commit with that export — commit writes snap-S
// atomically and purges the segments and snapshots it obsoletes. commit
// runs outside any lock; until it succeeds, recovery simply uses the
// previous snapshot plus the still-present segments. Snapshot protocols
// must not overlap: the caller serializes BeginSnapshot..commit pairs
// (the serving layer's per-dataset snapshot mutex).
func (s *Store[K]) BeginSnapshot() (seq uint64, commit func(entries []Entry[K]) error, err error) {
	if s.failed.Load() {
		return 0, nil, s.Err()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, nil, ErrClosed
	}
	covered := s.active
	if cerr := s.wal.close(); cerr != nil {
		s.mu.Unlock()
		s.fail(cerr)
		return 0, nil, cerr
	}
	staged := s.stagedSeq
	next, err := openSegment(s.dir, covered+1, 0, s.opts.OpenFile)
	if err != nil {
		// Reopen the old segment for appending; the store must stay usable.
		reopened, rerr := openSegment(s.dir, covered, s.wal.size, s.opts.OpenFile)
		if rerr != nil {
			s.mu.Unlock()
			joined := errors.Join(err, rerr)
			s.fail(joined)
			return 0, nil, joined
		}
		s.wal = reopened
		s.mu.Unlock()
		// The close above fsynced everything staged so far.
		s.syncs.Add(1)
		s.publish(staged)
		return 0, nil, err
	}
	s.wal = next
	s.active = covered + 1
	s.mu.Unlock()
	s.syncs.Add(1)
	s.publish(staged)

	commit = func(entries []Entry[K]) error {
		path := filepath.Join(s.dir, snapshotName(covered))
		if err := writeSnapshotFile(path, s.codec, s.opts.Kind, covered, entries); err != nil {
			return err
		}
		prev := s.lastSnap.Swap(covered)
		s.snapshots.Add(1)
		for seq := prev; seq <= covered; seq++ {
			_ = os.Remove(filepath.Join(s.dir, segmentName(seq)))
		}
		if prev > 0 && prev != covered {
			_ = os.Remove(filepath.Join(s.dir, snapshotName(prev)))
		}
		return nil
	}
	return covered, commit, nil
}

// Stats returns the store's counters.
func (s *Store[K]) Stats() StoreStats {
	s.mu.Lock()
	var size int64
	var active uint64
	if !s.closed {
		size = s.wal.size
		active = s.active
	}
	s.mu.Unlock()
	var syncErr string
	if err := s.Err(); err != nil {
		syncErr = err.Error()
	}
	return StoreStats{
		Records:         s.records.Load(),
		Entries:         s.entries.Load(),
		Bytes:           s.bytes.Load(),
		Syncs:           s.syncs.Load(),
		Snapshots:       s.snapshots.Load(),
		LastSnapshotSeq: s.lastSnap.Load(),
		ActiveSegment:   active,
		WALSize:         size,
		SyncError:       syncErr,
	}
}

// Dir returns the store's directory.
func (s *Store[K]) Dir() string { return s.dir }

// Close syncs and closes the active segment. Further operations fail with
// ErrClosed. Safe to call more than once. Waiters blocked in WaitDurable
// are released: the closing sync covers everything staged.
func (s *Store[K]) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.wal.close()
	staged := s.stagedSeq
	s.mu.Unlock()
	if err != nil {
		s.fail(err)
	} else {
		s.publish(staged)
	}
	if s.stopBg != nil {
		close(s.stopBg)
		<-s.bgDone
	}
	if s.commitStop != nil {
		close(s.commitStop)
		<-s.commitDone
	}
	return err
}
