package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// SyncPolicy selects when WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged mutation is
	// durable before the in-memory structure applies it.
	SyncAlways SyncPolicy = iota
	// SyncInterval flushes and fsyncs on a background timer (the Store's
	// Options.SyncInterval): a crash loses at most one interval of
	// acknowledged mutations.
	SyncInterval
	// SyncNone leaves flushing to the OS and the Store's rotate/close
	// paths: fastest, weakest.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("syncpolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the flag spellings "always", "interval", "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync policy %q (want always, interval, or none)", s)
}

// segmentName and snapshotName format the on-disk file names; sequence
// numbers are fixed-width hex so lexical order is numeric order.
func segmentName(seq uint64) string  { return fmt.Sprintf("wal-%016x.log", seq) }
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

// parseSeq extracts the sequence number from a segment or snapshot name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(name[len(prefix):len(prefix)+16], "%016x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// File is the surface a WAL segment needs from its backing file. Stores
// open segments through Options.OpenFile, so durability tests can inject a
// file whose Sync blocks or fails — the seam the group-commit ACK tests
// stand on. Production stores use *os.File.
type File interface {
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

func defaultOpenFile(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
}

// walWriter is one open WAL segment: buffered appends with the frame codec,
// synced per policy.
type walWriter struct {
	f     File
	bw    *bufio.Writer
	size  int64 // bytes written (valid prefix + buffered)
	dirty bool  // bytes not yet fsynced
}

// openSegment opens (creating if needed) the segment file for appending,
// first truncating it to validLen — the readable prefix a prior replay
// measured — so a torn tail from a crash never precedes new records.
func openSegment(dir string, seq uint64, validLen int64, open func(string) (File, error)) (*walWriter, error) {
	path := filepath.Join(dir, segmentName(seq))
	f, err := open(path)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16), size: validLen}, nil
}

// append encodes rec and writes its frame; the caller decides when to sync.
func (w *walWriter) append(frame []byte) error {
	n, err := w.bw.Write(frame)
	w.size += int64(n)
	if err != nil {
		return err
	}
	w.dirty = true
	return nil
}

// flush pushes buffered frames into the kernel without fsyncing — the
// group-commit committer's first half, run under the store lock so it
// never interleaves with a concurrent append. The fsync half runs outside
// the lock.
func (w *walWriter) flush() error { return w.bw.Flush() }

// sync flushes buffered frames and fsyncs the file.
func (w *walWriter) sync() error {
	if !w.dirty {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	return nil
}

// close syncs and closes the segment file.
func (w *walWriter) close() error {
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// replayScratch is the reusable decode state one recovery pass threads
// through every segment it replays: the payload buffer and the record
// entries backing are recycled from record to record, so a long WAL tail
// replays without per-record allocation. The Record handed to fn aliases
// this scratch and must not be retained across calls.
type replayScratch[K any] struct {
	payload []byte
	entries []Entry[K]
}

// replaySegment streams the records of one segment file through fn, in
// append order. It stops at the first frame that fails a structural check
// and reports the length of the valid prefix and whether anything followed
// it (a torn or corrupt tail); a missing file replays as empty. fn errors
// abort the replay unchanged.
func replaySegment[K any](path string, codec KeyCodec[K], scratch *replayScratch[K], fn func(Record[K]) error) (validLen int64, records int, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, false, nil
		}
		return 0, 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var header [frameHeader]byte
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			// Clean EOF on a frame boundary ends the segment; anything else
			// (partial header, read error) is a torn tail.
			return validLen, records, err != io.EOF, nil
		}
		length := binary.LittleEndian.Uint32(header[:])
		sum := binary.LittleEndian.Uint32(header[4:])
		if length == 0 || length > maxFrame {
			return validLen, records, true, nil
		}
		if cap(scratch.payload) < int(length) {
			scratch.payload = make([]byte, length)
		}
		payload := scratch.payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return validLen, records, true, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return validLen, records, true, nil
		}
		rec, derr := decodeRecordInto(codec, payload, scratch.entries[:0])
		if derr != nil {
			return validLen, records, true, nil
		}
		scratch.entries = rec.Entries[:0]
		if err := fn(rec); err != nil {
			return validLen, records, false, err
		}
		validLen += int64(frameHeader) + int64(length)
		records++
	}
}
