package persist

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"reflect"
	"testing"
)

func mkEntries(keys []float64, weights []float64) []Entry[float64] {
	out := make([]Entry[float64], len(keys))
	for i, k := range keys {
		out[i].Key = k
		if weights != nil {
			out[i].Weight = weights[i]
		}
	}
	return out
}

// frameRoundtrip encodes rec and decodes the payload back.
func frameRoundtrip(t *testing.T, rec Record[float64]) Record[float64] {
	t.Helper()
	frame, err := appendRecord(nil, Float64Keys(), rec)
	if err != nil {
		t.Fatalf("encode %v: %v", rec.Op, err)
	}
	length := binary.LittleEndian.Uint32(frame)
	if int(length) != len(frame)-frameHeader {
		t.Fatalf("length prefix %d, frame body %d", length, len(frame)-frameHeader)
	}
	payload := frame[frameHeader:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(frame[4:]) {
		t.Fatal("CRC mismatch on fresh frame")
	}
	got, err := decodeRecord(Float64Keys(), payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestRecordRoundtrip(t *testing.T) {
	cases := []Record[float64]{
		{Op: OpInsert, Entries: mkEntries([]float64{1, 2.5, -3, math.Inf(1)}, []float64{1, 0.25, 7, 0})},
		{Op: OpInsert, Entries: nil},
		{Op: OpDelete, Entries: mkEntries([]float64{9, 9, 0}, nil)},
		{Op: OpUpdate, Entries: mkEntries([]float64{4}, []float64{123.5})},
	}
	for _, rec := range cases {
		got := frameRoundtrip(t, rec)
		if got.Op != rec.Op || len(got.Entries) != len(rec.Entries) {
			t.Fatalf("roundtrip %v: got %+v", rec.Op, got)
		}
		if len(rec.Entries) > 0 && !reflect.DeepEqual(got.Entries, rec.Entries) {
			t.Fatalf("roundtrip %v: entries %v != %v", rec.Op, got.Entries, rec.Entries)
		}
	}
}

func TestRecordRoundtripDeleteIgnoresWeights(t *testing.T) {
	// Delete records do not serialize weights; they come back zero.
	rec := Record[float64]{Op: OpDelete, Entries: mkEntries([]float64{1, 2}, []float64{5, 6})}
	got := frameRoundtrip(t, rec)
	for i, e := range got.Entries {
		if e.Weight != 0 {
			t.Fatalf("delete entry %d kept weight %v", i, e.Weight)
		}
	}
}

func TestDecodeRecordRejectsMalformed(t *testing.T) {
	codec := Float64Keys()
	good, err := appendRecord(nil, codec, Record[float64]{Op: OpInsert, Entries: mkEntries([]float64{1, 2}, []float64{3, 4})})
	if err != nil {
		t.Fatal(err)
	}
	payload := good[frameHeader:]

	bad := [][]byte{
		nil,
		{},
		{byte(OpInsert)},         // no count
		{0, 0, 0, 0, 0},          // op 0
		{99, 1, 0, 0, 0},         // unknown op
		payload[:len(payload)-1], // truncated last weight
		payload[:len(payload)-9], // truncated mid-entry
		append(append([]byte{}, payload...), 0xAB), // trailing byte
	}
	// Entry count far beyond the payload.
	huge := append([]byte{byte(OpInsert)}, 0xff, 0xff, 0xff, 0x7f)
	bad = append(bad, huge)
	for i, p := range bad {
		if _, err := decodeRecord(codec, p); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("case %d: want ErrCorrupt, got %v", i, err)
		}
	}
}

func TestEncodeRejectsInvalidOp(t *testing.T) {
	if _, err := appendRecord(nil, Float64Keys(), Record[float64]{Op: Op(7)}); err == nil {
		t.Fatal("encoded a record with an invalid op")
	}
}
