package persist

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzWALDecode drives the WAL record decoder with arbitrary payload
// bytes: malformed or truncated frames must return an error (wrapping
// ErrCorrupt), never panic, and whatever decodes successfully must
// re-encode to a payload that decodes to the same record — the decoder is
// the recovery path's parser, so its failure mode must always be a clean
// truncation point.
func FuzzWALDecode(f *testing.F) {
	codec := Float64Keys()
	// Seed with valid encodings of each op plus near-miss corruptions.
	seeds := []Record[float64]{
		{Op: OpInsert, Entries: mkEntries([]float64{1, 2.5}, []float64{1, 3})},
		{Op: OpDelete, Entries: mkEntries([]float64{-7, 0}, nil)},
		{Op: OpUpdate, Entries: mkEntries([]float64{42}, []float64{0.5})},
		{Op: OpInsert},
	}
	for _, rec := range seeds {
		frame, err := appendRecord(nil, codec, rec)
		if err != nil {
			f.Fatal(err)
		}
		payload := frame[frameHeader:]
		f.Add(payload)
		f.Add(payload[:len(payload)/2])
		flipped := append([]byte(nil), payload...)
		flipped[0] ^= 0xff
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(OpInsert), 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeRecord(codec, payload)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error outside the ErrCorrupt vocabulary: %v", err)
			}
			return
		}
		frame, err := appendRecord(nil, codec, rec)
		if err != nil {
			t.Fatalf("re-encoding a decoded record failed: %v", err)
		}
		again, err := decodeRecord(codec, frame[frameHeader:])
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Op != rec.Op || len(again.Entries) != len(rec.Entries) {
			t.Fatalf("re-decode mismatch: %+v != %+v", again, rec)
		}
		// NaN keys/weights are legal float64 bit patterns but break
		// reflect.DeepEqual; compare only when the encoding is canonical.
		if len(rec.Entries) > 0 && !hasNaN(rec) && !reflect.DeepEqual(again.Entries, rec.Entries) {
			t.Fatalf("re-decode entries mismatch: %v != %v", again.Entries, rec.Entries)
		}
	})
}

func hasNaN(rec Record[float64]) bool {
	for _, e := range rec.Entries {
		if e.Key != e.Key || e.Weight != e.Weight {
			return true
		}
	}
	return false
}
