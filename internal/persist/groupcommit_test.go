package persist

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// hookFile wraps a real segment file with an injectable Sync, the fault
// seam Options.OpenFile exists for: the hook runs before the real fsync
// and its error (if any) replaces it.
type hookFile struct {
	File
	syncHook func() error
}

func (h *hookFile) Sync() error {
	if h.syncHook != nil {
		if err := h.syncHook(); err != nil {
			return err
		}
	}
	return h.File.Sync()
}

// openHooked opens a SyncAlways store whose WAL segments run syncHook
// before every fsync.
func openHooked(t *testing.T, dir string, syncHook func() error) *Store[float64] {
	t.Helper()
	st, _, err := Open(dir, Float64Keys(), Options{
		Kind: KindUnweighted,
		Sync: SyncAlways,
		OpenFile: func(path string) (File, error) {
			f, err := defaultOpenFile(path)
			if err != nil {
				return nil, err
			}
			return &hookFile{File: f, syncHook: syncHook}, nil
		},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}

// TestGroupCommitHammer drives concurrent stagers through the committer
// under -race and then checks the two ordering guarantees the serving
// layer builds on: every acknowledged record survives a crash (the store
// is abandoned un-closed, so only completed fsyncs can explain the
// recovered bytes), and each stager's records appear in the log in its
// own staging order.
func TestGroupCommitHammer(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, KindUnweighted)
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tk, err := st.StageInsert(mkEntries([]float64{float64(g*1000 + i)}, []float64{1}))
				if err != nil {
					t.Errorf("writer %d: stage: %v", g, err)
					return
				}
				if err := st.WaitDurable(tk); err != nil {
					t.Errorf("writer %d: wait: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Crash: the store is abandoned, never closed. Everything above was
	// acknowledged, so everything above must recover.
	st2, rec := reopen(t, dir, KindUnweighted)
	defer st2.Close()
	if got := len(rec.Records); got != writers*perWriter {
		t.Fatalf("recovered %d records, want %d (an ACK preceded its fsync)", got, writers*perWriter)
	}
	next := make([]int, writers)
	for i, r := range rec.Records {
		key := int(r.Entries[0].Key)
		g, seq := key/1000, key%1000
		if seq != next[g] {
			t.Fatalf("record %d: writer %d's record %d out of order (expected %d): staging order not log order", i, g, seq, next[g])
		}
		next[g]++
	}
}

// TestGroupCommitNoAckBeforeFsync gates the segment's fsync shut and
// proves WaitDurable cannot return until the covering fsync completes.
func TestGroupCommitNoAckBeforeFsync(t *testing.T) {
	gate := make(chan struct{})
	st := openHooked(t, t.TempDir(), func() error { <-gate; return nil })
	defer st.Close()

	tk, err := st.StageInsert(mkEntries([]float64{1}, []float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	acked := make(chan error, 1)
	go func() { acked <- st.WaitDurable(tk) }()
	select {
	case err := <-acked:
		t.Fatalf("acknowledged (err=%v) while the fsync was gated shut", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	select {
	case err := <-acked:
		if err != nil {
			t.Fatalf("WaitDurable after fsync: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitDurable never returned after the fsync was released")
	}
	if st.Stats().Syncs == 0 {
		t.Fatal("no fsync recorded for the acknowledged record")
	}
}

// TestGroupCommitStickyFsyncError injects a failing fsync under
// SyncAlways: the waiter gets the error, and the store fails sticky —
// later stages fail fast and Stats surfaces the error string.
func TestGroupCommitStickyFsyncError(t *testing.T) {
	errBoom := errors.New("injected fsync failure")
	var failNow atomic.Bool
	st := openHooked(t, t.TempDir(), func() error {
		if failNow.Load() {
			return errBoom
		}
		return nil
	})
	defer st.Close()

	// A record fsynced before the fault stays acknowledged.
	tk1, err := st.StageInsert(mkEntries([]float64{1}, []float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitDurable(tk1); err != nil {
		t.Fatalf("healthy wait: %v", err)
	}

	failNow.Store(true)
	tk2, err := st.StageInsert(mkEntries([]float64{2}, []float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitDurable(tk2); !errors.Is(err, errBoom) {
		t.Fatalf("wait across failed fsync: %v, want the injected error", err)
	}
	// Sticky: everything afterwards fails fast with the original error.
	if _, err := st.StageInsert(mkEntries([]float64{3}, []float64{1})); !errors.Is(err, errBoom) {
		t.Fatalf("stage after failure: %v, want sticky error", err)
	}
	if err := st.Sync(); !errors.Is(err, errBoom) {
		t.Fatalf("sync after failure: %v, want sticky error", err)
	}
	if _, _, err := st.BeginSnapshot(); !errors.Is(err, errBoom) {
		t.Fatalf("snapshot after failure: %v, want sticky error", err)
	}
	if got := st.Stats().SyncError; got == "" {
		t.Fatal("sticky failure not surfaced in Stats")
	}
	// The pre-failure record still acknowledges as durable.
	if err := st.WaitDurable(tk1); err != nil {
		t.Fatalf("pre-failure ticket re-acknowledged with %v, want nil", err)
	}
}

// TestSyncIntervalStickyFsyncError is the satellite bugfix pinned: under
// SyncInterval a failing background fsync used to be silently dropped.
// It must now fail the store — subsequent appends error and Stats
// surfaces it.
func TestSyncIntervalStickyFsyncError(t *testing.T) {
	errBoom := errors.New("injected interval fsync failure")
	st, _, err := Open(t.TempDir(), Float64Keys(), Options{
		Kind:         KindUnweighted,
		Sync:         SyncInterval,
		SyncInterval: time.Millisecond,
		OpenFile: func(path string) (File, error) {
			f, err := defaultOpenFile(path)
			if err != nil {
				return nil, err
			}
			return &hookFile{File: f, syncHook: func() error { return errBoom }}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.LogInsert(mkEntries([]float64{1}, []float64{1})); err != nil {
		t.Fatalf("append before the background sync ran: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background fsync failure never became sticky")
		}
		time.Sleep(time.Millisecond)
	}
	if err := st.Err(); !errors.Is(err, errBoom) {
		t.Fatalf("sticky error %v, want the injected failure", err)
	}
	if err := st.LogInsert(mkEntries([]float64{2}, []float64{1})); !errors.Is(err, errBoom) {
		t.Fatalf("append after failure: %v, want sticky error", err)
	}
	if st.Stats().SyncError == "" {
		t.Fatal("sticky failure not surfaced in Stats")
	}
}

// TestOpenStreamMatchesOpen recovers one directory both ways — streaming
// sink and materializing wrapper — and demands identical state: the
// equivalence the irsd boot path (OpenStream) rests on.
func TestOpenStreamMatchesOpen(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir, KindWeighted)
	if err := st.LogInsert(mkEntries([]float64{1, 2, 3}, []float64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	if _, commit, err := st.BeginSnapshot(); err != nil {
		t.Fatal(err)
	} else if err := commit(mkEntries([]float64{1, 2, 3}, []float64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	if err := st.LogDelete([]float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := st.LogUpdate(mkEntries([]float64{3}, []float64{9})); err != nil {
		t.Fatal(err)
	}
	st.Close()

	stA, recA := reopen(t, dir, KindWeighted)
	stA.Close()

	var streamed Recovery[float64]
	stB, stats, err := OpenStream(dir, Float64Keys(), Options{Kind: KindWeighted}, RecoverySink[float64]{
		SnapshotStart: func(count int) error {
			streamed.Entries = make([]Entry[float64], 0, count)
			return nil
		},
		SnapshotEntry: func(e Entry[float64]) error {
			streamed.Entries = append(streamed.Entries, e)
			return nil
		},
		Record: func(r Record[float64]) error {
			r.Entries = append([]Entry[float64](nil), r.Entries...)
			streamed.Records = append(streamed.Records, r)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stB.Close()

	if stats != recA.Stats {
		t.Fatalf("recovery stats diverge: %+v vs %+v", stats, recA.Stats)
	}
	if len(streamed.Entries) != len(recA.Entries) {
		t.Fatalf("snapshot entries: %d vs %d", len(streamed.Entries), len(recA.Entries))
	}
	for i := range streamed.Entries {
		if streamed.Entries[i] != recA.Entries[i] {
			t.Fatalf("snapshot entry %d diverges", i)
		}
	}
	if len(streamed.Records) != len(recA.Records) {
		t.Fatalf("tail records: %d vs %d", len(streamed.Records), len(recA.Records))
	}
	for i := range streamed.Records {
		a, b := streamed.Records[i], recA.Records[i]
		if a.Op != b.Op || len(a.Entries) != len(b.Entries) {
			t.Fatalf("record %d diverges: %+v vs %+v", i, a, b)
		}
		for j := range a.Entries {
			if a.Entries[j] != b.Entries[j] {
				t.Fatalf("record %d entry %d diverges", i, j)
			}
		}
	}
}
