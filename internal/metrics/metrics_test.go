package metrics

import (
	"bufio"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 16, 16}, {1<<16 + 1, 17}, {1 << 25, 25}, {1<<25 + 1, 26},
		{math.MaxUint64, 26},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v, 26); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestDurationHistogramSnapshot(t *testing.T) {
	var h DurationHistogram
	h.Observe(500 * time.Nanosecond) // rounds to 0µs -> bucket 0
	h.Observe(1 * time.Microsecond)  // bucket 0
	h.Observe(3 * time.Microsecond)  // bucket 2 (le 4µs)
	h.Observe(1 * time.Hour)         // overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if len(s.Cum) != len(s.Les)+1 {
		t.Fatalf("cum has %d entries for %d les", len(s.Cum), len(s.Les))
	}
	if s.Cum[0] != 2 {
		t.Errorf("<=1µs bucket = %d, want 2", s.Cum[0])
	}
	if s.Cum[1] != 2 {
		t.Errorf("<=2µs bucket = %d, want 2", s.Cum[1])
	}
	if s.Cum[2] != 3 {
		t.Errorf("<=4µs bucket = %d, want 3", s.Cum[2])
	}
	if last := s.Cum[len(s.Cum)-1]; last != 4 {
		t.Errorf("+Inf bucket = %d, want 4", last)
	}
	wantSum := (500*time.Nanosecond + time.Microsecond + 3*time.Microsecond + time.Hour).Seconds()
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
	// Cumulative counts never decrease.
	for i := 1; i < len(s.Cum); i++ {
		if s.Cum[i] < s.Cum[i-1] {
			t.Fatalf("cum not monotone at %d: %v", i, s.Cum)
		}
	}
}

func TestSizeHistogramSnapshot(t *testing.T) {
	var h SizeHistogram
	for n := uint64(1); n <= 100; n++ {
		h.Observe(n)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Sum != 5050 {
		t.Fatalf("sum = %v, want 5050", s.Sum)
	}
	if s.Cum[6] != 64 { // le 64 covers 1..64
		t.Errorf("<=64 bucket = %d, want 64", s.Cum[6])
	}
	if s.Cum[7] != 100 { // le 128 covers everything
		t.Errorf("<=128 bucket = %d, want 100", s.Cum[7])
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if got := g.Load(); got != 5 {
		t.Fatalf("after SetMax(5), SetMax(3): %d", got)
	}
	g.SetMax(9)
	if got := g.Load(); got != 9 {
		t.Fatalf("after SetMax(9): %d", got)
	}
}

// TestRecordingAllocFree pins the hot-path recording operations at
// zero allocations: these run inside the serving fast paths that the
// server-level AllocsPerRun tests pin end to end.
func TestRecordingAllocFree(t *testing.T) {
	var c Counter
	var g Gauge
	var dh DurationHistogram
	var sh SizeHistogram
	n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Add(-1)
		g.SetMax(12)
		dh.Observe(123 * time.Microsecond)
		sh.Observe(42)
	})
	if n != 0 {
		t.Fatalf("recording allocates %v allocs/op, want 0", n)
	}
}

func TestBuilderOutput(t *testing.T) {
	var dh DurationHistogram
	dh.Observe(3 * time.Microsecond)
	b := NewBuilder(nil)
	b.Family("irsd_up", "Whether irsd is up.", "gauge")
	b.Val("irsd_up", 1)
	b.Family("irsd_requests_total", "Requests with \"quotes\" and \\slashes\nand newlines.", "counter")
	b.Val("irsd_requests_total", 42, "dataset", `de"mo\x`, "path", "sample")
	b.Family("irsd_req_seconds", "Latency.", "histogram")
	b.Histogram("irsd_req_seconds", dh.Snapshot(), "encoding", "json")
	out := string(b.Bytes())

	for _, want := range []string{
		"# HELP irsd_up Whether irsd is up.\n# TYPE irsd_up gauge\nirsd_up 1\n",
		`irsd_requests_total{dataset="de\"mo\\x",path="sample"} 42` + "\n",
		"Requests with \"quotes\" and \\\\slashes\\nand newlines.",
		`irsd_req_seconds_bucket{encoding="json",le="1e-06"} 0` + "\n",
		`irsd_req_seconds_bucket{encoding="json",le="4e-06"} 1` + "\n",
		`irsd_req_seconds_bucket{encoding="json",le="+Inf"} 1` + "\n",
		`irsd_req_seconds_sum{encoding="json"} 3e-06` + "\n",
		`irsd_req_seconds_count{encoding="json"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\nfull output:\n%s", want, out)
		}
	}
	validateExposition(t, out)
}

// validateExposition runs a line-level structural check of the text
// exposition format: every non-comment line is `name{labels} value`,
// every sample's base name was declared by a preceding # TYPE, and a
// family's samples are contiguous (no interleaving).
func validateExposition(t *testing.T, text string) {
	t.Helper()
	declared := map[string]string{} // family -> type
	done := map[string]bool{}       // family finished (another family started after it)
	current := ""
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := parts[2], parts[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("bad type %q in %q", typ, line)
			}
			if declared[name] != "" {
				t.Fatalf("family %q declared twice", name)
			}
			declared[name] = typ
			if current != "" {
				done[current] = true
			}
			current = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value  |  name value
		name := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("unbalanced braces: %q", line)
			}
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && declared[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if declared[base] == "" {
			t.Fatalf("sample %q has no preceding # TYPE", name)
		}
		if base != current {
			if done[base] {
				t.Fatalf("family %q interleaved: sample after family closed", base)
			}
			t.Fatalf("sample %q outside its family block (current %q)", name, current)
		}
		fields := strings.Fields(line)
		val := fields[len(fields)-1]
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("unparseable value %q in %q", val, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
}
