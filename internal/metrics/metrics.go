// Package metrics provides the zero-dependency instrumentation
// primitives behind irsd's /metrics endpoint: atomic counters and
// gauges, and fixed-bucket log-scale histograms.
//
// Everything here is built for the serving hot path: recording is a
// handful of atomic adds — no locks, no allocation, no branches on
// shared state — and each instrument is padded out to its own cache
// line so two instruments touched by different cores never false-share.
// Scrapes pay the cost instead: a snapshot walks the buckets with
// atomic loads and the Prometheus text rendering (prom.go) allocates
// freely, on the scraper's goroutine, without ever stalling a writer.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// pad fills the remainder of a 64-byte cache line after an 8-byte
// atomic word, so adjacent instruments in a struct don't false-share.
type pad [56]byte

// Counter is a monotonically increasing uint64. The zero value is
// ready to use.
type Counter struct {
	v atomic.Uint64
	_ pad
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value. The zero value is ready to
// use.
type Gauge struct {
	v atomic.Int64
	_ pad
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to v if v is larger than the current value.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram bucket layout. Both histogram kinds use power-of-two
// buckets: bucket i holds observations v with 2^(i-1) < v <= 2^i
// (bucket 0 holds v <= 1, the last bucket is the +Inf overflow).
// Log-scale buckets keep the array small — durationBuckets spans 1µs
// to ~33s in 26 counters — while bounding the relative quantile error
// at 2x, which is plenty to tell a 100µs fsync from a 10ms one.
const (
	durationBuckets = 26 // 1µs, 2µs, ... 2^25µs (~33.5s), then +Inf
	sizeBuckets     = 17 // 1, 2, 4, ... 65536, then +Inf
)

// bucketIndex returns the log2 bucket for v: the smallest i with
// v <= 2^i, clamped to [0, n]. Index n is the +Inf overflow bucket.
func bucketIndex(v uint64, n int) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(v - 1) // v <= 2^i for i = Len64(v-1)
	if i > n {
		return n
	}
	return i
}

// DurationHistogram counts observations in log-scale microsecond
// buckets. The zero value is ready to use.
type DurationHistogram struct {
	count   atomic.Uint64
	_       pad
	sumNS   atomic.Uint64
	_       pad
	buckets [durationBuckets + 1]atomic.Uint64
}

// Observe records one duration. Negative durations count as zero.
func (h *DurationHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d / time.Microsecond)
	h.buckets[bucketIndex(us, durationBuckets)].Add(1)
	h.sumNS.Add(uint64(d))
	h.count.Add(1)
}

// Snapshot returns a consistent-enough copy for rendering: cumulative
// bucket counts, the sum in seconds, and the total count. Snapshots
// race benignly with writers (a concurrent Observe may be half
// visible); Prometheus scrapes tolerate that.
func (h *DurationHistogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Les = durationLes[:]
	s.Cum = make([]uint64, durationBuckets+1)
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		s.Cum[i] = cum
	}
	s.Count = cum
	s.Sum = float64(h.sumNS.Load()) / 1e9
	return s
}

// SizeHistogram counts dimensionless sizes (batch lengths, record
// counts) in log-scale buckets. The zero value is ready to use.
type SizeHistogram struct {
	count   atomic.Uint64
	_       pad
	sum     atomic.Uint64
	_       pad
	buckets [sizeBuckets + 1]atomic.Uint64
}

// Observe records one size.
func (h *SizeHistogram) Observe(n uint64) {
	h.buckets[bucketIndex(n, sizeBuckets)].Add(1)
	h.sum.Add(n)
	h.count.Add(1)
}

// Snapshot returns cumulative bucket counts, sum, and count, as for
// DurationHistogram.Snapshot.
func (h *SizeHistogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Les = sizeLes[:]
	s.Cum = make([]uint64, sizeBuckets+1)
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		s.Cum[i] = cum
	}
	s.Count = cum
	s.Sum = float64(h.sum.Load())
	return s
}

// HistSnapshot is a rendered-ready histogram state. Les holds the
// upper bounds of the finite buckets (Cum has one extra trailing
// element: the +Inf bucket, which by construction equals Count).
type HistSnapshot struct {
	Les   []float64
	Cum   []uint64
	Sum   float64
	Count uint64
}

// Upper-bound tables, computed once. Durations render in seconds
// (Prometheus convention) even though the buckets are microsecond
// powers of two.
var (
	durationLes [durationBuckets]float64
	sizeLes     [sizeBuckets]float64
)

func init() {
	for i := range durationLes {
		durationLes[i] = float64(uint64(1)<<i) / 1e6
	}
	for i := range sizeLes {
		sizeLes[i] = float64(uint64(1) << i)
	}
}
