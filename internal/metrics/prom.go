package metrics

import (
	"math"
	"strconv"
)

// Builder appends Prometheus text exposition format (version 0.0.4)
// to a byte slice. All samples for one metric family must be emitted
// under a single Family call — Prometheus rejects exposition where a
// name's samples are split across groups.
//
// Builder is not safe for concurrent use; each scrape builds its own.
type Builder struct {
	b []byte
}

// NewBuilder returns a Builder writing into dst (may be nil).
func NewBuilder(dst []byte) *Builder { return &Builder{b: dst} }

// Bytes returns the accumulated exposition text.
func (w *Builder) Bytes() []byte { return w.b }

// Family emits the # HELP and # TYPE header for a metric family.
// typ is "counter", "gauge", or "histogram".
func (w *Builder) Family(name, help, typ string) {
	w.b = append(w.b, "# HELP "...)
	w.b = append(w.b, name...)
	w.b = append(w.b, ' ')
	w.b = appendEscaped(w.b, help, false)
	w.b = append(w.b, "\n# TYPE "...)
	w.b = append(w.b, name...)
	w.b = append(w.b, ' ')
	w.b = append(w.b, typ...)
	w.b = append(w.b, '\n')
}

// Val emits one sample line: name{labels...} value. Labels are
// alternating key, value pairs.
func (w *Builder) Val(name string, value float64, labels ...string) {
	w.b = append(w.b, name...)
	w.b = appendLabels(w.b, labels, "", 0)
	w.b = append(w.b, ' ')
	w.b = appendFloat(w.b, value)
	w.b = append(w.b, '\n')
}

// Histogram emits the _bucket/_sum/_count series for one histogram
// with the given base labels.
func (w *Builder) Histogram(name string, s HistSnapshot, labels ...string) {
	for i, le := range s.Les {
		w.b = append(w.b, name...)
		w.b = append(w.b, "_bucket"...)
		w.b = appendLabels(w.b, labels, "le", le)
		w.b = append(w.b, ' ')
		w.b = strconv.AppendUint(w.b, s.Cum[i], 10)
		w.b = append(w.b, '\n')
	}
	w.b = append(w.b, name...)
	w.b = append(w.b, "_bucket"...)
	w.b = appendLabels(w.b, labels, "+Inf", 0)
	w.b = append(w.b, ' ')
	w.b = strconv.AppendUint(w.b, s.Count, 10)
	w.b = append(w.b, '\n')

	w.b = append(w.b, name...)
	w.b = append(w.b, "_sum"...)
	w.b = appendLabels(w.b, labels, "", 0)
	w.b = append(w.b, ' ')
	w.b = appendFloat(w.b, s.Sum)
	w.b = append(w.b, '\n')

	w.b = append(w.b, name...)
	w.b = append(w.b, "_count"...)
	w.b = appendLabels(w.b, labels, "", 0)
	w.b = append(w.b, ' ')
	w.b = strconv.AppendUint(w.b, s.Count, 10)
	w.b = append(w.b, '\n')
}

// appendLabels renders {k="v",...}, optionally with a trailing le
// label. leKey is "" (no le), "le" (numeric bound), or "+Inf".
func appendLabels(b []byte, labels []string, leKey string, le float64) []byte {
	if len(labels) == 0 && leKey == "" {
		return b
	}
	b = append(b, '{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, labels[i]...)
		b = append(b, '=', '"')
		b = appendEscaped(b, labels[i+1], true)
		b = append(b, '"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b = append(b, ',')
		}
		b = append(b, `le="`...)
		if leKey == "+Inf" {
			b = append(b, "+Inf"...)
		} else {
			b = appendFloat(b, le)
		}
		b = append(b, '"')
	}
	return append(b, '}')
}

// appendEscaped escapes backslash and newline (plus double-quote in
// label values) per the exposition format.
func appendEscaped(b []byte, s string, labelValue bool) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '"':
			if labelValue {
				b = append(b, '\\', '"')
			} else {
				b = append(b, c)
			}
		default:
			b = append(b, c)
		}
	}
	return b
}

func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
