package wire

import (
	"errors"
	"net/http"

	srv "github.com/irsgo/irs/internal/server"
)

// The serving error vocabulary travels between processes as a short
// machine-readable code plus an HTTP-compatible status. Both transports
// share this table: the HTTP layer carries it as the JSON error envelope's
// code and the response status, the TCP transport as the error message's
// code and status fields — so errors.Is answers identically no matter
// which wire the request took.

// ErrCode maps a serving-core error to its wire code and HTTP status.
func ErrCode(err error) (code string, status int) {
	switch {
	case errors.Is(err, srv.ErrUnknownDataset):
		return "unknown_dataset", http.StatusNotFound
	case errors.Is(err, srv.ErrAmbiguousDataset):
		return "ambiguous_dataset", http.StatusBadRequest
	case errors.Is(err, srv.ErrDuplicateDataset):
		return "duplicate_dataset", http.StatusConflict
	case errors.Is(err, srv.ErrInvalidRange):
		return "invalid_range", http.StatusBadRequest
	case errors.Is(err, srv.ErrInvalidCount):
		return "invalid_count", http.StatusBadRequest
	case errors.Is(err, srv.ErrInvalidWeight):
		return "invalid_weight", http.StatusBadRequest
	case errors.Is(err, srv.ErrNotWeighted):
		return "not_weighted", http.StatusBadRequest
	case errors.Is(err, srv.ErrNotDurable):
		return "not_durable", http.StatusConflict
	case errors.Is(err, srv.ErrEmptyRange):
		return "empty_range", http.StatusUnprocessableEntity
	case errors.Is(err, srv.ErrOverloaded):
		return "overloaded", http.StatusServiceUnavailable
	case errors.Is(err, srv.ErrShuttingDown):
		return "shutting_down", http.StatusServiceUnavailable
	case errors.Is(err, srv.ErrUnavailable):
		return "unavailable", http.StatusBadGateway
	case errors.Is(err, ErrFrame):
		return "bad_request", http.StatusBadRequest
	default:
		return "internal", http.StatusInternalServerError
	}
}

// CodeToErr is the client-side inverse of ErrCode: wire code to the
// sentinel error the code unwraps to. Codes with no sentinel (bad_request,
// internal) are absent.
var CodeToErr = map[string]error{
	"unknown_dataset":   srv.ErrUnknownDataset,
	"ambiguous_dataset": srv.ErrAmbiguousDataset,
	"duplicate_dataset": srv.ErrDuplicateDataset,
	"invalid_range":     srv.ErrInvalidRange,
	"invalid_count":     srv.ErrInvalidCount,
	"invalid_weight":    srv.ErrInvalidWeight,
	"not_weighted":      srv.ErrNotWeighted,
	"not_durable":       srv.ErrNotDurable,
	"empty_range":       srv.ErrEmptyRange,
	"overloaded":        srv.ErrOverloaded,
	"shutting_down":     srv.ErrShuttingDown,
	"unavailable":       srv.ErrUnavailable,
}

// EncodeError appends the TCP transport's error payload: the wire code,
// the HTTP-compatible status, and the human-readable message.
//
//	u16 status | u8 len(code) | code | u16 len(msg) | msg
func EncodeError(b []byte, code string, status int, msg string) []byte {
	if len(msg) > 1<<15 {
		msg = msg[:1<<15]
	}
	b = binAppendU16(b, uint16(status))
	b = append(b, byte(len(code)))
	b = append(b, code...)
	b = binAppendU16(b, uint16(len(msg)))
	b = append(b, msg...)
	return b
}

// DecodeError parses the TCP transport's error payload.
func DecodeError(b []byte) (code string, status int, msg string, err error) {
	r := frameReader{b: b}
	st, err := r.u16()
	if err != nil {
		return "", 0, "", err
	}
	cb, err := r.name()
	if err != nil {
		return "", 0, "", err
	}
	n, err := r.u16()
	if err != nil {
		return "", 0, "", err
	}
	mb, err := r.bytes(int(n))
	if err != nil {
		return "", 0, "", err
	}
	return string(cb), int(st), string(mb), r.done()
}

func binAppendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}
