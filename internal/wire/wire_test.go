package wire

import (
	"testing"
)

// TestBinaryCodecZeroAllocs pins the pooled encode/decode paths: framing a
// sample request, decoding it, framing the response, and decoding that
// back must all run allocation-free once the caller's buffers are warm —
// the property that keeps the binary wire path from re-introducing the
// per-request garbage the serving core eliminated.
func TestBinaryCodecZeroAllocs(t *testing.T) {
	samples := make([]float64, 256)
	for i := range samples {
		samples[i] = float64(i) * 1.5
	}
	frame := make([]byte, 0, 4096)
	dst := make([]float64, 0, 256)
	var err error

	allocs := testing.AllocsPerRun(200, func() {
		frame, err = EncodeSampleRequest(frame[:0], SampleReq{Dataset: "events", Lo: 1, Hi: 2, T: 256})
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("EncodeSampleRequest allocates %.1f/op, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(200, func() {
		frame = EncodeSampleResponse(frame[:0], samples)
	})
	if allocs != 0 {
		t.Errorf("EncodeSampleResponse allocates %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		dst, err = DecodeSampleResponse(frame, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeSampleResponse allocates %.1f/op, want 0", allocs)
	}
	if len(dst) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(dst), len(samples))
	}
	for i := range dst {
		if dst[i] != samples[i] {
			t.Fatalf("sample %d: %v != %v", i, dst[i], samples[i])
		}
	}

	// The sample request decode allocates only its dataset-name string (one
	// small allocation, amortized by nothing — names are a few bytes).
	req := SampleReq{Dataset: "events", Lo: -3, Hi: 9, T: 17}
	frame, err = EncodeSampleRequest(frame[:0], req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSampleRequest(frame)
	if err != nil || got != req {
		t.Fatalf("round trip: %+v, %v (want %+v)", got, err, req)
	}
	allocs = testing.AllocsPerRun(200, func() {
		got, err = DecodeSampleRequest(frame)
	})
	if allocs > 1 {
		t.Errorf("DecodeSampleRequest allocates %.1f/op, want <= 1 (the name string)", allocs)
	}

	// The raw decode keeps the name as a subslice of the frame and must be
	// fully allocation-free — it is the TCP transport's per-request path.
	var raw RawSampleReq
	allocs = testing.AllocsPerRun(200, func() {
		raw, err = DecodeSampleRequestRaw(frame)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeSampleRequestRaw allocates %.1f/op, want 0", allocs)
	}
	if string(raw.Name) != req.Dataset || raw.Lo != req.Lo || raw.Hi != req.Hi || raw.T != req.T {
		t.Fatalf("raw round trip: %+v (want %+v)", raw, req)
	}
}

// TestBinaryInsertCodecRoundTrip covers the insert frames, including the
// negative-T-style edge of empty key/item sections.
func TestBinaryInsertCodecRoundTrip(t *testing.T) {
	for _, req := range []InsertReq{
		{Dataset: "d", Keys: []float64{1, 2, 3}},
		{Dataset: "", Items: []Item{{Key: 4, Weight: 0.5}, {Key: 5, Weight: 2}}},
		{Dataset: "both", Keys: []float64{9}, Items: []Item{{Key: 10, Weight: 7}}},
		{Dataset: "empty"},
	} {
		frame, err := EncodeInsertRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeInsertRequest(frame, nil, nil)
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if got.Dataset != req.Dataset || len(got.Keys) != len(req.Keys) || len(got.Items) != len(req.Items) {
			t.Fatalf("round trip: %+v -> %+v", req, got)
		}
		for i := range req.Keys {
			if got.Keys[i] != req.Keys[i] {
				t.Fatalf("key %d: %v != %v", i, got.Keys[i], req.Keys[i])
			}
		}
		for i := range req.Items {
			if got.Items[i] != req.Items[i] {
				t.Fatalf("item %d: %+v != %+v", i, got.Items[i], req.Items[i])
			}
		}
	}
}

// TestDecodeInsertRequestItems pins the merged decode the handlers use: the
// unweighted keys arrive ahead of the weighted items, in frame order, as
// unit-weight items — matching the apply order of the two-slice decode.
func TestDecodeInsertRequestItems(t *testing.T) {
	frame, err := EncodeInsertRequest(nil, InsertReq{
		Dataset: "w", Keys: []float64{1, 2}, Items: []Item{{Key: 3, Weight: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	name, all, err := DecodeInsertRequestItems(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Item{{Key: 1, Weight: 1}, {Key: 2, Weight: 1}, {Key: 3, Weight: 4}}
	if string(name) != "w" || len(all) != len(want) {
		t.Fatalf("merged decode: name=%q items=%+v", name, all)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("merged item %d: %+v != %+v", i, all[i], want[i])
		}
	}
}

// TestErrorPayloadRoundTrip covers the TCP error payload codec.
func TestErrorPayloadRoundTrip(t *testing.T) {
	b := EncodeError(nil, "empty_range", 422, "no keys in [3, 4]")
	code, status, msg, err := DecodeError(b)
	if err != nil {
		t.Fatal(err)
	}
	if code != "empty_range" || status != 422 || msg != "no keys in [3, 4]" {
		t.Fatalf("round trip: %q %d %q", code, status, msg)
	}
	if _, _, _, err := DecodeError(b[:len(b)-1]); err == nil {
		t.Fatal("truncated error payload decoded without error")
	}
}
