package wire

import (
	"testing"
)

// FuzzBinaryFrame pins the binary frame decoders' one hard obligation: a
// malformed frame — truncated, hostile counts, trailing bytes, any byte
// soup — must produce an error, never a panic or an oversized allocation.
// Frames that do decode must re-encode to the identical bytes (the format
// has exactly one encoding per value), which also exercises the encoders.
func FuzzBinaryFrame(f *testing.F) {
	okSample, err := EncodeSampleRequest(nil, SampleReq{Dataset: "events", Lo: 1, Hi: 2, T: 3})
	if err != nil {
		f.Fatal(err)
	}
	okInsert, err := EncodeInsertRequest(nil, InsertReq{
		Dataset: "w", Keys: []float64{1, 2}, Items: []Item{{Key: 3, Weight: 4}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(okSample)
	f.Add(okInsert)
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x02, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeSampleRequest(data); err == nil {
			re, err := EncodeSampleRequest(nil, req)
			if err != nil {
				t.Fatalf("decoded sample frame fails to re-encode: %v", err)
			}
			if string(re) != string(data) {
				t.Fatalf("sample frame not canonical: %x -> %+v -> %x", data, req, re)
			}
		}
		if req, err := DecodeInsertRequest(data, nil, nil); err == nil {
			re, err := EncodeInsertRequest(nil, req)
			if err != nil {
				t.Fatalf("decoded insert frame fails to re-encode: %v", err)
			}
			if string(re) != string(data) {
				t.Fatalf("insert frame not canonical: %x -> %+v -> %x", data, req, re)
			}
		}
		// Responses and the error payload: decode must never panic; no
		// canonical-form check (any count/payload mismatch is an error by
		// construction).
		_, _ = DecodeSampleResponse(data, nil)
		_, _ = DecodeInsertResponse(data)
		_, _, _, _ = DecodeError(data)
	})
}
