package wire

// The cold-path frames: delete, update, stats, and rangestats. They exist
// so the TCP transport (server/irsnet) can serve the complete client
// surface — the unified client interface in package client requires every
// implementation to answer Delete, Update, and Stats — and so a cluster
// router can run its mass probe (RangeStats) over whichever transport its
// node connections use. None of these are throughput paths: servers may
// answer them on ordinary goroutines and encode through the shared pooled
// buffers.
//
// Frame layout (same conventions as the hot frames):
//
//	delete request      u8 kind=0x03 | u8 len(name) | name | u32 nk | nk x f64 keys
//	delete response     u32 deleted
//	update request      u8 kind=0x04 | u8 len(name) | name | u32 ni | ni x (f64 key, f64 weight)
//	update response     u32 updated
//	stats request       u8 kind=0x05
//	stats response      raw JSON bytes of the stats document
//	rangestats request  u8 kind=0x06 | u8 len(name) | name | f64 lo | f64 hi
//	rangestats response u64 count | f64 mass
//
// The stats response reuses the JSON document rather than a binary layout:
// stats are scraped a few times a second at most, and the document's shape
// (nested, optional persist section) would make a fixed binary layout
// brittle for zero win.

import "math"

// DeleteReq is a decoded delete request frame.
type DeleteReq struct {
	Dataset string
	Keys    []float64
}

// EncodeDeleteRequest appends the delete request frame to b.
func EncodeDeleteRequest(b []byte, req DeleteReq) ([]byte, error) {
	if len(req.Dataset) > 255 {
		return b, frameErr("dataset name longer than 255 bytes")
	}
	b = append(b, FrameDelete, byte(len(req.Dataset)))
	b = append(b, req.Dataset...)
	b = AppendU32(b, uint32(len(req.Keys)))
	for _, k := range req.Keys {
		b = AppendF64(b, k)
	}
	return b, nil
}

// DecodeDeleteRequest parses one delete request frame, appending the keys
// into the caller's (pooled) dst slice. The returned name aliases b.
func DecodeDeleteRequest(b []byte, keys []float64) (name []byte, _ []float64, err error) {
	r := frameReader{b: b}
	kind, err := r.u8()
	if err != nil {
		return nil, keys, err
	}
	if kind != FrameDelete {
		return nil, keys, frameErr("kind 0x%02x on delete, want 0x%02x", kind, FrameDelete)
	}
	if name, err = r.name(); err != nil {
		return nil, keys, err
	}
	nk, err := r.count(8)
	if err != nil {
		return nil, keys, err
	}
	for i := 0; i < nk; i++ {
		v, err := r.f64()
		if err != nil {
			return nil, keys, err
		}
		keys = append(keys, v)
	}
	return name, keys, r.done()
}

// EncodeDeleteResponse appends the delete response frame to b.
func EncodeDeleteResponse(b []byte, deleted int) []byte {
	return AppendU32(b, uint32(deleted))
}

// DecodeDeleteResponse parses a delete response frame.
func DecodeDeleteResponse(b []byte) (int, error) {
	r := frameReader{b: b}
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	return int(n), r.done()
}

// UpdateReq is a decoded update request frame.
type UpdateReq struct {
	Dataset string
	Items   []Item
}

// EncodeUpdateRequest appends the update request frame to b.
func EncodeUpdateRequest(b []byte, req UpdateReq) ([]byte, error) {
	if len(req.Dataset) > 255 {
		return b, frameErr("dataset name longer than 255 bytes")
	}
	b = append(b, FrameUpdate, byte(len(req.Dataset)))
	b = append(b, req.Dataset...)
	b = AppendU32(b, uint32(len(req.Items)))
	for _, it := range req.Items {
		b = AppendF64(b, it.Key)
		b = AppendF64(b, it.Weight)
	}
	return b, nil
}

// DecodeUpdateRequest parses one update request frame, appending the items
// into the caller's (pooled) dst slice. The returned name aliases b.
func DecodeUpdateRequest(b []byte, items []Item) (name []byte, _ []Item, err error) {
	r := frameReader{b: b}
	kind, err := r.u8()
	if err != nil {
		return nil, items, err
	}
	if kind != FrameUpdate {
		return nil, items, frameErr("kind 0x%02x on update, want 0x%02x", kind, FrameUpdate)
	}
	if name, err = r.name(); err != nil {
		return nil, items, err
	}
	ni, err := r.count(16)
	if err != nil {
		return nil, items, err
	}
	for i := 0; i < ni; i++ {
		k, err := r.f64()
		if err != nil {
			return nil, items, err
		}
		w, err := r.f64()
		if err != nil {
			return nil, items, err
		}
		items = append(items, Item{Key: k, Weight: w})
	}
	return name, items, r.done()
}

// EncodeUpdateResponse appends the update response frame to b.
func EncodeUpdateResponse(b []byte, updated int) []byte {
	return AppendU32(b, uint32(updated))
}

// DecodeUpdateResponse parses an update response frame.
func DecodeUpdateResponse(b []byte) (int, error) {
	r := frameReader{b: b}
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	return int(n), r.done()
}

// EncodeStatsRequest appends the (body-less) stats request frame to b.
func EncodeStatsRequest(b []byte) []byte {
	return append(b, FrameStats)
}

// DecodeStatsRequest validates a stats request frame.
func DecodeStatsRequest(b []byte) error {
	r := frameReader{b: b}
	kind, err := r.u8()
	if err != nil {
		return err
	}
	if kind != FrameStats {
		return frameErr("kind 0x%02x on stats, want 0x%02x", kind, FrameStats)
	}
	return r.done()
}

// RangeStatsReq is a decoded rangestats request frame.
type RangeStatsReq struct {
	Dataset string
	Lo, Hi  float64
}

// EncodeRangeStatsRequest appends the rangestats request frame to b.
func EncodeRangeStatsRequest(b []byte, req RangeStatsReq) ([]byte, error) {
	if len(req.Dataset) > 255 {
		return b, frameErr("dataset name longer than 255 bytes")
	}
	b = append(b, FrameRangeStats, byte(len(req.Dataset)))
	b = append(b, req.Dataset...)
	b = AppendF64(b, req.Lo)
	b = AppendF64(b, req.Hi)
	return b, nil
}

// DecodeRangeStatsRequest parses one rangestats request frame. The returned
// name aliases b.
func DecodeRangeStatsRequest(b []byte) (name []byte, lo, hi float64, err error) {
	r := frameReader{b: b}
	kind, err := r.u8()
	if err != nil {
		return nil, 0, 0, err
	}
	if kind != FrameRangeStats {
		return nil, 0, 0, frameErr("kind 0x%02x on rangestats, want 0x%02x", kind, FrameRangeStats)
	}
	if name, err = r.name(); err != nil {
		return nil, 0, 0, err
	}
	if lo, err = r.f64(); err != nil {
		return nil, 0, 0, err
	}
	if hi, err = r.f64(); err != nil {
		return nil, 0, 0, err
	}
	return name, lo, hi, r.done()
}

// EncodeRangeStatsResponse appends the rangestats response frame to b.
func EncodeRangeStatsResponse(b []byte, count int, mass float64) []byte {
	b = AppendU64(b, uint64(count))
	return AppendF64(b, mass)
}

// DecodeRangeStatsResponse parses a rangestats response frame.
func DecodeRangeStatsResponse(b []byte) (count int, mass float64, err error) {
	r := frameReader{b: b}
	if len(r.b) < 8 {
		return 0, 0, frameErr("truncated u64")
	}
	c := uint64(r.b[0]) | uint64(r.b[1])<<8 | uint64(r.b[2])<<16 | uint64(r.b[3])<<24 |
		uint64(r.b[4])<<32 | uint64(r.b[5])<<40 | uint64(r.b[6])<<48 | uint64(r.b[7])<<56
	r.b = r.b[8:]
	m, err := r.f64()
	if err != nil {
		return 0, 0, err
	}
	if c > math.MaxInt {
		return 0, 0, frameErr("count %d overflows int", c)
	}
	return int(c), m, r.done()
}
