// Package wire is the compact binary encoding of the two hot serving
// requests, sample and insert, shared by every transport that speaks it:
// the HTTP handler/client pair (package server, negotiated per request via
// Content-Type: application/x-irs-bin) and the persistent multiplexed TCP
// transport (package server/irsnet, which carries the same frames prefixed
// with a length and a request ID). JSON costs the serving stack more than
// the samplers cost it — float formatting/parsing plus per-request decoder
// allocation — so the hot path frames raw little-endian values instead.
//
// Frame layout (all integers little-endian, all floats IEEE-754 bits
// little-endian; a transport delivers exactly one frame per request,
// trailing bytes are an error):
//
//	sample request   u8 kind=0x01 | u8 len(name) | name | f64 lo | f64 hi | u32 t
//	sample response  u32 n | n x f64 samples
//	insert request   u8 kind=0x02 | u8 len(name) | name | u32 nk | nk x f64 keys
//	                 | u32 ni | ni x (f64 key, f64 weight) items
//	insert response  u32 inserted
//
// Encode and decode run over pooled byte buffers on every transport, so
// the binary paths add no per-request buffer allocations on top of the
// zero-alloc serving core. The Raw decode variants return the dataset name
// as a subslice of the frame instead of a string, so a server hot path can
// intern it without allocating.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	srv "github.com/irsgo/irs/internal/server"
)

// ContentTypeBinary is the negotiated media type of the binary frames on
// the HTTP transport.
const ContentTypeBinary = "application/x-irs-bin"

// Item is one insert element as the serving core stores it.
type Item = srv.Item[float64]

// Frame kind bytes (first byte of every request frame). Sample and insert
// are the hot paths; delete, update, stats, and rangestats are cold-path
// frames (coldframes.go) added so the TCP transport covers the full client
// surface the unified client interface promises.
const (
	FrameSample     = 0x01
	FrameInsert     = 0x02
	FrameDelete     = 0x03
	FrameUpdate     = 0x04
	FrameStats      = 0x05
	FrameRangeStats = 0x06
)

// ErrFrame wraps every decode failure so transports can answer
// bad_request uniformly.
var ErrFrame = errors.New("irs-bin: malformed frame")

func frameErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFrame, fmt.Sprintf(format, args...))
}

// maxRetainedElems bounds the element capacity a pooled buffer keeps:
// one outsized request must not leave multi-megabyte buffers circulating
// in the pools forever (the serving core's flusher scratch applies the
// same bound). Oversized buffers are reset to the pool's seed capacity.
const maxRetainedElems = 1 << 16

// bufPool recycles the encode/decode byte buffers of the binary paths
// (request bodies and frames on every transport).
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuf takes a pooled byte buffer (length 0, warm capacity).
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf recycles b, dropping outsized growth.
func PutBuf(b *[]byte) {
	if cap(*b) > maxRetainedElems*8 {
		*b = make([]byte, 0, 4096)
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// f64Pool recycles the float64 result buffers handlers sample into.
var f64Pool = sync.Pool{New: func() any { s := make([]float64, 0, 512); return &s }}

// GetF64 takes a pooled float64 buffer (length 0, warm capacity).
func GetF64() *[]float64 { return f64Pool.Get().(*[]float64) }

// PutF64 recycles s, dropping outsized growth.
func PutF64(s *[]float64) {
	if cap(*s) > maxRetainedElems {
		*s = make([]float64, 0, 512)
	}
	*s = (*s)[:0]
	f64Pool.Put(s)
}

// itemPool recycles the decoded insert-item buffers.
var itemPool = sync.Pool{New: func() any { s := make([]Item, 0, 256); return &s }}

// GetItems takes a pooled insert-item buffer (length 0, warm capacity).
func GetItems() *[]Item { return itemPool.Get().(*[]Item) }

// PutItems recycles s, dropping outsized growth.
func PutItems(s *[]Item) {
	if cap(*s) > maxRetainedElems {
		*s = make([]Item, 0, 256)
	}
	*s = (*s)[:0]
	itemPool.Put(s)
}

// ReadAllInto reads r to EOF into b's spare capacity, growing as needed,
// and returns the filled slice — the shared grow-and-read loop of the
// HTTP handler's body reader and the HTTP client's response reader.
func ReadAllInto(r io.Reader, b []byte) ([]byte, error) {
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return b, err
		}
	}
}

// AppendU32 / AppendU64 / AppendF64 are the frame-building primitives,
// exported so the TCP transport can build its length/ID envelope with the
// same vocabulary.
func AppendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendU64 appends a little-endian uint64.
func AppendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendF64 appends the IEEE-754 bits of v, little-endian.
func AppendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// frameReader consumes one frame front to back with bounds checking; every
// read reports a typed framing error instead of panicking, which is the
// property the fuzz target pins.
type frameReader struct {
	b []byte
}

func (r *frameReader) u8() (byte, error) {
	if len(r.b) < 1 {
		return 0, frameErr("truncated u8")
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *frameReader) u16() (uint16, error) {
	if len(r.b) < 2 {
		return 0, frameErr("truncated u16")
	}
	v := binary.LittleEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v, nil
}

func (r *frameReader) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, frameErr("truncated u32")
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *frameReader) f64() (float64, error) {
	if len(r.b) < 8 {
		return 0, frameErr("truncated f64")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v, nil
}

// name returns the u8-length-prefixed name as a subslice of the frame —
// valid only while the frame's backing buffer is.
func (r *frameReader) name() ([]byte, error) {
	n, err := r.u8()
	if err != nil {
		return nil, err
	}
	if len(r.b) < int(n) {
		return nil, frameErr("truncated name (%d bytes declared, %d left)", n, len(r.b))
	}
	name := r.b[:n]
	r.b = r.b[n:]
	return name, nil
}

// bytes returns n raw bytes as a subslice of the frame.
func (r *frameReader) bytes(n int) ([]byte, error) {
	if len(r.b) < n {
		return nil, frameErr("truncated payload (%d bytes declared, %d left)", n, len(r.b))
	}
	b := r.b[:n]
	r.b = r.b[n:]
	return b, nil
}

// count reads a u32 element count and checks it against the bytes
// actually remaining at elemSize bytes per element, so a hostile count
// can never drive an oversized allocation.
func (r *frameReader) count(elemSize int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(n)*int64(elemSize) > int64(len(r.b)) {
		return 0, frameErr("count %d exceeds remaining %d bytes", n, len(r.b))
	}
	return int(n), nil
}

func (r *frameReader) done() error {
	if len(r.b) != 0 {
		return frameErr("%d trailing bytes", len(r.b))
	}
	return nil
}

// SampleReq is a decoded sample request frame.
type SampleReq struct {
	Dataset string
	Lo, Hi  float64
	T       int
}

// RawSampleReq is SampleReq with the dataset name still aliasing the frame
// buffer — the zero-alloc decode the TCP reader interns from.
type RawSampleReq struct {
	Name   []byte
	Lo, Hi float64
	T      int
}

// EncodeSampleRequest appends the sample request frame to b.
func EncodeSampleRequest(b []byte, req SampleReq) ([]byte, error) {
	if len(req.Dataset) > 255 {
		return b, frameErr("dataset name longer than 255 bytes")
	}
	if req.T > math.MaxInt32 {
		// Truncating would silently request a different count; the JSON
		// encoding transmits the full int, so reject rather than diverge.
		return b, frameErr("sample count %d exceeds the wire format's int32 range", req.T)
	}
	b = append(b, FrameSample, byte(len(req.Dataset)))
	b = append(b, req.Dataset...)
	b = AppendF64(b, req.Lo)
	b = AppendF64(b, req.Hi)
	// Negative T is transmitted as-is (int32 two's complement) so the
	// server's count validation answers it exactly like the JSON path.
	b = AppendU32(b, uint32(int32(req.T)))
	return b, nil
}

// DecodeSampleRequestRaw parses one sample request frame without
// allocating: the returned name aliases b.
func DecodeSampleRequestRaw(b []byte) (RawSampleReq, error) {
	r := frameReader{b: b}
	var req RawSampleReq
	kind, err := r.u8()
	if err != nil {
		return req, err
	}
	if kind != FrameSample {
		return req, frameErr("kind 0x%02x on sample, want 0x%02x", kind, FrameSample)
	}
	if req.Name, err = r.name(); err != nil {
		return req, err
	}
	if req.Lo, err = r.f64(); err != nil {
		return req, err
	}
	if req.Hi, err = r.f64(); err != nil {
		return req, err
	}
	t, err := r.u32()
	if err != nil {
		return req, err
	}
	req.T = int(int32(t)) // round-trips the client's int32 truncation, sign included
	return req, r.done()
}

// DecodeSampleRequest parses one sample request frame.
func DecodeSampleRequest(b []byte) (SampleReq, error) {
	raw, err := DecodeSampleRequestRaw(b)
	if err != nil {
		return SampleReq{}, err
	}
	return SampleReq{Dataset: string(raw.Name), Lo: raw.Lo, Hi: raw.Hi, T: raw.T}, nil
}

// EncodeSampleResponse appends the sample response frame to b.
func EncodeSampleResponse(b []byte, samples []float64) []byte {
	b = AppendU32(b, uint32(len(samples)))
	for _, s := range samples {
		b = AppendF64(b, s)
	}
	return b
}

// DecodeSampleResponse parses a sample response frame, appending the
// samples to dst. On any decode error dst is returned at its original
// length — a malformed frame must not leave samples behind in a buffer
// the caller reuses.
func DecodeSampleResponse(b []byte, dst []float64) ([]float64, error) {
	base := len(dst)
	r := frameReader{b: b}
	n, err := r.count(8)
	if err != nil {
		return dst, err
	}
	for i := 0; i < n; i++ {
		v, err := r.f64()
		if err != nil {
			return dst[:base], err
		}
		dst = append(dst, v)
	}
	if err := r.done(); err != nil {
		return dst[:base], err
	}
	return dst, nil
}

// InsertReq is a decoded insert request frame. Keys is the unit-weight
// shorthand, Items the weighted form — the same split as the JSON request.
type InsertReq struct {
	Dataset string
	Keys    []float64
	Items   []Item
}

// EncodeInsertRequest appends the insert request frame to b.
func EncodeInsertRequest(b []byte, req InsertReq) ([]byte, error) {
	if len(req.Dataset) > 255 {
		return b, frameErr("dataset name longer than 255 bytes")
	}
	b = append(b, FrameInsert, byte(len(req.Dataset)))
	b = append(b, req.Dataset...)
	b = AppendU32(b, uint32(len(req.Keys)))
	for _, k := range req.Keys {
		b = AppendF64(b, k)
	}
	b = AppendU32(b, uint32(len(req.Items)))
	for _, it := range req.Items {
		b = AppendF64(b, it.Key)
		b = AppendF64(b, it.Weight)
	}
	return b, nil
}

// DecodeInsertRequest parses one insert request frame, appending decoded
// keys/items into the caller's (pooled) dst slices.
func DecodeInsertRequest(b []byte, keys []float64, items []Item) (InsertReq, error) {
	name, keys, items, err := decodeInsert(b, keys, items, false)
	if err != nil {
		return InsertReq{}, err
	}
	return InsertReq{Dataset: string(name), Keys: keys, Items: items}, nil
}

// DecodeInsertRequestItems parses one insert request frame straight into a
// single item slice — keys become unit-weight items ahead of the weighted
// items, the apply order every transport shares — without allocating: the
// returned name aliases b.
func DecodeInsertRequestItems(b []byte, items []Item) (name []byte, _ []Item, err error) {
	name, _, items, err = decodeInsert(b, nil, items, true)
	return name, items, err
}

// decodeInsert is the shared insert-frame walk. With merge set, keys are
// appended to items with unit weight (in frame order, ahead of the
// weighted items) and the keys slice is untouched.
func decodeInsert(b []byte, keys []float64, items []Item, merge bool) ([]byte, []float64, []Item, error) {
	r := frameReader{b: b}
	kind, err := r.u8()
	if err != nil {
		return nil, keys, items, err
	}
	if kind != FrameInsert {
		return nil, keys, items, frameErr("kind 0x%02x on insert, want 0x%02x", kind, FrameInsert)
	}
	name, err := r.name()
	if err != nil {
		return nil, keys, items, err
	}
	nk, err := r.count(8)
	if err != nil {
		return nil, keys, items, err
	}
	for i := 0; i < nk; i++ {
		v, err := r.f64()
		if err != nil {
			return nil, keys, items, err
		}
		if merge {
			items = append(items, Item{Key: v, Weight: 1})
		} else {
			keys = append(keys, v)
		}
	}
	ni, err := r.count(16)
	if err != nil {
		return nil, keys, items, err
	}
	for i := 0; i < ni; i++ {
		k, err := r.f64()
		if err != nil {
			return nil, keys, items, err
		}
		w, err := r.f64()
		if err != nil {
			return nil, keys, items, err
		}
		items = append(items, Item{Key: k, Weight: w})
	}
	return name, keys, items, r.done()
}

// EncodeInsertResponse appends the insert response frame to b.
func EncodeInsertResponse(b []byte, inserted int) []byte {
	return AppendU32(b, uint32(inserted))
}

// DecodeInsertResponse parses an insert response frame.
func DecodeInsertResponse(b []byte) (int, error) {
	r := frameReader{b: b}
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	return int(n), r.done()
}
