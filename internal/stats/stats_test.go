package stats

import (
	"math"
	"testing"

	"github.com/irsgo/irs/internal/xrand"
)

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.999, 3.090232},
		{0.001, -3.090232},
		{0.9999, 3.719016},
	}
	for _, tc := range cases {
		if got := NormalQuantile(tc.p); math.Abs(got-tc.want) > 1e-4 {
			t.Fatalf("NormalQuantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestChiSquareCritical(t *testing.T) {
	// Reference values from standard tables.
	cases := []struct {
		df    int
		alpha float64
		want  float64
	}{
		{1, 0.05, 3.841},
		{10, 0.05, 18.307},
		{10, 0.001, 29.588},
		{100, 0.05, 124.342},
	}
	for _, tc := range cases {
		got := ChiSquareCritical(tc.df, tc.alpha)
		if math.Abs(got-tc.want)/tc.want > 0.02 {
			t.Fatalf("ChiSquareCritical(%d, %v) = %.3f, want ~%.3f", tc.df, tc.alpha, got, tc.want)
		}
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquare([]int{1, 2}, []float64{1}); err != ErrMismatchedLengths {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := ChiSquare([]int{1, 2}, []float64{-0.5, 1.5}); err != ErrInvalidProb {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := ChiSquare([]int{1, 2}, []float64{0.4, 0.4}); err != ErrInvalidProb {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := ChiSquare([]int{0, 0}, []float64{0.5, 0.5}); err != ErrTooFewSamples {
		t.Fatalf("err = %v", err)
	}
}

func TestChiSquareUniformAcceptsUniform(t *testing.T) {
	r := xrand.New(1)
	counts := make([]int, 20)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(20)]++
	}
	res, err := ChiSquareTest(counts, uniformProbs(20), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject {
		t.Fatalf("rejected genuine uniform: stat=%.1f crit=%.1f", res.Stat, res.Critical)
	}
	if res.DF != 19 {
		t.Fatalf("df = %d", res.DF)
	}
}

func TestChiSquareRejectsSkew(t *testing.T) {
	r := xrand.New(2)
	counts := make([]int, 20)
	for i := 0; i < 100000; i++ {
		// Mildly skewed: cell 0 gets double mass.
		v := r.Intn(21)
		if v == 20 {
			v = 0
		}
		counts[v]++
	}
	res, err := ChiSquareTest(counts, uniformProbs(20), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject {
		t.Fatalf("failed to reject skewed distribution: stat=%.1f crit=%.1f", res.Stat, res.Critical)
	}
}

func TestChiSquarePoolsTinyCells(t *testing.T) {
	// One cell with expected < 1 must be pooled, not divided by ~0.
	counts := []int{50, 50, 0}
	probs := []float64{0.4999, 0.4999, 0.0002}
	stat, df, err := ChiSquare(counts, probs)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(stat, 0) || math.IsNaN(stat) {
		t.Fatalf("stat = %v", stat)
	}
	if df != 1 {
		t.Fatalf("df = %d, want 1 after pooling", df)
	}
}

func TestKSUniform(t *testing.T) {
	r := xrand.New(3)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	d, err := KSUniform(xs)
	if err != nil {
		t.Fatal(err)
	}
	if crit := KSCriticalUniform(len(xs), 0.001); d > crit {
		t.Fatalf("KS distance %.4f > critical %.4f for genuine uniform", d, crit)
	}
	// A clearly non-uniform sample must exceed the critical value.
	for i := range xs {
		xs[i] = r.Float64() * 0.5
	}
	d, err = KSUniform(xs)
	if err != nil {
		t.Fatal(err)
	}
	if crit := KSCriticalUniform(len(xs), 0.001); d <= crit {
		t.Fatalf("KS failed to flag half-range sample: %.4f <= %.4f", d, crit)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KSUniform(nil); err != ErrTooFewSamples {
		t.Fatalf("err = %v", err)
	}
}

func TestPearsonCorr(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got, _ := PearsonCorr(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("corr = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got, _ := PearsonCorr(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("corr = %v, want -1", got)
	}
	constant := []float64{3, 3, 3, 3, 3}
	if got, _ := PearsonCorr(xs, constant); got != 0 {
		t.Fatalf("corr vs constant = %v, want 0", got)
	}
	if _, err := PearsonCorr(xs, xs[:2]); err != ErrMismatchedLengths {
		t.Fatalf("err = %v", err)
	}
	if _, err := PearsonCorr(xs[:1], neg[:1]); err != ErrTooFewSamples {
		t.Fatalf("err = %v", err)
	}
}

func TestAutocorrIndependent(t *testing.T) {
	r := xrand.New(4)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	ac, err := Autocorr(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// For iid data the autocorrelation is ~N(0, 1/n): 5 sigma bound.
	if bound := 5 / math.Sqrt(float64(len(xs))); math.Abs(ac) > bound {
		t.Fatalf("lag-1 autocorrelation %v exceeds %v", ac, bound)
	}
	// A strongly autocorrelated series must be detected.
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.9*xs[i-1] + 0.1*r.Float64()
	}
	ac, err = Autocorr(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ac < 0.5 {
		t.Fatalf("failed to detect autocorrelation: %v", ac)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 1000 || s.Min != 0 || s.Max != 999 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Mean-499.5) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.P50-499) > 1.5 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if math.Abs(s.P99-989) > 2 {
		t.Fatalf("p99 = %v", s.P99)
	}
	if _, err := Summarize(nil); err != ErrTooFewSamples {
		t.Fatalf("err = %v", err)
	}
}

func uniformProbs(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return p
}
