// Package stats provides the statistical machinery used to *verify* the
// sampling structures: chi-square goodness-of-fit, Kolmogorov–Smirnov
// distance, correlation estimates, and summary statistics. Experiments E8
// and E9 are built on it, as are many unit tests.
//
// Everything is implemented from scratch on the standard library: the
// normal quantile uses Acklam's rational approximation, and chi-square
// critical values use the Wilson–Hilferty cube-root transform, both
// accurate to far better than the tolerances the tests need.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Errors returned by the test helpers.
var (
	ErrMismatchedLengths = errors.New("stats: counts and probabilities have different lengths")
	ErrInvalidProb       = errors.New("stats: probabilities must be non-negative and sum to ~1")
	ErrTooFewSamples     = errors.New("stats: not enough samples")
)

// NormalQuantile returns the p-quantile of the standard normal
// distribution (Acklam's algorithm, |relative error| < 1.15e-9).
// It panics for p outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile domain is (0,1)")
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// ChiSquareCritical returns the upper critical value of the chi-square
// distribution with df degrees of freedom at significance alpha, via the
// Wilson–Hilferty approximation.
func ChiSquareCritical(df int, alpha float64) float64 {
	if df <= 0 {
		panic("stats: df must be positive")
	}
	switch df {
	case 1:
		// Chi-square with 1 df is Z²: P(Z² > c) = alpha at c = z(1-alpha/2)².
		z := NormalQuantile(1 - alpha/2)
		return z * z
	case 2:
		// Chi-square with 2 df is exponential with mean 2.
		return -2 * math.Log(alpha)
	}
	z := NormalQuantile(1 - alpha)
	k := float64(df)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t
}

// ChiSquare computes the goodness-of-fit statistic of observed counts
// against expected cell probabilities. Cells whose expected count is below
// 1 are pooled into their successor to keep the statistic well behaved.
// Returns the statistic and the effective degrees of freedom.
func ChiSquare(counts []int, probs []float64) (stat float64, df int, err error) {
	if len(counts) != len(probs) {
		return 0, 0, ErrMismatchedLengths
	}
	n := 0
	psum := 0.0
	for i, p := range probs {
		if p < 0 || math.IsNaN(p) {
			return 0, 0, ErrInvalidProb
		}
		n += counts[i]
		psum += p
	}
	if math.Abs(psum-1) > 1e-6 {
		return 0, 0, ErrInvalidProb
	}
	if n == 0 {
		return 0, 0, ErrTooFewSamples
	}
	// Pool cells forward until each pooled cell expects at least one
	// observation; a tiny trailing cell merges backward.
	var pooledCount []int
	var pooledExp []float64
	pendingCount := 0
	pendingExp := 0.0
	for i := range counts {
		pendingCount += counts[i]
		pendingExp += float64(n) * probs[i]
		if pendingExp < 1 && i != len(counts)-1 {
			continue
		}
		pooledCount = append(pooledCount, pendingCount)
		pooledExp = append(pooledExp, pendingExp)
		pendingCount = 0
		pendingExp = 0
	}
	if last := len(pooledExp) - 1; last >= 1 && pooledExp[last] < 1 {
		pooledCount[last-1] += pooledCount[last]
		pooledExp[last-1] += pooledExp[last]
		pooledCount = pooledCount[:last]
		pooledExp = pooledExp[:last]
	}
	cells := 0
	for i, exp := range pooledExp {
		if exp <= 0 {
			continue
		}
		d := float64(pooledCount[i]) - exp
		stat += d * d / exp
		cells++
	}
	if cells < 2 {
		return 0, 0, ErrTooFewSamples
	}
	return stat, cells - 1, nil
}

// ChiSquareUniform is ChiSquare against the uniform distribution over the
// cells.
func ChiSquareUniform(counts []int) (stat float64, df int, err error) {
	probs := make([]float64, len(counts))
	for i := range probs {
		probs[i] = 1 / float64(len(probs))
	}
	return ChiSquare(counts, probs)
}

// GOFResult reports a completed goodness-of-fit test.
type GOFResult struct {
	Stat     float64
	DF       int
	Critical float64
	Alpha    float64
	Reject   bool
}

// ChiSquareTest runs the chi-square test at significance alpha.
func ChiSquareTest(counts []int, probs []float64, alpha float64) (GOFResult, error) {
	stat, df, err := ChiSquare(counts, probs)
	if err != nil {
		return GOFResult{}, err
	}
	crit := ChiSquareCritical(df, alpha)
	return GOFResult{Stat: stat, DF: df, Critical: crit, Alpha: alpha, Reject: stat > crit}, nil
}

// KSUniform returns the Kolmogorov–Smirnov statistic of samples against the
// uniform distribution on [0, 1]. Samples outside [0, 1] make the distance
// saturate toward 1.
func KSUniform(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrTooFewSamples
	}
	xs := append([]float64(nil), samples...)
	sort.Float64s(xs)
	n := float64(len(xs))
	d := 0.0
	for i, x := range xs {
		cdf := math.Min(1, math.Max(0, x))
		if up := float64(i+1)/n - cdf; up > d {
			d = up
		}
		if down := cdf - float64(i)/n; down > d {
			d = down
		}
	}
	return d, nil
}

// KSCriticalUniform returns the asymptotic critical KS distance at
// significance alpha for n samples: c(alpha)/sqrt(n) with
// c(alpha) = sqrt(-ln(alpha/2)/2).
func KSCriticalUniform(n int, alpha float64) float64 {
	if n <= 0 {
		panic("stats: n must be positive")
	}
	return math.Sqrt(-math.Log(alpha/2)/2) / math.Sqrt(float64(n))
}

// PearsonCorr returns the sample Pearson correlation of xs and ys.
func PearsonCorr(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrMismatchedLengths
	}
	if len(xs) < 2 {
		return 0, ErrTooFewSamples
	}
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Autocorr returns the lag-k sample autocorrelation of xs.
func Autocorr(xs []float64, lag int) (float64, error) {
	if lag <= 0 || lag >= len(xs) {
		return 0, ErrTooFewSamples
	}
	return PearsonCorr(xs[:len(xs)-lag], xs[lag:])
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                   int
	Mean, Std           float64
	Min, Max            float64
	P50, P90, P99, P999 float64
}

// Summarize computes descriptive statistics. It sorts a copy of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrTooFewSamples
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum, sumSq := 0.0, 0.0
	for _, v := range s {
		sum += v
		sumSq += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	q := func(p float64) float64 {
		i := int(p * (n - 1))
		return s[i]
	}
	return Summary{
		N: len(s), Mean: mean, Std: math.Sqrt(variance),
		Min: s[0], Max: s[len(s)-1],
		P50: q(0.50), P90: q(0.90), P99: q(0.99), P999: q(0.999),
	}, nil
}
