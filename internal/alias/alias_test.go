package alias

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/irsgo/irs/internal/xrand"
)

func TestErrors(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
		err     error
	}{
		{"empty", nil, ErrEmpty},
		{"negative", []float64{1, -1}, ErrInvalidWeight},
		{"nan", []float64{1, math.NaN()}, ErrInvalidWeight},
		{"inf", []float64{1, math.Inf(1)}, ErrInvalidWeight},
		{"all zero", []float64{0, 0, 0}, ErrZeroTotal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.weights); err != tc.err {
				t.Fatalf("New(%v) error = %v, want %v", tc.weights, err, tc.err)
			}
		})
	}
}

func TestSingleOutcome(t *testing.T) {
	tbl, err := New([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(1)
	for i := 0; i < 100; i++ {
		if got := tbl.Draw(r); got != 0 {
			t.Fatalf("Draw = %d, want 0", got)
		}
	}
	if tbl.Total() != 3.5 {
		t.Fatalf("Total = %v", tbl.Total())
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestZeroWeightNeverDrawn(t *testing.T) {
	weights := []float64{0, 5, 0, 1, 0, 0, 2, 0}
	tbl, err := New(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(2)
	for i := 0; i < 100000; i++ {
		idx := tbl.Draw(r)
		if weights[idx] == 0 {
			t.Fatalf("drew zero-weight index %d", idx)
		}
	}
}

// chiSquare computes the statistic of observed draws against the weight
// distribution.
func chiSquare(counts []int, weights []float64, draws int) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	stat := 0.0
	for i, c := range counts {
		exp := float64(draws) * weights[i] / total
		if exp == 0 {
			continue
		}
		d := float64(c) - exp
		stat += d * d / exp
	}
	return stat
}

func TestDistributionMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 10, 0.5}
	tbl, err := New(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	const draws = 500000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[tbl.Draw(r)]++
	}
	// 5 degrees of freedom; 20.5 is the 0.001 critical value.
	if stat := chiSquare(counts, weights, draws); stat > 20.5 {
		t.Fatalf("chi-square = %.2f; counts = %v", stat, counts)
	}
}

func TestUniformWeights(t *testing.T) {
	weights := make([]float64, 64)
	for i := range weights {
		weights[i] = 1
	}
	tbl, err := New(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(4)
	const draws = 640000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[tbl.Draw(r)]++
	}
	// 63 df; 0.001 critical value ~ 103.4.
	if stat := chiSquare(counts, weights, draws); stat > 103.4 {
		t.Fatalf("chi-square = %.2f", stat)
	}
}

func TestExtremeRatio(t *testing.T) {
	// A 1e12 ratio between weights: the heavy item should dominate and the
	// light one should still appear with roughly the right frequency.
	weights := []float64{1, 1e12}
	tbl, err := New(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(5)
	light := 0
	const draws = 1000000
	for i := 0; i < draws; i++ {
		if tbl.Draw(r) == 0 {
			light++
		}
	}
	// Expected count is draws/1e12 ~ 0: seeing more than a handful means the
	// table is broken.
	if light > 5 {
		t.Fatalf("light item drawn %d times, expected ~0", light)
	}
}

// TestPropertyDrawInRangeAndPositive is a property test: for random weight
// vectors, every draw is in range and lands on a positive-weight index.
func TestPropertyDrawInRangeAndPositive(t *testing.T) {
	r := xrand.New(6)
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		anyPositive := false
		for i, v := range raw {
			weights[i] = float64(v)
			if v > 0 {
				anyPositive = true
			}
		}
		if !anyPositive {
			weights[0] = 1
		}
		tbl, err := New(weights)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			idx := tbl.Draw(r)
			if idx < 0 || idx >= len(weights) || weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderReuse(t *testing.T) {
	var b Builder
	var tbl Table
	r := xrand.New(7)
	// Build repeatedly with different sizes; each build must be correct.
	for round := 0; round < 50; round++ {
		n := 1 + round%17
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(i + 1)
		}
		if err := b.Build(&tbl, weights); err != nil {
			t.Fatal(err)
		}
		if tbl.Len() != n {
			t.Fatalf("Len = %d, want %d", tbl.Len(), n)
		}
		for i := 0; i < 100; i++ {
			idx := tbl.Draw(r)
			if idx < 0 || idx >= n {
				t.Fatalf("draw %d out of range [0,%d)", idx, n)
			}
		}
	}
}

func TestBuilderReuseAllocFree(t *testing.T) {
	var b Builder
	var tbl Table
	weights := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if err := b.Build(&tbl, weights); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := b.Build(&tbl, weights); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("rebuild allocated %v times per run, want 0", allocs)
	}
}

func BenchmarkBuild1e4(b *testing.B) {
	weights := make([]float64, 10000)
	r := xrand.New(8)
	for i := range weights {
		weights[i] = r.Float64() + 0.01
	}
	var builder Builder
	var tbl Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := builder.Build(&tbl, weights); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDraw(b *testing.B) {
	weights := make([]float64, 10000)
	r := xrand.New(9)
	for i := range weights {
		weights[i] = r.Float64() + 0.01
	}
	tbl, err := New(weights)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += tbl.Draw(r)
	}
	_ = sink
}
