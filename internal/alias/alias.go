// Package alias implements Walker's alias method for sampling from a fixed
// discrete distribution in worst-case O(1) time per draw after an O(n) build.
//
// The alias method is the classical tool the range-sampling literature
// builds on (Walker 1974, cited as the starting point by Hu–Qiao–Tao):
// given n non-negative weights it produces a table such that index i is
// drawn with probability w[i] / Σw. This package provides an immutable
// Table plus a reusable Builder for the per-query "top level" distributions
// the weighted samplers construct on the fly without allocating.
package alias

import (
	"errors"
	"math"

	"github.com/irsgo/irs/internal/xrand"
)

// Errors returned by table construction.
var (
	ErrEmpty         = errors.New("alias: no weights")
	ErrInvalidWeight = errors.New("alias: weight is negative, NaN, or infinite")
	ErrZeroTotal     = errors.New("alias: total weight is zero")
)

// Table is an immutable alias table. Draws take worst-case O(1) time.
// A Table is safe for concurrent use by multiple goroutines as long as each
// uses its own RNG.
type Table struct {
	prob  []float64 // acceptance threshold per column, scaled to [0, 1]
	alias []int32   // fallback index per column
	total float64   // sum of input weights
}

// New builds an alias table for the given weights. Weights must be
// non-negative and finite with a positive sum. The input slice is not
// retained.
func New(weights []float64) (*Table, error) {
	t := &Table{}
	b := Builder{}
	if err := b.Build(t, weights); err != nil {
		return nil, err
	}
	return t, nil
}

// Len returns the number of outcomes.
func (t *Table) Len() int { return len(t.prob) }

// Total returns the sum of the weights the table was built from.
func (t *Table) Total() float64 { return t.total }

// Draw returns an index in [0, Len()) with probability proportional to the
// weight it was built with. Outcomes with zero weight are never returned.
func (t *Table) Draw(r *xrand.RNG) int {
	i := int(r.Uint64n(uint64(len(t.prob))))
	if r.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// Builder constructs alias tables reusing internal scratch space across
// builds. It exists because the weighted range samplers build one small
// table per query; reusing the Builder keeps queries allocation-free after
// warm-up.
type Builder struct {
	small []int32
	large []int32
}

// Build fills dst with the alias table for weights, reusing dst's backing
// arrays when they are large enough. It implements Vose's O(n) algorithm.
func (b *Builder) Build(dst *Table, weights []float64) error {
	n := len(weights)
	if n == 0 {
		return ErrEmpty
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return ErrInvalidWeight
		}
		total += w
	}
	if total <= 0 || math.IsInf(total, 0) {
		if math.IsInf(total, 0) {
			return ErrInvalidWeight
		}
		return ErrZeroTotal
	}

	dst.total = total
	if cap(dst.prob) < n {
		dst.prob = make([]float64, n)
		dst.alias = make([]int32, n)
	} else {
		dst.prob = dst.prob[:n]
		dst.alias = dst.alias[:n]
	}
	if cap(b.small) < n {
		b.small = make([]int32, 0, n)
		b.large = make([]int32, 0, n)
	}
	small := b.small[:0]
	large := b.large[:0]

	// Scale weights so the average column holds exactly probability 1.
	scale := float64(n) / total
	fallback := int32(0)
	maxW := weights[0]
	for i, w := range weights {
		p := w * scale
		dst.prob[i] = p
		dst.alias[i] = int32(i)
		if w > maxW {
			maxW = w
			fallback = int32(i)
		}
		if p < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}

	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		dst.alias[s] = l
		// Column s donates its deficit (1 - prob[s]) from column l.
		dst.prob[l] = (dst.prob[l] + dst.prob[s]) - 1
		if dst.prob[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Residual columns are full (within floating-point error). A column can
	// only be left over with probability far below 1 if rounding starved the
	// large stack while a zero-weight column was still queued; such a column
	// must never be returned, so point it at the heaviest outcome instead of
	// rounding it up to 1.
	for _, i := range large {
		dst.prob[i] = 1
	}
	for _, i := range small {
		if dst.prob[i] < 0.5 {
			dst.alias[i] = fallback
			continue
		}
		dst.prob[i] = 1
	}
	b.small = small[:0]
	b.large = large[:0]
	return nil
}
