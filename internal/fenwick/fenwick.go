// Package fenwick implements binary indexed (Fenwick) trees over integer
// counts and float64 weights, including the inverse-CDF descent used for
// weighted sampling in O(log n) time per draw.
//
// The count tree indexes the group directory of the dynamic range-sampling
// structure (range counting in O(log n)); the weight tree is the linear-space
// baseline weighted sampler that the weighted extension benchmarks against.
package fenwick

import "math/bits"

// Counts is a Fenwick tree over n integer-valued slots, all initially zero.
type Counts struct {
	tree  []int // 1-indexed
	total int
}

// NewCounts returns a Counts tree over n slots.
func NewCounts(n int) *Counts {
	return &Counts{tree: make([]int, n+1)}
}

// NewCountsFrom builds a tree initialized to vals in O(n).
func NewCountsFrom(vals []int) *Counts {
	c := &Counts{tree: make([]int, len(vals)+1)}
	for i, v := range vals {
		c.tree[i+1] += v
		c.total += v
		if p := i + 1 + ((i + 1) & -(i + 1)); p < len(c.tree) {
			c.tree[p] += c.tree[i+1]
		}
	}
	return c
}

// Len returns the number of slots.
func (c *Counts) Len() int { return len(c.tree) - 1 }

// Total returns the sum over all slots.
func (c *Counts) Total() int { return c.total }

// Add adds delta to slot i (0-based).
func (c *Counts) Add(i, delta int) {
	c.total += delta
	for i++; i < len(c.tree); i += i & -i {
		c.tree[i] += delta
	}
}

// PrefixSum returns the sum of slots [0, i). PrefixSum(Len()) is the total.
func (c *Counts) PrefixSum(i int) int {
	s := 0
	for ; i > 0; i -= i & -i {
		s += c.tree[i]
	}
	return s
}

// RangeSum returns the sum of slots [lo, hi).
func (c *Counts) RangeSum(lo, hi int) int {
	if hi <= lo {
		return 0
	}
	return c.PrefixSum(hi) - c.PrefixSum(lo)
}

// Select returns the smallest slot index i such that the sum of slots
// [0, i] exceeds k; equivalently, with every slot value interpreted as a
// multiplicity, it returns the slot containing the k-th (0-based) unit.
// It requires 0 <= k < Total() and runs in O(log n).
func (c *Counts) Select(k int) int {
	if k < 0 || k >= c.total {
		panic("fenwick: Select index out of range")
	}
	pos := 0
	// Highest power of two <= len(tree)-1.
	step := 1 << (bits.Len(uint(len(c.tree)-1)) - 1)
	for ; step > 0; step >>= 1 {
		next := pos + step
		if next < len(c.tree) && c.tree[next] <= k {
			pos = next
			k -= c.tree[next]
		}
	}
	return pos // 0-based slot
}

// Weights is a Fenwick tree over n float64-valued slots.
type Weights struct {
	tree []float64
	vals []float64
}

// NewWeights builds a weight tree initialized to vals in O(n). Weights must
// be non-negative; enforcing that is the caller's job (the samplers validate
// on their public constructors).
func NewWeights(vals []float64) *Weights {
	w := &Weights{
		tree: make([]float64, len(vals)+1),
		vals: append([]float64(nil), vals...),
	}
	for i, v := range vals {
		w.tree[i+1] += v
		if p := i + 1 + ((i + 1) & -(i + 1)); p < len(w.tree) {
			w.tree[p] += w.tree[i+1]
		}
	}
	return w
}

// Len returns the number of slots.
func (w *Weights) Len() int { return len(w.tree) - 1 }

// Get returns the current value of slot i.
func (w *Weights) Get(i int) float64 { return w.vals[i] }

// Set changes slot i to v.
func (w *Weights) Set(i int, v float64) {
	delta := v - w.vals[i]
	w.vals[i] = v
	for j := i + 1; j < len(w.tree); j += j & -j {
		w.tree[j] += delta
	}
}

// PrefixSum returns the sum of slots [0, i).
func (w *Weights) PrefixSum(i int) float64 {
	s := 0.0
	for ; i > 0; i -= i & -i {
		s += w.tree[i]
	}
	return s
}

// RangeSum returns the sum of slots [lo, hi).
func (w *Weights) RangeSum(lo, hi int) float64 {
	if hi <= lo {
		return 0
	}
	return w.PrefixSum(hi) - w.PrefixSum(lo)
}

// Total returns the sum over all slots.
func (w *Weights) Total() float64 { return w.PrefixSum(w.Len()) }

// Select returns the smallest slot i whose cumulative weight exceeds x,
// i.e. the inverse CDF evaluated at x. For x uniform in [0, Total()) the
// returned slot is distributed proportionally to the slot weights.
// Out-of-range x is clamped to the nearest valid slot, which protects the
// samplers against floating-point drift at the boundaries.
func (w *Weights) Select(x float64) int {
	pos := 0
	step := 1 << (bits.Len(uint(len(w.tree)-1)) - 1)
	for ; step > 0; step >>= 1 {
		next := pos + step
		if next < len(w.tree) && w.tree[next] <= x {
			pos = next
			x -= w.tree[next]
		}
	}
	if pos >= w.Len() {
		pos = w.Len() - 1
	}
	return pos
}
