package fenwick

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/irsgo/irs/internal/xrand"
)

func TestCountsBasic(t *testing.T) {
	c := NewCounts(10)
	if c.Len() != 10 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.Add(0, 1)
	c.Add(5, 3)
	c.Add(9, 2)
	if got := c.Total(); got != 6 {
		t.Fatalf("Total = %d", got)
	}
	if got := c.PrefixSum(0); got != 0 {
		t.Fatalf("PrefixSum(0) = %d", got)
	}
	if got := c.PrefixSum(1); got != 1 {
		t.Fatalf("PrefixSum(1) = %d", got)
	}
	if got := c.PrefixSum(6); got != 4 {
		t.Fatalf("PrefixSum(6) = %d", got)
	}
	if got := c.PrefixSum(10); got != 6 {
		t.Fatalf("PrefixSum(10) = %d", got)
	}
	if got := c.RangeSum(1, 6); got != 3 {
		t.Fatalf("RangeSum(1,6) = %d", got)
	}
	if got := c.RangeSum(6, 6); got != 0 {
		t.Fatalf("RangeSum(6,6) = %d", got)
	}
	if got := c.RangeSum(6, 1); got != 0 {
		t.Fatalf("RangeSum(6,1) = %d", got)
	}
}

func TestCountsFrom(t *testing.T) {
	vals := []int{3, 0, 1, 4, 1, 5, 9, 2, 6}
	c := NewCountsFrom(vals)
	sum := 0
	for i, v := range vals {
		if got := c.PrefixSum(i); got != sum {
			t.Fatalf("PrefixSum(%d) = %d, want %d", i, got, sum)
		}
		sum += v
	}
	if c.Total() != sum {
		t.Fatalf("Total = %d, want %d", c.Total(), sum)
	}
}

// TestCountsAgainstNaive cross-checks a randomized op sequence against a
// plain slice model.
func TestCountsAgainstNaive(t *testing.T) {
	r := xrand.New(1)
	const n = 37
	c := NewCounts(n)
	model := make([]int, n)
	for op := 0; op < 5000; op++ {
		i := r.Intn(n)
		delta := r.IntRange(0, 4)
		c.Add(i, delta)
		model[i] += delta
		j := r.Intn(n + 1)
		want := 0
		for k := 0; k < j; k++ {
			want += model[k]
		}
		if got := c.PrefixSum(j); got != want {
			t.Fatalf("op %d: PrefixSum(%d) = %d, want %d", op, j, got, want)
		}
	}
}

func TestCountsSelect(t *testing.T) {
	vals := []int{0, 3, 0, 2, 1, 0, 4}
	c := NewCountsFrom(vals)
	// Units 0..2 in slot 1, 3..4 in slot 3, 5 in slot 4, 6..9 in slot 6.
	want := []int{1, 1, 1, 3, 3, 4, 6, 6, 6, 6}
	for k, w := range want {
		if got := c.Select(k); got != w {
			t.Fatalf("Select(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestCountsSelectPanics(t *testing.T) {
	c := NewCountsFrom([]int{1, 2})
	for _, k := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Select(%d) did not panic", k)
				}
			}()
			c.Select(k)
		}()
	}
}

// TestCountsSelectProperty: Select(k) must return the slot holding the k-th
// unit for random count vectors.
func TestCountsSelectProperty(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int, len(raw))
		total := 0
		for i, v := range raw {
			vals[i] = int(v % 5)
			total += vals[i]
		}
		if total == 0 {
			return true
		}
		c := NewCountsFrom(vals)
		k := 0
		for slot, v := range vals {
			for u := 0; u < v; u++ {
				if c.Select(k) != slot {
					return false
				}
				k++
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightsBasic(t *testing.T) {
	vals := []float64{1.5, 0, 2.5, 4}
	w := NewWeights(vals)
	if w.Len() != 4 {
		t.Fatalf("Len = %d", w.Len())
	}
	if got := w.Total(); math.Abs(got-8) > 1e-12 {
		t.Fatalf("Total = %v", got)
	}
	if got := w.PrefixSum(2); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("PrefixSum(2) = %v", got)
	}
	if got := w.RangeSum(1, 4); math.Abs(got-6.5) > 1e-12 {
		t.Fatalf("RangeSum(1,4) = %v", got)
	}
	if got := w.Get(2); got != 2.5 {
		t.Fatalf("Get(2) = %v", got)
	}
	w.Set(2, 10)
	if got := w.Get(2); got != 10 {
		t.Fatalf("Get(2) after Set = %v", got)
	}
	if got := w.Total(); math.Abs(got-15.5) > 1e-12 {
		t.Fatalf("Total after Set = %v", got)
	}
}

func TestWeightsSelect(t *testing.T) {
	w := NewWeights([]float64{2, 0, 3, 5})
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {1.99, 0}, {2.0, 2}, {4.99, 2}, {5.0, 3}, {9.99, 3},
	}
	for _, tc := range cases {
		if got := w.Select(tc.x); got != tc.want {
			t.Fatalf("Select(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
	// Out-of-range x clamps to the last slot rather than panicking.
	if got := w.Select(1e9); got != 3 {
		t.Fatalf("Select(1e9) = %d, want 3", got)
	}
}

func TestWeightsSelectSkipsZero(t *testing.T) {
	w := NewWeights([]float64{0, 1, 0, 0, 1, 0})
	r := xrand.New(2)
	for i := 0; i < 20000; i++ {
		x := r.Float64() * w.Total()
		got := w.Select(x)
		if got != 1 && got != 4 {
			t.Fatalf("Select(%v) = %d landed on a zero-weight slot", x, got)
		}
	}
}

func TestWeightsSamplingDistribution(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	w := NewWeights(vals)
	r := xrand.New(3)
	const draws = 400000
	counts := make([]int, len(vals))
	for i := 0; i < draws; i++ {
		counts[w.Select(r.Float64()*w.Total())]++
	}
	for i, v := range vals {
		got := float64(counts[i]) / draws
		want := v / 10
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("slot %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestWeightsAgainstNaive(t *testing.T) {
	r := xrand.New(4)
	const n = 23
	vals := make([]float64, n)
	w := NewWeights(vals)
	for op := 0; op < 3000; op++ {
		i := r.Intn(n)
		v := r.Float64() * 10
		w.Set(i, v)
		vals[i] = v
		j := r.Intn(n + 1)
		want := 0.0
		for k := 0; k < j; k++ {
			want += vals[k]
		}
		if got := w.PrefixSum(j); math.Abs(got-want) > 1e-9 {
			t.Fatalf("op %d: PrefixSum(%d) = %v, want %v", op, j, got, want)
		}
	}
}

func BenchmarkCountsAdd(b *testing.B) {
	c := NewCounts(1 << 20)
	r := xrand.New(5)
	idx := make([]int, 4096)
	for i := range idx {
		idx[i] = r.Intn(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(idx[i&4095], 1)
	}
}

func BenchmarkWeightsSelect(b *testing.B) {
	n := 1 << 20
	vals := make([]float64, n)
	r := xrand.New(6)
	for i := range vals {
		vals[i] = r.Float64()
	}
	w := NewWeights(vals)
	total := w.Total()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += w.Select(r.Float64() * total)
	}
	_ = sink
}
