package bench

import (
	"fmt"

	"github.com/irsgo/irs/internal/chunks"
	"github.com/irsgo/irs/internal/stats"
	"github.com/irsgo/irs/internal/workload"
	"github.com/irsgo/irs/internal/xrand"
)

// runE14 ablates the chunk parameter s: the design sets s = Θ(log n)
// because smaller chunks inflate directory sizes (more groups, more
// directory churn) while larger chunks inflate the O(s) per-update memmove
// and the O(s) short-range collection. The sweep pins s and measures both
// sides of the trade-off.
func runE14(cfg Config) ([]*Table, error) {
	n := cfg.scaled(1_000_000, 100_000)
	const t = 64
	rng := xrand.New(cfg.Seed + 40)
	keys := workload.Keys(workload.Uniform, n, rng)
	ranges := workload.RangesWithSelectivity(keys, querySel, 64, rng)
	tab := &Table{
		Title:   fmt.Sprintf("E14 — Ablation: chunk parameter s (default is ~log2 n = %d), n=%s, t=%d", chooseSLike(n), fmtCount(n), t),
		Columns: []string{"s", "query ns", "update ns", "bytes/key", "groups"},
		Notes: []string{"Design claim (DESIGN.md): s = Θ(log n) keeps the O(s) update memmove and the",
			"O(s) short-range collection bounded while keeping the directory small. The",
			"sweep shows the binding constraint is small s (directory churn explodes the",
			"update cost); the memmove term stays cheap far beyond log n on modern CPUs,",
			"so the Θ(log n) default is the asymptotically safe point on a wide plateau."},
	}
	for _, s := range []int{4, 8, 16, 32, 64, 128, 256} {
		l, err := chunks.NewFromSortedWithS(keys, s)
		if err != nil {
			return nil, err
		}
		buf := make([]float64, 0, t)
		qNS := queryNS(cfg, ranges, func(r workload.Range) {
			buf = buf[:0]
			buf, _ = l.SampleAppend(buf, r.Lo, r.Hi, t, rng)
		})
		uNS := measure(cfg.minDur(), func(batch int) {
			for i := 0; i < batch; i++ {
				k := keys[i%len(keys)]
				if i%2 == 0 {
					l.Insert(k + 0.5)
				} else {
					l.Delete(k + 0.5)
				}
			}
		})
		st := l.GeometryStats()
		tab.AddRow(fmt.Sprintf("%d", s), fmtNS(qNS), fmtNS(uNS),
			fmt.Sprintf("%.1f", float64(l.Footprint())/float64(n)),
			fmtCount(st.Groups))
	}
	return []*Table{tab}, nil
}

func chooseSLike(n int) int {
	s := 0
	for v := uint(n); v > 0; v >>= 1 {
		s++
	}
	if s < 8 {
		s = 8
	}
	return s
}

// runE15 ablates the short-range collect fast path: without it, a range
// inside a single chunk is sampled by rejection with acceptance Θ(|range|/s),
// blowing up the probe count exactly as the design analysis predicts.
func runE15(cfg Config) ([]*Table, error) {
	n := cfg.scaled(1_000_000, 100_000)
	rng := xrand.New(cfg.Seed + 41)
	keys := workload.Keys(workload.Uniform, n, rng)
	tab := &Table{
		Title:   fmt.Sprintf("E15 — Ablation: short-range collect fast path, n=%s", fmtCount(n)),
		Columns: []string{"|range| keys", "probes/sample (with)", "probes/sample (without)", "query ns (with)", "query ns (without)"},
		Notes: []string{"Design claim: the collect path bounds tiny-range queries at O(log n + t);",
			"pure rejection degrades as the range shrinks below a chunk (acceptance",
			"Θ(|range|/s)). Large ranges are unaffected by the knob."},
	}
	build := func(noCollect bool) *chunks.List[float64] {
		l, err := chunks.NewFromSorted(keys)
		if err != nil {
			panic(err)
		}
		l.SetCollectFallback(!noCollect)
		return l
	}
	withFP := build(false)
	withoutFP := build(true)
	const t = 64
	for _, span := range []int{2, 8, 32, 128, 10_000} {
		// Build ranges containing exactly `span` keys.
		starts := make([]int, 32)
		for i := range starts {
			starts[i] = rng.Intn(n - span)
		}
		mkRanges := make([]workload.Range, len(starts))
		for i, st := range starts {
			mkRanges[i] = workload.Range{Lo: keys[st], Hi: keys[st+span-1]}
		}
		probeAvg := func(l *chunks.List[float64]) float64 {
			total, draws := 0, 0
			for _, r := range mkRanges {
				run := l.NewRun(r.Lo, r.Hi)
				for i := 0; i < 400; i++ {
					_, p := run.SampleProbes(rng)
					total += p
					draws++
				}
			}
			return float64(total) / float64(draws)
		}
		buf := make([]float64, 0, t)
		q := func(l *chunks.List[float64]) float64 {
			return queryNS(cfg, mkRanges, func(r workload.Range) {
				buf = buf[:0]
				buf, _ = l.SampleAppend(buf, r.Lo, r.Hi, t, rng)
			})
		}
		tab.AddRow(fmt.Sprintf("%d", span),
			fmt.Sprintf("%.2f", probeAvg(withFP)),
			fmt.Sprintf("%.2f", probeAvg(withoutFP)),
			fmtNS(q(withFP)), fmtNS(q(withoutFP)))
	}
	// Sanity: both variants stay exactly uniform (the knob may only change
	// speed, never the distribution).
	span := 16
	st := rng.Intn(n - span)
	lo, hi := keys[st], keys[st+span-1]
	for _, l := range []*chunks.List[float64]{withFP, withoutFP} {
		counts := make([]int, span)
		run := l.NewRun(lo, hi)
		const draws = 64000
		for i := 0; i < draws; i++ {
			v := run.Sample(rng)
			// Rank within the range: linear probe over the small span.
			for j := 0; j < span; j++ {
				if keys[st+j] == v {
					counts[j]++
					break
				}
			}
		}
		res, err := stats.ChiSquareTest(counts, uniformProbs(span), 0.001)
		if err != nil {
			return nil, err
		}
		if res.Reject {
			tab.Notes = append(tab.Notes, "WARNING: uniformity FAILed under ablation")
		}
	}
	tab.Notes = append(tab.Notes, "Uniformity chi-square passes with the fast path on and off (checked at run time).")
	return []*Table{tab}, nil
}

func uniformProbs(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return p
}
