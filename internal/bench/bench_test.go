package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "bbbb"},
		Notes:   []string{"note line"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"### demo", "| a   | bbbb |", "| 333 | 4    |", "note line"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureCountsIterations(t *testing.T) {
	total := 0
	ns := measure(5*time.Millisecond, func(batch int) {
		for i := 0; i < batch; i++ {
			total++
			time.Sleep(10 * time.Microsecond)
		}
	})
	if ns < 5_000 { // must be at least the sleep per iteration
		t.Fatalf("ns/op = %v implausible", ns)
	}
	if total == 0 {
		t.Fatal("f never ran")
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("got %d experiments", len(all))
	}
	for i, e := range all {
		if numOf(e.ID) != i+1 {
			t.Fatalf("experiment %d has id %s", i, e.ID)
		}
	}
	if _, ok := ByID("e7"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("bogus id found")
	}
}

// TestAllExperimentsQuick executes every experiment in quick mode: the
// end-to-end integration test of the harness. It verifies that every table
// renders with consistent row widths and that every statistical verdict
// passes.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take seconds; skipped with -short")
	}
	cfg := Config{Quick: true, Seed: 42}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if tab.Title == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
					t.Fatalf("degenerate table %+v", tab)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Fatalf("row width %d != %d columns in %s", len(row), len(tab.Columns), tab.Title)
					}
				}
				var buf bytes.Buffer
				tab.Fprint(&buf)
				if strings.Contains(buf.String(), "FAIL") {
					t.Fatalf("experiment reported FAIL:\n%s", buf.String())
				}
			}
		})
	}
}
