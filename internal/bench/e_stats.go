package bench

import (
	"fmt"
	"math"
	"slices"

	"github.com/irsgo/irs/internal/core"
	"github.com/irsgo/irs/internal/stats"
	"github.com/irsgo/irs/internal/workload"
	"github.com/irsgo/irs/internal/xrand"
)

// distinctKeys draws keys from dist and removes duplicates so ranks are
// well defined for the statistical experiments.
func distinctKeys(dist workload.Distribution, n int, rng *xrand.RNG) []float64 {
	keys := workload.Keys(dist, n+n/8, rng)
	keys = slices.Compact(keys)
	if len(keys) > n {
		keys = keys[:n]
	}
	return keys
}

func passFail(reject bool) string {
	if reject {
		return "FAIL"
	}
	return "pass"
}

func runE8(cfg Config) ([]*Table, error) {
	n := cfg.scaled(200_000, 50_000)
	draws := cfg.scaled(400_000, 100_000)
	const buckets = 64
	tab := &Table{
		Title:   fmt.Sprintf("E8 — Uniformity: chi-square on %s samples over %d rank buckets, alpha=0.001", fmtCount(draws), buckets),
		Columns: []string{"distribution", "structure", "chi2", "df", "critical", "verdict"},
		Notes: []string{"Claim: samples are exactly uniform over the range contents regardless of the key",
			"distribution (the property distribution-dependent heuristics lack)."},
	}
	for _, dist := range workload.Distributions() {
		rng := xrand.New(cfg.Seed + 20)
		keys := distinctKeys(dist, n, rng)
		static, err := core.NewStaticFromSorted(keys)
		if err != nil {
			return nil, err
		}
		dyn, err := core.NewDynamicFromSorted(keys)
		if err != nil {
			return nil, err
		}
		// One wide range: middle 60% of the keyspace by rank.
		a, b := len(keys)/5, 4*len(keys)/5
		lo, hi := keys[a], keys[b-1]
		span := b - a
		for _, s := range []struct {
			name   string
			sample func(int) []float64
		}{
			{"static", func(k int) []float64 {
				out, err := static.Sample(lo, hi, k, rng)
				if err != nil {
					panic(err)
				}
				return out
			}},
			{"dynamic", func(k int) []float64 {
				out, err := dyn.Sample(lo, hi, k, rng)
				if err != nil {
					panic(err)
				}
				return out
			}},
		} {
			counts := make([]int, buckets)
			for _, v := range s.sample(draws) {
				rank, _ := slices.BinarySearch(keys, v)
				counts[(rank-a)*buckets/span]++
			}
			probs := make([]float64, buckets)
			for bkt := 0; bkt < buckets; bkt++ {
				probs[bkt] = 0
			}
			for r := 0; r < span; r++ {
				probs[r*buckets/span] += 1 / float64(span)
			}
			res, err := stats.ChiSquareTest(counts, probs, 0.001)
			if err != nil {
				return nil, err
			}
			tab.AddRow(string(dist), s.name,
				fmt.Sprintf("%.1f", res.Stat), fmt.Sprintf("%d", res.DF),
				fmt.Sprintf("%.1f", res.Critical), passFail(res.Reject))
		}
	}
	return []*Table{tab}, nil
}

func runE9(cfg Config) ([]*Table, error) {
	n := cfg.scaled(200_000, 50_000)
	queries := cfg.scaled(2000, 500)
	const t = 100
	rng := xrand.New(cfg.Seed + 21)
	keys := distinctKeys(workload.Uniform, n, rng)
	dyn, err := core.NewDynamicFromSorted(keys)
	if err != nil {
		return nil, err
	}
	a, b := len(keys)/5, 4*len(keys)/5
	lo, hi := keys[a], keys[b-1]
	span := b - a

	// Repeat the *identical* query and concatenate the normalized ranks of
	// every sample, in order. Under independence the stream is iid uniform.
	stream := make([]float64, 0, queries*t)
	identicalPairs := 0
	var prev []float64
	for q := 0; q < queries; q++ {
		out, err := dyn.Sample(lo, hi, t, rng)
		if err != nil {
			return nil, err
		}
		if prev != nil && slices.Equal(out, prev) {
			identicalPairs++
		}
		prev = out
		for _, v := range out {
			rank, _ := slices.BinarySearch(keys, v)
			stream = append(stream, float64(rank-a)/float64(span))
		}
	}
	lag1, err := stats.Autocorr(stream, 1)
	if err != nil {
		return nil, err
	}
	lagT, err := stats.Autocorr(stream, t) // across query boundaries
	if err != nil {
		return nil, err
	}
	ks, err := stats.KSUniform(stream)
	if err != nil {
		return nil, err
	}
	ksCrit := stats.KSCriticalUniform(len(stream), 0.001)
	// 5-sigma bound for iid autocorrelation estimates.
	acBound := 5 / math.Sqrt(float64(len(stream)-1))

	tab := &Table{
		Title:   fmt.Sprintf("E9 — Independence: %d repetitions of one query, t=%d", queries, t),
		Columns: []string{"metric", "value", "threshold", "verdict"},
		Notes: []string{"Claim: every sample is independent of every other, including across repetitions",
			"of the same query — the defining IRS property."},
	}
	tab.AddRow("lag-1 autocorrelation", fmt.Sprintf("%+.5f", lag1),
		fmt.Sprintf("|r| < %.5f", acBound), passFail(math.Abs(lag1) >= acBound))
	tab.AddRow(fmt.Sprintf("lag-%d autocorrelation (query boundary)", t), fmt.Sprintf("%+.5f", lagT),
		fmt.Sprintf("|r| < %.5f", acBound), passFail(math.Abs(lagT) >= acBound))
	tab.AddRow("KS distance of rank stream vs U[0,1]", fmt.Sprintf("%.5f", ks),
		fmt.Sprintf("< %.5f", ksCrit), passFail(ks >= ksCrit))
	tab.AddRow("identical consecutive result vectors", fmt.Sprintf("%d", identicalPairs),
		"= 0", passFail(identicalPairs != 0))
	return []*Table{tab}, nil
}

func runE10(cfg Config) ([]*Table, error) {
	n := cfg.scaled(1_000_000, 100_000)
	draws := cfg.scaled(200_000, 50_000)
	rng := xrand.New(cfg.Seed + 22)
	keys := workload.Keys(workload.Uniform, n, rng)
	dyn, err := core.NewDynamicFromSorted(keys)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:   fmt.Sprintf("E10 — Rejection probes per sample, n=%s", fmtCount(n)),
		Columns: []string{"selectivity", "mean", "p50", "p99", "p99.9", "max"},
		Notes: []string{"Claim: expected O(1) probes per sample, but a geometric tail — the",
			"expected-vs-worst-case gap that the follow-up literature proved is inherent",
			"for exact weights. The max column is the observable trace of that gap."},
	}
	probeBuf := make([]int, 0, draws)
	smpBuf := make([]float64, 0, draws)
	for _, sel := range []float64{0.00002, 0.001, 0.01, 0.1, 0.9} {
		ranges := workload.RangesWithSelectivity(keys, sel, 16, rng)
		probeBuf = probeBuf[:0]
		for _, r := range ranges {
			smpBuf = smpBuf[:0]
			var err error
			smpBuf, probeBuf, err = dyn.SampleProbesAppend(smpBuf, r.Lo, r.Hi, draws/len(ranges), rng, probeBuf)
			if err != nil {
				return nil, err
			}
		}
		xs := make([]float64, len(probeBuf))
		for i, p := range probeBuf {
			xs[i] = float64(p)
		}
		sm, err := stats.Summarize(xs)
		if err != nil {
			return nil, err
		}
		tab.AddRow(fmt.Sprintf("%g", sel),
			fmt.Sprintf("%.2f", sm.Mean), fmt.Sprintf("%.0f", sm.P50),
			fmt.Sprintf("%.0f", sm.P99), fmt.Sprintf("%.0f", sm.P999),
			fmt.Sprintf("%.0f", sm.Max))
	}
	return []*Table{tab}, nil
}
