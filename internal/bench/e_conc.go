package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/irsgo/irs/internal/core"
	"github.com/irsgo/irs/internal/shard"
	"github.com/irsgo/irs/internal/workload"
	"github.com/irsgo/irs/internal/xrand"
)

// E16 — the concurrent sharded sampler. Two claims are measured:
//
//  1. Single-thread overhead: routing, per-query locking, and the
//     multinomial split must cost only a small constant over the plain
//     Dynamic structure they wrap.
//  2. Multi-core scaling: with P shards and a live writer in the
//     background, aggregate SampleMany throughput must grow with the
//     number of client goroutines, while the single-shard configuration —
//     one RWMutex serializing every writer against every reader — stalls.
func runE16(cfg Config) ([]*Table, error) {
	n := cfg.scaled(1_000_000, 100_000)
	rng := xrand.New(cfg.Seed + 16)
	keys := workload.Keys(workload.Uniform, n, rng)
	ranges := workload.RangesWithSelectivity(keys, querySel, 64, rng)
	const t = 64

	// --- Table 1: single-thread overhead -----------------------------
	overhead := &Table{
		Title:   fmt.Sprintf("E16a — Single-thread query cost, n=%s, t=%d, selectivity 1%%", fmtCount(n), t),
		Columns: []string{"sampler", "ns/query", "vs Dynamic"},
		Notes: []string{"Claim: the concurrent layer adds only constant overhead per query",
			"(shard routing + lock + per-shard counts + multinomial split)."},
	}
	dyn, err := core.NewDynamicFromSorted(keys)
	if err != nil {
		return nil, err
	}
	buf := make([]float64, 0, t)
	dynNS := queryNS(cfg, ranges, func(r workload.Range) {
		buf = buf[:0]
		buf, _ = dyn.SampleAppend(buf, r.Lo, r.Hi, t, rng)
	})
	overhead.AddRow("Dynamic", fmtNS(dynNS), "1.00x")
	for _, p := range []int{1, 8} {
		c, err := shard.NewFromSorted(keys, p)
		if err != nil {
			return nil, err
		}
		ns := queryNS(cfg, ranges, func(r workload.Range) {
			buf = buf[:0]
			buf, _ = c.SampleAppend(buf, r.Lo, r.Hi, t, rng)
		})
		overhead.AddRow(fmt.Sprintf("Concurrent/%d shard(s)", p),
			fmtNS(ns), fmt.Sprintf("%.2fx", ns/dynNS))
	}

	// --- Table 2: multi-core SampleMany throughput under writes ------
	procs := runtime.GOMAXPROCS(0)
	scaling := &Table{
		Title: fmt.Sprintf("E16b — SampleMany throughput vs clients, n=%s, background writer, GOMAXPROCS=%d",
			fmtCount(n), procs),
		Columns: []string{"clients", "shards=1 q/s", fmt.Sprintf("shards=%d q/s", shardCount(procs)), "speedup"},
		Notes: []string{"Claim: sharding converts writer pressure from a global stall into a 1/P stall;",
			"aggregate read throughput scales with cores instead of flatlining.",
			"(speedup = sharded / single-shard at the same client count)"},
	}
	window := cfg.minDur()
	if window < 50*time.Millisecond {
		window = 50 * time.Millisecond
	}
	for clients := 1; clients <= procs || clients == 1; clients *= 2 {
		single := concThroughput(keys, 1, clients, t, window, cfg.Seed+17)
		sharded := concThroughput(keys, shardCount(procs), clients, t, window, cfg.Seed+18)
		scaling.AddRow(fmt.Sprintf("%d", clients),
			fmt.Sprintf("%.0f", single), fmt.Sprintf("%.0f", sharded),
			fmt.Sprintf("%.2fx", sharded/single))
		if clients >= procs {
			break
		}
	}
	return []*Table{overhead, scaling}, nil
}

// shardCount picks the sharded configuration for E16b: one shard per
// processor, at least two so the multinomial path is exercised.
func shardCount(procs int) int {
	if procs < 2 {
		return 2
	}
	return procs
}

// concThroughput runs `clients` goroutines issuing SampleMany batches (16
// queries x t samples) against a Concurrent with p shards while one writer
// goroutine applies continuous InsertBatch/DeleteBatch churn, and returns
// aggregate queries/second over the window.
func concThroughput(keys []float64, p, clients, t int, window time.Duration, seed uint64) float64 {
	c, err := shard.NewFromSorted(keys, p)
	if err != nil {
		panic(err)
	}
	rng := xrand.New(seed)
	ranges := workload.RangesWithSelectivity(keys, querySel, 256, rng)

	var stop atomic.Bool
	var queries atomic.Int64
	var wg sync.WaitGroup

	// Background writer: steady insert/delete churn of its own key block.
	// (Every goroutine gets its RNG split off before launch: an *RNG must
	// never be shared.)
	wrng := rng.Split()
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([]float64, 256)
		for !stop.Load() {
			for i := range batch {
				batch[i] = wrng.Float64Range(2e9, 3e9)
			}
			c.InsertBatch(batch)
			c.DeleteBatch(batch)
		}
	}()

	const batchQ = 16
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(grng *xrand.RNG) {
			defer wg.Done()
			qs := make([]shard.Query[float64], batchQ)
			for !stop.Load() {
				for i := range qs {
					r := ranges[int(grng.Uint64n(uint64(len(ranges))))]
					qs[i] = shard.Query[float64]{Lo: r.Lo, Hi: r.Hi, T: t}
				}
				if _, err := c.SampleMany(qs, grng); err != nil {
					panic(err)
				}
				queries.Add(batchQ)
			}
		}(rng.Split())
	}

	start := time.Now()
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(queries.Load()) / elapsed
}
