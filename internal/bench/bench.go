// Package bench is the experiment harness: it regenerates every table in
// EXPERIMENTS.md. Each experiment validates one complexity claim of the
// paper (or of a labelled extension) by sweeping a parameter and reporting
// the measured shape; the cmd/irsbench binary and the repository-root
// benchmarks both drive this package.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks dataset sizes and measurement windows roughly 10x, for
	// CI-speed runs. Full runs take a few minutes in total.
	Quick bool
	// Seed drives every generator; equal seeds give equal tables.
	Seed uint64
}

// scaled returns full, or quick if cfg.Quick.
func (c Config) scaled(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

func (c Config) minDur() time.Duration {
	if c.Quick {
		return 10 * time.Millisecond
	}
	return 120 * time.Millisecond
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "### %s\n\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(t.Columns))
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(t.Columns)
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n%s\n", n)
	}
	fmt.Fprintln(w)
}

// measure times f(batch) adaptively until the total run time reaches min,
// returning nanoseconds per iteration. f must perform exactly `batch`
// iterations of the operation under test.
func measure(min time.Duration, f func(batch int)) float64 {
	f(1) // warm-up
	batch := 1
	for {
		start := time.Now()
		f(batch)
		elapsed := time.Since(start)
		if elapsed >= min {
			return float64(elapsed.Nanoseconds()) / float64(batch)
		}
		// Grow toward the target, capped to avoid overshooting wildly.
		next := batch * 4
		if elapsed > 0 {
			est := int(float64(batch) * float64(min) * 1.2 / float64(elapsed))
			if est > next {
				next = est
			}
		}
		if next > 50_000_000 {
			next = 50_000_000
		}
		batch = next
	}
}

// Experiment couples an id to its implementation.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) ([]*Table, error)
}

// All returns every experiment in id order.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "Static query time vs n (O(log n + t): per-sample cost flat in n)", runE1},
		{"E2", "Static query time vs t (linear in t, O(1) per sample)", runE2},
		{"E3", "Static without-replacement vs with-replacement (Floyd)", runE3},
		{"E4", "Dynamic query time vs n and vs t (O(log n + t) expected)", runE4},
		{"E5", "Update cost vs n (O(log n) amortized)", runE5},
		{"E6", "Query-strategy crossover vs selectivity (IRS vs rank-select vs report+sample)", runE6},
		{"E7", "Space per key vs n (linear space)", runE7},
		{"E8", "Uniformity: chi-square goodness of fit per distribution", runE8},
		{"E9", "Independence across queries (autocorrelation, repeat-query distinctness)", runE9},
		{"E10", "Rejection probe distribution (expected O(1), geometric tail)", runE10},
		{"E11", "Weighted extension: sampler trade-offs vs t and weight ratio U", runE11},
		{"E12", "External-memory model: I/O per query, sampling vs scanning", runE12},
		{"E13", "Mixed workload throughput (queries interleaved with updates)", runE13},
		{"E14", "Ablation: chunk parameter s", runE14},
		{"E15", "Ablation: short-range collect fast path", runE15},
		{"E16", "Concurrent sharded sampler: single-thread overhead and multi-core scaling", runE16},
		{"E17", "Weighted concurrent sampler: overhead vs unweighted, multi-core scaling, batch amortization", runE17},
		{"E18", "Serving layer: coalesced vs per-request sampling throughput vs concurrency", runE18},
	}
	sort.Slice(exps, func(i, j int) bool {
		// E1..E9 sort before E10+ numerically.
		return numOf(exps[i].ID) < numOf(exps[j].ID)
	})
	return exps
}

func numOf(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
