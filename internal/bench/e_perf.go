package bench

import (
	"fmt"
	"math"

	"github.com/irsgo/irs/internal/core"
	"github.com/irsgo/irs/internal/treap"
	"github.com/irsgo/irs/internal/workload"
	"github.com/irsgo/irs/internal/xrand"
)

const querySel = 0.01 // default query selectivity

func fmtNS(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func fmtCount(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dk", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// staticSetup builds a Static sampler plus query ranges.
func staticSetup(n int, sel float64, seed uint64) (*core.Static[float64], []workload.Range, *xrand.RNG) {
	rng := xrand.New(seed)
	keys := workload.Keys(workload.Uniform, n, rng)
	s, err := core.NewStaticFromSorted(keys)
	if err != nil {
		panic(err)
	}
	ranges := workload.RangesWithSelectivity(keys, sel, 64, rng)
	return s, ranges, rng
}

// queryNS measures ns/query for a sampler closure over a pool of ranges.
func queryNS(cfg Config, ranges []workload.Range, q func(r workload.Range)) float64 {
	return measure(cfg.minDur(), func(batch int) {
		for i := 0; i < batch; i++ {
			q(ranges[i%len(ranges)])
		}
	})
}

func runE1(cfg Config) ([]*Table, error) {
	sizes := []int{10_000, 100_000, 1_000_000, 4_000_000}
	if cfg.Quick {
		sizes = []int{10_000, 100_000, 400_000}
	}
	const t = 64
	tab := &Table{
		Title:   "E1 — Static query, t=64 samples, selectivity 1%, uniform keys",
		Columns: []string{"n", "ns/query", "setup ns (t=0)", "ns/sample (marginal)"},
		Notes: []string{"Claim: query = O(Pred(n) + t). The marginal per-sample cost must be flat in n;",
			"only the setup term may grow (logarithmically) with n."},
	}
	for _, n := range sizes {
		s, ranges, rng := staticSetup(n, querySel, cfg.Seed+uint64(n))
		buf := make([]float64, 0, t)
		full := queryNS(cfg, ranges, func(r workload.Range) {
			buf = buf[:0]
			buf, _ = s.SampleAppend(buf, r.Lo, r.Hi, t, rng)
		})
		setup := queryNS(cfg, ranges, func(r workload.Range) {
			_ = s.Count(r.Lo, r.Hi)
		})
		perSample := (full - setup) / t
		tab.AddRow(fmtCount(n), fmtNS(full), fmtNS(setup), fmt.Sprintf("%.1f", perSample))
	}
	return []*Table{tab}, nil
}

func runE2(cfg Config) ([]*Table, error) {
	n := cfg.scaled(1_000_000, 100_000)
	ts := []int{1, 4, 16, 64, 256, 1024, 4096}
	s, ranges, rng := staticSetup(n, querySel, cfg.Seed+2)
	tab := &Table{
		Title:   fmt.Sprintf("E2 — Static query vs t, n=%s", fmtCount(n)),
		Columns: []string{"t", "ns/query", "ns/sample"},
		Notes:   []string{"Claim: total time linear in t; ns/sample settles to a constant."},
	}
	for _, t := range ts {
		buf := make([]float64, 0, t)
		full := queryNS(cfg, ranges, func(r workload.Range) {
			buf = buf[:0]
			buf, _ = s.SampleAppend(buf, r.Lo, r.Hi, t, rng)
		})
		tab.AddRow(fmt.Sprintf("%d", t), fmtNS(full), fmt.Sprintf("%.1f", full/float64(t)))
	}
	return []*Table{tab}, nil
}

func runE3(cfg Config) ([]*Table, error) {
	n := cfg.scaled(1_000_000, 100_000)
	ts := []int{16, 64, 256, 1024, 4096}
	s, ranges, rng := staticSetup(n, 0.1, cfg.Seed+3)
	tab := &Table{
		Title:   fmt.Sprintf("E3 — With vs without replacement, n=%s, selectivity 10%%", fmtCount(n)),
		Columns: []string{"t", "WR ns/query", "WOR ns/query", "WOR/WR"},
		Notes: []string{"Claim: Floyd's algorithm keeps without-replacement sampling O(Pred + t),",
			"independent of the range size (here 100k keys per range)."},
	}
	for _, t := range ts {
		buf := make([]float64, 0, t)
		wr := queryNS(cfg, ranges, func(r workload.Range) {
			buf = buf[:0]
			buf, _ = s.SampleAppend(buf, r.Lo, r.Hi, t, rng)
		})
		wor := queryNS(cfg, ranges, func(r workload.Range) {
			_, _ = s.SampleWithoutReplacement(r.Lo, r.Hi, t, rng)
		})
		tab.AddRow(fmt.Sprintf("%d", t), fmtNS(wr), fmtNS(wor), fmt.Sprintf("%.2f", wor/wr))
	}
	return []*Table{tab}, nil
}

// dynamicSetup builds a Dynamic sampler plus ranges.
func dynamicSetup(n int, sel float64, seed uint64) (*core.Dynamic[float64], []workload.Range, *xrand.RNG) {
	rng := xrand.New(seed)
	keys := workload.Keys(workload.Uniform, n, rng)
	d, err := core.NewDynamicFromSorted(keys)
	if err != nil {
		panic(err)
	}
	ranges := workload.RangesWithSelectivity(keys, sel, 64, rng)
	return d, ranges, rng
}

func runE4(cfg Config) ([]*Table, error) {
	sizes := []int{10_000, 100_000, 1_000_000, 4_000_000}
	if cfg.Quick {
		sizes = []int{10_000, 100_000, 400_000}
	}
	const t = 64
	vsN := &Table{
		Title:   "E4a — Dynamic query vs n, t=64, selectivity 1%",
		Columns: []string{"n", "ns/query", "setup ns (t=0)", "ns/sample (marginal)"},
		Notes: []string{"Claim: O(log n + t) expected. Marginal per-sample cost flat in n;",
			"setup grows only logarithmically."},
	}
	for _, n := range sizes {
		d, ranges, rng := dynamicSetup(n, querySel, cfg.Seed+4+uint64(n))
		buf := make([]float64, 0, t)
		full := queryNS(cfg, ranges, func(r workload.Range) {
			buf = buf[:0]
			buf, _ = d.SampleAppend(buf, r.Lo, r.Hi, t, rng)
		})
		setup := queryNS(cfg, ranges, func(r workload.Range) {
			buf = buf[:0]
			buf, _ = d.SampleAppend(buf, r.Lo, r.Hi, 1, rng)
		})
		perSample := (full - setup) / (t - 1)
		vsN.AddRow(fmtCount(n), fmtNS(full), fmtNS(setup), fmt.Sprintf("%.1f", perSample))
	}

	n := cfg.scaled(1_000_000, 100_000)
	d, ranges, rng := dynamicSetup(n, querySel, cfg.Seed+5)
	vsT := &Table{
		Title:   fmt.Sprintf("E4b — Dynamic query vs t, n=%s", fmtCount(n)),
		Columns: []string{"t", "ns/query", "ns/sample"},
	}
	for _, t := range []int{1, 4, 16, 64, 256, 1024, 4096} {
		buf := make([]float64, 0, t)
		full := queryNS(cfg, ranges, func(r workload.Range) {
			buf = buf[:0]
			buf, _ = d.SampleAppend(buf, r.Lo, r.Hi, t, rng)
		})
		vsT.AddRow(fmt.Sprintf("%d", t), fmtNS(full), fmt.Sprintf("%.1f", full/float64(t)))
	}
	return []*Table{vsN, vsT}, nil
}

func runE5(cfg Config) ([]*Table, error) {
	sizes := []int{10_000, 100_000, 1_000_000}
	if cfg.Quick {
		sizes = []int{10_000, 100_000}
	}
	tab := &Table{
		Title:   "E5 — Update cost (alternating random insert/delete at steady state)",
		Columns: []string{"n", "chunked ns/op", "treap ns/op", "log2(n)"},
		Notes: []string{"Claim: O(log n) amortized updates for the chunked structure; the treap is the",
			"classical comparison point. Watch both columns grow with log n, not n."},
	}
	for _, n := range sizes {
		rng := xrand.New(cfg.Seed + 6 + uint64(n))
		keys := workload.Keys(workload.Uniform, n, rng)
		d, err := core.NewDynamicFromSorted(keys)
		if err != nil {
			return nil, err
		}
		tr := treap.New[float64](cfg.Seed + 7)
		for _, k := range keys {
			tr.Insert(k)
		}
		chunkNS := measure(cfg.minDur(), func(batch int) {
			for i := 0; i < batch; i++ {
				k := keys[i%len(keys)]
				if i%2 == 0 {
					d.Insert(k + 0.5)
				} else {
					d.Delete(k + 0.5)
				}
			}
		})
		treapNS := measure(cfg.minDur(), func(batch int) {
			for i := 0; i < batch; i++ {
				k := keys[i%len(keys)]
				if i%2 == 0 {
					tr.Insert(k + 0.5)
				} else {
					tr.Delete(k + 0.5)
				}
			}
		})
		tab.AddRow(fmtCount(n), fmtNS(chunkNS), fmtNS(treapNS),
			fmt.Sprintf("%.1f", math.Log2(float64(n))))
	}
	return []*Table{tab}, nil
}

func runE6(cfg Config) ([]*Table, error) {
	n := cfg.scaled(1_000_000, 100_000)
	const t = 64
	rng := xrand.New(cfg.Seed + 8)
	keys := workload.Keys(workload.Uniform, n, rng)
	d, err := core.NewDynamicFromSorted(keys)
	if err != nil {
		return nil, err
	}
	tr := core.NewTreapSampler[float64](cfg.Seed + 9)
	for _, k := range keys {
		tr.Insert(k)
	}
	rep, err := core.NewReportSamplerFromSorted(keys)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:   fmt.Sprintf("E6 — Query-strategy crossover, n=%s, t=%d", fmtCount(n), t),
		Columns: []string{"selectivity", "|range|", "chunked IRS", "treap rank-select", "report+sample"},
		Notes: []string{"Claim (the paper's motivation): report+sample degrades linearly with the range size,",
			"rank-select pays log n per sample, and the IRS structure is flat in both. The",
			"crossover sits where |range| ~ t."},
	}
	for _, sel := range []float64{0.00001, 0.0001, 0.001, 0.01, 0.1, 0.5} {
		ranges := workload.RangesWithSelectivity(keys, sel, 64, rng)
		sz := 0
		for _, r := range ranges {
			sz += d.Count(r.Lo, r.Hi)
		}
		sz /= len(ranges)
		buf := make([]float64, 0, t)
		run := func(s core.Sampler[float64]) float64 {
			return queryNS(cfg, ranges, func(r workload.Range) {
				buf = buf[:0]
				buf, _ = s.SampleAppend(buf, r.Lo, r.Hi, t, rng)
			})
		}
		tab.AddRow(fmt.Sprintf("%g", sel), fmtCount(sz),
			fmtNS(run(d)), fmtNS(run(tr)), fmtNS(run(rep)))
	}
	return []*Table{tab}, nil
}

func runE7(cfg Config) ([]*Table, error) {
	sizes := []int{10_000, 100_000, 1_000_000}
	if cfg.Quick {
		sizes = []int{10_000, 100_000}
	}
	tab := &Table{
		Title:   "E7 — Space per key (resident bytes, including indexes)",
		Columns: []string{"n", "chunked B/key", "treap B/key", "sorted array B/key", "chunk param s"},
		Notes: []string{"Claim: linear space. The chunked structure's overhead over the raw 8 B/key",
			"array is bounded (directory + Fenwick + slack), and flat in n."},
	}
	for _, n := range sizes {
		rng := xrand.New(cfg.Seed + 10 + uint64(n))
		keys := workload.Keys(workload.Uniform, n, rng)
		d, err := core.NewDynamicFromSorted(keys)
		if err != nil {
			return nil, err
		}
		tr := treap.New[float64](cfg.Seed + 11)
		for _, k := range keys {
			tr.Insert(k)
		}
		st := d.GeometryStats()
		tab.AddRow(fmtCount(n),
			fmt.Sprintf("%.1f", float64(d.Footprint())/float64(n)),
			fmt.Sprintf("%.1f", float64(tr.Footprint())/float64(n)),
			"8.0",
			fmt.Sprintf("%d", st.S))
	}
	return []*Table{tab}, nil
}
