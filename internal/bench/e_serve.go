package bench

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/irsgo/irs/internal/server"
	"github.com/irsgo/irs/internal/shard"
	"github.com/irsgo/irs/internal/workload"
	"github.com/irsgo/irs/internal/xrand"
)

// E18 — the serving layer's request coalescer (internal/server, the core
// of cmd/irsd). Two claims are measured, with a background writer applying
// continuous churn — the regime a serving daemon lives in:
//
//  1. Coalescing divides backend traffic: with a linger window (the
//     daemon's default 100µs), the average coalesced batch grows toward
//     the client count, so backend SampleMany calls — each a round of
//     shard lock acquisitions (E16c/E17c measure why that matters) — fall
//     by the same factor relative to the per-request baseline, where every
//     client request is its own backend call.
//  2. Coalesced throughput scales with client concurrency: requests per
//     second grows roughly linearly in clients while each client's latency
//     stays near the linger window, because batches widen instead of the
//     backend call rate.
//
// Both modes run the same closed-loop client goroutines issuing one
// (lo, hi, t) query at a time: per-request calls SampleMany([1 query])
// directly; coalesced goes through Core.Sample. The trade is explicit in
// the table: at low concurrency the linger window costs latency for
// nothing (tiny batches, low q/s), which is why the window is a config
// knob and not hard-wired; as clients multiply, batches widen and the
// throughput ratio climbs while backend calls stay bounded.
func runE18(cfg Config) ([]*Table, error) {
	n := cfg.scaled(500_000, 50_000)
	rng := xrand.New(cfg.Seed + 26)
	keys := workload.Keys(workload.Uniform, n, rng)
	sorted := append([]float64(nil), keys...)
	slices.Sort(sorted)
	ranges := workload.RangesWithSelectivity(keys, querySel, 256, rng)
	const t = 16
	const linger = 100 * time.Microsecond
	procs := runtime.GOMAXPROCS(0)

	window := cfg.minDur()
	if window < 50*time.Millisecond {
		window = 50 * time.Millisecond
	}

	table := &Table{
		Title: fmt.Sprintf("E18 — Coalesced vs per-request serving, n=%s, t=%d, linger=%v, background writer churn, GOMAXPROCS=%d",
			fmtCount(n), t, linger, procs),
		Columns: []string{"clients", "per-request q/s", "coalesced q/s", "ratio", "avg batch", "backend calls/s"},
		Notes: []string{"Claim: coalescing bounds backend traffic — the average batch grows toward",
			"the client count, so backend SampleMany calls (lock-acquisition rounds)",
			"fall by that factor versus one call per request — while coalesced q/s",
			"scales with clients at per-request latency near the linger window.",
			"(ratio = coalesced / per-request q/s; avg batch = sample requests per",
			"backend call; backend calls/s is the coalesced run's SampleMany rate)"},
	}

	for _, clients := range []int{1, 8, 32, 128} {
		direct := e18Throughput(sorted, ranges, clients, t, window, cfg.Seed+27, nil)
		core := server.NewCore[float64](server.Config{
			QueueDepth:     8192,
			MaxBatch:       256,
			CoalesceWindow: linger,
			Flushers:       procs,
		})
		coalesced := e18Throughput(sorted, ranges, clients, t, window, cfg.Seed+28, core)
		avgBatch := 1.0
		if ds := core.Stats().Datasets; len(ds) == 1 && ds[0].SampleBatches > 0 {
			avgBatch = float64(ds[0].SampleRequests) / float64(ds[0].SampleBatches)
		}
		core.Close()
		table.AddRow(fmt.Sprintf("%d", clients),
			fmt.Sprintf("%.0f", direct), fmt.Sprintf("%.0f", coalesced),
			fmt.Sprintf("%.2fx", coalesced/direct), fmt.Sprintf("%.1f", avgBatch),
			fmt.Sprintf("%.0f", coalesced/avgBatch))
	}
	return []*Table{table}, nil
}

// e18Throughput measures aggregate request throughput over the window:
// clients goroutines each issue single-query sample requests against a
// fresh Concurrent built from sorted, while one writer goroutine applies
// continuous InsertBatch/DeleteBatch churn. With core == nil requests go
// straight to SampleMany (per-request mode); otherwise through the
// coalescing core.
func e18Throughput(sorted []float64, ranges []workload.Range, clients, t int, window time.Duration, seed uint64, core *server.Core[float64]) float64 {
	c, err := shard.NewFromSortedSeeded(sorted, runtime.GOMAXPROCS(0), seed)
	if err != nil {
		panic(err)
	}
	if core != nil {
		if err := core.Add("d", server.NewUnweightedDataset(c)); err != nil {
			panic(err)
		}
	}
	rng := xrand.New(seed)

	var stop atomic.Bool
	var served atomic.Int64
	var wg sync.WaitGroup

	wrng := rng.Split()
	wg.Add(1)
	go func() { // continuous write churn in a disjoint key block
		defer wg.Done()
		batch := make([]float64, 256)
		for !stop.Load() {
			for i := range batch {
				batch[i] = wrng.Float64Range(2e9, 3e9)
			}
			c.InsertBatch(batch)
			c.DeleteBatch(batch)
		}
	}()

	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(grng *xrand.RNG) {
			defer wg.Done()
			q := make([]shard.Query[float64], 1)
			for !stop.Load() {
				r := ranges[int(grng.Uint64n(uint64(len(ranges))))]
				if core != nil {
					if _, err := core.Sample("d", r.Lo, r.Hi, t); err != nil {
						panic(err)
					}
				} else {
					q[0] = shard.Query[float64]{Lo: r.Lo, Hi: r.Hi, T: t}
					if _, err := c.SampleMany(q, grng); err != nil {
						panic(err)
					}
				}
				served.Add(1)
			}
		}(rng.Split())
	}

	start := time.Now()
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	return float64(served.Load()) / time.Since(start).Seconds()
}
