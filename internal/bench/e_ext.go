package bench

import (
	"fmt"

	"github.com/irsgo/irs/internal/core"
	"github.com/irsgo/irs/internal/em"
	"github.com/irsgo/irs/internal/weighted"
	"github.com/irsgo/irs/internal/workload"
	"github.com/irsgo/irs/internal/xrand"
)

func runE11(cfg Config) ([]*Table, error) {
	n := cfg.scaled(1<<17, 1<<14)
	rng := xrand.New(cfg.Seed + 30)
	keys := workload.Keys(workload.Uniform, n, rng)
	zw := workload.ZipfWeights(n, 1.1, rng)
	items := make([]weighted.Item[float64], n)
	for i := range items {
		items[i] = weighted.Item[float64]{Key: keys[i], Weight: zw[i]}
	}
	seg, err := weighted.NewSegmentAlias(items)
	if err != nil {
		return nil, err
	}
	bkt, err := weighted.NewBucket(items)
	if err != nil {
		return nil, err
	}
	fen, err := weighted.NewFenwick(items)
	if err != nil {
		return nil, err
	}
	naive, err := weighted.NewNaiveCDF(items)
	if err != nil {
		return nil, err
	}
	ranges := workload.RangesWithSelectivity(keys, 0.1, 64, rng)

	vsT := &Table{
		Title:   fmt.Sprintf("E11a — Weighted samplers vs t, n=%s, Zipf(1.1) weights, selectivity 10%%", fmtCount(n)),
		Columns: []string{"t", "segment-alias", "bucket", "fenwick", "naive-cdf"},
		Notes: []string{"Extension claims: segment-alias and bucket pay O(1) per sample (bucket in",
			"expectation), fenwick pays O(log n) per sample, naive pays O(log |range|).",
			"The per-sample gap should widen linearly in t."},
	}
	for _, t := range []int{1, 16, 256, 4096} {
		buf := make([]float64, 0, t)
		run := func(s weighted.Sampler[float64]) float64 {
			return queryNS(cfg, ranges, func(r workload.Range) {
				buf = buf[:0]
				var err error
				buf, err = s.SampleAppend(buf, r.Lo, r.Hi, t, rng)
				if err != nil {
					panic(err)
				}
			})
		}
		vsT.AddRow(fmt.Sprintf("%d", t),
			fmtNS(run(seg)), fmtNS(run(bkt)), fmtNS(run(fen)), fmtNS(run(naive)))
	}

	vsU := &Table{
		Title:   fmt.Sprintf("E11b — Bucket sampler vs weight ratio U, n=%s, t=64", fmtCount(n)),
		Columns: []string{"U (max/min weight)", "weight classes C", "bucket ns/query", "segment-alias ns/query"},
		Notes: []string{"Extension claim: the bucket sampler's setup grows with C = O(log U) occupied",
			"classes, while the segment-alias structure is insensitive to U."},
	}
	for _, u := range []float64{1, 1e3, 1e6, 1e9, 1e12} {
		bw := workload.BoundedRatioWeights(n, u, rng)
		for i := range items {
			items[i].Weight = bw[i]
		}
		b2, err := weighted.NewBucket(items)
		if err != nil {
			return nil, err
		}
		s2, err := weighted.NewSegmentAlias(items)
		if err != nil {
			return nil, err
		}
		const t = 64
		buf := make([]float64, 0, t)
		bktNS := queryNS(cfg, ranges, func(r workload.Range) {
			buf = buf[:0]
			buf, _ = b2.SampleAppend(buf, r.Lo, r.Hi, t, rng)
		})
		segNS := queryNS(cfg, ranges, func(r workload.Range) {
			buf = buf[:0]
			buf, _ = s2.SampleAppend(buf, r.Lo, r.Hi, t, rng)
		})
		vsU.AddRow(fmt.Sprintf("%g", u), fmt.Sprintf("%d", b2.Classes()), fmtNS(bktNS), fmtNS(segNS))
	}
	return []*Table{vsT, vsU}, nil
}

func runE12(cfg Config) ([]*Table, error) {
	n := cfg.scaled(400_000, 100_000)
	const k = 16
	const trials = 12
	var tables []*Table
	for _, pageSize := range []int{256, 4096} {
		dev, err := em.NewDevice(pageSize)
		if err != nil {
			return nil, err
		}
		pool, err := em.NewPool(dev, 64)
		if err != nil {
			return nil, err
		}
		rng := xrand.New(cfg.Seed + 31)
		keys := workload.IntKeys(workload.Uniform, n, rng)
		tree, err := em.BulkLoad(pool, keys, 0.8)
		if err != nil {
			return nil, err
		}
		tab := &Table{
			Title: fmt.Sprintf("E12 — Cold I/O per query, page=%dB (B=%d keys/leaf), n=%s, k=%d",
				pageSize, tree.LeafCapacity(), fmtCount(n), k),
			Columns: []string{"selectivity", "|range| pages", "sample reads", "scan reads", "scan/sample"},
			Notes: []string{"Claim (I/O model): IRS via the leaf run costs O(log_B n + k) reads; scanning",
				"costs O(|range|/B). The ratio explodes with selectivity."},
		}
		for _, sel := range []float64{0.001, 0.01, 0.1, 0.5} {
			span := int(sel * float64(n))
			if span < 1 {
				span = 1
			}
			var sampleReads, scanReads int64
			for trial := 0; trial < trials; trial++ {
				start := rng.Intn(n - span + 1)
				lo, hi := keys[start], keys[start+span-1]
				if err := pool.Drop(); err != nil {
					return nil, err
				}
				dev.ResetStats()
				if _, err := tree.SampleRange(lo, hi, k, rng); err != nil {
					return nil, err
				}
				sampleReads += dev.Stats().Reads
				if err := pool.Drop(); err != nil {
					return nil, err
				}
				dev.ResetStats()
				if _, err := tree.ScanSample(lo, hi, k, rng); err != nil {
					return nil, err
				}
				scanReads += dev.Stats().Reads
			}
			pages := span / tree.LeafCapacity()
			tab.AddRow(fmt.Sprintf("%g", sel), fmtCount(pages),
				fmt.Sprintf("%.1f", float64(sampleReads)/trials),
				fmt.Sprintf("%.1f", float64(scanReads)/trials),
				fmt.Sprintf("%.1fx", float64(scanReads)/float64(max(sampleReads, 1))))
		}
		tables = append(tables, tab)
	}
	return tables, nil
}

func runE13(cfg Config) ([]*Table, error) {
	n := cfg.scaled(1_000_000, 100_000)
	const t = 32
	rng := xrand.New(cfg.Seed + 32)
	keys := workload.Keys(workload.Uniform, n, rng)
	d, err := core.NewDynamicFromSorted(keys)
	if err != nil {
		return nil, err
	}
	ranges := workload.RangesWithSelectivity(keys, querySel, 64, rng)
	buf := make([]float64, 0, t)
	query := func(i int) {
		r := ranges[i%len(ranges)]
		buf = buf[:0]
		buf, _ = d.SampleAppend(buf, r.Lo, r.Hi, t, rng)
	}
	update := func(i int) {
		k := keys[i%len(keys)]
		if i%2 == 0 {
			d.Insert(k + 0.25)
		} else {
			d.Delete(k + 0.25)
		}
	}
	mix := func(queryPct int) float64 {
		ns := measure(cfg.minDur(), func(batch int) {
			for i := 0; i < batch; i++ {
				if i%100 < queryPct {
					query(i)
				} else {
					update(i)
				}
			}
		})
		return 1e9 / ns // ops per second
	}
	tab := &Table{
		Title:   fmt.Sprintf("E13 — Mixed workload throughput, n=%s, t=%d, selectivity 1%%", fmtCount(n), t),
		Columns: []string{"mix (query%/update%)", "ops/sec"},
		Notes: []string{"Claim: the dynamic structure sustains interleaved updates and sampling",
			"queries without phase-change cliffs (no global rebuild stalls beyond the",
			"amortized budget)."},
	}
	for _, q := range []int{100, 90, 50, 10, 0} {
		tab.AddRow(fmt.Sprintf("%d/%d", q, 100-q), fmt.Sprintf("%.0f", mix(q)))
	}
	return []*Table{tab}, nil
}
