package bench

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/irsgo/irs/internal/shard"
	"github.com/irsgo/irs/internal/weighted"
	"github.com/irsgo/irs/internal/workload"
	"github.com/irsgo/irs/internal/xrand"
)

// E17 — the weighted concurrent sampler (WeightedConcurrent over the
// backend-generic shard engine). Three claims are measured:
//
//  1. Single-thread overhead: the weighted sharded layer must cost only a
//     small constant over the WeightedTreap it wraps, and the weighted-vs-
//     unweighted gap must stay near the treap-vs-chunked-list gap (the
//     engine itself adds the same routing/lock/multinomial work to both).
//  2. Multi-core scaling: aggregate SampleMany throughput with live writer
//     and weight-updater churn must grow with client goroutines when
//     sharded, while the single-shard configuration stalls.
//  3. Batch amortization: InsertBatch must beat point Insert per key by a
//     widening factor as the batch grows, because each involved shard lock
//     is taken once per batch.
func runE17(cfg Config) ([]*Table, error) {
	n := cfg.scaled(500_000, 50_000)
	rng := xrand.New(cfg.Seed + 19)
	keys := workload.Keys(workload.Uniform, n, rng)
	zw := workload.ZipfWeights(n, 1.1, rng)
	items := make([]weighted.Item[float64], n)
	for i := range items {
		items[i] = weighted.Item[float64]{Key: keys[i], Weight: zw[i]}
	}
	ranges := workload.RangesWithSelectivity(keys, querySel, 64, rng)
	const t = 64

	// --- Table 1: single-thread overhead, weighted vs unweighted ---------
	overhead := &Table{
		Title:   fmt.Sprintf("E17a — Single-thread weighted query cost, n=%s, t=%d, Zipf(1.1) weights, selectivity 1%%", fmtCount(n), t),
		Columns: []string{"sampler", "ns/query", "vs WeightedTreap"},
		Notes: []string{"Claim: the sharded weighted layer adds only constant overhead per query",
			"(routing + lock + per-shard range weights + mass-proportional multinomial),",
			"mirroring what E16a shows for the unweighted engine instantiation."},
	}
	tre, err := weighted.NewTreapFromItems(cfg.Seed+20, items)
	if err != nil {
		return nil, err
	}
	buf := make([]float64, 0, t)
	treNS := queryNS(cfg, ranges, func(r workload.Range) {
		buf = buf[:0]
		buf, _ = tre.SampleAppend(buf, r.Lo, r.Hi, t, rng)
	})
	overhead.AddRow("WeightedTreap", fmtNS(treNS), "1.00x")
	for _, p := range []int{1, 8} {
		wc, err := shard.NewWeightedFromItems(items, p, cfg.Seed+21)
		if err != nil {
			return nil, err
		}
		ns := queryNS(cfg, ranges, func(r workload.Range) {
			buf = buf[:0]
			buf, _ = wc.SampleAppend(buf, r.Lo, r.Hi, t, rng)
		})
		overhead.AddRow(fmt.Sprintf("WeightedConcurrent/%d shard(s)", p),
			fmtNS(ns), fmt.Sprintf("%.2fx", ns/treNS))
	}
	// The unweighted engine instantiation on the same keys anchors the
	// weighted-vs-unweighted overhead.
	sorted := append([]float64(nil), keys...)
	slices.Sort(sorted)
	uc, err := shard.NewFromSorted(sorted, 8)
	if err != nil {
		return nil, err
	}
	ucNS := queryNS(cfg, ranges, func(r workload.Range) {
		buf = buf[:0]
		buf, _ = uc.SampleAppend(buf, r.Lo, r.Hi, t, rng)
	})
	overhead.AddRow("Concurrent/8 shard(s) (unweighted)", fmtNS(ucNS), fmt.Sprintf("%.2fx", ucNS/treNS))

	// --- Table 2: multi-core SampleMany throughput under churn -----------
	procs := runtime.GOMAXPROCS(0)
	scaling := &Table{
		Title: fmt.Sprintf("E17b — Weighted SampleMany throughput vs clients, n=%s, background writer + weight updater, GOMAXPROCS=%d",
			fmtCount(n), procs),
		Columns: []string{"clients", "shards=1 q/s", fmt.Sprintf("shards=%d q/s", shardCount(procs)), "speedup"},
		Notes: []string{"Claim: sharding converts writer and weight-update pressure from a global",
			"stall into a 1/P stall; aggregate weighted read throughput scales with cores.",
			"(speedup = sharded / single-shard at the same client count)"},
	}
	window := cfg.minDur()
	if window < 50*time.Millisecond {
		window = 50 * time.Millisecond
	}
	for clients := 1; clients <= procs || clients == 1; clients *= 2 {
		single := weightedConcThroughput(items, keys, 1, clients, t, window, cfg.Seed+22)
		sharded := weightedConcThroughput(items, keys, shardCount(procs), clients, t, window, cfg.Seed+23)
		scaling.AddRow(fmt.Sprintf("%d", clients),
			fmt.Sprintf("%.0f", single), fmt.Sprintf("%.0f", sharded),
			fmt.Sprintf("%.2fx", sharded/single))
		if clients >= procs {
			break
		}
	}

	// --- Table 3: batch amortization --------------------------------------
	amort := &Table{
		Title:   fmt.Sprintf("E17c — Weighted insert batch amortization, %d-shard structure preloaded with n=%s", shardCount(procs), fmtCount(n)),
		Columns: []string{"batch size", "ns/key", "vs point Insert"},
		Notes: []string{"Claim: InsertBatch sorts once and write-locks each involved shard once per",
			"batch, so the per-key cost falls as the batch grows."},
	}
	var pointNS float64
	for _, batch := range []int{1, 16, 256, 4096} {
		wc, err := shard.NewWeightedFromItems(items, shardCount(procs), cfg.Seed+24)
		if err != nil {
			return nil, err
		}
		brng := xrand.New(cfg.Seed + 25)
		block := make([]weighted.Item[float64], batch)
		fill := func() {
			for j := range block {
				block[j] = weighted.Item[float64]{Key: brng.Float64Range(0, 1e9), Weight: 1 + brng.Float64()}
			}
		}
		var ns float64
		if batch == 1 {
			ns = measure(cfg.minDur(), func(iters int) {
				for i := 0; i < iters; i++ {
					fill()
					if err := wc.Insert(block[0].Key, block[0].Weight); err != nil {
						panic(err)
					}
				}
			})
			pointNS = ns
		} else {
			ns = measure(cfg.minDur(), func(iters int) {
				for i := 0; i < iters; i++ {
					fill()
					if err := wc.InsertBatch(block); err != nil {
						panic(err)
					}
				}
			}) / float64(batch)
		}
		amort.AddRow(fmt.Sprintf("%d", batch), fmtNS(ns), fmt.Sprintf("%.2fx", ns/pointNS))
	}

	return []*Table{overhead, scaling, amort}, nil
}

// weightedConcThroughput runs `clients` goroutines issuing SampleMany
// batches (16 queries x t samples) against a WeightedConcurrent with p
// shards while one writer goroutine applies continuous InsertBatch/
// DeleteBatch churn and one updater cycles weights, returning aggregate
// queries/second over the window.
func weightedConcThroughput(items []weighted.Item[float64], keys []float64, p, clients, t int, window time.Duration, seed uint64) float64 {
	wc, err := shard.NewWeightedFromItems(items, p, seed)
	if err != nil {
		panic(err)
	}
	rng := xrand.New(seed)
	ranges := workload.RangesWithSelectivity(keys, querySel, 256, rng)

	var stop atomic.Bool
	var queries atomic.Int64
	var wg sync.WaitGroup

	// Background writer: steady insert/delete churn of its own key block.
	wrng := rng.Split()
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([]weighted.Item[float64], 256)
		dels := make([]float64, 256)
		for !stop.Load() {
			for i := range batch {
				k := wrng.Float64Range(2e9, 3e9)
				batch[i] = weighted.Item[float64]{Key: k, Weight: 1 + wrng.Float64()}
				dels[i] = k
			}
			if err := wc.InsertBatch(batch); err != nil {
				panic(err)
			}
			wc.DeleteBatch(dels)
		}
	}()

	// Background weight updater over a small resident block.
	resident := make([]weighted.Item[float64], 512)
	for i := range resident {
		resident[i] = weighted.Item[float64]{Key: 3e9 + float64(i), Weight: 1}
	}
	if err := wc.InsertBatch(resident); err != nil {
		panic(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for !stop.Load() {
			it := resident[i%len(resident)]
			if _, err := wc.UpdateWeight(it.Key, 1+float64(i%7)); err != nil {
				panic(err)
			}
			i++
		}
	}()

	const batchQ = 16
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(grng *xrand.RNG) {
			defer wg.Done()
			qs := make([]shard.Query[float64], batchQ)
			for !stop.Load() {
				for i := range qs {
					r := ranges[int(grng.Uint64n(uint64(len(ranges))))]
					qs[i] = shard.Query[float64]{Lo: r.Lo, Hi: r.Hi, T: t}
				}
				if _, err := wc.SampleMany(qs, grng); err != nil {
					panic(err)
				}
				queries.Add(batchQ)
			}
		}(rng.Split())
	}

	start := time.Now()
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(queries.Load()) / elapsed
}
