package weighted

import (
	"cmp"
	"math"
	"sort"

	"github.com/irsgo/irs/internal/alias"
	"github.com/irsgo/irs/internal/xrand"
)

// Bucket is the linear-space weighted sampler built on the "almost uniform
// weight classes" idea of the follow-up literature (Afshani–Wei's Lemma-3
// style framework): items are partitioned into classes whose weights agree
// within a factor of two (by binary exponent). Inside a class, rejection
// sampling — pick a uniform item, accept with probability w/classMax — is
// exactly proportional and succeeds with probability > 1/2 per try.
//
// A query runs one binary search per occupied class (O(C log n) with
// C = O(log U) classes for weight ratio U), builds an alias table over the
// per-class range weights, and then draws each sample in expected O(1):
// class by alias, item by rejection. Space is O(n).
//
// Zero-weight items are excluded from the classes (they are never sampled)
// but still counted by Count.
type Bucket[K cmp.Ordered] struct {
	p       prepared[K] // all items, for Count/TotalWeight
	classes []weightClass[K]

	// Per-query scratch.
	ranges  [][2]int32
	clsW    []float64
	builder alias.Builder
	top     alias.Table
}

type weightClass[K cmp.Ordered] struct {
	max     float64 // strict upper bound: weights in [max/2, max)
	keys    []K
	weights []float64
	prefix  []float64
}

// NewBucket builds the sampler from items. O(n log n).
func NewBucket[K cmp.Ordered](items []Item[K]) (*Bucket[K], error) {
	p, err := prepare(items)
	if err != nil {
		return nil, err
	}
	byExp := map[int]*weightClass[K]{}
	var exps []int
	for i, w := range p.weights {
		if w == 0 {
			continue
		}
		// math.Frexp(w) = frac * 2^exp with frac in [0.5, 1): weights with
		// equal exp are within a factor two; classMax = 2^exp.
		_, exp := math.Frexp(w)
		c := byExp[exp]
		if c == nil {
			c = &weightClass[K]{max: math.Ldexp(1, exp)}
			byExp[exp] = c
			exps = append(exps, exp)
		}
		c.keys = append(c.keys, p.keys[i])
		c.weights = append(c.weights, w)
	}
	sort.Ints(exps)
	b := &Bucket[K]{p: p}
	for _, e := range exps {
		c := byExp[e]
		c.prefix = make([]float64, len(c.weights)+1)
		for i, w := range c.weights {
			c.prefix[i+1] = c.prefix[i] + w
		}
		b.classes = append(b.classes, *c)
	}
	return b, nil
}

// Len returns the number of stored items (including zero-weight ones).
func (b *Bucket[K]) Len() int { return len(b.p.keys) }

// Count returns the number of items in [lo, hi].
func (b *Bucket[K]) Count(lo, hi K) int { return b.p.count(lo, hi) }

// TotalWeight returns the weight mass in [lo, hi].
func (b *Bucket[K]) TotalWeight(lo, hi K) float64 { return b.p.totalWeight(lo, hi) }

// Classes returns the number of occupied weight classes (C in the bounds).
func (b *Bucket[K]) Classes() int { return len(b.classes) }

// SampleAppend draws t weighted samples: O(C log n) setup, expected O(1)
// per sample.
func (b *Bucket[K]) SampleAppend(dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	if err := sampleArgsErr(t); err != nil {
		return dst, err
	}
	if t == 0 {
		return dst, nil
	}
	count := b.p.count(lo, hi)
	b.ranges = b.ranges[:0]
	b.clsW = b.clsW[:0]
	total := 0.0
	for ci := range b.classes {
		c := &b.classes[ci]
		a := sort.Search(len(c.keys), func(i int) bool { return c.keys[i] >= lo })
		e := sort.Search(len(c.keys), func(i int) bool { return c.keys[i] > hi })
		if e < a {
			e = a
		}
		w := c.prefix[e] - c.prefix[a]
		b.ranges = append(b.ranges, [2]int32{int32(a), int32(e)})
		b.clsW = append(b.clsW, w)
		total += w
	}
	if err := rangeErr(count, total); err != nil {
		return dst, err
	}
	if err := b.builder.Build(&b.top, b.clsW); err != nil {
		return dst, err
	}
	for i := 0; i < t; i++ {
		ci := b.top.Draw(rng)
		c := &b.classes[ci]
		a, e := int(b.ranges[ci][0]), int(b.ranges[ci][1])
		span := uint64(e - a)
		for {
			j := a + int(rng.Uint64n(span))
			// Accept with probability w/classMax in (1/2, 1]; exactly
			// proportional within the class.
			if rng.Float64()*c.max < c.weights[j] {
				dst = append(dst, c.keys[j])
				break
			}
		}
	}
	return dst, nil
}
