package weighted

import (
	"math"
	"sort"
	"testing"

	"github.com/irsgo/irs/internal/xrand"
)

// makeItems builds a deterministic weighted dataset with duplicates, zero
// weights, and a wide weight range.
func makeItems(n int, seed uint64) []Item[int] {
	r := xrand.New(seed)
	items := make([]Item[int], n)
	for i := range items {
		w := math.Exp(r.Float64() * 8) // ratio up to e^8 ~ 3000
		if r.Bernoulli(0.05) {
			w = 0
		}
		items[i] = Item[int]{Key: r.Intn(n / 2), Weight: w}
	}
	return items
}

// allSamplers constructs every implementation over the same items.
func allSamplers(t *testing.T, items []Item[int]) map[string]Sampler[int] {
	t.Helper()
	seg, err := NewSegmentAlias(items)
	if err != nil {
		t.Fatal(err)
	}
	bkt, err := NewBucket(items)
	if err != nil {
		t.Fatal(err)
	}
	fen, err := NewFenwick(items)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := NewNaiveCDF(items)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Sampler[int]{"segalias": seg, "bucket": bkt, "fenwick": fen, "naive": nv}
}

func TestConstructionErrors(t *testing.T) {
	bad := [][]Item[int]{
		{{Key: 1, Weight: -1}},
		{{Key: 1, Weight: math.NaN()}},
		{{Key: 1, Weight: math.Inf(1)}},
	}
	for _, items := range bad {
		if _, err := NewSegmentAlias(items); err != ErrInvalidWeight {
			t.Fatalf("SegmentAlias(%v) err = %v", items, err)
		}
		if _, err := NewBucket(items); err != ErrInvalidWeight {
			t.Fatalf("Bucket(%v) err = %v", items, err)
		}
		if _, err := NewFenwick(items); err != ErrInvalidWeight {
			t.Fatalf("Fenwick(%v) err = %v", items, err)
		}
		if _, err := NewNaiveCDF(items); err != ErrInvalidWeight {
			t.Fatalf("NaiveCDF(%v) err = %v", items, err)
		}
	}
}

func TestEmptyAndZeroRanges(t *testing.T) {
	items := []Item[int]{{10, 1}, {20, 0}, {30, 2}}
	r := xrand.New(1)
	for name, s := range allSamplers(t, items) {
		if s.Len() != 3 {
			t.Fatalf("%s: Len = %d", name, s.Len())
		}
		if _, err := s.SampleAppend(nil, 100, 200, 1, r); err != ErrEmptyRange {
			t.Fatalf("%s: empty err = %v", name, err)
		}
		// Key 20 exists but carries zero weight.
		if _, err := s.SampleAppend(nil, 15, 25, 1, r); err != ErrZeroWeightRange {
			t.Fatalf("%s: zero-weight err = %v", name, err)
		}
		if _, err := s.SampleAppend(nil, 10, 30, -1, r); err != ErrInvalidCount {
			t.Fatalf("%s: negative err = %v", name, err)
		}
		if out, err := s.SampleAppend(nil, 10, 30, 0, r); err != nil || len(out) != 0 {
			t.Fatalf("%s: t=0 out=%v err=%v", name, out, err)
		}
		if got := s.Count(15, 25); got != 1 {
			t.Fatalf("%s: Count = %d", name, got)
		}
		if got := s.TotalWeight(10, 30); math.Abs(got-3) > 1e-12 {
			t.Fatalf("%s: TotalWeight = %v", name, got)
		}
	}
}

func TestZeroWeightNeverSampled(t *testing.T) {
	items := []Item[int]{{1, 5}, {2, 0}, {3, 1}, {4, 0}, {5, 4}}
	r := xrand.New(2)
	for name, s := range allSamplers(t, items) {
		out, err := s.SampleAppend(nil, 1, 5, 50000, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, k := range out {
			if k == 2 || k == 4 {
				t.Fatalf("%s: sampled zero-weight key %d", name, k)
			}
		}
	}
}

// TestProportionalSampling checks each implementation's empirical
// frequencies against the exact weights with a chi-square bound.
func TestProportionalSampling(t *testing.T) {
	items := []Item[int]{
		{10, 1}, {20, 2}, {30, 3}, {40, 4}, {50, 10}, {60, 0.5}, {70, 20},
	}
	r := xrand.New(3)
	// Query [20, 60]: weights 2,3,4,10,0.5 => total 19.5.
	weights := map[int]float64{20: 2, 30: 3, 40: 4, 50: 10, 60: 0.5}
	const draws = 400000
	for name, s := range allSamplers(t, items) {
		if got := s.TotalWeight(20, 60); math.Abs(got-19.5) > 1e-9 {
			t.Fatalf("%s: TotalWeight = %v", name, got)
		}
		out, err := s.SampleAppend(make([]int, 0, draws), 20, 60, draws, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		counts := map[int]int{}
		for _, k := range out {
			if _, ok := weights[k]; !ok {
				t.Fatalf("%s: sample %d outside range", name, k)
			}
			counts[k]++
		}
		chi2 := 0.0
		for k, w := range weights {
			exp := draws * w / 19.5
			d := float64(counts[k]) - exp
			chi2 += d * d / exp
		}
		// 4 df; 0.001 critical value 18.5.
		if chi2 > 18.5 {
			t.Fatalf("%s: chi-square %.1f, counts %v", name, chi2, counts)
		}
	}
}

// TestImplementationsAgreeOnRandomData compares all implementations'
// empirical distributions on a messy random dataset (duplicate keys, zero
// weights, wide ratios) against exact probabilities.
func TestImplementationsAgreeOnRandomData(t *testing.T) {
	items := makeItems(2000, 4)
	r := xrand.New(5)
	samplers := allSamplers(t, items)

	// Exact per-key weight in the query range (keys collapse duplicates:
	// P(key) = sum of weights of its occurrences).
	lo, hi := 100, 800
	keyW := map[int]float64{}
	total := 0.0
	for _, it := range items {
		if it.Key >= lo && it.Key <= hi {
			keyW[it.Key] += it.Weight
			total += it.Weight
		}
	}
	const draws = 300000
	for name, s := range samplers {
		if got := s.TotalWeight(lo, hi); math.Abs(got-total) > 1e-6*total {
			t.Fatalf("%s: TotalWeight = %v, want %v", name, got, total)
		}
		out, err := s.SampleAppend(make([]int, 0, draws), lo, hi, draws, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		counts := map[int]int{}
		for _, k := range out {
			counts[k]++
		}
		chi2, df := 0.0, 0
		for k, w := range keyW {
			exp := draws * w / total
			if exp < 10 {
				continue
			}
			d := float64(counts[k]) - exp
			chi2 += d * d / exp
			df++
		}
		// Wilson–Hilferty 0.0001-level bound, generous: chi2 < df + 5*sqrt(2df).
		if lim := float64(df) + 5*math.Sqrt(2*float64(df)); chi2 > lim {
			t.Fatalf("%s: chi-square %.1f over %d cells (limit %.1f)", name, chi2, df, lim)
		}
	}
}

func TestCountsAgree(t *testing.T) {
	items := makeItems(3000, 6)
	samplers := allSamplers(t, items)
	keys := make([]int, len(items))
	for i, it := range items {
		keys[i] = it.Key
	}
	sort.Ints(keys)
	r := xrand.New(7)
	for trial := 0; trial < 200; trial++ {
		lo, hi := r.Intn(1500), r.Intn(1500)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := sort.SearchInts(keys, hi+1) - sort.SearchInts(keys, lo)
		for name, s := range samplers {
			if got := s.Count(lo, hi); got != want {
				t.Fatalf("%s: Count(%d,%d) = %d, want %d", name, lo, hi, got, want)
			}
		}
	}
}

func TestFenwickDynamicWeights(t *testing.T) {
	items := []Item[int]{{1, 1}, {2, 1}, {3, 1}, {4, 1}}
	f, err := NewFenwick(items)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetWeightByRank(0, 97); err != nil {
		t.Fatal(err)
	}
	if got := f.WeightByRank(0); got != 97 {
		t.Fatalf("WeightByRank = %v", got)
	}
	if got := f.KeyByRank(0); got != 1 {
		t.Fatalf("KeyByRank = %v", got)
	}
	if got := f.TotalWeight(1, 4); math.Abs(got-100) > 1e-12 {
		t.Fatalf("TotalWeight = %v", got)
	}
	r := xrand.New(8)
	out, err := f.SampleAppend(nil, 1, 4, 100000, r)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, k := range out {
		if k == 1 {
			ones++
		}
	}
	frac := float64(ones) / float64(len(out))
	if frac < 0.96 || frac > 0.98 {
		t.Fatalf("reweighted key frequency %.4f, want ~0.97", frac)
	}
	// Zeroing a weight removes it from sampling.
	if err := f.SetWeightByRank(0, 0); err != nil {
		t.Fatal(err)
	}
	out, err = f.SampleAppend(nil, 1, 4, 10000, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range out {
		if k == 1 {
			t.Fatal("sampled key with zero weight after update")
		}
	}
	if err := f.SetWeightByRank(0, -1); err != ErrInvalidWeight {
		t.Fatalf("negative weight err = %v", err)
	}
	if err := f.SetWeightByRank(0, math.NaN()); err != ErrInvalidWeight {
		t.Fatalf("NaN weight err = %v", err)
	}
}

func TestBucketClassCount(t *testing.T) {
	// Weights 1, 2, 4, 8 land in four distinct binary classes.
	items := []Item[int]{{1, 1}, {2, 2}, {3, 4}, {4, 8}}
	b, err := NewBucket(items)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Classes(); got != 4 {
		t.Fatalf("Classes = %d, want 4", got)
	}
	// Nearly-equal weights share one class.
	items = []Item[int]{{1, 1.0}, {2, 1.1}, {3, 1.2}, {4, 1.3}}
	b, err = NewBucket(items)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Classes(); got != 1 {
		t.Fatalf("Classes = %d, want 1", got)
	}
}

func TestSegmentAliasSmallAndSingle(t *testing.T) {
	r := xrand.New(9)
	s, err := NewSegmentAlias([]Item[int]{{42, 3}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.SampleAppend(nil, 0, 100, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range out {
		if k != 42 {
			t.Fatalf("sample %d", k)
		}
	}
	if s.heightOf() < 1 {
		t.Fatal("height")
	}
	if s.FootprintTables() != 0 {
		t.Fatalf("single item should store no tables, got %d entries", s.FootprintTables())
	}
	// Empty structure.
	e, err := NewSegmentAlias[int](nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SampleAppend(nil, 0, 1, 1, r); err != ErrEmptyRange {
		t.Fatalf("err = %v", err)
	}
}

func TestSegmentAliasFootprintGrowsLinearithmic(t *testing.T) {
	mk := func(n int) int64 {
		items := make([]Item[int], n)
		for i := range items {
			items[i] = Item[int]{Key: i, Weight: 1 + float64(i%7)}
		}
		s, err := NewSegmentAlias(items)
		if err != nil {
			t.Fatal(err)
		}
		return s.FootprintTables()
	}
	f1, f2 := mk(1<<10), mk(1<<14)
	// Expect roughly n log n growth: ratio ~ 16 * (14/10) = 22.4.
	ratio := float64(f2) / float64(f1)
	if ratio < 16 || ratio > 32 {
		t.Fatalf("table entries grew by %.1fx from 2^10 to 2^14", ratio)
	}
}

func TestExtremeWeightRatios(t *testing.T) {
	items := []Item[int]{{1, 1e-9}, {2, 1}, {3, 1e9}}
	r := xrand.New(10)
	for name, s := range allSamplers(t, items) {
		out, err := s.SampleAppend(nil, 1, 3, 200000, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		threes := 0
		for _, k := range out {
			if k == 3 {
				threes++
			}
		}
		if frac := float64(threes) / float64(len(out)); frac < 0.999 {
			t.Fatalf("%s: heavy key frequency %.5f", name, frac)
		}
	}
}

func BenchmarkSegmentAliasSample64(b *testing.B) {
	items := makeItems(1<<17, 11)
	s, err := NewSegmentAlias(items)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(12)
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, _ = s.SampleAppend(buf, 1000, 50000, 64, r)
	}
}

func BenchmarkBucketSample64(b *testing.B) {
	items := makeItems(1<<17, 13)
	s, err := NewBucket(items)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(14)
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, _ = s.SampleAppend(buf, 1000, 50000, 64, r)
	}
}

func BenchmarkFenwickSample64(b *testing.B) {
	items := makeItems(1<<17, 15)
	s, err := NewFenwick(items)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(16)
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, _ = s.SampleAppend(buf, 1000, 50000, 64, r)
	}
}
