package weighted

import (
	"cmp"
	"math/bits"

	"github.com/irsgo/irs/internal/alias"
	"github.com/irsgo/irs/internal/xrand"
)

// SegmentAlias is the space-for-time weighted sampler: a segment tree over
// the sorted keys where every node stores a Walker alias table over all the
// leaves of its subtree. A query decomposes [lo, hi] into O(log n)
// canonical nodes, builds one top-level alias table over their subtree
// weights (O(log n)), and then draws every sample in worst-case O(1): one
// draw from the top table picks a canonical node, one draw from that node's
// table picks a leaf.
//
// Space is O(n log n): each leaf appears in the table of each of its
// O(log n) ancestors. This is the classical trade-off the linear-space
// Bucket and Fenwick samplers are measured against (experiment E11).
type SegmentAlias[K cmp.Ordered] struct {
	p    prepared[K]
	size int // leaves padded to a power of two
	// Per node (1-indexed heap layout): the subtree's total weight, the
	// subtree's leaf interval, and an alias table over that interval.
	total []float64
	start []int32
	span  []int32
	table []*alias.Table

	// Per-query scratch, reused.
	nodes      []int32
	nodeWeight []float64
	topBuilder alias.Builder
	top        alias.Table
}

// NewSegmentAlias builds the structure from items. O(n log n) time and
// space.
func NewSegmentAlias[K cmp.Ordered](items []Item[K]) (*SegmentAlias[K], error) {
	p, err := prepare(items)
	if err != nil {
		return nil, err
	}
	n := len(p.keys)
	size := 1
	for size < n {
		size <<= 1
	}
	s := &SegmentAlias[K]{
		p:     p,
		size:  size,
		total: make([]float64, 2*size),
		start: make([]int32, 2*size),
		span:  make([]int32, 2*size),
		table: make([]*alias.Table, 2*size),
	}
	if n == 0 {
		return s, nil
	}
	// Leaf level.
	for i := 0; i < size; i++ {
		v := size + i
		s.start[v] = int32(i)
		s.span[v] = 1
		if i < n {
			s.total[v] = p.weights[i]
		}
	}
	// Internal levels, bottom-up.
	var b alias.Builder
	for v := size - 1; v >= 1; v-- {
		l, r := 2*v, 2*v+1
		s.total[v] = s.total[l] + s.total[r]
		s.start[v] = s.start[l]
		s.span[v] = s.span[l] + s.span[r]
		if s.total[v] <= 0 {
			continue
		}
		// Clip the subtree interval to real leaves.
		st := int(s.start[v])
		en := st + int(s.span[v])
		if en > n {
			en = n
		}
		if en-st <= 1 {
			continue // single real leaf: sampled directly
		}
		tbl := &alias.Table{}
		if err := b.Build(tbl, p.weights[st:en]); err != nil {
			return nil, err
		}
		s.table[v] = tbl
	}
	return s, nil
}

// Len returns the number of stored items.
func (s *SegmentAlias[K]) Len() int { return len(s.p.keys) }

// Count returns the number of items in [lo, hi].
func (s *SegmentAlias[K]) Count(lo, hi K) int { return s.p.count(lo, hi) }

// TotalWeight returns the weight mass in [lo, hi].
func (s *SegmentAlias[K]) TotalWeight(lo, hi K) float64 { return s.p.totalWeight(lo, hi) }

// decompose fills s.nodes with the canonical nodes covering leaf interval
// [a, b).
func (s *SegmentAlias[K]) decompose(a, b int) {
	s.nodes = s.nodes[:0]
	l, r := a+s.size, b+s.size
	for l < r {
		if l&1 == 1 {
			s.nodes = append(s.nodes, int32(l))
			l++
		}
		if r&1 == 1 {
			r--
			s.nodes = append(s.nodes, int32(r))
		}
		l >>= 1
		r >>= 1
	}
}

// SampleAppend draws t weighted samples. O(log n) setup plus worst-case
// O(1) per sample.
func (s *SegmentAlias[K]) SampleAppend(dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	if err := sampleArgsErr(t); err != nil {
		return dst, err
	}
	if t == 0 {
		return dst, nil
	}
	a, b := s.p.rankRange(lo, hi)
	total := s.p.prefix[b] - s.p.prefix[a]
	if err := rangeErr(b-a, total); err != nil {
		return dst, err
	}
	s.decompose(a, b)
	s.nodeWeight = s.nodeWeight[:0]
	for _, v := range s.nodes {
		s.nodeWeight = append(s.nodeWeight, s.total[v])
	}
	if err := s.topBuilder.Build(&s.top, s.nodeWeight); err != nil {
		return dst, err
	}
	n := len(s.p.keys)
	for i := 0; i < t; i++ {
		v := s.nodes[s.top.Draw(rng)]
		var leaf int
		if tbl := s.table[v]; tbl != nil {
			leaf = int(s.start[v]) + tbl.Draw(rng)
		} else {
			// Leaf node or single-real-leaf subtree: first real leaf with
			// positive weight; by construction total[v] > 0 implies the
			// unique real leaf is the start.
			leaf = int(s.start[v])
			if leaf >= n {
				leaf = n - 1
			}
		}
		dst = append(dst, s.p.keys[leaf])
	}
	return dst, nil
}

// FootprintTables returns the total number of alias-table entries stored,
// the quantity that makes SegmentAlias Θ(n log n); used by the space
// experiment.
func (s *SegmentAlias[K]) FootprintTables() int64 {
	var entries int64
	for _, t := range s.table {
		if t != nil {
			entries += int64(t.Len())
		}
	}
	return entries
}

// heightOf reports the tree height (for tests).
func (s *SegmentAlias[K]) heightOf() int { return bits.Len(uint(s.size)) }
