package weighted

import (
	"cmp"
	"math"

	"github.com/irsgo/irs/internal/fenwick"
	"github.com/irsgo/irs/internal/xrand"
)

// Fenwick is the linear-space weighted sampler with worst-case O(log n) per
// sample: a Fenwick tree over the weights of the sorted keys, sampled by
// inverse-CDF descent. Its distinguishing feature is dynamic *weights*: the
// weight of any stored item can be updated in O(log n) (the key set itself
// stays fixed).
type Fenwick[K cmp.Ordered] struct {
	keys []K
	w    *fenwick.Weights
}

// NewFenwick builds the sampler from items. O(n log n).
func NewFenwick[K cmp.Ordered](items []Item[K]) (*Fenwick[K], error) {
	p, err := prepare(items)
	if err != nil {
		return nil, err
	}
	return &Fenwick[K]{keys: p.keys, w: fenwick.NewWeights(p.weights)}, nil
}

// Len returns the number of stored items.
func (f *Fenwick[K]) Len() int { return len(f.keys) }

// rankRange returns the half-open index interval of keys in [lo, hi].
func (f *Fenwick[K]) rankRange(lo, hi K) (int, int) {
	if hi < lo {
		return 0, 0
	}
	a, b := 0, len(f.keys)
	for a < b {
		m := (a + b) / 2
		if f.keys[m] >= lo {
			b = m
		} else {
			a = m + 1
		}
	}
	lo2, c, d := a, a, len(f.keys)
	for c < d {
		m := (c + d) / 2
		if f.keys[m] > hi {
			d = m
		} else {
			c = m + 1
		}
	}
	if c < lo2 {
		c = lo2
	}
	return lo2, c
}

// Count returns the number of items in [lo, hi].
func (f *Fenwick[K]) Count(lo, hi K) int {
	a, b := f.rankRange(lo, hi)
	return b - a
}

// TotalWeight returns the weight mass in [lo, hi]. O(log n).
func (f *Fenwick[K]) TotalWeight(lo, hi K) float64 {
	a, b := f.rankRange(lo, hi)
	return f.w.RangeSum(a, b)
}

// WeightByRank returns the weight of the item with sorted rank i.
func (f *Fenwick[K]) WeightByRank(i int) float64 { return f.w.Get(i) }

// KeyByRank returns the key with sorted rank i.
func (f *Fenwick[K]) KeyByRank(i int) K { return f.keys[i] }

// SetWeightByRank updates the weight of the item with sorted rank i in
// O(log n). Returns ErrInvalidWeight for negative, NaN, or infinite values.
func (f *Fenwick[K]) SetWeightByRank(i int, weight float64) error {
	if weight < 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return ErrInvalidWeight
	}
	f.w.Set(i, weight)
	return nil
}

// SampleAppend draws t weighted samples, each via an O(log n) inverse-CDF
// descent.
func (f *Fenwick[K]) SampleAppend(dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	if err := sampleArgsErr(t); err != nil {
		return dst, err
	}
	if t == 0 {
		return dst, nil
	}
	a, b := f.rankRange(lo, hi)
	base := f.w.PrefixSum(a)
	total := f.w.PrefixSum(b) - base
	if err := rangeErr(b-a, total); err != nil {
		return dst, err
	}
	for i := 0; i < t; i++ {
		idx := f.w.Select(base + rng.Float64()*total)
		// Floating-point drift can push the selection one slot past either
		// edge; clamp, then step off zero-weight slots (only reachable via
		// drift, never in exact arithmetic).
		if idx < a {
			idx = a
		}
		if idx >= b {
			idx = b - 1
		}
		if f.w.Get(idx) == 0 {
			for idx > a && f.w.Get(idx) == 0 {
				idx--
			}
			for idx < b-1 && f.w.Get(idx) == 0 {
				idx++
			}
		}
		dst = append(dst, f.keys[idx])
	}
	return dst, nil
}
