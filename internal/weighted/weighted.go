// Package weighted implements weighted independent range sampling (wIRS)
// in one dimension: every stored key carries a non-negative weight, and a
// query over [lo, hi] must return samples whose probability is proportional
// to their weight among the keys in the range.
//
// This is an *extension* relative to the PODS 2014 paper (which is
// unweighted); it follows the direction of the follow-up work by
// Afshani–Wei (ESA 2017) and Afshani–Phillips (2019). Four structures
// realize the classical trade-offs:
//
//   - SegmentAlias — O(n log n) space, O(log n) query setup, worst-case
//     O(1) per sample (alias table per segment-tree node).
//   - Bucket — O(n) space, items partitioned into weight classes within a
//     factor two of each other (the "almost uniform" classes of the
//     literature); O(C log n) setup for C occupied classes
//     (C = O(log U) for weight ratio U) and expected O(1) per sample by
//     rejection inside a class.
//   - Fenwick — O(n) space, O(log n) worst case per sample by inverse-CDF
//     descent; also supports dynamic weight updates.
//   - NaiveCDF — the baseline: materializes the range's cumulative weights
//     per query (O(|range|)), then O(log |range|) per sample.
//
// All samplers validate weights at construction: negative, NaN, or infinite
// weights are rejected; zero weights are allowed and never sampled.
package weighted

import (
	"cmp"
	"errors"
	"math"
	"slices"
	"sort"

	"github.com/irsgo/irs/internal/xrand"
)

// Errors returned by the weighted samplers.
var (
	// ErrEmptyRange is returned when the query range contains no keys.
	ErrEmptyRange = errors.New("weighted: query range contains no keys")
	// ErrZeroWeightRange is returned when the range contains keys but their
	// total weight is zero, so no proportional sample exists.
	ErrZeroWeightRange = errors.New("weighted: query range has zero total weight")
	// ErrInvalidCount is returned for negative sample counts.
	ErrInvalidCount = errors.New("weighted: negative sample count")
	// ErrInvalidWeight is returned at construction for negative, NaN, or
	// infinite weights.
	ErrInvalidWeight = errors.New("weighted: weight is negative, NaN, or infinite")
	// ErrUnsortedItems is returned by FromSorted constructors when the
	// input items are not in non-decreasing key order.
	ErrUnsortedItems = errors.New("weighted: items are not sorted by key")
)

// Item is a weighted key.
type Item[K cmp.Ordered] struct {
	Key    K
	Weight float64
}

// ValidWeight reports whether w is a usable weight: finite and
// non-negative (NaN is rejected because NaN >= 0 is false).
func ValidWeight(w float64) bool { return w >= 0 && !math.IsInf(w, 0) }

// Sampler is the interface shared by every weighted IRS implementation.
type Sampler[K cmp.Ordered] interface {
	// Len returns the number of stored items.
	Len() int
	// Count returns the number of items with keys in [lo, hi], including
	// zero-weight items.
	Count(lo, hi K) int
	// TotalWeight returns the sum of weights of items in [lo, hi].
	TotalWeight(lo, hi K) float64
	// SampleAppend appends t independent samples from [lo, hi], each drawn
	// with probability proportional to its weight, to dst.
	SampleAppend(dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error)
}

// prepared holds the sorted arrays shared by the static samplers.
type prepared[K cmp.Ordered] struct {
	keys    []K
	weights []float64
	prefix  []float64 // prefix[i] = sum of weights[0:i]
}

// prepare validates, copies, and sorts items by key. O(n log n).
func prepare[K cmp.Ordered](items []Item[K]) (prepared[K], error) {
	own := append([]Item[K](nil), items...)
	for _, it := range own {
		if it.Weight < 0 || math.IsNaN(it.Weight) || math.IsInf(it.Weight, 0) {
			return prepared[K]{}, ErrInvalidWeight
		}
	}
	slices.SortStableFunc(own, func(a, b Item[K]) int { return cmp.Compare(a.Key, b.Key) })
	p := prepared[K]{
		keys:    make([]K, len(own)),
		weights: make([]float64, len(own)),
		prefix:  make([]float64, len(own)+1),
	}
	for i, it := range own {
		p.keys[i] = it.Key
		p.weights[i] = it.Weight
		p.prefix[i+1] = p.prefix[i] + it.Weight
	}
	return p, nil
}

// rankRange returns the half-open index interval of keys in [lo, hi].
func (p *prepared[K]) rankRange(lo, hi K) (int, int) {
	if hi < lo {
		return 0, 0
	}
	a := sort.Search(len(p.keys), func(i int) bool { return p.keys[i] >= lo })
	b := sort.Search(len(p.keys), func(i int) bool { return p.keys[i] > hi })
	if b < a {
		b = a
	}
	return a, b
}

func (p *prepared[K]) count(lo, hi K) int {
	a, b := p.rankRange(lo, hi)
	return b - a
}

func (p *prepared[K]) totalWeight(lo, hi K) float64 {
	a, b := p.rankRange(lo, hi)
	return p.prefix[b] - p.prefix[a]
}

func sampleArgsErr(t int) error {
	if t < 0 {
		return ErrInvalidCount
	}
	return nil
}

// rangeErr classifies an empty or zero-weight range.
func rangeErr(count int, total float64) error {
	if count == 0 {
		return ErrEmptyRange
	}
	if total <= 0 {
		return ErrZeroWeightRange
	}
	return nil
}

// NaiveCDF is the per-query baseline: it recomputes the range's cumulative
// weight array on every query. With the prefix array shared by all static
// samplers the build is O(log n) here; the per-sample cost is a binary
// search over the range, O(log |range|) — and unlike the real structures it
// offers no path to dynamism or better constants. It exists to anchor the
// benchmark shapes.
type NaiveCDF[K cmp.Ordered] struct {
	p prepared[K]
}

// NewNaiveCDF builds the baseline from items. O(n log n).
func NewNaiveCDF[K cmp.Ordered](items []Item[K]) (*NaiveCDF[K], error) {
	p, err := prepare(items)
	if err != nil {
		return nil, err
	}
	return &NaiveCDF[K]{p: p}, nil
}

// Len returns the number of stored items.
func (s *NaiveCDF[K]) Len() int { return len(s.p.keys) }

// Count returns the number of items in [lo, hi].
func (s *NaiveCDF[K]) Count(lo, hi K) int { return s.p.count(lo, hi) }

// TotalWeight returns the weight mass in [lo, hi].
func (s *NaiveCDF[K]) TotalWeight(lo, hi K) float64 { return s.p.totalWeight(lo, hi) }

// SampleAppend draws t weighted samples by inverting the prefix-sum CDF
// with a binary search per sample.
func (s *NaiveCDF[K]) SampleAppend(dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	if err := sampleArgsErr(t); err != nil {
		return dst, err
	}
	if t == 0 {
		return dst, nil
	}
	a, b := s.p.rankRange(lo, hi)
	total := s.p.prefix[b] - s.p.prefix[a]
	if err := rangeErr(b-a, total); err != nil {
		return dst, err
	}
	base := s.p.prefix[a]
	for i := 0; i < t; i++ {
		x := base + rng.Float64()*total
		// First index with prefix[idx+1] > x, i.e. the item whose weight
		// interval contains x.
		idx := sort.Search(b-a, func(j int) bool { return s.p.prefix[a+j+1] > x }) + a
		if idx >= b { // floating-point drift at the upper edge
			idx = b - 1
		}
		for s.p.weights[idx] == 0 && idx > a { // never return zero-weight items
			idx--
		}
		dst = append(dst, s.p.keys[idx])
	}
	return dst, nil
}
