package weighted

import (
	"math"
	"sync"
	"testing"

	"github.com/irsgo/irs/internal/xrand"
)

// TestTreapChurnUniformity is the dynamic statistical check: after a long
// interleaved insert/delete/UpdateWeight workload — not just a static
// build — the treap's sampling distribution must still match the exact
// weight proportions of the surviving items. Keys are kept unique so the
// model knows exactly which occurrence an UpdateWeight touched.
func TestTreapChurnUniformity(t *testing.T) {
	r := xrand.New(501)
	tr := NewTreap[int](502)
	model := map[int]float64{}
	var present []int // keys currently stored, for O(1) random choice
	idx := map[int]int{}

	add := func(k int, w float64) {
		if err := tr.Insert(k, w); err != nil {
			t.Fatal(err)
		}
		model[k] = w
		idx[k] = len(present)
		present = append(present, k)
	}
	remove := func(k int) {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed for a present key", k)
		}
		delete(model, k)
		i := idx[k]
		last := present[len(present)-1]
		present[i] = last
		idx[last] = i
		present = present[:len(present)-1]
		delete(idx, k)
	}

	const keySpan = 1 << 14
	for op := 0; op < 30_000; op++ {
		switch {
		case len(present) == 0 || r.Bernoulli(0.35):
			// Insert a not-currently-present key; ~4% zero weights keep the
			// never-sample-zero property under churn too.
			k := r.Intn(keySpan)
			if _, ok := model[k]; ok {
				continue
			}
			w := math.Exp(r.Float64() * 5)
			if r.Bernoulli(0.04) {
				w = 0
			}
			add(k, w)
		case r.Bernoulli(0.45):
			remove(present[r.Intn(len(present))])
		default:
			k := present[r.Intn(len(present))]
			w := math.Exp(r.Float64() * 5)
			if r.Bernoulli(0.04) {
				w = 0
			}
			ok, err := tr.UpdateWeight(k, w)
			if err != nil || !ok {
				t.Fatalf("UpdateWeight(%d): %v %v", k, ok, err)
			}
			model[k] = w
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(model))
	}

	lo, hi := keySpan/8, (7*keySpan)/8
	keyW := map[int]float64{}
	total := 0.0
	for k, w := range model {
		if k >= lo && k <= hi {
			keyW[k] = w
			total += w
		}
	}
	if got := tr.TotalWeight(lo, hi); math.Abs(got-total) > 1e-6*total {
		t.Fatalf("TotalWeight = %v, want %v", got, total)
	}

	const draws = 300_000
	out, err := tr.SampleAppend(make([]int, 0, draws), lo, hi, draws, r)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, k := range out {
		w, ok := keyW[k]
		if !ok || w <= 0 {
			t.Fatalf("sampled key %d with model weight %g", k, w)
		}
		counts[k]++
	}
	chi2, df := 0.0, 0
	for k, w := range keyW {
		exp := draws * w / total
		if exp < 10 {
			continue
		}
		d := float64(counts[k]) - exp
		chi2 += d * d / exp
		df++
	}
	// Wilson–Hilferty-style generous bound, as in the static agreement test.
	if lim := float64(df) + 5*math.Sqrt(2*float64(df)); chi2 > lim {
		t.Fatalf("post-churn chi-square %.1f over %d cells (limit %.1f)", chi2, df, lim)
	}
}

// TestTreapFromSortedItemsMatchesIncremental: the O(n) spine build must
// produce a valid treap with the same contents and distribution as the
// incremental constructor.
func TestTreapFromSortedItemsMatchesIncremental(t *testing.T) {
	items := make([]Item[int], 0, 4000)
	r := xrand.New(511)
	key := 0
	for len(items) < cap(items) {
		key += r.Intn(3) // duplicates included
		w := math.Exp(r.Float64() * 4)
		if r.Bernoulli(0.05) {
			w = 0
		}
		items = append(items, Item[int]{Key: key, Weight: w})
	}
	fast, err := NewTreapFromSortedItems(512, items)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewTreapFromItems(513, items)
	if err != nil {
		t.Fatal(err)
	}
	if err := fast.Validate(); err != nil {
		t.Fatal(err)
	}
	if fast.Len() != slow.Len() {
		t.Fatalf("Len: %d vs %d", fast.Len(), slow.Len())
	}
	if got, want := fast.AppendItems(nil), slow.AppendItems(nil); len(got) != len(want) {
		t.Fatalf("AppendItems: %d vs %d items", len(got), len(want))
	} else {
		for i := range got {
			if got[i].Key != want[i].Key {
				t.Fatalf("item %d: key %d vs %d", i, got[i].Key, want[i].Key)
			}
		}
	}
	for trial := 0; trial < 100; trial++ {
		lo, hi := r.Intn(key+1), r.Intn(key+1)
		if lo > hi {
			lo, hi = hi, lo
		}
		if a, b := fast.Count(lo, hi), slow.Count(lo, hi); a != b {
			t.Fatalf("Count(%d,%d): %d vs %d", lo, hi, a, b)
		}
		a, b := fast.TotalWeight(lo, hi), slow.TotalWeight(lo, hi)
		if math.Abs(a-b) > 1e-9*(math.Abs(b)+1) {
			t.Fatalf("TotalWeight(%d,%d): %g vs %g", lo, hi, a, b)
		}
	}
	mn, ok := fast.MinKey()
	if !ok || mn != items[0].Key {
		t.Fatalf("MinKey = %d,%v", mn, ok)
	}
	mx, ok := fast.MaxKey()
	if !ok || mx != items[len(items)-1].Key {
		t.Fatalf("MaxKey = %d,%v", mx, ok)
	}

	// Error paths.
	if _, err := NewTreapFromSortedItems(514, []Item[int]{{2, 1}, {1, 1}}); err != ErrUnsortedItems {
		t.Fatalf("unsorted: err = %v", err)
	}
	if _, err := NewTreapFromSortedItems(515, []Item[int]{{1, -1}}); err != ErrInvalidWeight {
		t.Fatalf("bad weight: err = %v", err)
	}
	empty, err := NewTreapFromSortedItems[int](516, nil)
	if err != nil || empty.Len() != 0 {
		t.Fatalf("empty build: %v %d", err, empty.Len())
	}
	if _, ok := empty.MinKey(); ok {
		t.Fatal("MinKey on empty")
	}
}

// TestTreapConcurrentReaders exercises the read-only query contract under
// the race detector: many goroutines sampling, counting, and exporting from
// one treap through their own runs, with no writer.
func TestTreapConcurrentReaders(t *testing.T) {
	items := makeItems(20_000, 521)
	tr, err := NewTreapFromItems(522, items)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := xrand.New(uint64(523 + g))
			var run TreapRun[int]
			buf := make([]int, 0, 64)
			for i := 0; i < 200; i++ {
				lo := r.Intn(10_000)
				hi := lo + r.Intn(10_000)
				buf = buf[:0]
				out, err := tr.SampleRunAppend(&run, buf, lo, hi, 64, r)
				if err != nil {
					continue // empty or zero-weight slice
				}
				for _, k := range out {
					if k < lo || k > hi {
						t.Errorf("sample %d outside [%d, %d]", k, lo, hi)
						return
					}
				}
				// The draw succeeded, so the range must hold keys with
				// positive total weight (no writer runs concurrently).
				if c, w := tr.RangeStats(lo, hi); c == 0 || w <= 0 {
					t.Errorf("RangeStats(%d, %d) = %d, %g after a successful draw", lo, hi, c, w)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTreapAppendRange pins the read-only range export.
func TestTreapAppendRange(t *testing.T) {
	tr := NewTreap[int](531)
	for _, k := range []int{5, 3, 9, 3, 7, 1} {
		if err := tr.Insert(k, float64(k)); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.AppendRange(nil, 3, 7)
	want := []int{3, 3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("AppendRange = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendRange = %v, want %v", got, want)
		}
	}
	if out := tr.AppendRange(nil, 7, 3); len(out) != 0 {
		t.Fatalf("inverted range returned %v", out)
	}
}
