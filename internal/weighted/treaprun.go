package weighted

import (
	"math"
	"sort"

	"github.com/irsgo/irs/internal/xrand"

	"cmp"
)

// TreapRun is per-query sampling scratch for a Treap: the canonical
// decomposition of a key range into O(log n) expected spans (whole subtrees
// plus individual boundary nodes), with cumulative weights for O(log log n)
// span selection per sample. Building a run never restructures the tree, so
// any number of goroutines may sample one Treap through their own runs
// concurrently, provided no mutation (Insert, Delete, UpdateWeight) runs at
// the same time. The sharded concurrent layer (internal/shard) relies on
// this to serve weighted readers under a shared lock.
//
// A run is a snapshot: it holds pointers into the tree and is invalidated
// by any subsequent mutation.
type TreapRun[K cmp.Ordered] struct {
	spans []treapSpan[K]
	cum   []float64 // cum[i] = total weight of spans[0..i]
	count int       // keys in range, including zero-weight ones
	total float64   // weight mass in range
}

type treapSpan[K cmp.Ordered] struct {
	node *wnode[K]
	sub  bool // true: the node's whole subtree; false: the node alone
}

// Empty reports whether the range held no keys at all.
func (r *TreapRun[K]) Empty() bool { return r.count == 0 }

// Count returns the number of in-range keys (zero-weight keys included).
func (r *TreapRun[K]) Count() int { return r.count }

// Weight returns the total weight mass of the range.
func (r *TreapRun[K]) Weight() float64 { return r.total }

func (r *TreapRun[K]) push(n *wnode[K], sub bool, w float64) {
	r.total += w
	r.spans = append(r.spans, treapSpan[K]{node: n, sub: sub})
	r.cum = append(r.cum, r.total)
}

// InitRun prepares run for sampling [lo, hi]. O(log n) expected; read-only.
func (t *Treap[K]) InitRun(run *TreapRun[K], lo, hi K) {
	run.spans = run.spans[:0]
	run.cum = run.cum[:0]
	run.count = 0
	run.total = 0
	if hi < lo {
		return
	}
	collectSpans(t.root, lo, hi, false, false, run)
}

// collectSpans appends the canonical cover of [lo, hi] within n's subtree.
// loB (hiB) asserts that every key in the subtree is already known to be
// >= lo (<= hi) from decisions made higher up, which is what lets a fully
// contained subtree be emitted as one span without descending further.
func collectSpans[K cmp.Ordered](n *wnode[K], lo, hi K, loB, hiB bool, run *TreapRun[K]) {
	if n == nil {
		return
	}
	if loB && hiB {
		run.count += n.size
		if n.wsum > 0 {
			run.push(n, true, n.wsum)
		}
		return
	}
	inLo := loB || !(n.key < lo)
	inHi := hiB || !(hi < n.key)
	// Left subtree keys are <= n.key: skip it when n.key < lo, and inherit
	// the hi bound when n.key <= hi. Mirrored for the right subtree.
	if inLo {
		collectSpans(n.left, lo, hi, loB, inHi, run)
	}
	if inLo && inHi {
		run.count++
		if n.weight > 0 {
			run.push(n, false, n.weight)
		}
	}
	if inHi {
		collectSpans(n.right, lo, hi, inLo, hiB, run)
	}
}

// Sample draws one key with probability proportional to its weight among
// the run's range contents. The run must be non-empty with positive weight.
func (r *TreapRun[K]) Sample(rng *xrand.RNG) K {
	x := rng.Float64() * r.total
	// First span whose cumulative weight exceeds x.
	i := sort.Search(len(r.cum), func(j int) bool { return r.cum[j] > x })
	if i >= len(r.spans) { // floating-point drift at the top edge
		i = len(r.spans) - 1
	}
	sp := r.spans[i]
	if !sp.sub {
		return sp.node.key
	}
	return sampleNode(sp.node, rng.Float64()*sp.node.wsum)
}

// SampleRunAppend appends k weighted samples from [lo, hi] to dst through
// caller-owned run scratch. Because it never restructures the tree, any
// number of goroutines may call it on the same Treap concurrently — each
// with its own run and RNG — provided no mutation runs at the same time.
func (t *Treap[K]) SampleRunAppend(run *TreapRun[K], dst []K, lo, hi K, k int, rng *xrand.RNG) ([]K, error) {
	if err := sampleArgsErr(k); err != nil {
		return dst, err
	}
	if k == 0 {
		return dst, nil
	}
	t.InitRun(run, lo, hi)
	if run.count == 0 {
		return dst, ErrEmptyRange
	}
	if run.total <= 0 {
		return dst, ErrZeroWeightRange
	}
	for i := 0; i < k; i++ {
		dst = append(dst, run.Sample(rng))
	}
	return dst, nil
}

// RangeStats returns the number of keys and the weight mass in [lo, hi] in
// one O(log n) expected read-only descent.
func (t *Treap[K]) RangeStats(lo, hi K) (count int, weight float64) {
	if hi < lo {
		return 0, 0
	}
	rangeAgg(t.root, lo, hi, false, false, &count, &weight)
	return count, weight
}

func rangeAgg[K cmp.Ordered](n *wnode[K], lo, hi K, loB, hiB bool, count *int, weight *float64) {
	if n == nil {
		return
	}
	if loB && hiB {
		*count += n.size
		*weight += n.wsum
		return
	}
	inLo := loB || !(n.key < lo)
	inHi := hiB || !(hi < n.key)
	if inLo {
		rangeAgg(n.left, lo, hi, loB, inHi, count, weight)
	}
	if inLo && inHi {
		*count++
		*weight += n.weight
	}
	if inHi {
		rangeAgg(n.right, lo, hi, inLo, hiB, count, weight)
	}
}

// AppendRange appends the keys in [lo, hi] to dst in sorted order.
// O(log n + out) expected; read-only.
func (t *Treap[K]) AppendRange(dst []K, lo, hi K) []K {
	if hi < lo {
		return dst
	}
	var rec func(n *wnode[K], loB, hiB bool)
	rec = func(n *wnode[K], loB, hiB bool) {
		if n == nil {
			return
		}
		inLo := loB || !(n.key < lo)
		inHi := hiB || !(hi < n.key)
		if inLo {
			rec(n.left, loB, inHi)
		}
		if inLo && inHi {
			dst = append(dst, n.key)
		}
		if inHi {
			rec(n.right, inLo, hiB)
		}
	}
	rec(t.root, false, false)
	return dst
}

// AppendItems appends every stored (key, weight) pair in key order. O(n).
func (t *Treap[K]) AppendItems(dst []Item[K]) []Item[K] {
	var rec func(n *wnode[K])
	rec = func(n *wnode[K]) {
		if n == nil {
			return
		}
		rec(n.left)
		dst = append(dst, Item[K]{Key: n.key, Weight: n.weight})
		rec(n.right)
	}
	rec(t.root)
	return dst
}

// MinKey returns the smallest stored key, and false when empty.
func (t *Treap[K]) MinKey() (K, bool) {
	var zero K
	n := t.root
	if n == nil {
		return zero, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, true
}

// MaxKey returns the largest stored key, and false when empty.
func (t *Treap[K]) MaxKey() (K, bool) {
	var zero K
	n := t.root
	if n == nil {
		return zero, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.key, true
}

// NewTreapFromSortedItems bulk-loads a Treap from items already sorted by
// key in O(n), using the rightmost-spine construction: each new node is
// attached after popping the spine nodes whose priorities it beats, so the
// heap and order invariants hold by construction. Returns ErrInvalidWeight
// for bad weights and ErrUnsortedItems for out-of-order keys. The input is
// not retained.
func NewTreapFromSortedItems[K cmp.Ordered](seed uint64, items []Item[K]) (*Treap[K], error) {
	t := NewTreap[K](seed)
	var spine []*wnode[K] // the rightmost root-to-leaf path, root first
	var prev K
	for i, it := range items {
		if it.Weight < 0 || math.IsNaN(it.Weight) || math.IsInf(it.Weight, 0) {
			return nil, ErrInvalidWeight
		}
		if i > 0 && it.Key < prev {
			return nil, ErrUnsortedItems
		}
		prev = it.Key
		n := &wnode[K]{key: it.Key, weight: it.Weight, priority: t.rng.Uint64()}
		var last *wnode[K]
		for len(spine) > 0 && spine[len(spine)-1].priority < n.priority {
			last = spine[len(spine)-1]
			last.update() // its subtree is final once popped
			spine = spine[:len(spine)-1]
		}
		n.left = last
		if len(spine) > 0 {
			spine[len(spine)-1].right = n
		}
		spine = append(spine, n)
	}
	for i := len(spine) - 1; i >= 0; i-- {
		spine[i].update()
	}
	if len(spine) > 0 {
		t.root = spine[0]
	}
	t.n = len(items)
	return t, nil
}
