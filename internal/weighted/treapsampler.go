package weighted

import (
	"cmp"
	"math"

	"github.com/irsgo/irs/internal/xrand"
)

// Treap is the fully dynamic weighted sampler: a treap over (key, weight)
// pairs maintaining subtree weight sums. Unlike the static samplers in this
// package it supports inserting and deleting weighted items, at the price
// of O(log n) expected time per sample (a weight-guided root-to-leaf
// descent).
//
//	Insert / Delete / UpdateWeight   O(log n) expected
//	Count / TotalWeight              O(log n) expected
//	SampleAppend (t samples)         O(log n + t log log n) expected
//
// Queries are read-only: Count, TotalWeight, RangeStats, AppendRange, and
// SampleRunAppend (with caller-owned scratch) never restructure the tree,
// so any number of goroutines may run them concurrently as long as no
// mutation (Insert, Delete, UpdateWeight) runs at the same time.
// SampleAppend draws through receiver-internal scratch and is therefore
// additionally exclusive against other SampleAppend calls on the same
// receiver — the same contract as core.Dynamic.
type Treap[K cmp.Ordered] struct {
	root *wnode[K]
	rng  *xrand.RNG
	n    int
	run  TreapRun[K] // reused by SampleAppend; makes steady-state queries allocation-free
}

type wnode[K cmp.Ordered] struct {
	key         K
	weight      float64
	wsum        float64
	size        int
	priority    uint64
	left, right *wnode[K]
}

func (n *wnode[K]) sizeOf() int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *wnode[K]) wsumOf() float64 {
	if n == nil {
		return 0
	}
	return n.wsum
}

func (n *wnode[K]) update() {
	n.size = 1 + n.left.sizeOf() + n.right.sizeOf()
	n.wsum = n.weight + n.left.wsumOf() + n.right.wsumOf()
}

// NewTreap returns an empty dynamic weighted sampler; seed drives the
// treap's rebalancing priorities.
func NewTreap[K cmp.Ordered](seed uint64) *Treap[K] {
	return &Treap[K]{rng: xrand.New(seed)}
}

// NewTreapFromItems bulk-inserts items. O(n log n).
func NewTreapFromItems[K cmp.Ordered](seed uint64, items []Item[K]) (*Treap[K], error) {
	t := NewTreap[K](seed)
	for _, it := range items {
		if err := t.Insert(it.Key, it.Weight); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Len returns the number of stored items.
func (t *Treap[K]) Len() int { return t.n }

func wsplit[K cmp.Ordered](n *wnode[K], key K, strict bool) (l, r *wnode[K]) {
	// strict: left gets keys < key; otherwise left gets keys <= key.
	if n == nil {
		return nil, nil
	}
	goLeft := n.key < key || (!strict && n.key == key)
	if goLeft {
		n.right, r = wsplit(n.right, key, strict)
		n.update()
		return n, r
	}
	l, n.left = wsplit(n.left, key, strict)
	n.update()
	return l, n
}

func wmerge[K cmp.Ordered](l, r *wnode[K]) *wnode[K] {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.priority >= r.priority {
		l.right = wmerge(l.right, r)
		l.update()
		return l
	}
	r.left = wmerge(l, r.left)
	r.update()
	return r
}

// Insert adds an item (duplicate keys allowed). Returns ErrInvalidWeight
// for negative, NaN, or infinite weights.
func (t *Treap[K]) Insert(key K, weight float64) error {
	if weight < 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return ErrInvalidWeight
	}
	n := &wnode[K]{key: key, weight: weight, priority: t.rng.Uint64()}
	n.update()
	l, r := wsplit(t.root, key, true)
	t.root = wmerge(wmerge(l, n), r)
	t.n++
	return nil
}

// Delete removes one occurrence of key, reporting whether one existed.
func (t *Treap[K]) Delete(key K) bool {
	var deleted bool
	t.root = wdelete(t.root, key, &deleted)
	if deleted {
		t.n--
	}
	return deleted
}

func wdelete[K cmp.Ordered](n *wnode[K], key K, deleted *bool) *wnode[K] {
	if n == nil {
		return nil
	}
	switch {
	case key < n.key:
		n.left = wdelete(n.left, key, deleted)
	case key > n.key:
		n.right = wdelete(n.right, key, deleted)
	default:
		*deleted = true
		return wmerge(n.left, n.right)
	}
	n.update()
	return n
}

// UpdateWeight sets the weight of one occurrence of key, reporting whether
// the key was present. Returns ErrInvalidWeight for bad weights.
func (t *Treap[K]) UpdateWeight(key K, weight float64) (bool, error) {
	if weight < 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return false, ErrInvalidWeight
	}
	// Descend to the node, then fix sums on the way back up.
	var apply func(n *wnode[K]) bool
	apply = func(n *wnode[K]) bool {
		if n == nil {
			return false
		}
		var ok bool
		switch {
		case key < n.key:
			ok = apply(n.left)
		case key > n.key:
			ok = apply(n.right)
		default:
			n.weight = weight
			ok = true
		}
		if ok {
			n.update()
		}
		return ok
	}
	return apply(t.root), nil
}

// Count returns the number of items with keys in [lo, hi]. Read-only.
func (t *Treap[K]) Count(lo, hi K) int {
	c, _ := t.RangeStats(lo, hi)
	return c
}

// TotalWeight returns the weight mass in [lo, hi]. Read-only.
func (t *Treap[K]) TotalWeight(lo, hi K) float64 {
	_, w := t.RangeStats(lo, hi)
	return w
}

// SampleAppend appends k samples from [lo, hi], each with probability
// proportional to its weight, drawing through the receiver's internal run
// scratch (see TreapRun and SampleRunAppend for the concurrent-reader
// variant). O(log n + k log log n) expected.
func (t *Treap[K]) SampleAppend(dst []K, lo, hi K, k int, rng *xrand.RNG) ([]K, error) {
	return t.SampleRunAppend(&t.run, dst, lo, hi, k, rng)
}

// sampleNode descends by cumulative weight: x is uniform in [0, n.wsum).
// The invariant maintained at every step is that n's subtree has positive
// weight mass; the drift branches keep it when floating-point error pushes
// x past a boundary.
func sampleNode[K cmp.Ordered](n *wnode[K], x float64) K {
	for {
		lw := n.left.wsumOf()
		if x < lw && lw > 0 {
			n = n.left
			continue
		}
		x -= lw
		if x < n.weight && n.weight > 0 {
			return n.key
		}
		x -= n.weight
		if n.right != nil && n.right.wsum > 0 {
			n = n.right
			continue
		}
		// Floating-point drift: x overshot the subtree mass. Clamp to the
		// nearest positive mass: this node, else the left subtree.
		if n.weight > 0 {
			return n.key
		}
		if n.left != nil && n.left.wsum > 0 {
			x = 0
			n = n.left
			continue
		}
		panic("weighted: sampling descent reached a zero-mass subtree")
	}
}

// Validate checks order, heap priorities, sizes, and weight sums (tests).
func (t *Treap[K]) Validate() error {
	_, _, err := wvalidate(t.root)
	if err == nil && t.root.sizeOf() != t.n {
		return validationErr("weighted: size counter mismatch")
	}
	return err
}

type validationErr string

func (e validationErr) Error() string { return string(e) }

func wvalidate[K cmp.Ordered](n *wnode[K]) (int, float64, error) {
	if n == nil {
		return 0, 0, nil
	}
	ls, lw, err := wvalidate(n.left)
	if err != nil {
		return 0, 0, err
	}
	rs, rw, err := wvalidate(n.right)
	if err != nil {
		return 0, 0, err
	}
	if n.size != ls+rs+1 {
		return 0, 0, validationErr("weighted: treap size field stale")
	}
	if diff := n.wsum - (lw + rw + n.weight); diff > 1e-9 || diff < -1e-9 {
		return 0, 0, validationErr("weighted: treap weight sum stale")
	}
	if n.left != nil && (n.left.key > n.key || n.left.priority > n.priority) {
		return 0, 0, validationErr("weighted: treap left invariant")
	}
	if n.right != nil && (n.right.key < n.key || n.right.priority > n.priority) {
		return 0, 0, validationErr("weighted: treap right invariant")
	}
	return n.size, n.wsum, nil
}
