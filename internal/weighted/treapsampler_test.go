package weighted

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/irsgo/irs/internal/xrand"
)

func TestTreapEmpty(t *testing.T) {
	tr := NewTreap[int](1)
	r := xrand.New(2)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, err := tr.SampleAppend(nil, 0, 10, 1, r); err != ErrEmptyRange {
		t.Fatalf("err = %v", err)
	}
	if tr.Delete(5) {
		t.Fatal("Delete on empty")
	}
	if ok, err := tr.UpdateWeight(5, 1); ok || err != nil {
		t.Fatalf("UpdateWeight on empty: %v %v", ok, err)
	}
	if tr.Count(0, 10) != 0 || tr.TotalWeight(0, 10) != 0 {
		t.Fatal("Count/TotalWeight on empty")
	}
}

func TestTreapInsertValidation(t *testing.T) {
	tr := NewTreap[int](3)
	for _, w := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := tr.Insert(1, w); err != ErrInvalidWeight {
			t.Fatalf("Insert weight %v: err = %v", w, err)
		}
	}
	if _, err := tr.UpdateWeight(1, -2); err != ErrInvalidWeight {
		t.Fatalf("UpdateWeight err = %v", err)
	}
	if _, err := NewTreapFromItems[int](4, []Item[int]{{1, -1}}); err != ErrInvalidWeight {
		t.Fatalf("FromItems err = %v", err)
	}
}

func TestTreapBasicOps(t *testing.T) {
	tr, err := NewTreapFromItems[int](5, []Item[int]{
		{10, 1}, {20, 2}, {30, 3}, {40, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Count(15, 35); got != 2 {
		t.Fatalf("Count = %d", got)
	}
	if got := tr.TotalWeight(15, 35); math.Abs(got-5) > 1e-12 {
		t.Fatalf("TotalWeight = %v", got)
	}
	if !tr.Delete(20) || tr.Len() != 3 {
		t.Fatal("Delete")
	}
	if got := tr.TotalWeight(0, 100); math.Abs(got-8) > 1e-12 {
		t.Fatalf("TotalWeight after delete = %v", got)
	}
	ok, err := tr.UpdateWeight(30, 10)
	if err != nil || !ok {
		t.Fatalf("UpdateWeight: %v %v", ok, err)
	}
	if got := tr.TotalWeight(0, 100); math.Abs(got-15) > 1e-12 {
		t.Fatalf("TotalWeight after update = %v", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTreapProportionalSampling(t *testing.T) {
	tr, err := NewTreapFromItems[int](6, []Item[int]{
		{10, 1}, {20, 2}, {30, 3}, {40, 4}, {50, 10}, {60, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(7)
	const draws = 300000
	out, err := tr.SampleAppend(make([]int, 0, draws), 20, 60, draws, r)
	if err != nil {
		t.Fatal(err)
	}
	weights := map[int]float64{20: 2, 30: 3, 40: 4, 50: 10}
	counts := map[int]int{}
	for _, k := range out {
		if k == 60 {
			t.Fatal("sampled zero-weight key")
		}
		counts[k]++
	}
	chi2 := 0.0
	for k, w := range weights {
		exp := draws * w / 19
		d := float64(counts[k]) - exp
		chi2 += d * d / exp
	}
	if chi2 > 16.3 { // 3 df at alpha=0.001
		t.Fatalf("chi-square %.1f, counts %v", chi2, counts)
	}
	// The structure must be intact after the split/merge queries.
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTreapZeroWeightRange(t *testing.T) {
	tr, err := NewTreapFromItems[int](8, []Item[int]{{1, 0}, {2, 0}, {3, 5}})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(9)
	if _, err := tr.SampleAppend(nil, 1, 2, 1, r); err != ErrZeroWeightRange {
		t.Fatalf("err = %v", err)
	}
	if _, err := tr.SampleAppend(nil, 1, 3, -1, r); err != ErrInvalidCount {
		t.Fatalf("err = %v", err)
	}
	if out, err := tr.SampleAppend(nil, 1, 3, 0, r); err != nil || len(out) != 0 {
		t.Fatalf("t=0: %v %v", out, err)
	}
	if _, err := tr.SampleAppend(nil, 3, 1, 1, r); err != ErrEmptyRange {
		t.Fatalf("inverted err = %v", err)
	}
}

// TestTreapAgainstModel runs random insert/delete sequences against a
// slice model. The weight of a key is a deterministic function of the key,
// so duplicate occurrences are interchangeable and the model's choice of
// which occurrence a Delete removes cannot diverge from the treap's.
// (UpdateWeight semantics are covered by the dedicated tests above.)
func TestTreapAgainstModel(t *testing.T) {
	r := xrand.New(10)
	tr := NewTreap[int](11)
	weightOf := func(k int) float64 { return float64(k%13)/2 + 0.25 }
	type entry struct {
		key int
		w   float64
	}
	var model []entry
	for op := 0; op < 4000; op++ {
		k := r.Intn(200)
		if r.Bernoulli(0.6) {
			if err := tr.Insert(k, weightOf(k)); err != nil {
				t.Fatal(err)
			}
			model = append(model, entry{k, weightOf(k)})
		} else {
			got := tr.Delete(k)
			want := false
			for i, e := range model {
				if e.key == k {
					model = append(model[:i], model[i+1:]...)
					want = true
					break
				}
			}
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, want %d", op, tr.Len(), len(model))
		}
		if op%173 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			lo, hi := r.Intn(200), r.Intn(200)
			if lo > hi {
				lo, hi = hi, lo
			}
			wantC, wantW := 0, 0.0
			for _, e := range model {
				if e.key >= lo && e.key <= hi {
					wantC++
					wantW += e.w
				}
			}
			if got := tr.Count(lo, hi); got != wantC {
				t.Fatalf("op %d: Count = %d, want %d", op, got, wantC)
			}
			if got := tr.TotalWeight(lo, hi); math.Abs(got-wantW) > 1e-6 {
				t.Fatalf("op %d: TotalWeight = %v, want %v", op, got, wantW)
			}
		}
	}
}

// TestTreapUpdateWeightOnDuplicates: duplicate-key updates touch exactly
// one occurrence, preserving the total of the others.
func TestTreapUpdateWeightOnDuplicates(t *testing.T) {
	tr := NewTreap[int](12)
	for i := 0; i < 5; i++ {
		if err := tr.Insert(7, 2); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := tr.UpdateWeight(7, 100)
	if err != nil || !ok {
		t.Fatal("update failed")
	}
	if got := tr.TotalWeight(7, 7); math.Abs(got-108) > 1e-12 {
		t.Fatalf("TotalWeight = %v, want 108", got)
	}
}

// TestTreapPropertySampleMembership: samples always come from the range
// and carry positive weight.
func TestTreapPropertySampleMembership(t *testing.T) {
	r := xrand.New(13)
	check := func(raw []uint8) bool {
		tr := NewTreap[int](14)
		positive := map[int]bool{}
		for _, v := range raw {
			k := int(v % 50)
			w := float64(v % 7)
			if tr.Insert(k, w) != nil {
				return false
			}
			if w > 0 {
				positive[k] = true
			}
		}
		out, err := tr.SampleAppend(nil, 10, 40, 20, r)
		if err != nil {
			return err == ErrEmptyRange || err == ErrZeroWeightRange
		}
		for _, k := range out {
			if k < 10 || k > 40 || !positive[k] {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTreapMatchesStaticSamplers: the dynamic treap's distribution matches
// the static Fenwick sampler on identical data.
func TestTreapMatchesStaticSamplers(t *testing.T) {
	items := makeItems(1500, 15)
	tr, err := NewTreapFromItems(16, items)
	if err != nil {
		t.Fatal(err)
	}
	fen, err := NewFenwick(items)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(17)
	lo, hi := 100, 600
	keyW := map[int]float64{}
	total := 0.0
	for _, it := range items {
		if it.Key >= lo && it.Key <= hi {
			keyW[it.Key] += it.Weight
			total += it.Weight
		}
	}
	const draws = 200000
	for name, s := range map[string]Sampler[int]{"treap": tr, "fenwick": fen} {
		out, err := s.SampleAppend(make([]int, 0, draws), lo, hi, draws, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		counts := map[int]int{}
		for _, k := range out {
			counts[k]++
		}
		chi2, df := 0.0, 0
		for k, w := range keyW {
			exp := draws * w / total
			if exp < 10 {
				continue
			}
			d := float64(counts[k]) - exp
			chi2 += d * d / exp
			df++
		}
		if lim := float64(df) + 5*math.Sqrt(2*float64(df)); chi2 > lim {
			t.Fatalf("%s: chi2 %.1f over %d cells (limit %.1f)", name, chi2, df, lim)
		}
	}
}

func TestTreapInterfaceCompliance(t *testing.T) {
	var _ Sampler[int] = NewTreap[int](18)
}

func TestTreapSortedKeysViaCount(t *testing.T) {
	// Insert shuffled, verify order statistics via Count prefix queries.
	r := xrand.New(19)
	tr := NewTreap[int](20)
	keys := r.Perm(500)
	for _, k := range keys {
		if err := tr.Insert(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	sort.Ints(keys)
	for _, probe := range []int{0, 100, 250, 499} {
		if got := tr.Count(0, probe); got != probe+1 {
			t.Fatalf("Count(0,%d) = %d, want %d", probe, got, probe+1)
		}
	}
}

func BenchmarkTreapSample64(b *testing.B) {
	items := makeItems(1<<17, 21)
	tr, err := NewTreapFromItems(22, items)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(23)
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, _ = tr.SampleAppend(buf, 1000, 50000, 64, r)
	}
}
