package spec

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestParseFile(t *testing.T) {
	text := `
# datasets the node serves
events
logs:weighted   # per-line comment

# the cluster topology
127.0.0.1:8081@-inf:0, 127.0.0.1:8082@0:+inf
`
	f, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	wantDS := []Dataset{{Name: "events"}, {Name: "logs", Weighted: true}}
	if len(f.Datasets) != len(wantDS) {
		t.Fatalf("got %d datasets, want %d", len(f.Datasets), len(wantDS))
	}
	for i := range wantDS {
		if f.Datasets[i] != wantDS[i] {
			t.Errorf("dataset %d = %+v, want %+v", i, f.Datasets[i], wantDS[i])
		}
	}
	wantP := []Partition{
		{Addr: "127.0.0.1:8081", Lo: math.Inf(-1), Hi: 0},
		{Addr: "127.0.0.1:8082", Lo: 0, Hi: math.Inf(1)},
	}
	if len(f.Partitions) != len(wantP) {
		t.Fatalf("got %d partitions, want %d", len(f.Partitions), len(wantP))
	}
	for i := range wantP {
		if f.Partitions[i] != wantP[i] {
			t.Errorf("partition %d = %+v, want %+v", i, f.Partitions[i], wantP[i])
		}
	}
	if got := f.DatasetNames(); len(got) != 2 || got[0] != "events" || got[1] != "logs" {
		t.Errorf("DatasetNames() = %v", got)
	}
}

func TestParseFileErrors(t *testing.T) {
	cases := []struct {
		text string
		want error
	}{
		{"events\nevents:weighted\n", ErrDuplicateDataset},
		{"events:treap\n", ErrBadKind},
		{"addr@10:0\n", ErrBadRange},
		{"@0:10\n", ErrBadPartition},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.text); !errors.Is(err, tc.want) {
			t.Errorf("Parse(%q): got %v, want %v", tc.text, err, tc.want)
		}
	}
	// An empty file is not an error at this layer; policy is the caller's.
	f, err := Parse("# nothing\n\n")
	if err != nil || len(f.Datasets) != 0 || len(f.Partitions) != 0 {
		t.Errorf("empty config: got %+v, %v", f, err)
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "irs.conf")
	if err := os.WriteFile(path, []byte("events\nlogs:weighted\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Datasets) != 2 {
		t.Fatalf("got %d datasets, want 2", len(f.Datasets))
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.conf")); err == nil {
		t.Error("loading an absent file did not error")
	}
}

// FuzzSpecRoundTrip pins two properties of the spec grammar: String() →
// Parse is the identity for every representable dataset and partition
// (including ±Inf bounds and negative ranges), and no input — however
// malformed — makes a parser panic.
func FuzzSpecRoundTrip(f *testing.F) {
	f.Add("events:weighted", "127.0.0.1:8080@0:1000", 0.0, 1000.0)
	f.Add("x", "a:1@-inf:+inf", math.Inf(-1), math.Inf(1))
	f.Add(":bad", "no-at-sign", -5.5, -1.25)
	f.Add("a,b\n#c", "u@ser@h:1@0:1", math.SmallestNonzeroFloat64, math.MaxFloat64)
	f.Fuzz(func(t *testing.T, raw, praw string, lo, hi float64) {
		// Malformed inputs must error, never panic.
		if d, err := ParseDataset(raw); err == nil {
			back, err := ParseDataset(d.String())
			if err != nil || back != d {
				t.Errorf("dataset round trip %q -> %+v -> %q -> %+v (%v)", raw, d, d.String(), back, err)
			}
		}
		if p, err := ParsePartition(praw); err == nil {
			back, err := ParsePartition(p.String())
			if err != nil || back != p {
				t.Errorf("partition round trip %q -> %+v -> %q -> %+v (%v)", praw, p, p.String(), back, err)
			}
		}
		_, _ = Parse(raw + "\n" + praw)

		// Constructed partitions with arbitrary finite-or-infinite bounds
		// round-trip exactly when valid (Lo <= Hi, neither NaN).
		if !math.IsNaN(lo) && !math.IsNaN(hi) && lo <= hi {
			p := Partition{Addr: "n:1", Lo: lo, Hi: hi}
			back, err := ParsePartition(p.String())
			if err != nil {
				t.Fatalf("ParsePartition(%q): %v", p.String(), err)
			}
			if back != p {
				t.Errorf("bound round trip %+v -> %q -> %+v", p, p.String(), back)
			}
		}
	})
}
