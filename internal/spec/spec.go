// Package spec parses the small configuration grammars the irs daemons
// share on their command lines: dataset specs ("name[:weighted|:unweighted]",
// used by irsd and irsload) and partition specs ("addr@lo:hi", used by
// irsrouter). Each parser returns typed errors and each parsed value
// round-trips through String(), so flag defaults, log lines, and error
// messages all speak the same grammar.
package spec

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Errors shared by the parsers. Concrete parse failures wrap one of these,
// so callers can errors.Is without matching message text.
var (
	// ErrEmptySpec rejects an empty spec or an empty spec list.
	ErrEmptySpec = fmt.Errorf("spec: empty spec")
	// ErrBadKind rejects a dataset kind outside weighted/unweighted.
	ErrBadKind = fmt.Errorf("spec: unknown dataset kind")
	// ErrBadPartition rejects a malformed partition spec.
	ErrBadPartition = fmt.Errorf("spec: malformed partition")
	// ErrBadRange rejects a partition whose bounds are NaN or inverted.
	ErrBadRange = fmt.Errorf("spec: invalid partition range")
)

// Dataset is one parsed "name[:weighted|:unweighted]" spec.
type Dataset struct {
	Name     string
	Weighted bool
}

// String renders the spec in canonical form, always spelling the kind —
// ParseDataset(d.String()) == d.
func (d Dataset) String() string {
	if d.Weighted {
		return d.Name + ":weighted"
	}
	return d.Name + ":unweighted"
}

// ParseDataset parses one "name[:kind]" spec; an omitted kind means
// unweighted.
func ParseDataset(raw string) (Dataset, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return Dataset{}, ErrEmptySpec
	}
	name, kind, ok := strings.Cut(raw, ":")
	if name == "" {
		return Dataset{}, fmt.Errorf("%w: %q has no dataset name", ErrEmptySpec, raw)
	}
	if !ok || kind == "" {
		return Dataset{Name: name}, nil
	}
	switch kind {
	case "unweighted":
		return Dataset{Name: name}, nil
	case "weighted":
		return Dataset{Name: name, Weighted: true}, nil
	default:
		return Dataset{}, fmt.Errorf("%w: dataset %q kind %q (want weighted or unweighted)", ErrBadKind, name, kind)
	}
}

// ParseDatasets parses a comma-separated spec list, skipping empty
// elements (so trailing commas are harmless) but rejecting an empty list.
func ParseDatasets(raw string) ([]Dataset, error) {
	var out []Dataset
	for _, part := range strings.Split(raw, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		d, err := ParseDataset(part)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no datasets in %q", ErrEmptySpec, raw)
	}
	return out, nil
}

// Partition is one parsed "addr@lo:hi" spec: the node at Addr owns keys in
// [Lo, Hi]. The separator is '@' because addresses themselves contain ':'
// ("127.0.0.1:8080@0:1000"). Bounds may be -inf/+inf (any case) for
// unbounded edge partitions.
type Partition struct {
	Addr   string
	Lo, Hi float64
}

// String renders the spec in canonical form — ParsePartition(p.String())
// == p. Infinities render as -inf/+inf.
func (p Partition) String() string {
	return fmt.Sprintf("%s@%s:%s", p.Addr, formatBound(p.Lo), formatBound(p.Hi))
}

func formatBound(v float64) string {
	switch {
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsInf(v, 1):
		return "+inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func parseBound(s string) (float64, error) {
	switch strings.ToLower(s) {
	case "-inf":
		return math.Inf(-1), nil
	case "inf", "+inf":
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// ParsePartition parses one "addr@lo:hi" spec.
func ParsePartition(raw string) (Partition, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return Partition{}, ErrEmptySpec
	}
	// Split on the LAST '@' so IPv6-ish or userinfo-bearing addresses
	// survive as long as the range itself has none.
	at := strings.LastIndexByte(raw, '@')
	if at < 0 {
		return Partition{}, fmt.Errorf("%w: %q has no '@' (want addr@lo:hi)", ErrBadPartition, raw)
	}
	addr, rng := raw[:at], raw[at+1:]
	if addr == "" {
		return Partition{}, fmt.Errorf("%w: %q has no address", ErrBadPartition, raw)
	}
	loS, hiS, ok := strings.Cut(rng, ":")
	if !ok {
		return Partition{}, fmt.Errorf("%w: %q range %q has no ':' (want lo:hi)", ErrBadPartition, raw, rng)
	}
	lo, err := parseBound(loS)
	if err != nil {
		return Partition{}, fmt.Errorf("%w: %q lower bound %q: %v", ErrBadRange, raw, loS, err)
	}
	hi, err := parseBound(hiS)
	if err != nil {
		return Partition{}, fmt.Errorf("%w: %q upper bound %q: %v", ErrBadRange, raw, hiS, err)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || hi < lo {
		return Partition{}, fmt.Errorf("%w: %q has [%v, %v]", ErrBadRange, raw, lo, hi)
	}
	return Partition{Addr: addr, Lo: lo, Hi: hi}, nil
}

// ParsePartitions parses a comma-separated partition list, skipping empty
// elements but rejecting an empty list. It does not check contiguity —
// that is cluster.NewMap's job, which owns the ordering contract.
func ParsePartitions(raw string) ([]Partition, error) {
	var out []Partition
	for _, part := range strings.Split(raw, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		p, err := ParsePartition(part)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no partitions in %q", ErrEmptySpec, raw)
	}
	return out, nil
}
