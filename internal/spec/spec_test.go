package spec

import (
	"errors"
	"math"
	"testing"
)

func TestParseDataset(t *testing.T) {
	cases := []struct {
		raw  string
		want Dataset
	}{
		{"demo", Dataset{Name: "demo"}},
		{"demo:unweighted", Dataset{Name: "demo"}},
		{"demo:weighted", Dataset{Name: "demo", Weighted: true}},
		{"  demo:weighted  ", Dataset{Name: "demo", Weighted: true}},
		{"demo:", Dataset{Name: "demo"}},
	}
	for _, tc := range cases {
		got, err := ParseDataset(tc.raw)
		if err != nil {
			t.Fatalf("ParseDataset(%q): %v", tc.raw, err)
		}
		if got != tc.want {
			t.Errorf("ParseDataset(%q) = %+v, want %+v", tc.raw, got, tc.want)
		}
	}
}

func TestParseDatasetErrors(t *testing.T) {
	if _, err := ParseDataset(""); !errors.Is(err, ErrEmptySpec) {
		t.Errorf("empty spec: got %v, want ErrEmptySpec", err)
	}
	if _, err := ParseDataset(":weighted"); !errors.Is(err, ErrEmptySpec) {
		t.Errorf("missing name: got %v, want ErrEmptySpec", err)
	}
	if _, err := ParseDataset("demo:treap"); !errors.Is(err, ErrBadKind) {
		t.Errorf("bad kind: got %v, want ErrBadKind", err)
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	for _, d := range []Dataset{{Name: "a"}, {Name: "b", Weighted: true}} {
		got, err := ParseDataset(d.String())
		if err != nil {
			t.Fatalf("ParseDataset(%q): %v", d.String(), err)
		}
		if got != d {
			t.Errorf("round trip %+v -> %q -> %+v", d, d.String(), got)
		}
	}
}

func TestParseDatasets(t *testing.T) {
	got, err := ParseDatasets("a, b:weighted,, c:unweighted,")
	if err != nil {
		t.Fatal(err)
	}
	want := []Dataset{{Name: "a"}, {Name: "b", Weighted: true}, {Name: "c"}}
	if len(got) != len(want) {
		t.Fatalf("got %d specs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := ParseDatasets(" , ,"); !errors.Is(err, ErrEmptySpec) {
		t.Errorf("all-empty list: got %v, want ErrEmptySpec", err)
	}
}

func TestParsePartition(t *testing.T) {
	cases := []struct {
		raw  string
		want Partition
	}{
		{"127.0.0.1:8080@0:1000", Partition{Addr: "127.0.0.1:8080", Lo: 0, Hi: 1000}},
		{"localhost:9090@-inf:0", Partition{Addr: "localhost:9090", Lo: math.Inf(-1), Hi: 0}},
		{"n3:7070@1000:+inf", Partition{Addr: "n3:7070", Lo: 1000, Hi: math.Inf(1)}},
		{"n3:7070@1000:inf", Partition{Addr: "n3:7070", Lo: 1000, Hi: math.Inf(1)}},
		{"x@-2.5:2.5", Partition{Addr: "x", Lo: -2.5, Hi: 2.5}},
	}
	for _, tc := range cases {
		got, err := ParsePartition(tc.raw)
		if err != nil {
			t.Fatalf("ParsePartition(%q): %v", tc.raw, err)
		}
		if got != tc.want {
			t.Errorf("ParsePartition(%q) = %+v, want %+v", tc.raw, got, tc.want)
		}
	}
}

func TestParsePartitionErrors(t *testing.T) {
	cases := []struct {
		raw  string
		want error
	}{
		{"", ErrEmptySpec},
		{"127.0.0.1:8080", ErrBadPartition}, // no '@'
		{"@0:10", ErrBadPartition},          // no address
		{"addr@0-10", ErrBadPartition},      // no ':' in range
		{"addr@ten:20", ErrBadRange},        // unparseable bound
		{"addr@10:0", ErrBadRange},          // inverted
		{"addr@NaN:10", ErrBadRange},        // NaN
	}
	for _, tc := range cases {
		if _, err := ParsePartition(tc.raw); !errors.Is(err, tc.want) {
			t.Errorf("ParsePartition(%q): got %v, want %v", tc.raw, err, tc.want)
		}
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	for _, p := range []Partition{
		{Addr: "127.0.0.1:8080", Lo: 0, Hi: 1000},
		{Addr: "a:1", Lo: math.Inf(-1), Hi: math.Inf(1)},
		{Addr: "b:2", Lo: -0.125, Hi: 7e20},
	} {
		got, err := ParsePartition(p.String())
		if err != nil {
			t.Fatalf("ParsePartition(%q): %v", p.String(), err)
		}
		if got != p {
			t.Errorf("round trip %+v -> %q -> %+v", p, p.String(), got)
		}
	}
}

func TestParsePartitions(t *testing.T) {
	got, err := ParsePartitions("a:1@-inf:0, b:2@0:100, c:3@100:+inf")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d partitions, want 3", len(got))
	}
	if got[1] != (Partition{Addr: "b:2", Lo: 0, Hi: 100}) {
		t.Errorf("partition 1 = %+v", got[1])
	}
}
