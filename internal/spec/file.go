package spec

import (
	"fmt"
	"os"
	"strings"
)

// Config-file loading: both daemons accept -config pointing at a file in
// the exact grammar their flags speak, one spec per line (or several per
// line, comma-separated). '#' starts a comment, blank lines are skipped,
// and each element is classified by shape: a spec containing '@' is a
// partition ("addr@lo:hi"), anything else a dataset
// ("name[:weighted|:unweighted]"). One file can therefore drive irsd
// (datasets only), irsrouter (partitions plus the dataset set), or both
// halves of a deployment from a single source of truth.

// ErrDuplicateDataset rejects a config file naming one dataset twice —
// a reload could not decide which kind wins.
var ErrDuplicateDataset = fmt.Errorf("spec: duplicate dataset in config")

// File is one parsed config file.
type File struct {
	Datasets   []Dataset
	Partitions []Partition
}

// DatasetNames returns the dataset names in file order.
func (f File) DatasetNames() []string {
	names := make([]string, len(f.Datasets))
	for i, d := range f.Datasets {
		names[i] = d.Name
	}
	return names
}

// Parse parses config-file text. Dataset names must be unique; an empty
// file (nothing but comments and blank lines) parses to an empty File —
// whether that is valid is the caller's policy (irsd rejects a config
// with no datasets, irsrouter one with no partitions).
func Parse(text string) (File, error) {
	var f File
	seen := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, elem := range strings.Split(line, ",") {
			elem = strings.TrimSpace(elem)
			if elem == "" {
				continue
			}
			if strings.ContainsRune(elem, '@') {
				p, err := ParsePartition(elem)
				if err != nil {
					return File{}, fmt.Errorf("line %d: %w", ln+1, err)
				}
				f.Partitions = append(f.Partitions, p)
				continue
			}
			d, err := ParseDataset(elem)
			if err != nil {
				return File{}, fmt.Errorf("line %d: %w", ln+1, err)
			}
			if seen[d.Name] {
				return File{}, fmt.Errorf("line %d: %w: %q", ln+1, ErrDuplicateDataset, d.Name)
			}
			seen[d.Name] = true
			f.Datasets = append(f.Datasets, d)
		}
	}
	return f, nil
}

// Load reads and parses the config file at path.
func Load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, fmt.Errorf("spec: %w", err)
	}
	f, err := Parse(string(data))
	if err != nil {
		return File{}, fmt.Errorf("spec: config %s: %w", path, err)
	}
	return f, nil
}
