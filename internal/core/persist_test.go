package core

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"github.com/irsgo/irs/internal/xrand"
)

func TestStaticRoundTrip(t *testing.T) {
	s := NewStatic([]float64{3.5, 1.25, 2.75, 2.75})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStatic[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("Len = %d", got.Len())
	}
	for i := 0; i < 4; i++ {
		if got.At(i) != s.At(i) {
			t.Fatalf("At(%d) = %v, want %v", i, got.At(i), s.At(i))
		}
	}
}

func TestDynamicRoundTrip(t *testing.T) {
	d := NewDynamic[int]()
	r := xrand.New(1)
	for i := 0; i < 20000; i++ {
		d.Insert(r.Intn(5000))
	}
	for i := 0; i < 5000; i++ {
		d.Delete(r.Intn(5000))
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDynamic[int](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), d.Len())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// Logical equality: same counts on probe ranges and same key order.
	for _, probe := range [][2]int{{0, 100}, {1000, 2000}, {0, 5000}} {
		if a, b := got.Count(probe[0], probe[1]), d.Count(probe[0], probe[1]); a != b {
			t.Fatalf("Count%v = %d, want %d", probe, a, b)
		}
	}
	ka := d.AppendRange(nil, 0, 5000)
	kb := got.AppendRange(nil, 0, 5000)
	if len(ka) != len(kb) {
		t.Fatalf("key count %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("key %d: %d vs %d", i, ka[i], kb[i])
		}
	}
	// The loaded structure samples correctly.
	out, err := got.Sample(100, 4000, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("got %d samples", len(out))
	}
}

func TestStringKeyRoundTrip(t *testing.T) {
	d := NewDynamic[string]()
	for _, w := range []string{"pear", "apple", "fig", "fig"} {
		d.Insert(w)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDynamic[string](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count("fig", "fig") != 2 {
		t.Fatal("duplicate string keys lost")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadStatic[int](strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := LoadStatic[int](strings.NewReader("bogus data here")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Kind mismatch: a dynamic snapshot fed to LoadStatic.
	d := NewDynamic[int]()
	d.Insert(1)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStatic[int](&buf); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	// Type mismatch inside gob: ints written, strings requested.
	s := NewStatic([]int{1, 2})
	buf.Reset()
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStatic[string](&buf); err == nil {
		t.Fatal("gob type mismatch accepted")
	}
}

func TestRankSelectQuantile(t *testing.T) {
	d := NewDynamic[int]()
	for i := 0; i < 1000; i++ {
		d.Insert(i * 2) // evens 0..1998
	}
	if got := d.RankLower(100); got != 50 {
		t.Fatalf("RankLower(100) = %d", got)
	}
	if got := d.RankUpper(100); got != 51 {
		t.Fatalf("RankUpper(100) = %d", got)
	}
	if got := d.RankLower(101); got != 51 {
		t.Fatalf("RankLower(101) = %d", got)
	}
	for _, i := range []int{0, 1, 499, 999} {
		if got := d.SelectRank(i); got != i*2 {
			t.Fatalf("SelectRank(%d) = %d, want %d", i, got, i*2)
		}
	}
	if q, ok := d.Quantile(0.5); !ok || q != 998 {
		t.Fatalf("Quantile(0.5) = %d, %v", q, ok)
	}
	if q, ok := d.Quantile(0); !ok || q != 0 {
		t.Fatalf("Quantile(0) = %d, %v", q, ok)
	}
	if q, ok := d.Quantile(1); !ok || q != 1998 {
		t.Fatalf("Quantile(1) = %d, %v", q, ok)
	}
	if q, ok := d.Quantile(2); !ok || q != 1998 { // clamped
		t.Fatalf("Quantile(2) = %d, %v", q, ok)
	}
	empty := NewDynamic[int]()
	if _, ok := empty.Quantile(0.5); ok {
		t.Fatal("Quantile on empty returned ok")
	}

	s := NewStatic([]int{10, 20, 20, 30})
	if got := s.RankLower(20); got != 1 {
		t.Fatalf("static RankLower = %d", got)
	}
	if got := s.RankUpper(20); got != 3 {
		t.Fatalf("static RankUpper = %d", got)
	}
	if q, ok := s.Quantile(0.5); !ok || q != 20 {
		t.Fatalf("static Quantile = %d, %v", q, ok)
	}
}

func TestSelectRankPanics(t *testing.T) {
	d := NewDynamic[int]()
	d.Insert(1)
	for _, i := range []int{-1, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SelectRank(%d) did not panic", i)
				}
			}()
			d.SelectRank(i)
		}()
	}
}

// TestSelectRankAgainstModel cross-checks SelectRank under churn.
func TestSelectRankAgainstModel(t *testing.T) {
	r := xrand.New(2)
	d := NewDynamic[int]()
	var keys []int
	for i := 0; i < 5000; i++ {
		k := r.Intn(10000)
		d.Insert(k)
		keys = append(keys, k)
	}
	for i := 0; i < 2000; i++ {
		k := keys[len(keys)-1]
		keys = keys[:len(keys)-1]
		if !d.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	sorted := append([]int(nil), keys...)
	sort.Ints(sorted)
	for trial := 0; trial < 500; trial++ {
		i := r.Intn(len(sorted))
		if got := d.SelectRank(i); got != sorted[i] {
			t.Fatalf("SelectRank(%d) = %d, want %d", i, got, sorted[i])
		}
	}
}
