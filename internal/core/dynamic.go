package core

import (
	"cmp"
	"slices"

	"github.com/irsgo/irs/internal/chunks"
	"github.com/irsgo/irs/internal/xrand"
)

// Dynamic is the dynamic IRS structure of the paper: a two-level chunked
// sorted list (internal/chunks) sampled by rejection. Space is O(n),
// updates are O(log n) amortized, and a query costs O(log n) to locate the
// range plus O(1) expected per sample, for O(log n + t) expected total.
//
// Dynamic is not safe for concurrent use during updates.
type Dynamic[K cmp.Ordered] struct {
	list *chunks.List[K]
	run  chunks.Run[K] // reused per query; makes steady-state queries allocation-free
}

var _ Sampler[int] = (*Dynamic[int])(nil)

// NewDynamic returns an empty Dynamic sampler.
func NewDynamic[K cmp.Ordered]() *Dynamic[K] {
	return &Dynamic[K]{list: chunks.New[K]()}
}

// NewDynamicFromSorted bulk-loads a Dynamic from sorted keys in O(n).
// The input is not retained. Returns ErrUnsorted on unsorted input.
func NewDynamicFromSorted[K cmp.Ordered](keys []K) (*Dynamic[K], error) {
	l, err := chunks.NewFromSorted(keys)
	if err != nil {
		return nil, ErrUnsorted
	}
	return &Dynamic[K]{list: l}, nil
}

// NewDynamicFromUnsorted bulk-loads a Dynamic from keys in any order,
// sorting a copy first. O(n log n).
func NewDynamicFromUnsorted[K cmp.Ordered](keys []K) *Dynamic[K] {
	own := append([]K(nil), keys...)
	slices.Sort(own)
	d, err := NewDynamicFromSorted(own)
	if err != nil {
		panic("core: sorted copy rejected: " + err.Error())
	}
	return d
}

// Insert adds key (duplicates allowed). O(log n) amortized.
func (d *Dynamic[K]) Insert(key K) { d.list.Insert(key) }

// Delete removes one occurrence of key. O(log n) amortized.
func (d *Dynamic[K]) Delete(key K) bool { return d.list.Delete(key) }

// Len returns the number of stored keys.
func (d *Dynamic[K]) Len() int { return d.list.Len() }

// Contains reports whether key is stored at least once. O(log n).
func (d *Dynamic[K]) Contains(key K) bool { return d.list.Contains(key) }

// Count returns the number of keys in [lo, hi]. O(log n).
func (d *Dynamic[K]) Count(lo, hi K) int { return d.list.Count(lo, hi) }

// RankLower returns the number of keys strictly less than key. O(log n).
func (d *Dynamic[K]) RankLower(key K) int { return d.list.RankLower(key) }

// RankUpper returns the number of keys less than or equal to key. O(log n).
func (d *Dynamic[K]) RankUpper(key K) int { return d.list.RankUpper(key) }

// SelectRank returns the key of rank i (0-based, sorted order); it panics
// if i is out of [0, Len()). O(log n). Together with RankLower/RankUpper
// this gives order statistics and quantiles over the live multiset.
func (d *Dynamic[K]) SelectRank(i int) K { return d.list.SelectRank(i) }

// Quantile returns the key at quantile q in [0, 1] (nearest-rank), and
// false if the structure is empty.
func (d *Dynamic[K]) Quantile(q float64) (K, bool) {
	var zero K
	if d.Len() == 0 {
		return zero, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	i := int(q * float64(d.Len()-1))
	return d.list.SelectRank(i), true
}

// Sample returns t independent uniform samples from [lo, hi].
// O(log n + t) expected.
func (d *Dynamic[K]) Sample(lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	return d.SampleAppend(nil, lo, hi, t, rng)
}

// SampleAppend is Sample appending into dst.
func (d *Dynamic[K]) SampleAppend(dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	if err := sampleArgsErr(t); err != nil {
		return dst, err
	}
	if t == 0 {
		return dst, nil
	}
	d.list.InitRun(&d.run, lo, hi)
	if d.run.Empty() {
		return dst, ErrEmptyRange
	}
	for i := 0; i < t; i++ {
		dst = append(dst, d.run.Sample(rng))
	}
	return dst, nil
}

// SampleRunAppend is SampleAppend drawing through caller-owned run scratch
// instead of the receiver's internal scratch. Because the underlying chunked
// list is never mutated by a query, any number of goroutines may call
// SampleRunAppend on the same Dynamic concurrently — each with its own run
// and RNG — provided no update runs at the same time. This is the read-only
// sampling entry point the shard.Backend contract requires: the sharded
// concurrent layer (internal/shard) relies on it to serve readers under a
// shared (non-exclusive) lock, with weighted.Treap.SampleRunAppend as its
// weighted counterpart.
func (d *Dynamic[K]) SampleRunAppend(run *chunks.Run[K], dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	if err := sampleArgsErr(t); err != nil {
		return dst, err
	}
	if t == 0 {
		return dst, nil
	}
	d.list.InitRun(run, lo, hi)
	if run.Empty() {
		return dst, ErrEmptyRange
	}
	for i := 0; i < t; i++ {
		dst = append(dst, run.Sample(rng))
	}
	return dst, nil
}

// SampleProbesAppend is SampleAppend that also accumulates the number of
// rejection probes spent, for the probe-tail experiment (E10).
func (d *Dynamic[K]) SampleProbesAppend(dst []K, lo, hi K, t int, rng *xrand.RNG, probes []int) ([]K, []int, error) {
	if err := sampleArgsErr(t); err != nil {
		return dst, probes, err
	}
	d.list.InitRun(&d.run, lo, hi)
	if t == 0 {
		return dst, probes, nil
	}
	if d.run.Empty() {
		return dst, probes, ErrEmptyRange
	}
	for i := 0; i < t; i++ {
		k, p := d.run.SampleProbes(rng)
		dst = append(dst, k)
		probes = append(probes, p)
	}
	return dst, probes, nil
}

// SampleWithoutReplacement returns min(t, Count(lo, hi)) distinct positions
// uniformly from the range, in random order. For t below half the range
// count it rejects duplicates out of the with-replacement stream (expected
// O(log n + t)); otherwise it reports the range and uses Floyd's algorithm
// (O(log n + |range|), only reached when the output is within a factor two
// of the whole range anyway).
func (d *Dynamic[K]) SampleWithoutReplacement(lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	if err := sampleArgsErr(t); err != nil {
		return nil, err
	}
	if t == 0 {
		return nil, nil
	}
	c := d.Count(lo, hi)
	if c == 0 {
		return nil, ErrEmptyRange
	}
	if 2*t >= c {
		all := d.list.AppendRange(make([]K, 0, c), lo, hi)
		return floydOver(all, t, rng), nil
	}
	// Fast path for t below half the range count: reject repeat *positions*
	// out of the with-replacement stream. Because 2t <= c, each draw is
	// fresh with probability >= 1/2, so the loop finishes in expected O(t)
	// draws.
	d.list.InitRun(&d.run, lo, hi)
	out := make([]K, 0, t)
	seen := make(map[uint64]struct{}, t)
	for len(out) < t {
		k, p := d.run.SamplePos(rng)
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		out = append(out, k)
	}
	return out, nil
}

// floydOver draws min(t, len(all)) distinct positions from all, in random
// order, using Floyd's algorithm. It permutes (and may return) all.
func floydOver[K cmp.Ordered](all []K, t int, rng *xrand.RNG) []K {
	if t >= len(all) {
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		return all
	}
	out := make([]K, 0, t)
	chosen := make(map[int]struct{}, t)
	m := len(all)
	for j := m - t; j < m; j++ {
		r := int(rng.Uint64n(uint64(j) + 1))
		if _, dup := chosen[r]; dup {
			r = j
		}
		chosen[r] = struct{}{}
		out = append(out, all[r])
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Footprint estimates resident bytes (slice capacities plus indexes).
func (d *Dynamic[K]) Footprint() int64 { return d.list.Footprint() }

// GeometryStats exposes the underlying chunk geometry for tests and
// experiments.
func (d *Dynamic[K]) GeometryStats() chunks.Stats { return d.list.GeometryStats() }

// AppendRange appends all keys in [lo, hi] in sorted order. O(log n + out).
func (d *Dynamic[K]) AppendRange(dst []K, lo, hi K) []K {
	return d.list.AppendRange(dst, lo, hi)
}

// AppendKeys appends every stored key in sorted order. O(n).
func (d *Dynamic[K]) AppendKeys(dst []K) []K {
	return d.list.AppendKeys(dst)
}

// Validate checks internal invariants (O(n); for tests).
func (d *Dynamic[K]) Validate() error { return d.list.Validate() }
