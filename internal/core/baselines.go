package core

import (
	"cmp"

	"github.com/irsgo/irs/internal/treap"
	"github.com/irsgo/irs/internal/xrand"
)

// TreapSampler is the classical dynamic baseline: an order-statistic treap
// where each sample costs a rank-select descent. Query time is
// O(log n + t·log n); the benchmark suite measures the gap to Dynamic's
// O(log n + t).
type TreapSampler[K cmp.Ordered] struct {
	tree *treap.Tree[K]
}

var _ Sampler[int] = (*TreapSampler[int])(nil)

// NewTreapSampler returns an empty treap-backed sampler. The seed drives
// the treap's internal rebalancing priorities only, not query randomness.
func NewTreapSampler[K cmp.Ordered](seed uint64) *TreapSampler[K] {
	return &TreapSampler[K]{tree: treap.New[K](seed)}
}

// Insert adds key. O(log n) expected.
func (t *TreapSampler[K]) Insert(key K) { t.tree.Insert(key) }

// Delete removes one occurrence of key. O(log n) expected.
func (t *TreapSampler[K]) Delete(key K) bool { return t.tree.Delete(key) }

// Len returns the number of stored keys.
func (t *TreapSampler[K]) Len() int { return t.tree.Len() }

// Count returns the number of keys in [lo, hi]. O(log n).
func (t *TreapSampler[K]) Count(lo, hi K) int { return t.tree.Count(lo, hi) }

// SampleAppend draws k samples, each via an O(log n) rank-select.
func (t *TreapSampler[K]) SampleAppend(dst []K, lo, hi K, k int, rng *xrand.RNG) ([]K, error) {
	if err := sampleArgsErr(k); err != nil {
		return dst, err
	}
	if k == 0 {
		return dst, nil
	}
	out, ok := t.tree.SampleAppend(dst, lo, hi, k, rng)
	if !ok {
		return dst, ErrEmptyRange
	}
	return out, nil
}

// ReportSampler is the "report, then sample" baseline: a query materializes
// the entire range (the strategy of running a conventional range query and
// sampling its result set) and then draws from the buffer. Query time is
// O(log n + |range| + t) — competitive only when the range is about as
// small as the sample. Updates are delegated to the same chunked list the
// real structure uses, so E6 isolates the query strategies.
type ReportSampler[K cmp.Ordered] struct {
	d   *Dynamic[K]
	buf []K
}

var _ Sampler[int] = (*ReportSampler[int])(nil)

// NewReportSampler returns an empty report-then-sample baseline.
func NewReportSampler[K cmp.Ordered]() *ReportSampler[K] {
	return &ReportSampler[K]{d: NewDynamic[K]()}
}

// NewReportSamplerFromSorted bulk-loads the baseline from sorted keys.
func NewReportSamplerFromSorted[K cmp.Ordered](keys []K) (*ReportSampler[K], error) {
	d, err := NewDynamicFromSorted(keys)
	if err != nil {
		return nil, err
	}
	return &ReportSampler[K]{d: d}, nil
}

// Insert adds key. O(log n) amortized.
func (r *ReportSampler[K]) Insert(key K) { r.d.Insert(key) }

// Delete removes one occurrence of key. O(log n) amortized.
func (r *ReportSampler[K]) Delete(key K) bool { return r.d.Delete(key) }

// Len returns the number of stored keys.
func (r *ReportSampler[K]) Len() int { return r.d.Len() }

// Count returns the number of keys in [lo, hi]. O(log n).
func (r *ReportSampler[K]) Count(lo, hi K) int { return r.d.Count(lo, hi) }

// SampleAppend materializes the range, then samples the buffer.
func (r *ReportSampler[K]) SampleAppend(dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	if err := sampleArgsErr(t); err != nil {
		return dst, err
	}
	if t == 0 {
		return dst, nil
	}
	r.buf = r.d.AppendRange(r.buf[:0], lo, hi)
	if len(r.buf) == 0 {
		return dst, ErrEmptyRange
	}
	span := uint64(len(r.buf))
	for i := 0; i < t; i++ {
		dst = append(dst, r.buf[rng.Uint64n(span)])
	}
	return dst, nil
}
