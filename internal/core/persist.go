package core

import (
	"bufio"
	"cmp"
	"encoding/gob"
	"fmt"
	"io"
)

// Persistence: samplers serialize to a small versioned envelope around a
// gob-encoded key slice. The sorted keys are the entire logical state of
// both structures (the dynamic structure's geometry is rebuilt
// deterministically at load time in O(n)), so the format is stable across
// internal refactors and the load path reuses the validated bulk-load
// constructors.

const (
	persistMagic       = "irs1"
	persistKindStatic  = uint8(1)
	persistKindDynamic = uint8(2)
)

// ErrBadSnapshot is returned when loading data that is not an irs snapshot
// or whose kind does not match the requested structure.
var ErrBadSnapshot = fmt.Errorf("irs: not a valid snapshot")

func writeSnapshot[K cmp.Ordered](w io.Writer, kind uint8, keys []K) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(kind); err != nil {
		return err
	}
	if err := gob.NewEncoder(bw).Encode(keys); err != nil {
		return fmt.Errorf("irs: encoding snapshot: %w", err)
	}
	return bw.Flush()
}

func readSnapshot[K cmp.Ordered](r io.Reader, wantKind uint8) ([]K, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(persistMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if string(head[:len(persistMagic)]) != persistMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if head[len(persistMagic)] != wantKind {
		return nil, fmt.Errorf("%w: snapshot holds a different structure kind", ErrBadSnapshot)
	}
	var keys []K
	if err := gob.NewDecoder(br).Decode(&keys); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return keys, nil
}

// Save serializes the structure. The key type must be gob-encodable
// (all cmp.Ordered types are).
func (s *Static[K]) Save(w io.Writer) error {
	return writeSnapshot(w, persistKindStatic, s.keys)
}

// LoadStatic reads a Static snapshot written by Static.Save.
func LoadStatic[K cmp.Ordered](r io.Reader) (*Static[K], error) {
	keys, err := readSnapshot[K](r, persistKindStatic)
	if err != nil {
		return nil, err
	}
	// Snapshots are written sorted; verify rather than trust the stream.
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return nil, fmt.Errorf("%w: keys not sorted", ErrBadSnapshot)
		}
	}
	return &Static[K]{keys: keys}, nil
}

// Save serializes the structure’s logical content (its sorted keys).
func (d *Dynamic[K]) Save(w io.Writer) error {
	keys := d.list.AppendKeys(make([]K, 0, d.Len()))
	return writeSnapshot(w, persistKindDynamic, keys)
}

// LoadDynamic reads a Dynamic snapshot written by Dynamic.Save and
// rebuilds the structure in O(n).
func LoadDynamic[K cmp.Ordered](r io.Reader) (*Dynamic[K], error) {
	keys, err := readSnapshot[K](r, persistKindDynamic)
	if err != nil {
		return nil, err
	}
	d, err2 := NewDynamicFromSorted(keys)
	if err2 != nil {
		return nil, fmt.Errorf("%w: keys not sorted", ErrBadSnapshot)
	}
	return d, nil
}
