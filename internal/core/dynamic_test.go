package core

import (
	"sort"
	"testing"

	"github.com/irsgo/irs/internal/xrand"
)

func TestDynamicBasics(t *testing.T) {
	d := NewDynamic[int]()
	r := xrand.New(1)
	if d.Len() != 0 {
		t.Fatalf("Len = %d", d.Len())
	}
	if _, err := d.Sample(0, 10, 1, r); err != ErrEmptyRange {
		t.Fatalf("empty: err = %v", err)
	}
	for i := 0; i < 100; i++ {
		d.Insert(i)
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d", d.Len())
	}
	if !d.Contains(42) || d.Contains(1000) {
		t.Fatal("Contains wrong")
	}
	if got := d.Count(10, 19); got != 10 {
		t.Fatalf("Count = %d", got)
	}
	if !d.Delete(42) {
		t.Fatal("Delete(42) failed")
	}
	if d.Delete(42) {
		t.Fatal("second Delete(42) succeeded")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicConstructors(t *testing.T) {
	if _, err := NewDynamicFromSorted([]int{2, 1}); err != ErrUnsorted {
		t.Fatalf("err = %v", err)
	}
	d, err := NewDynamicFromSorted([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	d2 := NewDynamicFromUnsorted([]int{3, 1, 2})
	if d2.Len() != 3 || !d2.Contains(2) {
		t.Fatal("FromUnsorted wrong")
	}
}

func TestDynamicSampleArgs(t *testing.T) {
	d := NewDynamicFromUnsorted([]int{1, 2, 3})
	r := xrand.New(2)
	if _, err := d.Sample(1, 3, -1, r); err != ErrInvalidCount {
		t.Fatalf("err = %v", err)
	}
	if out, err := d.Sample(1, 3, 0, r); err != nil || len(out) != 0 {
		t.Fatalf("t=0: %v %v", out, err)
	}
}

func TestDynamicSampleAppendReuses(t *testing.T) {
	keys := make([]int, 100000)
	for i := range keys {
		keys[i] = i
	}
	d, err := NewDynamicFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	buf := make([]int, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		var err error
		buf, err = d.SampleAppend(buf, 1000, 99000, 64, r)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SampleAppend allocated %v/run", allocs)
	}
}

func TestDynamicWORDistinctPositionsWithDuplicates(t *testing.T) {
	// 1000 copies of the same key: WOR must still return t samples (all the
	// same value, distinct positions).
	keys := make([]int, 1000)
	for i := range keys {
		keys[i] = 7
	}
	d, err := NewDynamicFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(4)
	out, err := d.SampleWithoutReplacement(0, 100, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("got %d samples, want 50", len(out))
	}
	for _, v := range out {
		if v != 7 {
			t.Fatalf("sample %d", v)
		}
	}
}

func TestDynamicWORUniqueKeys(t *testing.T) {
	keys := make([]int, 10000)
	for i := range keys {
		keys[i] = i
	}
	d, err := NewDynamicFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(5)
	out, err := d.SampleWithoutReplacement(1000, 9000, 200, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 200 {
		t.Fatalf("got %d", len(out))
	}
	seen := map[int]bool{}
	for _, v := range out {
		if v < 1000 || v > 9000 || seen[v] {
			t.Fatalf("bad or duplicate sample %d", v)
		}
		seen[v] = true
	}
	// Large t (report + Floyd path).
	out, err = d.SampleWithoutReplacement(1000, 1099, 80, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 80 {
		t.Fatalf("got %d", len(out))
	}
	seen = map[int]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	// t exceeding the range count returns everything.
	out, err = d.SampleWithoutReplacement(1000, 1009, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("got %d, want the whole range (10)", len(out))
	}
}

func TestDynamicSampleProbes(t *testing.T) {
	keys := make([]int, 100000)
	for i := range keys {
		keys[i] = i
	}
	d, err := NewDynamicFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(6)
	out, probes, err := d.SampleProbesAppend(nil, 100, 90000, 1000, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1000 || len(probes) != 1000 {
		t.Fatalf("lens %d %d", len(out), len(probes))
	}
	total := 0
	for _, p := range probes {
		if p < 1 {
			t.Fatalf("probe count %d", p)
		}
		total += p
	}
	if avg := float64(total) / 1000; avg > 16 {
		t.Fatalf("average probes %.1f", avg)
	}
}

// TestSamplersAgree: all three Sampler implementations see the same updates
// and must agree exactly on Len and Count, and produce in-range members.
func TestSamplersAgree(t *testing.T) {
	samplers := map[string]Sampler[int]{
		"dynamic": NewDynamic[int](),
		"treap":   NewTreapSampler[int](99),
		"report":  NewReportSampler[int](),
	}
	r := xrand.New(7)
	var model []int
	for op := 0; op < 3000; op++ {
		k := r.Intn(300)
		if r.Bernoulli(0.6) {
			for _, s := range samplers {
				s.Insert(k)
			}
			i := sort.SearchInts(model, k)
			model = append(model, 0)
			copy(model[i+1:], model[i:])
			model[i] = k
		} else {
			i := sort.SearchInts(model, k)
			want := i < len(model) && model[i] == k
			if want {
				model = append(model[:i], model[i+1:]...)
			}
			for name, s := range samplers {
				if got := s.Delete(k); got != want {
					t.Fatalf("op %d: %s.Delete(%d) = %v, want %v", op, name, k, got, want)
				}
			}
		}
		if op%101 == 0 {
			lo, hi := r.Intn(300), r.Intn(300)
			if lo > hi {
				lo, hi = hi, lo
			}
			want := sort.SearchInts(model, hi+1) - sort.SearchInts(model, lo)
			for name, s := range samplers {
				if s.Len() != len(model) {
					t.Fatalf("op %d: %s.Len = %d, want %d", op, name, s.Len(), len(model))
				}
				if got := s.Count(lo, hi); got != want {
					t.Fatalf("op %d: %s.Count(%d,%d) = %d, want %d", op, name, lo, hi, got, want)
				}
				out, err := s.SampleAppend(nil, lo, hi, 20, r)
				if want == 0 {
					if err != ErrEmptyRange {
						t.Fatalf("op %d: %s empty-range err = %v", op, name, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("op %d: %s err = %v", op, name, err)
				}
				for _, v := range out {
					if v < lo || v > hi {
						t.Fatalf("op %d: %s sample %d outside [%d,%d]", op, name, v, lo, hi)
					}
					if j := sort.SearchInts(model, v); j >= len(model) || model[j] != v {
						t.Fatalf("op %d: %s sample %d not in dataset", op, name, v)
					}
				}
			}
		}
	}
}

// TestSamplersUniformityEquivalence: on the same data and range, the three
// implementations produce statistically indistinguishable uniform samples.
func TestSamplersUniformityEquivalence(t *testing.T) {
	keys := make([]int, 0, 4000)
	r := xrand.New(8)
	for i := 0; i < 4000; i++ {
		keys = append(keys, r.Intn(100))
	}
	sort.Ints(keys)
	dyn, err := NewDynamicFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTreapSampler[int](1)
	for _, k := range keys {
		tr.Insert(k)
	}
	rep, err := NewReportSamplerFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	valueCount := map[int]int{}
	for _, k := range keys {
		if k >= 20 && k <= 80 {
			valueCount[k]++
		}
	}
	inRange := 0
	for _, c := range valueCount {
		inRange += c
	}
	const draws = 120000
	for name, s := range map[string]Sampler[int]{"dynamic": dyn, "treap": tr, "report": rep} {
		out, err := s.SampleAppend(make([]int, 0, draws), 20, 80, draws, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		counts := map[int]int{}
		for _, v := range out {
			counts[v]++
		}
		chi2 := 0.0
		dfs := 0
		for v, c := range valueCount {
			exp := float64(draws) * float64(c) / float64(inRange)
			if exp < 5 {
				continue
			}
			d := float64(counts[v]) - exp
			chi2 += d * d / exp
			dfs++
		}
		// Generous 0.0001-level bound for ~60 df.
		if chi2 > 120 {
			t.Fatalf("%s: chi-square %.1f over %d cells", name, chi2, dfs)
		}
	}
}

// TestIndependenceAcrossQueries: repeating the identical query must give
// fresh randomness — the probability two 50-sample draws from a large range
// coincide is astronomically small.
func TestIndependenceAcrossQueries(t *testing.T) {
	keys := make([]int, 100000)
	for i := range keys {
		keys[i] = i
	}
	d, err := NewDynamicFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(9)
	a, err := d.Sample(0, 99999, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Sample(0, 99999, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two independent queries returned identical sample vectors")
	}
}

func TestReportSamplerBuffer(t *testing.T) {
	rep := NewReportSamplerFromSortedMust(t, []int{1, 2, 3, 4, 5})
	r := xrand.New(10)
	out, err := rep.SampleAppend(nil, 2, 4, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v < 2 || v > 4 {
			t.Fatalf("sample %d", v)
		}
	}
	if _, err := rep.SampleAppend(nil, 10, 20, 1, r); err != ErrEmptyRange {
		t.Fatalf("err = %v", err)
	}
	if _, err := rep.SampleAppend(nil, 2, 4, -1, r); err != ErrInvalidCount {
		t.Fatalf("err = %v", err)
	}
}

func NewReportSamplerFromSortedMust(t *testing.T, keys []int) *ReportSampler[int] {
	t.Helper()
	rep, err := NewReportSamplerFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestTreapSamplerArgs(t *testing.T) {
	tr := NewTreapSampler[int](3)
	r := xrand.New(11)
	if _, err := tr.SampleAppend(nil, 0, 1, -2, r); err != ErrInvalidCount {
		t.Fatalf("err = %v", err)
	}
	if out, err := tr.SampleAppend(nil, 0, 1, 0, r); err != nil || len(out) != 0 {
		t.Fatalf("t=0: %v %v", out, err)
	}
	if _, err := tr.SampleAppend(nil, 0, 1, 1, r); err != ErrEmptyRange {
		t.Fatalf("err = %v", err)
	}
}

func TestDynamicFootprintAndStats(t *testing.T) {
	keys := make([]int, 50000)
	for i := range keys {
		keys[i] = i
	}
	d, err := NewDynamicFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	st := d.GeometryStats()
	if st.N != 50000 || st.Groups == 0 || st.Chunks == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if fp := d.Footprint(); fp < 50000*8 || fp > 50000*40 {
		t.Fatalf("footprint %d bytes unreasonable for 50k ints", fp)
	}
}
