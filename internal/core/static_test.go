package core

import (
	"math"
	"sort"
	"testing"

	"github.com/irsgo/irs/internal/xrand"
)

func TestStaticConstruction(t *testing.T) {
	s := NewStatic([]int{5, 1, 3, 2, 4})
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < 5; i++ {
		if s.At(i) != i+1 {
			t.Fatalf("At(%d) = %d", i, s.At(i))
		}
	}
	if _, err := NewStaticFromSorted([]int{2, 1}); err != ErrUnsorted {
		t.Fatalf("err = %v", err)
	}
	s2, err := NewStaticFromSorted([]int{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 4 {
		t.Fatalf("Len = %d", s2.Len())
	}
}

func TestStaticInputNotRetained(t *testing.T) {
	in := []int{3, 1, 2}
	s := NewStatic(in)
	in[0] = 99
	if s.At(2) == 99 {
		t.Fatal("NewStatic retained the caller's slice")
	}
}

func TestStaticCount(t *testing.T) {
	s := NewStatic([]int{10, 20, 20, 20, 30, 40})
	cases := []struct{ lo, hi, want int }{
		{20, 20, 3},
		{10, 40, 6},
		{15, 35, 4},
		{41, 50, 0},
		{0, 9, 0},
		{21, 29, 0},
		{40, 10, 0},
	}
	for _, tc := range cases {
		if got := s.Count(tc.lo, tc.hi); got != tc.want {
			t.Fatalf("Count(%d,%d) = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestStaticSampleErrors(t *testing.T) {
	s := NewStatic([]int{1, 2, 3})
	r := xrand.New(1)
	if _, err := s.Sample(1, 3, -1, r); err != ErrInvalidCount {
		t.Fatalf("negative t: err = %v", err)
	}
	if out, err := s.Sample(1, 3, 0, r); err != nil || len(out) != 0 {
		t.Fatalf("t=0: out=%v err=%v", out, err)
	}
	if _, err := s.Sample(10, 20, 5, r); err != ErrEmptyRange {
		t.Fatalf("empty range: err = %v", err)
	}
	if _, err := s.SampleWithoutReplacement(10, 20, 5, r); err != ErrEmptyRange {
		t.Fatalf("WOR empty range: err = %v", err)
	}
	if _, err := s.SampleWithoutReplacement(1, 3, -1, r); err != ErrInvalidCount {
		t.Fatalf("WOR negative: err = %v", err)
	}
}

func TestStaticSampleUniform(t *testing.T) {
	n := 1000
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i
	}
	s := NewStatic(keys)
	r := xrand.New(2)
	const draws = 200000
	out, err := s.Sample(100, 899, draws, r)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 800)
	for _, v := range out {
		if v < 100 || v > 899 {
			t.Fatalf("sample %d out of range", v)
		}
		counts[v-100]++
	}
	mean := float64(draws) / 800
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - mean
		chi2 += d * d / mean
	}
	// 799 df; 0.001 critical value ~ 931.
	if chi2 > 931 {
		t.Fatalf("chi-square = %.1f", chi2)
	}
}

func TestStaticWORDistinct(t *testing.T) {
	n := 500
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i * 2 // unique, even
	}
	s := NewStatic(keys)
	r := xrand.New(3)
	out, err := s.SampleWithoutReplacement(100, 700, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("got %d samples", len(out))
	}
	seen := map[int]bool{}
	for _, v := range out {
		if v < 100 || v > 700 || v%2 != 0 {
			t.Fatalf("bad sample %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample %d", v)
		}
		seen[v] = true
	}
}

func TestStaticWORWholeRange(t *testing.T) {
	s := NewStatic([]int{1, 2, 3, 4, 5})
	r := xrand.New(4)
	out, err := s.SampleWithoutReplacement(1, 5, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("got %d samples, want all 5", len(out))
	}
	sort.Ints(out)
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out = %v", out)
		}
	}
}

// TestStaticWORUniformSubsets draws many WOR pairs from {0..4} and checks
// every 2-subset appears with equal frequency.
func TestStaticWORUniformSubsets(t *testing.T) {
	s := NewStatic([]int{0, 1, 2, 3, 4})
	r := xrand.New(5)
	counts := map[[2]int]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		out, err := s.SampleWithoutReplacement(0, 4, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] == out[1] {
			t.Fatalf("duplicate in WOR pair %v", out)
		}
		pair := [2]int{out[0], out[1]}
		if pair[0] > pair[1] {
			pair[0], pair[1] = pair[1], pair[0]
		}
		counts[pair]++
	}
	if len(counts) != 10 {
		t.Fatalf("saw %d distinct pairs, want 10", len(counts))
	}
	expected := float64(draws) / 10
	for p, c := range counts {
		if math.Abs(float64(c)-expected) > expected*0.06 {
			t.Fatalf("pair %v count %d deviates from %.0f", p, c, expected)
		}
	}
}

// TestStaticWOROrderUniform checks the returned order is itself random:
// each element of a 3-element range is first with ~1/3 frequency.
func TestStaticWOROrderUniform(t *testing.T) {
	s := NewStatic([]int{0, 1, 2})
	r := xrand.New(6)
	first := make([]int, 3)
	const draws = 60000
	for i := 0; i < draws; i++ {
		out, err := s.SampleWithoutReplacement(0, 2, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		first[out[0]]++
	}
	for v, c := range first {
		if math.Abs(float64(c)-draws/3.0) > draws/3.0*0.06 {
			t.Fatalf("value %d first %d times, want ~%d", v, c, draws/3)
		}
	}
}

func TestStaticDuplicateBias(t *testing.T) {
	// 20 appears 3 times, 30 once: 20 should be sampled 3x as often.
	s := NewStatic([]int{20, 20, 20, 30})
	r := xrand.New(7)
	out, err := s.Sample(20, 30, 100000, r)
	if err != nil {
		t.Fatal(err)
	}
	twenties := 0
	for _, v := range out {
		if v == 20 {
			twenties++
		}
	}
	frac := float64(twenties) / float64(len(out))
	if frac < 0.72 || frac > 0.78 {
		t.Fatalf("20 sampled with frequency %.3f, want ~0.75", frac)
	}
}

func TestStaticEmpty(t *testing.T) {
	s := NewStatic[int](nil)
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, err := s.Sample(0, 10, 1, xrand.New(8)); err != ErrEmptyRange {
		t.Fatalf("err = %v", err)
	}
}
