// Package core implements the independent range sampling (IRS) structures
// of Hu, Qiao, and Tao (PODS 2014) for one-dimensional data, together with
// the classical baselines the paper's bounds are measured against.
//
// The query model: given an inclusive range [lo, hi] and an integer t,
// return t elements of the stored multiset that lie in the range, each
// uniformly distributed over the range contents, mutually independent, and
// independent of every past query's results.
//
// Structures:
//
//   - Static: an immutable sorted array. Query cost O(log n + t) — two
//     binary searches plus O(1) per sample. Also supports
//     without-replacement sampling via Floyd's algorithm at the same cost.
//   - Dynamic: the chunked structure (see internal/chunks) with O(log n)
//     amortized updates and O(log n + t) expected query time. This is the
//     paper's headline contribution.
//   - TreapSampler: baseline paying O(log n) per sample via rank-select on
//     an order-statistic treap.
//   - ReportSampler: baseline that reports the whole range and then samples
//     it, paying O(log n + |range| + t) per query — the "run the range
//     query, then sample the result set" strategy of a conventional DBMS.
//
// All samplers share the Sampler interface so benchmarks and applications
// can swap them freely.
package core

import (
	"cmp"
	"errors"

	"github.com/irsgo/irs/internal/xrand"
)

// Errors shared by all samplers.
var (
	// ErrEmptyRange is returned when t > 0 samples are requested from a
	// range that contains no keys.
	ErrEmptyRange = errors.New("irs: query range contains no keys")
	// ErrInvalidCount is returned when a negative sample count is requested.
	ErrInvalidCount = errors.New("irs: negative sample count")
	// ErrUnsorted is returned by FromSorted constructors on unsorted input.
	ErrUnsorted = errors.New("irs: input keys are not sorted")
)

// Sampler is the common interface of every dynamic IRS implementation in
// this package. Static implements the query side only. The sharded
// concurrent layer (internal/shard) also conforms, so call sites can swap
// the single-threaded structures for the concurrent one without change.
type Sampler[K cmp.Ordered] interface {
	// Insert adds a key (duplicates allowed).
	Insert(key K)
	// Delete removes one occurrence of key, reporting whether one existed.
	Delete(key K) bool
	// Len returns the number of stored keys.
	Len() int
	// Count returns the number of keys in [lo, hi].
	Count(lo, hi K) int
	// SampleAppend appends t independent uniform samples from [lo, hi] to
	// dst. If the range is empty and t > 0 it returns (dst, ErrEmptyRange).
	SampleAppend(dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error)
}

// sampleArgsErr centralizes argument validation shared by samplers.
func sampleArgsErr(t int) error {
	if t < 0 {
		return ErrInvalidCount
	}
	return nil
}
