package core

import (
	"cmp"
	"slices"

	"github.com/irsgo/irs/internal/xrand"
)

// Static is the static IRS structure: a sorted array. A query locates the
// rank interval of [lo, hi] with two binary searches (the "predecessor
// search" term of the paper's O(Pred(n) + t) bound) and then draws each
// sample with one bounded random integer — O(1) per sample, worst case.
//
// Static is immutable after construction and therefore safe for concurrent
// readers, provided each goroutine uses its own RNG.
type Static[K cmp.Ordered] struct {
	keys []K
}

// NewStatic builds a Static from keys in any order. The input is copied and
// sorted; construction is O(n log n).
func NewStatic[K cmp.Ordered](keys []K) *Static[K] {
	own := append([]K(nil), keys...)
	slices.Sort(own)
	return &Static[K]{keys: own}
}

// NewStaticFromSorted builds a Static from already-sorted keys in O(n).
// The input slice is copied, not retained. Returns ErrUnsorted if keys are
// not in non-decreasing order.
func NewStaticFromSorted[K cmp.Ordered](keys []K) (*Static[K], error) {
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return nil, ErrUnsorted
		}
	}
	return &Static[K]{keys: append([]K(nil), keys...)}, nil
}

// Len returns the number of stored keys.
func (s *Static[K]) Len() int { return len(s.keys) }

// At returns the key of rank i (0-based in sorted order).
func (s *Static[K]) At(i int) K { return s.keys[i] }

// rankRange returns the half-open rank interval [a, b) of keys in [lo, hi].
func (s *Static[K]) rankRange(lo, hi K) (int, int) {
	if hi < lo {
		return 0, 0
	}
	a, _ := slices.BinarySearch(s.keys, lo)
	// First index with key > hi: search for the successor position.
	b, found := slices.BinarySearch(s.keys, hi)
	if found {
		// Advance past duplicates of hi.
		for b < len(s.keys) && s.keys[b] == hi {
			b++
		}
	}
	if b < a {
		b = a
	}
	return a, b
}

// Count returns the number of keys in [lo, hi]. O(log n).
func (s *Static[K]) Count(lo, hi K) int {
	a, b := s.rankRange(lo, hi)
	return b - a
}

// RankLower returns the number of keys strictly less than key. O(log n).
func (s *Static[K]) RankLower(key K) int {
	a, _ := slices.BinarySearch(s.keys, key)
	return a
}

// RankUpper returns the number of keys less than or equal to key. O(log n).
func (s *Static[K]) RankUpper(key K) int {
	b, found := slices.BinarySearch(s.keys, key)
	if found {
		for b < len(s.keys) && s.keys[b] == key {
			b++
		}
	}
	return b
}

// Quantile returns the key at quantile q in [0, 1] (nearest-rank), and
// false if the structure is empty.
func (s *Static[K]) Quantile(q float64) (K, bool) {
	var zero K
	if len(s.keys) == 0 {
		return zero, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return s.keys[int(q*float64(len(s.keys)-1))], true
}

// Sample returns t independent uniform samples (with replacement) from the
// keys in [lo, hi]. O(log n + t) worst case.
func (s *Static[K]) Sample(lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	return s.SampleAppend(nil, lo, hi, t, rng)
}

// SampleAppend is Sample appending into dst.
func (s *Static[K]) SampleAppend(dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	if err := sampleArgsErr(t); err != nil {
		return dst, err
	}
	if t == 0 {
		return dst, nil
	}
	a, b := s.rankRange(lo, hi)
	if b == a {
		return dst, ErrEmptyRange
	}
	span := uint64(b - a)
	for i := 0; i < t; i++ {
		dst = append(dst, s.keys[a+int(rng.Uint64n(span))])
	}
	return dst, nil
}

// SampleWithoutReplacement returns min(t, Count(lo, hi)) distinct positions
// sampled uniformly from the range, in uniformly random order, using
// Floyd's algorithm — O(log n + t) time and O(t) extra space regardless of
// the range size. "Distinct" refers to positions: duplicate key values may
// still appear if the multiset stores them multiple times.
func (s *Static[K]) SampleWithoutReplacement(lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	if err := sampleArgsErr(t); err != nil {
		return nil, err
	}
	if t == 0 {
		return nil, nil
	}
	a, b := s.rankRange(lo, hi)
	m := b - a
	if m == 0 {
		return nil, ErrEmptyRange
	}
	if t >= m {
		// The whole range, in random order.
		out := append([]K(nil), s.keys[a:b]...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out, nil
	}
	// Floyd's algorithm over ranks [0, m).
	chosen := make(map[int]struct{}, t)
	out := make([]K, 0, t)
	for j := m - t; j < m; j++ {
		r := int(rng.Uint64n(uint64(j) + 1))
		if _, dup := chosen[r]; dup {
			r = j
		}
		chosen[r] = struct{}{}
		out = append(out, s.keys[a+r])
	}
	// Floyd's set is uniform but its generation order is not; shuffle so
	// callers can rely on exchangeability.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}
