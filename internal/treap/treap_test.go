package treap

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/irsgo/irs/internal/xrand"
)

func TestEmpty(t *testing.T) {
	tr := New[int](1)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Contains(5) {
		t.Fatal("empty tree Contains(5)")
	}
	if tr.Delete(5) {
		t.Fatal("empty tree Delete(5) = true")
	}
	if got := tr.Count(0, 100); got != 0 {
		t.Fatalf("Count = %d", got)
	}
	if _, ok := tr.SampleAppend(nil, 0, 100, 3, xrand.New(2)); ok {
		t.Fatal("SampleAppend on empty range returned ok")
	}
}

func TestInsertContainsDelete(t *testing.T) {
	tr := New[int](3)
	for _, k := range []int{5, 3, 8, 1, 9, 7} {
		tr.Insert(k)
	}
	if tr.Len() != 6 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, k := range []int{5, 3, 8, 1, 9, 7} {
		if !tr.Contains(k) {
			t.Fatalf("Contains(%d) = false", k)
		}
	}
	if tr.Contains(4) {
		t.Fatal("Contains(4) = true")
	}
	if !tr.Delete(5) {
		t.Fatal("Delete(5) = false")
	}
	if tr.Contains(5) {
		t.Fatal("Contains(5) after delete")
	}
	if tr.Len() != 5 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicates(t *testing.T) {
	tr := New[int](4)
	for i := 0; i < 5; i++ {
		tr.Insert(7)
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Count(7, 7); got != 5 {
		t.Fatalf("Count(7,7) = %d", got)
	}
	for i := 4; i >= 0; i-- {
		if !tr.Delete(7) {
			t.Fatalf("Delete #%d failed", 5-i)
		}
		if tr.Len() != i {
			t.Fatalf("Len = %d, want %d", tr.Len(), i)
		}
	}
	if tr.Delete(7) {
		t.Fatal("Delete on empty returned true")
	}
}

func TestRankSelect(t *testing.T) {
	tr := New[int](5)
	keys := []int{10, 20, 20, 30, 40}
	for _, k := range keys {
		tr.Insert(k)
	}
	if got := tr.RankLower(20); got != 1 {
		t.Fatalf("RankLower(20) = %d", got)
	}
	if got := tr.RankUpper(20); got != 3 {
		t.Fatalf("RankUpper(20) = %d", got)
	}
	if got := tr.RankLower(5); got != 0 {
		t.Fatalf("RankLower(5) = %d", got)
	}
	if got := tr.RankUpper(100); got != 5 {
		t.Fatalf("RankUpper(100) = %d", got)
	}
	want := []int{10, 20, 20, 30, 40}
	for i, w := range want {
		if got := tr.Select(i); got != w {
			t.Fatalf("Select(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestSelectPanics(t *testing.T) {
	tr := New[int](6)
	tr.Insert(1)
	for _, i := range []int{-1, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Select(%d) did not panic", i)
				}
			}()
			tr.Select(i)
		}()
	}
}

func TestCountInverted(t *testing.T) {
	tr := New[int](7)
	tr.Insert(5)
	if got := tr.Count(10, 1); got != 0 {
		t.Fatalf("Count(10,1) = %d", got)
	}
}

// TestAgainstSortedModel runs a random op sequence against a sorted-slice
// model, checking Len, Count, Select, and Keys at every step.
func TestAgainstSortedModel(t *testing.T) {
	r := xrand.New(8)
	tr := New[int](9)
	var model []int
	insertModel := func(k int) {
		i := sort.SearchInts(model, k)
		model = append(model, 0)
		copy(model[i+1:], model[i:])
		model[i] = k
	}
	deleteModel := func(k int) bool {
		i := sort.SearchInts(model, k)
		if i < len(model) && model[i] == k {
			model = append(model[:i], model[i+1:]...)
			return true
		}
		return false
	}
	for op := 0; op < 4000; op++ {
		k := r.Intn(200)
		if r.Bernoulli(0.6) {
			tr.Insert(k)
			insertModel(k)
		} else {
			got := tr.Delete(k)
			want := deleteModel(k)
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, want %d", op, tr.Len(), len(model))
		}
		if op%97 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			lo, hi := r.Intn(200), r.Intn(200)
			if lo > hi {
				lo, hi = hi, lo
			}
			want := sort.SearchInts(model, hi+1) - sort.SearchInts(model, lo)
			if got := tr.Count(lo, hi); got != want {
				t.Fatalf("op %d: Count(%d,%d) = %d, want %d", op, lo, hi, got, want)
			}
			if len(model) > 0 {
				i := r.Intn(len(model))
				if got := tr.Select(i); got != model[i] {
					t.Fatalf("op %d: Select(%d) = %d, want %d", op, i, got, model[i])
				}
			}
			keys := tr.Keys(nil)
			if len(keys) != len(model) {
				t.Fatalf("op %d: Keys len = %d, want %d", op, len(keys), len(model))
			}
			for i := range keys {
				if keys[i] != model[i] {
					t.Fatalf("op %d: Keys[%d] = %d, want %d", op, i, keys[i], model[i])
				}
			}
		}
	}
}

func TestSampleBoundsAndMembership(t *testing.T) {
	tr := New[int](10)
	r := xrand.New(11)
	present := map[int]bool{}
	for i := 0; i < 500; i++ {
		k := r.Intn(10000)
		tr.Insert(k)
		present[k] = true
	}
	samples, ok := tr.SampleAppend(nil, 2000, 8000, 300, r)
	if !ok {
		t.Fatal("SampleAppend failed on non-empty range")
	}
	if len(samples) != 300 {
		t.Fatalf("got %d samples", len(samples))
	}
	for _, s := range samples {
		if s < 2000 || s > 8000 {
			t.Fatalf("sample %d outside [2000,8000]", s)
		}
		if !present[s] {
			t.Fatalf("sample %d not in dataset", s)
		}
	}
}

func TestSampleUniformity(t *testing.T) {
	tr := New[int](12)
	const n = 50
	for i := 0; i < n; i++ {
		tr.Insert(i)
	}
	r := xrand.New(13)
	const draws = 100000
	counts := make([]int, n)
	samples, ok := tr.SampleAppend(make([]int, 0, draws), 0, n-1, draws, r)
	if !ok {
		t.Fatal("sample failed")
	}
	for _, s := range samples {
		counts[s]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 49 df, 0.001 critical value ~ 85.4.
	if chi2 > 85.4 {
		t.Fatalf("chi-square = %.1f", chi2)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New[string](14)
	for _, s := range []string{"pear", "apple", "fig", "banana"} {
		tr.Insert(s)
	}
	if got := tr.Select(0); got != "apple" {
		t.Fatalf("Select(0) = %q", got)
	}
	if got := tr.Count("b", "g"); got != 2 { // banana, fig
		t.Fatalf("Count(b,g) = %d", got)
	}
}

// TestPropertyKeysSorted: inserting any byte slice yields sorted Keys.
func TestPropertyKeysSorted(t *testing.T) {
	check := func(raw []uint16) bool {
		tr := New[uint16](15)
		for _, k := range raw {
			tr.Insert(k)
		}
		keys := tr.Keys(nil)
		if len(keys) != len(raw) {
			return false
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] > keys[i] {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New[float64](16)
	r := xrand.New(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(r.Float64())
	}
}

func BenchmarkSample64(b *testing.B) {
	tr := New[float64](18)
	r := xrand.New(19)
	for i := 0; i < 1<<20; i++ {
		tr.Insert(r.Float64())
	}
	buf := make([]float64, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, _ = tr.SampleAppend(buf, 0.25, 0.75, 64, r)
	}
}
