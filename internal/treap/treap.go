// Package treap implements an order-statistic treap: a randomized balanced
// binary search tree over an ordered multiset that supports rank and select
// in O(log n) expected time.
//
// In this repository the treap plays the role of the classical dynamic
// baseline for independent range sampling: a query counts the keys in the
// range via two rank searches and then draws each sample by selecting a
// uniformly random rank, paying O(log n) per sample. The Hu–Qiao–Tao
// structure (internal/chunks + internal/core) exists precisely to beat this
// O(log n + t·log n) bound, and the benchmark suite measures the gap.
package treap

import (
	"cmp"
	"unsafe"

	"github.com/irsgo/irs/internal/xrand"
)

type node[K cmp.Ordered] struct {
	key         K
	priority    uint64
	size        int
	left, right *node[K]
}

func (n *node[K]) sizeOf() int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node[K]) update() {
	n.size = 1 + n.left.sizeOf() + n.right.sizeOf()
}

// Tree is an ordered multiset of keys. The zero value is not usable; call
// New. Tree is not safe for concurrent mutation.
type Tree[K cmp.Ordered] struct {
	root *node[K]
	rng  *xrand.RNG
}

// New returns an empty tree whose rebalancing priorities are drawn from the
// stream seeded by seed.
func New[K cmp.Ordered](seed uint64) *Tree[K] {
	return &Tree[K]{rng: xrand.New(seed)}
}

// Len returns the number of stored keys (counting duplicates).
func (t *Tree[K]) Len() int { return t.root.sizeOf() }

// split partitions n into keys < key and keys >= key.
func split[K cmp.Ordered](n *node[K], key K) (l, r *node[K]) {
	if n == nil {
		return nil, nil
	}
	if n.key < key {
		n.right, r = split(n.right, key)
		n.update()
		return n, r
	}
	l, n.left = split(n.left, key)
	n.update()
	return l, n
}

func merge[K cmp.Ordered](l, r *node[K]) *node[K] {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.priority >= r.priority {
		l.right = merge(l.right, r)
		l.update()
		return l
	}
	r.left = merge(l, r.left)
	r.update()
	return r
}

// Insert adds key to the multiset.
func (t *Tree[K]) Insert(key K) {
	n := &node[K]{key: key, priority: t.rng.Uint64(), size: 1}
	l, r := split(t.root, key)
	t.root = merge(merge(l, n), r)
}

// Delete removes one occurrence of key, reporting whether one was present.
func (t *Tree[K]) Delete(key K) bool {
	var deleted bool
	t.root = deleteOne(t.root, key, &deleted)
	return deleted
}

func deleteOne[K cmp.Ordered](n *node[K], key K, deleted *bool) *node[K] {
	if n == nil {
		return nil
	}
	switch {
	case key < n.key:
		n.left = deleteOne(n.left, key, deleted)
	case key > n.key:
		n.right = deleteOne(n.right, key, deleted)
	default:
		*deleted = true
		return merge(n.left, n.right)
	}
	n.update()
	return n
}

// Contains reports whether key occurs at least once.
func (t *Tree[K]) Contains(key K) bool {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return true
		}
	}
	return false
}

// RankLower returns the number of keys strictly less than key.
func (t *Tree[K]) RankLower(key K) int {
	rank := 0
	n := t.root
	for n != nil {
		if n.key < key {
			rank += n.left.sizeOf() + 1
			n = n.right
		} else {
			n = n.left
		}
	}
	return rank
}

// RankUpper returns the number of keys less than or equal to key.
func (t *Tree[K]) RankUpper(key K) int {
	rank := 0
	n := t.root
	for n != nil {
		if n.key <= key {
			rank += n.left.sizeOf() + 1
			n = n.right
		} else {
			n = n.left
		}
	}
	return rank
}

// Count returns |{k in tree : lo <= k <= hi}|.
func (t *Tree[K]) Count(lo, hi K) int {
	if hi < lo {
		return 0
	}
	return t.RankUpper(hi) - t.RankLower(lo)
}

// Select returns the key of rank i (0-based, in sorted order). It panics if
// i is out of range.
func (t *Tree[K]) Select(i int) K {
	if i < 0 || i >= t.Len() {
		panic("treap: Select index out of range")
	}
	n := t.root
	for {
		ls := n.left.sizeOf()
		switch {
		case i < ls:
			n = n.left
		case i == ls:
			return n.key
		default:
			i -= ls + 1
			n = n.right
		}
	}
}

// SampleAppend draws k independent uniform samples (with replacement) from
// the keys in [lo, hi], appending them to dst. It returns dst and false if
// the range is empty and k > 0. Cost: O(log n) for the rank searches plus
// O(log n) per sample — this is the baseline bound the core structure beats.
func (t *Tree[K]) SampleAppend(dst []K, lo, hi K, k int, r *xrand.RNG) ([]K, bool) {
	if k <= 0 {
		return dst, true
	}
	a := t.RankLower(lo)
	b := t.RankUpper(hi)
	if b <= a {
		return dst, false
	}
	span := uint64(b - a)
	for i := 0; i < k; i++ {
		dst = append(dst, t.Select(a+int(r.Uint64n(span))))
	}
	return dst, true
}

// Footprint estimates resident bytes: one node per key.
func (t *Tree[K]) Footprint() int64 {
	var n node[K]
	return int64(t.Len()) * int64(unsafe.Sizeof(n))
}

// Keys appends all keys in sorted order to dst and returns it. Intended for
// tests and rebuilds.
func (t *Tree[K]) Keys(dst []K) []K {
	var walk func(n *node[K])
	walk = func(n *node[K]) {
		if n == nil {
			return
		}
		walk(n.left)
		dst = append(dst, n.key)
		walk(n.right)
	}
	walk(t.root)
	return dst
}

// validate checks the BST ordering, heap priorities, and size bookkeeping.
// It is exported through Validate for use by tests.
func (t *Tree[K]) Validate() error {
	_, err := validateNode(t.root)
	return err
}

type validationError string

func (e validationError) Error() string { return string(e) }

func validateNode[K cmp.Ordered](n *node[K]) (int, error) {
	if n == nil {
		return 0, nil
	}
	ls, err := validateNode(n.left)
	if err != nil {
		return 0, err
	}
	rs, err := validateNode(n.right)
	if err != nil {
		return 0, err
	}
	if n.size != ls+rs+1 {
		return 0, validationError("treap: size field out of date")
	}
	if n.left != nil && n.left.key > n.key {
		return 0, validationError("treap: BST order violated on the left")
	}
	if n.right != nil && n.right.key < n.key {
		return 0, validationError("treap: BST order violated on the right")
	}
	if n.left != nil && n.left.priority > n.priority {
		return 0, validationError("treap: heap order violated on the left")
	}
	if n.right != nil && n.right.priority > n.priority {
		return 0, validationError("treap: heap order violated on the right")
	}
	return n.size, nil
}
