package workload

import (
	"testing"

	"github.com/irsgo/irs/internal/xrand"
)

func TestKeysSortedAndSized(t *testing.T) {
	r := xrand.New(1)
	for _, d := range Distributions() {
		keys := Keys(d, 5000, r)
		if len(keys) != 5000 {
			t.Fatalf("%s: len = %d", d, len(keys))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] > keys[i] {
				t.Fatalf("%s: unsorted at %d", d, i)
			}
		}
	}
}

func TestKeysPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown distribution")
		}
	}()
	Keys("bogus", 10, xrand.New(2))
}

func TestIntKeysSorted(t *testing.T) {
	r := xrand.New(3)
	keys := IntKeys(Clustered, 3000, r)
	if len(keys) != 3000 {
		t.Fatalf("len = %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("unsorted at %d", i)
		}
	}
}

func TestRangesWithSelectivity(t *testing.T) {
	r := xrand.New(4)
	keys := Keys(Uniform, 10000, r)
	for _, sel := range []float64{0.001, 0.01, 0.1, 1.0} {
		ranges := RangesWithSelectivity(keys, sel, 50, r)
		if len(ranges) != 50 {
			t.Fatalf("got %d ranges", len(ranges))
		}
		for _, q := range ranges {
			if q.Lo > q.Hi {
				t.Fatalf("inverted range %+v", q)
			}
			// Count keys inside; must be ~sel*n.
			want := int(sel * 10000)
			if want < 1 {
				want = 1
			}
			got := 0
			for _, k := range keys {
				if k >= q.Lo && k <= q.Hi {
					got++
				}
			}
			// Duplicates can inflate counts slightly; be lenient upward.
			if got < want {
				t.Fatalf("sel %v: range holds %d keys, want >= %d", sel, got, want)
			}
		}
	}
	if got := RangesWithSelectivity(nil, 0.1, 5, r); got != nil {
		t.Fatal("expected nil for empty keys")
	}
}

func TestUpdateStream(t *testing.T) {
	r := xrand.New(5)
	ops := UpdateStream(Uniform, 10000, 0.7, r)
	if len(ops) != 10000 {
		t.Fatalf("len = %d", len(ops))
	}
	inserts := 0
	for _, op := range ops {
		if op.Insert {
			inserts++
		}
	}
	frac := float64(inserts) / float64(len(ops))
	if frac < 0.65 || frac > 0.75 {
		t.Fatalf("insert fraction %.3f, want ~0.7", frac)
	}
}

func TestZipfWeights(t *testing.T) {
	r := xrand.New(6)
	w := ZipfWeights(1000, 1.0, r)
	if len(w) != 1000 {
		t.Fatalf("len = %d", len(w))
	}
	for _, v := range w {
		if v <= 0 || v > 1 {
			t.Fatalf("weight %v out of (0,1]", v)
		}
	}
}

func TestBoundedRatioWeights(t *testing.T) {
	r := xrand.New(7)
	for _, u := range []float64{1, 10, 1e6} {
		w := BoundedRatioWeights(500, u, r)
		mn, mx := w[0], w[0]
		for _, v := range w {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if mx/mn > u*1.0001 {
			t.Fatalf("u=%v: ratio %v exceeds bound", u, mx/mn)
		}
	}
}
