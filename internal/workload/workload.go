// Package workload generates the datasets, query mixes, and update streams
// the benchmark harness runs the samplers on. The distributions cover the
// regimes the range-sampling literature cares about: uniform keys (the
// friendly case R-tree/quadtree heuristics rely on), clustered and heavy-
// tailed keys (where distribution-dependent structures degrade but IRS
// bounds are unaffected), and adversarially dense/sparse mixtures.
package workload

import (
	"math"
	"slices"

	"github.com/irsgo/irs/internal/xrand"
)

// Distribution names a key distribution.
type Distribution string

// Supported key distributions.
const (
	Uniform   Distribution = "uniform"   // iid uniform over [0, 1e9)
	Clustered Distribution = "clustered" // mixture of tight Gaussian clusters
	Zipf      Distribution = "zipf"      // heavy-tailed gaps between keys
	Dense     Distribution = "dense"     // consecutive integers (adversarial for hashing, friendly for arrays)
)

// Distributions lists every supported distribution.
func Distributions() []Distribution {
	return []Distribution{Uniform, Clustered, Zipf, Dense}
}

// Keys generates n float64 keys from the distribution, sorted ascending.
func Keys(dist Distribution, n int, rng *xrand.RNG) []float64 {
	keys := make([]float64, n)
	switch dist {
	case Uniform:
		for i := range keys {
			keys[i] = rng.Float64() * 1e9
		}
	case Clustered:
		clusters := 1 + n/10000
		centers := make([]float64, clusters)
		for i := range centers {
			centers[i] = rng.Float64() * 1e9
		}
		for i := range keys {
			c := centers[rng.Intn(clusters)]
			keys[i] = c + rng.Norm64()*1e4
		}
	case Zipf:
		// Heavy-tailed positive gaps: key_i = key_{i-1} + pareto(1.2).
		x := 0.0
		for i := range keys {
			gap := math.Pow(1-rng.Float64(), -1/1.2) // Pareto(alpha=1.2), min 1
			x += gap
			keys[i] = x
		}
		return keys // already sorted by construction
	case Dense:
		for i := range keys {
			keys[i] = float64(i)
		}
		return keys
	default:
		panic("workload: unknown distribution " + string(dist))
	}
	slices.Sort(keys)
	return keys
}

// IntKeys generates n int64 keys (scaled from the float distribution),
// sorted ascending. Used by the external-memory experiments.
func IntKeys(dist Distribution, n int, rng *xrand.RNG) []int64 {
	fk := Keys(dist, n, rng)
	keys := make([]int64, n)
	for i, f := range fk {
		keys[i] = int64(f * 1000)
	}
	slices.Sort(keys)
	return keys
}

// Range is one query interval.
type Range struct {
	Lo, Hi float64
}

// RangesWithSelectivity builds q query ranges over the sorted keys, each
// containing ~selectivity*n keys, with uniformly random left endpoints.
func RangesWithSelectivity(keys []float64, selectivity float64, q int, rng *xrand.RNG) []Range {
	n := len(keys)
	if n == 0 {
		return nil
	}
	span := int(selectivity * float64(n))
	if span < 1 {
		span = 1
	}
	if span > n {
		span = n
	}
	out := make([]Range, q)
	for i := range out {
		start := 0
		if n > span {
			start = rng.Intn(n - span + 1)
		}
		out[i] = Range{Lo: keys[start], Hi: keys[start+span-1]}
	}
	return out
}

// Op is one update-stream operation.
type Op struct {
	Insert bool
	Key    float64
}

// UpdateStream produces m operations with the given insert fraction.
// Deletions pick keys from the live set so they (almost always) succeed.
func UpdateStream(dist Distribution, m int, insertFrac float64, rng *xrand.RNG) []Op {
	live := Keys(dist, max(1, m/4), rng)
	ops := make([]Op, m)
	for i := range ops {
		if rng.Bernoulli(insertFrac) || len(live) == 0 {
			var k float64
			switch dist {
			case Dense:
				k = float64(rng.Intn(1 << 30))
			default:
				k = rng.Float64() * 1e9
			}
			ops[i] = Op{Insert: true, Key: k}
			live = append(live, k)
		} else {
			j := rng.Intn(len(live))
			ops[i] = Op{Insert: false, Key: live[j]}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return ops
}

// ZipfWeights returns n weights following a Zipf law with the given skew
// (weight of rank r is 1/r^skew), shuffled so weight is independent of key
// order. Used by the weighted-extension experiments.
func ZipfWeights(n int, skew float64, rng *xrand.RNG) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -skew)
	}
	rng.Shuffle(n, func(i, j int) { w[i], w[j] = w[j], w[i] })
	return w
}

// BoundedRatioWeights returns n positive weights whose max/min ratio is at
// most u, log-uniformly distributed. Used to sweep the weight-universe
// parameter U in experiment E11.
func BoundedRatioWeights(n int, u float64, rng *xrand.RNG) []float64 {
	if u < 1 {
		u = 1
	}
	w := make([]float64, n)
	lnU := math.Log(u)
	for i := range w {
		w[i] = math.Exp(rng.Float64() * lnU)
	}
	return w
}
