package chunks

import (
	"sort"
	"testing"

	"github.com/irsgo/irs/internal/xrand"
)

// FuzzOps feeds arbitrary byte strings as op sequences (insert / delete /
// count / sample) and checks the structure against a sorted-slice model
// plus full invariant validation. Run with `go test -fuzz=FuzzOps` for
// continuous fuzzing; the seed corpus runs in normal test mode.
func FuzzOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 10, 10, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add([]byte("interleaved inserts and deletes of the same keys"))
	f.Fuzz(func(t *testing.T, data []byte) {
		l := New[int]()
		rng := xrand.New(uint64(len(data)))
		var model []int
		for i, b := range data {
			k := int(b) % 64
			switch i % 4 {
			case 0, 1: // insert twice as often as anything else
				l.Insert(k)
				j := sort.SearchInts(model, k)
				model = append(model, 0)
				copy(model[j+1:], model[j:])
				model[j] = k
			case 2:
				got := l.Delete(k)
				j := sort.SearchInts(model, k)
				want := j < len(model) && model[j] == k
				if want {
					model = append(model[:j], model[j+1:]...)
				}
				if got != want {
					t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
				}
			case 3:
				lo, hi := k-8, k+8
				want := sort.SearchInts(model, hi+1) - sort.SearchInts(model, lo)
				if got := l.Count(lo, hi); got != want {
					t.Fatalf("op %d: Count(%d,%d) = %d, want %d", i, lo, hi, got, want)
				}
				out, ok := l.SampleAppend(nil, lo, hi, 3, rng)
				if ok != (want > 0) {
					t.Fatalf("op %d: sample ok=%v with count %d", i, ok, want)
				}
				for _, v := range out {
					if v < lo || v > hi {
						t.Fatalf("op %d: sample %d outside [%d,%d]", i, v, lo, hi)
					}
					if j := sort.SearchInts(model, v); j >= len(model) || model[j] != v {
						t.Fatalf("op %d: sample %d not in model", i, v)
					}
				}
			}
		}
		if l.Len() != len(model) {
			t.Fatalf("Len = %d, want %d", l.Len(), len(model))
		}
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}
