package chunks

import (
	"sort"
	"testing"

	"github.com/irsgo/irs/internal/xrand"
)

func TestRankAndSelectInPackage(t *testing.T) {
	keys := []int{10, 20, 20, 30, 40, 50}
	l, err := NewFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.RankLower(20); got != 1 {
		t.Fatalf("RankLower(20) = %d", got)
	}
	if got := l.RankUpper(20); got != 3 {
		t.Fatalf("RankUpper(20) = %d", got)
	}
	if got := l.RankLower(5); got != 0 {
		t.Fatalf("RankLower(5) = %d", got)
	}
	if got := l.RankLower(99); got != 6 {
		t.Fatalf("RankLower(99) = %d", got)
	}
	if got := l.RankUpper(99); got != 6 {
		t.Fatalf("RankUpper(99) = %d", got)
	}
	for i, want := range keys {
		if got := l.SelectRank(i); got != want {
			t.Fatalf("SelectRank(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestSelectRankLargeCrossCheck(t *testing.T) {
	r := xrand.New(1)
	var keys []int
	for i := 0; i < 60000; i++ {
		keys = append(keys, r.Intn(1000000))
	}
	sort.Ints(keys)
	l, err := NewFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2000; trial++ {
		i := r.Intn(len(keys))
		if got := l.SelectRank(i); got != keys[i] {
			t.Fatalf("SelectRank(%d) = %d, want %d", i, got, keys[i])
		}
	}
}

func TestAppendRangeInPackage(t *testing.T) {
	l, err := NewFromSorted(seq(10000))
	if err != nil {
		t.Fatal(err)
	}
	got := l.AppendRange(nil, 500, 520)
	if len(got) != 21 {
		t.Fatalf("got %d keys", len(got))
	}
	for i, k := range got {
		if k != 500+i {
			t.Fatalf("got[%d] = %d", i, k)
		}
	}
	if got := l.AppendRange(nil, 20000, 30000); len(got) != 0 {
		t.Fatalf("out-of-domain returned %d keys", len(got))
	}
	if got := l.AppendRange(nil, 50, 10); len(got) != 0 {
		t.Fatalf("inverted returned %d keys", len(got))
	}
	// Spanning multiple groups.
	got = l.AppendRange(got[:0], 100, 9900)
	if len(got) != 9801 {
		t.Fatalf("wide range returned %d keys", len(got))
	}
}

func TestSamplePosDistinctIdentifiers(t *testing.T) {
	// All keys identical: SamplePos must still expose distinct positions.
	keys := make([]int, 5000)
	for i := range keys {
		keys[i] = 7
	}
	l, err := NewFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(2)
	for _, span := range []struct{ lo, hi int }{{7, 7}, {0, 100}} {
		run := l.NewRun(span.lo, span.hi)
		if run.Empty() {
			t.Fatal("run empty")
		}
		seen := map[uint64]bool{}
		for i := 0; i < 20000; i++ {
			k, p := run.SamplePos(r)
			if k != 7 {
				t.Fatalf("key = %d", k)
			}
			seen[p] = true
		}
		// With 20k draws over 5000 positions, we must see a large fraction
		// of distinct identifiers (coupon collector: ~98%).
		if len(seen) < 4000 {
			t.Fatalf("only %d distinct positions over 20000 draws", len(seen))
		}
	}
}

func TestSamplePosPanicsOnEmpty(t *testing.T) {
	l := New[int]()
	run := l.NewRun(0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("SamplePos on empty run did not panic")
		}
	}()
	run.SamplePos(xrand.New(3))
}

func TestSampleProbesPanicsOnEmpty(t *testing.T) {
	l := New[int]()
	run := l.NewRun(0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("SampleProbes on empty run did not panic")
		}
	}()
	run.SampleProbes(xrand.New(4))
}

// TestGroupRebalanceBranches drives deletes through a pinned small s so the
// group borrow/merge/redistribute paths all fire, cross-checked by a model.
func TestGroupRebalanceBranches(t *testing.T) {
	l, err := NewFromSortedWithS(seq(4000), 4)
	if err != nil {
		t.Fatal(err)
	}
	model := seq(4000)
	r := xrand.New(5)
	// Delete clustered stretches to concentrate underflows, which exercises
	// redistribution against full siblings.
	for round := 0; round < 60; round++ {
		start := r.Intn(3000)
		for k := start; k < start+40; k++ {
			got := l.Delete(k)
			i := sort.SearchInts(model, k)
			want := i < len(model) && model[i] == k
			if want {
				model = append(model[:i], model[i+1:]...)
			}
			if got != want {
				t.Fatalf("Delete(%d) = %v, want %v", k, got, want)
			}
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Re-insert a sprinkle to flip between underflow and overflow.
		for j := 0; j < 15; j++ {
			k := r.Intn(4000)
			l.Insert(k)
			i := sort.SearchInts(model, k)
			model = append(model, 0)
			copy(model[i+1:], model[i:])
			model[i] = k
		}
	}
	if l.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(model))
	}
	got := l.AppendKeys(nil)
	for i := range got {
		if got[i] != model[i] {
			t.Fatalf("keys[%d] = %d, want %d", i, got[i], model[i])
		}
	}
}

// TestPrevPosEdges exercises lastLE stepping across chunk and group
// boundaries by querying ranges whose hi falls just before boundary keys.
func TestPrevPosEdges(t *testing.T) {
	l, err := NewFromSortedWithS(seq(2000), 4)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(6)
	for trial := 0; trial < 400; trial++ {
		// hi chosen so the first-greater element is often the head of a
		// chunk or group, forcing prevPos to cross boundaries.
		hi := r.Intn(2000)
		lo := hi - r.Intn(50)
		want := hi - lo + 1
		if lo < 0 {
			want += lo
			lo = 0
		}
		if got := l.Count(lo, hi); got != want {
			t.Fatalf("Count(%d,%d) = %d, want %d", lo, hi, got, want)
		}
		run := l.NewRun(lo, hi)
		if run.Empty() {
			t.Fatalf("run [%d,%d] empty", lo, hi)
		}
		for i := 0; i < 5; i++ {
			if v := run.Sample(r); v < lo || v > hi {
				t.Fatalf("sample %d outside [%d,%d]", v, lo, hi)
			}
		}
	}
}

// TestValidateDetectsCorruption makes sure Validate is not vacuous.
func TestValidateDetectsCorruption(t *testing.T) {
	l, err := NewFromSorted(seq(1000))
	if err != nil {
		t.Fatal(err)
	}
	// Reach in and break the order.
	g := l.groups[0]
	c := g.chunks[0]
	c.keys[0], c.keys[len(c.keys)-1] = c.keys[len(c.keys)-1], c.keys[0]
	if err := l.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-order keys")
	}
	// Restore order, break a count.
	c.keys[0], c.keys[len(c.keys)-1] = c.keys[len(c.keys)-1], c.keys[0]
	g.count++
	if err := l.Validate(); err == nil {
		t.Fatal("Validate accepted a stale group count")
	}
	g.count--
	if err := l.Validate(); err != nil {
		t.Fatalf("restored structure rejected: %v", err)
	}
}
