package chunks

import (
	"testing"

	"github.com/irsgo/irs/internal/xrand"
)

func TestNewFromSortedWithS(t *testing.T) {
	keys := seq(50000)
	for _, s := range []int{4, 16, 64, 256} {
		l, err := NewFromSortedWithS(keys, s)
		if err != nil {
			t.Fatal(err)
		}
		if l.S() != s {
			t.Fatalf("S = %d, want %d", l.S(), s)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		// Pinned s must survive rebuilds triggered by growth.
		for i := 0; i < 60000; i++ {
			l.Insert(i)
		}
		if l.S() != s {
			t.Fatalf("S drifted to %d after growth, want pinned %d", l.S(), s)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("s=%d after growth: %v", s, err)
		}
	}
	if _, err := NewFromSortedWithS(keys, 2); err == nil {
		t.Fatal("s=2 accepted")
	}
	if _, err := NewFromSortedWithS([]int{2, 1}, 8); err != ErrUnsorted {
		t.Fatalf("err = %v", err)
	}
}

func TestCollectFallbackAblation(t *testing.T) {
	keys := seq(100000)
	l, err := NewFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	l.SetCollectFallback(false)
	rng := xrand.New(1)

	// A range inside one chunk must still sample correctly (by rejection).
	lo, hi := 5000, 5000+3
	run := l.NewRun(lo, hi)
	if run.Empty() {
		t.Fatal("run empty")
	}
	if run.mode != modeChunks {
		t.Fatalf("mode = %d, want chunks with fallback disabled", run.mode)
	}
	counts := map[int]int{}
	for i := 0; i < 40000; i++ {
		counts[run.Sample(rng)]++
	}
	if len(counts) != 4 {
		t.Fatalf("covered %d values, want 4", len(counts))
	}
	for v, c := range counts {
		if v < lo || v > hi {
			t.Fatalf("sample %d out of range", v)
		}
		if c < 9000 || c > 11000 {
			t.Fatalf("value %d count %d deviates from 10000", v, c)
		}
	}
	// Probe counts must be visibly higher than with the fallback on.
	withoutTotal := 0
	for i := 0; i < 5000; i++ {
		_, p := run.SampleProbes(rng)
		withoutTotal += p
	}
	l.SetCollectFallback(true)
	run2 := l.NewRun(lo, hi)
	if run2.mode != modeCollect {
		t.Fatalf("mode = %d, want collect with fallback enabled", run2.mode)
	}
	withTotal := 0
	for i := 0; i < 5000; i++ {
		_, p := run2.SampleProbes(rng)
		withTotal += p
	}
	if withTotal != 5000 {
		t.Fatalf("collect mode probes = %d, want exactly 1 per sample", withTotal)
	}
	if withoutTotal < 3*withTotal {
		t.Fatalf("rejection-only probes (%d) should far exceed collect probes (%d)", withoutTotal, withTotal)
	}
}

func TestPinnedSWithUpdatesModel(t *testing.T) {
	// The pinned-s variant must stay correct under churn, like the default.
	l, err := NewFromSortedWithS([]int{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(2)
	live := map[int]int{}
	for op := 0; op < 8000; op++ {
		k := r.Intn(300)
		if r.Bernoulli(0.6) {
			l.Insert(k)
			live[k]++
		} else if l.Delete(k) {
			live[k]--
		}
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, c := range live {
		want += c
	}
	if l.Len() != want {
		t.Fatalf("Len = %d, want %d", l.Len(), want)
	}
}
