package chunks

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/irsgo/irs/internal/xrand"
)

func TestEmptyList(t *testing.T) {
	l := New[int]()
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Count(0, 100) != 0 {
		t.Fatal("Count on empty != 0")
	}
	if l.Contains(5) {
		t.Fatal("Contains on empty")
	}
	if l.Delete(5) {
		t.Fatal("Delete on empty")
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	r := l.NewRun(0, 100)
	if !r.Empty() {
		t.Fatal("run on empty list not empty")
	}
	if _, ok := l.SampleAppend(nil, 0, 100, 5, xrand.New(1)); ok {
		t.Fatal("SampleAppend on empty list returned ok")
	}
}

func TestNewFromSortedRejectsUnsorted(t *testing.T) {
	if _, err := NewFromSorted([]int{3, 1, 2}); err != ErrUnsorted {
		t.Fatalf("err = %v, want ErrUnsorted", err)
	}
}

func TestNewFromSortedSmall(t *testing.T) {
	for n := 0; n <= 40; n++ {
		keys := make([]int, n)
		for i := range keys {
			keys[i] = i * 2
		}
		l, err := NewFromSorted(keys)
		if err != nil {
			t.Fatal(err)
		}
		if l.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, l.Len())
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := l.AppendKeys(nil)
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("n=%d: key %d = %d, want %d", n, i, got[i], keys[i])
			}
		}
	}
}

func TestBuildGeometry(t *testing.T) {
	keys := make([]int, 100000)
	for i := range keys {
		keys[i] = i
	}
	l, err := NewFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	st := l.GeometryStats()
	if st.N != 100000 {
		t.Fatalf("N = %d", st.N)
	}
	if st.S < minS {
		t.Fatalf("S = %d < minS", st.S)
	}
	// Average chunk fill should be around 1.5s.
	avg := float64(st.N) / float64(st.Chunks)
	if avg < float64(st.S)/2 || avg > 2*float64(st.S) {
		t.Fatalf("average chunk fill %.1f outside [s/2, 2s] with s=%d", avg, st.S)
	}
}

func TestInsertDeleteSmokeWithValidation(t *testing.T) {
	l := New[int]()
	for i := 0; i < 2000; i++ {
		l.Insert(i * 7 % 1000)
		if i%100 == 0 {
			if err := l.Validate(); err != nil {
				t.Fatalf("after insert %d: %v", i, err)
			}
		}
	}
	if l.Len() != 2000 {
		t.Fatalf("Len = %d", l.Len())
	}
	for i := 0; i < 2000; i++ {
		if !l.Delete(i * 7 % 1000) {
			t.Fatalf("Delete #%d failed", i)
		}
		if i%100 == 0 {
			if err := l.Validate(); err != nil {
				t.Fatalf("after delete %d: %v", i, err)
			}
		}
	}
	if l.Len() != 0 {
		t.Fatalf("Len after all deletes = %d", l.Len())
	}
}

// TestAgainstSortedModel runs a long random op sequence against a sorted
// slice, checking Len, Count, Contains, and full key order.
func TestAgainstSortedModel(t *testing.T) {
	r := xrand.New(2)
	l := New[int]()
	var model []int
	insertModel := func(k int) {
		i := sort.SearchInts(model, k)
		model = append(model, 0)
		copy(model[i+1:], model[i:])
		model[i] = k
	}
	deleteModel := func(k int) bool {
		i := sort.SearchInts(model, k)
		if i < len(model) && model[i] == k {
			model = append(model[:i], model[i+1:]...)
			return true
		}
		return false
	}
	for op := 0; op < 12000; op++ {
		k := r.Intn(500)
		if r.Bernoulli(0.55) {
			l.Insert(k)
			insertModel(k)
		} else {
			got := l.Delete(k)
			want := deleteModel(k)
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
		}
		if l.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, want %d", op, l.Len(), len(model))
		}
		if op%251 == 0 {
			if err := l.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			lo, hi := r.Intn(500), r.Intn(500)
			if lo > hi {
				lo, hi = hi, lo
			}
			want := sort.SearchInts(model, hi+1) - sort.SearchInts(model, lo)
			if got := l.Count(lo, hi); got != want {
				t.Fatalf("op %d: Count(%d,%d) = %d, want %d", op, lo, hi, got, want)
			}
			kk := r.Intn(500)
			wantC := false
			if i := sort.SearchInts(model, kk); i < len(model) && model[i] == kk {
				wantC = true
			}
			if got := l.Contains(kk); got != wantC {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", op, kk, got, wantC)
			}
		}
	}
	keys := l.AppendKeys(nil)
	if len(keys) != len(model) {
		t.Fatalf("final key count %d, want %d", len(keys), len(model))
	}
	for i := range keys {
		if keys[i] != model[i] {
			t.Fatalf("final keys[%d] = %d, want %d", i, keys[i], model[i])
		}
	}
}

func TestCountEdgeCases(t *testing.T) {
	keys := []int{10, 20, 20, 20, 30, 40, 50}
	l, err := NewFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		lo, hi, want int
	}{
		{0, 5, 0},   // entirely below
		{60, 99, 0}, // entirely above
		{25, 28, 0}, // gap
		{20, 20, 3}, // duplicates
		{10, 50, 7}, // full span
		{-100, 100, 7},
		{15, 45, 5},
		{50, 10, 0}, // inverted
		{10, 10, 1},
		{50, 50, 1},
	}
	for _, tc := range cases {
		if got := l.Count(tc.lo, tc.hi); got != tc.want {
			t.Fatalf("Count(%d,%d) = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestRunModes(t *testing.T) {
	// Large sorted list: tiny ranges collect, medium ranges use the chunk
	// run, huge ranges use the group run.
	n := 200000
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i
	}
	l, err := NewFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	s := l.S()

	tiny := l.NewRun(100, 100+s/2)
	if tiny.mode != modeCollect {
		t.Fatalf("tiny range mode = %d, want collect", tiny.mode)
	}
	medium := l.NewRun(100, 100+6*s)
	if medium.mode != modeChunks {
		t.Fatalf("medium range mode = %d, want chunks", medium.mode)
	}
	huge := l.NewRun(0, n-1)
	if huge.mode != modeGroups {
		t.Fatalf("huge range mode = %d, want groups", huge.mode)
	}
	empty := l.NewRun(n+10, n+20)
	if !empty.Empty() {
		t.Fatal("out-of-domain range not empty")
	}
	inverted := l.NewRun(50, 10)
	if !inverted.Empty() {
		t.Fatal("inverted range not empty")
	}
}

// checkUniform verifies draws over the integer range [lo, hi] (all present
// exactly once in the list) are uniform via a chi-square test on value
// buckets.
func checkUniform(t *testing.T, samples []int, lo, hi int, buckets int) {
	t.Helper()
	span := hi - lo + 1
	counts := make([]int, buckets)
	for _, s := range samples {
		if s < lo || s > hi {
			t.Fatalf("sample %d outside [%d,%d]", s, lo, hi)
		}
		b := (s - lo) * buckets / span
		counts[b]++
	}
	// Buckets may cover unequal numbers of values when span % buckets != 0;
	// compute the exact expected count per bucket.
	valuesIn := make([]int, buckets)
	for v := 0; v < span; v++ {
		valuesIn[v*buckets/span]++
	}
	chi2 := 0.0
	for b, c := range counts {
		expected := float64(len(samples)) * float64(valuesIn[b]) / float64(span)
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// Critical value at alpha=0.001 for df in {15,31,63}: 37.7, 61.1, 103.4.
	crit := map[int]float64{16: 39.25, 32: 61.1, 64: 103.4}[buckets]
	if crit == 0 {
		t.Fatalf("no critical value for %d buckets", buckets)
	}
	if chi2 > crit {
		t.Fatalf("chi-square %.1f > %.1f for %d buckets", chi2, crit, buckets)
	}
}

func TestSampleUniformityAllModes(t *testing.T) {
	n := 100000
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i
	}
	l, err := NewFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	const draws = 80000

	// Groups mode: a wide range.
	samples, ok := l.SampleAppend(nil, 10000, 90000, draws, rng)
	if !ok || len(samples) != draws {
		t.Fatal("groups-mode sampling failed")
	}
	checkUniform(t, samples, 10000, 90000, 32)

	// Chunks mode: a range of ~8 chunks.
	s := l.S()
	hi := 5000 + 8*s - 1
	samples, ok = l.SampleAppend(nil, 5000, hi, draws, rng)
	if !ok {
		t.Fatal("chunks-mode sampling failed")
	}
	checkUniform(t, samples, 5000, hi, 16)

	// Collect mode: a range within one chunk.
	hi = 7000 + s/2
	samples, ok = l.SampleAppend(nil, 7000, hi, draws, rng)
	if !ok {
		t.Fatal("collect-mode sampling failed")
	}
	counts := map[int]int{}
	for _, v := range samples {
		counts[v]++
	}
	if len(counts) != s/2+1 {
		t.Fatalf("collect mode covered %d values, want %d", len(counts), s/2+1)
	}
}

func TestSampleMembershipNonUniformData(t *testing.T) {
	// Clustered keys with duplicates and gaps: every sample must be an
	// element of the dataset and inside the query range.
	r := xrand.New(4)
	var keys []int
	for i := 0; i < 30000; i++ {
		keys = append(keys, r.Intn(1000)*1000+r.Intn(3))
	}
	sort.Ints(keys)
	l, err := NewFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	present := map[int]bool{}
	for _, k := range keys {
		present[k] = true
	}
	for trial := 0; trial < 50; trial++ {
		lo := r.Intn(1000000)
		hi := lo + r.Intn(200000)
		samples, ok := l.SampleAppend(nil, lo, hi, 100, r)
		if !ok {
			if l.Count(lo, hi) != 0 {
				t.Fatalf("sampling failed on non-empty range [%d,%d]", lo, hi)
			}
			continue
		}
		for _, s := range samples {
			if s < lo || s > hi || !present[s] {
				t.Fatalf("bad sample %d from [%d,%d]", s, lo, hi)
			}
		}
	}
}

func TestSampleDuplicateWeighting(t *testing.T) {
	// Key 5 appears 3 times, key 6 once: 5 should appear ~3x as often.
	var keys []int
	for i := 0; i < 5000; i++ {
		keys = append(keys, 5, 5, 5, 6)
	}
	sort.Ints(keys)
	l, err := NewFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	samples, ok := l.SampleAppend(nil, 5, 6, 40000, rng)
	if !ok {
		t.Fatal("sampling failed")
	}
	fives := 0
	for _, s := range samples {
		if s == 5 {
			fives++
		}
	}
	frac := float64(fives) / float64(len(samples))
	if frac < 0.72 || frac > 0.78 {
		t.Fatalf("duplicate key frequency %.3f, want ~0.75", frac)
	}
}

func TestProbesBounded(t *testing.T) {
	n := 300000
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i
	}
	l, err := NewFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(6)
	for _, span := range []int{n - 1, n / 10, 50 * l.S(), 4 * l.S()} {
		run := l.NewRun(0, span)
		if run.Empty() {
			t.Fatalf("span %d empty", span)
		}
		totalProbes := 0
		const draws = 20000
		for i := 0; i < draws; i++ {
			_, p := run.SampleProbes(rng)
			totalProbes += p
		}
		avg := float64(totalProbes) / draws
		if avg > 16 {
			t.Fatalf("span %d: average probes %.2f, want O(1)", span, avg)
		}
	}
}

func TestSamplingAfterHeavyUpdates(t *testing.T) {
	// Interleave updates and sampling; distribution checks still pass.
	r := xrand.New(7)
	l := New[int]()
	for i := 0; i < 50000; i++ {
		l.Insert(r.Intn(100000))
	}
	for i := 0; i < 20000; i++ {
		l.Delete(r.Intn(100000))
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	samples, ok := l.SampleAppend(nil, 20000, 80000, 50000, r)
	if !ok {
		t.Fatal("sampling failed")
	}
	inRange := l.Count(20000, 80000)
	if inRange == 0 {
		t.Fatal("no keys in range")
	}
	for _, s := range samples {
		if s < 20000 || s > 80000 {
			t.Fatalf("sample %d out of range", s)
		}
	}
}

func TestRebuildRetunesS(t *testing.T) {
	l := New[int]()
	for i := 0; i < 300000; i++ {
		l.Insert(i)
	}
	if l.S() <= minS {
		t.Fatalf("S = %d after 3e5 inserts, expected growth", l.S())
	}
	grown := l.S()
	for i := 0; i < 299000; i++ {
		l.Delete(i)
	}
	if l.S() >= grown {
		t.Fatalf("S = %d after shrink, want < %d", l.S(), grown)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintLinear(t *testing.T) {
	small, err := NewFromSorted(seq(10000))
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewFromSorted(seq(100000))
	if err != nil {
		t.Fatal(err)
	}
	fs, fb := small.Footprint(), big.Footprint()
	if fb < 5*fs || fb > 20*fs {
		t.Fatalf("footprint scaling: 10k -> %d bytes, 100k -> %d bytes", fs, fb)
	}
	bytesPerKey := float64(fb) / 100000
	if bytesPerKey > 40 {
		t.Fatalf("%.1f bytes/key is far above linear expectations", bytesPerKey)
	}
}

func seq(n int) []int {
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i
	}
	return keys
}

// TestPropertyRandomOps: arbitrary op sequences keep the structure valid
// and consistent with a model.
func TestPropertyRandomOps(t *testing.T) {
	check := func(ops []uint16) bool {
		l := New[uint16]()
		var model []int
		for _, op := range ops {
			k := op % 997
			if op%3 != 0 {
				l.Insert(k)
				i := sort.SearchInts(model, int(k))
				model = append(model, 0)
				copy(model[i+1:], model[i:])
				model[i] = int(k)
			} else {
				got := l.Delete(k)
				i := sort.SearchInts(model, int(k))
				want := i < len(model) && model[i] == int(k)
				if want {
					model = append(model[:i], model[i+1:]...)
				}
				if got != want {
					return false
				}
			}
		}
		if l.Len() != len(model) {
			return false
		}
		if l.Validate() != nil {
			return false
		}
		keys := l.AppendKeys(nil)
		for i := range keys {
			if int(keys[i]) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatKeys(t *testing.T) {
	l := New[float64]()
	r := xrand.New(8)
	for i := 0; i < 10000; i++ {
		l.Insert(r.Float64())
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	samples, ok := l.SampleAppend(nil, 0.25, 0.75, 1000, r)
	if !ok {
		t.Fatal("sampling failed")
	}
	for _, s := range samples {
		if s < 0.25 || s > 0.75 {
			t.Fatalf("sample %v out of range", s)
		}
	}
}

func TestInitRunReuseAllocFree(t *testing.T) {
	l, err := NewFromSorted(seq(100000))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(9)
	var run Run[int]
	l.InitRun(&run, 1000, 90000)
	allocs := testing.AllocsPerRun(100, func() {
		l.InitRun(&run, 1000, 90000)
		for i := 0; i < 8; i++ {
			run.Sample(rng)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state query allocated %v times, want 0", allocs)
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	l := New[float64]()
	r := xrand.New(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(r.Float64())
	}
}

func BenchmarkSample64From1M(b *testing.B) {
	keys := make([]float64, 1<<20)
	r := xrand.New(11)
	for i := range keys {
		keys[i] = r.Float64()
	}
	sort.Float64s(keys)
	l, err := NewFromSorted(keys)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]float64, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, _ = l.SampleAppend(buf, 0.25, 0.75, 64, r)
	}
}
