// Package chunks implements the dynamic substrate of the Hu–Qiao–Tao
// independent range sampling structure: a two-level chunked sorted list.
//
// Keys are kept in sorted order inside chunks (small arrays of capacity 2s,
// where s = Θ(log n)); consecutive chunks are grouped into groups of at most
// 2s chunks; a flat directory holds the groups in order. The parameter s is
// retuned by a global rebuild whenever n doubles or halves, so the structure
// is always within a constant factor of its intended geometry.
//
// The point of the two levels is uniform sampling by rejection: a query
// range maps to a run of groups; probing a uniformly random (group, chunk
// slot, element slot) triple and rejecting empty or out-of-range probes
// yields an exactly uniform in-range element, and the fill invariants below
// guarantee Ω(1) acceptance probability, so a sample costs O(1) expected
// time after the O(log n) search that locates the run. This realizes the
// "linear space, O(log n + k) expected query, O(log n) update" bounds
// attributed to the PODS 2014 paper.
//
// Invariants (with s fixed between rebuilds):
//
//   - every chunk holds between s/2 and 2s keys, except that a list with a
//     single chunk may hold fewer;
//   - every group holds between s/2 and 2s chunks, except that a list with
//     a single group may hold fewer;
//   - keys are globally sorted: every key in chunk i precedes every key in
//     chunk i+1 of the same group, and every key in group j precedes every
//     key in group j+1;
//   - group.count equals the number of keys in the group, and the Fenwick
//     tree over group counts is consistent with the directory.
//
// Updates repair invariant violations locally: a chunk that exceeds 2s keys
// splits in half; a chunk that drops below s/2 keys merges with a sibling
// (or the pair redistributes if the merge would overflow); the same rules
// apply one level up to groups. All repairs are O(s) = O(log n) except
// directory-level changes, which additionally rebuild the O(n/s²)-entry
// Fenwick tree — a cost that amortizes to o(1) per update because a group
// split or merge requires Ω(s²) updates to recur.
package chunks

import (
	"cmp"
	"errors"
	"fmt"
	"math/bits"
	"unsafe"

	"github.com/irsgo/irs/internal/fenwick"
	"github.com/irsgo/irs/internal/xrand"
)

// ErrUnsorted is returned by NewFromSorted when the input is not sorted.
var ErrUnsorted = errors.New("chunks: input keys are not sorted")

// minS is the smallest chunk parameter ever used; it keeps constant factors
// sane for tiny lists.
const minS = 8

type chunk[K cmp.Ordered] struct {
	keys []K // sorted; capacity 2s+1 so one overflowing insert never reallocates
}

type group[K cmp.Ordered] struct {
	chunks []*chunk[K] // in key order
	count  int         // total keys across chunks
}

// List is the two-level chunked sorted list. It stores an ordered multiset
// of keys. The zero value is not usable; call New or NewFromSorted.
// A List is not safe for concurrent mutation; concurrent readers are safe
// as long as no writer runs.
type List[K cmp.Ordered] struct {
	groups     []*group[K]
	counts     *fenwick.Counts // per-group key counts, same order as groups
	n          int
	s          int
	nAtRebuild int
	scratch    []K // reused by chunk redistribution

	// Ablation knobs (see the E14/E15 experiments). Production code leaves
	// both at their zero values.
	fixedS    bool // keep s pinned across rebuilds
	noCollect bool // disable the short-run collect fast path
}

// New returns an empty list.
func New[K cmp.Ordered]() *List[K] {
	l := &List[K]{s: minS}
	l.rebuildFenwick()
	return l
}

// NewFromSorted builds a list from keys, which must be in non-decreasing
// order. The input slice is not retained. Construction is O(n).
func NewFromSorted[K cmp.Ordered](keys []K) (*List[K], error) {
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return nil, ErrUnsorted
		}
	}
	l := &List[K]{}
	l.build(keys)
	return l, nil
}

// Len returns the number of stored keys.
func (l *List[K]) Len() int { return l.n }

// S returns the current chunk parameter (exposed for tests and experiments).
func (l *List[K]) S() int { return l.s }

// chooseS returns the chunk parameter for a list of n keys.
func chooseS(n int) int {
	s := bits.Len(uint(n)) // ceil(log2(n+1))
	if s < minS {
		s = minS
	}
	return s
}

// NewFromSortedWithS builds a list with the chunk parameter pinned to s
// instead of the Θ(log n) default; rebuilds keep the pinned value. This is
// the knob behind the E14 ablation (sensitivity of query and update cost to
// the chunk size); s must be at least 4.
func NewFromSortedWithS[K cmp.Ordered](keys []K, s int) (*List[K], error) {
	if s < 4 {
		return nil, errors.New("chunks: pinned s must be >= 4")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return nil, ErrUnsorted
		}
	}
	l := &List[K]{fixedS: true, s: s}
	l.build(keys)
	return l, nil
}

// SetCollectFallback enables or disables the short-run collect fast path
// (enabled by default). With the fallback off, ranges spanning fewer than
// three chunks are sampled by rejection over the chunk run, whose
// acceptance rate can drop to Θ(1/s) — the E15 ablation quantifies why the
// fast path exists. Pending runs are not affected.
func (l *List[K]) SetCollectFallback(enabled bool) { l.noCollect = !enabled }

// build (re)constructs the whole structure from sorted keys.
func (l *List[K]) build(keys []K) {
	n := len(keys)
	l.n = n
	l.nAtRebuild = n
	if !l.fixedS {
		l.s = chooseS(n)
	}
	l.groups = l.groups[:0]
	if n == 0 {
		l.rebuildFenwick()
		return
	}
	fill := l.s + l.s/2 // target chunk fill 1.5s
	numChunks := (n + fill - 1) / fill
	if numChunks == 0 {
		numChunks = 1
	}
	// Distribute keys evenly so every chunk gets floor or ceil of n/numChunks,
	// which is >= s/2 whenever numChunks > 1 because fill > s.
	chunksBuilt := make([]*chunk[K], 0, numChunks)
	base, extra := n/numChunks, n%numChunks
	idx := 0
	for i := 0; i < numChunks; i++ {
		sz := base
		if i < extra {
			sz++
		}
		c := &chunk[K]{keys: make([]K, sz, 2*l.s+1)}
		copy(c.keys, keys[idx:idx+sz])
		idx += sz
		chunksBuilt = append(chunksBuilt, c)
	}
	// Group the chunks with the same even distribution.
	gFill := l.s + l.s/2
	numGroups := (numChunks + gFill - 1) / gFill
	if numGroups == 0 {
		numGroups = 1
	}
	base, extra = numChunks/numGroups, numChunks%numGroups
	idx = 0
	for i := 0; i < numGroups; i++ {
		sz := base
		if i < extra {
			sz++
		}
		g := &group[K]{chunks: make([]*chunk[K], sz, 2*l.s+1)}
		copy(g.chunks, chunksBuilt[idx:idx+sz])
		idx += sz
		for _, c := range g.chunks {
			g.count += len(c.keys)
		}
		l.groups = append(l.groups, g)
	}
	l.rebuildFenwick()
}

// rebuildFenwick refreshes the per-group count index. Called whenever the
// group directory changes shape.
func (l *List[K]) rebuildFenwick() {
	counts := make([]int, len(l.groups))
	for i, g := range l.groups {
		counts[i] = g.count
	}
	l.counts = fenwick.NewCountsFrom(counts)
}

// maybeRebuild retunes s and re-packs everything once n has drifted a
// factor of two from the last rebuild. Amortized O(1) per update.
func (l *List[K]) maybeRebuild() {
	if l.n <= 32 {
		return
	}
	if l.n > 2*l.nAtRebuild || 2*l.n < l.nAtRebuild {
		keys := l.AppendKeys(make([]K, 0, l.n))
		l.build(keys)
	}
}

// pos addresses one key: groups[g].chunks[c].keys[e].
type pos struct{ g, c, e int }

// lastKey returns the largest key in the group.
func (g *group[K]) lastKey() K {
	c := g.chunks[len(g.chunks)-1]
	return c.keys[len(c.keys)-1]
}

// firstGE returns the position of the first key >= bound, or ok=false if
// every key is smaller. O(log n): binary search over groups, then chunks,
// then keys.
func (l *List[K]) firstGE(bound K) (pos, bool) { return l.search(bound, false) }

// firstGT returns the position of the first key > bound, or ok=false.
func (l *List[K]) firstGT(bound K) (pos, bool) { return l.search(bound, true) }

// search finds the first key >= bound (strict=false) or > bound
// (strict=true).
func (l *List[K]) search(bound K, strict bool) (pos, bool) {
	if l.n == 0 {
		return pos{}, false
	}
	// After returns true when k is on the "found" side of the boundary.
	after := func(k K) bool {
		if strict {
			return k > bound
		}
		return k >= bound
	}
	// First group whose last key is on the found side.
	lo, hi := 0, len(l.groups)
	for lo < hi {
		mid := (lo + hi) / 2
		if after(l.groups[mid].lastKey()) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(l.groups) {
		return pos{}, false
	}
	g := lo
	grp := l.groups[g]
	// First chunk whose last key is on the found side.
	lo, hi = 0, len(grp.chunks)
	for lo < hi {
		mid := (lo + hi) / 2
		ck := grp.chunks[mid].keys
		if after(ck[len(ck)-1]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	c := lo
	ch := grp.chunks[c]
	// First key on the found side.
	lo, hi = 0, len(ch.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if after(ch.keys[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return pos{g, c, lo}, true
}

// indexOf returns the number of keys strictly before p. O(s + log n).
func (l *List[K]) indexOf(p pos) int {
	idx := l.counts.PrefixSum(p.g)
	grp := l.groups[p.g]
	for i := 0; i < p.c; i++ {
		idx += len(grp.chunks[i].keys)
	}
	return idx + p.e
}

// Count returns |{k in list : lo <= k <= hi}| in O(log n).
func (l *List[K]) Count(lo, hi K) int {
	if hi < lo || l.n == 0 {
		return 0
	}
	a, okA := l.firstGE(lo)
	if !okA {
		return 0
	}
	b, okB := l.firstGT(hi)
	end := l.n
	if okB {
		end = l.indexOf(b)
	}
	start := l.indexOf(a)
	if end < start {
		return 0
	}
	return end - start
}

// RankLower returns the number of keys strictly less than key. O(log n).
func (l *List[K]) RankLower(key K) int {
	p, ok := l.firstGE(key)
	if !ok {
		return l.n
	}
	return l.indexOf(p)
}

// RankUpper returns the number of keys less than or equal to key. O(log n).
func (l *List[K]) RankUpper(key K) int {
	p, ok := l.firstGT(key)
	if !ok {
		return l.n
	}
	return l.indexOf(p)
}

// SelectRank returns the key of rank i (0-based, sorted order). It panics
// if i is out of range. O(log n): Fenwick descent to the group, then a
// linear walk over at most 2s chunks.
func (l *List[K]) SelectRank(i int) K {
	if i < 0 || i >= l.n {
		panic("chunks: SelectRank index out of range")
	}
	g := l.counts.Select(i)
	i -= l.counts.PrefixSum(g)
	grp := l.groups[g]
	for _, c := range grp.chunks {
		if i < len(c.keys) {
			return c.keys[i]
		}
		i -= len(c.keys)
	}
	panic("chunks: group count inconsistent with chunks")
}

// Contains reports whether key occurs at least once.
func (l *List[K]) Contains(key K) bool {
	p, ok := l.firstGE(key)
	if !ok {
		return false
	}
	return l.groups[p.g].chunks[p.c].keys[p.e] == key
}

// Insert adds key to the multiset in O(log n) amortized time.
func (l *List[K]) Insert(key K) {
	if l.n == 0 {
		c := &chunk[K]{keys: make([]K, 1, 2*l.s+1)}
		c.keys[0] = key
		g := &group[K]{chunks: make([]*chunk[K], 1, 2*l.s+1), count: 1}
		g.chunks[0] = c
		l.groups = append(l.groups[:0], g)
		l.n = 1
		l.rebuildFenwick()
		return
	}
	// Insert after any equal keys.
	p, ok := l.firstGT(key)
	if !ok {
		// Larger than everything: append to the last chunk.
		g := len(l.groups) - 1
		grp := l.groups[g]
		c := len(grp.chunks) - 1
		p = pos{g, c, len(grp.chunks[c].keys)}
	}
	grp := l.groups[p.g]
	ch := grp.chunks[p.c]
	ch.keys = append(ch.keys, key) // value placeholder; order fixed below
	copy(ch.keys[p.e+1:], ch.keys[p.e:])
	ch.keys[p.e] = key
	grp.count++
	l.n++

	structural := false
	if len(ch.keys) > 2*l.s {
		l.splitChunk(p.g, p.c)
		if len(grp.chunks) > 2*l.s {
			l.splitGroup(p.g)
			structural = true
		}
	}
	if structural {
		l.rebuildFenwick()
	} else {
		l.counts.Add(p.g, 1)
	}
	l.maybeRebuild()
}

// splitChunk splits chunk c of group g into two halves.
func (l *List[K]) splitChunk(g, c int) {
	grp := l.groups[g]
	ch := grp.chunks[c]
	mid := len(ch.keys) / 2
	right := &chunk[K]{keys: make([]K, len(ch.keys)-mid, 2*l.s+1)}
	copy(right.keys, ch.keys[mid:])
	ch.keys = ch.keys[:mid]
	grp.chunks = append(grp.chunks, nil)
	copy(grp.chunks[c+2:], grp.chunks[c+1:])
	grp.chunks[c+1] = right
}

// splitGroup splits group g into two halves and rebuilds the directory
// index. The caller must refresh the Fenwick tree.
func (l *List[K]) splitGroup(g int) {
	grp := l.groups[g]
	mid := len(grp.chunks) / 2
	right := &group[K]{chunks: make([]*chunk[K], len(grp.chunks)-mid, 2*l.s+1)}
	copy(right.chunks, grp.chunks[mid:])
	grp.chunks = grp.chunks[:mid]
	for _, c := range right.chunks {
		right.count += len(c.keys)
	}
	grp.count -= right.count
	l.groups = append(l.groups, nil)
	copy(l.groups[g+2:], l.groups[g+1:])
	l.groups[g+1] = right
}

// Delete removes one occurrence of key, reporting whether one was present.
// O(log n) amortized.
func (l *List[K]) Delete(key K) bool {
	p, ok := l.firstGE(key)
	if !ok {
		return false
	}
	grp := l.groups[p.g]
	ch := grp.chunks[p.c]
	if ch.keys[p.e] != key {
		return false
	}
	copy(ch.keys[p.e:], ch.keys[p.e+1:])
	ch.keys = ch.keys[:len(ch.keys)-1]
	grp.count--
	l.n--

	structural := false
	if len(ch.keys) < l.s/2 {
		structural = l.fixChunkUnderflow(p.g, p.c)
	}
	if structural {
		l.rebuildFenwick()
	} else {
		l.counts.Add(p.g, -1)
	}
	if l.n == 0 {
		l.groups = l.groups[:0]
		l.rebuildFenwick()
		return true
	}
	l.maybeRebuild()
	return true
}

// fixChunkUnderflow repairs chunk c of group g after it dropped below s/2
// keys. It reports whether the group directory changed shape (requiring a
// Fenwick rebuild).
func (l *List[K]) fixChunkUnderflow(g, c int) bool {
	grp := l.groups[g]
	if len(grp.chunks) == 1 {
		// Single chunk in its group. If this is the only group the small
		// size is allowed; otherwise group invariants (>= s/2 >= 4 chunks)
		// make this unreachable.
		return false
	}
	// Merge or redistribute with an adjacent sibling.
	left := c
	if left == len(grp.chunks)-1 {
		left = c - 1
	}
	a, b := grp.chunks[left], grp.chunks[left+1]
	combined := len(a.keys) + len(b.keys)
	if combined <= 2*l.s {
		// Merge b into a, drop b.
		a.keys = append(a.keys, b.keys...)
		copy(grp.chunks[left+1:], grp.chunks[left+2:])
		grp.chunks = grp.chunks[:len(grp.chunks)-1]
		if len(grp.chunks) < l.s/2 {
			return l.fixGroupUnderflow(g)
		}
		return false
	}
	// Redistribute evenly: both halves land in [s, 1.25s], far from bounds.
	l.scratch = append(l.scratch[:0], a.keys...)
	l.scratch = append(l.scratch, b.keys...)
	mid := combined / 2
	a.keys = append(a.keys[:0], l.scratch[:mid]...)
	b.keys = append(b.keys[:0], l.scratch[mid:]...)
	return false
}

// fixGroupUnderflow repairs group g after its chunk count dropped below
// s/2. Returns true: every path changes the directory or group contents in
// a way that needs a Fenwick refresh.
func (l *List[K]) fixGroupUnderflow(g int) bool {
	if len(l.groups) == 1 {
		return true // single group may be small; counts still moved
	}
	left := g
	if left == len(l.groups)-1 {
		left = g - 1
	}
	a, b := l.groups[left], l.groups[left+1]
	combined := len(a.chunks) + len(b.chunks)
	if combined <= 2*l.s {
		a.chunks = append(a.chunks, b.chunks...)
		a.count += b.count
		copy(l.groups[left+1:], l.groups[left+2:])
		l.groups = l.groups[:len(l.groups)-1]
		return true
	}
	// Redistribute chunks evenly.
	mid := combined / 2
	if len(a.chunks) > mid {
		// Move the tail of a to the front of b.
		moved := a.chunks[mid:]
		b.chunks = append(append(make([]*chunk[K], 0, 2*l.s+1), moved...), b.chunks...)
		a.chunks = a.chunks[:mid]
	} else {
		// Move the front of b to the tail of a.
		take := mid - len(a.chunks)
		a.chunks = append(a.chunks, b.chunks[:take]...)
		b.chunks = append(b.chunks[:0], b.chunks[take:]...)
	}
	a.count = 0
	for _, c := range a.chunks {
		a.count += len(c.keys)
	}
	b.count = 0
	for _, c := range b.chunks {
		b.count += len(c.keys)
	}
	return true
}

// AppendRange appends every key in [lo, hi], in sorted order, to dst and
// returns it. O(log n + output).
func (l *List[K]) AppendRange(dst []K, lo, hi K) []K {
	if l.n == 0 || hi < lo {
		return dst
	}
	p, ok := l.firstGE(lo)
	if !ok {
		return dst
	}
	for g := p.g; g < len(l.groups); g++ {
		grp := l.groups[g]
		c0 := 0
		if g == p.g {
			c0 = p.c
		}
		for c := c0; c < len(grp.chunks); c++ {
			ch := grp.chunks[c]
			e0 := 0
			if g == p.g && c == p.c {
				e0 = p.e
			}
			for _, k := range ch.keys[e0:] {
				if k > hi {
					return dst
				}
				dst = append(dst, k)
			}
		}
	}
	return dst
}

// AppendKeys appends every key in sorted order to dst and returns it.
func (l *List[K]) AppendKeys(dst []K) []K {
	for _, g := range l.groups {
		for _, c := range g.chunks {
			dst = append(dst, c.keys...)
		}
	}
	return dst
}

// Stats describes the current geometry, for tests and the space experiment.
type Stats struct {
	N      int
	S      int
	Groups int
	Chunks int
}

// GeometryStats returns the current geometry.
func (l *List[K]) GeometryStats() Stats {
	st := Stats{N: l.n, S: l.s, Groups: len(l.groups)}
	for _, g := range l.groups {
		st.Chunks += len(g.chunks)
	}
	return st
}

// Footprint estimates the resident size of the structure in bytes,
// accounting for slice capacities, headers, and the Fenwick index.
func (l *List[K]) Footprint() int64 {
	var k K
	keySize := int64(unsafe.Sizeof(k))
	const ptrSize = int64(unsafe.Sizeof(uintptr(0)))
	const sliceHeader = 3 * 8
	total := int64(unsafe.Sizeof(*l))
	total += int64(cap(l.groups)) * ptrSize
	for _, g := range l.groups {
		total += int64(unsafe.Sizeof(*g)) + int64(cap(g.chunks))*ptrSize
		for _, c := range g.chunks {
			total += sliceHeader + int64(cap(c.keys))*keySize
		}
	}
	total += int64(l.counts.Len()+1) * 8 // Fenwick tree array
	total += int64(cap(l.scratch)) * keySize
	return total
}

// Validate checks every structural invariant. Intended for tests; it is
// O(n).
func (l *List[K]) Validate() error {
	if l.n == 0 {
		if len(l.groups) != 0 {
			return errors.New("chunks: empty list with groups")
		}
		return nil
	}
	total := 0
	var prev K
	havePrev := false
	singleGroup := len(l.groups) == 1
	for gi, g := range l.groups {
		if len(g.chunks) == 0 {
			return fmt.Errorf("chunks: group %d empty", gi)
		}
		if !singleGroup && (len(g.chunks) < l.s/2 || len(g.chunks) > 2*l.s) {
			return fmt.Errorf("chunks: group %d has %d chunks, want [%d,%d]", gi, len(g.chunks), l.s/2, 2*l.s)
		}
		singleChunk := singleGroup && len(g.chunks) == 1
		gcount := 0
		for ci, c := range g.chunks {
			if len(c.keys) == 0 {
				return fmt.Errorf("chunks: group %d chunk %d empty", gi, ci)
			}
			if !singleChunk && (len(c.keys) < l.s/2 || len(c.keys) > 2*l.s) {
				return fmt.Errorf("chunks: group %d chunk %d has %d keys, want [%d,%d]", gi, ci, len(c.keys), l.s/2, 2*l.s)
			}
			for _, k := range c.keys {
				if havePrev && prev > k {
					return fmt.Errorf("chunks: order violation at group %d chunk %d", gi, ci)
				}
				prev, havePrev = k, true
			}
			gcount += len(c.keys)
		}
		if gcount != g.count {
			return fmt.Errorf("chunks: group %d count %d, actual %d", gi, g.count, gcount)
		}
		if got := l.counts.RangeSum(gi, gi+1); got != gcount {
			return fmt.Errorf("chunks: fenwick slot %d = %d, actual %d", gi, got, gcount)
		}
		total += gcount
	}
	if total != l.n {
		return fmt.Errorf("chunks: n = %d, actual %d", l.n, total)
	}
	return nil
}

// Run is a prepared sampling context for one query range. It is valid only
// until the next modification of the list; using it afterwards may return
// samples from a stale or inconsistent view.
type Run[K cmp.Ordered] struct {
	list   *List[K]
	lo, hi K
	mode   runMode
	// groups mode: sample uniformly over groups[gLo..gHi].
	gLo, gHi int
	// chunks mode: chunk run of length nChunks starting at chunk cLo of
	// group gLo and (if it spills over) continuing at chunk 0 of group gHi.
	cLo, nLeft, nChunks int
	// collect mode: the in-range keys, materialized.
	scratch []K
}

type runMode uint8

const (
	modeEmpty runMode = iota
	modeGroups
	modeChunks
	modeCollect
)

// NewRun prepares a sampling context for the inclusive range [lo, hi].
// O(log n). Empty() reports whether the range holds no keys.
func (l *List[K]) NewRun(lo, hi K) *Run[K] {
	r := &Run[K]{list: l, lo: lo, hi: hi, mode: modeEmpty}
	l.InitRun(r, lo, hi)
	return r
}

// InitRun is like NewRun but reuses r's storage (queries in a steady state
// allocate nothing).
func (l *List[K]) InitRun(r *Run[K], lo, hi K) {
	r.list = l
	r.lo, r.hi = lo, hi
	r.mode = modeEmpty
	r.scratch = r.scratch[:0]
	if l.n == 0 || hi < lo {
		return
	}
	a, okA := l.firstGE(lo)
	if !okA {
		return
	}
	if k := l.groups[a.g].chunks[a.c].keys[a.e]; k > hi {
		return
	}
	b, okB := l.lastLE(hi)
	if !okB {
		return
	}
	// Every in-range key lives in groups a.g..b.g.
	if b.g-a.g >= 2 {
		r.mode = modeGroups
		r.gLo, r.gHi = a.g, b.g
		return
	}
	// Chunk run between (a.g, a.c) and (b.g, b.c).
	if a.g == b.g {
		r.nLeft = b.c - a.c + 1
		r.nChunks = r.nLeft
	} else {
		r.nLeft = len(l.groups[a.g].chunks) - a.c
		r.nChunks = r.nLeft + b.c + 1
	}
	r.gLo, r.gHi, r.cLo = a.g, b.g, a.c
	if r.nChunks >= 3 || l.noCollect {
		r.mode = modeChunks
		return
	}
	// At most two chunks contain the range: materialize it.
	r.mode = modeCollect
	for j := 0; j < r.nChunks; j++ {
		ch := r.chunkAt(j)
		for _, k := range ch.keys {
			if k >= lo && k <= hi {
				r.scratch = append(r.scratch, k)
			}
		}
	}
	if len(r.scratch) == 0 {
		r.mode = modeEmpty
	}
}

// lastLE returns the position of the last key <= bound.
func (l *List[K]) lastLE(bound K) (pos, bool) {
	p, ok := l.firstGT(bound)
	if !ok {
		// Everything is <= bound: last element.
		g := len(l.groups) - 1
		grp := l.groups[g]
		c := len(grp.chunks) - 1
		return pos{g, c, len(grp.chunks[c].keys) - 1}, true
	}
	return l.prevPos(p)
}

// prevPos returns the position immediately before p, or ok=false if p is
// the first position.
func (l *List[K]) prevPos(p pos) (pos, bool) {
	if p.e > 0 {
		return pos{p.g, p.c, p.e - 1}, true
	}
	if p.c > 0 {
		ch := l.groups[p.g].chunks[p.c-1]
		return pos{p.g, p.c - 1, len(ch.keys) - 1}, true
	}
	if p.g > 0 {
		grp := l.groups[p.g-1]
		c := len(grp.chunks) - 1
		return pos{p.g - 1, c, len(grp.chunks[c].keys) - 1}, true
	}
	return pos{}, false
}

// chunkAt returns the j-th chunk of the run (chunk mode addressing).
func (r *Run[K]) chunkAt(j int) *chunk[K] {
	if j < r.nLeft {
		return r.list.groups[r.gLo].chunks[r.cLo+j]
	}
	return r.list.groups[r.gHi].chunks[j-r.nLeft]
}

// Empty reports whether the range holds no keys.
func (r *Run[K]) Empty() bool { return r.mode == modeEmpty }

// Sample returns one key uniform over the range. It panics if the run is
// empty. Expected O(1) time; see SampleProbes for the probe distribution.
func (r *Run[K]) Sample(rng *xrand.RNG) K {
	k, _ := r.SampleProbes(rng)
	return k
}

// SamplePos returns one uniform key together with an opaque identifier of
// the *position* (occurrence) sampled, distinct across all positions in the
// run. Sampling without replacement uses it to reject repeat positions
// exactly even when key values repeat. The identifier is only meaningful
// for the lifetime of the run.
func (r *Run[K]) SamplePos(rng *xrand.RNG) (K, uint64) {
	l := r.list
	cap2s := uint64(2 * l.s)
	switch r.mode {
	case modeCollect:
		i := rng.Uint64n(uint64(len(r.scratch)))
		return r.scratch[i], i
	case modeChunks:
		span := uint64(r.nChunks)
		for {
			j := rng.Uint64n(span)
			ch := r.chunkAt(int(j))
			e := rng.Uint64n(cap2s)
			if e >= uint64(len(ch.keys)) {
				continue
			}
			k := ch.keys[e]
			if k < r.lo || k > r.hi {
				continue
			}
			return k, j*cap2s + e
		}
	case modeGroups:
		span := uint64(r.gHi - r.gLo + 1)
		for {
			gi := rng.Uint64n(span)
			g := l.groups[r.gLo+int(gi)]
			ci := rng.Uint64n(cap2s)
			if ci >= uint64(len(g.chunks)) {
				continue
			}
			ch := g.chunks[ci]
			e := rng.Uint64n(cap2s)
			if e >= uint64(len(ch.keys)) {
				continue
			}
			k := ch.keys[e]
			if k < r.lo || k > r.hi {
				continue
			}
			return k, (gi*cap2s+ci)*cap2s + e
		}
	default:
		panic("chunks: SamplePos on empty run")
	}
}

// SampleProbes returns one uniform key and the number of rejection probes
// it took (>= 1). The probe count is the quantity experiment E10 studies:
// its expectation is O(1) but its tail is geometric, which is exactly the
// expected-versus-worst-case gap the follow-up literature formalizes.
func (r *Run[K]) SampleProbes(rng *xrand.RNG) (K, int) {
	l := r.list
	cap2s := uint64(2 * l.s)
	switch r.mode {
	case modeCollect:
		return r.scratch[rng.Uint64n(uint64(len(r.scratch)))], 1
	case modeChunks:
		span := uint64(r.nChunks)
		for probes := 1; ; probes++ {
			ch := r.chunkAt(int(rng.Uint64n(span)))
			e := int(rng.Uint64n(cap2s))
			if e >= len(ch.keys) {
				continue
			}
			k := ch.keys[e]
			if k < r.lo || k > r.hi {
				continue
			}
			return k, probes
		}
	case modeGroups:
		span := uint64(r.gHi - r.gLo + 1)
		for probes := 1; ; probes++ {
			g := l.groups[r.gLo+int(rng.Uint64n(span))]
			ci := int(rng.Uint64n(cap2s))
			if ci >= len(g.chunks) {
				continue
			}
			ch := g.chunks[ci]
			e := int(rng.Uint64n(cap2s))
			if e >= len(ch.keys) {
				continue
			}
			k := ch.keys[e]
			if k < r.lo || k > r.hi {
				continue
			}
			return k, probes
		}
	default:
		panic("chunks: Sample on empty run")
	}
}

// SampleAppend draws t independent uniform samples from [lo, hi], appending
// to dst. It reports ok=false (and appends nothing) if the range is empty
// and t > 0. Total cost O(log n + t) expected.
func (l *List[K]) SampleAppend(dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, bool) {
	if t <= 0 {
		return dst, true
	}
	var r Run[K]
	l.InitRun(&r, lo, hi)
	if r.Empty() {
		return dst, false
	}
	for i := 0; i < t; i++ {
		dst = append(dst, r.Sample(rng))
	}
	return dst, true
}
