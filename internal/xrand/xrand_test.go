package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 outputs", same)
	}
}

func TestReseedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40, math.MaxUint64} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestIntRange(t *testing.T) {
	r := New(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange(-3,3) = %d", v)
		}
		seen[v] = true
	}
	for v := -3; v <= 3; v++ {
		if !seen[v] {
			t.Fatalf("IntRange(-3,3) never produced %d in 1000 draws", v)
		}
	}
	if got := r.IntRange(9, 9); got != 9 {
		t.Fatalf("IntRange(9,9) = %d, want 9", got)
	}
}

func TestIntRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(2,1) did not panic")
		}
	}()
	New(1).IntRange(2, 1)
}

// TestUint64nUniform checks exact-looking uniformity of the bounded sampler
// on a small modulus with a chi-square-style tolerance.
func TestUint64nUniform(t *testing.T) {
	r := New(11)
	const n = 10
	const draws = 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; 27.9 is the 0.001 critical value.
	if chi2 > 27.9 {
		t.Fatalf("chi-square = %.2f exceeds 27.9; counts = %v", chi2, counts)
	}
}

func TestFloat64Range01(t *testing.T) {
	r := New(13)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / 100000
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.Float64Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Float64Range(-2,5) = %v", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(23)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate = %v", rate)
	}
}

func TestNorm64Moments(t *testing.T) {
	r := New(29)
	const draws = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.Norm64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Norm64 variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	check := func(n uint8) bool {
		p := r.Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformOnThree(t *testing.T) {
	r := New(37)
	counts := map[[3]int]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		counts[a]++
	}
	if len(counts) != 6 {
		t.Fatalf("expected 6 permutations, saw %d", len(counts))
	}
	expected := float64(draws) / 6
	for p, c := range counts {
		if math.Abs(float64(c)-expected) > expected*0.1 {
			t.Fatalf("permutation %v count %d deviates from %v", p, c, expected)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(41)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and split child matched on %d of 100 outputs", same)
	}
}

func TestZeroStateGuard(t *testing.T) {
	// Directly exercise the guard: a seed that would map to the all-zero
	// state cannot exist with splitmix64, so construct the RNG manually.
	r := &RNG{}
	r.Reseed(0)
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		t.Fatal("Reseed(0) produced the all-zero state")
	}
	// The first outputs must not be all zero either.
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("suspiciously zero output stream")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64n(1000003)
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
