// Package xrand provides the deterministic pseudo-random substrate used by
// every sampler in this repository.
//
// Independent range sampling is a statement about probability distributions,
// so the random source is a first-class dependency: every sampling routine
// in the repository takes an explicit *RNG instead of reaching for global
// state. That makes experiments reproducible (fixed seeds), makes statistical
// tests meaningful (the same stream can be replayed), and keeps structures
// safe for concurrent readers as long as each goroutine owns its RNG.
//
// The generator is xoshiro256++ seeded through splitmix64, the combination
// recommended by its authors for general-purpose use. Bounded integers use
// Lemire's multiply-shift rejection method, which performs one multiplication
// in the common case and is exactly uniform.
package xrand

import "math/bits"

// RNG is a xoshiro256++ pseudo-random generator. The zero value is invalid;
// use New or NewFromState. RNG is not safe for concurrent use; give each
// goroutine its own instance (Split derives independent streams).
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances a splitmix64 state and returns the next output.
// It is used only to expand seeds into full xoshiro states.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns an RNG deterministically derived from seed. Distinct seeds
// yield streams that are, for all practical purposes, independent.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator to the state derived from seed.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// A state of all zeros is the one fixed point of xoshiro; splitmix64
	// cannot produce four zero outputs in a row, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

// Split returns a new RNG whose stream is independent of r's continuing
// stream. It consumes one output from r.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// The implementation is Lemire's nearly-divisionless method: one widening
// multiply in the common case, with an exact rejection step that removes
// modulo bias entirely.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// IntRange returns a uniform integer in the inclusive range [lo, hi].
// It panics if lo > hi.
func (r *RNG) IntRange(lo, hi int) int {
	if lo > hi {
		panic("xrand: IntRange called with lo > hi")
	}
	return lo + int(r.Uint64n(uint64(hi-lo)+1))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1.0p-53
}

// Float64Range returns a uniform float64 in [lo, hi).
func (r *RNG) Float64Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Norm64 returns a standard normal variate via the polar (Marsaglia) method.
func (r *RNG) Norm64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * polarScale(s)
		}
	}
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i) + 1))
		swap(i, j)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
