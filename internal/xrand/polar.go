package xrand

import "math"

// polarScale returns sqrt(-2 ln s / s), the scaling factor of the polar
// method for normal variates.
func polarScale(s float64) float64 {
	return math.Sqrt(-2 * math.Log(s) / s)
}
