// Package cluster is the range-partitioned serving tier: a partition map
// assigning contiguous key ranges to node addresses, and a Router that
// satisfies the single-node serving surface (server.Backend) by fanning
// requests out to the nodes owning each key range.
//
// The router's sampling is exact, not approximate: a cross-partition
// sample request is split with the same two-stage construction the
// in-process sharded structures use (internal/shard) — per-partition
// in-range (count, mass) probes, a multinomial draw over partition masses
// via an alias table, per-partition sub-samples, and a scatter back into
// draw order. Because the partition of each output position is drawn with
// probability proportional to its in-range mass, and within a partition
// the node returns i.i.d. mass-proportional samples, the composition is
// distributed exactly as a single node holding the union would answer —
// the same argument, one level up, as the per-shard proof in
// internal/shard.
//
// The router is transport-agnostic: it speaks only the client.Conn
// interface, so nodes may be reached over HTTP/JSON, HTTP binary, or the
// persistent TCP transport without the router knowing which.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// ErrBadMap rejects an invalid partition map: empty, out of order,
// overlapping, or gapped.
var ErrBadMap = errors.New("cluster: invalid partition map")

// Partition assigns one contiguous key range to one node. The partition
// owns keys k with Lo <= k < Hi — except the last partition in a map,
// which also owns k == Hi, so a map covers the closed interval
// [first.Lo, last.Hi] with every key owned by exactly one node. Lo may be
// -Inf and (on the last partition) Hi may be +Inf.
type Partition struct {
	Addr   string  // node address, as dialed by client.Dial
	Lo, Hi float64 // owned key range; see ownership rule above
}

// Map is an immutable ordered partition table plus a mutable cache of
// per-partition (key count, sampling mass) figures refreshed from node
// stats. The topology never changes after New; only the cached stats do.
type Map struct {
	parts []Partition

	mu        sync.RWMutex
	counts    []int     // cached keys per partition, from the last refresh
	masses    []float64 // cached sampling mass per partition
	refreshed time.Time // zero until the first refresh
}

// New validates and builds a partition map. Partitions must be given in
// ascending key order, each with Lo < Hi, and exactly contiguous:
// parts[i+1].Lo == parts[i].Hi. (Exact contiguity is what makes the
// half-open ownership rule partition the key space with no gap and no
// double-ownership.)
func New(parts []Partition) (*Map, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: no partitions", ErrBadMap)
	}
	for i, p := range parts {
		if p.Addr == "" {
			return nil, fmt.Errorf("%w: partition %d has no address", ErrBadMap, i)
		}
		if math.IsNaN(p.Lo) || math.IsNaN(p.Hi) || !(p.Lo < p.Hi) {
			return nil, fmt.Errorf("%w: partition %d (%s) has range [%v, %v], want Lo < Hi", ErrBadMap, i, p.Addr, p.Lo, p.Hi)
		}
		if i > 0 && parts[i-1].Hi != p.Lo {
			return nil, fmt.Errorf("%w: partition %d (%s) starts at %v, want %v (ranges must be contiguous and ascending)",
				ErrBadMap, i, p.Addr, p.Lo, parts[i-1].Hi)
		}
	}
	m := &Map{
		parts:  append([]Partition(nil), parts...),
		counts: make([]int, len(parts)),
		masses: make([]float64, len(parts)),
	}
	return m, nil
}

// Len returns the partition count.
func (m *Map) Len() int { return len(m.parts) }

// At returns partition i.
func (m *Map) At(i int) Partition { return m.parts[i] }

// upper returns the inclusive upper bound of partition i's owned range:
// Hi itself for the last partition, the largest float64 below Hi
// otherwise. Node queries are inclusive on both ends, so this is the
// bound to probe and sample partition i with.
func (m *Map) upper(i int) float64 {
	if i == len(m.parts)-1 {
		return m.parts[i].Hi
	}
	return math.Nextafter(m.parts[i].Hi, math.Inf(-1))
}

// Route returns the index of the partition owning key, or -1 when key
// falls outside the map's coverage (or is NaN).
func (m *Map) Route(key float64) int {
	if math.IsNaN(key) || key < m.parts[0].Lo || key > m.parts[len(m.parts)-1].Hi {
		return -1
	}
	// First partition whose Hi exceeds key owns it; the last partition
	// additionally owns key == Hi.
	i := sort.Search(len(m.parts), func(i int) bool { return key < m.parts[i].Hi })
	if i == len(m.parts) {
		return len(m.parts) - 1 // key == last.Hi
	}
	return i
}

// Overlap returns the index range [first, last] of partitions whose owned
// range intersects the inclusive query [lo, hi]. When nothing overlaps
// (query entirely outside coverage) it returns first > last.
func (m *Map) Overlap(lo, hi float64) (first, last int) {
	n := len(m.parts)
	// First partition whose inclusive upper bound reaches lo.
	first = sort.Search(n, func(i int) bool { return m.upper(i) >= lo })
	// Last partition whose lower bound does not exceed hi.
	last = sort.Search(n, func(i int) bool { return m.parts[i].Lo > hi }) - 1
	return first, last
}

// Clip intersects the inclusive query [lo, hi] with partition i's owned
// range, returning inclusive bounds. ok is false when they don't meet.
func (m *Map) Clip(i int, lo, hi float64) (clo, chi float64, ok bool) {
	clo = math.Max(lo, m.parts[i].Lo)
	chi = math.Min(hi, m.upper(i))
	return clo, chi, clo <= chi
}

// Update caches partition i's refreshed (key count, sampling mass) and
// stamps the refresh time.
func (m *Map) Update(i, count int, mass float64, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts[i] = count
	m.masses[i] = mass
	m.refreshed = at
}

// Cached returns partition i's last refreshed (key count, sampling mass)
// and when any partition was last refreshed (zero before the first
// refresh). The cache serves observability — the router's sampling split
// probes live (count, mass) per request, because a boundary partition cut
// mid-range by the query must be weighted by its in-range mass, which no
// whole-partition cache can supply.
func (m *Map) Cached(i int) (count int, mass float64, refreshed time.Time) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.counts[i], m.masses[i], m.refreshed
}
