package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/irsgo/irs/client"
	"github.com/irsgo/irs/internal/alias"
	"github.com/irsgo/irs/internal/metrics"
	"github.com/irsgo/irs/internal/xrand"
	"github.com/irsgo/irs/server"
)

// Options configures a Router.
type Options struct {
	// Datasets names the datasets the cluster serves; requests for other
	// names answer ErrUnknownDataset without touching a node, and an empty
	// request name resolves to the sole dataset exactly as on a single
	// node. Must name at least one.
	Datasets []string
	// Seed seeds the multinomial-split RNG.
	Seed uint64
	// Timeout bounds each upstream node call; 0 means no bound.
	Timeout time.Duration
}

// mapState is one generation of the router's topology: the partition map,
// the node connections (conns[i] serves m.At(i)), the served dataset set,
// and that generation's per-partition instrumentation. Generations are
// immutable once installed and reference-counted: every request acquires
// the current generation, runs entirely against it, and releases it when
// done — so SetMap can install a repartitioned map while requests started
// under the old one finish on the exact topology they were routed with,
// and the old generation's connections close only after its last request
// completes. The count starts at 1 (the router's own reference, dropped
// when the generation is retired).
type mapState struct {
	m        *Map
	conns    []client.Conn
	datasets map[string]bool
	sole     string // sole dataset name, "" when several are registered
	timeout  time.Duration
	epoch    uint64 // 1 for the boot map, +1 per SetMap

	// Per-partition upstream instrumentation, exposed by AppendMetrics.
	// Counters are per generation: a swap resets them (rate() across the
	// swap behaves like a process restart).
	requests []metrics.Counter // RPCs issued to the partition's node
	failures []metrics.Counter // RPCs that found the node unreachable

	refs      atomic.Int64
	closeOnce sync.Once
	closeErr  error
}

// release drops one reference; the last one out closes the generation's
// connections.
func (s *mapState) release() {
	if s.refs.Add(-1) == 0 {
		_ = s.closeConns()
	}
}

// closeConns closes the generation's node connections exactly once.
func (s *mapState) closeConns() error {
	s.closeOnce.Do(func() {
		errs := make([]error, len(s.conns))
		for i, c := range s.conns {
			errs[i] = c.Close()
		}
		s.closeErr = errors.Join(errs...)
	})
	return s.closeErr
}

// Router fans the single-node serving surface out across a partition map.
// It satisfies server.Backend, so server.NewProxy(router) serves the
// identical HTTP protocol — and irsnet.NewServer on top of that proxy the
// identical TCP protocol — that the nodes themselves speak.
//
// The topology is swappable at runtime: SetMap atomically installs a new
// (validated) partition map and connection set, in-flight requests finish
// on the generation they started with, and the retired generation's
// connections close when its last request completes. irsrouter drives
// this from SIGHUP config reloads.
//
// Failure semantics: sampling and range probes fail whole when any
// overlapping node is unreachable (a partial sample would not be a sample
// of the requested range); mutations apply per partition independently and
// report how many elements were applied alongside an error wrapping
// server.ErrUnavailable for the partitions that failed. Unreachable-node
// errors always satisfy errors.Is(err, server.ErrUnavailable); node-side
// serving errors (*server.APIError) pass through untouched, so the error
// vocabulary a client sees through the router is the node vocabulary plus
// "unavailable".
type Router struct {
	cur   atomic.Pointer[mapState]
	setMu sync.Mutex // serializes SetMap/Close (generation retirement)

	timeout time.Duration

	rngMu sync.Mutex
	rng   *xrand.RNG
}

// newMapState assembles one topology generation.
func newMapState(m *Map, conns []client.Conn, datasets []string, timeout time.Duration, epoch uint64) (*mapState, error) {
	if len(conns) != m.Len() {
		return nil, fmt.Errorf("%w: %d connections for %d partitions", ErrBadMap, len(conns), m.Len())
	}
	s := &mapState{
		m:        m,
		conns:    conns,
		datasets: make(map[string]bool, len(datasets)),
		timeout:  timeout,
		epoch:    epoch,
		requests: make([]metrics.Counter, m.Len()),
		failures: make([]metrics.Counter, m.Len()),
	}
	for _, name := range datasets {
		s.datasets[name] = true
	}
	if len(s.datasets) == 1 {
		s.sole = datasets[0]
	}
	s.refs.Store(1) // the router's own reference
	return s, nil
}

// NewRouter builds a router over the map's partitions; conns[i] is the
// connection to the node owning m.At(i) — one per partition, in map order.
func NewRouter(m *Map, conns []client.Conn, opts Options) (*Router, error) {
	if len(opts.Datasets) == 0 {
		return nil, errors.New("cluster: at least one dataset name required")
	}
	s, err := newMapState(m, conns, opts.Datasets, opts.Timeout, 1)
	if err != nil {
		return nil, err
	}
	r := &Router{
		timeout: opts.Timeout,
		rng:     xrand.New(opts.Seed),
	}
	r.cur.Store(s)
	return r, nil
}

// SetMap atomically installs a new topology: a validated partition map
// plus the connections serving it (conns[i] owns m.At(i)). Validation runs
// before the swap — on error the router keeps serving the old generation
// unchanged and the caller retains ownership of conns (it should close
// them). datasets replaces the served dataset set; empty keeps the current
// one. Requests in flight finish on the generation they started with; the
// retired generation's connections close after its last request completes.
func (r *Router) SetMap(m *Map, conns []client.Conn, datasets []string) error {
	r.setMu.Lock()
	defer r.setMu.Unlock()
	old := r.cur.Load()
	if old == nil {
		return server.ErrShuttingDown
	}
	if len(datasets) == 0 {
		datasets = make([]string, 0, len(old.datasets))
		for name := range old.datasets {
			datasets = append(datasets, name)
		}
		sort.Strings(datasets)
	}
	s, err := newMapState(m, conns, datasets, r.timeout, old.epoch+1)
	if err != nil {
		return err
	}
	r.cur.Store(s)
	old.release() // drop the router's reference; conns close when drained
	return nil
}

// acquire takes a reference on the current generation. The recheck loop
// closes the race with SetMap: if the generation was retired between the
// load and the increment (and may already have closed its connections
// because its count touched zero), the reference is dropped and the new
// generation acquired instead. Returns nil after Close.
func (r *Router) acquire() *mapState {
	for {
		s := r.cur.Load()
		if s == nil {
			return nil
		}
		s.refs.Add(1)
		if r.cur.Load() == s {
			return s
		}
		s.release()
	}
}

// Map returns the current partition map (for observability; each
// generation's topology is immutable — SetMap installs whole new maps).
func (r *Router) Map() *Map {
	if s := r.cur.Load(); s != nil {
		return s.m
	}
	return nil
}

// Epoch returns the current map generation: 1 for the boot map, +1 per
// SetMap.
func (r *Router) Epoch() uint64 {
	if s := r.cur.Load(); s != nil {
		return s.epoch
	}
	return 0
}

// callCtx bounds one upstream call.
func (s *mapState) callCtx() (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), s.timeout)
}

// wrap classifies an upstream error: node-side serving errors
// (*server.APIError, already carrying the wire vocabulary) pass through;
// anything else — dial failure, timeout, torn connection — becomes an
// unavailable error naming the partition.
func (s *mapState) wrap(i int, err error) error {
	if err == nil {
		return nil
	}
	var apiErr *server.APIError
	if errors.As(err, &apiErr) {
		return err
	}
	s.failures[i].Inc()
	return fmt.Errorf("%w: partition %d (%s): %v", server.ErrUnavailable, i, s.m.At(i).Addr, err)
}

// resolve mirrors the single-node routing rule over the generation's
// registered dataset names.
func (s *mapState) resolve(dataset string) (string, error) {
	if dataset == "" {
		if s.sole != "" {
			return s.sole, nil
		}
		return "", server.ErrAmbiguousDataset
	}
	if !s.datasets[dataset] {
		return "", server.ErrUnknownDataset
	}
	return dataset, nil
}

// Resolve mirrors the single-node routing rule over the router's
// registered dataset names.
func (r *Router) Resolve(dataset string) (string, error) {
	s := r.acquire()
	if s == nil {
		return "", server.ErrShuttingDown
	}
	defer s.release()
	return s.resolve(dataset)
}

// SampleAppend answers t independent mass-proportional samples of
// [lo, hi] drawn across every overlapping partition — see the package
// comment for the exactness construction. When exactly one partition
// overlaps, the request is forwarded verbatim, so a router over a single
// node is sample-for-sample identical to that node.
func (r *Router) SampleAppend(dataset string, dst []float64, lo, hi float64, t int) ([]float64, error) {
	if t <= 0 {
		return dst, server.ErrInvalidCount
	}
	if hi < lo {
		return dst, server.ErrInvalidRange
	}
	s := r.acquire()
	if s == nil {
		return dst, server.ErrShuttingDown
	}
	defer s.release()
	name, err := s.resolve(dataset)
	if err != nil {
		return dst, err
	}
	return r.sampleResolved(s, name, dst, lo, hi, t)
}

// SampleAppendAsync is SampleAppend under the Backend async contract:
// validation and routing errors return synchronously (done never runs);
// otherwise done.Deliver runs exactly once from another goroutine. The
// router has no coalescer to keep a reader goroutine out of — the fan-out
// itself is the slow part — so async is a goroutine over the sync path.
// The goroutine holds the generation reference until delivery, so a
// concurrent SetMap cannot close the connections under it.
func (r *Router) SampleAppendAsync(dataset string, dst []float64, lo, hi float64, t int, done server.SampleReply) error {
	if t <= 0 {
		return server.ErrInvalidCount
	}
	if hi < lo {
		return server.ErrInvalidRange
	}
	s := r.acquire()
	if s == nil {
		return server.ErrShuttingDown
	}
	name, err := s.resolve(dataset)
	if err != nil {
		s.release()
		return err
	}
	go func() {
		defer s.release()
		done.Deliver(r.sampleResolved(s, name, dst, lo, hi, t))
	}()
	return nil
}

func (r *Router) sampleResolved(s *mapState, name string, dst []float64, lo, hi float64, t int) ([]float64, error) {
	first, last := s.m.Overlap(lo, hi)
	if first > last {
		return dst, server.ErrEmptyRange // query outside the map's coverage
	}
	if first == last {
		// Single-partition fast path: forward the request unchanged (the
		// node clips to its own holdings anyway), keeping the router
		// bit-transparent over one partition.
		s.requests[first].Inc()
		ctx, cancel := s.callCtx()
		defer cancel()
		out, err := s.conns[first].SampleAppend(ctx, name, dst, lo, hi, t)
		if err != nil {
			return dst, s.wrap(first, err)
		}
		return out, nil
	}

	// Stage 1: per-partition in-range (count, mass) probes on the clipped
	// ranges, in parallel. Any unreachable node fails the request whole: a
	// sample drawn from only the reachable partitions would be a sample of
	// a different population.
	n := last - first + 1
	counts := make([]int, n)
	masses := make([]float64, n)
	if err := s.scatter(first, last, func(ctx context.Context, i int) error {
		clo, chi, _ := s.m.Clip(i, lo, hi)
		c, m, err := s.conns[i].RangeStats(ctx, name, clo, chi)
		counts[i-first], masses[i-first] = c, m
		return err
	}); err != nil {
		return dst, err
	}
	total, totalMass := 0, 0.0
	for k := range counts {
		total += counts[k]
		totalMass += masses[k]
	}
	if total == 0 || totalMass <= 0 {
		return dst, server.ErrEmptyRange
	}

	// Stage 2: multinomial split — alias table over the positive
	// per-partition masses, one draw per output position, tallied into
	// per-partition sub-request sizes.
	var weights []float64
	var nonzero []int // partition offset (i-first) per alias column
	for k, m := range masses {
		if m > 0 {
			weights = append(weights, m)
			nonzero = append(nonzero, k)
		}
	}
	table, err := alias.New(weights)
	if err != nil {
		return dst, err // unreachable: weights are positive and finite
	}
	cols := len(weights)
	choice := make([]int32, t)
	tally := make([]int, cols)
	r.rngMu.Lock()
	for j := 0; j < t; j++ {
		k := table.Draw(r.rng)
		choice[j] = int32(k)
		tally[k]++
	}
	r.rngMu.Unlock()

	// Stage 3: per-partition sub-samples of the clipped ranges, in
	// parallel. Each node returns exactly tally[k] i.i.d. samples of its
	// clip or an error (a concurrent deletion emptying a partition between
	// probe and sample surfaces as that node's error and fails the
	// request, never as a silently short result).
	segs := make([][]float64, cols)
	if err := s.scatterCols(first, nonzero, func(ctx context.Context, k, i int) error {
		want := tally[k]
		if want == 0 {
			return nil
		}
		clo, chi, _ := s.m.Clip(i, lo, hi)
		seg, err := s.conns[i].SampleAppend(ctx, name, make([]float64, 0, want), clo, chi, want)
		if err == nil && len(seg) != want {
			err = fmt.Errorf("cluster: partition %d (%s) returned %d samples, want %d", i, s.m.At(i).Addr, len(seg), want)
		}
		segs[k] = seg
		return err
	}); err != nil {
		return dst, err
	}

	// Stage 4: scatter the per-partition blocks back into draw order.
	// Within a partition the samples are i.i.d., so handing them out in
	// block order to the positions that drew that partition preserves the
	// exact distribution and independence across the t output positions.
	idx := make([]int, cols)
	for j := 0; j < t; j++ {
		k := choice[j]
		dst = append(dst, segs[k][idx[k]])
		idx[k]++
	}
	return dst, nil
}

// scatter runs f for every partition in [first, last] concurrently, each
// under its own call context, counting one upstream request per
// partition. It returns the joined wrapped errors (nil when all succeed).
func (s *mapState) scatter(first, last int, f func(ctx context.Context, i int) error) error {
	errs := make([]error, last-first+1)
	var wg sync.WaitGroup
	for i := first; i <= last; i++ {
		s.requests[i].Inc()
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := s.callCtx()
			defer cancel()
			errs[i-first] = s.wrap(i, f(ctx, i))
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// scatterCols is scatter over alias columns: cols[k] is the partition
// offset from first, and f receives both the column and the absolute
// partition index. Columns with no work may return nil without an RPC —
// f decides; the request counter increments only when f is invoked with
// work to do, so it counts issued RPCs, not potential ones.
func (s *mapState) scatterCols(first int, cols []int, f func(ctx context.Context, k, i int) error) error {
	errs := make([]error, len(cols))
	var wg sync.WaitGroup
	for k, off := range cols {
		i := first + off
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := s.callCtx()
			defer cancel()
			errs[k] = s.wrap(i, f(ctx, k, i))
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RangeStats sums the in-range (count, mass) probes of every overlapping
// partition — the same numbers a single node holding the union would
// report.
func (r *Router) RangeStats(dataset string, lo, hi float64) (int, float64, error) {
	if hi < lo {
		return 0, 0, server.ErrInvalidRange
	}
	s := r.acquire()
	if s == nil {
		return 0, 0, server.ErrShuttingDown
	}
	defer s.release()
	name, err := s.resolve(dataset)
	if err != nil {
		return 0, 0, err
	}
	first, last := s.m.Overlap(lo, hi)
	if first > last {
		return 0, 0, nil
	}
	n := last - first + 1
	counts := make([]int, n)
	masses := make([]float64, n)
	if err := s.scatter(first, last, func(ctx context.Context, i int) error {
		clo, chi, _ := s.m.Clip(i, lo, hi)
		c, m, err := s.conns[i].RangeStats(ctx, name, clo, chi)
		counts[i-first], masses[i-first] = c, m
		return err
	}); err != nil {
		return 0, 0, err
	}
	total, totalMass := 0, 0.0
	for k := range counts {
		total += counts[k]
		totalMass += masses[k]
	}
	return total, totalMass, nil
}

// split groups items by owning partition. A key outside the map's
// coverage is a routing error surfaced as ErrInvalidRange (the cluster
// equivalent of a key the deployment cannot store).
func (s *mapState) split(items []server.Item) (map[int][]server.Item, error) {
	groups := make(map[int][]server.Item)
	for _, it := range items {
		i := s.m.Route(it.Key)
		if i < 0 {
			return nil, fmt.Errorf("%w: key %v outside the partition map's coverage [%v, %v]",
				server.ErrInvalidRange, it.Key, s.m.At(0).Lo, s.m.At(s.m.Len()-1).Hi)
		}
		groups[i] = append(groups[i], it)
	}
	return groups, nil
}

// mutate applies one per-partition operation for every group
// concurrently and sums the applied counts. Partitions fail
// independently: the returned count is what the reachable partitions
// applied, and the error (wrapping server.ErrUnavailable per failed
// partition) reports the rest — partial scatter failure never loses the
// other partitions' results.
func (s *mapState) mutate(groups map[int][]server.Item, op func(ctx context.Context, i int, items []server.Item) (int, error)) (int, error) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	applied := 0
	var errs []error
	for i, items := range groups {
		s.requests[i].Inc()
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := s.callCtx()
			defer cancel()
			n, err := op(ctx, i, items)
			mu.Lock()
			defer mu.Unlock()
			applied += n
			if err != nil {
				errs = append(errs, s.wrap(i, err))
			}
		}()
	}
	wg.Wait()
	return applied, errors.Join(errs...)
}

// Insert routes each item to the partition owning its key and applies the
// per-partition batches in parallel.
func (r *Router) Insert(dataset string, items []server.Item) (int, error) {
	s := r.acquire()
	if s == nil {
		return 0, server.ErrShuttingDown
	}
	defer s.release()
	name, err := s.resolve(dataset)
	if err != nil {
		return 0, err
	}
	groups, err := s.split(items)
	if err != nil {
		return 0, err
	}
	return s.mutate(groups, func(ctx context.Context, i int, items []server.Item) (int, error) {
		return s.conns[i].InsertItems(ctx, name, items)
	})
}

// InsertAsync is Insert under the Backend async contract: an empty batch
// answers inline, routing errors return synchronously, and otherwise
// done.Deliver runs exactly once from another goroutine.
func (r *Router) InsertAsync(dataset string, items []server.Item, done server.InsertReply) error {
	if len(items) == 0 {
		done.Deliver(0, nil)
		return nil
	}
	s := r.acquire()
	if s == nil {
		return server.ErrShuttingDown
	}
	name, err := s.resolve(dataset)
	if err != nil {
		s.release()
		return err
	}
	groups, err := s.split(items)
	if err != nil {
		s.release()
		return err
	}
	go func() {
		defer s.release()
		done.Deliver(s.mutate(groups, func(ctx context.Context, i int, items []server.Item) (int, error) {
			return s.conns[i].InsertItems(ctx, name, items)
		}))
	}()
	return nil
}

// Delete routes each key to its owning partition and applies the
// per-partition batches in parallel. Keys outside the map's coverage
// cannot be stored anywhere, so they are skipped rather than rejected —
// deleting the absent is a no-op on a single node too.
func (r *Router) Delete(dataset string, keys []float64) (int, error) {
	s := r.acquire()
	if s == nil {
		return 0, server.ErrShuttingDown
	}
	defer s.release()
	name, err := s.resolve(dataset)
	if err != nil {
		return 0, err
	}
	groups := make(map[int][]float64)
	for _, k := range keys {
		if i := s.m.Route(k); i >= 0 {
			groups[i] = append(groups[i], k)
		}
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	removed := 0
	var errs []error
	for i, ks := range groups {
		s.requests[i].Inc()
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := s.callCtx()
			defer cancel()
			n, err := s.conns[i].Delete(ctx, name, ks)
			mu.Lock()
			defer mu.Unlock()
			removed += n
			if err != nil {
				errs = append(errs, s.wrap(i, err))
			}
		}()
	}
	wg.Wait()
	return removed, errors.Join(errs...)
}

// Update routes each re-weight to the partition owning its key.
func (r *Router) Update(dataset string, items []server.Item) (int, error) {
	s := r.acquire()
	if s == nil {
		return 0, server.ErrShuttingDown
	}
	defer s.release()
	name, err := s.resolve(dataset)
	if err != nil {
		return 0, err
	}
	groups, err := s.split(items)
	if err != nil {
		return 0, err
	}
	return s.mutate(groups, func(ctx context.Context, i int, items []server.Item) (int, error) {
		return s.conns[i].Update(ctx, name, items)
	})
}

// Snapshot answers ErrNotDurable: durability is per node, owned by each
// node's own WAL and snapshot cycle, not orchestrated through the router.
func (r *Router) Snapshot(dataset string) (server.SnapshotInfo, error) {
	if _, err := r.Resolve(dataset); err != nil {
		return server.SnapshotInfo{}, err
	}
	return server.SnapshotInfo{}, server.ErrNotDurable
}

// Stats polls every node and merges their per-dataset stats into one
// cluster view: sizes, masses, and counters sum; key bounds take the
// cluster-wide min and max. Unreachable nodes are skipped — stats are
// observability, and a partial view beats none — but each skip counts a
// partition failure. As a side effect the partition map's cached
// (count, mass) figures refresh, so a periodic Stats call doubles as the
// map refresh loop.
func (r *Router) Stats() server.Stats {
	s := r.acquire()
	if s == nil {
		return server.Stats{}
	}
	defer s.release()
	n := s.m.Len()
	nodeStats := make([]*server.Stats, n)
	_ = s.scatter(0, n-1, func(ctx context.Context, i int) error {
		st, err := s.conns[i].Stats(ctx)
		if err != nil {
			return err
		}
		nodeStats[i] = &st
		return nil
	})
	now := time.Now()
	merged := make(map[string]*server.DatasetStats)
	var order []string
	for i, st := range nodeStats {
		if st == nil {
			continue
		}
		partKeys, partMass := 0, 0.0
		for _, ds := range st.Datasets {
			partKeys += ds.Len
			partMass += ds.Mass
			dst, ok := merged[ds.Name]
			if !ok {
				cp := ds
				cp.Durable = false // cluster-level snapshots are not a thing
				cp.Persist = nil
				merged[ds.Name] = &cp
				order = append(order, ds.Name)
				continue
			}
			mergeDatasetStats(dst, ds)
		}
		s.m.Update(i, partKeys, partMass, now)
	}
	sort.Strings(order)
	out := server.Stats{Datasets: make([]server.DatasetStats, 0, len(order))}
	for _, name := range order {
		out.Datasets = append(out.Datasets, *merged[name])
	}
	return out
}

// mergeDatasetStats folds one node's view of a dataset into the cluster
// aggregate.
func mergeDatasetStats(dst *server.DatasetStats, ds server.DatasetStats) {
	dst.Len += ds.Len
	dst.Shards += ds.Shards
	dst.Mass += ds.Mass
	if v, ok := ds.MinKey.(float64); ok {
		if cur, ok := dst.MinKey.(float64); !ok || v < cur {
			dst.MinKey = v
		}
	}
	if v, ok := ds.MaxKey.(float64); ok {
		if cur, ok := dst.MaxKey.(float64); !ok || v > cur {
			dst.MaxKey = v
		}
	}
	dst.SampleRequests += ds.SampleRequests
	dst.SampleRejected += ds.SampleRejected
	dst.SampleBatches += ds.SampleBatches
	dst.SamplesReturned += ds.SamplesReturned
	if ds.MaxCoalesced > dst.MaxCoalesced {
		dst.MaxCoalesced = ds.MaxCoalesced
	}
	dst.InsertRequests += ds.InsertRequests
	dst.InsertRejected += ds.InsertRejected
	dst.InsertBatches += ds.InsertBatches
	dst.ItemsInserted += ds.ItemsInserted
	dst.DeleteRequests += ds.DeleteRequests
	dst.KeysDeleted += ds.KeysDeleted
	dst.UpdateRequests += ds.UpdateRequests
	dst.KeysUpdated += ds.KeysUpdated
}

// AppendMetrics appends the router's Prometheus exposition: the partition
// count, the map generation, per-partition upstream request and failure
// counters, and the last refreshed per-partition key/mass figures.
// Per-partition counters are scoped to the current generation; a SetMap
// resets them like a process restart would.
func (r *Router) AppendMetrics(dst []byte) []byte {
	s := r.acquire()
	if s == nil {
		return dst
	}
	defer s.release()
	b := metrics.NewBuilder(dst)
	n := s.m.Len()
	b.Family("irsd_cluster_partitions", "Partitions in the routing map.", "gauge")
	b.Val("irsd_cluster_partitions", float64(n))
	b.Family("irsd_cluster_map_epoch", "Partition-map generation (1 = boot map, +1 per applied reload).", "gauge")
	b.Val("irsd_cluster_map_epoch", float64(s.epoch))
	b.Family("irsd_cluster_partition_requests_total", "Upstream requests routed to each partition's node.", "counter")
	for i := 0; i < n; i++ {
		b.Val("irsd_cluster_partition_requests_total", float64(s.requests[i].Load()),
			"partition", strconv.Itoa(i), "addr", s.m.At(i).Addr)
	}
	b.Family("irsd_cluster_partition_failures_total", "Upstream requests that found the node unreachable.", "counter")
	for i := 0; i < n; i++ {
		b.Val("irsd_cluster_partition_failures_total", float64(s.failures[i].Load()),
			"partition", strconv.Itoa(i), "addr", s.m.At(i).Addr)
	}
	b.Family("irsd_cluster_partition_keys", "Keys per partition at the last stats refresh.", "gauge")
	for i := 0; i < n; i++ {
		c, _, _ := s.m.Cached(i)
		b.Val("irsd_cluster_partition_keys", float64(c),
			"partition", strconv.Itoa(i), "addr", s.m.At(i).Addr)
	}
	b.Family("irsd_cluster_partition_mass", "Sampling mass per partition at the last stats refresh.", "gauge")
	for i := 0; i < n; i++ {
		_, m, _ := s.m.Cached(i)
		b.Val("irsd_cluster_partition_mass", m,
			"partition", strconv.Itoa(i), "addr", s.m.At(i).Addr)
	}
	return b.Bytes()
}

// Close closes every node connection of the current generation and stops
// the router: later requests answer ErrShuttingDown. Requests in flight
// fail as their connections close — Close is terminal, not a drain; the
// graceful path is the owning process draining its listeners first.
func (r *Router) Close() error {
	r.setMu.Lock()
	defer r.setMu.Unlock()
	s := r.cur.Swap(nil)
	if s == nil {
		return nil
	}
	err := s.closeConns()
	s.release()
	return err
}

// The router is the cluster-tier Backend — this assertion is the
// contract that lets server.NewProxy and irsnet.NewServer serve it with
// the node transports unchanged.
var _ server.Backend = (*Router)(nil)
