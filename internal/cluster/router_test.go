package cluster_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	irs "github.com/irsgo/irs"
	"github.com/irsgo/irs/client"
	"github.com/irsgo/irs/internal/cluster"
	"github.com/irsgo/irs/internal/stats"
	"github.com/irsgo/irs/server"
)

// statAlpha mirrors the repository-wide convention: small enough that
// genuine bias — which moves the statistic by orders of magnitude — is
// still caught, while honest sampling noise essentially never rejects.
const statAlpha = 1e-4

// testCluster is a full in-process deployment: n irsd nodes behind
// httptest listeners, a Router over them, and that Router fronted by a
// proxy Server behind its own httptest listener — so requests travel
// client wire -> proxy -> router -> node wire, the same path a real
// deployment exercises minus the TCP sockets.
type testCluster struct {
	router *cluster.Router
	nodes  []*server.Server
	nodeTS []*httptest.Server
	proxy  *httptest.Server
	cl     client.Conn
}

// startCluster boots one node per adjacent pair in bounds, each loaded
// with the integer keys its partition owns (keys bounds[0] <= k <
// bounds[n], weighted with weight k+1 when weighted is set), and wires
// the whole stack with the given client encoding on both hops.
func startCluster(t *testing.T, bounds []float64, weighted bool, encoding string, cfg server.Config) *testCluster {
	t.Helper()
	n := len(bounds) - 1
	tc := &testCluster{}
	parts := make([]cluster.Partition, n)
	conns := make([]client.Conn, n)
	for i := 0; i < n; i++ {
		s := server.New(cfg)
		lo, hi := bounds[i], bounds[i+1]
		if weighted {
			w := irs.NewWeightedConcurrent[float64](4, uint64(11+i))
			var items []irs.WeightedItem[float64]
			for k := lo; k < hi; k++ {
				items = append(items, irs.WeightedItem[float64]{Key: k, Weight: k + 1})
			}
			if err := w.InsertBatch(items); err != nil {
				t.Fatal(err)
			}
			if err := s.AddWeighted("d", w); err != nil {
				t.Fatal(err)
			}
		} else {
			u := irs.NewConcurrentSeeded[float64](4, uint64(11+i))
			var keys []float64
			for k := lo; k < hi; k++ {
				keys = append(keys, k)
			}
			u.InsertBatch(keys)
			if err := s.AddUnweighted("d", u); err != nil {
				t.Fatal(err)
			}
		}
		ts := httptest.NewServer(s)
		conn, err := client.Dial(ts.URL, encoding)
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes = append(tc.nodes, s)
		tc.nodeTS = append(tc.nodeTS, ts)
		parts[i] = cluster.Partition{Addr: ts.URL, Lo: lo, Hi: hi}
		conns[i] = conn
	}
	m, err := cluster.New(parts)
	if err != nil {
		t.Fatal(err)
	}
	tc.router, err = cluster.NewRouter(m, conns, cluster.Options{
		Datasets: []string{"d"},
		Seed:     7,
		Timeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.proxy = httptest.NewServer(server.NewProxy(tc.router))
	tc.cl, err = client.Dial(tc.proxy.URL, encoding)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.stop)
	return tc
}

func (tc *testCluster) stop() {
	tc.proxy.Close()
	for i, ts := range tc.nodeTS {
		ts.Close()
		tc.nodes[i].Close()
	}
}

func eachEncoding(t *testing.T, run func(t *testing.T, encoding string)) {
	t.Run("json", func(t *testing.T) { run(t, client.EncodingJSON) })
	t.Run("binary", func(t *testing.T) { run(t, client.EncodingBinary) })
}

// TestRouterUniformityChiSquare: per-sample uniformity must survive the
// cluster split — probe, multinomial over partition masses, sub-sample,
// scatter — across three partitions, not just within one node. 300 keys
// over 3 nodes, 30k samples from concurrent clients, chi-square against
// uniform, over both encodings.
func TestRouterUniformityChiSquare(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite skipped with -short")
	}
	eachEncoding(t, func(t *testing.T, encoding string) {
		tc := startCluster(t, []float64{0, 100, 200, 300}, false, encoding, server.Config{})
		ctx := context.Background()

		const clients, reqs, tPer = 10, 150, 20
		countsCh := make(chan []int, clients)
		var wg sync.WaitGroup
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := make([]int, 300)
				for i := 0; i < reqs; i++ {
					out, err := tc.cl.Sample(ctx, "d", 0, 299, tPer)
					if err != nil {
						t.Errorf("sample: %v", err)
						return
					}
					for _, k := range out {
						local[int(k)]++
					}
				}
				countsCh <- local
			}()
		}
		wg.Wait()
		close(countsCh)
		counts := make([]int, 300)
		for local := range countsCh {
			for i, c := range local {
				counts[i] += c
			}
		}
		stat, df, err := stats.ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		if crit := stats.ChiSquareCritical(df, statAlpha); stat > crit {
			t.Fatalf("chi-square rejects uniformity through the router: stat=%.2f df=%d critical=%.2f", stat, df, crit)
		}
	})
}

// TestRouterWeightedProportionalChiSquare: the cross-partition multinomial
// must weight each partition by its in-range sampling mass, not its key
// count — with weight k+1 the third node holds ~2.8x the mass of the
// first despite equal key counts, so a count-proportional split fails this
// immediately.
func TestRouterWeightedProportionalChiSquare(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite skipped with -short")
	}
	eachEncoding(t, func(t *testing.T, encoding string) {
		tc := startCluster(t, []float64{0, 100, 200, 300}, true, encoding, server.Config{})
		ctx := context.Background()

		const clients, reqs, tPer = 10, 150, 20
		countsCh := make(chan []int, clients)
		var wg sync.WaitGroup
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := make([]int, 300)
				for i := 0; i < reqs; i++ {
					out, err := tc.cl.Sample(ctx, "d", 0, 299, tPer)
					if err != nil {
						t.Errorf("sample: %v", err)
						return
					}
					for _, k := range out {
						local[int(k)]++
					}
				}
				countsCh <- local
			}()
		}
		wg.Wait()
		close(countsCh)
		counts := make([]int, 300)
		for local := range countsCh {
			for i, c := range local {
				counts[i] += c
			}
		}
		probs := make([]float64, 300)
		totalW := 0.0
		for i := range probs {
			probs[i] = float64(i + 1)
			totalW += probs[i]
		}
		for i := range probs {
			probs[i] /= totalW
		}
		gof, err := stats.ChiSquareTest(counts, probs, statAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if gof.Reject {
			t.Fatalf("chi-square rejects weight-proportionality through the router: stat=%.2f df=%d critical=%.2f",
				gof.Stat, gof.DF, gof.Critical)
		}
	})
}

// TestRouterIndependenceAcrossRequests: two concurrent t=1 requests over a
// range spanning all three partitions must stay mutually independent —
// the shared router RNG, the per-request probe, and any node-level
// coalescing must not correlate them. Joint distribution over the 10x10
// outcome grid, chi-square against uniform.
func TestRouterIndependenceAcrossRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite skipped with -short")
	}
	eachEncoding(t, func(t *testing.T, encoding string) {
		// 10 keys split 4/4/2 across three partitions.
		tc := startCluster(t, []float64{0, 4, 8, 10}, false, encoding, server.Config{
			CoalesceWindow: time.Millisecond,
			MaxBatch:       8,
		})
		ctx := context.Background()

		const workers, rounds = 16, 250
		joint := make([]int, 100)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					var a, b []float64
					var errA, errB error
					var pair sync.WaitGroup
					pair.Add(2)
					go func() { defer pair.Done(); a, errA = tc.cl.Sample(ctx, "d", 0, 9, 1) }()
					go func() { defer pair.Done(); b, errB = tc.cl.Sample(ctx, "d", 0, 9, 1) }()
					pair.Wait()
					if errA != nil || errB != nil {
						t.Errorf("pair: %v, %v", errA, errB)
						return
					}
					mu.Lock()
					joint[int(a[0])*10+int(b[0])]++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()

		probs := make([]float64, 100)
		for i := range probs {
			probs[i] = 0.01
		}
		gof, err := stats.ChiSquareTest(joint, probs, statAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if gof.Reject {
			t.Fatalf("chi-square rejects cross-request independence through the router: stat=%.2f df=%d critical=%.2f",
				gof.Stat, gof.DF, gof.Critical)
		}
	})
}

// newFixedNode builds one node with a deterministic dataset and sampling
// seed for the equivalence test.
func newFixedNode(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New(server.Config{Flushers: 1})
	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i)
	}
	u, err := irs.NewConcurrentFromSortedSeeded(keys, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddUnweighted("d", u); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	return s, ts
}

// TestRouterSinglePartitionEquivalence: a router whose map holds one
// partition must be bit-transparent — the request is forwarded verbatim,
// so against two identically-seeded nodes, a sequence of samples through
// the router equals the same sequence asked directly, float for float.
func TestRouterSinglePartitionEquivalence(t *testing.T) {
	eachEncoding(t, func(t *testing.T, encoding string) {
		sA, tsA := newFixedNode(t)
		defer func() { tsA.Close(); sA.Close() }()
		sB, tsB := newFixedNode(t)
		defer func() { tsB.Close(); sB.Close() }()

		direct, err := client.Dial(tsA.URL, encoding)
		if err != nil {
			t.Fatal(err)
		}
		m, err := cluster.New([]cluster.Partition{{Addr: tsB.URL, Lo: 0, Hi: 1000}})
		if err != nil {
			t.Fatal(err)
		}
		connB, err := client.Dial(tsB.URL, encoding)
		if err != nil {
			t.Fatal(err)
		}
		router, err := cluster.NewRouter(m, []client.Conn{connB}, cluster.Options{Datasets: []string{"d"}, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		proxy := httptest.NewServer(server.NewProxy(router))
		defer proxy.Close()
		routed, err := client.Dial(proxy.URL, encoding)
		if err != nil {
			t.Fatal(err)
		}

		ctx := context.Background()
		queries := []struct {
			lo, hi float64
			t      int
		}{
			{0, 999, 5}, {100, 250, 3}, {500, 500, 1}, {0, 999, 64}, {7, 8, 2}, {900, 999, 10},
		}
		for round := 0; round < 5; round++ {
			for _, q := range queries {
				want, err := direct.Sample(ctx, "d", q.lo, q.hi, q.t)
				if err != nil {
					t.Fatalf("direct sample(%v,%v,%d): %v", q.lo, q.hi, q.t, err)
				}
				got, err := routed.Sample(ctx, "d", q.lo, q.hi, q.t)
				if err != nil {
					t.Fatalf("routed sample(%v,%v,%d): %v", q.lo, q.hi, q.t, err)
				}
				if len(got) != len(want) {
					t.Fatalf("sample(%v,%v,%d): %d samples direct, %d through router", q.lo, q.hi, q.t, len(want), len(got))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("sample(%v,%v,%d)[%d]: direct %v, routed %v — router is not bit-transparent over one partition",
							q.lo, q.hi, q.t, i, want[i], got[i])
					}
				}
			}
		}
	})
}

// TestRouterCrossPartitionMutations: inserts, deletes, and updates route
// by key range and land on the right nodes, observable through the
// router's own aggregated RangeStats.
func TestRouterCrossPartitionMutations(t *testing.T) {
	tc := startCluster(t, []float64{0, 100, 200, 300}, true, client.EncodingJSON, server.Config{})
	ctx := context.Background()

	// One new key per partition.
	ins, err := tc.cl.InsertItems(ctx, "d", []server.Item{
		{Key: 50.5, Weight: 2}, {Key: 150.5, Weight: 2}, {Key: 250.5, Weight: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ins != 3 {
		t.Fatalf("inserted %d, want 3", ins)
	}
	for i, ts := range tc.nodeTS {
		nc, err := client.Dial(ts.URL, client.EncodingJSON)
		if err != nil {
			t.Fatal(err)
		}
		key := float64(i*100) + 50.5
		n, _, err := nc.RangeStats(ctx, "d", key, key)
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Errorf("node %d holds %d copies of key %v, want exactly its own 1", i, n, key)
		}
	}

	// Cross-partition count through the router.
	n, mass, err := tc.cl.RangeStats(ctx, "d", 0, 299)
	if err != nil {
		t.Fatal(err)
	}
	if n != 303 {
		t.Fatalf("router RangeStats count = %d, want 303", n)
	}
	if mass <= 0 {
		t.Fatalf("router RangeStats mass = %v", mass)
	}

	// Update each inserted key's weight through the router; delete one.
	up, err := tc.cl.Update(ctx, "d", []server.Item{
		{Key: 50.5, Weight: 9}, {Key: 150.5, Weight: 9}, {Key: 250.5, Weight: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if up != 3 {
		t.Fatalf("updated %d, want 3", up)
	}
	del, err := tc.cl.Delete(ctx, "d", []float64{150.5, 4242 /* outside coverage: no-op */})
	if err != nil {
		t.Fatal(err)
	}
	if del != 1 {
		t.Fatalf("deleted %d, want 1", del)
	}
}

// TestRouterNodeDown: with one node gone, requests touching its partition
// answer a typed unavailable error — transport-invariantly via errors.Is —
// while requests confined to live partitions keep being served.
func TestRouterNodeDown(t *testing.T) {
	eachEncoding(t, func(t *testing.T, encoding string) {
		tc := startCluster(t, []float64{0, 100, 200, 300}, false, encoding, server.Config{})
		ctx := context.Background()

		tc.nodeTS[1].Close() // kill the middle node's listener

		// A spanning sample fails whole, typed.
		if _, err := tc.cl.Sample(ctx, "d", 0, 299, 10); !errors.Is(err, server.ErrUnavailable) {
			t.Fatalf("spanning sample with node down: got %v, want ErrUnavailable", err)
		}
		// So does one confined to the dead partition.
		if _, err := tc.cl.Sample(ctx, "d", 110, 190, 5); !errors.Is(err, server.ErrUnavailable) {
			t.Fatalf("dead-partition sample: got %v, want ErrUnavailable", err)
		}
		// Live partitions keep serving.
		out, err := tc.cl.Sample(ctx, "d", 0, 99, 5)
		if err != nil {
			t.Fatalf("live-partition sample: %v", err)
		}
		if len(out) != 5 {
			t.Fatalf("live-partition sample returned %d, want 5", len(out))
		}
		out, err = tc.cl.Sample(ctx, "d", 200, 299, 5)
		if err != nil {
			t.Fatalf("other live partition: %v", err)
		}
		for _, k := range out {
			if k < 200 || k > 299 {
				t.Fatalf("sample %v outside requested range", k)
			}
		}
	})
}

// TestRouterPartialMutationFailure: a mutation batch spanning a dead
// partition applies everywhere else and reports both the applied count
// and a typed unavailable error — the live partitions' results are not
// lost. Asserted at the Router layer, where the (count, error) pair is
// visible together.
func TestRouterPartialMutationFailure(t *testing.T) {
	tc := startCluster(t, []float64{0, 100, 200, 300}, false, client.EncodingJSON, server.Config{})
	ctx := context.Background()

	tc.nodeTS[1].Close()

	applied, err := tc.router.Insert("d", []server.Item{
		{Key: 60.5, Weight: 1}, {Key: 160.5, Weight: 1}, {Key: 260.5, Weight: 1},
	})
	if !errors.Is(err, server.ErrUnavailable) {
		t.Fatalf("partial insert: got err %v, want ErrUnavailable", err)
	}
	if applied != 2 {
		t.Fatalf("partial insert applied %d, want 2 (live partitions must not lose their sub-results)", applied)
	}
	// The live nodes really hold their keys.
	for _, i := range []int{0, 2} {
		nc, err := client.Dial(tc.nodeTS[i].URL, client.EncodingJSON)
		if err != nil {
			t.Fatal(err)
		}
		key := float64(i*100) + 60.5
		n, _, err := nc.RangeStats(ctx, "d", key, key)
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Errorf("node %d: inserted key %v not present after partial failure", i, key)
		}
	}
}

// TestRouterStatsAndMetrics: the aggregated stats view sums node figures
// and the metrics exposition carries per-partition request counters.
func TestRouterStatsAndMetrics(t *testing.T) {
	tc := startCluster(t, []float64{0, 100, 200, 300}, false, client.EncodingJSON, server.Config{})
	ctx := context.Background()

	if _, err := tc.cl.Sample(ctx, "d", 0, 299, 30); err != nil {
		t.Fatal(err)
	}
	st, err := tc.cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Datasets) != 1 || st.Datasets[0].Name != "d" {
		t.Fatalf("stats datasets = %+v", st.Datasets)
	}
	d := st.Datasets[0]
	if d.Len != 300 {
		t.Fatalf("aggregated len = %d, want 300", d.Len)
	}
	if min, ok := d.MinKey.(float64); !ok || min != 0 {
		t.Fatalf("aggregated min key = %v", d.MinKey)
	}
	if max, ok := d.MaxKey.(float64); !ok || max != 299 {
		t.Fatalf("aggregated max key = %v", d.MaxKey)
	}

	exp := string(tc.router.AppendMetrics(nil))
	for _, want := range []string{
		"irsd_cluster_partitions 3",
		`irsd_cluster_partition_requests_total{partition="0"`,
		`irsd_cluster_partition_requests_total{partition="2"`,
		`irsd_cluster_partition_keys{partition="1"`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	// The spanning sample probed and sampled: every partition saw requests.
	for i := 0; i < 3; i++ {
		c, _, _ := tc.router.Map().Cached(i)
		if c != 100 {
			t.Errorf("cached count for partition %d = %d, want 100 (Stats must refresh the map)", i, c)
		}
	}
}

// TestRouterErrorVocabulary: single-node serving errors traverse the
// router untouched, and router-level validation mirrors a node's.
func TestRouterErrorVocabulary(t *testing.T) {
	tc := startCluster(t, []float64{0, 100, 200, 300}, false, client.EncodingJSON, server.Config{})
	ctx := context.Background()

	if _, err := tc.cl.Sample(ctx, "nope", 0, 9, 1); !errors.Is(err, server.ErrUnknownDataset) {
		t.Errorf("unknown dataset: %v", err)
	}
	if _, err := tc.cl.Sample(ctx, "d", 9, 0, 1); !errors.Is(err, server.ErrInvalidRange) {
		t.Errorf("inverted range: %v", err)
	}
	if _, err := tc.cl.Sample(ctx, "d", 400, 500, 1); !errors.Is(err, server.ErrEmptyRange) {
		t.Errorf("outside coverage: %v", err)
	}
	if _, err := tc.cl.Sample(ctx, "d", 50.2, 50.4, 1); !errors.Is(err, server.ErrEmptyRange) {
		t.Errorf("empty sliver: %v", err)
	}
	if _, err := tc.cl.Update(ctx, "d", []server.Item{{Key: 1, Weight: 2}}); !errors.Is(err, server.ErrNotWeighted) {
		t.Errorf("update on unweighted: %v", err)
	}
	if _, err := tc.router.Snapshot("d"); !errors.Is(err, server.ErrNotDurable) {
		t.Errorf("snapshot through router: want ErrNotDurable")
	}
	if _, err := tc.cl.InsertItems(ctx, "d", []server.Item{{Key: 1e9, Weight: 1}}); !errors.Is(err, server.ErrInvalidRange) {
		t.Errorf("insert outside coverage: %v", err)
	}
}
