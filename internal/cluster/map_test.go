package cluster

import (
	"errors"
	"math"
	"testing"
	"time"
)

func mustMap(t *testing.T, parts []Partition) *Map {
	t.Helper()
	m, err := New(parts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func threeWay(t *testing.T) *Map {
	return mustMap(t, []Partition{
		{Addr: "a", Lo: 0, Hi: 100},
		{Addr: "b", Lo: 100, Hi: 200},
		{Addr: "c", Lo: 200, Hi: 300},
	})
}

func TestNewMapValidation(t *testing.T) {
	cases := []struct {
		name  string
		parts []Partition
	}{
		{"empty", nil},
		{"no address", []Partition{{Lo: 0, Hi: 1}}},
		{"inverted", []Partition{{Addr: "a", Lo: 2, Hi: 1}}},
		{"empty range", []Partition{{Addr: "a", Lo: 1, Hi: 1}}},
		{"nan", []Partition{{Addr: "a", Lo: math.NaN(), Hi: 1}}},
		{"gap", []Partition{{Addr: "a", Lo: 0, Hi: 1}, {Addr: "b", Lo: 2, Hi: 3}}},
		{"overlap", []Partition{{Addr: "a", Lo: 0, Hi: 2}, {Addr: "b", Lo: 1, Hi: 3}}},
		{"descending", []Partition{{Addr: "a", Lo: 2, Hi: 3}, {Addr: "b", Lo: 0, Hi: 2}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.parts); !errors.Is(err, ErrBadMap) {
			t.Errorf("%s: got %v, want ErrBadMap", tc.name, err)
		}
	}
}

func TestRoute(t *testing.T) {
	m := threeWay(t)
	cases := []struct {
		key  float64
		want int
	}{
		{-1, -1},         // below coverage
		{0, 0},           // first partition's Lo
		{99.9, 0},        // inside first
		{100, 1},         // boundary: owned by the upper partition
		{199.999, 1},     // inside second
		{200, 2},         // boundary again
		{300, 2},         // last partition's Hi is owned (closed map)
		{300.5, -1},      // above coverage
		{math.NaN(), -1}, // NaN routes nowhere
	}
	for _, tc := range cases {
		if got := m.Route(tc.key); got != tc.want {
			t.Errorf("Route(%v) = %d, want %d", tc.key, got, tc.want)
		}
	}
}

func TestRouteUnbounded(t *testing.T) {
	m := mustMap(t, []Partition{
		{Addr: "a", Lo: math.Inf(-1), Hi: 0},
		{Addr: "b", Lo: 0, Hi: math.Inf(1)},
	})
	if got := m.Route(-1e300); got != 0 {
		t.Errorf("Route(-1e300) = %d, want 0", got)
	}
	if got := m.Route(1e300); got != 1 {
		t.Errorf("Route(1e300) = %d, want 1", got)
	}
	if got := m.Route(0); got != 1 {
		t.Errorf("Route(0) = %d, want 1 (boundary owned above)", got)
	}
}

func TestOverlapAndClip(t *testing.T) {
	m := threeWay(t)

	// Query spanning everything.
	first, last := m.Overlap(0, 300)
	if first != 0 || last != 2 {
		t.Fatalf("Overlap(0,300) = [%d,%d], want [0,2]", first, last)
	}

	// Query inside one partition.
	if first, last = m.Overlap(110, 120); first != 1 || last != 1 {
		t.Fatalf("Overlap(110,120) = [%d,%d], want [1,1]", first, last)
	}

	// Query exactly at a boundary key touches only the owning partition.
	if first, last = m.Overlap(100, 100); first != 1 || last != 1 {
		t.Fatalf("Overlap(100,100) = [%d,%d], want [1,1]", first, last)
	}

	// Query outside coverage.
	if first, last = m.Overlap(301, 400); first <= last {
		t.Fatalf("Overlap(301,400) = [%d,%d], want empty", first, last)
	}
	if first, last = m.Overlap(-10, -1); first <= last {
		t.Fatalf("Overlap(-10,-1) = [%d,%d], want empty", first, last)
	}

	// Clip of a cross-boundary query: partition 0's share must stop just
	// below 100, partition 1's start exactly at 100 — no key is probed
	// twice, no key is skipped.
	clo, chi, ok := m.Clip(0, 50, 150)
	if !ok || clo != 50 || chi != math.Nextafter(100, math.Inf(-1)) {
		t.Fatalf("Clip(0,50,150) = [%v,%v] ok=%v", clo, chi, ok)
	}
	clo, chi, ok = m.Clip(1, 50, 150)
	if !ok || clo != 100 || chi != 150 {
		t.Fatalf("Clip(1,50,150) = [%v,%v] ok=%v", clo, chi, ok)
	}

	// The last partition's upper bound is inclusive.
	clo, chi, ok = m.Clip(2, 250, 400)
	if !ok || clo != 250 || chi != 300 {
		t.Fatalf("Clip(2,250,400) = [%v,%v] ok=%v", clo, chi, ok)
	}
}

func TestEveryKeyOwnedOnce(t *testing.T) {
	m := threeWay(t)
	// Walk keys across both boundaries: the partition owning each key must
	// equal the unique partition whose clip of [k, k] is nonempty.
	for _, k := range []float64{0, 50, 99, math.Nextafter(100, math.Inf(-1)), 100, 150, 200, 299, 300} {
		owner := m.Route(k)
		holders := 0
		for i := 0; i < m.Len(); i++ {
			if _, _, ok := m.Clip(i, k, k); ok {
				holders++
				if i != owner {
					t.Errorf("key %v: clipped by %d but routed to %d", k, i, owner)
				}
			}
		}
		if holders != 1 {
			t.Errorf("key %v held by %d partitions, want exactly 1", k, holders)
		}
	}
}

func TestCachedStats(t *testing.T) {
	m := threeWay(t)
	if _, _, at := m.Cached(0); !at.IsZero() {
		t.Fatal("refreshed before any Update")
	}
	m.Update(1, 42, 9.5, time.Now())
	c, mass, at := m.Cached(1)
	if c != 42 || mass != 9.5 || at.IsZero() {
		t.Fatalf("Cached(1) = (%d, %v, %v)", c, mass, at)
	}
}
