package cluster_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	irs "github.com/irsgo/irs"
	"github.com/irsgo/irs/client"
	"github.com/irsgo/irs/internal/cluster"
	"github.com/irsgo/irs/server"
)

// trackedConn wraps a node connection so the test can observe when the
// router retires it — generation teardown must Close the old conns, but
// only after every in-flight request on that generation has finished.
type trackedConn struct {
	client.Conn
	closed atomic.Bool
}

func (c *trackedConn) Close() error {
	c.closed.Store(true)
	return c.Conn.Close()
}

// TestSetMapHammer is the zero-drop repartition harness: clients sample
// and mutate continuously while the partition map is swapped over and
// over between two topologies. The contract:
//
//   - no request ever fails — in-flight requests finish on the map they
//     started on, new requests route by the new map, and the handoff has
//     no window where neither map answers;
//   - the map epoch advances by exactly one per successful swap;
//   - every retired generation's connections get closed once their
//     requests drain (no connection leak across swaps);
//   - a swap that fails validation leaves the serving map and epoch
//     untouched.
//
// Run with -race: the interesting bugs are swap/request interleavings.
func TestSetMapHammer(t *testing.T) {
	// Three nodes, each holding the full keyset 0..199, so any range split
	// across any subset of them serves correct answers — that freedom is
	// what lets the topologies below disagree about ownership while the
	// traffic stays valid throughout.
	const nNodes = 3
	keys := make([]float64, 200)
	for i := range keys {
		keys[i] = float64(i)
	}
	var nodeURL [nNodes]string
	for i := 0; i < nNodes; i++ {
		s := server.New(server.Config{})
		u, err := irs.NewConcurrentFromSortedSeeded(keys, 4, uint64(11+i))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddUnweighted("d", u); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		defer ts.Close()
		defer s.Close()
		nodeURL[i] = ts.URL
	}

	dial := func(parts []cluster.Partition) (*cluster.Map, []client.Conn, []*trackedConn) {
		m, err := cluster.New(parts)
		if err != nil {
			t.Fatal(err)
		}
		conns := make([]client.Conn, len(parts))
		tracked := make([]*trackedConn, len(parts))
		for i, p := range parts {
			c, err := client.Dial(p.Addr, client.EncodingJSON)
			if err != nil {
				t.Fatal(err)
			}
			tc := &trackedConn{Conn: c}
			conns[i], tracked[i] = tc, tc
		}
		return m, conns, tracked
	}

	topoA := []cluster.Partition{
		{Addr: nodeURL[0], Lo: 0, Hi: 100},
		{Addr: nodeURL[1], Lo: 100, Hi: 200},
	}
	topoB := []cluster.Partition{
		{Addr: nodeURL[1], Lo: 0, Hi: 80},
		{Addr: nodeURL[2], Lo: 80, Hi: 150},
		{Addr: nodeURL[0], Lo: 150, Hi: 200},
	}

	m0, conns0, _ := dial(topoA)
	router, err := cluster.NewRouter(m0, conns0, cluster.Options{
		Datasets: []string{"d"},
		Seed:     7,
		Timeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if got := router.Epoch(); got != 1 {
		t.Fatalf("boot epoch = %d, want 1", got)
	}

	proxy := httptest.NewServer(server.NewProxy(router))
	defer proxy.Close()
	cl, err := client.Dial(proxy.URL, client.EncodingJSON)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failure atomic.Pointer[string]
	const workers = 6
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				var op string
				switch w % 3 {
				case 0:
					op = "sample"
					_, err = cl.Sample(ctx, "d", 0, 199, 4)
				case 1:
					op = "rangestats"
					_, _, err = cl.RangeStats(ctx, "d", 0, 199)
				default:
					// Keys must stay inside the map's coverage; a delete routed
					// by a newer map than its insert may miss (count 0) — the
					// contract here is answered-without-error, not count.
					op = "mutate"
					k := float64((w*37 + i) % 200)
					if _, err = cl.InsertKeys(ctx, "d", []float64{k}); err == nil {
						_, err = cl.Delete(ctx, "d", []float64{k})
					}
				}
				if err != nil {
					msg := op + " failed during swap: " + err.Error()
					failure.CompareAndSwap(nil, &msg)
					return
				}
			}
		}(w)
	}

	// Swap back and forth; collect every retired generation's conns.
	var retired []*trackedConn
	const swaps = 20
	for i := 0; i < swaps; i++ {
		parts := topoA
		if i%2 == 0 {
			parts = topoB
		}
		m, conns, tracked := dial(parts)
		before := router.Epoch()
		if err := router.SetMap(m, conns, nil); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		if got := router.Epoch(); got != before+1 {
			t.Fatalf("swap %d: epoch = %d, want %d", i, got, before+1)
		}
		retired = append(retired, tracked...)
		if f := failure.Load(); f != nil {
			t.Fatalf("swap %d: %s", i, *f)
		}
	}
	// The last installed generation is still serving; everything before it
	// must drain and close.
	live := retired[len(retired)-len(topoA):]
	if swaps%2 == 1 {
		live = retired[len(retired)-len(topoB):]
	}
	liveSet := map[*trackedConn]bool{}
	for _, c := range live {
		liveSet[c] = true
	}

	// A validation failure must not disturb the serving map: conns/map
	// length mismatch is rejected before the swap point.
	badM, badConns, _ := dial(topoA)
	epochBefore := router.Epoch()
	if err := router.SetMap(badM, badConns[:1], nil); err == nil {
		t.Fatal("SetMap with mismatched conns: want error, got nil")
	}
	for _, c := range badConns {
		c.Close()
	}
	if got := router.Epoch(); got != epochBefore {
		t.Fatalf("failed swap moved epoch: %d -> %d", epochBefore, got)
	}
	if _, err := cl.Sample(ctx, "d", 0, 199, 2); err != nil {
		t.Fatalf("sample after rejected swap: %v", err)
	}

	close(stop)
	wg.Wait()
	if f := failure.Load(); f != nil {
		t.Fatal(*f)
	}

	// With the hammer stopped, every retired generation has drained; its
	// conns must be closed. Closing happens on the releasing request's
	// goroutine, so allow a moment for the last stragglers.
	deadline := time.Now().Add(5 * time.Second)
	for _, c := range retired {
		if liveSet[c] {
			if c.closed.Load() {
				t.Error("live generation conn closed while serving")
			}
			continue
		}
		for !c.closed.Load() {
			if time.Now().After(deadline) {
				t.Fatal("retired generation conn never closed")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Router.Close retires the live generation too.
	if err := router.Close(); err != nil {
		t.Fatalf("router close: %v", err)
	}
	for _, c := range live {
		if !c.closed.Load() {
			t.Error("live conn not closed by router Close")
		}
	}
	if _, err := cl.Sample(ctx, "d", 0, 199, 1); !errors.Is(err, server.ErrShuttingDown) {
		t.Errorf("sample after router Close: err = %v, want ErrShuttingDown", err)
	}
}
