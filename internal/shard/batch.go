package shard

import (
	"cmp"
	"runtime"
	"slices"
	"sort"
	"sync"

	"github.com/irsgo/irs/internal/core"
	"github.com/irsgo/irs/internal/xrand"
)

// parallelQueryMin is the total sample count across a SampleMany batch
// above which queries are answered by a pool of worker goroutines.
const parallelQueryMin = parallelSampleMin

// maxRetainedBatch bounds (in elements) the pooled sortable input copies
// InsertBatch and DeleteBatch keep between calls; one outsized batch does
// not pin its backing array forever.
const maxRetainedBatch = 1 << 16

// InsertBatch adds every item in items (duplicate keys allowed). The batch
// is sorted once, segmented by shard, and each involved shard is
// write-locked exactly once — the lock-amortization hot path for heavy
// insert traffic. The input slice is not retained or modified (sorting
// happens in a pooled copy, so steady-state batches allocate nothing).
func (c *engine[K, I, B]) InsertBatch(items []I) {
	if len(items) == 0 {
		return
	}
	buf, _ := c.itemBufs.Get().(*[]I)
	if buf == nil {
		buf = new([]I)
	}
	own := append((*buf)[:0], items...)
	c.ops.sortItems(own)

	c.topoMu.RLock()
	grow := false
	segments(c, own, c.ops.keyOf, func(sh *shardState[K, I, B], seg []I) {
		sh.mu.Lock()
		for _, it := range seg {
			sh.b.Insert(it)
		}
		sh.n.Add(int64(len(seg)))
		c.total.Add(int64(len(seg)))
		sh.mu.Unlock()
		grow = grow || c.wantRebalance(sh)
	})
	c.topoMu.RUnlock()
	if cap(own) <= maxRetainedBatch {
		*buf = own[:0]
		c.itemBufs.Put(buf)
	}
	if grow {
		c.maybeRebalance()
	}
}

// DeleteBatch removes one occurrence of each key in keys, returning how
// many were present and removed. Locking mirrors InsertBatch.
func (c *engine[K, I, B]) DeleteBatch(keys []K) int {
	if len(keys) == 0 {
		return 0
	}
	buf, _ := c.keyBufs.Get().(*[]K)
	if buf == nil {
		buf = new([]K)
	}
	own := append((*buf)[:0], keys...)
	slices.Sort(own)

	removed := 0
	c.topoMu.RLock()
	segments(c, own, func(k K) K { return k }, func(sh *shardState[K, I, B], seg []K) {
		sh.mu.Lock()
		got := 0
		for _, k := range seg {
			if sh.b.Delete(k) {
				got++
			}
		}
		sh.n.Add(int64(-got))
		c.total.Add(int64(-got))
		sh.mu.Unlock()
		removed += got
	})
	c.topoMu.RUnlock()
	if cap(own) <= maxRetainedBatch {
		*buf = own[:0]
		c.keyBufs.Put(buf)
	}
	return removed
}

// segments splits the key-sorted slice into per-shard runs and invokes fn
// once per non-empty run, in shard order. It is a free function so one body
// serves both item batches (keyOf = c.ops.keyOf) and bare key batches
// (keyOf = identity) — DeleteBatch routes by key regardless of the
// backend's item type. Callers must hold topoMu shared.
func segments[K cmp.Ordered, I any, B Backend[K, I], T any](c *engine[K, I, B], sorted []T, keyOf func(T) K, fn func(sh *shardState[K, I, B], seg []T)) {
	start := 0
	for s := 0; s < len(c.shards) && start < len(sorted); s++ {
		end := len(sorted)
		if s < len(c.splits) {
			// Shard s owns keys strictly below splits[s] (equal keys route
			// right), so its run ends at the first key >= splits[s].
			split := c.splits[s]
			end = start + sort.Search(len(sorted)-start, func(i int) bool {
				return !(keyOf(sorted[start+i]) < split)
			})
		}
		if end > start {
			fn(c.shards[s], sorted[start:end])
			start = end
		}
	}
}

// Query is one range-sampling request in a SampleMany batch.
type Query[K cmp.Ordered] struct {
	Lo, Hi K
	T      int // number of samples to draw
}

// SampleMany answers a batch of range-sampling queries against one
// consistent snapshot: exactly the shards the batch's queries overlap are
// read-locked once for the whole batch, amortizing lock traffic across
// queries, and every query sees the same data version. Shards no query
// touches stay unlocked, so unrelated writers are never stalled.
//
// results[i] holds the samples of queries[i]. A query over an empty range
// (or, for weighted backends, a range whose total weight is zero) yields a
// nil slice rather than failing the batch; a negative T fails the whole
// batch with core.ErrInvalidCount before any sampling happens.
//
// For large batches (total samples >= a few thousand) the queries fan out
// over min(GOMAXPROCS, len(queries)) worker goroutines, each drawing from
// an independent RNG stream derived from rng by Split.
func (c *engine[K, I, B]) SampleMany(queries []Query[K], rng *xrand.RNG) ([][]K, error) {
	totalT := 0
	for _, q := range queries {
		if q.T < 0 {
			return nil, core.ErrInvalidCount
		}
		totalT += q.T
	}
	results := make([][]K, len(queries))
	if len(queries) == 0 {
		return results, nil
	}

	c.topoMu.RLock()
	defer c.topoMu.RUnlock()

	sc := c.getScratch()
	defer c.putScratch(sc)
	if !c.rlockUnion(sc, queries) {
		return results, nil // every query range is inverted
	}
	defer c.runlockUnion(sc)

	answer := func(sc *queryScratch[K], q Query[K], r *xrand.RNG) []K {
		if q.Hi < q.Lo {
			return nil
		}
		out, err := c.sampleLocked(sc, nil, q.Lo, q.Hi, q.T, r)
		if err != nil {
			return nil // only empty-range/zero-mass errors reach here
		}
		return out
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	if totalT < parallelQueryMin || workers < 2 {
		for i, q := range queries {
			results[i] = answer(sc, q, rng)
		}
		return results, nil
	}

	// Contiguous blocks of queries per worker; RNG streams split up front
	// so the partitioning is deterministic for a fixed rng state.
	rngs := make([]*xrand.RNG, workers)
	for w := range rngs {
		rngs[w] = rng.Split()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(queries) * w / workers
		hi := len(queries) * (w + 1) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int, r *xrand.RNG) {
			defer wg.Done()
			sc := c.getScratch()
			defer c.putScratch(sc)
			for i := lo; i < hi; i++ {
				results[i] = answer(sc, queries[i], r)
			}
		}(lo, hi, rngs[w])
	}
	wg.Wait()
	return results, nil
}

// rlockUnion read-locks the exact union of the shards any query in the
// batch overlaps, recording the locked set in sc.needed (so repeated
// batches through pooled scratch never allocate the bitmap). Locks are
// acquired in ascending shard order — the global lock order — skipping the
// gaps. It reports false, taking no locks, when every query range is
// inverted. Callers must hold topoMu shared and later release via
// runlockUnion with the same scratch.
func (c *engine[K, I, B]) rlockUnion(sc *queryScratch[K], queries []Query[K]) bool {
	sc.needed = resizeBools(sc.needed, len(c.shards))
	any := false
	for _, q := range queries {
		if q.Hi < q.Lo {
			continue
		}
		a, b := c.shardRange(q.Lo, q.Hi)
		for i := a; i <= b; i++ {
			sc.needed[i] = true
		}
		any = true
	}
	if !any {
		return false
	}
	for i, n := range sc.needed {
		if n {
			c.shards[i].mu.RLock()
		}
	}
	return true
}

func (c *engine[K, I, B]) runlockUnion(sc *queryScratch[K]) {
	for i, n := range sc.needed {
		if n {
			c.shards[i].mu.RUnlock()
		}
	}
}

// SampleManyAppend is SampleMany with caller-owned result storage, the
// allocation-free spelling the serving layer's flush workers run on: every
// sample is appended to dst and the per-query boundaries are appended to
// starts, so after the call queries[i]'s samples occupy
// dst[starts[i]:starts[i+1]] (exactly len(queries)+1 boundaries are
// appended; pass dst[:0]/starts[:0] to reuse buffers across calls). A query
// over an empty range — or, for weighted backends, a range whose total
// weight is zero — contributes an empty segment rather than failing the
// batch; a negative T fails the whole batch with core.ErrInvalidCount
// before any sampling happens, leaving dst and starts unchanged.
//
// Locking and the sampling distribution are identical to SampleMany: one
// consistent snapshot under the union of the overlapping shards' read
// locks, exact multinomial cross-shard splits, mutual independence across
// queries. Steady-state calls below the parallel fan-out threshold perform
// zero heap allocations once dst, starts, and the pooled per-query scratch
// have warmed up; batches large enough for the fan-out delegate to the
// parallel SampleMany and copy, trading those allocations for wall-clock
// time exactly when they are amortized across thousands of samples.
func (c *engine[K, I, B]) SampleManyAppend(dst []K, starts []int, queries []Query[K], rng *xrand.RNG) ([]K, []int, error) {
	totalT := 0
	for _, q := range queries {
		if q.T < 0 {
			return dst, starts, core.ErrInvalidCount
		}
		totalT += q.T
	}
	base := len(starts)
	starts = append(starts, len(dst))
	if len(queries) == 0 {
		return dst, starts, nil
	}

	if workers := min(runtime.GOMAXPROCS(0), len(queries)); totalT >= parallelQueryMin && workers >= 2 {
		results, err := c.SampleMany(queries, rng)
		if err != nil {
			return dst, starts[:base], err
		}
		for _, res := range results {
			dst = append(dst, res...)
			starts = append(starts, len(dst))
		}
		return dst, starts, nil
	}

	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	sc := c.getScratch()
	defer c.putScratch(sc)
	if !c.rlockUnion(sc, queries) {
		// Every query range is inverted: len(queries) empty segments.
		for range queries {
			starts = append(starts, len(dst))
		}
		return dst, starts, nil
	}
	defer c.runlockUnion(sc)
	for _, q := range queries {
		if q.Hi >= q.Lo {
			// Only empty-range/zero-mass errors can reach here, and they
			// leave dst untouched — the query just contributes an empty
			// segment, exactly like SampleMany's nil result.
			if out, err := c.sampleLocked(sc, dst, q.Lo, q.Hi, q.T, rng); err == nil {
				dst = out
			}
		}
		starts = append(starts, len(dst))
	}
	return dst, starts, nil
}
