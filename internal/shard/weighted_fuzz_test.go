package shard

import (
	"encoding/binary"
	"math"
	"slices"
	"testing"

	"github.com/irsgo/irs/internal/weighted"
	"github.com/irsgo/irs/internal/xrand"
)

// weightPalette maps a fuzz byte to a deliberately degenerate weight: lots
// of zeros, ties, and twelve-orders-of-magnitude ratios — the layouts that
// stress the mass-proportional multinomial split and zero-mass exclusion.
func weightPalette(code byte) float64 {
	switch code % 8 {
	case 0, 1:
		return 0
	case 2:
		return 1
	case 3:
		return 1
	case 4:
		return 0.5
	case 5:
		return 1e-12
	case 6:
		return 1e12
	default:
		return float64(code)
	}
}

// FuzzWeightedShardRouting checks the weighted partition invariants under
// arbitrary split layouts, key sets, and degenerate weight distributions:
// every key routes into its shard's interval, per-shard occupancy sums to
// the whole, cross-shard range counts and weight totals match brute force,
// and samples are always stored in-range keys of positive aggregate weight
// (or the query fails with exactly the zero-weight error).
func FuzzWeightedShardRouting(f *testing.F) {
	f.Add([]byte{2, 10, 0, 7, 20, 0, 1, 5, 0, 0, 10, 0, 2, 15, 0, 6, 20, 0, 0, 25, 0, 3})
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{5, 7, 0, 0, 7, 0, 0, 7, 0, 2, 7, 0, 6, 7, 0, 1}) // duplicate splits/keys, mixed zero weights
	f.Add([]byte{8, 255, 255, 5, 0, 0, 6, 128, 1, 0, 64, 2, 7, 32, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// Byte 0: split count (0..8). Then 3-byte records: a 2-byte
		// little-endian int16 key and one weight-palette byte. The int16
		// domain is small enough that keys collide with splits and each
		// other constantly.
		nSplits := int(data[0]) % 9
		data = data[1:]
		var items []weighted.Item[int]
		for len(data) >= 3 {
			k := int(int16(binary.LittleEndian.Uint16(data)))
			items = append(items, weighted.Item[int]{Key: k, Weight: weightPalette(data[2])})
			data = data[3:]
		}
		if len(items) > 256 {
			items = items[:256]
		}
		if len(items) < nSplits {
			nSplits = len(items)
		}
		splits := make([]int, 0, nSplits)
		for _, it := range items[:nSplits] {
			splits = append(splits, it.Key)
		}
		slices.Sort(splits)
		items = items[nSplits:]

		wc, err := NewWeightedFromSplits(splits, uint64(len(items))*17+1)
		if err != nil {
			t.Fatalf("sorted splits rejected: %v", err)
		}

		// Routing: every key maps to exactly one shard interval.
		for _, it := range items {
			i := wc.route(it.Key)
			if i < 0 || i >= len(wc.shards) {
				t.Fatalf("route(%d) = %d with %d shards", it.Key, i, len(wc.shards))
			}
			if i > 0 && it.Key < splits[i-1] {
				t.Fatalf("key %d routed to shard %d below its lower bound %d", it.Key, i, splits[i-1])
			}
			if i < len(splits) && it.Key >= splits[i] {
				t.Fatalf("key %d routed to shard %d at/above its upper bound %d", it.Key, i, splits[i])
			}
		}

		if err := wc.InsertBatch(items); err != nil {
			t.Fatalf("InsertBatch: %v", err)
		}
		if err := wc.Validate(); err != nil {
			t.Fatal(err)
		}

		// Per-shard occupancy sums to the whole.
		st := wc.Stats()
		sum := 0
		for _, n := range st.PerShard {
			sum += n
		}
		if sum != len(items) || st.Len != len(items) {
			t.Fatalf("shard occupancies sum to %d (stats len %d), want %d", sum, st.Len, len(items))
		}

		// Cross-shard range counts and weight totals match brute force,
		// including ranges with endpoints exactly on split values.
		probes := append([]int(nil), splits...)
		for _, it := range items {
			probes = append(probes, it.Key)
		}
		if len(probes) > 24 {
			probes = probes[:24]
		}
		for _, lo := range probes {
			for _, hi := range probes {
				wantC := 0
				wantW := 0.0
				for _, it := range items {
					if it.Key >= lo && it.Key <= hi {
						wantC++
						wantW += it.Weight
					}
				}
				if got := wc.Count(lo, hi); got != wantC {
					t.Fatalf("Count(%d, %d) = %d, want %d", lo, hi, got, wantC)
				}
				got := wc.TotalWeight(lo, hi)
				tol := 1e-9 * (math.Abs(wantW) + 1)
				if math.Abs(got-wantW) > tol {
					t.Fatalf("TotalWeight(%d, %d) = %g, want %g", lo, hi, got, wantW)
				}
			}
		}

		if len(items) == 0 {
			return
		}

		// Samples across shards are always stored, in-range keys with
		// positive aggregate weight; zero-mass ranges fail with exactly
		// ErrZeroWeightRange.
		lo, hi := items[0].Key, items[0].Key
		keyW := map[int]float64{}
		for _, it := range items {
			lo = min(lo, it.Key)
			hi = max(hi, it.Key)
			keyW[it.Key] += it.Weight
		}
		totalW := 0.0
		for _, w := range keyW {
			totalW += w
		}
		rng := xrand.New(uint64(len(items))*31 + uint64(nSplits))
		out, err := wc.Sample(lo, hi, 16, rng)
		if totalW <= 0 {
			if err != weighted.ErrZeroWeightRange {
				t.Fatalf("zero-mass span: err = %v", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("Sample over full key span: %v", err)
		}
		for _, k := range out {
			if k < lo || k > hi || keyW[k] <= 0 {
				t.Fatalf("sample %d invalid (range [%d, %d], keyW %g)", k, lo, hi, keyW[k])
			}
		}

		// UpdateWeight on unique keys keeps totals exact (duplicate keys
		// are skipped: the structure may update any one occurrence).
		mult := map[int]int{}
		for _, it := range items {
			mult[it.Key]++
		}
		updated := 0
		for _, it := range items {
			if mult[it.Key] != 1 || updated >= 8 {
				continue
			}
			updated++
			ok, err := wc.UpdateWeight(it.Key, 3)
			if err != nil || !ok {
				t.Fatalf("UpdateWeight(%d): %v %v", it.Key, ok, err)
			}
			got := wc.TotalWeight(it.Key, it.Key)
			if math.Abs(got-3) > 1e-9 {
				t.Fatalf("weight after update = %g, want 3", got)
			}
		}
		if err := wc.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}
