package shard

import (
	"cmp"
	"runtime"
	"sync"

	"github.com/irsgo/irs/internal/alias"
	"github.com/irsgo/irs/internal/core"
	"github.com/irsgo/irs/internal/xrand"
)

// parallelSampleMin is the per-query sample count above which the per-shard
// sampling stage fans out across goroutines. Below it, goroutine start-up
// costs more than the O(1)-per-sample work it would parallelize.
const parallelSampleMin = 4096

// queryScratch is the per-query working set, pooled so steady-state queries
// allocate only their output. Each in-flight query owns one exclusively.
type queryScratch[K cmp.Ordered] struct {
	run     Run // backend sampling scratch for one shard at a time (lazily created)
	builder alias.Builder
	table   alias.Table
	counts  []int     // in-range count per overlapping shard
	masses  []float64 // in-range sampling mass per overlapping shard
	weights []float64 // nonzero masses, alias table input
	nonzero []int     // overlapping-shard index per alias column
	tally   []int     // samples allocated per overlapping shard
	starts  []int     // block segment boundaries (tally prefix sums)
	choice  []int32   // drawn overlapping-shard index per sample position
	block   []K       // per-shard sample blocks, concatenated
	needed  []bool    // shard-union lock set for SampleMany batches
}

func (c *engine[K, I, B]) getScratch() *queryScratch[K] {
	if sc, ok := c.scratch.Get().(*queryScratch[K]); ok {
		return sc
	}
	return &queryScratch[K]{run: c.ops.newRun()}
}

func (c *engine[K, I, B]) putScratch(sc *queryScratch[K]) { c.scratch.Put(sc) }

// Sample returns t independent mass-proportional samples from [lo, hi]
// (uniform for the unweighted instantiation, weight-proportional for the
// weighted one). Safe to call concurrently with any other method; rng must
// be owned by the calling goroutine. Expected O(P + log n + t) with P the
// shard count.
func (c *engine[K, I, B]) Sample(lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	return c.SampleAppend(nil, lo, hi, t, rng)
}

// SampleAppend is Sample appending into dst.
func (c *engine[K, I, B]) SampleAppend(dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	if t < 0 {
		return dst, core.ErrInvalidCount
	}
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	if hi < lo {
		if t == 0 {
			return dst, nil
		}
		return dst, core.ErrEmptyRange
	}
	sa, sb := c.shardRange(lo, hi)
	c.rlockShards(sa, sb)
	defer c.runlockShards(sa, sb)
	sc := c.getScratch()
	defer c.putScratch(sc)
	return c.sampleLocked(sc, dst, lo, hi, t, rng)
}

// sampleLocked draws t samples from [lo, hi] into dst. The caller must hold
// topoMu shared and the read locks of every shard overlapping [lo, hi]
// (with lo <= hi), and must own sc and rng.
func (c *engine[K, I, B]) sampleLocked(sc *queryScratch[K], dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	if t < 0 {
		return dst, core.ErrInvalidCount
	}
	sa, sb := c.shardRange(lo, hi)

	// Stage 1: per-shard in-range counts and masses, one consistent
	// snapshot under the held locks.
	sc.counts = sc.counts[:0]
	sc.masses = sc.masses[:0]
	total := 0
	totalMass := 0.0
	for i := sa; i <= sb; i++ {
		n, m := c.shards[i].b.RangeStats(lo, hi)
		sc.counts = append(sc.counts, n)
		sc.masses = append(sc.masses, m)
		total += n
		totalMass += m
	}
	if total == 0 {
		if t == 0 {
			return dst, nil
		}
		return dst, core.ErrEmptyRange
	}
	if t == 0 {
		return dst, nil
	}
	if totalMass <= 0 {
		// Keys exist but carry no sampling mass (weighted backends only).
		return dst, c.ops.zeroMass
	}

	// Single populated shard: no split to draw.
	if nz := firstNonzero(sc.counts); sc.counts[nz] == total {
		return c.shards[sa+nz].b.SampleRunAppend(sc.run, dst, lo, hi, t, rng)
	}

	// Stage 2: multinomial split. Build an alias table over the nonzero
	// masses (zero-mass shards are excluded up front so no rounding edge
	// can ever select one) and draw the shard of each sample position with
	// probability mass/totalMass.
	sc.weights = sc.weights[:0]
	sc.nonzero = sc.nonzero[:0]
	for i, m := range sc.masses {
		if m > 0 {
			sc.weights = append(sc.weights, m)
			sc.nonzero = append(sc.nonzero, i)
		}
	}
	if err := sc.builder.Build(&sc.table, sc.weights); err != nil {
		return dst, err // unreachable: weights are positive and finite
	}
	m := len(sc.weights)
	sc.tally = resizeInts(sc.tally, m)
	sc.choice = resizeInt32s(sc.choice, t)
	for j := 0; j < t; j++ {
		k := sc.table.Draw(rng)
		sc.choice[j] = int32(k)
		sc.tally[k]++
	}

	// Stage 3: per-shard sampling into one block, each shard's samples in a
	// contiguous segment starting at its tally prefix sum.
	if cap(sc.block) < t {
		sc.block = make([]K, t)
	}
	block := sc.block[:t]
	off := sc.tally // reused as running offsets in the scatter stage
	sc.starts = resizeInts(sc.starts, m+1)
	starts := sc.starts
	for k := 0; k < m; k++ {
		starts[k+1] = starts[k] + sc.tally[k]
	}
	if t >= parallelSampleMin && m > 1 && runtime.GOMAXPROCS(0) > 1 {
		c.sampleShardsParallel(sc, block, starts, lo, hi, sa, rng)
	} else {
		for k := 0; k < m; k++ {
			want := starts[k+1] - starts[k]
			if want == 0 {
				continue
			}
			seg := block[starts[k]:starts[k]:starts[k+1]]
			sh := c.shards[sa+sc.nonzero[k]]
			if _, err := sh.b.SampleRunAppend(sc.run, seg, lo, hi, want, rng); err != nil {
				return dst, err // unreachable: mass was positive under lock
			}
		}
	}

	// Stage 4: scatter the per-shard blocks back into draw order. Within a
	// shard the samples are i.i.d., so handing them out in block order to
	// the positions that drew that shard preserves the exact distribution
	// and independence across the t output positions.
	for k := 0; k < m; k++ {
		off[k] = starts[k]
	}
	for j := 0; j < t; j++ {
		k := sc.choice[j]
		dst = append(dst, block[off[k]])
		off[k]++
	}
	return dst, nil
}

// sampleShardsParallel runs the per-shard sampling stage on one goroutine
// per populated shard. RNG streams are derived with Split in shard order
// before the fan-out, so results are deterministic for a fixed rng state
// (though different from the sequential path's stream usage).
func (c *engine[K, I, B]) sampleShardsParallel(sc *queryScratch[K], block []K, starts []int, lo, hi K, sa int, rng *xrand.RNG) {
	m := len(starts) - 1
	var wg sync.WaitGroup
	for k := 0; k < m; k++ {
		want := starts[k+1] - starts[k]
		if want == 0 {
			continue
		}
		seg := block[starts[k]:starts[k]:starts[k+1]]
		sh := c.shards[sa+sc.nonzero[k]]
		sub := rng.Split()
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := c.getRun()
			_, _ = sh.b.SampleRunAppend(run, seg, lo, hi, want, sub)
			c.putRun(run)
		}()
	}
	wg.Wait()
}

// firstNonzero returns the index of the first nonzero count, or 0.
func firstNonzero(counts []int) int {
	for i, n := range counts {
		if n > 0 {
			return i
		}
	}
	return 0
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}
