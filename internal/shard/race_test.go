package shard

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/irsgo/irs/internal/xrand"
)

// The race suite hammers one Concurrent from many goroutines at once —
// point writers, batch writers, samplers, batch samplers, counters, and an
// explicit rebalancer — and asserts the two properties that must survive
// any interleaving: no returned sample ever falls outside its queried
// range (or the stable key set), and after all writers join, the counts
// are exactly consistent with what was written. Run under -race (as CI
// does) this also proves the locking protocol has no data races.

const (
	// The base population [0, baseMax] is loaded before the test and never
	// deleted, so readers can assert sample membership in a stable set.
	baseMax = 100_000
	// Writers operate on disjoint key blocks far above the base population,
	// so reader assertions and writer bookkeeping never interfere.
	writerBase  = 1_000_000
	writerBlock = 10_000
)

func TestConcurrentReadersWritersRace(t *testing.T) {
	rng := xrand.New(211)
	base := make([]float64, 0, baseMax/2)
	for i := 0; i < baseMax/2; i++ {
		base = append(base, rng.Float64Range(0, baseMax))
	}
	c := New[float64](8)
	c.InsertBatch(base)

	const (
		writers = 4
		readers = 4
		iters   = 300
	)
	var wrote atomic.Int64
	var wg sync.WaitGroup

	// Point writers: insert a private block, delete half of it, tracking
	// the exact net contribution.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := float64(writerBase + w*writerBlock)
			for i := 0; i < iters; i++ {
				k := lo + float64(i)
				c.Insert(k)
				c.Insert(k + 0.5)
				// The block is private to this goroutine, so deleting a key
				// it just inserted must always succeed.
				if !c.Delete(k + 0.5) {
					t.Errorf("writer %d lost its own key %g", w, k+0.5)
					return
				}
				wrote.Add(1)
			}
		}(w)
	}

	// One batch writer: repeated InsertBatch/DeleteBatch of its own block,
	// ending with a known residue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		lo := float64(writerBase + writers*writerBlock)
		batch := make([]float64, 64)
		for i := 0; i < iters/4; i++ {
			for j := range batch {
				batch[j] = lo + float64(i*len(batch)+j)
			}
			c.InsertBatch(batch)
			if removed := c.DeleteBatch(batch[:32]); removed != 32 {
				t.Errorf("batch writer: removed %d of its own 32 keys", removed)
				return
			}
			wrote.Add(32)
		}
	}()

	// Readers: point samples, batch samples, and counts over the stable
	// base range. Every sample must be in range.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := xrand.New(1000 + uint64(r))
			for i := 0; i < iters; i++ {
				lo := rng.Float64Range(0, baseMax/2)
				hi := lo + rng.Float64Range(0, baseMax/2)
				out, err := c.Sample(lo, hi, 16, rng)
				if err != nil {
					continue // a momentarily empty slice of the base range
				}
				for _, k := range out {
					if k < lo || k > hi {
						t.Errorf("sample %g outside [%g, %g]", k, lo, hi)
						return
					}
				}
				if i%8 == 0 {
					queries := []Query[float64]{
						{Lo: 0, Hi: baseMax, T: 8},
						{Lo: lo, Hi: hi, T: 8},
					}
					results, err := c.SampleMany(queries, rng)
					if err != nil {
						t.Errorf("SampleMany: %v", err)
						return
					}
					for _, k := range results[0] {
						if k < 0 || k > baseMax {
							t.Errorf("batch sample %g outside base range", k)
							return
						}
					}
				}
				if got := c.Count(0, baseMax); got < len(base) {
					t.Errorf("base range count %d dropped below %d", got, len(base))
					return
				}
			}
		}(r)
	}

	// A rebalancer thrashing the topology while everyone else runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			c.Rebalance()
		}
	}()

	wg.Wait()

	// Quiescent consistency: every write is accounted for.
	wantLen := len(base) + int(wrote.Load())
	if c.Len() != wantLen {
		t.Fatalf("final Len = %d, want %d", c.Len(), wantLen)
	}
	if got := c.Count(0, 2e6); got != wantLen {
		t.Fatalf("final full-range count = %d, want %d", got, wantLen)
	}
	if got := c.Count(0, baseMax); got != len(base) {
		t.Fatalf("final base count = %d, want %d", got, len(base))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Len != wantLen {
		t.Fatalf("stats len = %d, want %d", st.Len, wantLen)
	}
}

// TestConcurrentAutoRebalanceRace grows a structure from empty with many
// concurrent point writers, forcing automatic topology changes to overlap
// live traffic.
func TestConcurrentAutoRebalanceRace(t *testing.T) {
	c := New[int](8)
	const (
		writers = 8
		perW    = 3000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(3000 + w))
			for i := 0; i < perW; i++ {
				c.Insert(w*perW + i)
				if i%16 == 0 {
					if out, err := c.Sample(0, writers*perW, 4, rng); err == nil {
						for _, k := range out {
							if k < 0 || k >= writers*perW {
								t.Errorf("sample %d out of bounds", k)
								return
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != writers*perW {
		t.Fatalf("Len = %d, want %d", c.Len(), writers*perW)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Shards() < 2 {
		t.Fatalf("no shard growth under %d inserts", writers*perW)
	}
}
