package shard

import (
	"math"
	"testing"

	"github.com/irsgo/irs/internal/core"
	"github.com/irsgo/irs/internal/stats"
	"github.com/irsgo/irs/internal/weighted"
	"github.com/irsgo/irs/internal/xrand"
)

// The statistical contract of the weighted sharded sampler: splitting a
// query's t samples over shards by a multinomial proportional to per-shard
// range *weight* must leave each sample exactly weight-proportional over
// the whole range. These tests compare WeightedConcurrent's empirical
// distribution against the exact per-key probabilities computed from a
// WeightedSegmentAlias built on identical data, with fixed RNG seeds (so a
// pass is deterministic) and the same generous significance level as the
// unweighted suite.

// makeWeightedItems builds a deterministic dataset with duplicate keys,
// zero weights, and weight ratios up to ~e^6.
func makeWeightedItems(n, keySpan int, seed uint64) []weighted.Item[int] {
	r := xrand.New(seed)
	items := make([]weighted.Item[int], n)
	for i := range items {
		w := math.Exp(r.Float64() * 6)
		if r.Bernoulli(0.05) {
			w = 0
		}
		items[i] = weighted.Item[int]{Key: r.Intn(keySpan), Weight: w}
	}
	return items
}

// chiSquareAgainstSegAlias draws total samples via draw over [lo, hi] and
// chi-square-tests per-key frequencies against the exact weight proportions
// of the WeightedSegmentAlias reference.
func chiSquareAgainstSegAlias(t *testing.T, draw func(n int, rng *xrand.RNG) []int, ref *weighted.SegmentAlias[int], lo, hi, total int, seed uint64) {
	t.Helper()
	rangeW := ref.TotalWeight(lo, hi)
	if rangeW <= 0 {
		t.Fatal("reference range has no weight")
	}
	keys := hi - lo + 1
	probs := make([]float64, keys)
	psum := 0.0
	for k := 0; k < keys; k++ {
		probs[k] = ref.TotalWeight(lo+k, lo+k) / rangeW
		psum += probs[k]
	}
	for i := range probs { // remove FP drift so the probs sum to exactly 1
		probs[i] /= psum
	}

	rng := xrand.New(seed)
	out := draw(total, rng)
	if len(out) != total {
		t.Fatalf("drew %d samples, want %d", len(out), total)
	}
	counts := make([]int, keys)
	for _, k := range out {
		if k < lo || k > hi {
			t.Fatalf("sample %d outside [%d, %d]", k, lo, hi)
		}
		if ref.TotalWeight(k, k) <= 0 {
			t.Fatalf("sampled zero-weight key %d", k)
		}
		counts[k-lo]++
	}
	res, err := stats.ChiSquareTest(counts, probs, statAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject {
		t.Fatalf("chi-square rejects weight-proportionality: stat=%.2f df=%d critical=%.2f (alpha=%g)",
			res.Stat, res.DF, res.Critical, res.Alpha)
	}
}

// TestWeightedConcurrentMatchesSegmentAlias is the headline check: sampling
// a range that spans several shards (boundary shards partially covered) is
// distributed exactly like the static weighted reference on the same items.
func TestWeightedConcurrentMatchesSegmentAlias(t *testing.T) {
	items := makeWeightedItems(25_000, 1200, 301)
	wc, err := NewWeightedFromItems(items, 6, 302)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := weighted.NewSegmentAlias(items)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 150, 950
	if got, want := wc.TotalWeight(lo, hi), ref.TotalWeight(lo, hi); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("TotalWeight = %v, want %v", got, want)
	}
	if got, want := wc.Count(lo, hi), ref.Count(lo, hi); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	chiSquareAgainstSegAlias(t, func(n int, r *xrand.RNG) []int {
		out, err := wc.Sample(lo, hi, n, r)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}, ref, lo, hi, 200_000, 303)
}

// TestWeightedSampleManyMatchesSegmentAlias pushes the same check through
// the batch path, including the parallel-worker branch.
func TestWeightedSampleManyMatchesSegmentAlias(t *testing.T) {
	items := makeWeightedItems(20_000, 1000, 307)
	wc, err := NewWeightedFromItems(items, 5, 308)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := weighted.NewSegmentAlias(items)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 80, 870
	chiSquareAgainstSegAlias(t, func(n int, r *xrand.RNG) []int {
		const per = 1000
		queries := make([]Query[int], n/per)
		for i := range queries {
			queries[i] = Query[int]{Lo: lo, Hi: hi, T: per}
		}
		results, err := wc.SampleMany(queries, r)
		if err != nil {
			t.Fatal(err)
		}
		var out []int
		for _, res := range results {
			out = append(out, res...)
		}
		return out
	}, ref, lo, hi, 200_000, 309)
}

// TestWeightedParallelSampleMatchesSegmentAlias engages the intra-query
// fan-out (t above parallelSampleMin) explicitly.
func TestWeightedParallelSampleMatchesSegmentAlias(t *testing.T) {
	items := makeWeightedItems(20_000, 1000, 311)
	wc, err := NewWeightedFromItems(items, 8, 312)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := weighted.NewSegmentAlias(items)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 10, 990
	chiSquareAgainstSegAlias(t, func(n int, r *xrand.RNG) []int {
		var out []int
		for len(out) < n {
			chunk := n - len(out)
			if chunk > 2*parallelSampleMin {
				chunk = 2 * parallelSampleMin // well above the fan-out threshold
			}
			got, err := wc.Sample(lo, hi, chunk, r)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, got...)
		}
		return out
	}, ref, lo, hi, 160_000, 313)
}

// TestWeightedIndependenceAcrossQueries repeats one query and checks the
// paired samples are uncorrelated — the defining IRS property.
func TestWeightedIndependenceAcrossQueries(t *testing.T) {
	items := makeWeightedItems(15_000, 900, 317)
	wc, err := NewWeightedFromItems(items, 5, 318)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(319)
	lo, hi := 50, 850
	const pairs = 20_000
	xs := make([]float64, pairs)
	ys := make([]float64, pairs)
	for i := 0; i < pairs; i++ {
		a, err := wc.Sample(lo, hi, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		b, err := wc.Sample(lo, hi, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		xs[i], ys[i] = float64(a[0]), float64(b[0])
	}
	r, err := stats.PearsonCorr(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	bound := 4.5 / math.Sqrt(pairs)
	if r > bound || r < -bound {
		t.Fatalf("repeat-query correlation %.4f exceeds %.4f", r, bound)
	}
}

// TestWeightedUpdateWeightShiftsDistribution: a live weight update must be
// reflected exactly in subsequent samples and totals.
func TestWeightedUpdateWeightShiftsDistribution(t *testing.T) {
	wc := NewWeighted[int](4, 331)
	for k := 0; k < 100; k++ {
		if err := wc.Insert(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := wc.UpdateWeight(7, 97)
	if err != nil || !ok {
		t.Fatalf("UpdateWeight: %v %v", ok, err)
	}
	if got := wc.TotalWeight(0, 99); math.Abs(got-196) > 1e-9 {
		t.Fatalf("TotalWeight = %v, want 196", got)
	}
	rng := xrand.New(332)
	out, err := wc.Sample(0, 99, 100_000, rng)
	if err != nil {
		t.Fatal(err)
	}
	sevens := 0
	for _, k := range out {
		if k == 7 {
			sevens++
		}
	}
	frac := float64(sevens) / float64(len(out))
	if frac < 0.47 || frac > 0.52 { // exact proportion 97/196 ~ 0.4949
		t.Fatalf("updated key frequency %.4f, want ~0.495", frac)
	}
	// Zeroing removes the key from sampling entirely.
	if ok, err := wc.UpdateWeight(7, 0); err != nil || !ok {
		t.Fatalf("zeroing: %v %v", ok, err)
	}
	out, err = wc.Sample(0, 99, 20_000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range out {
		if k == 7 {
			t.Fatal("sampled zero-weight key after update")
		}
	}
}

// TestWeightedErrors pins the error vocabulary of the weighted layer.
func TestWeightedErrors(t *testing.T) {
	wc := NewWeighted[int](2, 337)
	rng := xrand.New(338)
	if _, err := wc.Sample(0, 10, 3, rng); err != core.ErrEmptyRange {
		t.Fatalf("empty sample: err = %v", err)
	}
	if _, err := wc.Sample(0, 10, -1, rng); err != core.ErrInvalidCount {
		t.Fatalf("negative t: err = %v", err)
	}
	if err := wc.Insert(1, -1); err != weighted.ErrInvalidWeight {
		t.Fatalf("negative weight: err = %v", err)
	}
	if err := wc.Insert(1, math.NaN()); err != weighted.ErrInvalidWeight {
		t.Fatalf("NaN weight: err = %v", err)
	}
	if err := wc.InsertBatch([]weighted.Item[int]{{Key: 1, Weight: 1}, {Key: 2, Weight: math.Inf(1)}}); err != weighted.ErrInvalidWeight {
		t.Fatalf("batch bad weight: err = %v", err)
	}
	if wc.Len() != 0 {
		t.Fatalf("failed batch inserted items: Len = %d", wc.Len())
	}
	if _, err := wc.UpdateWeight(1, -2); err != weighted.ErrInvalidWeight {
		t.Fatalf("bad update weight: err = %v", err)
	}
	// A nonempty range whose keys all carry zero weight.
	if err := wc.InsertBatch([]weighted.Item[int]{{Key: 5, Weight: 0}, {Key: 6, Weight: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Sample(5, 6, 1, rng); err != weighted.ErrZeroWeightRange {
		t.Fatalf("zero-weight range: err = %v", err)
	}
	// In a SampleMany batch the same query yields nil instead of failing.
	results, err := wc.SampleMany([]Query[int]{{Lo: 5, Hi: 6, T: 4}}, rng)
	if err != nil || results[0] != nil {
		t.Fatalf("zero-weight batch query: %v %v", results, err)
	}
	if _, err := wc.SampleMany([]Query[int]{{Lo: 5, Hi: 6, T: -1}}, rng); err != core.ErrInvalidCount {
		t.Fatalf("negative batch T: err = %v", err)
	}
	// Constructor validation.
	if _, err := NewWeightedFromItems([]weighted.Item[int]{{Key: 1, Weight: -3}}, 2, 339); err != weighted.ErrInvalidWeight {
		t.Fatalf("FromItems bad weight: err = %v", err)
	}
	if _, err := NewWeightedFromSplits([]int{5, 3}, 340); err != weighted.ErrUnsortedItems {
		t.Fatalf("FromSplits unsorted: err = %v", err)
	}
}

// TestWeightedBatchAndRebalance exercises batch updates, the explicit
// rebalance, and snapshot exports against a model.
func TestWeightedBatchAndRebalance(t *testing.T) {
	items := makeWeightedItems(12_000, 700, 341)
	wc, err := NewWeightedFromItems(items, 4, 342)
	if err != nil {
		t.Fatal(err)
	}
	wantW := 0.0
	for _, it := range items {
		wantW += it.Weight
	}
	if got := wc.TotalWeight(0, 700); math.Abs(got-wantW) > 1e-6*wantW {
		t.Fatalf("TotalWeight = %v, want %v", got, wantW)
	}
	if err := wc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Delete a slice of the items, rebalance, and re-check the totals.
	victims := make([]int, 0, 3000)
	seen := map[int]int{}
	for _, it := range items {
		if it.Key%5 == 0 && seen[it.Key] == 0 {
			seen[it.Key]++
			victims = append(victims, it.Key)
		}
	}
	// Compute the removed weight the same way the structure resolves
	// duplicate deletes: one occurrence per victim key — but occurrences of
	// a key may carry different weights, so track via AppendItems instead.
	before := wc.AppendItems(nil)
	if got := wc.DeleteBatch(victims); got != len(victims) {
		t.Fatalf("DeleteBatch removed %d, want %d", got, len(victims))
	}
	after := wc.AppendItems(nil)
	if len(after) != len(before)-len(victims) {
		t.Fatalf("AppendItems: %d items, want %d", len(after), len(before)-len(victims))
	}
	beforeW, afterW := 0.0, 0.0
	for _, it := range before {
		beforeW += it.Weight
	}
	for _, it := range after {
		afterW += it.Weight
	}
	removedW := beforeW - afterW
	if got := wc.TotalWeight(0, 700); math.Abs(got-(wantW-removedW)) > 1e-6*wantW {
		t.Fatalf("TotalWeight after delete = %v, want %v", got, wantW-removedW)
	}
	wc.Rebalance()
	if err := wc.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := wc.TotalWeight(0, 700); math.Abs(got-(wantW-removedW)) > 1e-6*wantW {
		t.Fatalf("TotalWeight after rebalance = %v", got)
	}
	if wc.Len() != len(items)-len(victims) {
		t.Fatalf("Len = %d, want %d", wc.Len(), len(items)-len(victims))
	}
}

// TestWeightedAutoRebalanceGrowsShards mirrors the unweighted growth test.
func TestWeightedAutoRebalanceGrowsShards(t *testing.T) {
	wc := NewWeighted[int](8, 343)
	batch := make([]weighted.Item[int], 1000)
	for b := 0; b < 40; b++ {
		for i := range batch {
			batch[i] = weighted.Item[int]{Key: b*len(batch) + i, Weight: 1 + float64(i%9)}
		}
		if err := wc.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if got := wc.Shards(); got < 4 {
		t.Fatalf("after 40k inserts only %d shards (want growth toward 8)", got)
	}
	if err := wc.Validate(); err != nil {
		t.Fatal(err)
	}
	if wc.Len() != 40_000 {
		t.Fatalf("Len = %d", wc.Len())
	}
}
