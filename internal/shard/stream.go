package shard

import "github.com/irsgo/irs/internal/xrand"

// streamStep is the constant stride of the NewStream seed sequence. It is
// deliberately different from the golden-ratio stride the weighted backend
// uses for treap priority seeds, so the two derived sequences never hand
// out the same generator state for small indices.
const streamStep = 0xbf58476d1ce4e5b9

// NewStream returns a fresh sampling RNG derived deterministically from the
// structure's seed: the i-th call overall (counted atomically across all
// goroutines) returns the i-th stream of a fixed sequence. It is the RNG
// factory for consumers that own a structure but not a seed — the serving
// layer draws the per-batch RNGs of its coalesced SampleMany calls from it —
// and distinct calls always yield independent streams.
//
// Reproducibility contract: two structures constructed with the same seed
// hand out identical stream sequences, so a caller that consumes streams
// and issues queries in a deterministic order replays sampling
// bit-for-bit. Under concurrency the i-th stream goes to whichever caller
// arrives i-th — the streams themselves are unchanged, but exact replay
// then additionally requires pinning that assignment (the serving layer,
// whose flush workers each draw one stream, is exactly reproducible only
// with a single flusher). The seed (and therefore NewStream) never
// influences any sampling distribution — every stream is uniform
// regardless of seed.
func (c *engine[K, I, B]) NewStream() *xrand.RNG {
	return xrand.New(c.streamSeed + c.streamCtr.Add(1)*streamStep)
}
