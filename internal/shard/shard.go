// Package shard implements the sharded, concurrency-safe dynamic IRS layer
// exported as irs.Concurrent and irs.WeightedConcurrent: the bridge between
// the single-threaded structures of Hu–Qiao–Tao (PODS 2014) — and their
// weighted extensions — and a server that must absorb concurrent inserts,
// deletes, and sampling queries on many cores.
//
// # Design
//
// The sharding machinery is a backend-generic engine: everything about
// partitioning, locking, routing, rebalancing, and cross-shard sampling is
// written once against the Backend interface (backend.go), and each
// instantiation plugs in one single-threaded structure per shard. Two
// instantiations are provided: Concurrent over core.Dynamic (unweighted,
// every key has unit sampling mass) and WeightedConcurrent over
// weighted.Treap (each key carries a weight; samples are drawn with
// probability proportional to weight).
//
// The key space is partitioned by P-1 split points into P contiguous
// shards: shard i owns the half-open key interval [splits[i-1], splits[i]),
// with splits[-1] = -inf and splits[P-1] = +inf, so every key routes to
// exactly one shard (keys equal to a split point route right). Each shard
// wraps its own backend behind its own sync.RWMutex, so updates to
// disjoint shards proceed in parallel and readers of one shard never block
// readers of another. Split points are learned from the data (equi-depth
// over a sorted load) and re-learned by Rebalance, which is also triggered
// automatically when a shard grows far beyond its fair share or when the
// structure has grown enough to deserve more shards.
//
// # Sampling across shards
//
// A query (lo, hi, t) must return t samples that are exactly
// mass-proportional over the union of the overlapping shards' range
// contents — the distribution must not be distorted by the partition. The
// query therefore proceeds in two stages, holding the read locks of every
// overlapping shard for its whole duration so the stats and the draws see
// one consistent snapshot:
//
//  1. Mass. Each overlapping shard reports its in-range count and sampling
//     mass m_i in O(log n) time (for the unweighted backend the mass is the
//     key count; for the weighted backend it is the range's total weight);
//     the total is M = Σ m_i.
//  2. Multinomial split. The t samples are distributed over shards by
//     drawing, for each sample, a shard with probability m_i/M — a
//     multinomial (t; m_1/M, …, m_k/M) allocation realized in O(1) per
//     draw by a Walker alias table (internal/alias) built over the nonzero
//     masses. Each shard then draws its allocated samples independently
//     (read-only backend sampling through per-query scratch), and the
//     per-shard outputs are scattered back into the positions whose draws
//     selected that shard. Conditioned on the shard choice a sample is
//     mass-proportional over that shard's range slice, and the shard choice
//     is proportional to the slice's mass, so every sample follows the
//     exact target distribution over the whole range and samples remain
//     mutually independent.
//
// For large t the per-shard sampling stage fans out across goroutines,
// each with an independent RNG stream derived by Split; the fan-out changes
// only wall-clock time, not the distribution.
//
// # Locking
//
// Two lock levels, always acquired in the same order: the topology lock
// (an RWMutex guarding the split points and the shard directory) is taken
// shared by every operation and exclusively by Rebalance; then shard locks
// are taken in ascending shard order. Readers take shard read locks —
// queries never mutate a shard because backend sampling is read-only and
// runs through caller-owned scratch — and writers take shard write locks.
// The batch entry points (InsertBatch, SampleMany) acquire each involved
// shard lock once per batch rather than once per element, which is where
// the concurrent layer's throughput on hot paths comes from.
package shard

import (
	"cmp"
	"sort"
	"sync"
	"sync/atomic"
)

// Tuning constants for the automatic rebalance policy. They only affect
// performance, never correctness: any split layout yields exact sampling.
const (
	// minShardKeys is the target minimum occupancy before the structure
	// grows toward its target shard count: with fewer than minShardKeys
	// keys per shard, extra shards cost more in fan-out than they buy in
	// parallelism.
	minShardKeys = 2048
	// imbalanceFactor triggers a rebalance when one shard holds more than
	// imbalanceFactor times its fair share of the keys.
	imbalanceFactor = 4
	// imbalanceSlack keeps tiny structures from rebalancing on noise.
	imbalanceSlack = 512
)

// engine is the backend-generic sharding engine. All methods may be called
// from any number of goroutines simultaneously; the only non-shareable
// argument is the *xrand.RNG passed to sampling calls, which each goroutine
// must own (derive per-goroutine streams with Split). The exported
// structures (Concurrent, WeightedConcurrent) embed an engine over their
// backend type.
type engine[K cmp.Ordered, I any, B Backend[K, I]] struct {
	ops backendOps[K, I, B]

	// topoMu guards splits and shards (the topology). Every operation
	// holds it shared; Rebalance holds it exclusively, which also grants
	// exclusive access to every shard without taking the shard locks.
	topoMu sync.RWMutex
	splits []K                    // len(shards)-1 sorted split points
	shards []*shardState[K, I, B] // len >= 1, in key order

	total       atomic.Int64 // total stored items (maintained under shard locks)
	target      int          // desired shard count once the data warrants it
	fixedSplits bool         // NewFromSplits: never rebalance automatically
	rebalancing atomic.Bool  // single-flight guard for automatic rebalances
	rebalanceN  atomic.Int64 // total size at the last rebalance (rate limiter)
	scratch     sync.Pool    // *queryScratch[K]
	runPool     sync.Pool    // Run, for the per-shard parallel fan-out
	itemBufs    sync.Pool    // *[]I, InsertBatch's sortable copy of the input
	keyBufs     sync.Pool    // *[]K, DeleteBatch's sortable copy of the input

	streamSeed uint64        // base seed of the NewStream sequence (stream.go)
	streamCtr  atomic.Uint64 // streams handed out so far
}

// getRun and putRun pool backend sampling scratch for the parallel fan-out
// goroutines, which cannot share the query's own scratch run.
func (c *engine[K, I, B]) getRun() Run {
	if r := c.runPool.Get(); r != nil {
		return r
	}
	return c.ops.newRun()
}

func (c *engine[K, I, B]) putRun(r Run) { c.runPool.Put(r) }

// shardState is one shard: a backend behind its own lock.
type shardState[K cmp.Ordered, I any, B Backend[K, I]] struct {
	mu sync.RWMutex
	b  B
	n  atomic.Int64 // mirror of b.Len(), readable without mu
}

// init prepares an empty engine that will grow toward target shards as
// data arrives (split points are learned by the automatic rebalance once
// shards fill up). target < 1 is treated as 1. seed anchors the NewStream
// sequence (see stream.go); it never influences any sampling distribution.
func (c *engine[K, I, B]) init(ops backendOps[K, I, B], target int, seed uint64) {
	if target < 1 {
		target = 1
	}
	c.ops = ops
	c.target = target
	c.streamSeed = seed
	c.shards = []*shardState[K, I, B]{{b: ops.new()}}
}

// applySplits pins the topology to len(splits)+1 empty shards with fixed
// routing at the given sorted split points: the layout is never changed
// automatically, so duplicated split points produce permanently empty
// middle shards, and an intentionally skewed layout stays put. An explicit
// Rebalance call is the one exception — it abandons the fixed layout for
// learned equi-depth splits. Constructor-only (no concurrent access).
func (c *engine[K, I, B]) applySplits(splits []K) {
	c.fixedSplits = true
	c.splits = append([]K(nil), splits...)
	c.shards = make([]*shardState[K, I, B], len(splits)+1)
	for i := range c.shards {
		c.shards[i] = &shardState[K, I, B]{b: c.ops.new()}
	}
}

// route returns the index of the shard owning key. Callers must hold
// topoMu (shared or exclusive).
func (c *engine[K, I, B]) route(key K) int {
	// First split strictly greater than key; keys equal to a split route
	// to the shard on its right.
	return sort.Search(len(c.splits), func(i int) bool { return key < c.splits[i] })
}

// shardRange returns the inclusive shard index interval overlapping
// [lo, hi]. Callers must hold topoMu.
func (c *engine[K, I, B]) shardRange(lo, hi K) (int, int) {
	return c.route(lo), c.route(hi)
}

// Insert adds item (duplicate keys allowed). Only the owning shard is
// locked.
func (c *engine[K, I, B]) Insert(item I) {
	key := c.ops.keyOf(item)
	c.topoMu.RLock()
	sh := c.shards[c.route(key)]
	sh.mu.Lock()
	sh.b.Insert(item)
	sh.n.Add(1)
	// total moves before the shard unlock so that anyone holding every
	// shard lock (Validate, Stats) sees per-shard sums and the total agree.
	c.total.Add(1)
	sh.mu.Unlock()
	grow := c.wantRebalance(sh)
	c.topoMu.RUnlock()
	if grow {
		c.maybeRebalance()
	}
}

// Delete removes one occurrence of key, reporting whether one existed.
func (c *engine[K, I, B]) Delete(key K) bool {
	c.topoMu.RLock()
	sh := c.shards[c.route(key)]
	sh.mu.Lock()
	ok := sh.b.Delete(key)
	if ok {
		sh.n.Add(-1)
		c.total.Add(-1)
	}
	sh.mu.Unlock()
	c.topoMu.RUnlock()
	return ok
}

// Len returns the number of stored items. It is maintained atomically, so a
// read concurrent with updates returns the count as of some recent moment.
func (c *engine[K, I, B]) Len() int { return int(c.total.Load()) }

// Shards returns the current number of shards.
func (c *engine[K, I, B]) Shards() int {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return len(c.shards)
}

// Contains reports whether key is stored at least once.
func (c *engine[K, I, B]) Contains(key K) bool {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	sh := c.shards[c.route(key)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.b.Contains(key)
}

// Count returns the number of keys in [lo, hi]. All overlapping shards are
// read-locked together, so the result is a consistent snapshot.
func (c *engine[K, I, B]) Count(lo, hi K) int {
	if hi < lo {
		return 0
	}
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	sa, sb := c.shardRange(lo, hi)
	c.rlockShards(sa, sb)
	defer c.runlockShards(sa, sb)
	total := 0
	for i := sa; i <= sb; i++ {
		total += c.shards[i].b.Count(lo, hi)
	}
	return total
}

// RangeStats returns the number of keys and the total sampling mass in
// [lo, hi] (key count for the unweighted backend, total weight for the
// weighted one) — the same per-shard quantities stage 1 of a sampling
// query sums, exposed for callers that partition the key space above the
// engine (the cluster router). All overlapping shards are read-locked
// together, so the pair is a consistent snapshot.
func (c *engine[K, I, B]) RangeStats(lo, hi K) (count int, mass float64) {
	if hi < lo {
		return 0, 0
	}
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	sa, sb := c.shardRange(lo, hi)
	c.rlockShards(sa, sb)
	defer c.runlockShards(sa, sb)
	for i := sa; i <= sb; i++ {
		n, m := c.shards[i].b.RangeStats(lo, hi)
		count += n
		mass += m
	}
	return count, mass
}

// KeyBounds returns the smallest and largest stored keys. ok is false when
// the structure is empty, in which case lo and hi are zero values.
func (c *engine[K, I, B]) KeyBounds() (lo, hi K, ok bool) {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	c.rlockShards(0, len(c.shards)-1)
	defer c.runlockShards(0, len(c.shards)-1)
	for _, sh := range c.shards {
		if sh.b.Len() == 0 {
			continue
		}
		if !ok {
			lo = sh.b.MinKey()
			ok = true
		}
		hi = sh.b.MaxKey()
	}
	return lo, hi, ok
}

// AppendRange appends all keys in [lo, hi] in sorted order (shards are
// contiguous key intervals, so per-shard sorted output concatenates to a
// globally sorted result).
func (c *engine[K, I, B]) AppendRange(dst []K, lo, hi K) []K {
	if hi < lo {
		return dst
	}
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	sa, sb := c.shardRange(lo, hi)
	c.rlockShards(sa, sb)
	defer c.runlockShards(sa, sb)
	for i := sa; i <= sb; i++ {
		dst = c.shards[i].b.AppendRange(dst, lo, hi)
	}
	return dst
}

// rlockShards read-locks shards sa..sb inclusive, in ascending order (the
// global lock order; see the package comment).
func (c *engine[K, I, B]) rlockShards(sa, sb int) {
	for i := sa; i <= sb; i++ {
		c.shards[i].mu.RLock()
	}
}

func (c *engine[K, I, B]) runlockShards(sa, sb int) {
	for i := sa; i <= sb; i++ {
		c.shards[i].mu.RUnlock()
	}
}

// wantRebalance reports whether the shard just touched justifies re-learning
// the topology. Callers must hold topoMu shared; the check is a few atomic
// loads, cheap enough for the insert hot path.
func (c *engine[K, I, B]) wantRebalance(sh *shardState[K, I, B]) bool {
	if c.fixedSplits {
		return false
	}
	total := c.total.Load()
	p := int64(len(c.shards))
	if desired := c.desiredShards(total); desired > len(c.shards) {
		return true
	}
	if sh.n.Load() <= imbalanceFactor*(total/p)+imbalanceSlack {
		return false
	}
	// Rate limiter: an imbalance a rebalance cannot fix (e.g. one giant run
	// of duplicate keys that no split point can separate) must not trigger
	// an O(n) rebuild per insert. Require the structure to have changed by
	// a constant fraction since the last rebalance, which amortizes the
	// rebuild cost to O(1) per update.
	last := c.rebalanceN.Load()
	diff := total - last
	if diff < 0 {
		diff = -diff
	}
	return diff >= last/4+imbalanceSlack
}

// desiredShards returns how many shards a structure of n keys should use:
// grow toward the target only once shards would hold minShardKeys each.
func (c *engine[K, I, B]) desiredShards(n int64) int {
	d := int(n / minShardKeys)
	if d < 1 {
		d = 1
	}
	if d > c.target {
		d = c.target
	}
	return d
}

// maybeRebalance runs Rebalance unless another goroutine already is.
func (c *engine[K, I, B]) maybeRebalance() {
	if !c.rebalancing.CompareAndSwap(false, true) {
		return
	}
	defer c.rebalancing.Store(false)
	c.Rebalance()
}

// Rebalance re-learns equi-depth split points from the current contents and
// redistributes the items. The shard count grows toward the target as the
// data warrants (see desiredShards) and never shrinks below its current
// value (except when there are fewer keys than shards), so an explicitly
// requested layout is preserved. It takes the
// topology lock exclusively, so it serializes with every other operation;
// cost is O(n). Calling it is never required for correctness — routing
// stays exact under any split layout — only for balance.
func (c *engine[K, I, B]) Rebalance() {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	// An explicit rebalance on a fixed-splits structure abandons the fixed
	// layout and opts into the managed (auto-rebalancing) policy.
	c.fixedSplits = false
	n := 0
	for _, sh := range c.shards {
		n += sh.b.Len()
	}
	items := make([]I, 0, n)
	for _, sh := range c.shards {
		// Shards are contiguous key intervals in order, so concatenating
		// their key-ordered contents is globally sorted.
		items = sh.b.AppendItems(items)
	}
	p := c.desiredShards(int64(n))
	if p < len(c.shards) {
		p = len(c.shards)
	}
	c.rebuildFromSorted(items, p)
}

// rebuildFromSorted replaces the whole topology with p equi-depth shards
// over the given key-sorted items. Callers must hold topoMu exclusively (or
// be a constructor with no concurrent access).
func (c *engine[K, I, B]) rebuildFromSorted(items []I, p int) {
	n := len(items)
	if p < 1 {
		p = 1
	}
	if p > n && n > 0 {
		p = n
	}
	if n == 0 {
		p = 1
	}
	c.splits = c.splits[:0]
	c.shards = c.shards[:0]
	start := 0
	for i := 0; i < p; i++ {
		end := (n * (i + 1)) / p
		if i < p-1 {
			// The split point is the first key of the next shard; keys equal
			// to a split route right, so duplicates of that key must not
			// stay in this shard. Retreat end past the duplicate run.
			split := c.ops.keyOf(items[end])
			for end > start && c.ops.keyOf(items[end-1]) == split {
				end--
			}
			c.splits = append(c.splits, split)
		} else {
			end = n
		}
		sh := &shardState[K, I, B]{b: c.ops.fromSorted(items[start:end])}
		sh.n.Store(int64(end - start))
		c.shards = append(c.shards, sh)
		start = end
	}
	c.total.Store(int64(n))
	c.rebalanceN.Store(int64(n))
}

// AppendAllItems appends every stored item in key order — a consistent
// point-in-time export taken under every shard's read lock, so concurrent
// writers pause briefly while readers are unaffected. Shards are
// contiguous key intervals in order, so concatenating their key-ordered
// contents is globally sorted. O(n); this is the export snapshots and
// persistence are built on.
func (c *engine[K, I, B]) AppendAllItems(dst []I) []I {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	c.rlockShards(0, len(c.shards)-1)
	defer c.runlockShards(0, len(c.shards)-1)
	for _, sh := range c.shards {
		dst = sh.b.AppendItems(dst)
	}
	return dst
}

// Stats describes the current topology, for monitoring and tests.
type Stats struct {
	Len      int   // total stored keys
	Shards   int   // shard count
	PerShard []int // keys per shard, in key order
}

// Stats returns a consistent snapshot of the topology.
func (c *engine[K, I, B]) Stats() Stats {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	c.rlockShards(0, len(c.shards)-1)
	defer c.runlockShards(0, len(c.shards)-1)
	st := Stats{Shards: len(c.shards), PerShard: make([]int, len(c.shards))}
	for i, sh := range c.shards {
		st.PerShard[i] = sh.b.Len()
		st.Len += st.PerShard[i]
	}
	return st
}

// Validate checks every invariant: per-shard structural invariants, key
// ownership (every key lies inside its shard's interval), and counter
// consistency. O(n); intended for tests.
func (c *engine[K, I, B]) Validate() error {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	c.rlockShards(0, len(c.shards)-1)
	defer c.runlockShards(0, len(c.shards)-1)
	if len(c.shards) != len(c.splits)+1 {
		return errValidate("shard/split count mismatch")
	}
	for i := 1; i < len(c.splits); i++ {
		if c.splits[i-1] > c.splits[i] {
			return errValidate("splits out of order")
		}
	}
	total := 0
	for i, sh := range c.shards {
		if err := sh.b.Validate(); err != nil {
			return err
		}
		n := sh.b.Len()
		if int64(n) != sh.n.Load() {
			return errValidate("shard length counter out of sync")
		}
		total += n
		if n == 0 {
			continue
		}
		first, last := sh.b.MinKey(), sh.b.MaxKey()
		if i > 0 && first < c.splits[i-1] {
			return errValidate("key below shard lower bound")
		}
		if i < len(c.splits) && !(last < c.splits[i]) {
			return errValidate("key at or above shard upper bound")
		}
	}
	if int64(total) != c.total.Load() {
		return errValidate("total length counter out of sync")
	}
	return nil
}

type errValidate string

func (e errValidate) Error() string { return "shard: " + string(e) }
