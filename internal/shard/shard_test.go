package shard

import (
	"slices"
	"testing"

	"github.com/irsgo/irs/internal/core"
	"github.com/irsgo/irs/internal/workload"
	"github.com/irsgo/irs/internal/xrand"
)

// buildBoth returns a Concurrent (p shards) and a Static reference over the
// same keys.
func buildBoth(t *testing.T, keys []float64, p int) (*Concurrent[float64], *core.Static[float64]) {
	t.Helper()
	sorted := append([]float64(nil), keys...)
	slices.Sort(sorted)
	c, err := NewFromSorted(sorted, p)
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewStatic(keys)
	return c, ref
}

func TestConstructorsAndErrors(t *testing.T) {
	if _, err := NewFromSorted([]int{2, 1}, 4); err != core.ErrUnsorted {
		t.Fatalf("NewFromSorted unsorted: err = %v", err)
	}
	if _, err := NewFromSplits([]int{5, 3}); err != core.ErrUnsorted {
		t.Fatalf("NewFromSplits unsorted: err = %v", err)
	}
	c := New[int](0) // target < 1 is clamped
	if c.Shards() != 1 || c.Len() != 0 {
		t.Fatalf("empty: shards=%d len=%d", c.Shards(), c.Len())
	}
	rng := xrand.New(1)
	if _, err := c.Sample(0, 10, 3, rng); err != core.ErrEmptyRange {
		t.Fatalf("empty sample: err = %v", err)
	}
	if _, err := c.Sample(0, 10, -1, rng); err != core.ErrInvalidCount {
		t.Fatalf("negative t: err = %v", err)
	}
	out, err := c.Sample(0, 10, 0, rng)
	if err != nil || len(out) != 0 {
		t.Fatalf("t=0: %v %v", out, err)
	}
	// Inverted range behaves like an empty one.
	c.Insert(5)
	if _, err := c.Sample(10, 0, 1, rng); err != core.ErrEmptyRange {
		t.Fatalf("inverted range: err = %v", err)
	}
	if got := c.Count(10, 0); got != 0 {
		t.Fatalf("inverted count = %d", got)
	}
}

func TestFromSortedMatchesReference(t *testing.T) {
	rng := xrand.New(7)
	keys := workload.Keys(workload.Clustered, 30_000, rng)
	c, ref := buildBoth(t, keys, 7)

	if c.Len() != ref.Len() {
		t.Fatalf("Len: %d vs %d", c.Len(), ref.Len())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Shards != 7 || st.Len != ref.Len() {
		t.Fatalf("stats: %+v", st)
	}
	// Equi-depth: every shard within a factor two of fair share.
	fair := ref.Len() / st.Shards
	for i, n := range st.PerShard {
		if n < fair/2 || n > fair*2 {
			t.Fatalf("shard %d holds %d keys, fair share %d", i, n, fair)
		}
	}
	// Counts agree with the reference on many random ranges, including
	// cross-shard ones.
	for trial := 0; trial < 200; trial++ {
		lo := rng.Float64Range(0, 1e9)
		hi := rng.Float64Range(0, 1e9)
		if hi < lo {
			lo, hi = hi, lo
		}
		if got, want := c.Count(lo, hi), ref.Count(lo, hi); got != want {
			t.Fatalf("Count(%g, %g) = %d, want %d", lo, hi, got, want)
		}
	}
	// AppendRange returns the exact sorted range contents.
	lo, hi := keys[3], keys[len(keys)/2]
	if hi < lo {
		lo, hi = hi, lo
	}
	got := c.AppendRange(nil, lo, hi)
	if !slices.IsSorted(got) || len(got) != ref.Count(lo, hi) {
		t.Fatalf("AppendRange: %d keys, sorted=%v, want %d", len(got), slices.IsSorted(got), ref.Count(lo, hi))
	}
}

func TestSamplesAlwaysInRange(t *testing.T) {
	rng := xrand.New(11)
	keys := workload.Keys(workload.Zipf, 20_000, rng)
	c, ref := buildBoth(t, keys, 5)
	for trial := 0; trial < 100; trial++ {
		i, j := rng.Intn(len(keys)), rng.Intn(len(keys))
		lo, hi := keys[i], keys[j]
		if hi < lo {
			lo, hi = hi, lo
		}
		out, err := c.Sample(lo, hi, 50, rng)
		if err != nil {
			t.Fatalf("Sample(%g, %g): %v", lo, hi, err)
		}
		if len(out) != 50 {
			t.Fatalf("got %d samples", len(out))
		}
		for _, k := range out {
			if k < lo || k > hi {
				t.Fatalf("sample %g outside [%g, %g]", k, lo, hi)
			}
			if ref.Count(k, k) == 0 {
				t.Fatalf("sample %g is not a stored key", k)
			}
		}
	}
}

func TestUpdatesMatchReference(t *testing.T) {
	rng := xrand.New(13)
	c, err := NewFromSorted([]int{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[int]int{}
	refLen := 0
	for op := 0; op < 20_000; op++ {
		k := rng.Intn(500)
		if rng.Bernoulli(0.6) {
			c.Insert(k)
			ref[k]++
			refLen++
		} else {
			got := c.Delete(k)
			want := ref[k] > 0
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
			if want {
				ref[k]--
				refLen--
			}
		}
	}
	if c.Len() != refLen {
		t.Fatalf("Len = %d, want %d", c.Len(), refLen)
	}
	for k, n := range ref {
		if got := c.Count(k, k); got != n {
			t.Fatalf("Count(%d,%d) = %d, want %d", k, k, got, n)
		}
		if c.Contains(k) != (n > 0) {
			t.Fatalf("Contains(%d) = %v with %d copies", k, c.Contains(k), n)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchOpsMatchPointOps(t *testing.T) {
	rng := xrand.New(17)
	keys := workload.Keys(workload.Uniform, 10_000, rng)
	c, err := NewFromSorted(keys, 6)
	if err != nil {
		t.Fatal(err)
	}
	extra := make([]float64, 5000)
	for i := range extra {
		extra[i] = rng.Float64Range(0, 1e9)
	}
	c.InsertBatch(extra)
	if c.Len() != len(keys)+len(extra) {
		t.Fatalf("after InsertBatch: Len = %d", c.Len())
	}
	for _, k := range extra[:100] {
		if !c.Contains(k) {
			t.Fatalf("batched key %g missing", k)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deleting the batch plus never-inserted keys removes exactly the batch.
	victims := append(append([]float64(nil), extra...), -1, -2, -3)
	if got := c.DeleteBatch(victims); got != len(extra) {
		t.Fatalf("DeleteBatch removed %d, want %d", got, len(extra))
	}
	if c.Len() != len(keys) {
		t.Fatalf("after DeleteBatch: Len = %d, want %d", c.Len(), len(keys))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Empty batches are no-ops.
	c.InsertBatch(nil)
	if got := c.DeleteBatch(nil); got != 0 || c.Len() != len(keys) {
		t.Fatalf("empty batches changed state: removed=%d len=%d", got, c.Len())
	}
}

func TestSampleMany(t *testing.T) {
	rng := xrand.New(19)
	keys := workload.Keys(workload.Uniform, 15_000, rng)
	c, ref := buildBoth(t, keys, 5)

	queries := []Query[float64]{
		{Lo: 0, Hi: 1e9, T: 100},           // whole key space
		{Lo: keys[10], Hi: keys[10], T: 5}, // point range
		{Lo: 2e9, Hi: 3e9, T: 4},           // empty range -> nil, not an error
		{Lo: 10, Hi: 0, T: 4},              // inverted range -> nil
		{Lo: 0, Hi: 1e9, T: 0},             // zero samples
	}
	results, err := c.SampleMany(queries, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("got %d results", len(results))
	}
	if len(results[0]) != 100 || len(results[1]) != 5 {
		t.Fatalf("result sizes: %d, %d", len(results[0]), len(results[1]))
	}
	if results[2] != nil || results[3] != nil || len(results[4]) != 0 {
		t.Fatalf("degenerate queries: %v %v %v", results[2], results[3], results[4])
	}
	for _, k := range results[1] {
		if k != keys[10] {
			t.Fatalf("point query returned %g, want %g", k, keys[10])
		}
	}
	for _, k := range results[0] {
		if ref.Count(k, k) == 0 {
			t.Fatalf("sample %g is not a stored key", k)
		}
	}
	if _, err := c.SampleMany([]Query[float64]{{Lo: 0, Hi: 1, T: -1}}, rng); err != core.ErrInvalidCount {
		t.Fatalf("negative T: err = %v", err)
	}
	empty, err := c.SampleMany(nil, rng)
	if err != nil || len(empty) != 0 {
		t.Fatalf("nil batch: %v %v", empty, err)
	}

	// A batch big enough to take the parallel path returns the right
	// shapes and in-range values too.
	big := make([]Query[float64], 64)
	for i := range big {
		lo := keys[rng.Intn(len(keys))]
		big[i] = Query[float64]{Lo: lo, Hi: lo + 1e7, T: 256}
	}
	results, err = c.SampleMany(big, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range results {
		q := big[i]
		if want := ref.Count(q.Lo, q.Hi); want == 0 {
			if out != nil {
				t.Fatalf("query %d: non-nil result on empty range", i)
			}
			continue
		}
		if len(out) != q.T {
			t.Fatalf("query %d: %d samples, want %d", i, len(out), q.T)
		}
		for _, k := range out {
			if k < q.Lo || k > q.Hi {
				t.Fatalf("query %d: sample %g outside [%g, %g]", i, k, q.Lo, q.Hi)
			}
		}
	}
}

func TestAutoRebalanceGrowsShards(t *testing.T) {
	c := New[int](8)
	if c.Shards() != 1 {
		t.Fatalf("fresh structure has %d shards", c.Shards())
	}
	batch := make([]int, 1000)
	for b := 0; b < 40; b++ {
		for i := range batch {
			batch[i] = b*len(batch) + i
		}
		c.InsertBatch(batch)
	}
	if got := c.Shards(); got < 4 {
		t.Fatalf("after 40k inserts only %d shards (want growth toward 8)", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 40_000 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestManualRebalanceKeepsContents(t *testing.T) {
	rng := xrand.New(23)
	keys := workload.Keys(workload.Uniform, 9_000, rng)
	c, ref := buildBoth(t, keys, 3)
	// Skew the structure, then rebalance and check nothing was lost.
	skew := make([]float64, 3000)
	for i := range skew {
		skew[i] = rng.Float64Range(0, 1e6) // all land in the lowest shard
	}
	c.InsertBatch(skew)
	c.Rebalance()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != ref.Len()+len(skew) {
		t.Fatalf("Len = %d, want %d", c.Len(), ref.Len()+len(skew))
	}
	if got, want := c.Count(0, 1e6), ref.Count(0, 1e6)+len(skew); got != want {
		t.Fatalf("skewed range count = %d, want %d", got, want)
	}
	st := c.Stats()
	if st.Shards < 3 {
		t.Fatalf("rebalance shrank shards to %d", st.Shards)
	}
}

func TestDuplicateHeavyKeys(t *testing.T) {
	// A single giant duplicate run cannot be separated by any split point;
	// the structure must stay correct (and not livelock on rebalances).
	c := New[int](4)
	batch := make([]int, 1000)
	for i := range batch {
		batch[i] = 42
	}
	for b := 0; b < 12; b++ {
		c.InsertBatch(batch)
	}
	if c.Len() != 12_000 || c.Count(42, 42) != 12_000 {
		t.Fatalf("len=%d count=%d", c.Len(), c.Count(42, 42))
	}
	rng := xrand.New(29)
	out, err := c.Sample(0, 100, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range out {
		if k != 42 {
			t.Fatalf("sample %d", k)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromSplitsLayoutIsFixed(t *testing.T) {
	// An explicit split layout must survive arbitrarily skewed traffic:
	// no auto-rebalance may replace the caller's routing.
	c, err := NewFromSplits([]int{100})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]int, 1000)
	for b := 0; b < 30; b++ {
		for i := range batch {
			batch[i] = b*len(batch) + i + 1000 // all above the split
		}
		c.InsertBatch(batch)
	}
	st := c.Stats()
	if st.Shards != 2 || st.PerShard[0] != 0 || st.PerShard[1] != 30_000 {
		t.Fatalf("fixed layout was rebalanced away: %+v", st)
	}
	// An explicit Rebalance abandons the fixed layout for learned splits.
	c.Rebalance()
	st = c.Stats()
	if st.PerShard[0] == 0 {
		t.Fatalf("explicit Rebalance did not re-learn splits: %+v", st)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSampleManyDisjointShards(t *testing.T) {
	// Queries at opposite ends of the key space lock only their own
	// shards; the middle shards are skipped. The locking itself is
	// exercised under -race elsewhere; here we check the answers.
	rng := xrand.New(31)
	keys := workload.Keys(workload.Uniform, 20_000, rng)
	c, ref := buildBoth(t, keys, 8)
	queries := []Query[float64]{
		{Lo: 0, Hi: keys[1000], T: 40},
		{Lo: keys[len(keys)-1000], Hi: 1e9, T: 40},
	}
	results, err := c.SampleMany(queries, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range results {
		q := queries[i]
		if len(out) != q.T {
			t.Fatalf("query %d: %d samples", i, len(out))
		}
		for _, k := range out {
			if k < q.Lo || k > q.Hi || ref.Count(k, k) == 0 {
				t.Fatalf("query %d: bad sample %g", i, k)
			}
		}
	}
}

func TestFromSplitsRouting(t *testing.T) {
	c, err := NewFromSplits([]int{10, 20, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 5 {
		t.Fatalf("shards = %d", c.Shards())
	}
	for k := -5; k < 45; k++ {
		c.Insert(k)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	// Keys -5..9 | 10..19 | (empty: [20,20)) | 20..29 | 30..44.
	want := []int{15, 10, 0, 10, 15}
	for i, n := range st.PerShard {
		if n != want[i] {
			t.Fatalf("shard occupancy %v, want %v", st.PerShard, want)
		}
	}
}
