package shard

import (
	"math"
	"slices"
	"testing"

	"github.com/irsgo/irs/internal/core"
	"github.com/irsgo/irs/internal/stats"
	"github.com/irsgo/irs/internal/workload"
	"github.com/irsgo/irs/internal/xrand"
)

// The statistical contract of the sharded sampler: splitting a query's t
// samples over shards by a count-proportional multinomial must leave each
// sample exactly uniform over the whole range. These tests compare the
// Concurrent sampler's empirical distribution against the exact cell
// probabilities computed from a Static built on identical data, with fixed
// RNG seeds (so a pass is deterministic) and a generous significance level
// (so the fixed stream is far from the rejection boundary).

// statAlpha is deliberately small: any genuine partition-induced bias moves
// the statistic by orders of magnitude, while a 1e-4 significance keeps the
// test essentially flake-free even on machines whose GOMAXPROCS routes the
// fixed seed through a different (parallel) drawing path.
const statAlpha = 1e-4

// chiSquareAgainstStatic draws total samples from c over [lo, hi], buckets
// them into cells of equal key-width, and chi-square-tests the counts
// against the exact cell probabilities under the Static reference.
func chiSquareAgainstStatic(t *testing.T, draw func(t int, rng *xrand.RNG) []float64, ref *core.Static[float64], lo, hi float64, cells, total int, seed uint64) {
	t.Helper()
	width := (hi - lo) / float64(cells)
	probs := make([]float64, cells)
	rangeCount := ref.Count(lo, hi)
	if rangeCount == 0 {
		t.Fatal("reference range is empty")
	}
	for i := range probs {
		cellLo := lo + float64(i)*width
		cellHi := lo + float64(i+1)*width
		// Cells partition [lo, hi]: count keys in [cellLo, cellHi) except
		// the last cell, which is closed to include hi itself.
		n := ref.Count(cellLo, cellHi)
		if i < cells-1 {
			n -= ref.Count(cellHi, cellHi)
		}
		probs[i] = float64(n) / float64(rangeCount)
	}

	rng := xrand.New(seed)
	counts := make([]int, cells)
	out := draw(total, rng)
	if len(out) != total {
		t.Fatalf("drew %d samples, want %d", len(out), total)
	}
	for _, k := range out {
		if k < lo || k > hi {
			t.Fatalf("sample %g outside [%g, %g]", k, lo, hi)
		}
		cell := int((k - lo) / width)
		if cell >= cells {
			cell = cells - 1
		}
		counts[cell]++
	}

	res, err := stats.ChiSquareTest(counts, probs, statAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject {
		t.Fatalf("chi-square rejects uniformity: stat=%.2f df=%d critical=%.2f (alpha=%g)",
			res.Stat, res.DF, res.Critical, res.Alpha)
	}
}

// TestConcurrentUniformityMatchesStatic is the headline check: sampling a
// range that spans several shards (including partially covered boundary
// shards) is distributed exactly like sampling the Static reference.
func TestConcurrentUniformityMatchesStatic(t *testing.T) {
	for _, dist := range []workload.Distribution{workload.Uniform, workload.Clustered} {
		t.Run(string(dist), func(t *testing.T) {
			rng := xrand.New(101)
			keys := workload.Keys(dist, 25_000, rng)
			sorted := append([]float64(nil), keys...)
			slices.Sort(sorted)
			c, err := NewFromSorted(sorted, 6)
			if err != nil {
				t.Fatal(err)
			}
			ref := core.NewStatic(keys)
			// A range from inside the second shard to inside the fifth:
			// two partially covered shards plus fully covered middles.
			lo, hi := sorted[len(sorted)/4], sorted[(4*len(sorted))/5]
			chiSquareAgainstStatic(t, func(n int, r *xrand.RNG) []float64 {
				out, err := c.Sample(lo, hi, n, r)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}, ref, lo, hi, 64, 200_000, 102)
		})
	}
}

// TestConcurrentUniformityPerKey checks the distribution at the finest
// granularity: over a small multiset, every stored occurrence must be
// equally likely, which also catches any bias between shards of unequal
// occupancy.
func TestConcurrentUniformityPerKey(t *testing.T) {
	// 200 distinct integer keys with multiplicities 1..4, split 5 ways so
	// shard occupancies differ.
	var all []float64
	for k := 0; k < 200; k++ {
		for m := 0; m <= k%4; m++ {
			all = append(all, float64(k))
		}
	}
	c, err := NewFromSorted(all, 5)
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewStatic(all)
	probs := make([]float64, 200)
	for k := range probs {
		probs[k] = float64(ref.Count(float64(k), float64(k))) / float64(len(all))
	}
	rng := xrand.New(103)
	counts := make([]int, 200)
	const total = 150_000
	out, err := c.Sample(0, 199, total, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range out {
		counts[int(k)]++
	}
	res, err := stats.ChiSquareTest(counts, probs, statAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject {
		t.Fatalf("per-key chi-square rejects: stat=%.2f df=%d critical=%.2f", res.Stat, res.DF, res.Critical)
	}
}

// TestSampleManyUniformity pushes the same check through the batch path,
// including the parallel-worker branch (total samples above the fan-out
// threshold), whose RNG stream handling must not distort the distribution.
func TestSampleManyUniformity(t *testing.T) {
	rng := xrand.New(107)
	keys := workload.Keys(workload.Uniform, 25_000, rng)
	c, err := NewFromSorted(keys, 6)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewStaticFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := keys[len(keys)/10], keys[(9*len(keys))/10]
	chiSquareAgainstStatic(t, func(n int, r *xrand.RNG) []float64 {
		// Split the draw across a batch of identical queries large enough
		// to engage the worker pool.
		const per = 1000
		queries := make([]Query[float64], n/per)
		for i := range queries {
			queries[i] = Query[float64]{Lo: lo, Hi: hi, T: per}
		}
		results, err := c.SampleMany(queries, r)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, res := range results {
			out = append(out, res...)
		}
		return out
	}, ref, lo, hi, 64, 200_000, 108)
}

// TestParallelSampleUniformity engages the intra-query fan-out (t above
// parallelSampleMin) and checks the distribution is unaffected.
func TestParallelSampleUniformity(t *testing.T) {
	rng := xrand.New(109)
	keys := workload.Keys(workload.Uniform, 25_000, rng)
	c, err := NewFromSorted(keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewStaticFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := keys[100], keys[len(keys)-100]
	chiSquareAgainstStatic(t, func(n int, r *xrand.RNG) []float64 {
		var out []float64
		for len(out) < n {
			chunk := n - len(out)
			if chunk > 2*parallelSampleMin {
				chunk = 2 * parallelSampleMin // well above the fan-out threshold
			}
			got, err := c.Sample(lo, hi, chunk, r)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, got...)
		}
		return out
	}, ref, lo, hi, 48, 160_000, 110)
}

// TestIndependenceAcrossQueries repeats one query and checks the paired
// samples are uncorrelated — the defining IRS property that distinguishes
// fresh sampling from a materialized sample served twice.
func TestIndependenceAcrossQueries(t *testing.T) {
	rng := xrand.New(113)
	keys := workload.Keys(workload.Uniform, 20_000, rng)
	c, err := NewFromSorted(keys, 5)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := keys[1000], keys[19_000]
	const pairs = 20_000
	xs := make([]float64, pairs)
	ys := make([]float64, pairs)
	for i := 0; i < pairs; i++ {
		a, err := c.Sample(lo, hi, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.Sample(lo, hi, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		xs[i], ys[i] = a[0], b[0]
	}
	r, err := stats.PearsonCorr(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Under independence the correlation is ~Normal(0, 1/sqrt(pairs));
	// 4.5 sigma keeps the fixed-seed run far from the boundary.
	bound := 4.5 / math.Sqrt(pairs)
	if r > bound || r < -bound {
		t.Fatalf("repeat-query correlation %.4f exceeds %.4f", r, bound)
	}
}
