package shard

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/irsgo/irs/internal/weighted"
	"github.com/irsgo/irs/internal/xrand"
)

// The weighted race suite hammers one WeightedConcurrent from many
// goroutines at once — point writers, batch writers, weight updaters,
// samplers, batch samplers, counters, and an explicit rebalancer — and
// asserts what must survive any interleaving: no returned sample falls
// outside its queried range, samples from the stable base always carry
// positive weight, and after all writers join the counts and weight totals
// are exactly consistent with what was written. Run under -race (as CI
// does) this also proves the locking protocol has no data races.

const (
	// The base population lives in [0, wBaseMax] with fixed weights and is
	// never touched by writers or updaters.
	wBaseMax = 100_000
	// Writers and updaters operate on disjoint key blocks far above the
	// base population.
	wWriterBase  = 1_000_000
	wWriterBlock = 10_000
)

func TestWeightedConcurrentReadersWritersUpdatersRace(t *testing.T) {
	rng := xrand.New(401)
	base := make([]weighted.Item[float64], 0, wBaseMax/2)
	baseW := 0.0
	for i := 0; i < wBaseMax/2; i++ {
		it := weighted.Item[float64]{
			Key:    rng.Float64Range(0, wBaseMax),
			Weight: rng.Float64Range(0.5, 2),
		}
		baseW += it.Weight
		base = append(base, it)
	}
	wc := NewWeighted[float64](8, 402)
	if err := wc.InsertBatch(base); err != nil {
		t.Fatal(err)
	}

	const (
		writers  = 3
		updaters = 2
		readers  = 4
		iters    = 300
	)

	// The updaters' blocks are inserted up front and never deleted; each
	// updater cycles the weights of its own keys.
	updaterItems := make([][]weighted.Item[float64], updaters)
	for u := range updaterItems {
		lo := float64(wWriterBase + (writers+1+u)*wWriterBlock)
		items := make([]weighted.Item[float64], 256)
		for i := range items {
			items[i] = weighted.Item[float64]{Key: lo + float64(i), Weight: 1}
		}
		updaterItems[u] = items
		if err := wc.InsertBatch(items); err != nil {
			t.Fatal(err)
		}
	}

	var wrote atomic.Int64
	var wg sync.WaitGroup

	// Point writers: insert a private block, delete half of it, tracking
	// the exact net contribution.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := float64(wWriterBase + w*wWriterBlock)
			for i := 0; i < iters; i++ {
				k := lo + float64(i)
				if err := wc.Insert(k, 2); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if err := wc.Insert(k+0.5, 3); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if !wc.Delete(k + 0.5) {
					t.Errorf("writer %d lost its own key %g", w, k+0.5)
					return
				}
				wrote.Add(1)
			}
		}(w)
	}

	// One batch writer with a known residue of zero.
	wg.Add(1)
	go func() {
		defer wg.Done()
		lo := float64(wWriterBase + writers*wWriterBlock)
		batch := make([]weighted.Item[float64], 64)
		keys := make([]float64, len(batch))
		for i := 0; i < iters/4; i++ {
			for j := range batch {
				k := lo + float64(i*len(batch)+j)
				batch[j] = weighted.Item[float64]{Key: k, Weight: 0.5 + float64(j%3)}
				keys[j] = k
			}
			if err := wc.InsertBatch(batch); err != nil {
				t.Errorf("batch writer: %v", err)
				return
			}
			if removed := wc.DeleteBatch(keys); removed != len(keys) {
				t.Errorf("batch writer: removed %d of its own %d keys", removed, len(keys))
				return
			}
		}
	}()

	// Weight updaters: cycle weights over their own permanently-present
	// block; every update must find its key.
	for u := 0; u < updaters; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			items := updaterItems[u]
			for i := 0; i < iters; i++ {
				it := items[i%len(items)]
				ok, err := wc.UpdateWeight(it.Key, float64(1+i%5))
				if err != nil || !ok {
					t.Errorf("updater %d: UpdateWeight(%g) = %v, %v", u, it.Key, ok, err)
					return
				}
			}
		}(u)
	}

	// Readers: point samples, batch samples, counts, and weight totals over
	// the stable base range.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := xrand.New(2000 + uint64(r))
			for i := 0; i < iters; i++ {
				lo := rng.Float64Range(0, wBaseMax/2)
				hi := lo + rng.Float64Range(0, wBaseMax/2)
				out, err := wc.Sample(lo, hi, 16, rng)
				if err != nil {
					continue // a momentarily empty slice of the base range
				}
				for _, k := range out {
					if k < lo || k > hi {
						t.Errorf("sample %g outside [%g, %g]", k, lo, hi)
						return
					}
				}
				if i%8 == 0 {
					queries := []Query[float64]{
						{Lo: 0, Hi: wBaseMax, T: 8},
						{Lo: lo, Hi: hi, T: 8},
					}
					results, err := wc.SampleMany(queries, rng)
					if err != nil {
						t.Errorf("SampleMany: %v", err)
						return
					}
					for _, k := range results[0] {
						if k < 0 || k > wBaseMax {
							t.Errorf("batch sample %g outside base range", k)
							return
						}
					}
				}
				if got := wc.Count(0, wBaseMax); got < len(base) {
					t.Errorf("base range count %d dropped below %d", got, len(base))
					return
				}
				if got := wc.TotalWeight(0, wBaseMax); got < 0.99*baseW {
					t.Errorf("base range weight %g dropped below %g", got, baseW)
					return
				}
			}
		}(r)
	}

	// A rebalancer thrashing the topology while everyone else runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			wc.Rebalance()
		}
	}()

	wg.Wait()

	// Quiescent consistency: every write is accounted for.
	wantLen := len(base) + updaters*256 + int(wrote.Load())
	if wc.Len() != wantLen {
		t.Fatalf("final Len = %d, want %d", wc.Len(), wantLen)
	}
	if got := wc.Count(0, 2e6); got != wantLen {
		t.Fatalf("final full-range count = %d, want %d", got, wantLen)
	}
	if got := wc.Count(0, wBaseMax); got != len(base) {
		t.Fatalf("final base count = %d, want %d", got, len(base))
	}
	// Base weights were never touched by updaters, so the base mass is
	// exactly what was loaded (up to accumulation order).
	if got := wc.TotalWeight(0, wBaseMax); math.Abs(got-baseW) > 1e-6*baseW {
		t.Fatalf("final base weight = %g, want %g", got, baseW)
	}
	// Each updater key's final weight is the last value its updater wrote.
	wantUpd := 0.0
	for range updaterItems {
		for i := 0; i < 256; i++ {
			// Updater u touched key index i on iterations i, i+256, ...; the
			// last such iteration j < iters sets weight 1 + j%5.
			last := i + ((iters-1-i)/256)*256
			wantUpd += float64(1 + last%5)
		}
	}
	gotUpd := wc.TotalWeight(float64(wWriterBase+(writers+1)*wWriterBlock), 2e6)
	if math.Abs(gotUpd-wantUpd) > 1e-6*wantUpd {
		t.Fatalf("final updater weight = %g, want %g", gotUpd, wantUpd)
	}
	if err := wc.Validate(); err != nil {
		t.Fatal(err)
	}
	st := wc.Stats()
	if st.Len != wantLen {
		t.Fatalf("stats len = %d, want %d", st.Len, wantLen)
	}
}

// TestWeightedAutoRebalanceRace grows a structure from empty with many
// concurrent point writers, forcing automatic topology changes to overlap
// live traffic.
func TestWeightedAutoRebalanceRace(t *testing.T) {
	wc := NewWeighted[int](8, 411)
	const (
		writers = 8
		perW    = 3000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(4000 + w))
			for i := 0; i < perW; i++ {
				if err := wc.Insert(w*perW+i, 1+float64(i%7)); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				if i%16 == 0 {
					if out, err := wc.Sample(0, writers*perW, 4, rng); err == nil {
						for _, k := range out {
							if k < 0 || k >= writers*perW {
								t.Errorf("sample %d out of bounds", k)
								return
							}
						}
					}
				}
				if i%64 == 0 {
					if _, err := wc.UpdateWeight(w*perW+i/2, float64(1+i%3)); err != nil {
						t.Errorf("UpdateWeight: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if wc.Len() != writers*perW {
		t.Fatalf("Len = %d, want %d", wc.Len(), writers*perW)
	}
	if err := wc.Validate(); err != nil {
		t.Fatal(err)
	}
	if wc.Shards() < 2 {
		t.Fatalf("no shard growth under %d inserts", writers*perW)
	}
}
