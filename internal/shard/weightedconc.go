package shard

import (
	"cmp"
	"slices"
	"sync/atomic"

	"github.com/irsgo/irs/internal/weighted"
	"github.com/irsgo/irs/internal/xrand"
)

// treapBackend adapts weighted.Treap — the fully dynamic weighted sampler —
// to the Backend interface: items are (key, weight) pairs, the sampling
// mass of a range is its total weight, and cross-shard queries split their
// samples with a multinomial proportional to per-shard range weight. All
// query paths used here (RangeStats, SampleRunAppend through caller-owned
// TreapRun scratch, AppendRange) are read-only on the treap, which is what
// lets the engine serve weighted readers under shared locks.
type treapBackend[K cmp.Ordered] struct {
	tr *weighted.Treap[K]
}

var _ Backend[int, weighted.Item[int]] = (*treapBackend[int])(nil)

func (b *treapBackend[K]) Insert(it weighted.Item[K]) {
	// Weights were validated by the WeightedConcurrent wrappers before the
	// engine routed the item here.
	if err := b.tr.Insert(it.Key, it.Weight); err != nil {
		panic("shard: unvalidated weight reached a backend: " + err.Error())
	}
}

func (b *treapBackend[K]) Delete(key K) bool   { return b.tr.Delete(key) }
func (b *treapBackend[K]) Len() int            { return b.tr.Len() }
func (b *treapBackend[K]) Contains(key K) bool { return b.tr.Count(key, key) > 0 }
func (b *treapBackend[K]) Count(lo, hi K) int  { return b.tr.Count(lo, hi) }
func (b *treapBackend[K]) Validate() error     { return b.tr.Validate() }

func (b *treapBackend[K]) MinKey() K {
	k, _ := b.tr.MinKey()
	return k
}

func (b *treapBackend[K]) MaxKey() K {
	k, _ := b.tr.MaxKey()
	return k
}

func (b *treapBackend[K]) RangeStats(lo, hi K) (int, float64) {
	return b.tr.RangeStats(lo, hi)
}

func (b *treapBackend[K]) SampleRunAppend(run Run, dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	return b.tr.SampleRunAppend(run.(*weighted.TreapRun[K]), dst, lo, hi, t, rng)
}

func (b *treapBackend[K]) AppendRange(dst []K, lo, hi K) []K {
	return b.tr.AppendRange(dst, lo, hi)
}

func (b *treapBackend[K]) AppendItems(dst []weighted.Item[K]) []weighted.Item[K] {
	return b.tr.AppendItems(dst)
}

// weightedOps wires the weighted instantiation's construction hooks. Each
// backend (including the ones Rebalance rebuilds) gets a distinct treap
// priority seed derived deterministically from seed, so fixed-seed runs
// stay reproducible.
func weightedOps[K cmp.Ordered](seed uint64) backendOps[K, weighted.Item[K], *treapBackend[K]] {
	var ctr atomic.Uint64
	next := func() uint64 { return seed + ctr.Add(1)*0x9e3779b97f4a7c15 }
	return backendOps[K, weighted.Item[K], *treapBackend[K]]{
		new: func() *treapBackend[K] {
			return &treapBackend[K]{tr: weighted.NewTreap[K](next())}
		},
		fromSorted: func(items []weighted.Item[K]) *treapBackend[K] {
			tr, err := weighted.NewTreapFromSortedItems(next(), items)
			if err != nil {
				panic("shard: sorted segment rejected: " + err.Error())
			}
			return &treapBackend[K]{tr: tr}
		},
		keyOf: func(it weighted.Item[K]) K { return it.Key },
		sortItems: func(s []weighted.Item[K]) {
			slices.SortStableFunc(s, func(a, b weighted.Item[K]) int {
				return cmp.Compare(a.Key, b.Key)
			})
		},
		newRun:   func() Run { return new(weighted.TreapRun[K]) },
		zeroMass: weighted.ErrZeroWeightRange,
	}
}

// WeightedConcurrent is the sharded, concurrency-safe weighted IRS
// structure: the engine instantiated over weighted.Treap. Every stored key
// carries a non-negative weight; sampling queries return keys with
// probability proportional to their weight among the range contents, with
// the cross-shard multinomial split proportional to per-shard range weight
// so the partition never distorts the distribution.
//
// All methods may be called from any number of goroutines simultaneously
// (inserts, deletes, weight updates, counts, and sampling queries); the
// only non-shareable argument is the *xrand.RNG passed to sampling calls.
// Sampling a range that holds keys of only zero weight returns
// weighted.ErrZeroWeightRange; in a SampleMany batch such queries yield a
// nil slice, like empty ranges.
type WeightedConcurrent[K cmp.Ordered] struct {
	engine[K, weighted.Item[K], *treapBackend[K]]
}

var _ weighted.Sampler[int] = (*WeightedConcurrent[int])(nil)

// NewWeighted returns an empty WeightedConcurrent that will grow toward
// target shards as data arrives. seed drives the per-shard treap
// rebalancing priorities and anchors the NewStream sequence — never the
// sampling distribution; target < 1 is treated as 1.
func NewWeighted[K cmp.Ordered](target int, seed uint64) *WeightedConcurrent[K] {
	w := &WeightedConcurrent[K]{}
	w.init(weightedOps[K](seed), target, seed)
	return w
}

// NewWeightedFromItems bulk-loads a WeightedConcurrent from items in any
// order, learning equi-depth split points so each of the (up to) shards
// shards starts with an equal share of the keys. Returns
// weighted.ErrInvalidWeight if any weight is negative, NaN, or infinite.
// The input is not retained or modified.
func NewWeightedFromItems[K cmp.Ordered](items []weighted.Item[K], shards int, seed uint64) (*WeightedConcurrent[K], error) {
	if err := validateItemWeights(items); err != nil {
		return nil, err
	}
	w := NewWeighted[K](shards, seed)
	own := append([]weighted.Item[K](nil), items...)
	w.ops.sortItems(own)
	w.rebuildFromSorted(own, shards)
	return w, nil
}

// NewWeightedFromSortedItems bulk-loads a WeightedConcurrent from items
// already in non-decreasing key order, validating order and weights in one
// pass and skipping NewWeightedFromItems' copy+sort — the recovery path
// for snapshot exports, which are written in key order. Returns
// weighted.ErrUnsortedItems if the order does not hold and
// weighted.ErrInvalidWeight if any weight is negative, NaN, or infinite.
// The input is not retained or modified.
func NewWeightedFromSortedItems[K cmp.Ordered](items []weighted.Item[K], shards int, seed uint64) (*WeightedConcurrent[K], error) {
	for i, it := range items {
		if !weighted.ValidWeight(it.Weight) {
			return nil, weighted.ErrInvalidWeight
		}
		if i > 0 && items[i-1].Key > it.Key {
			return nil, weighted.ErrUnsortedItems
		}
	}
	w := NewWeighted[K](shards, seed)
	w.rebuildFromSorted(items, shards)
	return w, nil
}

// NewWeightedFromSplits returns an empty WeightedConcurrent with fixed
// routing at the given sorted split points (len(splits)+1 shards); the
// layout is never changed automatically, exactly like
// Concurrent/NewFromSplits. Returns weighted.ErrUnsortedItems if splits are
// not in non-decreasing order.
func NewWeightedFromSplits[K cmp.Ordered](splits []K, seed uint64) (*WeightedConcurrent[K], error) {
	for i := 1; i < len(splits); i++ {
		if splits[i-1] > splits[i] {
			return nil, weighted.ErrUnsortedItems
		}
	}
	w := NewWeighted[K](len(splits)+1, seed)
	w.applySplits(splits)
	return w, nil
}

func validateItemWeights[K cmp.Ordered](items []weighted.Item[K]) error {
	for _, it := range items {
		if !weighted.ValidWeight(it.Weight) {
			return weighted.ErrInvalidWeight
		}
	}
	return nil
}

// Insert adds one weighted item (duplicate keys allowed). It shadows the
// engine's item insert to validate the weight first: only the owning shard
// is locked, and invalid weights are rejected with
// weighted.ErrInvalidWeight before any lock is taken.
func (w *WeightedConcurrent[K]) Insert(key K, weight float64) error {
	if !weighted.ValidWeight(weight) {
		return weighted.ErrInvalidWeight
	}
	w.engine.Insert(weighted.Item[K]{Key: key, Weight: weight})
	return nil
}

// InsertItem adds one weighted item; it is Insert with the Item carrier
// type (convenient next to InsertBatch).
func (w *WeightedConcurrent[K]) InsertItem(item weighted.Item[K]) error {
	return w.Insert(item.Key, item.Weight)
}

// InsertBatch adds every item in items (duplicate keys allowed), sorting
// the batch once and write-locking each involved shard exactly once. All
// weights are validated up front: on weighted.ErrInvalidWeight nothing is
// inserted. The input slice is not retained or modified.
func (w *WeightedConcurrent[K]) InsertBatch(items []weighted.Item[K]) error {
	if err := validateItemWeights(items); err != nil {
		return err
	}
	w.engine.InsertBatch(items)
	return nil
}

// UpdateWeight sets the weight of one occurrence of key, reporting whether
// the key was present. Only the owning shard is write-locked. Returns
// weighted.ErrInvalidWeight for negative, NaN, or infinite weights.
func (w *WeightedConcurrent[K]) UpdateWeight(key K, weight float64) (bool, error) {
	if !weighted.ValidWeight(weight) {
		return false, weighted.ErrInvalidWeight
	}
	w.topoMu.RLock()
	defer w.topoMu.RUnlock()
	sh := w.shards[w.route(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.b.tr.UpdateWeight(key, weight)
}

// TotalWeight returns the weight mass in [lo, hi]. All overlapping shards
// are read-locked together, so the result is a consistent snapshot.
func (w *WeightedConcurrent[K]) TotalWeight(lo, hi K) float64 {
	if hi < lo {
		return 0
	}
	w.topoMu.RLock()
	defer w.topoMu.RUnlock()
	sa, sb := w.shardRange(lo, hi)
	w.rlockShards(sa, sb)
	defer w.runlockShards(sa, sb)
	total := 0.0
	for i := sa; i <= sb; i++ {
		_, m := w.shards[i].b.RangeStats(lo, hi)
		total += m
	}
	return total
}

// AppendItems appends every stored (key, weight) pair in key order — a
// consistent snapshot taken under all shard read locks. O(n).
func (w *WeightedConcurrent[K]) AppendItems(dst []weighted.Item[K]) []weighted.Item[K] {
	return w.AppendAllItems(dst)
}
