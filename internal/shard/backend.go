package shard

import (
	"cmp"

	"github.com/irsgo/irs/internal/xrand"
)

// Run is backend-specific per-query sampling scratch, opaque to the engine.
// A Run is owned by exactly one in-flight query at a time; the engine pools
// runs inside its query scratch so steady-state queries do not allocate.
// Concrete types are *chunks.Run[K] for the unweighted backend and
// *weighted.TreapRun[K] for the weighted one.
type Run any

// Backend is the single-shard dynamic structure the sharding engine is
// generic over. A backend stores items of type I, each carrying a routing
// key of type K (for the unweighted instantiation I = K); the engine owns
// all locking, so a backend only needs plain single-threaded updates plus
// read-only queries.
//
// The contract that makes cross-shard sampling exact:
//
//   - RangeStats reports the in-range item count and the in-range sampling
//     mass (the key count for unweighted backends, the total weight for
//     weighted ones). The engine splits a query's t samples over shards
//     with a multinomial proportional to mass.
//   - SampleRunAppend must draw each sample with probability proportional
//     to its mass among the backend's own [lo, hi] contents, and must be
//     read-only (no tree rotations, no internal scratch), so that many
//     goroutines holding a shared lock can sample one shard concurrently
//     through their own runs.
type Backend[K cmp.Ordered, I any] interface {
	// Insert stores one item (duplicate keys allowed). Items reaching a
	// backend were validated by the engine's exported wrappers.
	Insert(item I)
	// Delete removes one occurrence of key, reporting whether one existed.
	Delete(key K) bool
	// Len returns the number of stored items.
	Len() int
	// Contains reports whether key is stored at least once.
	Contains(key K) bool
	// Count returns the number of items with keys in [lo, hi].
	Count(lo, hi K) int
	// RangeStats returns the in-range item count and sampling mass.
	RangeStats(lo, hi K) (count int, mass float64)
	// SampleRunAppend appends t mass-proportional samples from [lo, hi] to
	// dst through caller-owned run scratch. Read-only; safe for concurrent
	// callers each owning their run and rng.
	SampleRunAppend(run Run, dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error)
	// AppendRange appends the keys in [lo, hi] in sorted order.
	AppendRange(dst []K, lo, hi K) []K
	// AppendItems appends every stored item in key order — the key export
	// the engine rebuilds equi-depth splits from during Rebalance.
	AppendItems(dst []I) []I
	// MinKey and MaxKey return the smallest and largest stored keys. Only
	// called when Len() > 0 (shard-interval validation).
	MinKey() K
	MaxKey() K
	// Validate checks the backend's internal invariants (tests).
	Validate() error
}

// backendOps bundles the per-instantiation hooks the engine needs beyond
// the Backend interface: construction (which an interface cannot express),
// key extraction for routing, and the instantiation's error vocabulary.
type backendOps[K cmp.Ordered, I any, B Backend[K, I]] struct {
	// new returns an empty backend (one fresh shard).
	new func() B
	// fromSorted bulk-loads a backend from items sorted by key. The engine
	// only calls it with slices it sorted (or verified) itself.
	fromSorted func(items []I) B
	// keyOf extracts an item's routing key.
	keyOf func(I) K
	// sortItems sorts a batch by key (stably, so equal-key items keep
	// their caller-supplied order).
	sortItems func([]I)
	// newRun returns fresh sampling scratch for SampleRunAppend.
	newRun func() Run
	// zeroMass is returned when a sampled range holds items but no mass
	// (weighted: all weights zero). Unreachable for unit-mass backends.
	zeroMass error
}
