package shard

import (
	"cmp"
	"slices"

	"github.com/irsgo/irs/internal/chunks"
	"github.com/irsgo/irs/internal/core"
	"github.com/irsgo/irs/internal/xrand"
)

// dynBackend adapts core.Dynamic — the paper's chunked-list structure — to
// the Backend interface: items are bare keys and every key has unit
// sampling mass, so RangeStats reports the count twice and cross-shard
// queries reduce to the exact count-proportional multinomial.
type dynBackend[K cmp.Ordered] struct {
	dyn *core.Dynamic[K]
}

var _ Backend[int, int] = (*dynBackend[int])(nil)

func (b *dynBackend[K]) Insert(key K)        { b.dyn.Insert(key) }
func (b *dynBackend[K]) Delete(key K) bool   { return b.dyn.Delete(key) }
func (b *dynBackend[K]) Len() int            { return b.dyn.Len() }
func (b *dynBackend[K]) Contains(key K) bool { return b.dyn.Contains(key) }
func (b *dynBackend[K]) Count(lo, hi K) int  { return b.dyn.Count(lo, hi) }
func (b *dynBackend[K]) Validate() error     { return b.dyn.Validate() }
func (b *dynBackend[K]) MinKey() K           { return b.dyn.SelectRank(0) }
func (b *dynBackend[K]) MaxKey() K           { return b.dyn.SelectRank(b.dyn.Len() - 1) }

func (b *dynBackend[K]) RangeStats(lo, hi K) (int, float64) {
	n := b.dyn.Count(lo, hi)
	return n, float64(n)
}

func (b *dynBackend[K]) SampleRunAppend(run Run, dst []K, lo, hi K, t int, rng *xrand.RNG) ([]K, error) {
	return b.dyn.SampleRunAppend(run.(*chunks.Run[K]), dst, lo, hi, t, rng)
}

func (b *dynBackend[K]) AppendRange(dst []K, lo, hi K) []K {
	return b.dyn.AppendRange(dst, lo, hi)
}

func (b *dynBackend[K]) AppendItems(dst []K) []K {
	return b.dyn.AppendKeys(dst)
}

// dynOps wires the unweighted instantiation's construction hooks.
func dynOps[K cmp.Ordered]() backendOps[K, K, *dynBackend[K]] {
	return backendOps[K, K, *dynBackend[K]]{
		new: func() *dynBackend[K] { return &dynBackend[K]{dyn: core.NewDynamic[K]()} },
		fromSorted: func(keys []K) *dynBackend[K] {
			d, err := core.NewDynamicFromSorted(keys)
			if err != nil {
				panic("shard: sorted segment rejected: " + err.Error())
			}
			return &dynBackend[K]{dyn: d}
		},
		keyOf:     func(k K) K { return k },
		sortItems: func(s []K) { slices.Sort(s) },
		newRun:    func() Run { return new(chunks.Run[K]) },
		// Unit mass: a nonempty range always has positive mass, so this is
		// unreachable; ErrEmptyRange keeps the failure mode sane anyway.
		zeroMass: core.ErrEmptyRange,
	}
}

// Concurrent is the sharded, concurrency-safe dynamic IRS structure: the
// engine instantiated over core.Dynamic. All methods may be called from any
// number of goroutines simultaneously; the only non-shareable argument is
// the *xrand.RNG passed to sampling calls, which each goroutine must own
// (derive per-goroutine streams with Split).
type Concurrent[K cmp.Ordered] struct {
	engine[K, K, *dynBackend[K]]
}

var _ core.Sampler[int] = (*Concurrent[int])(nil)

// AppendKeys appends every stored key in sorted order — a consistent
// point-in-time export taken under all shard read locks. O(n). It is the
// unweighted spelling of the engine's AppendAllItems (items are keys), the
// export path snapshots serialize.
func (c *Concurrent[K]) AppendKeys(dst []K) []K {
	return c.AppendAllItems(dst)
}

// New returns an empty Concurrent that will grow toward target shards as
// data arrives (split points are learned by the automatic rebalance once
// shards fill up). target < 1 is treated as 1. Equivalent to NewSeeded with
// seed 0.
func New[K cmp.Ordered](target int) *Concurrent[K] {
	return NewSeeded[K](target, 0)
}

// NewSeeded is New with an explicit seed anchoring the structure's
// NewStream sequence, the symmetric counterpart of NewWeighted's seed
// parameter. The seed never influences any sampling distribution.
func NewSeeded[K cmp.Ordered](target int, seed uint64) *Concurrent[K] {
	c := &Concurrent[K]{}
	c.init(dynOps[K](), target, seed)
	return c
}

// NewFromSorted bulk-loads a Concurrent from sorted keys, learning
// equi-depth split points so each of the (up to) shards shards starts with
// an equal share of the data. Returns core.ErrUnsorted on unsorted input.
// Equivalent to NewFromSortedSeeded with seed 0.
func NewFromSorted[K cmp.Ordered](keys []K, shards int) (*Concurrent[K], error) {
	return NewFromSortedSeeded(keys, shards, 0)
}

// NewFromSortedSeeded is NewFromSorted with an explicit seed anchoring the
// structure's NewStream sequence.
func NewFromSortedSeeded[K cmp.Ordered](keys []K, shards int, seed uint64) (*Concurrent[K], error) {
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return nil, core.ErrUnsorted
		}
	}
	c := NewSeeded[K](shards, seed)
	c.rebuildFromSorted(keys, shards)
	return c, nil
}

// NewFromSplits returns an empty Concurrent with len(splits)+1 shards and
// fixed routing at the given sorted split points: the layout is never
// changed automatically (no auto-rebalance), so duplicated split points
// produce permanently empty middle shards, and an intentionally skewed
// layout stays put. An explicit Rebalance call is the one exception — it
// abandons the fixed layout for learned equi-depth splits. Returns
// core.ErrUnsorted if splits are not in non-decreasing order.
func NewFromSplits[K cmp.Ordered](splits []K) (*Concurrent[K], error) {
	for i := 1; i < len(splits); i++ {
		if splits[i-1] > splits[i] {
			return nil, core.ErrUnsorted
		}
	}
	c := New[K](len(splits) + 1)
	c.applySplits(splits)
	return c, nil
}
