package shard

import (
	"encoding/binary"
	"slices"
	"testing"

	"github.com/irsgo/irs/internal/xrand"
)

// FuzzShardRouting checks the partition invariants under arbitrary split
// layouts and key sets: every key routes to exactly one shard and lands
// inside that shard's interval, per-shard counts sum to the whole, and
// cross-shard range counts match a brute-force reference. Degenerate
// layouts — duplicate splits, all keys equal, keys straddling split values
// exactly — are exactly what the byte-driven corpus explores.
func FuzzShardRouting(f *testing.F) {
	f.Add([]byte{2, 10, 0, 20, 0, 5, 0, 10, 0, 15, 0, 20, 0, 25, 0})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{5, 7, 0, 7, 0, 7, 0, 7, 0, 7, 0, 7, 0, 7, 0}) // duplicate splits and keys
	f.Add([]byte{8, 255, 255, 0, 0, 128, 1, 64, 2, 32, 3, 16, 4, 8, 5, 4, 6, 2, 7})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// Byte 0: split count (0..8). Then 2-byte little-endian values:
		// first the splits, then the keys. The int16 domain is small enough
		// that keys collide with splits and each other constantly.
		nSplits := int(data[0]) % 9
		data = data[1:]
		vals := make([]int, 0, len(data)/2)
		for len(data) >= 2 {
			vals = append(vals, int(int16(binary.LittleEndian.Uint16(data))))
			data = data[2:]
		}
		if len(vals) < nSplits {
			nSplits = len(vals)
		}
		splits := append([]int(nil), vals[:nSplits]...)
		slices.Sort(splits)
		keys := vals[nSplits:]
		if len(keys) > 256 {
			keys = keys[:256]
		}

		c, err := NewFromSplits(splits)
		if err != nil {
			t.Fatalf("sorted splits rejected: %v", err)
		}

		// Routing: every key maps to exactly one shard, and that shard's
		// interval [splits[i-1], splits[i]) contains it.
		for _, k := range keys {
			i := c.route(k)
			if i < 0 || i >= len(c.shards) {
				t.Fatalf("route(%d) = %d with %d shards", k, i, len(c.shards))
			}
			if i > 0 && k < splits[i-1] {
				t.Fatalf("key %d routed to shard %d below its lower bound %d", k, i, splits[i-1])
			}
			if i < len(splits) && k >= splits[i] {
				t.Fatalf("key %d routed to shard %d at/above its upper bound %d", k, i, splits[i])
			}
		}

		c.InsertBatch(keys)
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}

		// Per-shard occupancy sums to the whole.
		st := c.Stats()
		sum := 0
		for _, n := range st.PerShard {
			sum += n
		}
		if sum != len(keys) || st.Len != len(keys) {
			t.Fatalf("shard occupancies sum to %d (stats len %d), want %d", sum, st.Len, len(keys))
		}

		// Cross-shard range counts match brute force, including ranges with
		// endpoints exactly on split values.
		probes := append([]int(nil), splits...)
		probes = append(probes, keys...)
		if len(probes) > 32 {
			probes = probes[:32]
		}
		for _, lo := range probes {
			for _, hi := range probes {
				want := 0
				for _, k := range keys {
					if k >= lo && k <= hi {
						want++
					}
				}
				if got := c.Count(lo, hi); got != want {
					t.Fatalf("Count(%d, %d) = %d, want %d", lo, hi, got, want)
				}
			}
		}

		// Samples drawn across shards are always stored, in-range keys.
		if len(keys) > 0 {
			lo := slices.Min(keys)
			hi := slices.Max(keys)
			rng := xrand.New(uint64(len(keys))*31 + uint64(nSplits))
			out, err := c.Sample(lo, hi, 16, rng)
			if err != nil {
				t.Fatalf("Sample over full key span: %v", err)
			}
			for _, k := range out {
				if k < lo || k > hi || c.Count(k, k) == 0 {
					t.Fatalf("sample %d invalid (range [%d, %d])", k, lo, hi)
				}
			}
		}
	})
}
