// Repository-level benchmarks: one testing.B benchmark per experiment in
// EXPERIMENTS.md (E1–E13). Each benchmark times the core operation of its
// experiment; the full parameter sweeps (and rendered tables) live in
// cmd/irsbench, which shares the internal/bench harness.
//
// Run: go test -bench=. -benchmem
package irs_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	irs "github.com/irsgo/irs"
	"github.com/irsgo/irs/internal/bench"
	"github.com/irsgo/irs/internal/core"
	"github.com/irsgo/irs/internal/em"
	"github.com/irsgo/irs/internal/weighted"
	"github.com/irsgo/irs/internal/workload"
	"github.com/irsgo/irs/internal/xrand"
)

func staticFixture(b *testing.B, n int, sel float64) (*irs.Static[float64], []workload.Range, *irs.RNG) {
	b.Helper()
	rng := xrand.New(uint64(n))
	keys := workload.Keys(workload.Uniform, n, rng)
	s, err := irs.NewStaticFromSorted(keys)
	if err != nil {
		b.Fatal(err)
	}
	return s, workload.RangesWithSelectivity(keys, sel, 64, rng), rng
}

func dynamicFixture(b *testing.B, n int, sel float64) (*irs.Dynamic[float64], []workload.Range, *irs.RNG, []float64) {
	b.Helper()
	rng := xrand.New(uint64(n) + 1)
	keys := workload.Keys(workload.Uniform, n, rng)
	d, err := irs.NewDynamicFromSorted(keys)
	if err != nil {
		b.Fatal(err)
	}
	return d, workload.RangesWithSelectivity(keys, sel, 64, rng), rng, keys
}

// BenchmarkE1StaticVsN — static query, t=64, across n (per-sample cost must
// stay flat).
func BenchmarkE1StaticVsN(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, ranges, rng := staticFixture(b, n, 0.01)
			buf := make([]float64, 0, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := ranges[i%len(ranges)]
				buf = buf[:0]
				buf, _ = s.SampleAppend(buf, r.Lo, r.Hi, 64, rng)
			}
		})
	}
}

// BenchmarkE2StaticVsT — static query across t at fixed n.
func BenchmarkE2StaticVsT(b *testing.B) {
	s, ranges, rng := staticFixture(b, 1_000_000, 0.01)
	for _, t := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			buf := make([]float64, 0, t)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := ranges[i%len(ranges)]
				buf = buf[:0]
				buf, _ = s.SampleAppend(buf, r.Lo, r.Hi, t, rng)
			}
		})
	}
}

// BenchmarkE3StaticWOR — without-replacement sampling via Floyd.
func BenchmarkE3StaticWOR(b *testing.B) {
	s, ranges, rng := staticFixture(b, 1_000_000, 0.1)
	for _, t := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := ranges[i%len(ranges)]
				if _, err := s.SampleWithoutReplacement(r.Lo, r.Hi, t, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4DynamicVsN / VsT — dynamic query scaling.
func BenchmarkE4DynamicVsN(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d, ranges, rng, _ := dynamicFixture(b, n, 0.01)
			buf := make([]float64, 0, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := ranges[i%len(ranges)]
				buf = buf[:0]
				buf, _ = d.SampleAppend(buf, r.Lo, r.Hi, 64, rng)
			}
		})
	}
}

func BenchmarkE4DynamicVsT(b *testing.B) {
	d, ranges, rng, _ := dynamicFixture(b, 1_000_000, 0.01)
	for _, t := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			buf := make([]float64, 0, t)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := ranges[i%len(ranges)]
				buf = buf[:0]
				buf, _ = d.SampleAppend(buf, r.Lo, r.Hi, t, rng)
			}
		})
	}
}

// BenchmarkE5Update — steady-state insert/delete pairs.
func BenchmarkE5Update(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d, _, _, keys := dynamicFixture(b, n, 0.01)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[i%len(keys)]
				if i%2 == 0 {
					d.Insert(k + 0.5)
				} else {
					d.Delete(k + 0.5)
				}
			}
		})
	}
}

// BenchmarkE6Baselines — the three query strategies at a selectivity where
// IRS wins decisively (1%) and one where report+sample is competitive
// (0.001%).
func BenchmarkE6Baselines(b *testing.B) {
	n := 1_000_000
	rng := xrand.New(6)
	keys := workload.Keys(workload.Uniform, n, rng)
	d, err := irs.NewDynamicFromSorted(keys)
	if err != nil {
		b.Fatal(err)
	}
	tr := irs.NewTreapSampler[float64](7)
	for _, k := range keys {
		tr.Insert(k)
	}
	rep, err := irs.NewReportSamplerFromSorted(keys)
	if err != nil {
		b.Fatal(err)
	}
	for _, sel := range []float64{0.00001, 0.01} {
		ranges := workload.RangesWithSelectivity(keys, sel, 64, rng)
		for name, s := range map[string]core.Sampler[float64]{
			"chunked": d, "treap": tr, "report": rep,
		} {
			b.Run(fmt.Sprintf("sel=%g/%s", sel, name), func(b *testing.B) {
				buf := make([]float64, 0, 64)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r := ranges[i%len(ranges)]
					buf = buf[:0]
					buf, _ = s.SampleAppend(buf, r.Lo, r.Hi, 64, rng)
				}
			})
		}
	}
}

// BenchmarkE7Space — build cost and resident footprint (bytes/op reported
// via the benchmark's allocation tracking; Footprint() is reported by the
// harness table).
func BenchmarkE7Space(b *testing.B) {
	rng := xrand.New(7)
	keys := workload.Keys(workload.Uniform, 100_000, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := irs.NewDynamicFromSorted(keys)
		if err != nil {
			b.Fatal(err)
		}
		if d.Len() == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkE8Uniformity — cost of drawing the sample stream the chi-square
// test consumes (the test itself runs in the harness and test suite).
func BenchmarkE8Uniformity(b *testing.B) {
	d, ranges, rng, _ := dynamicFixture(b, 200_000, 0.5)
	buf := make([]float64, 0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ranges[i%len(ranges)]
		buf = buf[:0]
		buf, _ = d.SampleAppend(buf, r.Lo, r.Hi, 1024, rng)
	}
}

// BenchmarkE9Independence — repeated identical queries (fresh randomness
// each time).
func BenchmarkE9Independence(b *testing.B) {
	d, ranges, rng, _ := dynamicFixture(b, 200_000, 0.5)
	r := ranges[0]
	buf := make([]float64, 0, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, _ = d.SampleAppend(buf, r.Lo, r.Hi, 100, rng)
	}
}

// BenchmarkE10Rejection — sampling with probe accounting enabled.
func BenchmarkE10Rejection(b *testing.B) {
	d, ranges, rng, _ := dynamicFixture(b, 1_000_000, 0.01)
	buf := make([]float64, 0, 64)
	probes := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ranges[i%len(ranges)]
		buf, probes = buf[:0], probes[:0]
		buf, probes, _ = d.SampleProbesAppend(buf, r.Lo, r.Hi, 64, rng, probes)
	}
}

// BenchmarkE11Weighted — the four weighted samplers at t=64.
func BenchmarkE11Weighted(b *testing.B) {
	n := 1 << 17
	rng := xrand.New(11)
	keys := workload.Keys(workload.Uniform, n, rng)
	zw := workload.ZipfWeights(n, 1.1, rng)
	items := make([]weighted.Item[float64], n)
	for i := range items {
		items[i] = weighted.Item[float64]{Key: keys[i], Weight: zw[i]}
	}
	seg, err := weighted.NewSegmentAlias(items)
	if err != nil {
		b.Fatal(err)
	}
	bkt, err := weighted.NewBucket(items)
	if err != nil {
		b.Fatal(err)
	}
	fen, err := weighted.NewFenwick(items)
	if err != nil {
		b.Fatal(err)
	}
	nv, err := weighted.NewNaiveCDF(items)
	if err != nil {
		b.Fatal(err)
	}
	ranges := workload.RangesWithSelectivity(keys, 0.1, 64, rng)
	for name, s := range map[string]weighted.Sampler[float64]{
		"segalias": seg, "bucket": bkt, "fenwick": fen, "naive": nv,
	} {
		b.Run(name, func(b *testing.B) {
			buf := make([]float64, 0, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := ranges[i%len(ranges)]
				buf = buf[:0]
				buf, _ = s.SampleAppend(buf, r.Lo, r.Hi, 64, rng)
			}
		})
	}
}

// BenchmarkE12ExternalMemory — EM sampling vs scanning (wall time here;
// I/O counts in the harness table).
func BenchmarkE12ExternalMemory(b *testing.B) {
	dev, err := em.NewDevice(4096)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := em.NewPool(dev, 256)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(12)
	keys := workload.IntKeys(workload.Uniform, 400_000, rng)
	tree, err := em.BulkLoad(pool, keys, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := keys[40_000], keys[360_000]
	b.Run("sample", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tree.SampleRange(lo, hi, 16, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tree.ScanSample(lo, hi, 16, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE13Mixed — 50/50 query/update interleaving.
func BenchmarkE13Mixed(b *testing.B) {
	d, ranges, rng, keys := dynamicFixture(b, 1_000_000, 0.01)
	buf := make([]float64, 0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			r := ranges[i%len(ranges)]
			buf = buf[:0]
			buf, _ = d.SampleAppend(buf, r.Lo, r.Hi, 32, rng)
		} else {
			k := keys[i%len(keys)]
			if i%4 == 1 {
				d.Insert(k + 0.25)
			} else {
				d.Delete(k + 0.25)
			}
		}
	}
}

// BenchmarkE16ConcurrentOverhead — single-thread cost of the sharded
// concurrent layer relative to the plain Dynamic it wraps (routing, lock,
// per-shard counts, multinomial split).
func BenchmarkE16ConcurrentOverhead(b *testing.B) {
	rng := xrand.New(16)
	keys := workload.Keys(workload.Uniform, 1_000_000, rng)
	ranges := workload.RangesWithSelectivity(keys, 0.01, 64, rng)
	d, err := irs.NewDynamicFromSorted(keys)
	if err != nil {
		b.Fatal(err)
	}
	samplers := map[string]core.Sampler[float64]{"dynamic": d}
	for _, p := range []int{1, 8} {
		c, err := irs.NewConcurrentFromSorted(keys, p)
		if err != nil {
			b.Fatal(err)
		}
		samplers[fmt.Sprintf("concurrent%d", p)] = c
	}
	for name, s := range samplers {
		b.Run(name, func(b *testing.B) {
			buf := make([]float64, 0, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := ranges[i%len(ranges)]
				buf = buf[:0]
				buf, _ = s.SampleAppend(buf, r.Lo, r.Hi, 64, rng)
			}
		})
	}
}

// BenchmarkE16SampleManyScaling — aggregate SampleMany throughput with
// GOMAXPROCS parallel clients and a live background writer, single-shard vs
// sharded. Each op is one SampleMany batch of 16 queries x 64 samples; the
// sharded configuration must scale >= 2x over shards=1 on multi-core
// hardware (run with -cpu to sweep client parallelism).
func BenchmarkE16SampleManyScaling(b *testing.B) {
	rng := xrand.New(17)
	keys := workload.Keys(workload.Uniform, 1_000_000, rng)
	ranges := workload.RangesWithSelectivity(keys, 0.01, 256, rng)
	shardCounts := []int{1, runtime.GOMAXPROCS(0)}
	if shardCounts[1] < 2 {
		shardCounts[1] = 2
	}
	for _, p := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", p), func(b *testing.B) {
			c, err := irs.NewConcurrentFromSorted(keys, p)
			if err != nil {
				b.Fatal(err)
			}
			var stop atomic.Bool
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // continuous write churn in a disjoint key block
				defer wg.Done()
				wrng := xrand.New(18)
				batch := make([]float64, 256)
				for !stop.Load() {
					for i := range batch {
						batch[i] = wrng.Float64Range(2e9, 3e9)
					}
					c.InsertBatch(batch)
					c.DeleteBatch(batch)
				}
			}()
			var seed atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				grng := xrand.New(100 + seed.Add(1))
				qs := make([]irs.ConcurrentQuery[float64], 16)
				for pb.Next() {
					for i := range qs {
						r := ranges[int(grng.Uint64n(uint64(len(ranges))))]
						qs[i] = irs.ConcurrentQuery[float64]{Lo: r.Lo, Hi: r.Hi, T: 64}
					}
					if _, err := c.SampleMany(qs, grng); err != nil {
						// b.Fatal is not legal from a RunParallel worker.
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
		})
	}
}

// BenchmarkE16InsertBatch — lock amortization: batched inserts vs the same
// keys inserted one call at a time.
func BenchmarkE16InsertBatch(b *testing.B) {
	rng := xrand.New(19)
	keys := workload.Keys(workload.Uniform, 100_000, rng)
	const batch = 1024
	fresh := make([]float64, batch)
	for mode, run := range map[string]func(c *irs.Concurrent[float64]){
		"point": func(c *irs.Concurrent[float64]) {
			for _, k := range fresh {
				c.Insert(k)
			}
		},
		"batch": func(c *irs.Concurrent[float64]) { c.InsertBatch(fresh) },
	} {
		b.Run(mode, func(b *testing.B) {
			c, err := irs.NewConcurrentFromSorted(keys, 8)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := range fresh {
					fresh[j] = rng.Float64Range(0, 1e9)
				}
				b.StartTimer()
				run(c)
			}
		})
	}
}

// BenchmarkHarnessQuick runs the full harness in quick mode once per
// iteration — a smoke benchmark proving table generation end to end.
func BenchmarkHarnessQuick(b *testing.B) {
	if testing.Short() {
		b.Skip("harness smoke run")
	}
	for i := 0; i < b.N; i++ {
		e, _ := bench.ByID("E7")
		if _, err := e.Run(bench.Config{Quick: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
