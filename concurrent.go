package irs

import (
	"cmp"

	"github.com/irsgo/irs/internal/shard"
)

// Concurrent is the sharded, concurrency-safe dynamic IRS structure: the
// key space is split into contiguous shards, each wrapping a Dynamic behind
// its own reader/writer lock, and cross-shard queries distribute their t
// samples over shards with an exact multinomial split so uniformity and
// independence are preserved bit-for-bit (see internal/shard for the
// design).
//
// Every method is safe for any number of concurrent goroutines. The one
// rule is the library-wide RNG contract: an *RNG may not be shared, so each
// sampling goroutine passes its own (derive streams with RNG.Split).
//
// Prefer the batch entry points on hot paths: InsertBatch and SampleMany
// acquire each involved shard lock once per batch instead of once per key
// or query, and SampleMany additionally answers every query in the batch
// against one consistent snapshot.
type Concurrent[K cmp.Ordered] = shard.Concurrent[K]

// ConcurrentQuery is one range-sampling request in a Concurrent.SampleMany
// batch: draw T samples from [Lo, Hi].
type ConcurrentQuery[K cmp.Ordered] = shard.Query[K]

// ConcurrentStats is a consistent snapshot of a Concurrent's topology.
type ConcurrentStats = shard.Stats

// NewConcurrent returns an empty Concurrent that grows toward shards
// shards as data arrives: split points are learned automatically once
// there is enough data to balance, and re-learned when a shard drifts far
// from its fair share. Equivalent to NewConcurrentSeeded with seed 0.
func NewConcurrent[K cmp.Ordered](shards int) *Concurrent[K] {
	return shard.New[K](shards)
}

// NewConcurrentSeeded is NewConcurrent with an explicit seed, the symmetric
// counterpart of NewWeightedConcurrent's seed parameter: it anchors the
// structure's NewStream sequence (see the seeding contract in the package
// documentation), so consumers that draw their sampling RNGs from the
// structure — the irsd serving layer does — replay exactly when they
// consume streams and issue queries in a deterministic order (for irsd,
// serialized requests and a single flusher). The seed never influences
// any sampling distribution.
func NewConcurrentSeeded[K cmp.Ordered](shards int, seed uint64) *Concurrent[K] {
	return shard.NewSeeded[K](shards, seed)
}

// NewConcurrentFromSorted bulk-loads a Concurrent from sorted keys,
// learning equi-depth split points so each shard starts with an equal
// share. Returns ErrUnsorted on unsorted input. Equivalent to
// NewConcurrentFromSortedSeeded with seed 0.
func NewConcurrentFromSorted[K cmp.Ordered](keys []K, shards int) (*Concurrent[K], error) {
	return shard.NewFromSorted(keys, shards)
}

// NewConcurrentFromSortedSeeded is NewConcurrentFromSorted with an explicit
// seed anchoring the structure's NewStream sequence.
func NewConcurrentFromSortedSeeded[K cmp.Ordered](keys []K, shards int, seed uint64) (*Concurrent[K], error) {
	return shard.NewFromSortedSeeded(keys, shards, seed)
}

// NewConcurrentFromSplits returns an empty Concurrent with fixed routing at
// the given sorted split points (len(splits)+1 shards): shard i holds keys
// k with splits[i-1] <= k < splits[i]. The layout is never changed
// automatically; an explicit Rebalance call switches the structure to
// learned equi-depth splits. Returns ErrUnsorted if splits are not sorted.
func NewConcurrentFromSplits[K cmp.Ordered](splits []K) (*Concurrent[K], error) {
	return shard.NewFromSplits(splits)
}
