module github.com/irsgo/irs

go 1.24
