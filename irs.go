// Package irs implements independent range sampling (IRS) in one dimension,
// reproducing the data structures of "Independent Range Sampling" (Hu, Qiao,
// Tao — PODS 2014) as a production-quality Go library, together with
// weighted sampling extensions from the follow-up literature.
//
// # The problem
//
// Store a multiset of ordered keys so that a query (lo, hi, t) returns t
// elements of the multiset lying in [lo, hi] such that every sample is
// uniformly distributed over the range contents, the t samples are mutually
// independent, and they are independent of the results of all past queries.
// The last property is what separates IRS from "materialize a sample once
// and serve it repeatedly" — repeated queries must keep producing fresh
// randomness, which is what downstream statistics require.
//
// # Structures
//
//   - Static: immutable sorted array; O(n) space, O(log n + t) query,
//     plus O(log n + t) sampling without replacement (Floyd's algorithm).
//   - Dynamic: the paper's dynamic structure; O(n) space, O(log n)
//     amortized Insert/Delete, O(log n + t) expected query.
//   - Concurrent: the sharded, concurrency-safe layer over Dynamic —
//     contiguous key-space shards behind per-shard reader/writer locks,
//     cross-shard queries split by an exact multinomial, and batch entry
//     points (InsertBatch, SampleMany) that amortize lock acquisition.
//   - TreapSampler, ReportSampler: the classical baselines (rank-select at
//     O(log n) per sample; report-then-sample at O(|range|) per query),
//     provided for comparison and for applications with tiny ranges.
//   - WeightedSegmentAlias, WeightedBucket, WeightedFenwick,
//     WeightedNaiveCDF, WeightedTreap: the weighted extension — samples
//     drawn with probability proportional to per-key weights (see
//     weighted.go); WeightedTreap is the fully dynamic member.
//   - WeightedConcurrent: the sharded, concurrency-safe layer over
//     WeightedTreap — the same engine as Concurrent, with the cross-shard
//     multinomial split proportional to per-shard range weight (see
//     weightedconcurrent.go).
//
// # Randomness and concurrency
//
// Every sampling method takes an explicit *RNG. Deterministic seeding makes
// experiments reproducible, and statistical tests can replay exact streams.
// An *RNG must never be shared between goroutines; derive an independent
// per-goroutine stream with RNG.Split.
//
// The seeding contract: a structure's seed parameter never influences any
// sampling distribution — every query is exactly uniform (or exactly
// weight-proportional) for every seed. What a seed determines is
// reproducibility plumbing:
//
//   - treap rebalancing priorities (weighted structures), which affect tree
//     shape and therefore only running time;
//   - the NewStream sequence of Concurrent and WeightedConcurrent: the i-th
//     NewStream call returns the i-th generator of a fixed seed-determined
//     sequence, so consumers that draw their RNGs from the structure — such
//     as the irsd serving layer — replay sampling exactly for a fixed seed
//     when streams are consumed and queries issued in a deterministic
//     order (for irsd: serialized requests, single flusher).
//
// NewConcurrentSeeded and NewConcurrentFromSortedSeeded are the seeded
// unweighted constructors, symmetric with NewWeightedConcurrent's seed
// parameter; the unseeded constructors are the seed-0 special case.
//
// The concurrency contract has three tiers:
//
//   - Static and the other immutable structures (the static weighted
//     samplers included) are safe for any number of concurrent readers,
//     each using its own RNG.
//   - Dynamic, TreapSampler, ReportSampler, and WeightedTreap are
//     single-writer: no access of any kind may run concurrently with an
//     Insert, Delete, or UpdateWeight. Between mutations, their query
//     paths that draw through caller-owned scratch (Dynamic.SampleRunAppend
//     and the WeightedTreap run API in internal/weighted) admit any number
//     of concurrent readers — the property the sharded layer builds on.
//   - Concurrent and WeightedConcurrent are fully thread-safe: inserts,
//     deletes, weight updates, counts, and sampling queries may all run
//     simultaneously from any number of goroutines, and their statistical
//     guarantees (per-sample uniformity or weight-proportionality,
//     independence) hold for every value returned under any interleaving,
//     because each query measures and draws against one locked snapshot.
//
// Example:
//
//	s := irs.NewStatic([]float64{3.1, 1.4, 5.9, 2.6})
//	rng := irs.NewRNG(42)
//	samples, err := s.Sample(2.0, 6.0, 3, rng)
package irs

import (
	"cmp"
	"io"

	"github.com/irsgo/irs/internal/core"
	"github.com/irsgo/irs/internal/xrand"
)

// RNG is the deterministic pseudo-random generator consumed by every
// sampler (xoshiro256++). Create one with NewRNG; derive independent
// per-goroutine streams with Split.
type RNG = xrand.RNG

// NewRNG returns an RNG seeded deterministically from seed.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// Errors returned by samplers.
var (
	// ErrEmptyRange: t > 0 samples were requested from a range holding no
	// keys.
	ErrEmptyRange = core.ErrEmptyRange
	// ErrInvalidCount: a negative sample count was requested.
	ErrInvalidCount = core.ErrInvalidCount
	// ErrUnsorted: a FromSorted constructor received unsorted keys.
	ErrUnsorted = core.ErrUnsorted
)

// Sampler is the interface shared by all dynamic unweighted samplers.
type Sampler[K cmp.Ordered] = core.Sampler[K]

// Static is the immutable IRS structure: a sorted array answering sampling
// queries in O(log n + t) worst case, with or without replacement.
type Static[K cmp.Ordered] = core.Static[K]

// NewStatic builds a Static from keys in any order (copied and sorted).
func NewStatic[K cmp.Ordered](keys []K) *Static[K] { return core.NewStatic(keys) }

// NewStaticFromSorted builds a Static from non-decreasing keys in O(n).
func NewStaticFromSorted[K cmp.Ordered](keys []K) (*Static[K], error) {
	return core.NewStaticFromSorted(keys)
}

// Dynamic is the paper's dynamic IRS structure: O(n) space, O(log n)
// amortized updates, O(log n + t) expected queries.
type Dynamic[K cmp.Ordered] = core.Dynamic[K]

// NewDynamic returns an empty Dynamic sampler.
func NewDynamic[K cmp.Ordered]() *Dynamic[K] { return core.NewDynamic[K]() }

// NewDynamicFromSorted bulk-loads a Dynamic from sorted keys in O(n).
func NewDynamicFromSorted[K cmp.Ordered](keys []K) (*Dynamic[K], error) {
	return core.NewDynamicFromSorted(keys)
}

// NewDynamicFromUnsorted bulk-loads a Dynamic from keys in any order.
func NewDynamicFromUnsorted[K cmp.Ordered](keys []K) *Dynamic[K] {
	return core.NewDynamicFromUnsorted(keys)
}

// TreapSampler is the classical baseline paying O(log n) per sample
// (rank-select on an order-statistic treap).
type TreapSampler[K cmp.Ordered] = core.TreapSampler[K]

// NewTreapSampler returns an empty treap-backed baseline sampler. The seed
// drives tree rebalancing only.
func NewTreapSampler[K cmp.Ordered](seed uint64) *TreapSampler[K] {
	return core.NewTreapSampler[K](seed)
}

// ReportSampler is the report-then-sample baseline: O(log n + |range| + t)
// per query. Competitive only when ranges are about as small as t.
type ReportSampler[K cmp.Ordered] = core.ReportSampler[K]

// NewReportSampler returns an empty report-then-sample baseline.
func NewReportSampler[K cmp.Ordered]() *ReportSampler[K] {
	return core.NewReportSampler[K]()
}

// NewReportSamplerFromSorted bulk-loads the baseline from sorted keys.
func NewReportSamplerFromSorted[K cmp.Ordered](keys []K) (*ReportSampler[K], error) {
	return core.NewReportSamplerFromSorted(keys)
}

// ErrBadSnapshot is returned by LoadStatic and LoadDynamic for streams
// that are not valid snapshots of the requested structure and key type.
var ErrBadSnapshot = core.ErrBadSnapshot

// LoadStatic reads a snapshot written by Static.Save.
func LoadStatic[K cmp.Ordered](r io.Reader) (*Static[K], error) {
	return core.LoadStatic[K](r)
}

// LoadDynamic reads a snapshot written by Dynamic.Save, rebuilding the
// structure in O(n).
func LoadDynamic[K cmp.Ordered](r io.Reader) (*Dynamic[K], error) {
	return core.LoadDynamic[K](r)
}
