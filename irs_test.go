package irs_test

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	irs "github.com/irsgo/irs"
)

// TestPublicAPISurface exercises every exported constructor and method
// through the public package, as a downstream user would.
func TestPublicAPISurface(t *testing.T) {
	rng := irs.NewRNG(1)

	s := irs.NewStatic([]int{5, 3, 9, 1, 7})
	if s.Len() != 5 || s.Count(3, 7) != 3 {
		t.Fatalf("static Len=%d Count=%d", s.Len(), s.Count(3, 7))
	}
	if _, err := irs.NewStaticFromSorted([]int{2, 1}); err != irs.ErrUnsorted {
		t.Fatalf("err = %v", err)
	}
	out, err := s.Sample(1, 9, 10, rng)
	if err != nil || len(out) != 10 {
		t.Fatalf("Sample: %v %v", out, err)
	}
	wor, err := s.SampleWithoutReplacement(1, 9, 3, rng)
	if err != nil || len(wor) != 3 {
		t.Fatalf("WOR: %v %v", wor, err)
	}

	d := irs.NewDynamic[int]()
	for i := 0; i < 1000; i++ {
		d.Insert(i)
	}
	if !d.Delete(500) || d.Len() != 999 {
		t.Fatal("dynamic update")
	}
	if _, err := d.Sample(5000, 6000, 1, rng); err != irs.ErrEmptyRange {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.Sample(0, 10, -1, rng); err != irs.ErrInvalidCount {
		t.Fatalf("err = %v", err)
	}

	d2, err := irs.NewDynamicFromSorted([]int{1, 2, 3})
	if err != nil || d2.Len() != 3 {
		t.Fatal("FromSorted")
	}
	d3 := irs.NewDynamicFromUnsorted([]int{3, 1, 2})
	if d3.Len() != 3 {
		t.Fatal("FromUnsorted")
	}

	// Baselines satisfy the same interface.
	var samplers []irs.Sampler[int]
	tr := irs.NewTreapSampler[int](7)
	rep := irs.NewReportSampler[int]()
	samplers = append(samplers, d, tr, rep)
	for _, smp := range samplers {
		smp.Insert(42)
		if smp.Count(42, 42) < 1 {
			t.Fatal("Count after insert")
		}
		if _, err := smp.SampleAppend(nil, 42, 42, 2, rng); err != nil {
			t.Fatal(err)
		}
	}
	rep2, err := irs.NewReportSamplerFromSorted([]int{1, 2})
	if err != nil || rep2.Len() != 2 {
		t.Fatal("report FromSorted")
	}

	// Weighted extension.
	items := []irs.WeightedItem[int]{{Key: 1, Weight: 1}, {Key: 2, Weight: 3}, {Key: 3, Weight: 0}}
	seg, err := irs.NewWeightedSegmentAlias(items)
	if err != nil {
		t.Fatal(err)
	}
	bkt, err := irs.NewWeightedBucket(items)
	if err != nil {
		t.Fatal(err)
	}
	fen, err := irs.NewWeightedFenwick(items)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := irs.NewWeightedNaiveCDF(items)
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range []irs.WeightedSampler[int]{seg, bkt, fen, nv} {
		if ws.Len() != 3 || ws.Count(1, 3) != 3 {
			t.Fatal("weighted metadata")
		}
		if got := ws.TotalWeight(1, 3); got != 4 {
			t.Fatalf("TotalWeight = %v", got)
		}
		out, err := ws.SampleAppend(nil, 1, 3, 100, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range out {
			if k == 3 {
				t.Fatal("sampled zero-weight key")
			}
		}
		if _, err := ws.SampleAppend(nil, 3, 3, 1, rng); err != irs.ErrZeroWeightRange {
			t.Fatalf("err = %v", err)
		}
	}
	if _, err := irs.NewWeightedFenwick([]irs.WeightedItem[int]{{Key: 1, Weight: -1}}); err != irs.ErrInvalidWeight {
		t.Fatalf("err = %v", err)
	}
}

// TestPersistenceThroughPublicAPI round-trips both structures through the
// exported Save/Load functions.
func TestPersistenceThroughPublicAPI(t *testing.T) {
	rng := irs.NewRNG(4)
	var buf bytes.Buffer

	s := irs.NewStatic([]float64{2.5, 1.5, 3.5})
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := irs.LoadStatic[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 || s2.At(0) != 1.5 {
		t.Fatal("static round trip")
	}

	d := irs.NewDynamicFromUnsorted([]int{5, 1, 3})
	buf.Reset()
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := irs.LoadDynamic[int](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 3 || !d2.Contains(3) {
		t.Fatal("dynamic round trip")
	}
	out, err := d2.Sample(1, 5, 4, rng)
	if err != nil || len(out) != 4 {
		t.Fatalf("sample after load: %v %v", out, err)
	}
	buf.Reset()
	if _, err := irs.LoadDynamic[int](&buf); !errors.Is(err, irs.ErrBadSnapshot) {
		t.Fatalf("err = %v, want ErrBadSnapshot", err)
	}
}

// TestWeightedTreapThroughPublicAPI exercises the dynamic weighted sampler
// from the exported surface.
func TestWeightedTreapThroughPublicAPI(t *testing.T) {
	rng := irs.NewRNG(5)
	wt := irs.NewWeightedTreap[string](9)
	if err := wt.Insert("ads", 10); err != nil {
		t.Fatal(err)
	}
	if err := wt.Insert("billing", 1); err != nil {
		t.Fatal(err)
	}
	if err := wt.Insert("checkout", 5); err != nil {
		t.Fatal(err)
	}
	if got := wt.TotalWeight("a", "z"); got != 16 {
		t.Fatalf("TotalWeight = %v", got)
	}
	out, err := wt.SampleAppend(nil, "a", "z", 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	ads := 0
	for _, k := range out {
		if k == "ads" {
			ads++
		}
	}
	if frac := float64(ads) / float64(len(out)); frac < 0.57 || frac > 0.68 {
		t.Fatalf("ads frequency %.3f, want ~0.625", frac)
	}
	if ok, err := wt.UpdateWeight("ads", 0); err != nil || !ok {
		t.Fatalf("UpdateWeight: %v %v", ok, err)
	}
	out, err = wt.SampleAppend(nil, "a", "z", 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range out {
		if k == "ads" {
			t.Fatal("sampled zero-weight key after update")
		}
	}

	wt2, err := irs.NewWeightedTreapFromItems(11, []irs.WeightedItem[int]{{Key: 1, Weight: 2}})
	if err != nil || wt2.Len() != 1 {
		t.Fatalf("FromItems: %v", err)
	}
}

// TestStringKeysThroughPublicAPI checks the generic surface with a
// non-numeric key type.
func TestStringKeysThroughPublicAPI(t *testing.T) {
	rng := irs.NewRNG(2)
	d := irs.NewDynamic[string]()
	words := []string{"ant", "bee", "cat", "dog", "elk", "fox"}
	for _, w := range words {
		d.Insert(w)
	}
	out, err := d.Sample("b", "e", 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range out {
		if w != "bee" && w != "cat" && w != "dog" {
			t.Fatalf("sample %q", w)
		}
	}
}

// TestCrossStructureDistributions draws from Static and Dynamic on the same
// data and compares their empirical distributions to each other and to the
// truth.
func TestCrossStructureDistributions(t *testing.T) {
	rng := irs.NewRNG(3)
	keys := make([]int, 0, 10000)
	for i := 0; i < 10000; i++ {
		keys = append(keys, int(rng.Uint64n(2000)))
	}
	sort.Ints(keys)
	st, err := irs.NewStaticFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	dy, err := irs.NewDynamicFromSorted(keys)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 500, 1500
	inRange := map[int]int{}
	total := 0
	for _, k := range keys {
		if k >= lo && k <= hi {
			inRange[k]++
			total++
		}
	}
	const draws = 200000
	for name, smp := range map[string]func() ([]int, error){
		"static":  func() ([]int, error) { return st.Sample(lo, hi, draws, rng) },
		"dynamic": func() ([]int, error) { return dy.Sample(lo, hi, draws, rng) },
	} {
		out, err := smp()
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int]int{}
		for _, v := range out {
			counts[v]++
		}
		chi2, df := 0.0, 0
		for k, mult := range inRange {
			exp := float64(draws) * float64(mult) / float64(total)
			if exp < 8 {
				continue
			}
			d := float64(counts[k]) - exp
			chi2 += d * d / exp
			df++
		}
		limit := float64(df) + 6*sqrt(2*float64(df))
		if chi2 > limit {
			t.Fatalf("%s: chi2 %.1f over %d cells (limit %.1f)", name, chi2, df, limit)
		}
	}
}

func sqrt(x float64) float64 {
	// Newton is fine for a test helper.
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func ExampleStatic() {
	s := irs.NewStatic([]float64{1.5, 2.5, 3.5, 4.5})
	rng := irs.NewRNG(9)
	n := s.Count(2.0, 4.0)
	samples, _ := s.Sample(2.0, 4.0, 2, rng)
	fmt.Println(n, len(samples))
	// Output: 2 2
}
