// Package client is the transport-agnostic client surface of the irsd
// protocol family. Three encodings reach a daemon — HTTP/JSON, HTTP binary
// frames, and the persistent multiplexed TCP transport (irsnet) — and two
// typed clients implement them: server.Client (both HTTP encodings) and
// irsnet.Client. Historically callers switched on transport by hand; this
// package names the shared surface as interfaces and provides Dial, so
// code that talks to a node — the cluster router above all — depends on
// the interface and never on a transport.
//
// Both concrete clients satisfy Conn (compile-time assertions below), with
// one error contract: server-side failures arrive as *server.APIError and
// unwrap to the server sentinels, so errors.Is(err, server.ErrOverloaded)
// answers identically no matter which wire the request took.
package client

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/irsgo/irs/server"
	"github.com/irsgo/irs/server/irsnet"
)

// Item is one insert/update element, re-exported so callers of the
// interfaces need not import package server for the carrier type.
type Item = server.Item

// Stats is the /stats document, re-exported for the same reason.
type Stats = server.Stats

// Sampler is the read surface: range sampling plus the (count, mass)
// range probe the cluster router's multinomial split is built on.
type Sampler interface {
	// Sample requests t independent samples from [lo, hi] of dataset
	// (empty selects the daemon's sole dataset).
	Sample(ctx context.Context, dataset string, lo, hi float64, t int) ([]float64, error)
	// SampleAppend is Sample appending into dst; on error dst is returned
	// unchanged.
	SampleAppend(ctx context.Context, dataset string, dst []float64, lo, hi float64, t int) ([]float64, error)
	// RangeStats returns the in-range key count and sampling mass of
	// [lo, hi].
	RangeStats(ctx context.Context, dataset string, lo, hi float64) (int, float64, error)
}

// Mutator is the write surface.
type Mutator interface {
	// InsertKeys stores keys with unit weight, returning how many were
	// stored.
	InsertKeys(ctx context.Context, dataset string, keys []float64) (int, error)
	// InsertItems stores weighted items, returning how many were stored.
	InsertItems(ctx context.Context, dataset string, items []Item) (int, error)
	// Delete removes one occurrence of each key, returning how many were
	// present and removed.
	Delete(ctx context.Context, dataset string, keys []float64) (int, error)
	// Update sets the weight of one occurrence of each item's key on a
	// weighted dataset, returning how many keys were present and
	// re-weighted.
	Update(ctx context.Context, dataset string, items []Item) (int, error)
}

// Conn is a full client session with one daemon: sampling, mutation,
// stats, and teardown.
type Conn interface {
	Sampler
	Mutator
	// Stats fetches the serving snapshot of every dataset.
	Stats(ctx context.Context) (Stats, error)
	// Close releases the session's connections. Both implementations
	// tolerate further use after Close to the extent their transport does;
	// treat a closed Conn as done.
	Close() error
}

// Both concrete clients must satisfy the full surface — this is the
// compile-time contract the router and the load harness rely on.
var (
	_ Conn = (*server.Client)(nil)
	_ Conn = (*irsnet.Client)(nil)
)

// Encodings accepted by Dial, matching irsload's -encoding vocabulary.
const (
	EncodingJSON   = "json"   // HTTP, JSON bodies
	EncodingBinary = "binary" // HTTP, compact binary frames
	EncodingTCP    = "tcp"    // persistent multiplexed TCP (irsnet)
)

// ErrUnknownEncoding rejects Dial encodings outside json/binary/tcp.
var ErrUnknownEncoding = errors.New("client: unknown encoding")

// Dial returns a Conn for the daemon at addr speaking the given encoding.
// For the HTTP encodings addr may be a base URL ("http://host:port") or a
// bare host:port (http is assumed); for tcp it must be a host:port (a
// leading scheme is stripped). No connection is made until the first
// request on any encoding, so Dial itself cannot observe a down node.
func Dial(addr, encoding string) (Conn, error) {
	switch encoding {
	case EncodingJSON, EncodingBinary:
		base := addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		c := server.NewClient(base)
		c.Binary = encoding == EncodingBinary
		return c, nil
	case EncodingTCP:
		host := addr
		if i := strings.Index(host, "://"); i >= 0 {
			host = host[i+3:]
		}
		return irsnet.NewClient(host, irsnet.Options{}), nil
	default:
		return nil, fmt.Errorf("%w: %q (want %s, %s, or %s)", ErrUnknownEncoding, encoding, EncodingJSON, EncodingBinary, EncodingTCP)
	}
}
