package client_test

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	irs "github.com/irsgo/irs"
	"github.com/irsgo/irs/client"
	"github.com/irsgo/irs/server"
	"github.com/irsgo/irs/server/irsnet"
)

// TestLifecycleHammer is the dynamic-lifecycle race harness: every
// transport the daemon speaks (HTTP/JSON, HTTP binary, irsnet TCP)
// hammers a stable dataset with samples, inserts, and deletes while a
// second dataset is added and dropped in a loop. The contract under test:
//
//   - traffic on the stable dataset never fails, at any point of any
//     add/drop cycle — lifecycle operations on one dataset are invisible
//     to the others;
//   - every request touching the churning dataset is answered (no lost
//     ACKs: an accepted insert resolves to a count or a typed error,
//     never a hang or a connection reset), and the only errors it may
//     see are the typed not-found (dropped), empty-range (added but not
//     yet loaded), or backpressure — never the shutdown error, and never
//     a transport-level failure;
//   - once a drop completes, all transports answer exactly the typed
//     not-found until the next add.
//
// Run with -race; the interesting failures here are data races between
// the drop path and in-flight coalesced requests.
func TestLifecycleHammer(t *testing.T) {
	s := server.New(server.Config{})
	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i)
	}
	stable, err := irs.NewConcurrentFromSortedSeeded(keys, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddUnweighted("stable", stable); err != nil {
		t.Fatal(err)
	}

	hs := httptest.NewServer(s)
	defer hs.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := irsnet.NewServer(s)
	served := make(chan error, 1)
	go func() { served <- ts.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := ts.Shutdown(ctx); err != nil {
			t.Errorf("tcp shutdown: %v", err)
		}
		if err := <-served; err != nil {
			t.Errorf("tcp serve: %v", err)
		}
	}()

	conns := make(map[string]client.Conn, 3)
	for _, enc := range []string{client.EncodingJSON, client.EncodingBinary, client.EncodingTCP} {
		addr := hs.URL
		if enc == client.EncodingTCP {
			addr = l.Addr().String()
		}
		c, err := client.Dial(addr, enc)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[enc] = c
	}

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failure atomic.Pointer[string]
	report := func(format string, enc string, err error) {
		msg := enc + ": " + format + ": " + err.Error()
		failure.CompareAndSwap(nil, &msg)
	}

	// Stable-dataset workers: one sampler and one mutator per transport.
	// Zero tolerance — any error is a lifecycle isolation break.
	for enc, c := range conns {
		wg.Add(2)
		go func(enc string, c client.Conn) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Sample(ctx, "stable", 0, 999, 4); err != nil {
					report("stable sample", enc, err)
					return
				}
				if _, _, err := c.RangeStats(ctx, "stable", 0, 999); err != nil {
					report("stable rangestats", enc, err)
					return
				}
			}
		}(enc, c)
		go func(enc string, c client.Conn, base float64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := base + float64(i%128)
				if _, err := c.InsertKeys(ctx, "stable", []float64{k}); err != nil {
					report("stable insert", enc, err)
					return
				}
				if _, err := c.Delete(ctx, "stable", []float64{k}); err != nil {
					report("stable delete", enc, err)
					return
				}
			}
		}(enc, c, 10_000+float64(len(enc))*1_000)
	}

	// Churn-dataset workers: the dataset flickers in and out of existence
	// under them. Success, not-found, empty-range, and backpressure are the
	// whole legal vocabulary.
	churnOK := func(err error) bool {
		return err == nil ||
			errors.Is(err, server.ErrUnknownDataset) ||
			errors.Is(err, server.ErrEmptyRange) ||
			errors.Is(err, server.ErrOverloaded)
	}
	for enc, c := range conns {
		wg.Add(1)
		go func(enc string, c client.Conn) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.InsertKeys(ctx, "churn", []float64{float64(i % 500)}); !churnOK(err) {
					report("churn insert", enc, err)
					return
				}
				if _, err := c.Sample(ctx, "churn", 0, 500, 2); !churnOK(err) {
					report("churn sample", enc, err)
					return
				}
				if _, err := c.Delete(ctx, "churn", []float64{float64(i % 500)}); !churnOK(err) {
					report("churn delete", enc, err)
					return
				}
			}
		}(enc, c)
	}

	// The churn driver: add, let traffic land, drop, verify the typed
	// not-found on every transport, repeat.
	const cycles = 15
	for cycle := 0; cycle < cycles; cycle++ {
		if err := s.AddDataset("churn", cycle%2 == 1); err != nil {
			t.Fatalf("cycle %d add: %v", cycle, err)
		}
		// Land at least one write through each transport so the drop has
		// real in-flight company.
		for enc, c := range conns {
			if _, err := c.InsertKeys(ctx, "churn", []float64{float64(cycle)}); !churnOK(err) {
				t.Fatalf("cycle %d %s prime insert: %v", cycle, enc, err)
			}
		}
		if err := s.RemoveDataset("churn", false); err != nil {
			t.Fatalf("cycle %d drop: %v", cycle, err)
		}
		// Post-drop, the answer is exactly the typed not-found — on every
		// transport, not just the in-process registry.
		for enc, c := range conns {
			if _, err := c.Sample(ctx, "churn", 0, 500, 1); !errors.Is(err, server.ErrUnknownDataset) {
				t.Fatalf("cycle %d %s post-drop sample: err = %v, want ErrUnknownDataset", cycle, enc, err)
			}
		}
		if f := failure.Load(); f != nil {
			t.Fatalf("worker failure during cycle %d: %s", cycle, *f)
		}
	}

	close(stop)
	wg.Wait()
	if f := failure.Load(); f != nil {
		t.Fatalf("worker failure: %s", *f)
	}
}
