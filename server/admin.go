package server

import (
	"net/http"
	"runtime"
	"strings"
	"sync"

	irs "github.com/irsgo/irs"
)

// Admin surface: the dataset registry over HTTP.
//
//	GET    /datasets                    -> {"datasets":[{"name","kind","state","durable"},...]}
//	POST   /datasets {"dataset":"d","weighted":false} -> {"dataset":"d","kind":"unweighted"}
//	DELETE /datasets/{name}[?snapshot=true]           -> {"dataset":"d","dropped":true}
//
// Adds go through the server's Provisioner — the hook that decides what a
// runtime-created dataset looks like (shard count, seed, durability).
// New installs a memory-only default; cmd/irsd replaces it with one built
// from the daemon's own flags, so a POSTed dataset is indistinguishable
// from a -datasets one. Drops drain the dataset's in-flight requests,
// sync and close its store, and leave every other dataset serving; see
// internal/server.Core.Remove for the ordering argument.
//
// Errors use the shared wire vocabulary (duplicate_dataset on a name
// collision, unknown_dataset on dropping an absent name), so errors.Is
// against the exported sentinels works exactly as on the data endpoints.
// Proxy servers answer not_supported (501): the registry lives on the
// nodes, not the router.

// Provisioner builds and registers one dataset at runtime under the
// caller's naming. Implementations must register through the Add* family
// (or the core) so the registered dataset carries the usual lifecycle.
type Provisioner func(name string, weighted bool) error

// admin is the Server's admin-surface state.
type admin struct {
	mu        sync.RWMutex
	provision Provisioner
}

// SetProvisioner installs the hook POST /datasets (and AddDataset) builds
// datasets through, replacing the default memory-only one. Safe at any
// time; intended for boot.
func (s *Server) SetProvisioner(p Provisioner) {
	s.adm.mu.Lock()
	defer s.adm.mu.Unlock()
	s.adm.provision = p
}

// defaultProvisioner registers a memory-only dataset with GOMAXPROCS
// shards — the same shape `irsd -datasets name` would build with default
// flags and no durability.
func (s *Server) defaultProvisioner(name string, weighted bool) error {
	shards := runtime.GOMAXPROCS(0)
	if weighted {
		return s.AddWeighted(name, irs.NewWeightedConcurrent[float64](shards, 1))
	}
	return s.AddUnweighted(name, irs.NewConcurrentSeeded[float64](shards, 1))
}

// AddDataset creates and registers a dataset at runtime through the
// installed Provisioner — the in-process form of POST /datasets. A name
// already registered answers ErrDuplicateDataset; proxy servers ErrProxy.
func (s *Server) AddDataset(name string, weighted bool) error {
	if s.core == nil {
		return ErrProxy
	}
	if name == "" {
		return ErrUnknownDataset
	}
	s.adm.mu.RLock()
	p := s.adm.provision
	s.adm.mu.RUnlock()
	if p == nil {
		p = s.defaultProvisioner
	}
	return p(name, weighted)
}

// RemoveDataset drops the named dataset at runtime — the in-process form
// of DELETE /datasets/{name}. The drop drains the dataset's accepted
// requests (no ACK is lost), optionally takes a final compacting
// snapshot, then syncs and closes its store; other datasets keep serving
// untouched. Absent names answer ErrUnknownDataset; proxies ErrProxy.
func (s *Server) RemoveDataset(name string, snapshot bool) error {
	if s.core == nil {
		return ErrProxy
	}
	return s.core.Remove(name, snapshot)
}

// Datasets returns the registered dataset names in sorted order (empty on
// proxy servers, whose registry lives on the nodes).
func (s *Server) Datasets() []string {
	if s.core == nil {
		return nil
	}
	return s.core.Datasets()
}

// handleDatasets serves the /datasets collection: GET lists, POST adds.
func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		st := s.backend.Stats()
		out := ListDatasetsResponse{Datasets: make([]DatasetInfo, 0, len(st.Datasets))}
		for _, ds := range st.Datasets {
			out.Datasets = append(out.Datasets, DatasetInfo{
				Name: ds.Name, Kind: ds.Kind, State: ds.State, Durable: ds.Durable,
			})
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var req AddDatasetRequest
		if !readJSON(w, r, &req) {
			return
		}
		if req.Dataset == "" {
			writeError(w, http.StatusBadRequest, "bad_request", "dataset name required")
			return
		}
		if err := s.AddDataset(req.Dataset, req.Weighted); err != nil {
			writeAdminError(w, err)
			return
		}
		kind := "unweighted"
		if req.Weighted {
			kind = "weighted"
		}
		writeJSON(w, http.StatusOK, AddDatasetResponse{Dataset: req.Dataset, Kind: kind})
	default:
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET or POST")
	}
}

// handleDatasetItem serves DELETE /datasets/{name}.
func (s *Server) handleDatasetItem(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/datasets/")
	if name == "" || strings.ContainsRune(name, '/') {
		writeError(w, http.StatusNotFound, "not_found", "no such endpoint: "+r.URL.Path)
		return
	}
	if r.Method != http.MethodDelete {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use DELETE")
		return
	}
	snapshot := r.URL.Query().Get("snapshot") == "true" || r.URL.Query().Get("snapshot") == "1"
	if err := s.RemoveDataset(name, snapshot); err != nil {
		writeAdminError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DropDatasetResponse{Dataset: name, Dropped: true})
}

// writeAdminError maps admin-path errors: ErrProxy gets its own 501 (the
// wire table is the data-path vocabulary shared with the TCP transport;
// proxies never produce it there), everything else the shared table.
func writeAdminError(w http.ResponseWriter, err error) {
	if err == ErrProxy {
		writeError(w, http.StatusNotImplemented, "not_supported", ErrProxy.Error())
		return
	}
	writeCoreError(w, err)
}
