package server_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	irs "github.com/irsgo/irs"
	"github.com/irsgo/irs/server"
)

// newTestDaemon spins up the full HTTP stack: a Server with an unweighted
// dataset "u" (keys 0..n-1, each once) and a weighted dataset "w" (keys
// 0..99 with weight k+1), behind httptest. The returned function stops
// both.
func newTestDaemon(t *testing.T, cfg server.Config, n int) (*server.Server, *server.Client, string, func()) {
	t.Helper()
	s := server.New(cfg)

	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(i)
	}
	u, err := irs.NewConcurrentFromSortedSeeded(keys, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddUnweighted("u", u); err != nil {
		t.Fatal(err)
	}

	w := irs.NewWeightedConcurrent[float64](4, 11)
	items := make([]irs.WeightedItem[float64], 100)
	for i := range items {
		items[i] = irs.WeightedItem[float64]{Key: float64(i), Weight: float64(i + 1)}
	}
	if err := w.InsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if err := s.AddWeighted("w", w); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(s)
	return s, server.NewClient(ts.URL), ts.URL, func() {
		ts.Close()
		s.Close()
	}
}

// TestHTTPErrorPaths: every malformed or unservable request returns a
// typed, machine-readable error with the right status — and never panics.
func TestHTTPErrorPaths(t *testing.T) {
	_, cl, base, stop := newTestDaemon(t, server.Config{}, 1000)
	defer stop()
	ctx := context.Background()

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [512]byte
		n, _ := resp.Body.Read(buf[:])
		return resp.StatusCode, string(buf[:n])
	}

	// Malformed JSON bodies.
	for _, body := range []string{`{"lo":`, `not json`, `{"lo":1,"bogus":2}`, ``} {
		status, got := post("/sample", body)
		if status != http.StatusBadRequest || !strings.Contains(got, `"bad_request"`) {
			t.Errorf("body %q: status=%d body=%s", body, status, got)
		}
	}
	// Wrong methods and unknown endpoints.
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if status := get("/sample"); status != http.StatusMethodNotAllowed {
		t.Errorf("GET /sample: %d", status)
	}
	if status, got := post("/stats", `{}`); status != http.StatusMethodNotAllowed || !strings.Contains(got, "method_not_allowed") {
		t.Errorf("POST /stats: %d %s", status, got)
	}
	if status := get("/nope"); status != http.StatusNotFound {
		t.Errorf("GET /nope: %d", status)
	}

	// Typed validation errors through the client: each must unwrap to its
	// sentinel and carry the right HTTP status.
	cases := []struct {
		name   string
		do     func() error
		want   error
		status int
	}{
		{"inverted range", func() error { _, err := cl.Sample(ctx, "u", 10, 0, 1); return err }, server.ErrInvalidRange, 400},
		{"t=0", func() error { _, err := cl.Sample(ctx, "u", 0, 10, 0); return err }, server.ErrInvalidCount, 400},
		{"t<0", func() error { _, err := cl.Sample(ctx, "u", 0, 10, -1); return err }, server.ErrInvalidCount, 400},
		{"unknown dataset", func() error { _, err := cl.Sample(ctx, "zzz", 0, 10, 1); return err }, server.ErrUnknownDataset, 404},
		{"ambiguous dataset", func() error { _, err := cl.Sample(ctx, "", 0, 10, 1); return err }, server.ErrAmbiguousDataset, 400},
		{"empty range", func() error { _, err := cl.Sample(ctx, "u", 5000, 6000, 1); return err }, server.ErrEmptyRange, 422},
		{"invalid weight", func() error {
			_, err := cl.InsertItems(ctx, "w", []server.Item{{Key: 1, Weight: -1}})
			return err
		}, server.ErrInvalidWeight, 400},
	}
	for _, tc := range cases {
		err := tc.do()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
			continue
		}
		var api *server.APIError
		if !errors.As(err, &api) || api.Status != tc.status {
			t.Errorf("%s: api error = %+v, want status %d", tc.name, api, tc.status)
		}
	}
}

// TestHTTPRoundTrip: insert, sample, delete, stats through the typed
// client against both dataset kinds.
func TestHTTPRoundTrip(t *testing.T) {
	_, cl, _, stop := newTestDaemon(t, server.Config{}, 1000)
	defer stop()
	ctx := context.Background()

	if n, err := cl.InsertKeys(ctx, "u", []float64{5000, 5001, 5002}); err != nil || n != 3 {
		t.Fatalf("InsertKeys: %d, %v", n, err)
	}
	out, err := cl.Sample(ctx, "u", 5000, 5002, 12)
	if err != nil || len(out) != 12 {
		t.Fatalf("Sample: %v, %v", out, err)
	}
	for _, k := range out {
		if k < 5000 || k > 5002 {
			t.Fatalf("sample %g out of range", k)
		}
	}
	if n, err := cl.Delete(ctx, "u", []float64{5000, 5001, 5002, 9999}); err != nil || n != 3 {
		t.Fatalf("Delete: %d, %v", n, err)
	}
	if _, err := cl.Sample(ctx, "u", 5000, 5002, 1); !errors.Is(err, server.ErrEmptyRange) {
		t.Fatalf("after delete: err = %v", err)
	}

	// Weighted: insert a dominating weight and observe it.
	if n, err := cl.InsertItems(ctx, "w", []server.Item{{Key: 7000, Weight: 1e9}}); err != nil || n != 1 {
		t.Fatalf("InsertItems: %d, %v", n, err)
	}
	wout, err := cl.Sample(ctx, "w", 0, 8000, 50)
	if err != nil {
		t.Fatal(err)
	}
	dominated := 0
	for _, k := range wout {
		if k == 7000 {
			dominated++
		}
	}
	if dominated < 45 { // total other weight is 5050 vs 1e9
		t.Fatalf("dominating weight sampled only %d/50 times", dominated)
	}

	st, err := cl.Stats(ctx)
	if err != nil || len(st.Datasets) != 2 {
		t.Fatalf("Stats: %+v, %v", st, err)
	}
	for _, d := range st.Datasets {
		if d.SampleRequests == 0 && d.Name == "u" {
			t.Fatalf("no accounted requests: %+v", d)
		}
	}
}

// TestHTTPQueueFullBackpressure: a tiny queue plus slow large-t flushes
// forces 503 overloaded responses while accepted requests still succeed.
func TestHTTPQueueFullBackpressure(t *testing.T) {
	_, cl, _, stop := newTestDaemon(t, server.Config{
		QueueDepth: 2, MaxBatch: 2, Flushers: 1,
	}, 50_000)
	defer stop()
	ctx := context.Background()

	// One wave of concurrent heavy requests; repeated (bounded) because
	// arrival simultaneity over real HTTP is probabilistic — the pipeline
	// holds at most ~8 requests, so a wave of 24 overflows it unless the
	// scheduler spreads arrivals across whole flush durations. t is large
	// enough that one flush comfortably exceeds the runtime's ~10ms async
	// preemption quantum: on GOMAXPROCS=1 hosts a shorter flush runs to
	// completion unpreempted and the queue drains before a third submitter
	// ever runs, so overload would never trigger.
	wave := func() (served, rejected int) {
		const clients = 24
		var wg sync.WaitGroup
		var mu sync.Mutex
		start := make(chan struct{})
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				_, err := cl.Sample(ctx, "u", 0, 49_999, 600_000)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					served++
				case errors.Is(err, server.ErrOverloaded):
					rejected++
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}()
		}
		close(start)
		wg.Wait()
		return served, rejected
	}
	served, rejected := 0, 0
	for round := 0; round < 5 && (served == 0 || rejected == 0); round++ {
		s, r := wave()
		served += s
		rejected += r
	}
	if served == 0 || rejected == 0 {
		t.Fatalf("served=%d rejected=%d; want both backpressure and successes", served, rejected)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range st.Datasets {
		if d.Name == "u" && int(d.SampleRejected) != rejected {
			t.Fatalf("rejected accounting: stats=%d client=%d", d.SampleRejected, rejected)
		}
	}
}

// TestHTTPShutdownWhileInflight: Close drains in-flight requests and
// answers later ones with 503 shutting_down; nothing panics.
func TestHTTPShutdownWhileInflight(t *testing.T) {
	s, cl, _, stop := newTestDaemon(t, server.Config{CoalesceWindow: 2 * time.Millisecond}, 1000)
	defer stop()
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl.Sample(ctx, "u", 0, 999, 4)
			errs <- err
		}()
	}
	s.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, server.ErrShuttingDown) {
			t.Fatalf("in-flight request: %v", err)
		}
	}
	if _, err := cl.Sample(ctx, "u", 0, 999, 1); !errors.Is(err, server.ErrShuttingDown) {
		t.Fatalf("after close: err = %v", err)
	}
	var api *server.APIError
	_, err := cl.Sample(ctx, "u", 0, 999, 1)
	if !errors.As(err, &api) || api.Status != http.StatusServiceUnavailable || api.Code != "shutting_down" {
		t.Fatalf("wire shape after close: %+v", api)
	}
	if _, err := cl.InsertKeys(ctx, "u", []float64{1}); !errors.Is(err, server.ErrShuttingDown) {
		t.Fatalf("insert after close: err = %v", err)
	}
	if _, err := cl.Delete(ctx, "u", []float64{1}); !errors.Is(err, server.ErrShuttingDown) {
		t.Fatalf("delete after close: err = %v", err)
	}
}
