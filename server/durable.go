package server

import (
	"time"

	irs "github.com/irsgo/irs"
	"github.com/irsgo/irs/internal/persist"
	srv "github.com/irsgo/irs/internal/server"
	"github.com/irsgo/irs/internal/weighted"
)

// SyncPolicy selects when WAL appends reach stable storage; see the
// constants for the trade-offs.
type SyncPolicy = persist.SyncPolicy

const (
	// SyncAlways fsyncs inside every (coalesced) mutation flush: an
	// acknowledged request is durable. One fsync covers a whole merged
	// batch, so the cost amortizes across concurrent clients.
	SyncAlways = persist.SyncAlways
	// SyncInterval fsyncs on a background timer: a crash loses at most one
	// interval of acknowledged mutations.
	SyncInterval = persist.SyncInterval
	// SyncNone leaves flushing to the OS and the rotate/close paths.
	SyncNone = persist.SyncNone
)

// ParseSyncPolicy parses the flag spellings "always", "interval", "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return persist.ParseSyncPolicy(s) }

// Recovery describes what booting a durable dataset reconstructed.
type Recovery = persist.RecoveryStats

// SnapshotInfo reports one committed snapshot.
type SnapshotInfo = srv.SnapshotInfo

// DurableOptions configures one durable dataset's persistence.
type DurableOptions struct {
	// Dir is the dataset's own directory (one dataset per directory);
	// irsd uses <data-dir>/<dataset-name>. Created if absent.
	Dir string
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval
	// (default 100ms).
	SyncInterval time.Duration
	// Shards is the structure's target shard count (default 1).
	Shards int
	// Seed anchors the structure's sampling streams and treap priorities,
	// like the seeded in-memory constructors. Never influences the
	// sampling distribution.
	Seed uint64
}

// AddDurableUnweighted recovers the unweighted dataset persisted in
// opts.Dir (starting empty on a fresh directory) and registers it under
// name with persistence attached: every subsequent insert and delete is
// written ahead to the dataset's WAL inside the same coalesced flush that
// applies it, and /snapshot (or Server.Snapshot) rotates the WAL into a
// compact point-in-time snapshot. Recovery loads the newest snapshot and
// replays the WAL tail; a torn final record (crash mid-append) is
// truncated and reported.
//
// The returned structure is the live dataset. Mutating it directly
// bypasses the WAL — safe only before serving starts and only if followed
// by Server.Snapshot (irsd's preload does exactly that).
func (s *Server) AddDurableUnweighted(name string, opts DurableOptions) (*irs.Concurrent[float64], Recovery, error) {
	store, rec, err := persist.Open(opts.Dir, persist.Float64Keys(), persist.Options{
		Kind:         persist.KindUnweighted,
		Sync:         opts.Sync,
		SyncInterval: opts.SyncInterval,
	})
	if err != nil {
		return nil, Recovery{}, err
	}
	keys := make([]float64, len(rec.Entries))
	for i, e := range rec.Entries {
		keys[i] = e.Key
	}
	c, err := irs.NewConcurrentFromSortedSeeded(keys, max(opts.Shards, 1), opts.Seed)
	if err != nil {
		store.Close()
		return nil, Recovery{}, err
	}
	ds := srv.NewUnweightedDataset(c)
	if err := srv.Replay(ds, rec.Records); err != nil {
		store.Close()
		return nil, Recovery{}, err
	}
	if err := s.core.AddDurable(name, ds, store, rec.Stats); err != nil {
		store.Close()
		return nil, Recovery{}, err
	}
	return c, rec.Stats, nil
}

// AddDurableWeighted is AddDurableUnweighted for a weighted dataset:
// weight updates are logged too, and recovery restores the exact
// (key, weight) multiset.
func (s *Server) AddDurableWeighted(name string, opts DurableOptions) (*irs.WeightedConcurrent[float64], Recovery, error) {
	store, rec, err := persist.Open(opts.Dir, persist.Float64Keys(), persist.Options{
		Kind:         persist.KindWeighted,
		Sync:         opts.Sync,
		SyncInterval: opts.SyncInterval,
	})
	if err != nil {
		return nil, Recovery{}, err
	}
	items := make([]weighted.Item[float64], len(rec.Entries))
	for i, e := range rec.Entries {
		items[i] = weighted.Item[float64]{Key: e.Key, Weight: e.Weight}
	}
	w, err := irs.NewWeightedConcurrentFromItems(items, max(opts.Shards, 1), opts.Seed)
	if err != nil {
		store.Close()
		return nil, Recovery{}, err
	}
	ds := srv.NewWeightedDataset(w)
	if err := srv.Replay(ds, rec.Records); err != nil {
		store.Close()
		return nil, Recovery{}, err
	}
	if err := s.core.AddDurable(name, ds, store, rec.Stats); err != nil {
		store.Close()
		return nil, Recovery{}, err
	}
	return w, rec.Stats, nil
}
