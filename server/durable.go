package server

import (
	"time"

	irs "github.com/irsgo/irs"
	"github.com/irsgo/irs/internal/persist"
	srv "github.com/irsgo/irs/internal/server"
	"github.com/irsgo/irs/internal/weighted"
)

// SyncPolicy selects when WAL appends reach stable storage; see the
// constants for the trade-offs.
type SyncPolicy = persist.SyncPolicy

const (
	// SyncAlways fsyncs inside every (coalesced) mutation flush: an
	// acknowledged request is durable. One fsync covers a whole merged
	// batch, so the cost amortizes across concurrent clients.
	SyncAlways = persist.SyncAlways
	// SyncInterval fsyncs on a background timer: a crash loses at most one
	// interval of acknowledged mutations.
	SyncInterval = persist.SyncInterval
	// SyncNone leaves flushing to the OS and the rotate/close paths.
	SyncNone = persist.SyncNone
)

// ParseSyncPolicy parses the flag spellings "always", "interval", "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return persist.ParseSyncPolicy(s) }

// Recovery describes what booting a durable dataset reconstructed.
type Recovery = persist.RecoveryStats

// File is the WAL segment file abstraction (see DurableOptions.OpenFile).
type File = persist.File

// SnapshotInfo reports one committed snapshot.
type SnapshotInfo = srv.SnapshotInfo

// DurableOptions configures one durable dataset's persistence.
type DurableOptions struct {
	// Dir is the dataset's own directory (one dataset per directory);
	// irsd uses <data-dir>/<dataset-name>. Created if absent.
	Dir string
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval
	// (default 100ms).
	SyncInterval time.Duration
	// Shards is the structure's target shard count (default 1).
	Shards int
	// Seed anchors the structure's sampling streams and treap priorities,
	// like the seeded in-memory constructors. Never influences the
	// sampling distribution.
	Seed uint64
	// OpenFile opens (creating if needed) a WAL segment file. Nil means
	// the OS filesystem. Tests inject files whose reads or syncs block
	// or fail to exercise slow-recovery readiness gating and the
	// group-commit durability contract.
	OpenFile func(path string) (File, error)
}

// AddDurableUnweighted recovers the unweighted dataset persisted in
// opts.Dir (starting empty on a fresh directory) and registers it under
// name with persistence attached: every subsequent insert and delete is
// written ahead to the dataset's WAL inside the same coalesced flush that
// applies it, and /snapshot (or Server.Snapshot) rotates the WAL into a
// compact point-in-time snapshot. Recovery loads the newest snapshot and
// replays the WAL tail; a torn final record (crash mid-append) is
// truncated and reported.
//
// The returned structure is the live dataset. Mutating it directly
// bypasses the WAL — safe only before serving starts and only if followed
// by Server.Snapshot (irsd's preload does exactly that).
//
// Recovery streams: snapshot entries flow straight into the engine's
// sorted bulk-load constructor (no intermediate entry slice), and WAL tail
// records replay through persist's reused decode buffer — so boot-time
// memory is the dataset itself, not a second copy of it.
func (s *Server) AddDurableUnweighted(name string, opts DurableOptions) (*irs.Concurrent[float64], Recovery, error) {
	if s.core == nil {
		return nil, Recovery{}, ErrProxy
	}
	begin := time.Now()
	var (
		keys []float64
		c    *irs.Concurrent[float64]
		ds   srv.Dataset[float64]
		ra   srv.ReplayApplier[float64]
	)
	// Snapshot entries stream in key order before the first WAL record, so
	// the structure bulk-loads sorted exactly once — at the first record,
	// or after recovery if the tail is empty.
	build := func() error {
		var err error
		c, err = irs.NewConcurrentFromSortedSeeded(keys, max(opts.Shards, 1), opts.Seed)
		if err != nil {
			return err
		}
		keys = nil
		ds = srv.NewUnweightedDataset(c)
		return nil
	}
	store, stats, err := persist.OpenStream(opts.Dir, persist.Float64Keys(), persist.Options{
		Kind:         persist.KindUnweighted,
		Sync:         opts.Sync,
		SyncInterval: opts.SyncInterval,
		OpenFile:     opts.OpenFile,
	}, persist.RecoverySink[float64]{
		SnapshotStart: func(count int) error {
			keys = make([]float64, 0, count)
			return nil
		},
		SnapshotEntry: func(e persist.Entry[float64]) error {
			keys = append(keys, e.Key)
			return nil
		},
		Record: func(rec persist.Record[float64]) error {
			if ds == nil {
				if err := build(); err != nil {
					return err
				}
			}
			return ra.Apply(ds, rec)
		},
	})
	if err != nil {
		return nil, Recovery{}, err
	}
	if ds == nil {
		if err := build(); err != nil {
			store.Close()
			return nil, Recovery{}, err
		}
	}
	if err := s.core.AddDurable(name, ds, store, stats); err != nil {
		store.Close()
		return nil, Recovery{}, err
	}
	s.noteRecovery(name, time.Since(begin))
	return c, stats, nil
}

// AddDurableWeighted is AddDurableUnweighted for a weighted dataset:
// weight updates are logged too, and recovery restores the exact
// (key, weight) multiset.
func (s *Server) AddDurableWeighted(name string, opts DurableOptions) (*irs.WeightedConcurrent[float64], Recovery, error) {
	if s.core == nil {
		return nil, Recovery{}, ErrProxy
	}
	begin := time.Now()
	var (
		items []weighted.Item[float64]
		w     *irs.WeightedConcurrent[float64]
		ds    srv.Dataset[float64]
		ra    srv.ReplayApplier[float64]
	)
	build := func() error {
		var err error
		w, err = irs.NewWeightedConcurrentFromSortedItems(items, max(opts.Shards, 1), opts.Seed)
		if err != nil {
			return err
		}
		items = nil
		ds = srv.NewWeightedDataset(w)
		return nil
	}
	store, stats, err := persist.OpenStream(opts.Dir, persist.Float64Keys(), persist.Options{
		Kind:         persist.KindWeighted,
		Sync:         opts.Sync,
		SyncInterval: opts.SyncInterval,
		OpenFile:     opts.OpenFile,
	}, persist.RecoverySink[float64]{
		SnapshotStart: func(count int) error {
			items = make([]weighted.Item[float64], 0, count)
			return nil
		},
		SnapshotEntry: func(e persist.Entry[float64]) error {
			items = append(items, weighted.Item[float64]{Key: e.Key, Weight: e.Weight})
			return nil
		},
		Record: func(rec persist.Record[float64]) error {
			if ds == nil {
				if err := build(); err != nil {
					return err
				}
			}
			return ra.Apply(ds, rec)
		},
	})
	if err != nil {
		return nil, Recovery{}, err
	}
	if ds == nil {
		if err := build(); err != nil {
			store.Close()
			return nil, Recovery{}, err
		}
	}
	if err := s.core.AddDurable(name, ds, store, stats); err != nil {
		store.Close()
		return nil, Recovery{}, err
	}
	s.noteRecovery(name, time.Since(begin))
	return w, stats, nil
}
