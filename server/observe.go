package server

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/irsgo/irs/internal/metrics"
)

// Observability surface: /metrics (Prometheus text exposition),
// /healthz (liveness), /readyz (readiness), and opt-in /debug/pprof/.
//
// Readiness is a three-state machine — starting → ready → draining —
// driven by the process that owns the lifecycle (cmd/irsd): SetReady
// after boot recovery completes, SetDraining the moment a shutdown
// signal arrives. /readyz answers 503 outside the ready state, so a
// load balancer stops routing new work before the daemon stops
// accepting it, while requests already in flight drain normally.
//
// Scrapes never touch a hot-path lock: every instrument is an atomic
// from internal/metrics, snapshotted on the scraper's goroutine.

// Readiness states.
const (
	stateStarting int32 = iota
	stateReady
	stateDraining
)

// MetricsAppender contributes extra Prometheus series to /metrics.
// AppendMetrics appends complete families (HELP/TYPE plus samples) to
// dst and returns it; implementations must emit each metric name in
// exactly one contiguous block and must not emit names another
// appender owns. The TCP transport (server/irsnet) implements this for
// its connection and latency series.
type MetricsAppender interface {
	AppendMetrics(dst []byte) []byte
}

// observe is the Server's observability state.
type observe struct {
	start   time.Time
	state   atomic.Int32
	pprofOn atomic.Bool
	version atomic.Pointer[string]

	// Request-latency histograms for the HTTP data endpoints, split by
	// negotiated encoding. The TCP transport owns its own family.
	reqJSON   metrics.DurationHistogram
	reqBinary metrics.DurationHistogram

	// Config-generation tracking for daemons that hot-reload: epoch counts
	// applied configurations (1 after boot, +1 per successful reload),
	// reloadsOK/reloadsErr count reload outcomes for the
	// irsd_config_reloads_total{status} counter.
	configEpoch atomic.Uint64
	reloadsOK   atomic.Uint64
	reloadsErr  atomic.Uint64

	mu        sync.Mutex
	appenders []MetricsAppender
	recovery  map[string]time.Duration // dataset -> boot recovery duration
}

// SetVersion records the build version string reported by /stats and
// /metrics (irsd stamps it via -ldflags "-X main.version=...").
func (s *Server) SetVersion(v string) { s.obs.version.Store(&v) }

// Version returns the recorded build version, or "unknown".
func (s *Server) Version() string {
	if p := s.obs.version.Load(); p != nil && *p != "" {
		return *p
	}
	return "unknown"
}

// SetReady flips /readyz to 200. Call it once boot recovery (and any
// preload) has completed and the process is about to accept traffic.
// It does not override draining: a SIGTERM that lands during boot wins.
func (s *Server) SetReady() {
	s.obs.state.CompareAndSwap(stateStarting, stateReady)
}

// SetDraining flips /readyz back to 503 without stopping request
// service: call it when shutdown begins, before the listener closes,
// so orchestrators stop routing while in-flight work completes.
// Server.Close also sets it, for embedders that skip the probe dance.
func (s *Server) SetDraining() {
	s.obs.state.Store(stateDraining)
}

// Ready reports whether /readyz currently answers 200.
func (s *Server) Ready() bool { return s.obs.state.Load() == stateReady }

// EnablePprof exposes net/http/pprof under /debug/pprof/. Off by
// default: profiling endpoints leak implementation detail and cost CPU
// when sampled, so they are opt-in (irsd's -pprof flag).
func (s *Server) EnablePprof() { s.obs.pprofOn.Store(true) }

// RegisterMetrics adds an appender whose series are concatenated into
// /metrics after the server's own. Intended for setup time, safe any
// time.
func (s *Server) RegisterMetrics(a MetricsAppender) {
	s.obs.mu.Lock()
	defer s.obs.mu.Unlock()
	s.obs.appenders = append(s.obs.appenders, a)
}

// NoteReload records one configuration (re)load attempt. A successful
// apply advances the config epoch — call it once at boot so the epoch
// starts at 1 — and a failed one only bumps the error counter: the old
// configuration stays in force, which is exactly what the metrics should
// say. Surfaced as irsd_config_reloads_total{status} and
// irsd_config_epoch, and as the config_epoch field of /stats.
func (s *Server) NoteReload(ok bool) {
	if ok {
		s.obs.configEpoch.Add(1)
		s.obs.reloadsOK.Add(1)
	} else {
		s.obs.reloadsErr.Add(1)
	}
}

// ConfigEpoch returns the number of configurations applied so far (0 if
// the owning daemon never calls NoteReload).
func (s *Server) ConfigEpoch() uint64 { return s.obs.configEpoch.Load() }

// noteRecovery records how long one durable dataset's boot recovery
// took, surfaced as irsd_recovery_duration_seconds{dataset}.
func (s *Server) noteRecovery(name string, d time.Duration) {
	s.obs.mu.Lock()
	defer s.obs.mu.Unlock()
	if s.obs.recovery == nil {
		s.obs.recovery = make(map[string]time.Duration)
	}
	s.obs.recovery[name] = d
}

// serverInfo is the identity block /stats embeds.
func (s *Server) serverInfo() ServerInfo {
	return ServerInfo{
		Version:       s.Version(),
		GoVersion:     runtime.Version(),
		UptimeSeconds: time.Since(s.obs.start).Seconds(),
		ConfigEpoch:   s.obs.configEpoch.Load(),
	}
}

// observeRequest times one HTTP data-endpoint request into the
// per-encoding histogram.
func (s *Server) observeRequest(binary bool, d time.Duration) {
	if binary {
		s.obs.reqBinary.Observe(d)
	} else {
		s.obs.reqJSON.Observe(d)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process is up and serving HTTP. Always 200 — a
	// draining daemon is still alive and must not be restarted.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch s.obs.state.Load() {
	case stateReady:
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	case stateDraining:
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
	default:
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("starting\n"))
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	buf := s.appendOwnMetrics(make([]byte, 0, 16<<10))
	buf = s.backend.AppendMetrics(buf)
	s.obs.mu.Lock()
	appenders := s.obs.appenders
	s.obs.mu.Unlock()
	for _, a := range appenders {
		buf = a.AppendMetrics(buf)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}

// appendOwnMetrics renders the process-level families this layer owns:
// build identity, uptime, readiness, HTTP request latency, and boot
// recovery durations.
func (s *Server) appendOwnMetrics(dst []byte) []byte {
	b := metrics.NewBuilder(dst)
	b.Family("irsd_build_info", "Build identity; value is always 1.", "gauge")
	b.Val("irsd_build_info", 1, "version", s.Version(), "go", runtime.Version())
	b.Family("irsd_process_uptime_seconds", "Seconds since the serving layer was constructed.", "gauge")
	b.Val("irsd_process_uptime_seconds", time.Since(s.obs.start).Seconds())
	b.Family("irsd_server_ready", "1 when /readyz answers 200.", "gauge")
	ready := float64(0)
	if s.Ready() {
		ready = 1
	}
	b.Val("irsd_server_ready", ready)
	b.Family("irsd_config_epoch", "Configurations applied since boot (1 = boot config, +1 per successful reload).", "gauge")
	b.Val("irsd_config_epoch", float64(s.obs.configEpoch.Load()))
	b.Family("irsd_config_reloads_total", "Configuration reload attempts by outcome.", "counter")
	b.Val("irsd_config_reloads_total", float64(s.obs.reloadsOK.Load()), "status", "ok")
	b.Val("irsd_config_reloads_total", float64(s.obs.reloadsErr.Load()), "status", "error")
	b.Family("irsd_http_request_duration_seconds", "HTTP data-endpoint latency by negotiated encoding.", "histogram")
	b.Histogram("irsd_http_request_duration_seconds", s.obs.reqJSON.Snapshot(), "encoding", "json")
	b.Histogram("irsd_http_request_duration_seconds", s.obs.reqBinary.Snapshot(), "encoding", "binary")

	s.obs.mu.Lock()
	names := make([]string, 0, len(s.obs.recovery))
	for name := range s.obs.recovery {
		names = append(names, name)
	}
	sort.Strings(names)
	durations := make([]time.Duration, len(names))
	for i, name := range names {
		durations[i] = s.obs.recovery[name]
	}
	s.obs.mu.Unlock()
	b.Family("irsd_recovery_duration_seconds", "Boot recovery wall time per durable dataset.", "gauge")
	for i, name := range names {
		b.Val("irsd_recovery_duration_seconds", durations[i].Seconds(), "dataset", name)
	}
	return b.Bytes()
}

// handlePprof routes /debug/pprof/* to net/http/pprof when enabled;
// 404 otherwise, so an unflagged daemon exposes nothing.
func (s *Server) handlePprof(w http.ResponseWriter, r *http.Request) {
	if !s.obs.pprofOn.Load() {
		writeError(w, http.StatusNotFound, "not_found", "pprof disabled; start irsd with -pprof")
		return
	}
	switch strings.TrimPrefix(r.URL.Path, "/debug/pprof") {
	case "/cmdline":
		pprof.Cmdline(w, r)
	case "/profile":
		pprof.Profile(w, r)
	case "/symbol":
		pprof.Symbol(w, r)
	case "/trace":
		pprof.Trace(w, r)
	default:
		// Index also serves the named profiles (heap, goroutine, ...).
		pprof.Index(w, r)
	}
}
