package server_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/irsgo/irs/internal/stats"
	"github.com/irsgo/irs/server"
)

// statAlpha mirrors the repository-wide convention (internal/shard): a
// significance small enough that genuine distributional bias — which moves
// the statistic by orders of magnitude — is still caught, while honest
// sampling noise essentially never rejects.
const statAlpha = 1e-4

// TestHTTPCoalescingFewerBackendCalls is the tentpole claim measured
// through the real HTTP stack: N concurrent client sample requests must
// reach the backend in strictly fewer SampleMany calls than N, with at
// least one genuine merge. (The deterministic pipeline-level form lives in
// internal/server; this is the integration form with a linger window.)
func TestHTTPCoalescingFewerBackendCalls(t *testing.T) {
	_, cl, _, stop := newTestDaemon(t, server.Config{
		CoalesceWindow: 2 * time.Millisecond,
		MaxBatch:       64,
		Flushers:       2,
	}, 1000)
	defer stop()
	ctx := context.Background()

	const n = 64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := cl.Sample(ctx, "u", 0, 999, 4); err != nil {
				t.Errorf("sample: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range st.Datasets {
		if d.Name != "u" {
			continue
		}
		if d.SampleRequests != n {
			t.Fatalf("accounted %d requests, want %d", d.SampleRequests, n)
		}
		if d.SampleBatches >= n {
			t.Fatalf("backend calls = %d for %d requests: no coalescing", d.SampleBatches, n)
		}
		if d.MaxCoalesced < 2 {
			t.Fatalf("no request ever shared a batch: %+v", d)
		}
		t.Logf("%d requests in %d backend calls (%.1fx coalescing, max batch %d)",
			d.SampleRequests, d.SampleBatches,
			float64(d.SampleRequests)/float64(d.SampleBatches), d.MaxCoalesced)
	}
}

// eachEncoding runs the statistical suite body once over the JSON wire
// format and once over the binary frames: the IRS contract — uniformity,
// weight-proportionality, independence — must hold identically over both
// encodings, not just the one the client happens to speak.
func eachEncoding(t *testing.T, run func(t *testing.T, binary bool)) {
	t.Run("json", func(t *testing.T) { run(t, false) })
	t.Run("binary", func(t *testing.T) { run(t, true) })
}

// TestHTTPUniformityChiSquare: per-sample uniformity must survive the full
// stack — wire codec, coalescing into shared SampleMany batches, concurrent
// flushers — not just the in-process sampler. 200 distinct keys, 20k
// samples drawn by 20 concurrent clients, chi-square against uniform, over
// both encodings.
func TestHTTPUniformityChiSquare(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite skipped with -short")
	}
	eachEncoding(t, testHTTPUniformityChiSquare)
}

func testHTTPUniformityChiSquare(t *testing.T, binary bool) {
	_, cl, _, stop := newTestDaemon(t, server.Config{
		CoalesceWindow: 500 * time.Microsecond,
	}, 200)
	defer stop()
	cl.Binary = binary
	ctx := context.Background()

	const clients, reqs, tPer = 20, 100, 10
	countsCh := make(chan []int, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int, 200)
			for i := 0; i < reqs; i++ {
				out, err := cl.Sample(ctx, "u", 0, 199, tPer)
				if err != nil {
					t.Errorf("sample: %v", err)
					return
				}
				for _, k := range out {
					idx := int(k)
					if idx < 0 || idx > 199 || float64(idx) != k {
						t.Errorf("impossible sample %g", k)
						return
					}
					local[idx]++
				}
			}
			countsCh <- local
		}()
	}
	wg.Wait()
	close(countsCh)
	counts := make([]int, 200)
	for local := range countsCh {
		for i, c := range local {
			counts[i] += c
		}
	}
	gof, err := stats.ChiSquareTest(counts, uniformProbs(200), statAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if gof.Reject {
		t.Fatalf("chi-square rejects uniformity through HTTP: stat=%.2f df=%d critical=%.2f",
			gof.Stat, gof.DF, gof.Critical)
	}
}

// TestHTTPWeightedProportionalChiSquare: the weighted dataset's samples
// through the full stack must be weight-proportional (weight k+1 on key
// k), and zero-weight keys must never appear — over both encodings.
func TestHTTPWeightedProportionalChiSquare(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite skipped with -short")
	}
	eachEncoding(t, testHTTPWeightedProportionalChiSquare)
}

func testHTTPWeightedProportionalChiSquare(t *testing.T, binary bool) {
	_, cl, _, stop := newTestDaemon(t, server.Config{
		CoalesceWindow: 500 * time.Microsecond,
	}, 100)
	defer stop()
	cl.Binary = binary
	ctx := context.Background()

	// Add a zero-weight key; it must never be sampled.
	if _, err := cl.InsertItems(ctx, "w", []server.Item{{Key: 7777, Weight: 0}}); err != nil {
		t.Fatal(err)
	}

	const clients, reqs, tPer = 10, 100, 15
	countsCh := make(chan []int, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int, 100)
			for i := 0; i < reqs; i++ {
				out, err := cl.Sample(ctx, "w", 0, 8000, tPer)
				if err != nil {
					t.Errorf("sample: %v", err)
					return
				}
				for _, k := range out {
					if k == 7777 {
						t.Errorf("sampled zero-weight key")
						return
					}
					local[int(k)]++
				}
			}
			countsCh <- local
		}()
	}
	wg.Wait()
	close(countsCh)
	counts := make([]int, 100)
	for local := range countsCh {
		for i, c := range local {
			counts[i] += c
		}
	}
	probs := make([]float64, 100)
	totalW := 0.0
	for i := range probs {
		probs[i] = float64(i + 1)
		totalW += probs[i]
	}
	for i := range probs {
		probs[i] /= totalW
	}
	gof, err := stats.ChiSquareTest(counts, probs, statAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if gof.Reject {
		t.Fatalf("chi-square rejects weight-proportionality through HTTP: stat=%.2f df=%d critical=%.2f",
			gof.Stat, gof.DF, gof.Critical)
	}
}

// TestHTTPIndependenceAcrossCoalescedRequests: requests that share a
// coalesced SampleMany batch must stay mutually independent. Pairs of
// simultaneous t=1 requests over 10 keys are drawn with a linger window
// wide enough that paired requests land in one batch; the joint
// distribution over the 10x10 outcome grid must be uniform (chi-square),
// which fails if batch-mates are correlated in any direction. Run over
// both encodings.
func TestHTTPIndependenceAcrossCoalescedRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite skipped with -short")
	}
	eachEncoding(t, testHTTPIndependenceAcrossCoalescedRequests)
}

func testHTTPIndependenceAcrossCoalescedRequests(t *testing.T, binary bool) {
	_, cl, _, stop := newTestDaemon(t, server.Config{
		CoalesceWindow: time.Millisecond,
		MaxBatch:       8,
	}, 10)
	defer stop()
	cl.Binary = binary
	ctx := context.Background()

	const workers, rounds = 16, 250
	joint := make([]int, 100)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var a, b []float64
				var errA, errB error
				var pair sync.WaitGroup
				pair.Add(2)
				go func() { defer pair.Done(); a, errA = cl.Sample(ctx, "u", 0, 9, 1) }()
				go func() { defer pair.Done(); b, errB = cl.Sample(ctx, "u", 0, 9, 1) }()
				pair.Wait()
				if errA != nil || errB != nil {
					t.Errorf("pair: %v, %v", errA, errB)
					return
				}
				mu.Lock()
				joint[int(a[0])*10+int(b[0])]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	gof, err := stats.ChiSquareTest(joint, uniformProbs(100), statAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if gof.Reject {
		t.Fatalf("chi-square rejects cross-request independence: stat=%.2f df=%d critical=%.2f",
			gof.Stat, gof.DF, gof.Critical)
	}
}

func uniformProbs(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return p
}
