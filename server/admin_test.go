package server_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"github.com/irsgo/irs/server"
)

// TestAdminAddDropHTTP drives the dataset registry over the admin
// endpoints: add, list, serve traffic, drop, and the typed errors on
// collisions and absent names — errors.Is works across the wire exactly
// as on the data endpoints.
func TestAdminAddDropHTTP(t *testing.T) {
	_, cl, _, stop := newTestDaemon(t, server.Config{}, 100)
	defer stop()
	ctx := context.Background()

	if err := cl.AddDataset(ctx, "runtime", false); err != nil {
		t.Fatalf("AddDataset: %v", err)
	}
	if err := cl.AddDataset(ctx, "runtime", false); !errors.Is(err, server.ErrDuplicateDataset) {
		t.Errorf("duplicate add: err = %v, want ErrDuplicateDataset", err)
	}
	if err := cl.AddDataset(ctx, "u", true); !errors.Is(err, server.ErrDuplicateDataset) {
		t.Errorf("add over boot dataset: err = %v, want ErrDuplicateDataset", err)
	}

	// The new dataset serves immediately, on both encodings.
	if _, err := cl.InsertKeys(ctx, "runtime", []float64{1, 2, 3}); err != nil {
		t.Fatalf("insert into runtime dataset: %v", err)
	}
	if got, err := cl.Sample(ctx, "runtime", 0, 10, 4); err != nil || len(got) != 4 {
		t.Fatalf("sample runtime dataset: %v (%d samples)", err, len(got))
	}
	bin := *cl
	bin.Binary = true
	if _, err := bin.Sample(ctx, "runtime", 0, 10, 2); err != nil {
		t.Fatalf("binary sample runtime dataset: %v", err)
	}

	infos, err := cl.ListDatasets(ctx)
	if err != nil {
		t.Fatalf("ListDatasets: %v", err)
	}
	byName := map[string]server.DatasetInfo{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	if in, ok := byName["runtime"]; !ok || in.Kind != "unweighted" || in.State != "serving" {
		t.Errorf("runtime dataset listing = %+v, want serving unweighted", byName["runtime"])
	}

	if err := cl.DropDataset(ctx, "runtime", false); err != nil {
		t.Fatalf("DropDataset: %v", err)
	}
	if _, err := cl.Sample(ctx, "runtime", 0, 10, 1); !errors.Is(err, server.ErrUnknownDataset) {
		t.Errorf("sample after drop: err = %v, want ErrUnknownDataset", err)
	}
	if err := cl.DropDataset(ctx, "runtime", false); !errors.Is(err, server.ErrUnknownDataset) {
		t.Errorf("second drop: err = %v, want ErrUnknownDataset", err)
	}
	// The boot datasets were untouched.
	if _, err := cl.Sample(ctx, "u", 0, 99, 3); err != nil {
		t.Errorf("boot dataset after drop: %v", err)
	}
}

// TestAdminWeightedAdd: the weighted flag provisions a weighted dataset.
func TestAdminWeightedAdd(t *testing.T) {
	_, cl, _, stop := newTestDaemon(t, server.Config{}, 10)
	defer stop()
	ctx := context.Background()

	if err := cl.AddDataset(ctx, "wrt", true); err != nil {
		t.Fatalf("AddDataset weighted: %v", err)
	}
	if _, err := cl.InsertItems(ctx, "wrt", []server.Item{{Key: 1, Weight: 5}}); err != nil {
		t.Fatalf("weighted insert: %v", err)
	}
	if _, err := cl.Update(ctx, "wrt", []server.Item{{Key: 1, Weight: 9}}); err != nil {
		t.Fatalf("weighted update: %v", err)
	}
}

// TestAdminEndpointErrors covers the handler-level error paths: bad
// method, empty name, malformed body, and nested paths.
func TestAdminEndpointErrors(t *testing.T) {
	_, _, base, stop := newTestDaemon(t, server.Config{}, 10)
	defer stop()

	for _, tc := range []struct {
		method, path, body string
		wantStatus         int
	}{
		{http.MethodDelete, "/datasets", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/datasets/u", "", http.StatusMethodNotAllowed},
		{http.MethodDelete, "/datasets/", "", http.StatusNotFound},
		{http.MethodDelete, "/datasets/a/b", "", http.StatusNotFound},
		{http.MethodPost, "/datasets", `{"dataset":""}`, http.StatusBadRequest},
		{http.MethodPost, "/datasets", `{bad json`, http.StatusBadRequest},
	} {
		req, err := http.NewRequest(tc.method, base+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s: status = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}

// stubBackend satisfies server.Backend for proxy construction; the admin
// rejection happens before any backend call, so only Stats (used by the
// list endpoint) needs a real body.
type stubBackend struct{ server.Backend }

func (stubBackend) Stats() server.Stats { return server.Stats{} }

// TestAdminOnProxy: a proxy server has no local registry; the admin
// surface answers 501 not_supported rather than pretending.
func TestAdminOnProxy(t *testing.T) {
	proxy := server.NewProxy(stubBackend{})
	ts := httptest.NewServer(proxy)
	defer ts.Close()

	cl := server.NewClient(ts.URL)
	err := cl.AddDataset(context.Background(), "x", false)
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotImplemented || apiErr.Code != "not_supported" {
		t.Errorf("add on proxy: err = %v, want 501 not_supported", err)
	}
	if err := proxy.AddDataset("x", false); !errors.Is(err, server.ErrProxy) {
		t.Errorf("in-process add on proxy: err = %v, want ErrProxy", err)
	}
	if err := proxy.RemoveDataset("x", false); !errors.Is(err, server.ErrProxy) {
		t.Errorf("in-process drop on proxy: err = %v, want ErrProxy", err)
	}
}

// TestAdminDurableDrop: dropping a durable dataset with snapshot=true
// takes a final snapshot and closes the store; re-registering the same
// directory recovers the dropped state.
func TestAdminDurableDrop(t *testing.T) {
	dir := t.TempDir()
	s := server.New(server.Config{})
	opts := server.DurableOptions{Dir: filepath.Join(dir, "d"), Shards: 2, Seed: 3}
	if _, _, err := s.AddDurableUnweighted("d", opts); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	cl := server.NewClient(ts.URL)
	ctx := context.Background()
	if _, err := cl.InsertKeys(ctx, "d", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := cl.DropDataset(ctx, "d", true); err != nil {
		t.Fatalf("durable drop: %v", err)
	}
	if _, err := cl.Sample(ctx, "d", 0, 10, 1); !errors.Is(err, server.ErrUnknownDataset) {
		t.Errorf("sample after durable drop: err = %v, want ErrUnknownDataset", err)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The directory is released and intact: a fresh server recovers it.
	s2 := server.New(server.Config{})
	c2, rec, err := s2.AddDurableUnweighted("d", opts)
	if err != nil {
		t.Fatalf("re-open dropped directory: %v", err)
	}
	if c2.Len() != 4 {
		t.Errorf("recovered %d items, want 4", c2.Len())
	}
	// The final snapshot covered the whole history: nothing to replay.
	if rec.RecordsReplayed != 0 {
		t.Errorf("recovery replayed %d WAL records, want 0 after final snapshot", rec.RecordsReplayed)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
