// Package server is irsd's HTTP/JSON serving layer over the concurrent IRS
// structures: an embeddable http.Handler plus a typed client. The heavy
// lifting — request coalescing into SampleMany/InsertBatch, bounded-queue
// admission control, graceful drain, live stats — lives in the transport-
// agnostic core (internal/server); this package speaks JSON over four
// endpoints and maps the core's typed errors to wire codes:
//
//	POST /sample   {"dataset":"d","lo":0,"hi":9,"t":3}  -> {"dataset":"d","samples":[...]}
//	POST /insert   {"dataset":"d","keys":[1,2]}          -> {"dataset":"d","inserted":2}
//	               {"dataset":"w","items":[{"key":1,"weight":2.5}]}
//	POST /delete   {"dataset":"d","keys":[1,2]}          -> {"dataset":"d","removed":2}
//	POST /update   {"dataset":"w","items":[{"key":1,"weight":9}]} -> {"dataset":"w","updated":1}
//	POST /snapshot {"dataset":"d"}                       -> {"dataset":"d","seq":3,"items":1000}
//	GET  /stats                                          -> {"datasets":[...]}
//
// Datasets registered through the durable constructors (AddDurable*) write
// every mutation ahead to a per-dataset WAL and serve /snapshot; see
// durable.go and internal/persist.
//
// The dataset field may be omitted when exactly one dataset is registered.
// Errors arrive as {"error":{"code":"...","message":"..."}} with the
// status codes listed at errCodeStatus; the typed client converts codes
// back into the exported sentinel errors, so errors.Is works end to end.
//
// Keys on the wire are float64 (JSON numbers). Server coalescing preserves
// the IRS contract — per-sample uniformity and independence across
// coalesced requests — verified through the full HTTP stack by this
// package's chi-square and independence suites.
//
// The two hot endpoints, /sample and /insert, additionally speak a compact
// binary format negotiated per request via Content-Type:
// application/x-irs-bin (see binary.go for the frame layout); the typed
// client opts in with Client.Binary. Both encodings return bit-identical
// sample streams for a fixed daemon seed and request sequence, and errors
// keep the JSON envelope either way.
package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	irs "github.com/irsgo/irs"
	srv "github.com/irsgo/irs/internal/server"
	"github.com/irsgo/irs/internal/wire"
)

// Config holds the admission-control and coalescing knobs, applied per
// dataset and per path: QueueDepth (pending-request bound; full queues
// answer 503 overloaded), MaxBatch (requests per coalesced backend call),
// CoalesceWindow (linger time for batch-mates; 0 = opportunistic only),
// and Flushers (parallel backend calls in flight). Zero values take the
// core's defaults.
type Config = srv.Config

// Stats and DatasetStats are the /stats payload; ServerInfo is its
// build/identity block (version, Go toolchain, uptime).
type (
	Stats        = srv.Stats
	DatasetStats = srv.DatasetStats
	ServerInfo   = srv.ServerInfo
)

// Item is one /insert element; Weight is ignored by unweighted datasets.
type Item = srv.Item[float64]

// The serving errors, re-exported so both embedders and client users can
// errors.Is against one vocabulary.
var (
	ErrUnknownDataset   = srv.ErrUnknownDataset
	ErrAmbiguousDataset = srv.ErrAmbiguousDataset
	ErrDuplicateDataset = srv.ErrDuplicateDataset
	ErrInvalidRange     = srv.ErrInvalidRange
	ErrInvalidCount     = srv.ErrInvalidCount
	ErrInvalidWeight    = srv.ErrInvalidWeight
	ErrEmptyRange       = srv.ErrEmptyRange
	ErrOverloaded       = srv.ErrOverloaded
	ErrShuttingDown     = srv.ErrShuttingDown
	ErrNotWeighted      = srv.ErrNotWeighted
	ErrNotDurable       = srv.ErrNotDurable
	ErrUnavailable      = srv.ErrUnavailable
)

// ErrProxy rejects dataset registration on a proxy Server (NewProxy):
// proxies have no local core to register into — datasets live on the nodes
// behind the backend.
var ErrProxy = errors.New("server: proxy servers cannot register datasets")

// maxBodyBytes bounds request bodies; a megabyte-scale insert batch is the
// intended granularity, anything larger should arrive as several requests.
const maxBodyBytes = 8 << 20

// Backend is the request-serving surface the transport layers (this
// package's HTTP handlers and server/irsnet's TCP dispatch) are written
// against. The local serving core (*internal/server.Core[float64])
// satisfies it directly; a cluster router (internal/cluster.Router)
// satisfies it by fanning requests out to the nodes owning each key range.
// Everything transport-specific — encodings, wire codes, probes, pooled
// buffers — stays above this line, so irsrouter serves the exact protocols
// irsd does without duplicating a handler.
//
// Contract notes: SampleAppend appends to dst and returns dst unchanged on
// error; the Async forms follow internal/server's Reply contract
// (synchronous validation errors mean done never runs, otherwise
// done.Deliver runs exactly once); Stats omits the ServerInfo block (the
// transport layer that knows the process identity fills it in).
type Backend interface {
	SampleAppend(dataset string, dst []float64, lo, hi float64, t int) ([]float64, error)
	SampleAppendAsync(dataset string, dst []float64, lo, hi float64, t int, done SampleReply) error
	Insert(dataset string, items []Item) (int, error)
	InsertAsync(dataset string, items []Item, done InsertReply) error
	Delete(dataset string, keys []float64) (int, error)
	Update(dataset string, items []Item) (int, error)
	RangeStats(dataset string, lo, hi float64) (count int, mass float64, err error)
	Resolve(dataset string) (string, error)
	Snapshot(dataset string) (SnapshotInfo, error)
	Stats() Stats
	AppendMetrics(dst []byte) []byte
	Close() error
}

// Server is the HTTP serving layer: register datasets (or front a Backend
// via NewProxy), then serve it like any http.Handler. Safe for concurrent
// use once serving has started; AddUnweighted/AddWeighted are intended for
// setup time.
type Server struct {
	core    *srv.Core[float64] // nil on proxy servers
	backend Backend
	mux     *http.ServeMux
	obs     observe
	adm     admin
}

// New returns a Server with no datasets.
func New(cfg Config) *Server {
	core := srv.NewCore[float64](cfg)
	s := newServer(core)
	s.core = core
	return s
}

// NewProxy returns a Server that serves every endpoint against backend
// instead of a local core — the seam cmd/irsrouter fronts the cluster
// router through. Dataset registration (Add*, AddDurable*) is rejected
// with ErrProxy; everything else, including the TCP transport wrapper
// (server/irsnet.New), works unchanged.
func NewProxy(backend Backend) *Server {
	return newServer(backend)
}

func newServer(backend Backend) *Server {
	s := &Server{backend: backend, mux: http.NewServeMux()}
	s.obs.start = time.Now()
	s.mux.HandleFunc("/sample", s.handleSample)
	s.mux.HandleFunc("/insert", s.handleInsert)
	s.mux.HandleFunc("/delete", s.handleDelete)
	s.mux.HandleFunc("/update", s.handleUpdate)
	s.mux.HandleFunc("/rangestats", s.handleRangeStats)
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/datasets", s.handleDatasets)
	s.mux.HandleFunc("/datasets/", s.handleDatasetItem)
	return s
}

// AddUnweighted registers c under name; samples are uniform over range
// contents and insert weights are ignored.
func (s *Server) AddUnweighted(name string, c *irs.Concurrent[float64]) error {
	if s.core == nil {
		return ErrProxy
	}
	return s.core.Add(name, srv.NewUnweightedDataset(c))
}

// AddWeighted registers w under name; samples are weight-proportional and
// inserts carry validated weights.
func (s *Server) AddWeighted(name string, w *irs.WeightedConcurrent[float64]) error {
	if s.core == nil {
		return ErrProxy
	}
	return s.core.Add(name, srv.NewWeightedDataset(w))
}

// Close stops admitting requests and drains every request accepted so
// far; in-flight requests are answered, then every durable dataset's WAL
// is synced and closed (the returned error joins any store failures).
// Later requests get 503 shutting_down. Call it after the HTTP listener
// has stopped accepting (http.Server.Shutdown) for a fully graceful stop,
// though any order is safe. Close also flips /readyz to draining for
// embedders that never call SetDraining themselves.
func (s *Server) Close() error {
	s.SetDraining()
	return s.backend.Close()
}

// Snapshot takes a point-in-time snapshot of the named durable dataset
// and compacts the WAL segments it covers — the in-process form of the
// /snapshot endpoint, used by irsd's background snapshot loop.
func (s *Server) Snapshot(name string) (SnapshotInfo, error) {
	return s.backend.Snapshot(name)
}

// Delete removes one occurrence of each key from the named dataset — the
// in-process form of /delete, used by the TCP transport's delete frame.
func (s *Server) Delete(dataset string, keys []float64) (int, error) {
	return s.backend.Delete(dataset, keys)
}

// Update sets the weight of one occurrence of each item's key on a
// weighted dataset — the in-process form of /update.
func (s *Server) Update(dataset string, items []Item) (int, error) {
	return s.backend.Update(dataset, items)
}

// RangeStats returns the in-range key count and sampling mass of [lo, hi]
// — the in-process form of /rangestats.
func (s *Server) RangeStats(dataset string, lo, hi float64) (int, float64, error) {
	return s.backend.RangeStats(dataset, lo, hi)
}

// Stats returns the serving snapshot of every dataset with the process
// identity block filled in — the in-process form of GET /stats.
func (s *Server) Stats() Stats {
	st := s.backend.Stats()
	st.Server = s.serverInfo()
	return st
}

// ServeHTTP implements http.Handler. The four data endpoints are timed
// into the per-encoding request-latency histograms; infrastructure
// endpoints (/stats, /metrics, probes, /snapshot — which has its own
// duration histogram) are not, so scrapes never skew request latency.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/sample", "/insert", "/delete", "/update":
		start := time.Now()
		s.mux.ServeHTTP(w, r)
		s.observeRequest(isBinary(r), time.Since(start))
	case "/rangestats", "/snapshot", "/stats", "/metrics", "/healthz", "/readyz", "/datasets":
		s.mux.ServeHTTP(w, r)
	default:
		if strings.HasPrefix(r.URL.Path, "/debug/pprof") {
			s.handlePprof(w, r)
			return
		}
		if strings.HasPrefix(r.URL.Path, "/datasets/") {
			s.mux.ServeHTTP(w, r)
			return
		}
		writeError(w, http.StatusNotFound, "not_found", "no such endpoint: "+r.URL.Path)
	}
}

// resolveName turns a request's dataset field into the name echoed in the
// response. Only the empty name needs resolving (to the sole dataset); an
// explicit name is echoed as-is and validated by the core call itself, so
// the common case costs a single lookup.
func (s *Server) resolveName(name string) (string, error) {
	if name != "" {
		return name, nil
	}
	return s.backend.Resolve("")
}

// isBinary reports whether the request negotiated the binary frames.
func isBinary(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == ContentTypeBinary || strings.HasPrefix(ct, ContentTypeBinary+";")
}

// readFrame reads the whole (bounded) body into the pooled buffer,
// answering the error itself on wrong method or unreadable body.
func readFrame(w http.ResponseWriter, r *http.Request, buf *[]byte) ([]byte, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return nil, false
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	b := *buf
	if n := r.ContentLength; n > 0 && n <= maxBodyBytes && int64(cap(b)) < n {
		b = make([]byte, 0, n)
	}
	b, err := wire.ReadAllInto(body, b)
	*buf = b
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: "+err.Error())
		return nil, false
	}
	return b, true
}

// writeFrame sends a binary response frame.
func writeFrame(w http.ResponseWriter, frame []byte) {
	w.Header().Set("Content-Type", ContentTypeBinary)
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(frame)
}

// handleSampleBinary is the hot-path form of /sample: pooled body buffer,
// pooled float64 result buffer appended to by the zero-alloc core, and the
// response frame encoded over the request's own (already decoded) buffer.
func (s *Server) handleSampleBinary(w http.ResponseWriter, r *http.Request) {
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	body, ok := readFrame(w, r, buf)
	if !ok {
		return
	}
	req, err := wire.DecodeSampleRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	dst := wire.GetF64()
	defer wire.PutF64(dst)
	samples, err := s.backend.SampleAppend(req.Dataset, (*dst)[:0], req.Lo, req.Hi, req.T)
	*dst = samples[:0] // keep any growth for the next request
	if err != nil {
		writeCoreError(w, err)
		return
	}
	// The request frame is fully decoded, so its buffer doubles as the
	// response frame; the (usually larger) grown buffer stays pooled.
	frame := wire.EncodeSampleResponse(body[:0], samples)
	*buf = frame[:0]
	writeFrame(w, frame)
}

// handleInsertBinary is the binary form of /insert: pooled buffers for the
// body, the decoded keys/items, and the response frame.
func (s *Server) handleInsertBinary(w http.ResponseWriter, r *http.Request) {
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	body, ok := readFrame(w, r, buf)
	if !ok {
		return
	}
	// Keys decode ahead of items as unit-weight entries of one combined
	// slice — the JSON handler's apply order — so a mixed frame inserts
	// identically over every transport.
	items := wire.GetItems()
	defer wire.PutItems(items)
	name, all, err := wire.DecodeInsertRequestItems(body, (*items)[:0])
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	*items = all[:0]
	n, err := s.backend.Insert(string(name), all)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	frame := wire.EncodeInsertResponse(body[:0], n)
	*buf = frame[:0]
	writeFrame(w, frame)
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	if isBinary(r) {
		s.handleSampleBinary(w, r)
		return
	}
	var req SampleRequest
	if !readJSON(w, r, &req) {
		return
	}
	name, err := s.resolveName(req.Dataset)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	samples, err := s.backend.SampleAppend(name, nil, req.Lo, req.Hi, req.T)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SampleResponse{Dataset: name, Samples: samples})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if isBinary(r) {
		s.handleInsertBinary(w, r)
		return
	}
	var req InsertRequest
	if !readJSON(w, r, &req) {
		return
	}
	name, err := s.resolveName(req.Dataset)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	items := make([]Item, 0, len(req.Keys)+len(req.Items))
	for _, k := range req.Keys {
		items = append(items, Item{Key: k, Weight: 1})
	}
	items = append(items, req.Items...)
	n, err := s.backend.Insert(name, items)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, InsertResponse{Dataset: name, Inserted: n})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !readJSON(w, r, &req) {
		return
	}
	name, err := s.resolveName(req.Dataset)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	n, err := s.backend.Delete(name, req.Keys)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Dataset: name, Removed: n})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if !readJSON(w, r, &req) {
		return
	}
	name, err := s.resolveName(req.Dataset)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	n, err := s.backend.Update(name, req.Items)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, UpdateResponse{Dataset: name, Updated: n})
}

// handleRangeStats answers the in-range (count, mass) probe — stage 1 of
// the cluster router's exact cross-partition multinomial. Binary requests
// carry a rangestats frame (kind 0x06) and get the binary response; JSON
// requests mirror the other endpoints' envelope.
func (s *Server) handleRangeStats(w http.ResponseWriter, r *http.Request) {
	if isBinary(r) {
		buf := wire.GetBuf()
		defer wire.PutBuf(buf)
		body, ok := readFrame(w, r, buf)
		if !ok {
			return
		}
		name, lo, hi, err := wire.DecodeRangeStatsRequest(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		count, mass, err := s.backend.RangeStats(string(name), lo, hi)
		if err != nil {
			writeCoreError(w, err)
			return
		}
		frame := wire.EncodeRangeStatsResponse(body[:0], count, mass)
		*buf = frame[:0]
		writeFrame(w, frame)
		return
	}
	var req RangeStatsRequest
	if !readJSON(w, r, &req) {
		return
	}
	name, err := s.resolveName(req.Dataset)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	count, mass, err := s.backend.RangeStats(name, req.Lo, req.Hi)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RangeStatsResponse{Dataset: name, Count: count, Mass: mass})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req SnapshotRequest
	if !readJSON(w, r, &req) {
		return
	}
	name, err := s.resolveName(req.Dataset)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	info, err := s.backend.Snapshot(name)
	if err != nil {
		writeCoreError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{Dataset: name, Seq: info.Seq, Items: info.Items})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// readJSON decodes a strict JSON body into dst, answering the error itself
// (and returning false) on malformed input or a wrong method.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON body: "+err.Error())
		return false
	}
	return true
}

func writeCoreError(w http.ResponseWriter, err error) {
	// The code/status mapping lives in internal/wire, shared with the TCP
	// transport so both answer one error vocabulary.
	code, status := wire.ErrCode(err)
	writeError(w, status, code, err.Error())
}

func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, ErrorResponse{Error: WireError{Code: code, Message: message}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
