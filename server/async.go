package server

import (
	srv "github.com/irsgo/irs/internal/server"
)

// SampleReply and InsertReply receive asynchronous answers from
// SampleAsync and InsertAsync. Deliver is called exactly once per accepted
// request, from a serving-core flusher goroutine, and must not block for
// long — it runs inside the flush loop that answers every other coalesced
// request in the batch. Implementations meant for hot paths should be
// pooled pointer-structs: a pointer already on the heap boxes into the
// interface without allocating, which is how the TCP transport keeps its
// per-request path allocation-free.
type (
	SampleReply = srv.Reply[[]float64]
	InsertReply = srv.Reply[int]
)

// SampleAsync submits a sample request without blocking for the coalesced
// flush: the samples — appended to dst, which may be nil — or the error
// arrive through done.Deliver. Validation, routing, and admission errors
// (ErrOverloaded, ErrShuttingDown, ...) are returned synchronously, in
// which case done is never invoked; on a nil return done.Deliver runs
// exactly once. This is the submission surface for transports that
// multiplex many requests over one connection, where the connection's
// reader goroutine must never park behind a flush.
func (s *Server) SampleAsync(dataset string, dst []float64, lo, hi float64, t int, done SampleReply) error {
	return s.backend.SampleAppendAsync(dataset, dst, lo, hi, t, done)
}

// InsertAsync submits an insert without blocking for the coalesced flush,
// under the same contract as SampleAsync. An empty items slice is answered
// inline (done.Deliver(0, nil) runs before InsertAsync returns). The items
// slice must stay unmutated until done is invoked.
func (s *Server) InsertAsync(dataset string, items []Item, done InsertReply) error {
	return s.backend.InsertAsync(dataset, items, done)
}
